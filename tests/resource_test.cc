// Per-query resource accounting tests (src/obs/resource.*): tracker
// charge/release balance, engine-level attribution (every reservation the
// executors take is returned, on success and on the abort unwind), runtime
// budget enforcement mid-build, the over_budget query-log status, and the
// live query registry (docs/OBSERVABILITY.md, docs/SERVICE.md).

#include "src/obs/resource.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/core/optimizer.h"
#include "src/core/pretty.h"
#include "src/lambdadb.h"
#include "src/runtime/exec_pipeline.h"
#include "src/service/query_service.h"
#include "src/workload/oo7.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

// A hash join with a correlated nest: builds a join table and group table,
// so both the join and nest operator classes take reservations.
const char* kNestQuery =
    "select distinct struct(D: b.id, P: (select p.id from p in AtomicParts "
    "where p.build_date = b.build_date)) "
    "from b in BaseAssemblies";

// A quadratic nested-loop self join: reliably long-running, for the live
// registry test.
const char* kSlowQuery =
    "count(select struct(A: a.id, B: b.id) "
    "from a in AtomicParts, b in AtomicParts where a.x < b.y)";

Database MediumOO7() {
  workload::OO7Params p;
  p.n_composite_parts = 100;
  p.parts_per_composite = 20;  // 2000 atomic parts
  return workload::MakeOO7Database(p);
}

// Compiles and executes `oql` against `db` with `resource` armed.
Value RunWithResource(const Database& db, const std::string& oql,
                      obs::QueryResourceContext* resource, int threads = 1,
                      size_t morsel = 2048, bool slot_frames = true,
                      QueryProfiler* profiler = nullptr) {
  OptimizerOptions options;
  Optimizer opt(db.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(oql));
  PhysPtr phys = PlanPhysical(q.simplified, db, options.physical);
  ExecOptions exec;
  exec.n_threads = threads;
  exec.morsel_size = morsel;
  exec.use_slot_frames = slot_frames;
  exec.resource = resource;
  exec.profiler = profiler;
  if (slot_frames) {
    SlotPlan plan = CompileSlotPlan(phys, db);
    return ExecuteSlotPlan(plan, db, exec);
  }
  return ExecutePipelined(phys, db, exec);
}

// ------------------------------------------------------------- tracker unit

TEST(ResourceContextTest, AppliesDeltasAndTracksPeaks) {
  obs::QueryResourceContext ctx;
  ctx.Apply(3, 1000);
  ctx.Apply(5, 500);
  EXPECT_EQ(ctx.InUseBytes(), 1500u);
  EXPECT_EQ(ctx.PeakBytes(), 1500u);
  EXPECT_EQ(ctx.OpInUseBytes(3), 1000u);
  EXPECT_EQ(ctx.OpPeakBytes(5), 500u);
  EXPECT_EQ(ctx.DominantOp(), 3);

  ctx.Apply(3, -1000);
  ctx.Apply(5, -500);
  EXPECT_EQ(ctx.InUseBytes(), 0u);
  EXPECT_EQ(ctx.PeakBytes(), 1500u);  // peaks never come down
  EXPECT_EQ(ctx.OpPeakBytes(3), 1000u);
  EXPECT_FALSE(ctx.OverBudget());
}

TEST(MemoryTrackerTest, BatchedChargesBalanceToZero) {
  obs::QueryResourceContext ctx;
  obs::MemoryTracker t;
  t.Arm(&ctx);
  if (!t.armed()) GTEST_SKIP() << "metrics compiled out";

  for (int i = 0; i < 1000; ++i) t.Charge(2, 100);
  t.Flush();
  EXPECT_EQ(ctx.InUseBytes(), 100000u);
  for (int i = 0; i < 1000; ++i) t.Release(2, 100);
  t.FlushNoThrow();
  EXPECT_EQ(ctx.InUseBytes(), 0u);
  EXPECT_EQ(ctx.PeakBytes(), 100000u);
  EXPECT_EQ(ctx.DominantOp(), 2);
}

TEST(MemoryTrackerTest, ParallelTrackersBalanceToZero) {
  obs::QueryResourceContext ctx;
  {
    obs::MemoryTracker probe;
    probe.Arm(&ctx);
    if (!probe.armed()) GTEST_SKIP() << "metrics compiled out";
  }
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&ctx] {
      obs::MemoryTracker t;
      t.Arm(&ctx);
      for (int i = 0; i < 10000; ++i) t.Charge(1, 64);
      for (int i = 0; i < 10000; ++i) t.Release(1, 64);
      // The destructor flushes whatever is still pending.
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(ctx.InUseBytes(), 0u);
  EXPECT_GT(ctx.PeakBytes(), 0u);
}

TEST(MemoryTrackerTest, ChargeOverBudgetThrowsPromptly) {
  obs::QueryResourceContext ctx(/*budget_bytes=*/1000);
  obs::MemoryTracker t;
  t.Arm(&ctx);
  if (!t.armed()) GTEST_SKIP() << "metrics compiled out";

  // The budget shrinks the flush threshold to budget/4+1 = 251 bytes, so
  // the violation surfaces within one small charge, not after 256 KiB.
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) t.Charge(0, 100);
      },
      obs::QueryMemoryExceeded);
  EXPECT_TRUE(ctx.OverBudget());
  EXPECT_LT(ctx.InUseBytes(), 2000u);  // caught early, not at 10000
}

// --------------------------------------------------------- engine attribution

TEST(ResourceEngineTest, SlotEngineReleasesEverythingOnSuccess) {
  Database db = MediumOO7();
  obs::QueryResourceContext ctx;
  Value r = RunWithResource(db, kNestQuery, &ctx);
  EXPECT_EQ(r, RunOQLBaseline(db, kNestQuery));
  obs::MemoryTracker probe;
  probe.Arm(&ctx);
  if (!probe.armed()) GTEST_SKIP() << "metrics compiled out";
  EXPECT_GT(ctx.PeakBytes(), 0u);
  EXPECT_EQ(ctx.InUseBytes(), 0u) << "leaked reservations";
  EXPECT_GE(ctx.DominantOp(), 0);
}

TEST(ResourceEngineTest, ParallelExecutionReleasesEverything) {
  Database db = MediumOO7();
  obs::QueryResourceContext ctx;
  Value serial = RunWithResource(db, kNestQuery, nullptr);
  Value parallel =
      RunWithResource(db, kNestQuery, &ctx, /*threads=*/4, /*morsel=*/64);
  EXPECT_EQ(parallel, serial);
  obs::MemoryTracker probe;
  probe.Arm(&ctx);
  if (!probe.armed()) GTEST_SKIP() << "metrics compiled out";
  EXPECT_GT(ctx.PeakBytes(), 0u);
  EXPECT_EQ(ctx.InUseBytes(), 0u) << "leaked reservations";
}

TEST(ResourceEngineTest, EnginesAgreeOnDominantOperator) {
  Database db = MediumOO7();
  obs::QueryResourceContext slot_ctx, env_ctx;
  Value slot = RunWithResource(db, kNestQuery, &slot_ctx);
  Value env = RunWithResource(db, kNestQuery, &env_ctx, 1, 2048,
                              /*slot_frames=*/false);
  EXPECT_EQ(slot, env);
  obs::MemoryTracker probe;
  probe.Arm(&slot_ctx);
  if (!probe.armed()) GTEST_SKIP() << "metrics compiled out";
  EXPECT_EQ(env_ctx.InUseBytes(), 0u);
  EXPECT_EQ(slot_ctx.InUseBytes(), 0u);
  // Both engines buffer the same logical state (the same build tables and
  // group heads), so the operator class holding the largest peak agrees
  // even though the byte estimates differ (Env rows carry binding names).
  EXPECT_EQ(slot_ctx.DominantOp(), env_ctx.DominantOp());
}

TEST(ResourceEngineTest, ProfilerAttributesBytesToOperators) {
  Database db = MediumOO7();
  obs::QueryResourceContext ctx;
  QueryProfiler prof;
  RunWithResource(db, kNestQuery, &ctx, 1, 2048, true, &prof);
  uint64_t total = 0;
  for (const OperatorStats* s : prof.Operators()) total += s->mem_bytes;
  EXPECT_GT(total, 0u);
}

// ------------------------------------------------------- budget enforcement

TEST(ResourceEngineTest, BudgetAbortsMidBuildWithoutLeak) {
  Database db = MediumOO7();
  {
    obs::MemoryTracker probe;
    obs::QueryResourceContext unlimited;
    probe.Arm(&unlimited);
    if (!probe.armed()) GTEST_SKIP() << "metrics compiled out";
  }
  for (bool slot_frames : {true, false}) {
    obs::QueryResourceContext ctx(/*budget_bytes=*/4096);
    EXPECT_THROW(
        RunWithResource(db, kNestQuery, &ctx, 1, 2048, slot_frames),
        obs::QueryMemoryExceeded)
        << (slot_frames ? "slot" : "env");
    EXPECT_TRUE(ctx.OverBudget());
    EXPECT_EQ(ctx.InUseBytes(), 0u)
        << "abort unwind leaked reservations ("
        << (slot_frames ? "slot" : "env") << ")";
  }
}

TEST(ResourceEngineTest, ParallelBudgetAbortDoesNotLeak) {
  Database db = MediumOO7();
  {
    obs::MemoryTracker probe;
    obs::QueryResourceContext unlimited;
    probe.Arm(&unlimited);
    if (!probe.armed()) GTEST_SKIP() << "metrics compiled out";
  }
  obs::QueryResourceContext ctx(/*budget_bytes=*/4096);
  EXPECT_THROW(RunWithResource(db, kNestQuery, &ctx, 4, 64),
               obs::QueryMemoryExceeded);
  EXPECT_TRUE(ctx.OverBudget());
  EXPECT_EQ(ctx.InUseBytes(), 0u) << "parallel abort leaked reservations";
}

// ------------------------------------------------------------ service level

TEST(ResourceServiceTest, OverBudgetQueryLogsStatus) {
  Database db = MediumOO7();
  QueryService svc(db);
  SessionOptions so;
  so.memory_budget_bytes = 4096;
  auto session = svc.OpenSession(so);
  // Mid-build enforcement catches this when tracking is compiled in; the
  // result-size check catches it when it is not — either way the query dies
  // with QueryMemoryExceeded and the log says over_budget.
  EXPECT_THROW(svc.Execute(*session, kNestQuery), obs::QueryMemoryExceeded);

  std::vector<obs::QueryLogRecord> tail = svc.query_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].status, "over_budget");
  EXPECT_FALSE(tail[0].error.empty());

  // The session recovers: lift the budget and the same query runs.
  session->options().memory_budget_bytes = 0;
  EXPECT_EQ(svc.Execute(*session, kNestQuery), RunOQLBaseline(db, kNestQuery));
  tail = svc.query_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].status, "ok");
}

TEST(ResourceServiceTest, QueryLogRecordsMemoryPeakAndDominantOp) {
  Database db = MediumOO7();
  {
    obs::MemoryTracker probe;
    obs::QueryResourceContext unlimited;
    probe.Arm(&unlimited);
    if (!probe.armed()) GTEST_SKIP() << "metrics compiled out";
  }
  QueryService svc(db);
  auto session = svc.OpenSession();
  svc.Execute(*session, kNestQuery);
  std::vector<obs::QueryLogRecord> tail = svc.query_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_GT(tail[0].mem_peak_bytes, 0u);
  EXPECT_FALSE(tail[0].mem_op.empty());
  EXPECT_NE(tail[0].ToString().find("mem_peak="), std::string::npos);
}

// ------------------------------------------------------------- live registry

TEST(ActiveQueryRegistryTest, RegisterSnapshotUnregister) {
  obs::ActiveQueryRegistry reg;
  auto ctx = std::make_shared<obs::QueryResourceContext>();
  ctx->Apply(2, 4096);
  ctx->AddRows(17);

  uint64_t id = reg.Register(/*session=*/7, /*query_hash=*/0xabcd, ctx);
  EXPECT_EQ(reg.Count(), 1u);
  reg.SetPhase(id, "executing");

  std::vector<obs::ActiveQueryInfo> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].query_id, id);
  EXPECT_EQ(snap[0].session, 7u);
  EXPECT_EQ(snap[0].query_hash, 0xabcdu);
  EXPECT_EQ(snap[0].phase, "executing");
  EXPECT_EQ(snap[0].rows, 17u);
  EXPECT_EQ(snap[0].mem_in_use_bytes, 4096u);
  EXPECT_EQ(reg.SumInUseBytes(), 4096u);

  reg.Unregister(id);
  EXPECT_EQ(reg.Count(), 0u);
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST(ResourceServiceTest, ActiveQueriesShowsInFlightQuery) {
  Database db = MediumOO7();
  QueryService svc(db);

  std::thread runner([&] {
    auto session = svc.OpenSession();
    svc.Execute(*session, kSlowQuery);
  });

  // The query registers before admission, so it becomes visible as soon as
  // Run() is entered; the quadratic join keeps it in flight long enough to
  // observe. Spin until the snapshot is non-empty.
  std::vector<obs::ActiveQueryInfo> seen;
  for (int spin = 0; spin < 10000000 && seen.empty(); ++spin) {
    seen = svc.ActiveQueries();
    if (seen.empty()) std::this_thread::yield();
  }
  runner.join();

  ASSERT_EQ(seen.size(), 1u) << "in-flight query never became visible";
  EXPECT_TRUE(seen[0].phase == "queued" || seen[0].phase == "compiling" ||
              seen[0].phase == "executing")
      << seen[0].phase;
  EXPECT_GE(seen[0].elapsed_ms, 0.0);
  EXPECT_TRUE(svc.ActiveQueries().empty()) << "query left in the registry";
}

// ------------------------------------------------------------ explain analyze

TEST(ResourceEngineTest, ExplainAnalyzeShowsMemColumn) {
  Database db = MediumOO7();
  {
    obs::MemoryTracker probe;
    obs::QueryResourceContext unlimited;
    probe.Arm(&unlimited);
    if (!probe.armed()) GTEST_SKIP() << "metrics compiled out";
  }
  OptimizerOptions options;
  Optimizer opt(db.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(kNestQuery));
  PhysPtr phys = PlanPhysical(q.simplified, db, options.physical);
  SlotPlan plan = CompileSlotPlan(phys, db);
  QueryProfiler prof;
  obs::QueryResourceContext ctx;
  ExecOptions exec;
  exec.profiler = &prof;
  exec.resource = &ctx;
  ExecuteSlotPlan(plan, db, exec);
  std::string out = ExplainAnalyze(phys, prof);
  EXPECT_NE(out.find("mem="), std::string::npos) << out;
}

}  // namespace
}  // namespace ldb
