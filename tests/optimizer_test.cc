// Tests for the optimizer pipeline facade (src/core/optimizer.*): stage
// toggles (the ablation knobs), mixed top-level terms, completeness
// enforcement, and the bag duplicate-safety check.

#include "src/core/optimizer.h"

#include <gtest/gtest.h>

#include "src/core/pretty.h"
#include "src/runtime/error.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
};

TEST_F(OptimizerTest, CompileExposesAllStages) {
  Optimizer opt(db_.schema());
  CompiledQuery q = opt.Compile(ParseOQL(
      "select distinct e.dno, avg(e.salary) from Employees e "
      "where e.age > 30 group by e.dno"));
  EXPECT_NE(q.calculus, nullptr);
  EXPECT_NE(q.normalized, nullptr);
  EXPECT_EQ(PlanShape(q.plan),
            "Reduce(Nest(OuterJoin(Scan(Employees),Scan(Employees))))");
  EXPECT_EQ(PlanShape(q.simplified), "Reduce(Nest(Scan(Employees)))");
  ASSERT_NE(q.result_type, nullptr);
  EXPECT_EQ(q.result_type->kind(), Type::Kind::kSet);
}

TEST_F(OptimizerTest, SimplifyToggleIsAnAblation) {
  OptimizerOptions no_simp;
  no_simp.simplify = false;
  Optimizer opt(db_.schema(), no_simp);
  CompiledQuery q = opt.Compile(ParseOQL(
      "select distinct e.dno, avg(e.salary) from Employees e group by e.dno"));
  EXPECT_TRUE(AlgEqual(q.plan, q.simplified));
  // Result is unchanged either way.
  Optimizer opt2(db_.schema());
  CompiledQuery q2 = opt2.Compile(ParseOQL(
      "select distinct e.dno, avg(e.salary) from Employees e group by e.dno"));
  EXPECT_EQ(opt.Execute(q, db_), opt2.Execute(q2, db_));
}

TEST_F(OptimizerTest, NormalizeToggleStillUnnestsViaC8) {
  // Without normalization, existentials are not flattened by N8; the C8
  // splice must still remove all nesting and preserve the result.
  const char* q =
      "select distinct e.name from e in Employees "
      "where exists c in e.children: c.age > 20";
  OptimizerOptions no_norm;
  no_norm.normalize = false;
  Optimizer opt(db_.schema(), no_norm);
  CompiledQuery compiled = opt.Compile(ParseOQL(q));
  EXPECT_TRUE(IsFullyUnnested(compiled.plan));
  // The un-normalized plan uses an outer-unnest + nest instead of a plain
  // unnest: more operators.
  Optimizer norm(db_.schema());
  CompiledQuery normal = norm.Compile(ParseOQL(q));
  EXPECT_GT(PlanSize(compiled.plan), PlanSize(normal.plan));
  EXPECT_EQ(opt.Execute(compiled, db_), norm.Execute(normal, db_));
  EXPECT_EQ(norm.Execute(normal, db_),
            Value::Set({Value::Str("Ann"), Value::Str("Cal")}));
}

TEST_F(OptimizerTest, RunHandlesMixedTopLevel) {
  // A record of two aggregates is not a comprehension at the top.
  Optimizer opt(db_.schema());
  ExprPtr q = ParseOQL(
      "struct(total: sum(select e.salary from e in Employees), "
      "       headcount: count(select e from e in Employees))");
  Value r = opt.Run(q, db_);
  EXPECT_EQ(r.Field("total"), Value::Real(360000));
  EXPECT_EQ(r.Field("headcount"), Value::Int(4));
}

TEST_F(OptimizerTest, RunHandlesBareAggregate) {
  Optimizer opt(db_.schema());
  EXPECT_EQ(opt.Run(ParseOQL("max(select e.age from e in Employees)"), db_),
            Value::Int(55));
  EXPECT_EQ(opt.Run(ParseOQL("1 + 2 * 3"), db_), Value::Int(7));
}

TEST_F(OptimizerTest, CompileRejectsNonComprehension) {
  Optimizer opt(db_.schema());
  EXPECT_THROW(opt.Compile(ParseOQL("1 + 2")), UnsupportedError);
}

TEST_F(OptimizerTest, TypecheckCatchesBadQueriesBeforeExecution) {
  Optimizer opt(db_.schema());
  EXPECT_THROW(opt.Compile(ParseOQL(
                   "select distinct e.nope from e in Employees")),
               TypeError);
  EXPECT_THROW(opt.Compile(ParseOQL(
                   "select distinct e from e in Employees where e.name + 1 > 2")),
               TypeError);
}

TEST_F(OptimizerTest, BagQueriesWithoutNestingRunFine) {
  Value r = RunOQL(db_, "select e.dno from e in Employees");
  // Bag keeps duplicates: four employees over two departments.
  EXPECT_EQ(r, Value::Bag({Value::Int(0), Value::Int(0), Value::Int(1),
                           Value::Int(1)}));
}

TEST_F(OptimizerTest, BagNestingOverSetPathsIsAllowed) {
  // Bag semantics + nest, but every generator is an extent or set path:
  // object identity keeps groups distinct, so unnesting is safe and must
  // agree with the baseline.
  const char* q =
      "select struct(n: e.name, k: count(select c from c in e.children)) "
      "from e in Employees";
  Value optimized = RunOQL(db_, q);
  EXPECT_EQ(optimized, RunOQLBaseline(db_, q));
}

TEST_F(OptimizerTest, DuplicateSafetyRejectsBagNestOverBagPath) {
  // Extend the schema with a bag-typed attribute; unnesting a bag query
  // whose group keys may repeat must be rejected.
  Schema schema;
  schema.AddClass(ClassDecl{
      "Doc",
      "Docs",
      {{"words", Type::Bag(Type::Str())}, {"id", Type::Int()}}});
  Database db(schema);
  db.Insert("Doc", Value::Tuple({{"words", Value::Bag({Value::Str("a"),
                                                       Value::Str("a")})},
                                 {"id", Value::Int(1)}}));
  // For each word occurrence, count docs containing that word: the nested
  // query correlates with w, so its nest groups by (d, w) — and duplicate
  // occurrences of "a" would merge into one group under unnesting.
  ExprPtr q = ParseOQL(
      "select struct(w: w, n: count(select d2 from d2 in Docs "
      "where w in d2.words)) from d in Docs, w in d.words");
  Optimizer opt(schema);
  EXPECT_THROW(opt.Run(q, db), UnsupportedError);
  // The baseline still evaluates it.
  Value base = EvalCalculus(q, db);
  EXPECT_EQ(base.AsElems().size(), 2u);
  // And with the check disabled (documented unsafe), it runs but merges the
  // duplicate groups — exactly the hazard the check guards against.
  OptimizerOptions unsafe;
  unsafe.check_duplicate_safety = false;
  Optimizer opt2(schema, unsafe);
  Value merged = opt2.Run(q, db);
  EXPECT_EQ(merged.AsElems().size(), 1u);
}

TEST_F(OptimizerTest, SetNestingGroupedByBagVarAlsoRejected) {
  // Even under set semantics the hazard is real: the correlated count below
  // would tally the duplicate "a" rows into one group and report n=2 where
  // the baseline (one evaluation per occurrence) reports n=1 twice. The
  // safety check therefore rejects ANY nest grouped by a bag-unnest
  // variable, not just bag-monoid queries.
  Schema schema;
  schema.AddClass(ClassDecl{
      "Doc",
      "Docs",
      {{"words", Type::Bag(Type::Str())}, {"id", Type::Int()}}});
  Database db(schema);
  db.Insert("Doc", Value::Tuple({{"words", Value::Bag({Value::Str("a"),
                                                       Value::Str("a"),
                                                       Value::Str("b")})},
                                 {"id", Value::Int(1)}}));
  const char* q =
      "select distinct struct(w: w, n: count(select d2 from d2 in Docs "
      "where d2.id = d.id)) from d in Docs, w in d.words";
  Optimizer opt(schema);
  EXPECT_THROW(opt.Run(ParseOQL(q), db), UnsupportedError);
  // The baseline evaluates it fine.
  Value base = EvalCalculus(ParseOQL(q), db);
  EXPECT_EQ(base.AsElems().size(), 2u);

  // A bag unnest that only feeds reduces (no nest grouping) is fine.
  Value words = opt.Run(
      ParseOQL("select w from d in Docs, w in d.words"), db);
  EXPECT_EQ(words, Value::Bag({Value::Str("a"), Value::Str("a"),
                               Value::Str("b")}));
}

TEST_F(OptimizerTest, UnionOfQueriesAtTopLevel) {
  // Merge at the top is handled by Run (execute both sides, merge values).
  ExprPtr left = ParseOQL("select distinct e.name from e in Employees "
                          "where e.dno = 0");
  ExprPtr right = ParseOQL("select distinct e.name from e in Employees "
                           "where e.dno = 1");
  ExprPtr merged = Expr::Merge(MonoidKind::kSet, left, right);
  Optimizer opt(db_.schema());
  Value r = opt.Run(merged, db_);
  EXPECT_EQ(r.AsElems().size(), 4u);
}

}  // namespace
}  // namespace ldb
