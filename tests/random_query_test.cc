// Randomized soundness fuzzing: generates hundreds of random well-typed
// comprehensions over the Company schema — nested to several levels, with
// quantifiers, aggregates, and correlated predicates — and checks that the
// unnested plan's result equals the nested-loop baseline's (Theorem 2) and
// that every plan is comprehension-free (Theorem 1). This explores corners
// the hand-written battery cannot (odd correlation patterns, aggregates
// under quantifiers under aggregates, constant predicates, empty results).
//
// The primary optimizer runs with verify_plans on, making this a three-way
// property check per query: the Env engines' result, the slot engine's
// result, and the static verifier's verdict over every IR the pipeline
// produced (docs/VERIFIER.md) must all agree that the plan is correct.
// Each accepted query also exercises the pretty-printer round-trip that
// backs plan-cache keys: print(normalized) must re-parse, re-typecheck, and
// be a fixpoint of print∘normalize∘parse.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

// A random well-typed query generator. Every generated term type-checks by
// construction: variables track their class, attribute picks are type-aware.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  // A bound variable and its class.
  struct Binding {
    std::string var;
    std::string cls;
  };

  ExprPtr GenQuery() {
    scope_.clear();
    next_var_ = 0;
    return GenComp(PickOuterMonoid(), /*depth=*/0);
  }

 private:
  std::mt19937_64 rng_;
  std::vector<Binding> scope_;
  int next_var_ = 0;

  int Rand(int n) { return static_cast<int>(rng_() % static_cast<uint64_t>(n)); }
  bool Coin(double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
  }

  MonoidKind PickOuterMonoid() {
    static const MonoidKind kChoices[] = {MonoidKind::kSet, MonoidKind::kSet,
                                          MonoidKind::kSum, MonoidKind::kSome,
                                          MonoidKind::kAll, MonoidKind::kMax};
    return kChoices[Rand(6)];
  }

  // Extents and their classes.
  struct ExtentInfo {
    const char* extent;
    const char* cls;
  };
  const ExtentInfo* PickExtent() {
    static const ExtentInfo kExtents[] = {{"Employees", "Employee"},
                                          {"Departments", "Department"},
                                          {"Managers", "Manager"},
                                          {"Persons", "Person"}};
    return &kExtents[Rand(4)];
  }

  // Numeric paths per class (attribute chains yielding int/real). The
  // `manager.` prefix may traverse a NULL, which is exactly the interesting
  // case.
  std::pair<ExprPtr, bool> NumericPath(const Binding& b) {
    auto path = [&](std::initializer_list<const char*> attrs) {
      ExprPtr e = Expr::Var(b.var);
      for (const char* a : attrs) e = Expr::Proj(e, a);
      return e;
    };
    if (b.cls == "Employee") {
      switch (Rand(4)) {
        case 0: return {path({"age"}), true};
        case 1: return {path({"salary"}), false};
        case 2: return {path({"dno"}), true};
        default: return {path({"manager", "age"}), true};
      }
    }
    if (b.cls == "Department") {
      return Rand(2) == 0 ? std::make_pair(path({"dno"}), true)
                          : std::make_pair(path({"budget"}), false);
    }
    if (b.cls == "Manager") {
      return Rand(2) == 0 ? std::make_pair(path({"age"}), true)
                          : std::make_pair(path({"salary"}), false);
    }
    return {path({"age"}), true};  // Person
  }

  // Collection-valued paths per class (all set-typed in this schema).
  ExprPtr CollectionPath(const Binding& b) {
    if (b.cls == "Employee") {
      return Rand(2) == 0
                 ? Expr::Proj(Expr::Var(b.var), "children")
                 : Expr::Path(Expr::Var(b.var), {"manager", "children"});
    }
    if (b.cls == "Manager") return Expr::Proj(Expr::Var(b.var), "children");
    return nullptr;
  }

  std::string FreshVar() { return "g" + std::to_string(next_var_++); }

  // One comparison between numeric expressions in scope.
  ExprPtr GenComparison() {
    static const BinOpKind kCmp[] = {BinOpKind::kEq, BinOpKind::kNe,
                                     BinOpKind::kLt, BinOpKind::kLe,
                                     BinOpKind::kGt, BinOpKind::kGe};
    const Binding& a = scope_[static_cast<size_t>(Rand(static_cast<int>(scope_.size())))];
    auto [lhs, lhs_int] = NumericPath(a);
    ExprPtr rhs;
    if (scope_.size() > 1 && Coin(0.5)) {
      const Binding& b =
          scope_[static_cast<size_t>(Rand(static_cast<int>(scope_.size())))];
      rhs = NumericPath(b).first;
    } else {
      rhs = lhs_int ? Expr::Int(Rand(60)) : Expr::Real(Rand(120000));
    }
    return Expr::Bin(kCmp[Rand(6)], lhs, rhs);
  }

  // A nested comprehension usable as a boolean predicate.
  ExprPtr GenQuantifier(int depth) {
    MonoidKind m = Coin(0.5) ? MonoidKind::kSome : MonoidKind::kAll;
    return GenComp(m, depth + 1);
  }

  // A nested comprehension usable as a numeric value.
  ExprPtr GenAggregate(int depth) {
    static const MonoidKind kAggs[] = {MonoidKind::kSum, MonoidKind::kMax,
                                       MonoidKind::kMin, MonoidKind::kAvg};
    return GenComp(kAggs[Rand(4)], depth + 1);
  }

  ExprPtr GenPredicate(int depth) {
    if (depth < 2 && Coin(0.35)) {
      if (Coin(0.5)) return GenQuantifier(depth);
      // aggregate comparison: agg{...} cmp constant
      return Expr::Bin(Coin(0.5) ? BinOpKind::kLt : BinOpKind::kGe,
                       GenAggregate(depth), Expr::Int(Rand(10)));
    }
    ExprPtr cmp = GenComparison();
    if (Coin(0.2)) cmp = Expr::Not(cmp);
    if (Coin(0.2)) cmp = Expr::And(cmp, GenComparison());
    if (Coin(0.1)) cmp = Expr::Bin(BinOpKind::kOr, cmp, GenComparison());
    return cmp;
  }

  ExprPtr GenHead(MonoidKind m, int depth) {
    const Binding& b =
        scope_[static_cast<size_t>(Rand(static_cast<int>(scope_.size())))];
    switch (m) {
      case MonoidKind::kSome:
      case MonoidKind::kAll:
        return GenPredicate(depth);  // boolean head
      case MonoidKind::kSum:
      case MonoidKind::kMax:
      case MonoidKind::kMin:
      case MonoidKind::kAvg:
        if (depth < 2 && Coin(0.15)) return GenAggregate(depth);  // N9 fodder
        return NumericPath(b).first;
      default: {  // collection head
        if (Coin(0.4)) return Expr::Var(b.var);
        if (depth < 2 && Coin(0.3)) {
          // record with a nested subquery field
          return Expr::Record({{"k", NumericPath(b).first},
                               {"v", Coin(0.5) ? GenAggregate(depth)
                                               : GenComp(MonoidKind::kSet,
                                                         depth + 1)}});
        }
        return Expr::Record({{"a", NumericPath(b).first},
                             {"b", NumericPath(b).first}});
      }
    }
  }

  ExprPtr GenComp(MonoidKind m, int depth) {
    size_t scope_mark = scope_.size();
    std::vector<Qualifier> quals;
    // Inner comprehensions get one generator: stacked uncorrelated
    // multi-generator subqueries make the spliced stream's size the product
    // of all their extents (hundreds of millions of rows at depth 2) —
    // a cost blowup of full materialization, not a soundness question.
    int n_gens = 1 + ((depth == 0 && Coin(0.5)) ? 1 : 0);
    for (int i = 0; i < n_gens; ++i) {
      std::string v = FreshVar();
      ExprPtr domain;
      std::string cls;
      // Prefer path domains when a collection-bearing var is in scope.
      ExprPtr coll;
      if (!scope_.empty() && Coin(0.45)) {
        const Binding& b = scope_[static_cast<size_t>(
            Rand(static_cast<int>(scope_.size())))];
        coll = CollectionPath(b);
      }
      if (coll) {
        domain = coll;
        cls = "Person";  // children collections hold Persons
      } else {
        const ExtentInfo* ext = PickExtent();
        domain = Expr::Var(ext->extent);
        cls = ext->cls;
      }
      quals.push_back(Qualifier::Generator(v, domain));
      scope_.push_back(Binding{v, cls});
    }
    if (Coin(0.8)) quals.push_back(Qualifier::Filter(GenPredicate(depth)));
    ExprPtr head = GenHead(m, depth);
    scope_.resize(scope_mark);
    return Expr::Comp(m, head, std::move(quals));
  }
};

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQueryTest, PlanMatchesBaseline) {
  workload::CompanyParams params;
  params.n_departments = 5;
  params.n_employees = 30;
  params.n_managers = 4;
  params.seed = GetParam() * 1337 + 17;
  Database db = workload::MakeCompanyDatabase(params);
  OptimizerOptions verify_opts;
  verify_opts.verify_plans = true;  // static verdict alongside both engines
  Optimizer opt(db.schema(), verify_opts);

  // Differential executor harness: the same compiled plan must agree across
  // every execution engine. `opt` above is the default (serial slot-frame
  // pipeline); these cover the materializing algebra executor, the legacy
  // string-Env pipeline, and the parallel slot engine. A tiny morsel size
  // forces many morsels even on this 30-employee extent, so the parallel
  // merge paths (per-morsel accumulators, partial group tables) really run.
  OptimizerOptions algebra_opts;
  algebra_opts.pipelined_execution = false;
  Optimizer opt_algebra(db.schema(), algebra_opts);
  OptimizerOptions env_opts;
  env_opts.exec.use_slot_frames = false;
  Optimizer opt_env(db.schema(), env_opts);
  OptimizerOptions par_opts;
  par_opts.exec.n_threads = 4;
  par_opts.exec.morsel_size = 4;
  Optimizer opt_par(db.schema(), par_opts);

  QueryGen gen(GetParam());
  int checked = 0;
  for (int i = 0; i < 40; ++i) {
    ExprPtr q = gen.GenQuery();
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " #" +
                 std::to_string(i) + ": " + PrintExpr(q));
    // Every generated query must type-check (generator invariant).
    ASSERT_NO_THROW(TypeCheck(q, db.schema()));
    Value baseline = EvalCalculus(q, db);
    Value via_plan;
    CompiledQuery compiled;
    try {
      compiled = opt.Compile(q);
      EXPECT_TRUE(IsFullyUnnested(compiled.plan));
      via_plan = opt.Execute(compiled, db);
    } catch (const UnsupportedError&) {
      continue;  // e.g. a non-canonical residue; baseline-only territory
    } catch (const VerifyError& e) {
      // A verifier rejection on a fuzzed query is a bug in either the
      // optimizer or the verifier; recompile unverified so the failure
      // message carries the IR the verifier objected to.
      OptimizerOptions noverify;
      noverify.verify_plans = false;
      CompiledQuery c2 = Optimizer(db.schema(), noverify).Compile(q);
      FAIL() << e.what() << "\nnormalized: " << PrintExpr(c2.normalized)
             << "\nplan:\n"
             << PrintPlan(c2.plan);
    }
    EXPECT_EQ(via_plan, baseline);
    // Pretty-printer round-trip: the printed normalized term is the plan
    // cache's key, so it must re-parse to a term that prints identically,
    // still normalizes to itself, and still type-checks.
    const std::string cache_key = PrintExpr(compiled.normalized);
    ExprPtr reparsed = ParseCalculus(cache_key);
    EXPECT_EQ(PrintExpr(reparsed), cache_key) << "print/parse round-trip";
    EXPECT_EQ(PrintExpr(Normalize(reparsed)), cache_key)
        << "cache key is not a normalization fixpoint";
    ASSERT_NO_THROW(TypeCheck(reparsed, db.schema()));
    // serial slot pipeline == materializing executor == Env pipeline ==
    // parallel slot pipeline, on every plan the optimizer accepts. The
    // parallel result must be byte-identical (ExactSum makes kSum/kAvg
    // order-independent; group merges preserve morsel order).
    EXPECT_EQ(opt_algebra.Execute(compiled, db), baseline)
        << "materializing algebra executor";
    EXPECT_EQ(opt_env.Execute(compiled, db), baseline) << "Env pipeline";
    EXPECT_EQ(opt_par.Execute(compiled, db), baseline)
        << "parallel slot pipeline";
    // Path materialization must also be meaning-preserving on every fuzzed
    // query (the generator emits plenty of e.manager.x navigation).
    if (i % 4 == 0) {
      OptimizerOptions mat;
      mat.materialize_paths = true;
      Optimizer opt_mat(db.schema(), mat);
      EXPECT_EQ(opt_mat.Run(q, db), baseline) << "materialized";
    }
    ++checked;
  }
  // The generator must actually exercise the optimizer, not skip everything.
  EXPECT_GE(checked, 25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace ldb
