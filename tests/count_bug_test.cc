// The "count bug" regression suite (paper Section 1; Kim [16] / Ganski &
// Wong [15]). The classic failure: rewriting a correlated COUNT subquery as
// a plain join loses the outer rows whose group is EMPTY, because an empty
// group never produces a join row — count() must yield 0 for them, not
// disappear. The paper's fix is exactly the outer-join + nest pair with
// null-to-zero conversion; these tests pin that behaviour on extents with
// guaranteed-empty groups.

#include <gtest/gtest.h>

#include "src/core/pretty.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

class CountBugTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();  // "Empty" department has no employees
};

TEST_F(CountBugTest, EmptyGroupsCountZero) {
  // Every department must appear, Empty with count 0.
  Value r = testing::RunBothWays(
      db_,
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments");
  Value expected = Value::Set({
      Value::Tuple({{"D", Value::Str("Sales")}, {"n", Value::Int(2)}}),
      Value::Tuple({{"D", Value::Str("R&D")}, {"n", Value::Int(2)}}),
      Value::Tuple({{"D", Value::Str("Empty")}, {"n", Value::Int(0)}}),
  });
  EXPECT_EQ(r, expected);
}

TEST_F(CountBugTest, CountZeroPredicateSelectsEmptyDepartments) {
  // The query the count bug classically breaks: WHERE count(...) = 0 must
  // select exactly the empty departments; a join-based rewrite returns none.
  Value r = testing::RunBothWays(
      db_,
      "select distinct d.name from d in Departments "
      "where count(select e from e in Employees where e.dno = d.dno) = 0");
  EXPECT_EQ(r, Value::Set({Value::Str("Empty")}));
}

TEST_F(CountBugTest, ComparisonAgainstAggregateOverEmptyGroup) {
  // sum over an empty group is 0 (monoid zero); budget > 0 comparisons must
  // see 0, not a missing row.
  Value r = testing::RunBothWays(
      db_,
      "select distinct d.name from d in Departments "
      "where sum(select e.salary from e in Employees where e.dno = d.dno) "
      "      < d.budget");
  // Sales: 180000 < 0? no. R&D: 180000 < 1000? no. Empty: 0 < 2000? yes.
  EXPECT_EQ(r, Value::Set({Value::Str("Empty")}));
}

TEST_F(CountBugTest, MaxOverEmptyGroupIsNullNotZero) {
  // max over an empty group is NULL; comparisons with NULL are false, so no
  // department qualifies through an empty max — including Empty itself.
  Value r = testing::RunBothWays(
      db_,
      "select distinct d.name from d in Departments "
      "where max(select e.salary from e in Employees where e.dno = d.dno) "
      "      >= 0");
  EXPECT_EQ(r, Value::Set({Value::Str("Sales"), Value::Str("R&D")}));
}

TEST_F(CountBugTest, EmptyInnerCollectionCountsZero) {
  // Per-object collection version: Bob has no children.
  Value r = testing::RunBothWays(
      db_,
      "select distinct struct(E: e.name, n: count(e.children)) "
      "from e in Employees where count(e.children) = 0");
  EXPECT_EQ(r, Value::Set({Value::Tuple(
                   {{"E", Value::Str("Bob")}, {"n", Value::Int(0)}})}));
}

TEST_F(CountBugTest, WholeExtentEmpty) {
  // All groups empty: fresh database with departments but no employees.
  Database db(workload::CompanySchema());
  db.Insert("Department", Value::Tuple({{"dno", Value::Int(7)},
                                        {"name", Value::Str("Lonely")},
                                        {"budget", Value::Real(1)}}));
  Value r = testing::RunBothWays(
      db,
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments");
  EXPECT_EQ(r, Value::Set({Value::Tuple({{"D", Value::Str("Lonely")},
                                         {"n", Value::Int(0)}})}));
}

TEST_F(CountBugTest, NestedCountInsideCount) {
  // Double-nested aggregates: counts of zero-count groups.
  Value r = testing::RunBothWays(
      db_,
      "count(select d from d in Departments "
      "where count(select e from e in Employees where e.dno = d.dno) = 0)");
  EXPECT_EQ(r, Value::Int(1));
}

}  // namespace
}  // namespace ldb
