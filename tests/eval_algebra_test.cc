// Tests for physical operator selection (src/runtime/physical.*) and the
// hash vs nested-loop equivalence of the executor (src/runtime/eval_algebra.*).

#include "src/runtime/physical.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/unnest.h"
#include "src/runtime/eval_algebra.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

TEST(EquiKeyTest, ExtractsSimpleEquality) {
  ExprPtr pred = Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno"));
  JoinKeys keys = ExtractEquiKeys(pred, {"d"}, {"e"});
  ASSERT_TRUE(keys.hashable());
  ASSERT_EQ(keys.left_keys.size(), 1u);
  // Sides are normalized: left key over left vars.
  EXPECT_EQ(FreeVars(keys.left_keys[0]).count("d"), 1u);
  EXPECT_EQ(FreeVars(keys.right_keys[0]).count("e"), 1u);
  EXPECT_TRUE(keys.residual->IsTrueLiteral());
}

TEST(EquiKeyTest, KeepsResidual) {
  ExprPtr pred = Expr::And(
      Expr::Eq(Expr::Proj(V("a"), "x"), Expr::Proj(V("b"), "x")),
      Expr::Bin(BinOpKind::kLt, Expr::Proj(V("a"), "y"), Expr::Proj(V("b"), "y")));
  JoinKeys keys = ExtractEquiKeys(pred, {"a"}, {"b"});
  EXPECT_TRUE(keys.hashable());
  EXPECT_EQ(keys.left_keys.size(), 1u);
  EXPECT_FALSE(keys.residual->IsTrueLiteral());
}

TEST(EquiKeyTest, CrossSideEqualityIsNotAKey) {
  // a.x = a.y references only the left side: not hashable.
  ExprPtr pred = Expr::Eq(Expr::Proj(V("a"), "x"), Expr::Proj(V("a"), "y"));
  JoinKeys keys = ExtractEquiKeys(pred, {"a"}, {"b"});
  EXPECT_FALSE(keys.hashable());
  EXPECT_FALSE(keys.residual->IsTrueLiteral());
}

TEST(EquiKeyTest, MultipleKeys) {
  ExprPtr pred = Expr::And(
      Expr::Eq(Expr::Proj(V("t"), "sid"), Expr::Proj(V("s"), "sid")),
      Expr::Eq(Expr::Proj(V("t"), "cno"), Expr::Proj(V("c"), "cno")));
  JoinKeys keys = ExtractEquiKeys(pred, {"s", "c"}, {"t"});
  EXPECT_EQ(keys.left_keys.size(), 2u);
  EXPECT_TRUE(keys.residual->IsTrueLiteral());
}

TEST(EquiKeyTest, NonEqualityIsResidual) {
  ExprPtr pred = Expr::Bin(BinOpKind::kLt, V("a"), V("b"));
  JoinKeys keys = ExtractEquiKeys(pred, {"a"}, {"b"});
  EXPECT_FALSE(keys.hashable());
}

class PhysicalTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
};

TEST_F(PhysicalTest, ExplainShowsHashJoinWithKeys) {
  AlgPtr plan = UnnestComp(
      Normalize(ParseOQL(
          "select distinct struct(D: d.name, E: (select distinct e.name "
          "from e in Employees where e.dno = d.dno)) from d in Departments")),
      db_.schema());
  PhysicalOptions hash;
  std::string explained = ExplainPhysical(plan, hash);
  EXPECT_NE(explained.find("HashOuterJoin"), std::string::npos) << explained;
  EXPECT_NE(explained.find("keys("), std::string::npos);

  PhysicalOptions nl;
  nl.use_hash_joins = false;
  std::string explained_nl = ExplainPhysical(plan, nl);
  EXPECT_NE(explained_nl.find("NLOuterJoin"), std::string::npos) << explained_nl;
}

TEST_F(PhysicalTest, HashAndNLAgreeOnPaperQueries) {
  const char* queries[] = {
      "select distinct struct(E: e.name, C: c.name) "
      "from e in Employees, c in e.children",
      "select distinct struct(D: d.name, E: (select distinct e.name "
      "from e in Employees where e.dno = d.dno)) from d in Departments",
      "select distinct e.name from e in Employees "
      "where e.salary < max(select m.salary from m in Managers "
      "where e.age > m.age)",
      "select distinct e.dno, avg(e.salary) from Employees e "
      "where e.age > 30 group by e.dno",
  };
  for (const char* q : queries) {
    OptimizerOptions hash, nl;
    nl.physical.use_hash_joins = false;
    EXPECT_EQ(RunOQL(db_, q, hash), RunOQL(db_, q, nl)) << q;
  }
}

TEST_F(PhysicalTest, NullJoinKeysNeverMatch) {
  // Employees with a NULL manager must not join to anything through the
  // hash table (NULL = NULL is false), matching nested-loop semantics.
  ExprPtr pred = Expr::Eq(Expr::Proj(V("e"), "manager"), V("m"));
  AlgPtr join =
      AlgOp::Join(AlgOp::Scan("Employees", "e", nullptr),
                  AlgOp::Scan("Managers", "m", nullptr), pred);
  AlgPtr plan = AlgOp::Reduce(join, MonoidKind::kSet,
                              Expr::Proj(V("e"), "name"), nullptr);
  PhysicalOptions hash, nl;
  nl.use_hash_joins = false;
  Value h = ExecutePlan(plan, db_, hash);
  Value n = ExecutePlan(plan, db_, nl);
  EXPECT_EQ(h, n);
  // Cal has NULL manager: absent.
  EXPECT_EQ(h, Value::Set({Value::Str("Ann"), Value::Str("Bob"),
                           Value::Str("Dee")}));
}

TEST_F(PhysicalTest, OuterJoinNullLeftKeyStillPads) {
  // With a NULL left key, the outer-join must pad rather than drop or match.
  ExprPtr pred = Expr::Eq(Expr::Proj(V("e"), "manager"), V("m"));
  AlgPtr join =
      AlgOp::OuterJoin(AlgOp::Scan("Employees", "e", nullptr),
                       AlgOp::Scan("Managers", "m", nullptr), pred);
  AlgPtr plan = AlgOp::Reduce(
      join, MonoidKind::kSet,
      Expr::Record({{"e", Expr::Proj(V("e"), "name")},
                    {"pad", Expr::Un(UnOpKind::kIsNull, V("m"))}}),
      nullptr);
  PhysicalOptions hash, nl;
  nl.use_hash_joins = false;
  Value h = ExecutePlan(plan, db_, hash);
  EXPECT_EQ(h, ExecutePlan(plan, db_, nl));
  // Cal appears padded.
  bool found = false;
  for (const Value& row : h.AsElems()) {
    if (row.Field("e") == Value::Str("Cal")) {
      found = true;
      EXPECT_EQ(row.Field("pad"), Value::Bool(true));
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ldb
