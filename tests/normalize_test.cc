// Tests for the normalization algorithm (Figure 4, rules N1-N9) and
// predicate normalization (src/core/normalize.*). Each rule gets a direct
// test; meaning preservation is additionally covered by the property suite.

#include "src/core/normalize.h"

#include <gtest/gtest.h>

#include "src/core/pretty.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

TEST(NormalizeTest, N1BetaReduction) {
  ExprPtr e = Expr::Apply(Expr::Lambda("v", Expr::Bin(BinOpKind::kAdd, V("v"),
                                                      Expr::Int(1))),
                          Expr::Int(2));
  ExprPtr out = Normalize(e);
  EXPECT_TRUE(ExprEqual(out, Expr::Bin(BinOpKind::kAdd, Expr::Int(2), Expr::Int(1))));
}

TEST(NormalizeTest, N2RecordProjection) {
  ExprPtr e = Expr::Proj(Expr::Record({{"a", Expr::Int(1)}, {"b", V("x")}}), "b");
  EXPECT_TRUE(ExprEqual(Normalize(e), V("x")));
}

TEST(NormalizeTest, N3GeneratorOverConditional) {
  // sum{ v | v <- if p then A else B }
  //   = sum{ v | p, v <- A } + sum{ v | not p, v <- B }
  ExprPtr e = Expr::Comp(
      MonoidKind::kSum, V("v"),
      {Qualifier::Generator("v", Expr::If(V("p"), V("A"), V("B")))});
  ExprPtr out = Normalize(e);
  ASSERT_EQ(out->kind, ExprKind::kMerge);
  EXPECT_EQ(out->monoid, MonoidKind::kSum);
  EXPECT_EQ(out->a->kind, ExprKind::kComp);
  EXPECT_EQ(out->b->kind, ExprKind::kComp);
  // then-branch gets filter p before the generator.
  EXPECT_FALSE(out->a->quals[0].is_generator);
  EXPECT_TRUE(ExprEqual(out->a->quals[0].expr, V("p")));
}

TEST(NormalizeTest, N4GeneratorOverZero) {
  ExprPtr e = Expr::Comp(MonoidKind::kSet, V("v"),
                         {Qualifier::Generator("v", Expr::Zero(MonoidKind::kSet))});
  EXPECT_EQ(Normalize(e)->kind, ExprKind::kZero);

  // Empty collection literal behaves like the zero.
  ExprPtr e2 = Expr::Comp(MonoidKind::kSum, Expr::Int(1),
                          {Qualifier::Generator("v", Expr::Lit(Value::Set({})))});
  EXPECT_EQ(Normalize(e2)->kind, ExprKind::kZero);
}

TEST(NormalizeTest, N5GeneratorOverSingleton) {
  // set{ v.a | v <- {x} } = set{ x.a }  (a singleton, i.e. a no-qualifier comp)
  ExprPtr e = Expr::Comp(
      MonoidKind::kSet, Expr::Proj(V("v"), "a"),
      {Qualifier::Generator("v", Expr::Singleton(MonoidKind::kSet, V("x")))});
  ExprPtr out = Normalize(e);
  ASSERT_EQ(out->kind, ExprKind::kComp);
  EXPECT_TRUE(out->quals.empty());
  EXPECT_TRUE(ExprEqual(out->a, Expr::Proj(V("x"), "a")));
}

TEST(NormalizeTest, N6MergeSplitIdempotent) {
  // set{ v | v <- A (+) B } = set{ v | v <- A } (+) set{ v | v <- B }
  ExprPtr e = Expr::Comp(
      MonoidKind::kSet, V("v"),
      {Qualifier::Generator("v", Expr::Merge(MonoidKind::kSet, V("A"), V("B")))});
  ExprPtr out = Normalize(e);
  ASSERT_EQ(out->kind, ExprKind::kMerge);
  EXPECT_TRUE(ExprEqual(out->a->quals[0].expr, V("A")));
  EXPECT_TRUE(ExprEqual(out->b->quals[0].expr, V("B")));
}

TEST(NormalizeTest, N6MergeSplitNonIdempotentGetsMembershipGuard) {
  // The paper's Section 2 inconsistency: sum{ a | a <- {1} U {1} } must stay
  // 1, so the second branch needs the all{ w != v | w <- e1 } guard (D7).
  ExprPtr one = Expr::Singleton(MonoidKind::kSet, Expr::Int(1));
  ExprPtr e = Expr::Comp(
      MonoidKind::kSum, V("a"),
      {Qualifier::Generator("a", Expr::Merge(MonoidKind::kSet, one, one))});
  ExprPtr out = Normalize(e);
  // Shape check: a merge whose right branch carries a guard that normalizes
  // to (1 != 1) = false, i.e. the right branch must have a false-ish filter
  // or be zero. We verify semantically in the property suite; here check the
  // guard survived: the printed form mentions a '!=' comparison or the whole
  // branch collapsed to zero.
  std::string printed = PrintExpr(out);
  EXPECT_TRUE(printed.find("not(") != std::string::npos ||
              printed.find("zero") != std::string::npos)
      << printed;
}

TEST(NormalizeTest, N6BagMergeSplitNeedsNoGuard) {
  ExprPtr one = Expr::Singleton(MonoidKind::kBag, Expr::Int(1));
  ExprPtr e = Expr::Comp(
      MonoidKind::kSum, V("a"),
      {Qualifier::Generator("a", Expr::Merge(MonoidKind::kBag, one, one))});
  std::string printed = PrintExpr(Normalize(e));
  EXPECT_EQ(printed.find("not("), std::string::npos) << printed;
}

TEST(NormalizeTest, N7FlattensNestedGeneratorDomain) {
  // set{ h.price | h <- set{ h2 | c <- Cities, h2 <- c.hotels } }
  //   = set{ h2.price | c <- Cities, h2 <- c.hotels }
  ExprPtr inner = Expr::Comp(
      MonoidKind::kSet, V("h2"),
      {Qualifier::Generator("c", V("Cities")),
       Qualifier::Generator("h2", Expr::Proj(V("c"), "hotels"))});
  ExprPtr e = Expr::Comp(MonoidKind::kSet, Expr::Proj(V("h"), "price"),
                         {Qualifier::Generator("h", inner)});
  ExprPtr out = Normalize(e);
  ASSERT_EQ(out->kind, ExprKind::kComp);
  ASSERT_EQ(out->quals.size(), 2u);
  EXPECT_TRUE(out->quals[0].is_generator);
  EXPECT_TRUE(out->quals[1].is_generator);
  EXPECT_TRUE(IsCanonicalComp(out));
}

TEST(NormalizeTest, N7GuardedForSetIntoNonIdempotent) {
  // sum{ 1 | v <- set{ x.a | x <- X } } counts DISTINCT a-values; flattening
  // would over-count, so the inner set comprehension must survive.
  ExprPtr inner = Expr::Comp(MonoidKind::kSet, Expr::Proj(V("x"), "a"),
                             {Qualifier::Generator("x", V("X"))});
  ExprPtr e = Expr::Comp(MonoidKind::kSum, Expr::Int(1),
                         {Qualifier::Generator("v", inner)});
  ExprPtr out = Normalize(e);
  ASSERT_EQ(out->kind, ExprKind::kComp);
  ASSERT_EQ(out->quals.size(), 1u);
  EXPECT_EQ(out->quals[0].expr->kind, ExprKind::kComp);  // not flattened
}

TEST(NormalizeTest, N7BagIntoSumFlattens) {
  ExprPtr inner = Expr::Comp(MonoidKind::kBag, Expr::Proj(V("x"), "a"),
                             {Qualifier::Generator("x", V("X"))});
  ExprPtr e = Expr::Comp(MonoidKind::kSum, V("v"),
                         {Qualifier::Generator("v", inner)});
  ExprPtr out = Normalize(e);
  ASSERT_EQ(out->quals.size(), 1u);
  EXPECT_TRUE(out->quals[0].is_generator);
  EXPECT_TRUE(IsCanonicalComp(out));
}

TEST(NormalizeTest, N8UnnestsExistentialFilter) {
  // set{ s | s <- S, some{ t.id = s.id | t <- T } }
  //   = set{ s | s <- S, t <- T, t.id = s.id }
  ExprPtr ex = Expr::Comp(
      MonoidKind::kSome,
      Expr::Eq(Expr::Proj(V("t"), "id"), Expr::Proj(V("s"), "id")),
      {Qualifier::Generator("t", V("T"))});
  ExprPtr e = Expr::Comp(MonoidKind::kSet, V("s"),
                         {Qualifier::Generator("s", V("S")),
                          Qualifier::Filter(ex)});
  ExprPtr out = Normalize(e);
  ASSERT_EQ(out->quals.size(), 3u);
  EXPECT_TRUE(out->quals[0].is_generator);
  EXPECT_TRUE(out->quals[1].is_generator);  // t pulled up
  EXPECT_FALSE(out->quals[2].is_generator);
}

TEST(NormalizeTest, N8DoesNotFireForNonIdempotentOuter) {
  ExprPtr ex = Expr::Comp(MonoidKind::kSome, Expr::Eq(V("t"), V("s")),
                          {Qualifier::Generator("t", V("T"))});
  ExprPtr e = Expr::Comp(MonoidKind::kSum, Expr::Int(1),
                         {Qualifier::Generator("s", V("S")),
                          Qualifier::Filter(ex)});
  ExprPtr out = Normalize(e);
  ASSERT_EQ(out->quals.size(), 2u);
  EXPECT_EQ(out->quals[1].expr->kind, ExprKind::kComp);  // still nested
}

TEST(NormalizeTest, N9FusesPrimitiveHeads) {
  // sum{ sum{ x.a | x <- v.kids } | v <- V } = sum{ x.a | v <- V, x <- v.kids }
  ExprPtr inner = Expr::Comp(MonoidKind::kSum, Expr::Proj(V("x"), "a"),
                             {Qualifier::Generator("x", Expr::Proj(V("v"), "kids"))});
  ExprPtr e = Expr::Comp(MonoidKind::kSum, inner,
                         {Qualifier::Generator("v", V("V"))});
  ExprPtr out = Normalize(e);
  ASSERT_EQ(out->quals.size(), 2u);
  EXPECT_EQ(out->a->kind, ExprKind::kProj);
  EXPECT_TRUE(IsCanonicalComp(out));
}

TEST(NormalizeTest, ConstantFilters) {
  ExprPtr e = Expr::Comp(MonoidKind::kSet, V("v"),
                         {Qualifier::Generator("v", V("A")),
                          Qualifier::Filter(Expr::True())});
  EXPECT_EQ(Normalize(e)->quals.size(), 1u);

  ExprPtr f = Expr::Comp(MonoidKind::kSet, V("v"),
                         {Qualifier::Generator("v", V("A")),
                          Qualifier::Filter(Expr::False())});
  EXPECT_EQ(Normalize(f)->kind, ExprKind::kZero);
}

TEST(NormalizeTest, ConjunctiveFiltersSplit) {
  ExprPtr e = Expr::Comp(
      MonoidKind::kSet, V("v"),
      {Qualifier::Generator("v", V("A")),
       Qualifier::Filter(Expr::And(Expr::Eq(V("v"), Expr::Int(1)),
                                   Expr::Eq(V("v"), Expr::Int(2))))});
  EXPECT_EQ(Normalize(e)->quals.size(), 3u);
}

TEST(NormalizeTest, PrimitiveComprehensionWithNoQualifiersIsHead) {
  ExprPtr e = Expr::Comp(MonoidKind::kSum, Expr::Int(5), {});
  EXPECT_TRUE(ExprEqual(Normalize(e), Expr::Int(5)));
  // Collection singletons must stay.
  ExprPtr s = Expr::Singleton(MonoidKind::kSet, Expr::Int(5));
  EXPECT_EQ(Normalize(s)->kind, ExprKind::kComp);
}

TEST(NormalizeTest, PredicateDeMorgan) {
  ExprPtr e = Expr::Not(Expr::And(V("p"), V("q")));
  ExprPtr out = NormalizePredicate(e);
  ASSERT_EQ(out->kind, ExprKind::kBinOp);
  EXPECT_EQ(out->bin_op, BinOpKind::kOr);

  ExprPtr f = Expr::Not(Expr::Bin(BinOpKind::kOr, V("p"), V("q")));
  EXPECT_EQ(NormalizePredicate(f)->bin_op, BinOpKind::kAnd);
}

TEST(NormalizeTest, PredicateDoubleNegation) {
  EXPECT_TRUE(ExprEqual(NormalizePredicate(Expr::Not(Expr::Not(V("p")))), V("p")));
}

TEST(NormalizeTest, ComparisonFlipsAreNotPerformed) {
  // not(x < y) must NOT become x >= y: with NULL operands the comparison is
  // false either way, so the flip would change not(false)=true into false.
  ExprPtr lt = Expr::Not(Expr::Bin(BinOpKind::kLt, V("x"), V("y")));
  ExprPtr out = NormalizePredicate(lt);
  ASSERT_EQ(out->kind, ExprKind::kUnOp);
  EXPECT_EQ(out->un_op, UnOpKind::kNot);
}

TEST(NormalizeTest, QuantifierDuals) {
  // not some{p | v <- D} = all{ not p | v <- D }, and the inner "not p"
  // keeps normalizing.
  ExprPtr some = Expr::Comp(MonoidKind::kSome, Expr::Eq(V("v"), Expr::Int(1)),
                            {Qualifier::Generator("v", V("D"))});
  ExprPtr out = Normalize(Expr::Not(some));
  ASSERT_EQ(out->kind, ExprKind::kComp);
  EXPECT_EQ(out->monoid, MonoidKind::kAll);
  // The some-head first moves into a filter (some{p|q} = some{true|q,p}), so
  // the dual is all{ not true | v <- D, v = 1 } with head folding to false.
  EXPECT_TRUE(out->a->IsFalseLiteral());
  ASSERT_EQ(out->quals.size(), 2u);
  EXPECT_FALSE(out->quals[1].is_generator);  // the moved predicate

  ExprPtr all = Expr::Comp(MonoidKind::kAll, V("p"),
                           {Qualifier::Generator("v", V("D"))});
  ExprPtr out2 = Normalize(Expr::Not(all));
  EXPECT_EQ(out2->monoid, MonoidKind::kSome);
}

TEST(NormalizeTest, SectionTwoHotelQueryNormalizesToCanonical) {
  // The paper's Section 2 example: after N7 (twice) and N8 (twice) the query
  // becomes a single flat comprehension with 5 generators and 4 filters.
  ExprPtr inner_hotels = Expr::Comp(
      MonoidKind::kSet, V("h"),
      {Qualifier::Generator("c", V("Cities")),
       Qualifier::Generator("h", Expr::Proj(V("c"), "hotels")),
       Qualifier::Filter(Expr::Eq(Expr::Proj(V("c"), "name"),
                                  Expr::Str("Arlington")))});
  ExprPtr inner_names = Expr::Comp(
      MonoidKind::kSet, Expr::Proj(V("t"), "name"),
      {Qualifier::Generator("s", V("States")),
       Qualifier::Generator("t", Expr::Proj(V("s"), "attractions")),
       Qualifier::Filter(Expr::Eq(Expr::Proj(V("s"), "name"), Expr::Str("Texas")))});
  ExprPtr rooms_exists = Expr::Comp(
      MonoidKind::kSome,
      Expr::Eq(Expr::Proj(V("r"), "bed_num"), Expr::Int(3)),
      {Qualifier::Generator("r", Expr::Proj(V("hotel"), "rooms"))});
  ExprPtr name_in = Expr::Comp(
      MonoidKind::kSome, Expr::Eq(V("e"), Expr::Proj(V("hotel"), "name")),
      {Qualifier::Generator("e", inner_names)});
  ExprPtr query = Expr::Comp(
      MonoidKind::kSet, Expr::Proj(V("hotel"), "price"),
      {Qualifier::Generator("hotel", inner_hotels),
       Qualifier::Filter(rooms_exists), Qualifier::Filter(name_in)});

  ExprPtr out = Normalize(query);
  ASSERT_EQ(out->kind, ExprKind::kComp);
  EXPECT_TRUE(IsCanonicalComp(out));
  int generators = 0, filters = 0;
  for (const Qualifier& q : out->quals) (q.is_generator ? generators : filters)++;
  EXPECT_EQ(generators, 5);  // c, h, r, s, t
  EXPECT_EQ(filters, 4);
}

TEST(NormalizeTest, Idempotent) {
  ExprPtr inner = Expr::Comp(MonoidKind::kSet, V("h2"),
                             {Qualifier::Generator("c", V("Cities")),
                              Qualifier::Generator("h2", Expr::Proj(V("c"), "hotels"))});
  ExprPtr e = Expr::Comp(MonoidKind::kSet, V("h"),
                         {Qualifier::Generator("h", inner)});
  ExprPtr once = Normalize(e);
  ExprPtr twice = Normalize(once);
  EXPECT_TRUE(ExprEqual(once, twice));
}

TEST(NormalizeTest, MergeWithZeroCollapses) {
  ExprPtr e = Expr::Merge(MonoidKind::kSet, Expr::Zero(MonoidKind::kSet), V("A"));
  EXPECT_TRUE(ExprEqual(Normalize(e), V("A")));
}

}  // namespace
}  // namespace ldb
