// Unit tests for the runtime value model (src/runtime/value.*).

#include "src/runtime/value.h"

#include <gtest/gtest.h>

#include "src/runtime/error.h"

namespace ldb {
namespace {

TEST(ValueTest, PrimitivesRoundTrip) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsStr(), "hi");
}

TEST(ValueTest, WrongAccessorThrows) {
  EXPECT_THROW(Value::Int(1).AsBool(), EvalError);
  EXPECT_THROW(Value::Str("x").AsInt(), EvalError);
  EXPECT_THROW(Value::Null().AsElems(), EvalError);
  EXPECT_THROW(Value::Bool(true).AsTuple(), EvalError);
}

TEST(ValueTest, NumericWidening) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(3.5).AsNumeric(), 3.5);
  EXPECT_THROW(Value::Str("3").AsNumeric(), EvalError);
}

TEST(ValueTest, IntAndRealCompareNumerically) {
  EXPECT_EQ(Value::Int(3), Value::Real(3.0));
  EXPECT_LT(Value::Int(2), Value::Real(2.5));
  // Equal values must hash equal.
  EXPECT_EQ(Value::Int(3).Hash(), Value::Real(3.0).Hash());
}

TEST(ValueTest, TupleFieldAccess) {
  Value t = Value::Tuple({{"a", Value::Int(1)}, {"b", Value::Str("x")}});
  EXPECT_EQ(t.Field("a"), Value::Int(1));
  EXPECT_EQ(t.Field("b"), Value::Str("x"));
  EXPECT_TRUE(t.HasField("a"));
  EXPECT_FALSE(t.HasField("c"));
  EXPECT_THROW(t.Field("c"), EvalError);
}

TEST(ValueTest, SetIsSortedAndDeduplicated) {
  Value s = Value::Set({Value::Int(3), Value::Int(1), Value::Int(3), Value::Int(2)});
  ASSERT_EQ(s.AsElems().size(), 3u);
  EXPECT_EQ(s.AsElems()[0], Value::Int(1));
  EXPECT_EQ(s.AsElems()[1], Value::Int(2));
  EXPECT_EQ(s.AsElems()[2], Value::Int(3));
}

TEST(ValueTest, SetEqualityIsOrderInsensitive) {
  Value a = Value::Set({Value::Int(1), Value::Int(2)});
  Value b = Value::Set({Value::Int(2), Value::Int(1)});
  EXPECT_EQ(a, b);
}

TEST(ValueTest, BagKeepsDuplicates) {
  Value b = Value::Bag({Value::Int(2), Value::Int(1), Value::Int(2)});
  ASSERT_EQ(b.AsElems().size(), 3u);
  EXPECT_EQ(b.AsElems()[0], Value::Int(1));
  EXPECT_EQ(b.AsElems()[2], Value::Int(2));
}

TEST(ValueTest, BagAndSetWithSameElementsDiffer) {
  Value s = Value::Set({Value::Int(1)});
  Value b = Value::Bag({Value::Int(1)});
  EXPECT_NE(s, b);
}

TEST(ValueTest, ListPreservesOrder) {
  Value l = Value::List({Value::Int(2), Value::Int(1)});
  EXPECT_EQ(l.AsElems()[0], Value::Int(2));
  EXPECT_NE(l, Value::List({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, NestedStructuralEquality) {
  Value a = Value::Set({Value::Tuple({{"x", Value::Int(1)}}),
                        Value::Tuple({{"x", Value::Int(2)}})});
  Value b = Value::Set({Value::Tuple({{"x", Value::Int(2)}}),
                        Value::Tuple({{"x", Value::Int(1)}})});
  EXPECT_EQ(a, b);
}

TEST(ValueTest, RefEqualityByClassAndOid) {
  EXPECT_EQ(Value::MakeRef("Employee", 3), Value::MakeRef("Employee", 3));
  EXPECT_NE(Value::MakeRef("Employee", 3), Value::MakeRef("Employee", 4));
  EXPECT_NE(Value::MakeRef("Employee", 3), Value::MakeRef("Manager", 3));
}

TEST(ValueTest, CompareTotalOrderAcrossKinds) {
  // Null < bool < numerics < string (by Kind rank).
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::Str(""));
}

TEST(ValueTest, ToStringRendersReadably) {
  Value v = Value::Set({Value::Tuple({{"n", Value::Str("a")}})});
  EXPECT_EQ(v.ToString(), "{<n=\"a\">}");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::MakeRef("C", 7).ToString(), "C#7");
  EXPECT_EQ(Value::Bag({Value::Int(1)}).ToString(), "{|1|}");
  EXPECT_EQ(Value::List({Value::Int(1)}).ToString(), "[1]");
}

TEST(ValueTest, HashConsistentWithEquality) {
  Value a = Value::Set({Value::Int(1), Value::Int(2)});
  Value b = Value::Set({Value::Int(2), Value::Int(1), Value::Int(2)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, EmptyCollections) {
  EXPECT_TRUE(Value::Set({}).AsElems().empty());
  EXPECT_NE(Value::Set({}), Value::Bag({}));
  EXPECT_EQ(Value::Set({}), Value::Set({}));
}

TEST(ValueTest, TupleFieldOrderMattersForEquality) {
  Value a = Value::Tuple({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value b = Value::Tuple({{"y", Value::Int(2)}, {"x", Value::Int(1)}});
  EXPECT_NE(a, b);  // records are positional-with-names, like the calculus
}

}  // namespace
}  // namespace ldb
