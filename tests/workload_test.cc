// Tests for the synthetic workload generators (src/workload/*): determinism,
// requested cardinalities, referential integrity, and presence of the edge
// cases the unnesting experiments rely on.

#include <gtest/gtest.h>

#include "src/lambdadb.h"
#include "src/workload/company.h"
#include "src/workload/travel.h"
#include "src/workload/university.h"

namespace ldb {
namespace {

TEST(CompanyWorkloadTest, CardinalitiesMatchParams) {
  workload::CompanyParams p;
  p.n_departments = 7;
  p.n_employees = 33;
  p.n_managers = 4;
  Database db = workload::MakeCompanyDatabase(p);
  EXPECT_EQ(db.Extent("Departments").size(), 7u);
  EXPECT_EQ(db.Extent("Employees").size(), 33u);
  EXPECT_EQ(db.Extent("Managers").size(), 4u);
}

TEST(CompanyWorkloadTest, DeterministicForSameSeed) {
  workload::CompanyParams p;
  p.seed = 99;
  Database a = workload::MakeCompanyDatabase(p);
  Database b = workload::MakeCompanyDatabase(p);
  const char* q = "select distinct struct(n: e.name, s: e.salary, d: e.dno) "
                  "from e in Employees";
  EXPECT_EQ(RunOQLBaseline(a, q), RunOQLBaseline(b, q));

  p.seed = 100;
  Database c = workload::MakeCompanyDatabase(p);
  EXPECT_NE(RunOQLBaseline(a, q), RunOQLBaseline(c, q));
}

TEST(CompanyWorkloadTest, EdgeCasesPresent) {
  workload::CompanyParams p;
  p.n_departments = 10;
  p.n_employees = 200;
  Database db = workload::MakeCompanyDatabase(p);
  // Empty departments exist (outer-join padding / count bug fodder).
  Value empty_depts = RunOQLBaseline(
      db,
      "count(select d from d in Departments where count(select e from e in "
      "Employees where e.dno = d.dno) = 0)");
  EXPECT_GT(empty_depts.AsInt(), 0);
  // Childless employees exist.
  Value childless = RunOQLBaseline(
      db, "count(select e from e in Employees where count(e.children) = 0)");
  EXPECT_GT(childless.AsInt(), 0);
  // Employees without a manager exist (NULL navigation fodder).
  Value no_mgr = RunOQLBaseline(
      db, "count(select e from e in Employees "
          "where not (e.manager.age >= 0) and not (e.manager.age < 0))");
  EXPECT_GT(no_mgr.AsInt(), 0);
}

TEST(CompanyWorkloadTest, ReferentialIntegrity) {
  Database db = workload::MakeCompanyDatabase({});
  // Every child ref dereferences; every manager ref (if present) does too.
  for (const Value& eref : db.Extent("Employees")) {
    const Value& e = db.Deref(eref.AsRef());
    for (const Value& c : e.Field("children").AsElems()) {
      EXPECT_NO_THROW(db.Deref(c.AsRef()));
    }
    if (!e.Field("manager").is_null()) {
      EXPECT_NO_THROW(db.Deref(e.Field("manager").AsRef()));
    }
    int64_t dno = e.Field("dno").AsInt();
    EXPECT_GE(dno, 0);
    EXPECT_LT(dno, 10);
  }
}

TEST(UniversityWorkloadTest, PlantedStudentsQualify) {
  workload::UniversityParams p;
  p.n_students = 50;
  p.n_courses = 10;
  p.take_all_fraction = 0.2;
  p.seed = 7;
  Database db = workload::MakeUniversityDatabase(p);
  Value qualified = RunOQLBaseline(
      db,
      "count(select s from s in Students "
      "where for all c in select c from c in Courses where c.title = 'DB': "
      "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno)");
  // The planted take-all students qualify; random enrollment may add more.
  EXPECT_GT(qualified.AsInt(), 0);
  EXPECT_LT(qualified.AsInt(), 50);
}

TEST(UniversityWorkloadTest, DBCoursesExist) {
  Database db = workload::MakeUniversityDatabase({});
  Value n = RunOQLBaseline(
      db, "count(select c from c in Courses where c.title = 'DB')");
  EXPECT_GT(n.AsInt(), 0);
}

TEST(TravelWorkloadTest, StructureMatchesParams) {
  workload::TravelParams p;
  p.n_cities = 3;
  p.hotels_per_city = 2;
  p.rooms_per_hotel = 5;
  Database db = workload::MakeTravelDatabase(p);
  EXPECT_EQ(db.Extent("Cities").size(), 3u);
  EXPECT_EQ(db.Extent("Hotels").size(), 6u);
  EXPECT_EQ(db.Extent("Rooms").size(), 30u);
  EXPECT_EQ(RunOQLBaseline(
                db, "count(select h from c in Cities, h in c.hotels)"),
            Value::Int(6));
}

TEST(TravelWorkloadTest, ArlingtonAndTexasPresent) {
  Database db = workload::MakeTravelDatabase({});
  EXPECT_EQ(RunOQLBaseline(db, "count(select c from c in Cities "
                               "where c.name = 'Arlington')"),
            Value::Int(1));
  EXPECT_EQ(RunOQLBaseline(db, "count(select s from s in States "
                               "where s.name = 'Texas')"),
            Value::Int(1));
}

TEST(DatabaseTest, InsertAndDeref) {
  Database db(workload::CompanySchema());
  Value ref = db.Insert("Person", Value::Tuple({{"name", Value::Str("X")},
                                                {"age", Value::Int(1)}}));
  EXPECT_EQ(db.Deref(ref.AsRef()).Field("name"), Value::Str("X"));
  EXPECT_EQ(db.Extent("Persons").size(), 1u);
  EXPECT_THROW(db.Insert("Nope", Value::Tuple({})), TypeError);
  EXPECT_THROW(db.Insert("Person", Value::Int(3)), EvalError);
  EXPECT_THROW(db.Deref(Ref{"Person", 99}), EvalError);
  EXPECT_THROW(db.Extent("Nope"), TypeError);
}

TEST(DatabaseTest, NavigateThroughRefAndNull) {
  Database db(workload::CompanySchema());
  Value ref = db.Insert("Person", Value::Tuple({{"name", Value::Str("X")},
                                                {"age", Value::Int(1)}}));
  EXPECT_EQ(db.Navigate(ref, "age"), Value::Int(1));
  EXPECT_TRUE(db.Navigate(Value::Null(), "age").is_null());
  Value tuple = Value::Tuple({{"a", Value::Int(2)}});
  EXPECT_EQ(db.Navigate(tuple, "a"), Value::Int(2));
}

TEST(DatabaseTest, UpdatePatchesObject) {
  Database db(workload::CompanySchema());
  Value ref = db.Insert("Person", Value::Tuple({{"name", Value::Str("X")},
                                                {"age", Value::Int(1)}}));
  db.Update(ref, Value::Tuple({{"name", Value::Str("Y")},
                               {"age", Value::Int(2)}}));
  EXPECT_EQ(db.Deref(ref.AsRef()).Field("name"), Value::Str("Y"));
}

TEST(DatabaseTest, ObjectCount) {
  Database db = workload::MakeCompanyDatabase({});
  EXPECT_GT(db.ObjectCount(), 100u);
}

}  // namespace
}  // namespace ldb
