// Tests for the OQL -> calculus translation (src/oql/translate.*): each paper
// query must produce the comprehension the paper gives for it.

#include "src/oql/translate.h"

#include <gtest/gtest.h>

#include "src/core/pretty.h"
#include "src/oql/parser.h"
#include "src/runtime/error.h"

namespace ldb {
namespace {

ExprPtr T(const std::string& oql) { return oql::Translate(oql::Parse(oql)); }

TEST(TranslateTest, QueryA) {
  // U{ <E=e.name, C=c.name> | e <- Employees, c <- e.children }
  ExprPtr e = T("select distinct struct(E: e.name, C: c.name) "
                "from e in Employees, c in e.children");
  EXPECT_EQ(PrintExpr(e),
            "set{ <E=e.name, C=c.name> | e <- Employees, c <- e.children }");
}

TEST(TranslateTest, QueryB) {
  ExprPtr e = T("select distinct struct(D: d, E: (select distinct e "
                "from e in Employees where e.dno = d.dno)) "
                "from d in Departments");
  EXPECT_EQ(PrintExpr(e),
            "set{ <D=d, E=set{ e | e <- Employees, (e.dno = d.dno) }> "
            "| d <- Departments }");
}

TEST(TranslateTest, QueryD) {
  // count(...) becomes sum{ 1 | ... }; the for-all becomes an all-comp.
  ExprPtr e = T("select distinct struct(E: e, M: count(select distinct c "
                "from c in e.children "
                "where for all d in e.manager.children: c.age > d.age)) "
                "from e in Employees");
  // count over a distinct subquery aggregates the deduplicated set; since c
  // ranges over a set already, translation uses the generator directly after
  // normalization. Before normalization we accept either form; check the key
  // structure instead of the exact string.
  ASSERT_EQ(e->kind, ExprKind::kComp);
  EXPECT_EQ(e->monoid, MonoidKind::kSet);
  const ExprPtr& m = e->a->fields[1].second;
  ASSERT_EQ(m->kind, ExprKind::kComp);
  EXPECT_EQ(m->monoid, MonoidKind::kSum);
  EXPECT_TRUE(ExprEqual(m->a, Expr::Int(1)));
}

TEST(TranslateTest, QueryEQuantifiers) {
  ExprPtr e = T("select distinct s from s in Students "
                "where for all c in select c from c in Courses "
                "where c.title = 'DB': "
                "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno");
  ASSERT_EQ(e->kind, ExprKind::kComp);
  ASSERT_EQ(e->quals.size(), 2u);
  const ExprPtr& all = e->quals[1].expr;
  ASSERT_EQ(all->kind, ExprKind::kComp);
  EXPECT_EQ(all->monoid, MonoidKind::kAll);
  // all's head is the existential.
  ASSERT_EQ(all->a->kind, ExprKind::kComp);
  EXPECT_EQ(all->a->monoid, MonoidKind::kSome);
}

TEST(TranslateTest, SelectWithoutDistinctIsBag) {
  ExprPtr e = T("select e.name from e in Employees");
  EXPECT_EQ(e->monoid, MonoidKind::kBag);
}

TEST(TranslateTest, MembershipBecomesExistential) {
  ExprPtr e = T("3 in x.numbers");
  ASSERT_EQ(e->kind, ExprKind::kComp);
  EXPECT_EQ(e->monoid, MonoidKind::kSome);
  ASSERT_EQ(e->quals.size(), 1u);
  EXPECT_TRUE(e->quals[0].is_generator);
  EXPECT_EQ(e->a->bin_op, BinOpKind::kEq);
}

TEST(TranslateTest, AggregatesOverSubqueries) {
  ExprPtr mx = T("max(select m.salary from m in Managers where m.age > 40)");
  ASSERT_EQ(mx->kind, ExprKind::kComp);
  EXPECT_EQ(mx->monoid, MonoidKind::kMax);
  EXPECT_EQ(PrintExpr(mx->a), "m.salary");
  ASSERT_EQ(mx->quals.size(), 2u);

  ExprPtr cnt = T("count(select e from e in Employees)");
  EXPECT_EQ(cnt->monoid, MonoidKind::kSum);
  EXPECT_TRUE(ExprEqual(cnt->a, Expr::Int(1)));

  ExprPtr av = T("avg(select e.salary from e in Employees)");
  EXPECT_EQ(av->monoid, MonoidKind::kAvg);
}

TEST(TranslateTest, CountDistinctKeepsInnerSet) {
  ExprPtr cnt = T("count(select distinct e.dno from e in Employees)");
  ASSERT_EQ(cnt->kind, ExprKind::kComp);
  EXPECT_EQ(cnt->monoid, MonoidKind::kSum);
  ASSERT_EQ(cnt->quals.size(), 1u);
  ASSERT_TRUE(cnt->quals[0].is_generator);
  EXPECT_EQ(cnt->quals[0].expr->kind, ExprKind::kComp);
  EXPECT_EQ(cnt->quals[0].expr->monoid, MonoidKind::kSet);
}

TEST(TranslateTest, AggregateOverCollectionAttribute) {
  ExprPtr cnt = T("count(e.children)");
  ASSERT_EQ(cnt->kind, ExprKind::kComp);
  EXPECT_EQ(cnt->monoid, MonoidKind::kSum);
  ASSERT_EQ(cnt->quals.size(), 1u);
  EXPECT_EQ(PrintExpr(cnt->quals[0].expr), "e.children");
}

TEST(TranslateTest, ExistsFunctionFormBecomesSome) {
  ExprPtr e = T("exists(select e from e in Employees where e.age > 60)");
  ASSERT_EQ(e->kind, ExprKind::kComp);
  EXPECT_EQ(e->monoid, MonoidKind::kSome);
  EXPECT_TRUE(e->a->IsTrueLiteral());
}

TEST(TranslateTest, GroupByProducesCorrelatedAggregate) {
  // The paper's Section 5 translation.
  ExprPtr e = T("select distinct e.dno, avg(e.salary) from Employees e "
                "where e.age > 30 group by e.dno");
  ASSERT_EQ(e->kind, ExprKind::kComp);
  EXPECT_EQ(e->monoid, MonoidKind::kSet);
  ASSERT_EQ(e->a->kind, ExprKind::kRecord);
  ASSERT_EQ(e->a->fields.size(), 2u);
  EXPECT_EQ(e->a->fields[0].first, "dno");
  EXPECT_EQ(e->a->fields[1].first, "avg");
  const ExprPtr& agg = e->a->fields[1].second;
  ASSERT_EQ(agg->kind, ExprKind::kComp);
  EXPECT_EQ(agg->monoid, MonoidKind::kAvg);
  // The aggregate has: generator over Employees, the where filter, and the
  // group-key correlation filter.
  ASSERT_EQ(agg->quals.size(), 3u);
  EXPECT_TRUE(agg->quals[0].is_generator);
  EXPECT_FALSE(agg->quals[1].is_generator);
  EXPECT_FALSE(agg->quals[2].is_generator);
}

TEST(TranslateTest, GroupByRejectsNonAggregateNonKeyProjection) {
  EXPECT_THROW(T("select e.name from Employees e group by e.dno"),
               UnsupportedError);
  EXPECT_THROW(
      T("select d.dno from d in Departments, e in Employees group by d.dno"),
      UnsupportedError);
}

TEST(TranslateTest, StructlessMultiProjectionGetsDerivedNames) {
  ExprPtr e = T("select e.name, e.age, count(e.children), e.age + 1 "
                "from e in Employees");
  ASSERT_EQ(e->a->kind, ExprKind::kRecord);
  ASSERT_EQ(e->a->fields.size(), 4u);
  EXPECT_EQ(e->a->fields[0].first, "name");
  EXPECT_EQ(e->a->fields[1].first, "age");
  EXPECT_EQ(e->a->fields[2].first, "count");
  EXPECT_EQ(e->a->fields[3].first, "c4");
}

TEST(TranslateTest, NotPushesThroughLater) {
  ExprPtr e = T("not (e.age > 30)");
  EXPECT_EQ(e->kind, ExprKind::kUnOp);  // translation is literal; normalize
                                        // handles DeMorgan later
}

}  // namespace
}  // namespace ldb
