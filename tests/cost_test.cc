// Tests for cardinality estimation and join-order permutation
// (src/core/catalog.h, src/core/cost.*).

#include "src/core/cost.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/core/unnest.h"
#include "src/runtime/eval_algebra.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

class CostTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();

  AlgPtr PlanOf(const std::string& oql) {
    return UnnestComp(Normalize(ParseOQL(oql)), db_.schema());
  }
};

TEST_F(CostTest, CatalogFromDatabase) {
  Catalog cat = Catalog::FromDatabase(db_);
  EXPECT_DOUBLE_EQ(cat.ExtentCardinality("Employees"), 4);
  EXPECT_DOUBLE_EQ(cat.ExtentCardinality("Departments"), 3);
  EXPECT_DOUBLE_EQ(cat.ExtentCardinality("Unknown"),
                   Catalog::kDefaultCardinality);
}

TEST_F(CostTest, EstimatesFollowTheModel) {
  Catalog cat;
  cat.SetExtentCardinality("Employees", 1000);
  cat.SetExtentCardinality("Departments", 10);

  AlgPtr scan = AlgOp::Scan("Employees", "e", nullptr);
  EXPECT_DOUBLE_EQ(EstimateCardinality(scan, cat), 1000);

  AlgPtr filtered = AlgOp::Scan(
      "Employees", "e",
      Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Int(1)));
  EXPECT_DOUBLE_EQ(EstimateCardinality(filtered, cat),
                   1000 * Catalog::kEqSelectivity);

  AlgPtr join = AlgOp::Join(
      AlgOp::Scan("Departments", "d", nullptr), scan,
      Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno")));
  EXPECT_DOUBLE_EQ(EstimateCardinality(join, cat),
                   10 * 1000 * Catalog::kEqSelectivity);

  AlgPtr unnest = AlgOp::Unnest(scan, Expr::Proj(V("e"), "children"), "c",
                                nullptr);
  EXPECT_DOUBLE_EQ(EstimateCardinality(unnest, cat),
                   1000 * Catalog::kUnnestFanout);

  // Outer-join never shrinks below its left input.
  AlgPtr ojoin = AlgOp::OuterJoin(
      scan, AlgOp::Scan("Departments", "d", nullptr),
      Expr::And(Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno")),
                Expr::Eq(Expr::Proj(V("d"), "name"), Expr::Str("x"))));
  EXPECT_GE(EstimateCardinality(ojoin, cat), 1000);
}

TEST_F(CostTest, ReorderPutsSmallerExtentFirst) {
  // Written big-first; with real statistics the reorder starts from the
  // smaller Departments side.
  Catalog cat;
  cat.SetExtentCardinality("Employees", 100000);
  cat.SetExtentCardinality("Departments", 10);
  AlgPtr plan = PlanOf(
      "select distinct struct(a: e.name, b: d.name) "
      "from e in Employees, d in Departments where e.dno = d.dno");
  ASSERT_EQ(PlanShape(plan), "Reduce(Join(Scan(Employees),Scan(Departments)))");
  AlgPtr reordered = ReorderJoins(plan, cat);
  EXPECT_EQ(PlanShape(reordered),
            "Reduce(Join(Scan(Departments),Scan(Employees)))");
  EXPECT_EQ(ExecutePlan(reordered, db_), ExecutePlan(plan, db_));
}

TEST_F(CostTest, ReorderAvoidsCrossProducts) {
  // Three inputs chained a-b, b-c: starting from the smallest (Managers)
  // must not force a cross product with Departments before Employees links
  // them... the greedy considers the connecting predicates' selectivity.
  Catalog cat;
  cat.SetExtentCardinality("Employees", 1000);
  cat.SetExtentCardinality("Departments", 50);
  cat.SetExtentCardinality("Managers", 5);
  AlgPtr plan = PlanOf(
      "select distinct struct(a: e.name, b: d.name, c: m.name) "
      "from d in Departments, e in Employees, m in Managers "
      "where e.dno = d.dno and e.manager = m");
  AlgPtr reordered = ReorderJoins(plan, cat);
  // Results identical regardless of shape.
  EXPECT_EQ(ExecutePlan(reordered, db_), ExecutePlan(plan, db_));
  // Every join in the reordered plan carries at least one conjunct (no
  // bare cross product).
  std::function<void(const AlgPtr&)> no_cross = [&](const AlgPtr& op) {
    if (!op) return;
    if (op->kind == AlgKind::kJoin) {
      EXPECT_FALSE(op->pred->IsTrueLiteral()) << PrintPlan(reordered);
    }
    no_cross(op->left);
    no_cross(op->right);
  };
  no_cross(reordered);
}

TEST_F(CostTest, OuterJoinsAreNeverReordered) {
  AlgPtr plan = PlanOf(
      "select distinct struct(D: d.name, E: (select distinct e.name "
      "from e in Employees where e.dno = d.dno)) from d in Departments");
  Catalog cat;
  cat.SetExtentCardinality("Employees", 1);  // tempting, but outer-join
  AlgPtr reordered = ReorderJoins(plan, cat);
  EXPECT_TRUE(AlgEqual(plan, reordered));
}

TEST_F(CostTest, ReorderedPlansAgreeOnABattery) {
  Catalog cat = Catalog::FromDatabase(db_);
  const char* queries[] = {
      "select distinct struct(a: e.name, b: d.name) "
      "from e in Employees, d in Departments where e.dno = d.dno",
      "select distinct struct(a: e.name, b: m.name, c: p.name) "
      "from e in Employees, m in Managers, p in Persons "
      "where e.manager = m and p.age < e.age",
      "count(select struct(a: e, b: d, c: m) from e in Employees, "
      "d in Departments, m in Managers)",  // pure cross product
  };
  OptimizerOptions with;
  with.reorder_joins = true;
  with.catalog = cat;
  for (const char* q : queries) {
    EXPECT_EQ(RunOQL(db_, q, with), RunOQLBaseline(db_, q)) << q;
  }
}

TEST_F(CostTest, ConjunctsStayAsEarlyAsPossible) {
  Catalog cat;
  cat.SetExtentCardinality("Employees", 1000);
  cat.SetExtentCardinality("Departments", 10);
  cat.SetExtentCardinality("Managers", 5);
  AlgPtr plan = PlanOf(
      "select distinct e.name "
      "from e in Employees, d in Departments, m in Managers "
      "where e.dno = d.dno and e.manager = m");
  AlgPtr reordered = ReorderJoins(plan, cat);
  // The final reduce predicate must be empty: both conjuncts were placed on
  // joins, not left to the root.
  EXPECT_TRUE(reordered->pred->IsTrueLiteral()) << PrintPlan(reordered);
  EXPECT_EQ(ExecutePlan(reordered, db_), ExecutePlan(plan, db_));
}

}  // namespace
}  // namespace ldb
