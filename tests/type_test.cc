// Unit tests for the type system (src/core/type.*).

#include "src/core/type.h"

#include <gtest/gtest.h>

namespace ldb {
namespace {

TEST(TypeTest, ToString) {
  EXPECT_EQ(Type::Int()->ToString(), "int");
  EXPECT_EQ(Type::Set(Type::Str())->ToString(), "set(string)");
  EXPECT_EQ(Type::Bag(Type::Bool())->ToString(), "bag(bool)");
  EXPECT_EQ(Type::Class("Employee")->ToString(), "Employee");
  EXPECT_EQ(
      Type::Tuple({{"a", Type::Int()}, {"b", Type::Real()}})->ToString(),
      "(a: int, b: real)");
  EXPECT_EQ(Type::Func(Type::Int(), Type::Bool())->ToString(), "int -> bool");
}

TEST(TypeTest, EqualStructural) {
  EXPECT_TRUE(Type::Equal(Type::Set(Type::Int()), Type::Set(Type::Int())));
  EXPECT_FALSE(Type::Equal(Type::Set(Type::Int()), Type::Bag(Type::Int())));
  EXPECT_FALSE(Type::Equal(Type::Class("A"), Type::Class("B")));
  EXPECT_TRUE(Type::Equal(Type::Class("A"), Type::Class("A")));
}

TEST(TypeTest, AnyUnifiesWithEverything) {
  EXPECT_TRUE(Type::Equal(Type::Any(), Type::Set(Type::Int())));
  TypePtr u = Type::Unify(Type::Any(), Type::Str());
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->kind(), Type::Kind::kStr);
}

TEST(TypeTest, NumericUnifyWidensToReal) {
  TypePtr u = Type::Unify(Type::Int(), Type::Real());
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->kind(), Type::Kind::kReal);
  u = Type::Unify(Type::Int(), Type::Int());
  EXPECT_EQ(u->kind(), Type::Kind::kInt);
}

TEST(TypeTest, CollectionUnifyRecurses) {
  TypePtr u = Type::Unify(Type::Set(Type::Int()), Type::Set(Type::Real()));
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->elem()->kind(), Type::Kind::kReal);
  EXPECT_EQ(Type::Unify(Type::Set(Type::Int()), Type::Set(Type::Str())), nullptr);
}

TEST(TypeTest, TupleUnifyRequiresSameFieldNames) {
  TypePtr a = Type::Tuple({{"x", Type::Int()}});
  TypePtr b = Type::Tuple({{"x", Type::Real()}});
  TypePtr c = Type::Tuple({{"y", Type::Int()}});
  ASSERT_NE(Type::Unify(a, b), nullptr);
  EXPECT_EQ(Type::Unify(a, b)->FieldType("x")->kind(), Type::Kind::kReal);
  EXPECT_EQ(Type::Unify(a, c), nullptr);
}

TEST(TypeTest, EmptySetElementIsAny) {
  TypePtr e = Type::Set(Type::Any());
  EXPECT_TRUE(Type::Equal(e, Type::Set(Type::Class("X"))));
}

TEST(TypeTest, FieldTypeLookup) {
  TypePtr t = Type::Tuple({{"a", Type::Int()}});
  EXPECT_NE(t->FieldType("a"), nullptr);
  EXPECT_EQ(t->FieldType("zz"), nullptr);
}

TEST(TypeTest, Predicates) {
  EXPECT_TRUE(Type::Set(Type::Int())->is_collection());
  EXPECT_FALSE(Type::Int()->is_collection());
  EXPECT_TRUE(Type::Int()->is_numeric());
  EXPECT_TRUE(Type::Real()->is_numeric());
  EXPECT_FALSE(Type::Str()->is_numeric());
}

}  // namespace
}  // namespace ldb
