// Tests for end-to-end request tracing (src/obs/trace.h, docs/WIRE.md v2):
// the trace-id codec, the tail-sampling ring's keep/drop policy, the wire
// extensions that carry trace context and the server phase breakdown,
// histogram exemplars in the Prometheus exposition, span parenting across
// concurrent connections, and remote introspection (INTROSPECT) parity
// against the in-process accessors.

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/obs/introspect.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/query_service.h"
#include "src/workload/company.h"

namespace ldb {
namespace {

using net::ExecReply;
using net::ExecuteRequest;
using net::Frame;
using net::FrameDecoder;
using net::IntrospectReply;
using net::IntrospectRequest;
using net::Opcode;
using net::PrepareReply;
using net::PrepareRequest;

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

TEST(TraceIdTest, MintedIdsAreNonzeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = obs::MintTraceId();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TraceIdTest, HexRoundTrip) {
  EXPECT_EQ(obs::TraceIdHex(0), "0000000000000000");
  EXPECT_EQ(obs::TraceIdHex(0xdeadbeef01020304ull), "deadbeef01020304");
  EXPECT_EQ(obs::TraceIdFromHex("deadbeef01020304"), 0xdeadbeef01020304ull);
  EXPECT_EQ(obs::TraceIdFromHex(obs::TraceIdHex(12345)), 12345u);
  EXPECT_EQ(obs::TraceIdFromHex(""), 0u);
  EXPECT_EQ(obs::TraceIdFromHex("not hex at all!!"), 0u);
  EXPECT_EQ(obs::TraceIdFromHex("deadbeef010203045"), 0u);  // 17 digits
}

// ---------------------------------------------------------------------------
// Tail-sampling ring
// ---------------------------------------------------------------------------

obs::RequestTrace MakeTrace(uint64_t id, const std::string& status,
                            double total_ms) {
  obs::RequestTrace t;
  t.trace_id = id;
  t.root_span_id = 1;
  t.status = status;
  t.total_ms = total_ms;
  obs::TraceSpan root;
  root.span_id = 1;
  root.name = "request";
  root.lane = "worker";
  root.dur_ms = total_ms;
  t.spans.push_back(root);
  return t;
}

#if LDB_METRICS_ENABLED

TEST(TraceRingTest, TailSamplingIsDeterministic) {
  // slow_ms unreachable, head sampling off: fast ok requests are dropped,
  // errors and forced traces are kept.
  obs::TraceRing ring(
      obs::TraceRing::Options{/*capacity=*/8, /*slow_ms=*/1e9,
                              /*head_every=*/0});
  EXPECT_FALSE(ring.Submit(MakeTrace(1, "ok", 0.5)));
  EXPECT_TRUE(ring.Submit(MakeTrace(2, "failed", 0.5)));
  EXPECT_TRUE(ring.Submit(MakeTrace(3, "cancelled", 0.5)));
  obs::RequestTrace forced = MakeTrace(4, "ok", 0.5);
  forced.force_sample = true;
  EXPECT_TRUE(ring.Submit(forced));

  EXPECT_EQ(ring.submitted(), 4u);
  EXPECT_EQ(ring.kept(), 3u);
  EXPECT_EQ(ring.dropped(), 1u);

  obs::RequestTrace out;
  EXPECT_FALSE(ring.Find(1, &out));  // dropped
  ASSERT_TRUE(ring.Find(2, &out));
  EXPECT_EQ(out.sample_reason, "error");
  ASSERT_TRUE(ring.Find(4, &out));
  EXPECT_EQ(out.sample_reason, "forced");  // forced outranks ok-drop
}

TEST(TraceRingTest, SlowAndHeadReasons) {
  obs::TraceRing ring(
      obs::TraceRing::Options{/*capacity=*/8, /*slow_ms=*/10,
                              /*head_every=*/1});
  // head_every=1: every submission is head-sampled; slow outranks head.
  ASSERT_TRUE(ring.Submit(MakeTrace(1, "ok", 50)));
  ASSERT_TRUE(ring.Submit(MakeTrace(2, "ok", 0.5)));
  obs::RequestTrace out;
  ASSERT_TRUE(ring.Find(1, &out));
  EXPECT_EQ(out.sample_reason, "slow");
  ASSERT_TRUE(ring.Find(2, &out));
  EXPECT_EQ(out.sample_reason, "head");
}

TEST(TraceRingTest, EvictsOldestWhenFull) {
  obs::TraceRing ring(
      obs::TraceRing::Options{/*capacity=*/2, /*slow_ms=*/1,
                              /*head_every=*/0});
  ASSERT_TRUE(ring.Submit(MakeTrace(1, "ok", 5)));
  ASSERT_TRUE(ring.Submit(MakeTrace(2, "ok", 5)));
  ASSERT_TRUE(ring.Submit(MakeTrace(3, "ok", 5)));
  EXPECT_EQ(ring.kept(), 3u);
  std::vector<obs::RequestTrace> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].trace_id, 2u);  // oldest-first, 1 evicted
  EXPECT_EQ(kept[1].trace_id, 3u);
  obs::RequestTrace out;
  EXPECT_FALSE(ring.Find(1, &out));
}

TEST(TraceRingTest, FindZeroSelectsSlowest) {
  obs::TraceRing ring(
      obs::TraceRing::Options{/*capacity=*/4, /*slow_ms=*/1,
                              /*head_every=*/0});
  ASSERT_TRUE(ring.Submit(MakeTrace(1, "ok", 5)));
  ASSERT_TRUE(ring.Submit(MakeTrace(2, "ok", 50)));
  ASSERT_TRUE(ring.Submit(MakeTrace(3, "ok", 20)));
  obs::RequestTrace out;
  ASSERT_TRUE(ring.Find(0, &out));
  EXPECT_EQ(out.trace_id, 2u);
}

TEST(TraceRingTest, AppendSpanAssignsIdsAndExtendsTotal) {
  obs::TraceRing ring(
      obs::TraceRing::Options{/*capacity=*/4, /*slow_ms=*/1,
                              /*head_every=*/0});
  ASSERT_TRUE(ring.Submit(MakeTrace(7, "ok", 5)));

  obs::TraceSpan late;  // span/parent ids left 0: auto-assigned
  late.name = "serialize";
  late.lane = "worker";
  late.start_ms = 5.5;
  late.dur_ms = 2.0;
  EXPECT_TRUE(ring.AppendSpan(7, late));
  EXPECT_FALSE(ring.AppendSpan(999, late));  // not in the ring

  obs::RequestTrace out;
  ASSERT_TRUE(ring.Find(7, &out));
  ASSERT_EQ(out.spans.size(), 2u);
  EXPECT_EQ(out.spans[1].span_id, 2u);
  EXPECT_EQ(out.spans[1].parent_span_id, out.root_span_id);
  EXPECT_DOUBLE_EQ(out.total_ms, 7.5);  // extended to cover the late span
}

TEST(TraceRingTest, ZeroCapacityKeepsNothing) {
  obs::TraceRing ring(
      obs::TraceRing::Options{/*capacity=*/0, /*slow_ms=*/0,
                              /*head_every=*/1});
  EXPECT_FALSE(ring.Submit(MakeTrace(1, "failed", 100)));
  EXPECT_EQ(ring.kept(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

#else  // !LDB_METRICS_ENABLED

// With metrics compiled out the ring must be a zero-size no-op: Submit and
// Find compile and return false, the capacity is pinned at 0 regardless of
// the configured option, and the JSON dump is the empty document.
TEST(TraceRingTest, MetricsOffRingIsCompiledOut) {
  obs::TraceRing ring(
      obs::TraceRing::Options{/*capacity=*/64, /*slow_ms=*/0,
                              /*head_every=*/1});
  static_assert(!obs::TraceRing::Enabled());
  EXPECT_EQ(ring.capacity(), 0u);
  EXPECT_FALSE(ring.Submit(MakeTrace(1, "failed", 100)));
  obs::RequestTrace out;
  EXPECT_FALSE(ring.Find(0, &out));
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.submitted(), 0u);
  EXPECT_EQ(ring.ToJson(),
            obs::TraceRingJson({}, 0, 0, 0, 0));
}

#endif  // LDB_METRICS_ENABLED

TEST(TraceJsonTest, ChromeJsonHasMetadataAndSpans) {
  obs::RequestTrace t = MakeTrace(0xabc, "ok", 5);
  obs::TraceSpan child;
  child.span_id = 2;
  child.parent_span_id = 1;
  child.name = "execute";
  child.lane = "morsel-0";
  child.start_ms = 1;
  child.dur_ms = 3;
  t.spans.push_back(child);
  std::string json = obs::TraceToChromeJson(t);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"execute\""), std::string::npos);
  EXPECT_NE(json.find("morsel-0"), std::string::npos);
  EXPECT_NE(json.find(obs::TraceIdHex(0xabc)), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire extensions (docs/WIRE.md v2)
// ---------------------------------------------------------------------------

std::string PayloadOf(const std::string& frame_bytes) {
  FrameDecoder dec;
  dec.Feed(frame_bytes);
  Frame f;
  EXPECT_TRUE(dec.Next(&f));
  return f.payload;
}

TEST(TraceWireTest, ExecuteRequestCarriesTraceContext) {
  ExecuteRequest req;
  req.mode = ExecuteRequest::kAdhoc;
  req.oql = "count(select e from e in Employees)";
  req.fetch_hint = 16;
  req.trace_id = 0x1122334455667788ull;
  req.parent_span_id = 42;
  req.trace_flags = obs::TraceContext::kForceSample;

  ExecuteRequest back = ExecuteRequest::Parse(PayloadOf(req.Encode()));
  EXPECT_EQ(back.oql, req.oql);
  EXPECT_EQ(back.trace_id, req.trace_id);
  EXPECT_EQ(back.parent_span_id, 42u);
  EXPECT_EQ(back.trace_flags, obs::TraceContext::kForceSample);
}

TEST(TraceWireTest, UntracedExecuteOmitsTheExtension) {
  // trace_id == 0 must encode to the v1 byte layout (no trailing context),
  // and a v1 payload must parse with the trace fields zeroed — both
  // directions of cross-version interop.
  ExecuteRequest traced;
  traced.oql = "q";
  traced.trace_id = 1;
  ExecuteRequest plain;
  plain.oql = "q";
  EXPECT_EQ(traced.Encode().size(), plain.Encode().size() + 17);

  ExecuteRequest back = ExecuteRequest::Parse(PayloadOf(plain.Encode()));
  EXPECT_EQ(back.trace_id, 0u);
  EXPECT_EQ(back.parent_span_id, 0u);
  EXPECT_EQ(back.trace_flags, 0);
}

TEST(TraceWireTest, PrepareRequestCarriesTraceContext) {
  PrepareRequest req;
  req.oql = "select e from e in Employees where e.dno = $1";
  req.trace_id = 99;
  req.parent_span_id = 7;
  PrepareRequest back = PrepareRequest::Parse(PayloadOf(req.Encode()));
  EXPECT_EQ(back.oql, req.oql);
  EXPECT_EQ(back.trace_id, 99u);
  EXPECT_EQ(back.parent_span_id, 7u);

  PrepareRequest plain;
  plain.oql = req.oql;
  EXPECT_EQ(PrepareRequest::Parse(PayloadOf(plain.Encode())).trace_id, 0u);
}

TEST(TraceWireTest, ExecReplyRoundTripsPhaseBreakdown) {
  ExecReply rep;
  rep.rows = 5;
  rep.queue_ms = 1.5;
  rep.compile_ms = 2.5;
  rep.exec_ms = 3.5;
  rep.queue_wait_ms = 0.25;
  rep.serialize_ms = 0.125;
  rep.trace_id = 0xfeedface0000beefull;

  std::string payload = PayloadOf(rep.Encode());
  ExecReply back = ExecReply::Parse(payload);
  EXPECT_EQ(back.rows, 5u);
  EXPECT_DOUBLE_EQ(back.queue_wait_ms, 0.25);
  EXPECT_DOUBLE_EQ(back.serialize_ms, 0.125);
  EXPECT_EQ(back.trace_id, rep.trace_id);

  // A v1 EXEC_OK (24 bytes shorter) must still parse, extension zeroed.
  ExecReply v1 = ExecReply::Parse(payload.substr(0, payload.size() - 24));
  EXPECT_EQ(v1.rows, 5u);
  EXPECT_DOUBLE_EQ(v1.exec_ms, 3.5);
  EXPECT_DOUBLE_EQ(v1.queue_wait_ms, 0);
  EXPECT_EQ(v1.trace_id, 0u);
}

TEST(TraceWireTest, IntrospectRoundTrip) {
  IntrospectRequest req;
  req.kind = IntrospectRequest::kTrace;
  req.arg = 12;
  req.trace_id = 0xabcdef;
  IntrospectRequest back = IntrospectRequest::Parse(PayloadOf(req.Encode()));
  EXPECT_EQ(back.kind, IntrospectRequest::kTrace);
  EXPECT_EQ(back.arg, 12u);
  EXPECT_EQ(back.trace_id, 0xabcdefu);

  IntrospectReply rep;
  rep.kind = IntrospectRequest::kMetrics;
  rep.json = "{\"x\": [1, 2]}";
  IntrospectReply rback = IntrospectReply::Parse(PayloadOf(rep.Encode()));
  EXPECT_EQ(rback.kind, IntrospectRequest::kMetrics);
  EXPECT_EQ(rback.json, rep.json);
}

// ---------------------------------------------------------------------------
// Histogram exemplars
// ---------------------------------------------------------------------------

#if LDB_METRICS_ENABLED

TEST(TraceExemplarTest, BucketExemplarSurvivesToPrometheusText) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("req_ms", "request latency");
  h->Observe(3.0);                          // no exemplar: untraced
  h->Observe(5.0, 0xabad1dea00000001ull);   // traced observation

  std::string text = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# {trace_id=\"abad1dea00000001\"} 5"),
            std::string::npos)
      << text;

  // The JSON snapshot carries the same exemplar and round-trips.
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("abad1dea00000001"), std::string::npos);
  obs::MetricsSnapshot back = obs::SnapshotFromJson(json);
  EXPECT_EQ(back.ToJson(), json);
}

#endif  // LDB_METRICS_ENABLED

// ---------------------------------------------------------------------------
// End-to-end over real sockets
// ---------------------------------------------------------------------------

Database MakeDb(int scale) {
  workload::CompanyParams p;
  p.n_employees = scale;
  p.n_departments = std::max(4, scale / 40);
  p.n_managers = std::max(2, scale / 100);
  return workload::MakeCompanyDatabase(p);
}

struct Harness {
  explicit Harness(int scale = 200, ServiceOptions sopts = {},
                   net::ServerOptions nopts = {})
      : db(MakeDb(scale)), svc(db, sopts), server(svc, [&nopts] {
          nopts.port = 0;  // ephemeral: no port races between tests
          return nopts;
        }()) {
    server.Start();
  }
  ~Harness() { server.Shutdown(); }

  uint16_t port() const { return server.bound_port(); }

  Database db;
  QueryService svc;
  net::Server server;
};

#if LDB_METRICS_ENABLED

// Four concurrent connections each run traced queries; every request's
// trace must land in the ring with a well-formed span tree (exactly one
// root, every parent resolving, the serialize span appended post-reply)
// and the four connections' traces must not bleed into one another.
TEST(TraceEndToEndTest, SpanParentingAcrossConcurrentConnections) {
  ServiceOptions sopts;
  sopts.trace_head_every = 1;  // keep every trace regardless of outcome
  Harness h(/*scale=*/200, sopts);

  constexpr int kConns = 4;
  constexpr int kQueriesPerConn = 3;
  std::vector<std::vector<uint64_t>> ids(kConns);
  std::vector<std::thread> threads;
  threads.reserve(kConns);
  for (int c = 0; c < kConns; ++c) {
    threads.emplace_back([&h, &ids, c] {
      net::Client client;
      client.Connect("127.0.0.1", h.port());
      for (int q = 0; q < kQueriesPerConn; ++q) {
        net::ClientResult r = client.Execute(
            "select distinct e.name from e in Employees where e.dno = " +
            std::to_string(q));
        EXPECT_NE(r.exec.trace_id, 0u);
        EXPECT_EQ(r.exec.trace_id, client.last_trace_id());
        EXPECT_GE(r.exec.queue_wait_ms, 0.0);
        ids[c].push_back(client.last_trace_id());
      }
      client.Close();
    });
  }
  for (std::thread& t : threads) t.join();

  std::set<uint64_t> distinct;
  for (const auto& conn_ids : ids) {
    for (uint64_t id : conn_ids) {
      distinct.insert(id);
      obs::RequestTrace t;
      ASSERT_TRUE(h.svc.trace_ring().Find(id, &t)) << obs::TraceIdHex(id);
      EXPECT_TRUE(t.client_context);
      EXPECT_EQ(t.status, "ok");

      // Exactly one root; every other span's parent resolves in-trace.
      std::set<uint64_t> span_ids;
      int roots = 0;
      for (const obs::TraceSpan& s : t.spans) {
        EXPECT_TRUE(span_ids.insert(s.span_id).second)
            << "duplicate span id " << s.span_id;
        roots += s.parent_span_id == 0;
      }
      EXPECT_EQ(roots, 1);
      std::set<std::string> names;
      for (const obs::TraceSpan& s : t.spans) {
        names.insert(s.name);
        if (s.parent_span_id != 0) {
          EXPECT_TRUE(span_ids.count(s.parent_span_id))
              << "span " << s.name << " has dangling parent";
          EXPECT_NE(s.parent_span_id, s.span_id);
        } else {
          EXPECT_EQ(s.span_id, t.root_span_id);
          EXPECT_EQ(s.name, "request");
        }
      }
      EXPECT_TRUE(names.count("admission"));
      EXPECT_TRUE(names.count("compile"));
      EXPECT_TRUE(names.count("execute"));
      // The reply serializes the first batch before EXEC_OK goes out, so
      // by the time the client saw the reply the span had been appended.
      EXPECT_TRUE(names.count("serialize"));
      // Wire-served request: the origin is the socket read, so the io lane
      // precedes the worker spans.
      EXPECT_TRUE(names.count("wire-queue"));
      EXPECT_GT(t.total_ms, 0.0);
    }
  }
  EXPECT_EQ(distinct.size(),
            static_cast<size_t>(kConns * kQueriesPerConn));
}

// PREPARE's trace context becomes the connection default: later EXECUTEs
// that carry no context of their own get a FRESH server-minted trace id
// with the prepared parent/flags attached.
TEST(TraceEndToEndTest, PrepareContextIsInheritedWithFreshIds) {
  ServiceOptions sopts;
  sopts.trace_head_every = 1;
  Harness h(/*scale=*/200, sopts);

  net::Client client;
  client.Connect("127.0.0.1", h.port());
  client.set_trace_requests(false);  // EXECUTEs carry no context themselves

  PrepareRequest prep;
  prep.oql = "count(select e from e in Employees)";
  prep.trace_id = obs::MintTraceId();
  prep.parent_span_id = 777;
  prep.trace_flags = obs::TraceContext::kForceSample;
  client.SendRaw(prep.Encode());
  Frame f = client.ReadFrame();
  ASSERT_EQ(f.opcode, Opcode::kPrepareOk);
  uint64_t handle = PrepareReply::Parse(f.payload).handle;

  net::ClientResult r1 = client.ExecutePrepared(handle);
  net::ClientResult r2 = client.ExecutePrepared(handle);
  EXPECT_NE(r1.exec.trace_id, 0u);
  EXPECT_NE(r2.exec.trace_id, 0u);
  EXPECT_NE(r1.exec.trace_id, r2.exec.trace_id);  // fresh id per query
  EXPECT_NE(r1.exec.trace_id, prep.trace_id);

  obs::RequestTrace t;
  ASSERT_TRUE(h.svc.trace_ring().Find(r1.exec.trace_id, &t));
  EXPECT_EQ(t.client_parent_span_id, 777u);  // inherited parent
  EXPECT_TRUE(t.force_sample);               // inherited flags
  client.Close();
}

// INTROSPECT must return exactly what the in-process accessors return —
// the remote path is a transport, not a second implementation.
TEST(TraceEndToEndTest, IntrospectMatchesInProcessAccessors) {
  ServiceOptions sopts;
  sopts.trace_head_every = 1;
  Harness h(/*scale=*/200, sopts);

  net::Client client;
  client.Connect("127.0.0.1", h.port());
  for (int i = 0; i < 3; ++i) {
    client.Execute("count(select e from e in Employees)");
  }
  uint64_t last = client.last_trace_id();
  ASSERT_NE(last, 0u);

  // Query log: exact string parity while the server is idle.
  EXPECT_EQ(client.Introspect(IntrospectRequest::kQueryLog, 32),
            obs::QueryLogToJson(h.svc.query_log().Tail(32)));

  // Active queries: idle server, both sides empty.
  EXPECT_EQ(client.Introspect(IntrospectRequest::kActiveQueries),
            obs::ActiveQueriesToJson(h.svc.ActiveQueries()));

  // Trace by id: byte-for-byte the ring's Chrome JSON.
  obs::RequestTrace t;
  ASSERT_TRUE(h.svc.trace_ring().Find(last, &t));
  EXPECT_EQ(client.Introspect(IntrospectRequest::kTrace, 0, last),
            obs::TraceToChromeJson(t));

  // Metrics: the snapshot races against the server's own frame counters
  // (the INTROSPECT round-trip itself moves ldb_net_* instruments), so
  // compare the stable query counters through the JSON round-trip rather
  // than the raw bytes.
  obs::MetricsSnapshot remote =
      obs::SnapshotFromJson(client.Introspect(IntrospectRequest::kMetrics));
  double remote_ok = 0;
  for (const obs::MetricSample& s : remote.samples) {
    if (s.name == "ldb_queries_ok_total") remote_ok += s.value;
  }
  EXPECT_DOUBLE_EQ(remote_ok, 3.0);

  // Unknown kinds and missing traces surface as STATE errors, not hangs.
  EXPECT_THROW(client.Introspect(/*kind=*/200), net::RemoteError);
  EXPECT_THROW(client.Introspect(IntrospectRequest::kTrace, 0,
                                 /*trace_id=*/0xdeadbeefdeadbeefull),
               net::RemoteError);
  client.Close();
}

// The query log's new first-class columns: queue_wait_ms measured from the
// wire read and serialize_ms patched in after the reply went out.
TEST(TraceEndToEndTest, QueryLogRecordsWaitAndSerialize) {
  ServiceOptions sopts;
  sopts.trace_head_every = 1;
  Harness h(/*scale=*/200, sopts);

  net::Client client;
  client.Connect("127.0.0.1", h.port());
  client.Execute("select e.name from e in Employees");
  client.Close();

  std::vector<obs::QueryLogRecord> tail = h.svc.query_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_NE(tail[0].trace_id, 0u);
  EXPECT_GE(tail[0].queue_wait_ms, 0.0);
  // The result set is non-empty, so serializing it took measurable time.
  EXPECT_GT(tail[0].serialize_ms, 0.0);
}

#endif  // LDB_METRICS_ENABLED

}  // namespace
}  // namespace ldb
