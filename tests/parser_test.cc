// Tests for the OQL parser (src/oql/parser.*), including every query the
// paper prints.

#include "src/oql/parser.h"

#include <gtest/gtest.h>

#include "src/runtime/error.h"

namespace ldb::oql {
namespace {

TEST(ParserTest, QueryA) {
  NodePtr q = Parse(
      "select distinct struct( E: e.name, C: c.name ) "
      "from e in Employees, c in e.children");
  ASSERT_EQ(q->kind, NodeKind::kSelect);
  EXPECT_TRUE(q->distinct);
  ASSERT_EQ(q->projection.size(), 1u);
  EXPECT_EQ(q->projection[0].expr->kind, NodeKind::kStruct);
  ASSERT_EQ(q->froms.size(), 2u);
  EXPECT_EQ(q->froms[0].var, "e");
  EXPECT_EQ(q->froms[1].var, "c");
  EXPECT_EQ(q->froms[1].domain->kind, NodeKind::kProj);
}

TEST(ParserTest, QueryBNestedSelectInStruct) {
  NodePtr q = Parse(
      "select distinct struct( D: d, E: ( select distinct e "
      "from e in Employees where e.dno = d.dno ) ) "
      "from d in Departments");
  ASSERT_EQ(q->kind, NodeKind::kSelect);
  const auto& fields = q->projection[0].expr->fields;
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1].second->kind, NodeKind::kSelect);
  EXPECT_NE(fields[1].second->where, nullptr);
}

TEST(ParserTest, QueryDDoubleNested) {
  NodePtr q = Parse(
      "select distinct struct( E: e, M: count( select distinct c "
      "from c in e.children "
      "where for all d in e.manager.children: c.age > d.age ) ) "
      "from e in Employees");
  ASSERT_EQ(q->kind, NodeKind::kSelect);
  const NodePtr& m = q->projection[0].expr->fields[1].second;
  ASSERT_EQ(m->kind, NodeKind::kAgg);
  EXPECT_EQ(m->agg, OAgg::kCount);
  ASSERT_EQ(m->a->kind, NodeKind::kSelect);
  EXPECT_EQ(m->a->where->kind, NodeKind::kForAll);
}

TEST(ParserTest, QueryEForAllWithNakedSelectDomain) {
  NodePtr q = Parse(
      "select distinct s from s in Students "
      "where for all c in select c from c in Courses where c.title = 'DB': "
      "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno");
  ASSERT_EQ(q->kind, NodeKind::kSelect);
  ASSERT_NE(q->where, nullptr);
  ASSERT_EQ(q->where->kind, NodeKind::kForAll);
  EXPECT_EQ(q->where->a->kind, NodeKind::kSelect);  // quantifier domain
  ASSERT_EQ(q->where->b->kind, NodeKind::kExists);  // body
  // exists body is the conjunction.
  EXPECT_EQ(q->where->b->b->kind, NodeKind::kBin);
  EXPECT_EQ(q->where->b->b->bin, OBin::kAnd);
}

TEST(ParserTest, GroupByQuery) {
  NodePtr q = Parse(
      "select distinct e.dno, avg(e.salary) from Employees e "
      "where e.age > 30 group by e.dno");
  ASSERT_EQ(q->kind, NodeKind::kSelect);
  ASSERT_EQ(q->projection.size(), 2u);
  EXPECT_EQ(q->projection[1].expr->kind, NodeKind::kAgg);
  EXPECT_EQ(q->projection[1].expr->agg, OAgg::kAvg);
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0]->kind, NodeKind::kProj);
  EXPECT_EQ(q->froms[0].var, "e");  // "Employees e" form
}

TEST(ParserTest, HotelQueryWithInAndExists) {
  NodePtr q = Parse(
      "select distinct hotel.price "
      "from hotel in ( select h from c in Cities, h in c.hotels "
      "                where c.name = 'Arlington' ) "
      "where exists r in hotel.rooms: r.bed_num = 3 "
      "  and hotel.name in ( select t.name from s in States, "
      "                      t in s.attractions where s.name = 'Texas' )");
  ASSERT_EQ(q->kind, NodeKind::kSelect);
  EXPECT_EQ(q->froms[0].domain->kind, NodeKind::kSelect);
  // `exists ... : p and q in (...)` — body is maximal: the whole conjunction.
  ASSERT_EQ(q->where->kind, NodeKind::kExists);
  EXPECT_EQ(q->where->b->bin, OBin::kAnd);
  EXPECT_EQ(q->where->b->b->kind, NodeKind::kIn);
}

TEST(ParserTest, OperatorPrecedence) {
  NodePtr q = Parse("1 + 2 * 3 = 7 and not 4 > 5 or false");
  // ((1 + (2*3)) = 7 and (not (4 > 5))) or false
  ASSERT_EQ(q->kind, NodeKind::kBin);
  EXPECT_EQ(q->bin, OBin::kOr);
  EXPECT_EQ(q->a->bin, OBin::kAnd);
  EXPECT_EQ(q->a->a->bin, OBin::kEq);
  EXPECT_EQ(q->a->a->a->bin, OBin::kAdd);
  EXPECT_EQ(q->a->a->a->b->bin, OBin::kMul);
  EXPECT_EQ(q->a->b->kind, NodeKind::kUn);
}

TEST(ParserTest, UnaryMinusAndMod) {
  NodePtr q = Parse("-x mod 3");
  ASSERT_EQ(q->kind, NodeKind::kBin);
  EXPECT_EQ(q->bin, OBin::kMod);
  EXPECT_EQ(q->a->kind, NodeKind::kUn);
  EXPECT_EQ(q->a->un, OUn::kNeg);
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(Parse("true")->literal, Value::Bool(true));
  EXPECT_EQ(Parse("FALSE")->literal, Value::Bool(false));
  EXPECT_TRUE(Parse("null")->literal.is_null());
  EXPECT_TRUE(Parse("nil")->literal.is_null());
  EXPECT_EQ(Parse("3.5")->literal, Value::Real(3.5));
}

TEST(ParserTest, NamedProjections) {
  NodePtr q = Parse("select e.name as nm, e.age from Employees e");
  EXPECT_EQ(q->projection[0].as, "nm");
  EXPECT_EQ(q->projection[1].as, "");
  EXPECT_FALSE(q->distinct);

  // Colon-style naming.
  NodePtr q2 = Parse("select nm: e.name from Employees e");
  EXPECT_EQ(q2->projection[0].as, "nm");
}

TEST(ParserTest, AggregatesOverCollections) {
  NodePtr q = Parse("count(e.children)");
  ASSERT_EQ(q->kind, NodeKind::kAgg);
  EXPECT_EQ(q->agg, OAgg::kCount);
  EXPECT_EQ(q->a->kind, NodeKind::kProj);

  NodePtr q2 = Parse("max( select m.salary from m in Managers )");
  EXPECT_EQ(q2->agg, OAgg::kMax);
  EXPECT_EQ(q2->a->kind, NodeKind::kSelect);
}

TEST(ParserTest, ExistsFunctionForm) {
  NodePtr q = Parse("exists( select e from e in Employees where e.age > 60 )");
  ASSERT_EQ(q->kind, NodeKind::kAgg);
  EXPECT_EQ(q->agg, OAgg::kExists);
}

TEST(ParserTest, Errors) {
  EXPECT_THROW(Parse("select"), ParseError);
  EXPECT_THROW(Parse("select x from"), ParseError);
  EXPECT_THROW(Parse("select x from Employees"), ParseError);  // no range var
  EXPECT_THROW(Parse("1 +"), ParseError);
  EXPECT_THROW(Parse("(1"), ParseError);
  EXPECT_THROW(Parse("1 2"), ParseError);  // trailing garbage
  EXPECT_THROW(Parse("struct(a 1)"), ParseError);
  EXPECT_THROW(Parse("for all x in D x > 1"), ParseError);  // missing ':'
}

TEST(ParserTest, KeywordsNotUsableAsRangeVariables) {
  EXPECT_THROW(Parse("select x from Employees select"), ParseError);
}

}  // namespace
}  // namespace ldb::oql
