// Tests for the Section 5 simplification (src/core/simplify.*): the
// Figure 8.A -> 8.B rewrite, its soundness conditions, and ReplaceSubterm.

#include "src/core/simplify.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/core/unnest.h"
#include "src/runtime/eval_algebra.h"
#include "src/runtime/eval_calculus.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

class SimplifyTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
  const Schema& schema_ = db_.schema();

  AlgPtr PlanOf(const std::string& oql) {
    return UnnestComp(Normalize(ParseOQL(oql)), schema_);
  }
};

const char* kFigure8Query =
    "select distinct e.dno, avg(e.salary) from Employees e "
    "where e.age > 30 group by e.dno";

TEST_F(SimplifyTest, Figure8PlanAIsSelfOuterJoin) {
  AlgPtr plan = PlanOf(kFigure8Query);
  EXPECT_EQ(PlanShape(plan),
            "Reduce(Nest(OuterJoin(Scan(Employees),Scan(Employees))))");
}

TEST_F(SimplifyTest, Figure8SimplifiesToSingleScanNest) {
  AlgPtr plan = PlanOf(kFigure8Query);
  AlgPtr simplified = Simplify(plan, schema_);
  EXPECT_EQ(PlanShape(simplified), "Reduce(Nest(Scan(Employees)))");
  // The nest now groups by the key expression e.dno.
  const AlgOp& nest = *simplified->left;
  ASSERT_EQ(nest.group_by.size(), 1u);
  EXPECT_EQ(PrintExpr(nest.group_by[0].second), "e.dno");
  EXPECT_TRUE(nest.null_vars.empty());
}

TEST_F(SimplifyTest, Figure8SimplifiedResultUnchanged) {
  AlgPtr plan = PlanOf(kFigure8Query);
  AlgPtr simplified = Simplify(plan, schema_);
  Value a = ExecutePlan(plan, db_);
  Value b = ExecutePlan(simplified, db_);
  Value baseline = EvalCalculus(ParseOQL(kFigure8Query), db_);
  EXPECT_EQ(a, baseline);
  EXPECT_EQ(b, baseline);
  // Oracle: employees strictly over 30: Bob(80k,d0), Dee(120k,d1); Ann is
  // exactly 30 and excluded.
  Value expected = Value::Set({
      Value::Tuple({{"dno", Value::Int(0)}, {"avg", Value::Real(80000)}}),
      Value::Tuple({{"dno", Value::Int(1)}, {"avg", Value::Real(120000)}}),
  });
  EXPECT_EQ(b, expected);
}

TEST_F(SimplifyTest, CountGroupByAlsoSimplifies) {
  AlgPtr plan = PlanOf(
      "select distinct e.dno, count(e) from Employees e group by e.dno");
  AlgPtr simplified = Simplify(plan, schema_);
  EXPECT_EQ(PlanShape(simplified), "Reduce(Nest(Scan(Employees)))");
  Value expected = Value::Set({
      Value::Tuple({{"dno", Value::Int(0)}, {"count", Value::Int(2)}}),
      Value::Tuple({{"dno", Value::Int(1)}, {"count", Value::Int(2)}}),
  });
  EXPECT_EQ(ExecutePlan(simplified, db_), expected);
}

TEST_F(SimplifyTest, DoesNotFireAcrossDifferentExtents) {
  // Correlated aggregate over a DIFFERENT extent: not the self-join pattern.
  AlgPtr plan = PlanOf(
      "select distinct struct(D: d.dno, n: count(select e from e in Employees "
      "where e.dno = d.dno)) from d in Departments");
  AlgPtr simplified = Simplify(plan, schema_);
  EXPECT_TRUE(AlgEqual(plan, simplified));
}

TEST_F(SimplifyTest, DoesNotFireWhenScanPredicatesDiffer) {
  // Outer filtered at age > 30 but the aggregate ranges over age > 40:
  // the two scans differ, so the rewrite must not fire.
  ExprPtr q = ParseOQL(
      "select distinct struct(D: e.dno, "
      "  s: sum(select u.salary from u in Employees "
      "         where u.age > 40 and u.dno = e.dno)) "
      "from e in Employees where e.age > 30");
  AlgPtr plan = UnnestComp(Normalize(q), schema_);
  AlgPtr simplified = Simplify(plan, schema_);
  EXPECT_TRUE(AlgEqual(plan, simplified));
  EXPECT_EQ(ExecutePlan(simplified, db_), EvalCalculus(q, db_));
}

TEST_F(SimplifyTest, DoesNotFireWhenReduceStillNeedsOuterVariable) {
  // The head keeps e.name, which is not a function of the group key, so the
  // rewrite is not meaning-preserving and must not fire.
  ExprPtr q = ParseOQL(
      "select distinct struct(n: e.name, "
      "  s: avg(select u.salary from u in Employees where u.dno = e.dno)) "
      "from e in Employees");
  AlgPtr plan = UnnestComp(Normalize(q), schema_);
  AlgPtr simplified = Simplify(plan, schema_);
  EXPECT_TRUE(AlgEqual(plan, simplified));
  EXPECT_EQ(ExecutePlan(simplified, db_), EvalCalculus(q, db_));
}

TEST_F(SimplifyTest, DoesNotFireForNonIdempotentOuterMonoid) {
  // A bag outer reduce would change multiplicities (one row per employee vs
  // one per group), so idempotence of the outer monoid is required.
  AlgPtr nest = AlgOp::Nest(
      AlgOp::OuterJoin(
          AlgOp::Scan("Employees", "a", nullptr),
          AlgOp::Scan("Employees", "b", nullptr),
          Expr::Eq(Expr::Proj(V("a"), "dno"), Expr::Proj(V("b"), "dno"))),
      MonoidKind::kSum, Expr::Int(1), "m", {{"a", V("a")}}, {"b"}, nullptr);
  AlgPtr plan = AlgOp::Reduce(
      nest, MonoidKind::kBag,
      Expr::Record({{"k", Expr::Proj(V("a"), "dno")}, {"n", V("m")}}), nullptr);
  AlgPtr simplified = Simplify(plan, schema_);
  EXPECT_TRUE(AlgEqual(plan, simplified));
}

TEST_F(SimplifyTest, MultiKeyGroupBySimplifies) {
  AlgPtr plan = PlanOf(
      "select distinct e.dno, e.age, count(e) from Employees e "
      "group by e.dno, e.age");
  AlgPtr simplified = Simplify(plan, schema_);
  EXPECT_EQ(PlanShape(simplified), "Reduce(Nest(Scan(Employees)))");
  EXPECT_EQ(simplified->left->group_by.size(), 2u);
  EXPECT_EQ(ExecutePlan(simplified, db_), ExecutePlan(plan, db_));
}

TEST_F(SimplifyTest, ReplaceSubterm) {
  ExprPtr target = Expr::Proj(V("e"), "dno");
  ExprPtr e = Expr::Record({{"a", target}, {"b", Expr::Eq(target, Expr::Int(1))}});
  ExprPtr out = ReplaceSubterm(e, Expr::Proj(V("e"), "dno"), V("k"));
  EXPECT_EQ(PrintExpr(out), "<a=k, b=(k = 1)>");
  // No-op when target absent.
  EXPECT_TRUE(ExprEqual(ReplaceSubterm(e, V("zzz"), V("k")), e));
}

TEST_F(SimplifyTest, NullKeysStayGroupedWithZero) {
  // Build a variant where the key can be NULL through outer-join padding is
  // impossible with the company schema, so instead check the guard directly:
  // the simplified nest predicate contains a not-is_null guard on the key.
  AlgPtr simplified = Simplify(PlanOf(kFigure8Query), schema_);
  std::string pred = PrintExpr(simplified->left->pred);
  EXPECT_NE(pred.find("is_null"), std::string::npos) << pred;
}

}  // namespace
}  // namespace ldb
