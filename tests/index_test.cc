// Tests for access-path selection: Database hash indexes and the executor's
// IndexScan choice (paper Section 6, "choosing access paths").

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/unnest.h"
#include "src/runtime/eval_algebra.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

class IndexTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();

  AlgPtr PlanOf(const std::string& oql) {
    return UnnestComp(Normalize(ParseOQL(oql)), db_.schema());
  }
};

TEST_F(IndexTest, BuildAndLookup) {
  db_.BuildIndex("Employees", "dno");
  EXPECT_TRUE(db_.HasIndex("Employees", "dno"));
  EXPECT_FALSE(db_.HasIndex("Employees", "age"));
  EXPECT_EQ(db_.IndexLookup("Employees", "dno", Value::Int(0)).size(), 2u);
  EXPECT_EQ(db_.IndexLookup("Employees", "dno", Value::Int(1)).size(), 2u);
  EXPECT_TRUE(db_.IndexLookup("Employees", "dno", Value::Int(99)).empty());
  EXPECT_THROW(db_.IndexLookup("Employees", "age", Value::Int(1)), EvalError);
  EXPECT_THROW(db_.BuildIndex("Nope", "x"), TypeError);
  EXPECT_THROW(db_.BuildIndex("Employees", "nothere"), TypeError);
}

TEST_F(IndexTest, NullKeysAreNotIndexed) {
  db_.BuildIndex("Employees", "manager");
  // Cal has a NULL manager: 3 of 4 employees indexed across 2 managers.
  size_t total = 0;
  for (const Value& mref : db_.Extent("Managers")) {
    total += db_.IndexLookup("Employees", "manager", mref).size();
  }
  EXPECT_EQ(total, 3u);
}

TEST_F(IndexTest, MatchIndexScanRecognizesPinnedAttribute) {
  db_.BuildIndex("Employees", "dno");
  AlgPtr scan = AlgOp::Scan(
      "Employees", "e",
      Expr::And(Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Int(1)),
                Expr::Bin(BinOpKind::kGt, Expr::Proj(V("e"), "age"),
                          Expr::Int(30))));
  IndexMatch m;
  ASSERT_TRUE(MatchIndexScan(*scan, db_, &m));
  EXPECT_EQ(m.attr, "dno");
  EXPECT_TRUE(ExprEqual(m.key, Expr::Int(1)));
  EXPECT_FALSE(m.residual->IsTrueLiteral());

  // Flipped sides also match.
  AlgPtr flipped = AlgOp::Scan(
      "Employees", "e", Expr::Eq(Expr::Int(0), Expr::Proj(V("e"), "dno")));
  ASSERT_TRUE(MatchIndexScan(*flipped, db_, &m));
  EXPECT_EQ(m.attr, "dno");

  // Non-constant keys do not match (that is a join, not an index scan).
  AlgPtr corr = AlgOp::Scan(
      "Employees", "e",
      Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno")));
  EXPECT_FALSE(MatchIndexScan(*corr, db_, &m));

  // No index, no match.
  AlgPtr other = AlgOp::Scan("Departments", "d",
                             Expr::Eq(Expr::Proj(V("d"), "dno"), Expr::Int(1)));
  EXPECT_FALSE(MatchIndexScan(*other, db_, &m));
}

TEST_F(IndexTest, IndexScanResultsMatchFullScan) {
  const char* q =
      "select distinct e.name from e in Employees "
      "where e.dno = 1 and e.age < 50";
  AlgPtr plan = PlanOf(q);
  Value without = ExecutePlan(plan, db_);
  db_.BuildIndex("Employees", "dno");
  Value with = ExecutePlan(plan, db_);
  EXPECT_EQ(with, without);
  EXPECT_EQ(with, Value::Set({Value::Str("Cal")}));

  PhysicalOptions no_idx;
  no_idx.use_indexes = false;
  EXPECT_EQ(ExecutePlan(plan, db_, no_idx), without);
}

TEST_F(IndexTest, ExplainShowsIndexScan) {
  db_.BuildIndex("Employees", "dno");
  AlgPtr plan = PlanOf(
      "select distinct e.name from e in Employees where e.dno = 1");
  PhysicalOptions opts;
  std::string with_db = ExplainPhysical(plan, opts, &db_);
  EXPECT_NE(with_db.find("IndexScan[e <- Employees.dno = 1]"),
            std::string::npos)
      << with_db;
  std::string without_db = ExplainPhysical(plan, opts);
  EXPECT_EQ(without_db.find("IndexScan"), std::string::npos);
}

TEST_F(IndexTest, WrongSchemaIndexThrows) {
  EXPECT_THROW(db_.BuildIndex("Transcripts", "sid"), TypeError);
}

TEST_F(IndexTest, IndexedNestedQueryStillCorrect) {
  db_.BuildIndex("Employees", "dno");
  const char* q =
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments";
  // The correlated conjunct is NOT constant, so the outer-join path is used,
  // not the index — but results must stay correct either way.
  EXPECT_EQ(RunOQL(db_, q), RunOQLBaseline(db_, q));
}

}  // namespace
}  // namespace ldb
