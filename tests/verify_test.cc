// Tests for the static plan verifier (src/verify/, docs/VERIFIER.md):
// deliberately corrupted IRs at each layer must be rejected with the right
// stage/rule diagnostic, well-formed pipelines must pass every layer, and
// the calculus pretty-printer must round-trip through ParseCalculus.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace ldb {
namespace {

using ::ldb::testing::TinyCompany;

Schema CompanySchema() { return workload::CompanySchema(); }

// Finds a report by stage label; fails the test if absent.
const VerifyReport& Stage(const std::vector<VerifyReport>& reports,
                          const std::string& stage) {
  for (const VerifyReport& r : reports) {
    if (r.stage == stage) return r;
  }
  ADD_FAILURE() << "no report for stage " << stage;
  static VerifyReport empty;
  return empty;
}

bool HasRule(const VerifyReport& r, const std::string& rule) {
  for (const VerifyFinding& f : r.findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Layer 1: calculus.

TEST(VerifyCalculusTest, WellTypedQueryPasses) {
  Schema schema = CompanySchema();
  ExprPtr q = ParseOQL("select e.name from e in Employees where e.age > 30");
  VerifyReport r = VerifyCalculus(q, schema, CalculusStage::kInput);
  EXPECT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(r.stage, "calculus-input");
  EXPECT_GT(r.checks, 0);
}

TEST(VerifyCalculusTest, IllTypedTermRejectedWithFig3Rule) {
  Schema schema = CompanySchema();
  // sum{ e.name + 1 | e <- Employees }: string + int violates Figure 3.
  ExprPtr bad = Expr::Comp(
      MonoidKind::kSum,
      Expr::Bin(BinOpKind::kAdd, Expr::Proj(Expr::Var("e"), "name"),
                Expr::Int(1)),
      {Qualifier::Generator("e", Expr::Var("Employees"))});
  VerifyReport r = VerifyCalculus(bad, schema, CalculusStage::kInput);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "Fig3-typing")) << r.ToString();
  try {
    r.ThrowIfFailed();
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.stage(), "calculus-input");
    EXPECT_EQ(e.rule(), "Fig3-typing");
  }
}

TEST(VerifyCalculusTest, UnboundVariableRejectedWithScopeRule) {
  Schema schema = CompanySchema();
  // `mystery` is free but is not a declared extent.
  ExprPtr bad = Expr::Comp(MonoidKind::kSum, Expr::Var("mystery"),
                           {Qualifier::Generator("e", Expr::Var("Employees"))});
  VerifyReport r = VerifyCalculus(bad, schema, CalculusStage::kInput);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.findings[0].rule, "scope");
  EXPECT_NE(r.findings[0].detail.find("mystery"), std::string::npos);
}

TEST(VerifyCalculusTest, MalformedTreeRejectedAsWellFormed) {
  Schema schema = CompanySchema();
  // Duplicate record field names make projection ambiguous.
  ExprPtr bad = Expr::Comp(
      MonoidKind::kSet,
      Expr::Record({{"a", Expr::Proj(Expr::Var("e"), "name")},
                    {"a", Expr::Proj(Expr::Var("e"), "age")}}),
      {Qualifier::Generator("e", Expr::Var("Employees"))});
  VerifyReport r = VerifyCalculus(bad, schema, CalculusStage::kInput);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.findings[0].rule, "well-formed");
}

TEST(VerifyCalculusTest, SurvivingBetaRedexRejectedAfterNormalize) {
  Schema schema = CompanySchema();
  ExprPtr redex =
      Expr::Apply(Expr::Lambda("v", Expr::Var("v")), Expr::Int(1));
  VerifyReport r = VerifyCalculus(redex, schema, CalculusStage::kNormalized);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "Fig4-beta")) << r.ToString();
}

TEST(VerifyCalculusTest, UnnormalizedTermFailsFixpointCheck) {
  Schema schema = CompanySchema();
  // set{ x | x <- set{ y | y <- Employees } } — rule (N8) still applies, so
  // the term is not a Figure 4 normal form.
  ExprPtr nested = Expr::Comp(
      MonoidKind::kSet, Expr::Var("x"),
      {Qualifier::Generator(
          "x", Expr::Comp(MonoidKind::kSet, Expr::Var("y"),
                          {Qualifier::Generator("y", Expr::Var("Employees"))}))});
  VerifyReport r = VerifyCalculus(nested, schema, CalculusStage::kNormalized);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.findings[0].rule, "Fig4-fixpoint");
  EXPECT_EQ(r.findings[0].stage, "calculus-normalized");
  // The same term is fine when presented as pre-normalization input.
  EXPECT_TRUE(VerifyCalculus(nested, schema, CalculusStage::kInput).ok());
}

TEST(VerifyCalculusTest, NormalizedCorpusIsAFixpoint) {
  Schema schema = CompanySchema();
  for (const char* oql : {
           "select e.name from e in Employees where e.age > 30",
           "select d.name, sum(select e.salary from e in Employees "
           "where e.dno = d.dno) from d in Departments",
           "select e.name from e in Employees "
           "where exists c in e.children: c.age > 18",
       }) {
    CompiledQuery q = CompileOQL(schema, oql);
    VerifyReport r =
        VerifyCalculus(q.normalized, schema, CalculusStage::kNormalized);
    EXPECT_TRUE(r.ok()) << oql << "\n" << r.ToString();
  }
}

// ---------------------------------------------------------------------------
// Layer 2: algebra.

TEST(VerifyAlgebraTest, CompiledPlansPass) {
  Schema schema = CompanySchema();
  CompiledQuery q = CompileOQL(
      schema,
      "select d.name, sum(select e.salary from e in Employees "
      "where e.dno = d.dno) from d in Departments");
  VerifyReport r = VerifyAlgebra(q.plan, schema, "algebra-unnested");
  EXPECT_TRUE(r.ok()) << r.ToString();
  VerifyReport rs = VerifyAlgebra(q.simplified, schema, "algebra-simplified");
  EXPECT_TRUE(rs.ok()) << rs.ToString();
}

TEST(VerifyAlgebraTest, CompSmuggledIntoPredicateViolatesTheorem1) {
  Schema schema = CompanySchema();
  // A nested subquery hiding inside an operator predicate is exactly what
  // Theorem 1 says cannot survive unnesting.
  ExprPtr smuggled = Expr::Comp(
      MonoidKind::kSome, Expr::Bin(BinOpKind::kGt,
                                   Expr::Proj(Expr::Var("c"), "age"),
                                   Expr::Int(18)),
      {Qualifier::Generator("c", Expr::Proj(Expr::Var("e"), "children"))});
  AlgPtr plan = AlgOp::Reduce(AlgOp::Scan("Employees", "e", Expr::True()),
                              MonoidKind::kSum,
                              Expr::Proj(Expr::Var("e"), "salary"), smuggled);
  VerifyReport r = VerifyAlgebra(plan, schema, "algebra-unnested");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.findings[0].rule, "Thm1-flat");
  try {
    r.ThrowIfFailed();
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.stage(), "algebra-unnested");
    EXPECT_EQ(e.rule(), "Thm1-flat");
  }
}

TEST(VerifyAlgebraTest, NonReduceRootRejected) {
  Schema schema = CompanySchema();
  AlgPtr plan = AlgOp::Scan("Employees", "e", Expr::True());
  VerifyReport r = VerifyAlgebra(plan, schema, "algebra-unnested");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "root-reduce")) << r.ToString();
}

TEST(VerifyAlgebraTest, NullVarWithoutOuterOperatorRejected) {
  Schema schema = CompanySchema();
  // The nest claims `c` needs null->zero conversion, but `c` comes from a
  // plain (inner) unnest — a (C4) where the rules demanded a (C7): nothing
  // below the nest can ever pad `c` with NULL.
  AlgPtr unnest =
      AlgOp::Unnest(AlgOp::Scan("Employees", "e", Expr::True()),
                    Expr::Proj(Expr::Var("e"), "children"), "c", Expr::True());
  AlgPtr nest =
      AlgOp::Nest(unnest, MonoidKind::kSum, Expr::Proj(Expr::Var("c"), "age"),
                  "total", {{"e", Expr::Var("e")}}, {"c"}, Expr::True());
  AlgPtr plan = AlgOp::Reduce(nest, MonoidKind::kSet, Expr::Var("total"),
                              Expr::True());
  VerifyReport r = VerifyAlgebra(plan, schema, "algebra-unnested");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "O7-null-zero")) << r.ToString();
}

TEST(VerifyAlgebraTest, SeedScanNullVarAccepted) {
  Schema schema = CompanySchema();
  // The unnester null-converts every generator of an inner box; when an
  // uncorrelated box starts a fresh branch, its first generator is a plain
  // seed scan — never NULL, but a legitimate null-var (found by fuzzing:
  // sum{ g.dno | g <- Departments, ... } spliced as its own branch).
  AlgPtr nest = AlgOp::Nest(AlgOp::Scan("Departments", "g", Expr::True()),
                            MonoidKind::kSum, Expr::Proj(Expr::Var("g"), "dno"),
                            "total", {}, {"g"}, Expr::True());
  AlgPtr plan = AlgOp::Reduce(nest, MonoidKind::kSet, Expr::Var("total"),
                              Expr::True());
  EXPECT_TRUE(VerifyAlgebra(plan, schema, "algebra-unnested").ok());
}

TEST(VerifyAlgebraTest, OuterJoinNullVarsAccepted) {
  Schema schema = CompanySchema();
  // The canonical Figure 8 shape: the outer-join introduces e's padding and
  // the nest converts it — the verifier must accept it.
  CompiledQuery q = CompileOQL(
      schema,
      "select d.name, sum(select e.salary from e in Employees "
      "where e.dno = d.dno) from d in Departments");
  bool saw_null_vars = false;
  for (AlgPtr op = q.plan; op; op = op->left) {
    if (op->kind == AlgKind::kNest && !op->null_vars.empty()) {
      saw_null_vars = true;
    }
  }
  EXPECT_TRUE(saw_null_vars) << PrintPlan(q.plan);
  EXPECT_TRUE(VerifyAlgebra(q.plan, schema, "algebra-unnested").ok());
}

// ---------------------------------------------------------------------------
// Layer 3: slot plans.

CExprPtr CSlot(int slot) {
  auto e = std::make_shared<CExpr>();
  e->kind = CExprKind::kSlot;
  e->slot = slot;
  return e;
}

CExprPtr CTrue() {
  auto e = std::make_shared<CExpr>();
  e->kind = CExprKind::kLit;
  e->literal = Value::Bool(true);
  return e;
}

std::shared_ptr<SlotOp> MakeScan(int id, int slot) {
  auto scan = std::make_shared<SlotOp>();
  scan->kind = PhysKind::kTableScan;
  scan->id = id;
  scan->extent = "Employees";
  scan->var_slot = slot;
  scan->out_lo = slot;
  scan->out_hi = slot + 1;
  scan->pred = CTrue();
  return scan;
}

TEST(VerifySlotPlanTest, CompiledSlotPlansPass) {
  Database db = TinyCompany();
  for (const char* oql : {
           "select e.name from e in Employees where e.age > 30",
           "select d.name, sum(select e.salary from e in Employees "
           "where e.dno = d.dno) from d in Departments",
       }) {
    CompiledQuery q = CompileOQL(db.schema(), oql);
    SlotPlan slots = CompileSlotPlan(PlanPhysical(q.simplified, db), db);
    VerifyReport r = VerifySlotPlan(slots);
    EXPECT_TRUE(r.ok()) << oql << "\n" << r.ToString();
    EXPECT_EQ(r.stage, "slot-plan");
  }
}

TEST(VerifySlotPlanTest, ReadBeforeWriteRejected) {
  // Reduce(TableScan): the scan writes slot 0, but the reduce head reads
  // slot 1, which no operator ever writes.
  auto scan = MakeScan(1, 0);
  auto root = std::make_shared<SlotOp>();
  root->kind = PhysKind::kReduce;
  root->id = 0;
  root->out_lo = 0;
  root->out_hi = 1;
  root->monoid = MonoidKind::kSum;
  root->pred = CTrue();
  root->head = CSlot(1);
  root->left = scan;
  SlotPlan plan;
  plan.root = root;
  plan.n_slots = 2;
  VerifyReport r = VerifySlotPlan(plan);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.findings[0].rule, "read-before-write");
  EXPECT_NE(r.findings[0].detail.find("slot 1"), std::string::npos);
  try {
    r.ThrowIfFailed();
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.stage(), "slot-plan");
    EXPECT_EQ(e.rule(), "read-before-write");
  }
}

TEST(VerifySlotPlanTest, TwoWritersOfOneSlotRejected) {
  // An NLJoin whose two scans both claim slot 0 — the static analog of two
  // concurrent pipelines writing the same frame slot.
  auto left = MakeScan(1, 0);
  auto right = MakeScan(2, 0);
  auto root = std::make_shared<SlotOp>();
  root->kind = PhysKind::kReduce;
  root->id = 0;
  root->out_lo = 0;
  root->out_hi = 1;
  root->monoid = MonoidKind::kSum;
  root->pred = CTrue();
  root->head = CSlot(0);
  auto join = std::make_shared<SlotOp>();
  join->kind = PhysKind::kNLJoin;
  join->id = 1;
  left->id = 2;
  right->id = 3;
  join->out_lo = 0;
  join->out_hi = 1;
  join->pred = CTrue();
  join->left = left;
  join->right = right;
  root->left = join;
  SlotPlan plan;
  plan.root = root;
  plan.n_slots = 1;
  VerifyReport r = VerifySlotPlan(plan);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.findings[0].rule, "single-writer");
}

TEST(VerifySlotPlanTest, ParameterSlotClobberedByOperatorRejected) {
  auto scan = MakeScan(1, 0);
  auto root = std::make_shared<SlotOp>();
  root->kind = PhysKind::kReduce;
  root->id = 0;
  root->out_lo = 0;
  root->out_hi = 1;
  root->monoid = MonoidKind::kSum;
  root->pred = CTrue();
  root->head = CSlot(0);
  root->left = scan;
  SlotPlan plan;
  plan.root = root;
  plan.n_slots = 1;
  plan.param_slots = {{"min_age", 0}};  // shares slot 0 with the scan
  VerifyReport r = VerifySlotPlan(plan);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "param-init")) << r.ToString();
}

TEST(VerifySlotPlanTest, BrokenPreorderNumberingRejected) {
  auto scan = MakeScan(7, 0);  // should be id 1
  auto root = std::make_shared<SlotOp>();
  root->kind = PhysKind::kReduce;
  root->id = 0;
  root->out_lo = 0;
  root->out_hi = 1;
  root->monoid = MonoidKind::kSum;
  root->pred = CTrue();
  root->head = CSlot(0);
  root->left = scan;
  SlotPlan plan;
  plan.root = root;
  plan.n_slots = 1;
  VerifyReport r = VerifySlotPlan(plan);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "preorder-id")) << r.ToString();
}

// ---------------------------------------------------------------------------
// Pipeline integration.

OptimizerOptions VerifyOn() {
  OptimizerOptions options;
  options.verify_plans = true;
  return options;
}

TEST(VerifyPipelineTest, VerifiedExecutionMatchesBaseline) {
  Database db = TinyCompany();
  for (const char* oql : {
           "select e.name from e in Employees where e.age > 30",
           "select d.name, sum(select e.salary from e in Employees "
           "where e.dno = d.dno) from d in Departments",
           "select e.name from e in Employees "
           "where exists c in e.children: c.age > 18",
           "select e.name, count(e.children) from e in Employees",
       }) {
    testing::RunBothWays(db, oql, VerifyOn());
  }
}

TEST(VerifyPipelineTest, CompileRecordsVerifyStagesInTrace) {
  Database db = TinyCompany();
  OptimizerOptions options = VerifyOn();
  options.trace = true;
  Optimizer opt(db.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(
      "select d.name, sum(select e.salary from e in Employees "
      "where e.dno = d.dno) from d in Departments"));
  ASSERT_NE(q.trace, nullptr);
  std::vector<std::string> stages;
  for (const VerifyStageSummary& s : q.trace->verify_stages) {
    EXPECT_EQ(s.findings, 0) << s.stage;
    EXPECT_GT(s.checks, 0) << s.stage;
    stages.push_back(s.stage);
  }
  EXPECT_NE(std::find(stages.begin(), stages.end(), "calculus-input"),
            stages.end());
  EXPECT_NE(std::find(stages.begin(), stages.end(), "calculus-normalized"),
            stages.end());
  EXPECT_NE(std::find(stages.begin(), stages.end(), "algebra-unnested"),
            stages.end());
  // Execution adds the slot-plan layer (use_slot_frames defaults on).
  opt.Execute(q, db);
  bool saw_slots = false;
  for (const VerifyStageSummary& s : q.trace->verify_stages) {
    if (s.stage == "slot-plan") saw_slots = true;
  }
  EXPECT_TRUE(saw_slots);
}

TEST(VerifyPipelineTest, VerifyCompiledQueryCoversEveryStage) {
  Schema schema = CompanySchema();
  CompiledQuery q = CompileOQL(
      schema,
      "select d.name, sum(select e.salary from e in Employees "
      "where e.dno = d.dno) from d in Departments");
  std::vector<VerifyReport> reports = VerifyCompiledQuery(q, schema);
  EXPECT_TRUE(Stage(reports, "calculus-input").ok());
  EXPECT_TRUE(Stage(reports, "calculus-normalized").ok());
  EXPECT_TRUE(Stage(reports, "algebra-unnested").ok());
  for (const VerifyReport& r : reports) {
    EXPECT_TRUE(r.ok()) << r.ToString();
  }
  ThrowOnFindings(reports);  // must not throw
}

TEST(VerifyPipelineTest, CompileThrowsVerifyErrorOnCorruptIR) {
  // With typechecking disabled, the verifier is the only net left — an
  // ill-typed term must surface as VerifyError, not a wrong answer.
  Schema schema = CompanySchema();
  OptimizerOptions options = VerifyOn();
  options.typecheck = false;
  Optimizer opt(schema, options);
  ExprPtr bad = Expr::Comp(
      MonoidKind::kSum,
      Expr::Bin(BinOpKind::kAdd, Expr::Proj(Expr::Var("e"), "name"),
                Expr::Int(1)),
      {Qualifier::Generator("e", Expr::Var("Employees"))});
  try {
    opt.Compile(bad);
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.stage(), "calculus-input");
    EXPECT_EQ(e.rule(), "Fig3-typing");
  }
}

// ---------------------------------------------------------------------------
// Pretty-printer round-trip (the plan-cache key soundness guard).

TEST(CalcParserTest, RoundTripsHandmadeTerms) {
  std::vector<ExprPtr> terms = {
      Expr::Var("x"),
      Expr::Param("min_age"),
      Expr::Int(42),
      Expr::Int(-7),
      Expr::Real(1.5),
      Expr::Str("hello world"),
      Expr::True(),
      Expr::Null(),
      Expr::Zero(MonoidKind::kBag),
      Expr::Proj(Expr::Proj(Expr::Var("e"), "manager"), "name"),
      Expr::Bin(BinOpKind::kAdd, Expr::Int(1),
                Expr::Bin(BinOpKind::kMul, Expr::Var("x"), Expr::Int(2))),
      Expr::Bin(BinOpKind::kMod, Expr::Var("x"), Expr::Int(3)),
      Expr::Un(UnOpKind::kNot, Expr::Var("p")),
      Expr::Un(UnOpKind::kNeg, Expr::Var("x")),
      Expr::Un(UnOpKind::kIsNull, Expr::Proj(Expr::Var("e"), "manager")),
      Expr::If(Expr::Var("p"), Expr::Int(1), Expr::Int(2)),
      Expr::Record({{"a", Expr::Var("x")}, {"b", Expr::Int(2)}}),
      Expr::Lambda("v", Expr::Bin(BinOpKind::kGt, Expr::Var("v"),
                                  Expr::Int(0))),
      Expr::Apply(Expr::Var("f"), Expr::Var("x")),
      Expr::Merge(MonoidKind::kSet, Expr::Var("a"), Expr::Var("b")),
      Expr::Comp(MonoidKind::kSum, Expr::Proj(Expr::Var("e"), "salary"),
                 {Qualifier::Generator("e", Expr::Var("Employees")),
                  Qualifier::Filter(Expr::Bin(BinOpKind::kGe,
                                              Expr::Proj(Expr::Var("e"), "age"),
                                              Expr::Param("min_age")))}),
      Expr::Singleton(MonoidKind::kList, Expr::Var("x")),
      // Gensym-style names ('$' inside an identifier) must survive.
      Expr::Comp(MonoidKind::kSet, Expr::Var("v$17"),
                 {Qualifier::Generator("v$17", Expr::Var("Employees"))}),
  };
  for (const ExprPtr& t : terms) {
    const std::string printed = PrintExpr(t);
    ExprPtr reparsed = ParseCalculus(printed);
    EXPECT_TRUE(ExprEqual(reparsed, t))
        << "printed:  " << printed << "\nreparsed: " << PrintExpr(reparsed);
    EXPECT_EQ(PrintExpr(reparsed), printed);
  }
}

TEST(CalcParserTest, NormalizedCorpusPrintsAreStableCacheKeys) {
  Schema schema = CompanySchema();
  for (const char* oql : {
           "select e.name from e in Employees where e.age > 30",
           // Distinct labels: `e.name, c.name` would translate to a record
           // with two `name` fields, which the verifier rejects as
           // ill-formed (projection would be ambiguous).
           "select distinct struct(E: e.name, C: c.name) "
           "from e in Employees, c in e.children",
           "select d.name, sum(select e.salary from e in Employees "
           "where e.dno = d.dno) from d in Departments",
           "select e.name from e in Employees "
           "where exists c in e.children: c.age > 18",
           "select e.name from e in Employees "
           "where e.age > $min_age and e.salary < $cap",
           "avg(select e.salary from e in Employees)",
       }) {
    CompiledQuery q = CompileOQL(schema, oql);
    const std::string key = PrintExpr(q.normalized);
    // The cache-key contract: print -> parse -> normalize -> print is the
    // identity on normalized terms.
    ExprPtr reparsed = ParseCalculus(key);
    EXPECT_EQ(PrintExpr(reparsed), key) << oql;
    EXPECT_EQ(PrintExpr(Normalize(reparsed)), key) << oql;
    // And the reparsed term still typechecks.
    EXPECT_NO_THROW(TypeCheck(reparsed, schema)) << oql;
  }
}

TEST(CalcParserTest, RejectsWhatThePrinterCannotEmit) {
  EXPECT_THROW(ParseCalculus(""), ParseError);
  EXPECT_THROW(ParseCalculus("1 2"), ParseError);          // trailing input
  EXPECT_THROW(ParseCalculus("(1 + 2"), ParseError);       // unbalanced
  EXPECT_THROW(ParseCalculus("set{ x | }"), ParseError);   // empty qualifier
  EXPECT_THROW(ParseCalculus("zero[nope]"), ParseError);   // unknown monoid
  EXPECT_THROW(ParseCalculus("<a=>"), ParseError);         // missing field
}

}  // namespace
}  // namespace ldb
