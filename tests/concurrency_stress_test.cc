// Concurrency stress tests for every annotated lock in the service stack
// (DESIGN.md, "Locking discipline"): PlanCache, MetricsRegistry,
// ActiveQueryRegistry, QueryLog, and QueryService::Execute racing
// UpdateCatalog. Schedules are seeded (per-thread mt19937, seed = kSeed +
// thread id) so a TSan hit replays. These tests complement the static
// thread-safety analysis: the annotations prove lock discipline at compile
// time; this file makes the TSan job actually interleave the locks.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/lambdadb.h"
#include "src/obs/query_log.h"
#include "src/obs/resource.h"
#include "src/service/plan_cache.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

constexpr uint32_t kSeed = 20260808;
constexpr int kThreads = 8;

void RunThreads(int n, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int t = 0; t < n; ++t) threads.emplace_back([&, t] { body(t); });
  for (std::thread& th : threads) th.join();
}

// ----------------------------------------------------------------- PlanCache

std::shared_ptr<const PreparedPlan> FakePlan(const std::string& key) {
  auto p = std::make_shared<PreparedPlan>();
  p->cache_key = key;
  p->fallback_run = true;
  return p;
}

TEST(ConcurrencyStress, PlanCacheHitMissEvictUnderContention) {
  // Capacity far below the key universe so capacity evictions race lookups.
  PlanCache cache(8);
  constexpr int kKeys = 64;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> lookups{0};

  RunThreads(kThreads, [&](int t) {
    std::mt19937 rng(kSeed + t);
    std::uniform_int_distribution<int> key_dist(0, kKeys - 1);
    std::uniform_int_distribution<int> op_dist(0, 99);
    for (int i = 0; i < kOpsPerThread; ++i) {
      std::string key = "q" + std::to_string(key_dist(rng)) + "\n@stamp";
      int op = op_dist(rng);
      if (op < 70) {
        std::shared_ptr<const PreparedPlan> p = cache.Lookup(key);
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (p != nullptr) {
          EXPECT_EQ(p->cache_key, key);
        }
      } else if (op < 95) {
        cache.Insert(key, FakePlan(key));
      } else if (op < 98) {
        cache.Stats();
      } else {
        cache.Clear();
      }
    }
  });

  PlanCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits + s.misses, lookups.load());
  EXPECT_LE(s.entries, s.capacity);
  EXPECT_EQ(s.evictions, s.evictions_capacity + s.evictions_invalidated);
}

TEST(ConcurrencyStress, PlanCacheEvictNotMatchingRacesInserts) {
  PlanCache cache(128);
  std::atomic<bool> stop{false};

  std::thread evictor([&] {
    std::mt19937 rng(kSeed);
    int gen = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      cache.EvictNotMatching("\n@gen" + std::to_string(gen % 2));
      ++gen;
    }
  });
  RunThreads(kThreads, [&](int t) {
    std::mt19937 rng(kSeed + 1 + t);
    std::uniform_int_distribution<int> key_dist(0, 31);
    for (int i = 0; i < 2000; ++i) {
      std::string key = "q" + std::to_string(key_dist(rng)) + "\n@gen" +
                        std::to_string(i % 2);
      if (cache.Lookup(key) == nullptr) cache.Insert(key, FakePlan(key));
    }
  });
  stop.store(true);
  evictor.join();

  // Every surviving entry matches one of the two stamps; counters add up.
  PlanCacheStats s = cache.Stats();
  EXPECT_EQ(s.evictions, s.evictions_capacity + s.evictions_invalidated);
}

// Regression (PR 9): SetMetricHooks used to assign the hook struct without
// the cache mutex — racing a concurrent Lookup/Insert that reads the hooks.
// Now it locks; this test makes TSan watch the window.
TEST(ConcurrencyStress, PlanCacheSetMetricHooksRacesTraffic) {
  PlanCache cache(16);
  obs::MetricsRegistry reg;
  PlanCache::MetricHooks hooks;
  hooks.hits = reg.GetCounter("h", "hits");
  hooks.misses = reg.GetCounter("m", "misses");

  std::atomic<bool> stop{false};
  std::thread installer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.SetMetricHooks(hooks);
      cache.SetMetricHooks(PlanCache::MetricHooks{});
    }
  });
  RunThreads(kThreads, [&](int t) {
    std::mt19937 rng(kSeed + t);
    std::uniform_int_distribution<int> key_dist(0, 7);
    for (int i = 0; i < 2000; ++i) {
      std::string key = "k" + std::to_string(key_dist(rng));
      if (cache.Lookup(key) == nullptr) cache.Insert(key, FakePlan(key));
    }
  });
  stop.store(true);
  installer.join();
  PlanCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits + s.misses, uint64_t{kThreads} * 2000);
}

// ----------------------------------------------------------- MetricsRegistry

TEST(ConcurrencyStress, MetricsRegistryRegistrationRacesSnapshots) {
  obs::MetricsRegistry reg;
  constexpr int kOpsPerThread = 2000;

  RunThreads(kThreads, [&](int t) {
    std::mt19937 rng(kSeed + t);
    std::uniform_int_distribution<int> name_dist(0, 15);
    std::uniform_int_distribution<int> op_dist(0, 99);
    for (int i = 0; i < kOpsPerThread; ++i) {
      std::string name = "metric_" + std::to_string(name_dist(rng));
      int op = op_dist(rng);
      if (op < 40) {
        reg.GetCounter(name + "_c", "help")->Inc();
      } else if (op < 70) {
        reg.GetGauge(name + "_g", "help")->Add(1);
      } else if (op < 90) {
        reg.GetHistogram(name + "_h", "help")->Observe(double(i % 100));
      } else {
        (void)reg.Snapshot().samples.size();
      }
    }
  });

  // Registration is idempotent per series: re-registering returns the same
  // instrument, so per-series totals equal the sum of every thread's Incs.
  uint64_t total = 0;
  for (int n = 0; n < 16; ++n) {
    total += reg.GetCounter("metric_" + std::to_string(n) + "_c", "help")
                 ->Value();
  }
  if (obs::MetricsRegistry::Enabled()) {
    EXPECT_GT(total, 0u);
  }
  // Rendering under load stays parseable.
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_FALSE(snap.ToPrometheusText().empty());
}

// ------------------------------------------------------- ActiveQueryRegistry

TEST(ConcurrencyStress, ActiveQueryRegistryRegisterSnapshotUnregister) {
  obs::ActiveQueryRegistry reg;
  constexpr int kOpsPerThread = 1500;

  RunThreads(kThreads, [&](int t) {
    std::mt19937 rng(kSeed + t);
    std::uniform_int_distribution<int> op_dist(0, 9);
    auto ctx = std::make_shared<obs::QueryResourceContext>();
    for (int i = 0; i < kOpsPerThread; ++i) {
      uint64_t id = reg.Register(uint64_t(t), uint64_t(i), ctx, "t:0");
      if (op_dist(rng) < 3) {
        std::vector<obs::ActiveQueryInfo> snap = reg.Snapshot();
        EXPECT_GE(snap.size(), 1u);  // at least our own entry
        (void)reg.SumInUseBytes();
      }
      reg.SetPhase(id, "executing");
      reg.Unregister(id);
    }
  });

  EXPECT_EQ(reg.Count(), 0u);
  EXPECT_TRUE(reg.Snapshot().empty());
}

// ------------------------------------------------------------------ QueryLog

TEST(ConcurrencyStress, QueryLogAppendRacesTail) {
  obs::QueryLog log(/*capacity=*/64, /*slow_ms=*/1.0);
  constexpr int kOpsPerThread = 2000;

  RunThreads(kThreads, [&](int t) {
    std::mt19937 rng(kSeed + t);
    std::uniform_int_distribution<int> op_dist(0, 9);
    for (int i = 0; i < kOpsPerThread; ++i) {
      obs::QueryLogRecord rec;
      rec.session = uint64_t(t);
      rec.status = "ok";
      rec.exec_ms = double(i % 7);
      log.Append(rec);
      if (op_dist(rng) == 0) {
        std::vector<obs::QueryLogRecord> tail = log.Tail(16);
        EXPECT_LE(tail.size(), 16u);
        for (const obs::QueryLogRecord& r : tail) {
          EXPECT_EQ(r.status, "ok");  // never a half-written record
        }
      }
    }
  });

  EXPECT_EQ(log.appended(), uint64_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(log.dropped(), log.appended() - log.capacity());
  EXPECT_EQ(log.Tail(1000).size(), log.capacity());
}

// -------------------------------------------- Execute vs UpdateCatalog race

// Regression (PR 9): UpdateCatalog used to write options_.optimizer.catalog
// and version_stamp_ with no lock while concurrent Execute calls read both
// mid-compile — documented "maintenance window only". The planning config
// now lives behind config_mu_ and every query plans against a snapshot, so
// catalog swaps are safe against live traffic. This hammers the window and
// checks results stay correct throughout.
TEST(ConcurrencyStress, ExecuteRacesUpdateCatalog) {
  Database db = testing::TinyCompany();
  ServiceOptions so;
  so.max_concurrent = kThreads;
  so.plan_cache_capacity = 8;
  QueryService svc(db, so);

  const std::string query =
      "count(select e.name from e in Employees where e.salary > 0)";
  const Value expected = RunOQL(db, query);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    std::mt19937 rng(kSeed);
    std::uniform_int_distribution<int> card(1, 1000000);
    while (!stop.load(std::memory_order_relaxed)) {
      Catalog cat = Catalog::FromDatabase(db);
      cat.SetExtentCardinality("Employees", double(card(rng)));
      svc.UpdateCatalog(cat);  // moves the version stamp every time
    }
  });

  std::atomic<int> failures{0};
  RunThreads(kThreads, [&](int /*t*/) {
    auto session = svc.OpenSession();
    for (int i = 0; i < 200; ++i) {
      Value v = svc.Execute(*session, query);
      if (!(v == expected)) failures.fetch_add(1);
    }
  });
  stop.store(true);
  swapper.join();

  EXPECT_EQ(failures.load(), 0);
  // Cache stays coherent: totals reconcile after the storm.
  PlanCacheStats s = svc.cache_stats();
  EXPECT_EQ(s.evictions, s.evictions_capacity + s.evictions_invalidated);
  EXPECT_LE(s.entries, s.capacity);
}

// Admission bookkeeping under churn: running() never exceeds the configured
// ceiling and returns to zero when the storm ends.
TEST(ConcurrencyStress, AdmissionCountersStayWithinCeiling) {
  Database db = testing::TinyCompany();
  ServiceOptions so;
  so.max_concurrent = 2;
  so.max_queue = 64;
  QueryService svc(db, so);
  const std::string query = "count(select e.name from e in Employees)";

  std::atomic<bool> stop{false};
  std::atomic<int> over{0};
  std::thread watcher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (svc.running() > so.max_concurrent) over.fetch_add(1);
    }
  });
  RunThreads(kThreads, [&](int /*t*/) {
    auto session = svc.OpenSession();
    for (int i = 0; i < 50; ++i) svc.Execute(*session, query);
  });
  stop.store(true);
  watcher.join();

  EXPECT_EQ(over.load(), 0);
  EXPECT_EQ(svc.running(), 0);
}

}  // namespace
}  // namespace ldb
