// Tests for algebra plan construction and introspection (src/core/algebra.*)
// and for the operator semantics of Figure 5 executed directly
// (src/runtime/eval_algebra.* at the operator level).

#include "src/core/algebra.h"

#include <gtest/gtest.h>

#include "src/core/pretty.h"
#include "src/runtime/eval_algebra.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

TEST(AlgebraTest, OutputVars) {
  AlgPtr scan = AlgOp::Scan("Employees", "e", nullptr);
  EXPECT_EQ(OutputVars(scan), (std::vector<std::string>{"e"}));

  AlgPtr join = AlgOp::Join(scan, AlgOp::Scan("Departments", "d", nullptr),
                            nullptr);
  EXPECT_EQ(OutputVars(join), (std::vector<std::string>{"e", "d"}));

  AlgPtr unnest = AlgOp::Unnest(join, Expr::Proj(V("e"), "children"), "c",
                                nullptr);
  EXPECT_EQ(OutputVars(unnest), (std::vector<std::string>{"e", "d", "c"}));

  AlgPtr nest = AlgOp::Nest(unnest, MonoidKind::kSum, Expr::Int(1), "m",
                            {{"e", V("e")}, {"d", V("d")}}, {"c"}, nullptr);
  EXPECT_EQ(OutputVars(nest), (std::vector<std::string>{"e", "d", "m"}));

  AlgPtr reduce = AlgOp::Reduce(nest, MonoidKind::kSet, V("m"), nullptr);
  EXPECT_TRUE(OutputVars(reduce).empty());
  EXPECT_TRUE(OutputVars(AlgOp::Unit()).empty());
}

TEST(AlgebraTest, DefaultPredicateIsTrue) {
  AlgPtr scan = AlgOp::Scan("Employees", "e", nullptr);
  EXPECT_TRUE(scan->pred->IsTrueLiteral());
}

TEST(AlgebraTest, IsFullyUnnestedDetectsComps) {
  ExprPtr comp = Expr::Comp(MonoidKind::kSum, Expr::Int(1),
                            {Qualifier::Generator("x", V("X"))});
  AlgPtr good = AlgOp::Reduce(AlgOp::Scan("Employees", "e", nullptr),
                              MonoidKind::kSet, V("e"), nullptr);
  EXPECT_TRUE(IsFullyUnnested(good));

  AlgPtr bad_head = AlgOp::Reduce(AlgOp::Scan("Employees", "e", nullptr),
                                  MonoidKind::kSet, comp, nullptr);
  EXPECT_FALSE(IsFullyUnnested(bad_head));

  AlgPtr bad_pred = AlgOp::Reduce(AlgOp::Scan("Employees", "e", comp),
                                  MonoidKind::kSet, V("e"), nullptr);
  EXPECT_FALSE(IsFullyUnnested(bad_pred));
}

TEST(AlgebraTest, PlanSizeAndShape) {
  AlgPtr join = AlgOp::Join(AlgOp::Scan("Employees", "e", nullptr),
                            AlgOp::Scan("Departments", "d", nullptr), nullptr);
  AlgPtr plan = AlgOp::Reduce(join, MonoidKind::kSet, V("e"), nullptr);
  EXPECT_EQ(PlanSize(plan), 4u);
  EXPECT_EQ(PlanShape(plan), "Reduce(Join(Scan(Employees),Scan(Departments)))");
}

TEST(AlgebraTest, AlgEqual) {
  AlgPtr a = AlgOp::Reduce(AlgOp::Scan("Employees", "e", nullptr),
                           MonoidKind::kSet, V("e"), nullptr);
  AlgPtr b = AlgOp::Reduce(AlgOp::Scan("Employees", "e", nullptr),
                           MonoidKind::kSet, V("e"), nullptr);
  AlgPtr c = AlgOp::Reduce(AlgOp::Scan("Employees", "x", nullptr),
                           MonoidKind::kSet, V("x"), nullptr);
  EXPECT_TRUE(AlgEqual(a, b));
  EXPECT_FALSE(AlgEqual(a, c));
}

// -- Operator semantics against the tiny database --------------------------

class AlgebraSemanticsTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
};

TEST_F(AlgebraSemanticsTest, ScanWithSelection) {
  // Employees older than 35: Bob, Dee.
  AlgPtr plan = AlgOp::Reduce(
      AlgOp::Scan("Employees", "e",
                  Expr::Bin(BinOpKind::kGt, Expr::Proj(V("e"), "age"),
                            Expr::Int(35))),
      MonoidKind::kSet, Expr::Proj(V("e"), "name"), nullptr);
  EXPECT_EQ(ExecutePlan(plan, db_),
            Value::Set({Value::Str("Bob"), Value::Str("Dee")}));
}

TEST_F(AlgebraSemanticsTest, JoinDropsUnmatched) {
  // Departments joined with employees: the "Empty" department disappears.
  AlgPtr join = AlgOp::Join(
      AlgOp::Scan("Departments", "d", nullptr),
      AlgOp::Scan("Employees", "e", nullptr),
      Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno")));
  AlgPtr plan = AlgOp::Reduce(join, MonoidKind::kSet,
                              Expr::Proj(V("d"), "name"), nullptr);
  EXPECT_EQ(ExecutePlan(plan, db_),
            Value::Set({Value::Str("Sales"), Value::Str("R&D")}));
}

TEST_F(AlgebraSemanticsTest, OuterJoinPadsWithNull) {
  // Count department-employee pairs per outer row: Empty contributes a
  // padded row, so the set of (dept, is_null(e)) pairs includes (Empty, true).
  AlgPtr ojoin = AlgOp::OuterJoin(
      AlgOp::Scan("Departments", "d", nullptr),
      AlgOp::Scan("Employees", "e", nullptr),
      Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno")));
  AlgPtr plan = AlgOp::Reduce(
      ojoin, MonoidKind::kSet,
      Expr::Record({{"d", Expr::Proj(V("d"), "name")},
                    {"none", Expr::Un(UnOpKind::kIsNull, V("e"))}}),
      nullptr);
  Value result = ExecutePlan(plan, db_);
  Value expected = Value::Set({
      Value::Tuple({{"d", Value::Str("Sales")}, {"none", Value::Bool(false)}}),
      Value::Tuple({{"d", Value::Str("R&D")}, {"none", Value::Bool(false)}}),
      Value::Tuple({{"d", Value::Str("Empty")}, {"none", Value::Bool(true)}}),
  });
  EXPECT_EQ(result, expected);
}

TEST_F(AlgebraSemanticsTest, OuterJoinHashAndNLAgree) {
  AlgPtr ojoin = AlgOp::OuterJoin(
      AlgOp::Scan("Departments", "d", nullptr),
      AlgOp::Scan("Employees", "e", nullptr),
      Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno")));
  AlgPtr plan = AlgOp::Reduce(ojoin, MonoidKind::kSum, Expr::Int(1), nullptr);
  PhysicalOptions hash, nl;
  nl.use_hash_joins = false;
  EXPECT_EQ(ExecutePlan(plan, db_, hash), ExecutePlan(plan, db_, nl));
  // 2 Sales + 2 R&D + 1 padded Empty = 5 rows.
  EXPECT_EQ(ExecutePlan(plan, db_), Value::Int(5));
}

TEST_F(AlgebraSemanticsTest, UnnestDropsEmpty) {
  // Unnest children: Bob (no kids) disappears.
  AlgPtr unnest = AlgOp::Unnest(AlgOp::Scan("Employees", "e", nullptr),
                                Expr::Proj(V("e"), "children"), "c", nullptr);
  AlgPtr plan = AlgOp::Reduce(unnest, MonoidKind::kSet,
                              Expr::Proj(V("e"), "name"), nullptr);
  EXPECT_EQ(ExecutePlan(plan, db_),
            Value::Set({Value::Str("Ann"), Value::Str("Cal"), Value::Str("Dee")}));
}

TEST_F(AlgebraSemanticsTest, OuterUnnestKeepsEmptyPadded) {
  AlgPtr unnest = AlgOp::OuterUnnest(AlgOp::Scan("Employees", "e", nullptr),
                                     Expr::Proj(V("e"), "children"), "c",
                                     nullptr);
  AlgPtr plan = AlgOp::Reduce(unnest, MonoidKind::kSet,
                              Expr::Proj(V("e"), "name"), nullptr);
  EXPECT_EQ(ExecutePlan(plan, db_),
            Value::Set({Value::Str("Ann"), Value::Str("Bob"), Value::Str("Cal"),
                        Value::Str("Dee")}));
}

TEST_F(AlgebraSemanticsTest, OuterUnnestOverNullPathPads) {
  // e.manager.children when manager is NULL (Cal) navigates to NULL and must
  // pad, not crash.
  AlgPtr unnest = AlgOp::OuterUnnest(
      AlgOp::Scan("Employees", "e",
                  Expr::Eq(Expr::Proj(V("e"), "name"), Expr::Str("Cal"))),
      Expr::Path(V("e"), {"manager", "children"}), "d", nullptr);
  AlgPtr plan = AlgOp::Reduce(unnest, MonoidKind::kSet,
                              Expr::Un(UnOpKind::kIsNull, V("d")), nullptr);
  EXPECT_EQ(ExecutePlan(plan, db_), Value::Set({Value::Bool(true)}));
}

TEST_F(AlgebraSemanticsTest, NestConvertsPaddedNullsToZero) {
  // The Figure 1.B pattern: group the outer-join by d; Empty gets {}.
  AlgPtr ojoin = AlgOp::OuterJoin(
      AlgOp::Scan("Departments", "d", nullptr),
      AlgOp::Scan("Employees", "e", nullptr),
      Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno")));
  AlgPtr nest = AlgOp::Nest(ojoin, MonoidKind::kSet, Expr::Proj(V("e"), "name"),
                            "m", {{"d", V("d")}}, {"e"}, nullptr);
  AlgPtr plan = AlgOp::Reduce(
      nest, MonoidKind::kSet,
      Expr::Record({{"D", Expr::Proj(V("d"), "name")}, {"E", V("m")}}), nullptr);
  Value result = ExecutePlan(plan, db_);
  Value expected = Value::Set({
      Value::Tuple({{"D", Value::Str("Sales")},
                    {"E", Value::Set({Value::Str("Ann"), Value::Str("Bob")})}}),
      Value::Tuple({{"D", Value::Str("R&D")},
                    {"E", Value::Set({Value::Str("Cal"), Value::Str("Dee")})}}),
      Value::Tuple({{"D", Value::Str("Empty")}, {"E", Value::Set({})}}),
  });
  EXPECT_EQ(result, expected);
}

TEST_F(AlgebraSemanticsTest, NestWithPredicateStillCreatesGroups) {
  // A nest predicate filters contributions, not groups: count employees
  // above 90k per department; Sales has 1 (Ann), R&D has 1 (Dee), Empty 0 —
  // and departments whose employees all fail the predicate still group to 0.
  AlgPtr ojoin = AlgOp::OuterJoin(
      AlgOp::Scan("Departments", "d", nullptr),
      AlgOp::Scan("Employees", "e", nullptr),
      Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno")));
  AlgPtr nest = AlgOp::Nest(
      ojoin, MonoidKind::kSum, Expr::Int(1), "m", {{"d", V("d")}}, {"e"},
      Expr::Bin(BinOpKind::kGt, Expr::Proj(V("e"), "salary"),
                Expr::Real(90000)));
  AlgPtr plan = AlgOp::Reduce(
      nest, MonoidKind::kSet,
      Expr::Record({{"D", Expr::Proj(V("d"), "name")}, {"n", V("m")}}), nullptr);
  Value expected = Value::Set({
      Value::Tuple({{"D", Value::Str("Sales")}, {"n", Value::Int(1)}}),
      Value::Tuple({{"D", Value::Str("R&D")}, {"n", Value::Int(1)}}),
      Value::Tuple({{"D", Value::Str("Empty")}, {"n", Value::Int(0)}}),
  });
  EXPECT_EQ(ExecutePlan(plan, db_), expected);
}

TEST_F(AlgebraSemanticsTest, NestWithExpressionKeys) {
  // Group employees by dno directly (the simplified Figure 8.B shape).
  AlgPtr nest = AlgOp::Nest(AlgOp::Scan("Employees", "e", nullptr),
                            MonoidKind::kAvg, Expr::Proj(V("e"), "salary"),
                            "m", {{"k", Expr::Proj(V("e"), "dno")}}, {},
                            nullptr);
  AlgPtr plan = AlgOp::Reduce(
      nest, MonoidKind::kSet,
      Expr::Record({{"dno", V("k")}, {"avg", V("m")}}), nullptr);
  Value expected = Value::Set({
      Value::Tuple({{"dno", Value::Int(0)}, {"avg", Value::Real(90000)}}),
      Value::Tuple({{"dno", Value::Int(1)}, {"avg", Value::Real(90000)}}),
  });
  EXPECT_EQ(ExecutePlan(plan, db_), expected);
}

TEST_F(AlgebraSemanticsTest, ReduceWithQuantifierShortCircuits) {
  // some{ e.age > 50 } — true because of Dee.
  AlgPtr plan = AlgOp::Reduce(
      AlgOp::Scan("Employees", "e", nullptr), MonoidKind::kSome,
      Expr::Bin(BinOpKind::kGt, Expr::Proj(V("e"), "age"), Expr::Int(50)),
      nullptr);
  EXPECT_EQ(ExecutePlan(plan, db_), Value::Bool(true));
}

TEST_F(AlgebraSemanticsTest, UnitFeedsGeneratorlessReduce) {
  AlgPtr plan = AlgOp::Reduce(AlgOp::Unit(), MonoidKind::kSum, Expr::Int(7),
                              nullptr);
  EXPECT_EQ(ExecutePlan(plan, db_), Value::Int(7));
}

TEST_F(AlgebraSemanticsTest, SelectOperator) {
  AlgPtr sel = AlgOp::Select(
      AlgOp::Scan("Employees", "e", nullptr),
      Expr::Bin(BinOpKind::kLt, Expr::Proj(V("e"), "age"), Expr::Int(30)));
  AlgPtr plan = AlgOp::Reduce(sel, MonoidKind::kSet, Expr::Proj(V("e"), "name"),
                              nullptr);
  EXPECT_EQ(ExecutePlan(plan, db_), Value::Set({Value::Str("Cal")}));
}

TEST_F(AlgebraSemanticsTest, JoinWithResidualPredicate) {
  // Equi-key plus residual: employees in a department with bigger budget
  // than salary/100 — exercises hash join residual handling.
  ExprPtr pred = Expr::And(
      Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Proj(V("d"), "dno")),
      Expr::Bin(BinOpKind::kGt, Expr::Proj(V("d"), "budget"),
                Expr::Bin(BinOpKind::kDiv, Expr::Proj(V("e"), "salary"),
                          Expr::Real(100))));
  AlgPtr join = AlgOp::Join(AlgOp::Scan("Departments", "d", nullptr),
                            AlgOp::Scan("Employees", "e", nullptr), pred);
  AlgPtr plan = AlgOp::Reduce(join, MonoidKind::kSet,
                              Expr::Proj(V("e"), "name"), nullptr);
  PhysicalOptions nl;
  nl.use_hash_joins = false;
  EXPECT_EQ(ExecutePlan(plan, db_), ExecutePlan(plan, db_, nl));
  // budget(d0)=0 fails everyone in Sales; budget(d1)=1000 > 600/1200? Cal
  // salary 60000/100=600 < 1000 yes; Dee 120000/100=1200 > 1000 no.
  EXPECT_EQ(ExecutePlan(plan, db_), Value::Set({Value::Str("Cal")}));
}

}  // namespace
}  // namespace ldb
