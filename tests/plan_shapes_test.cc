// Golden plan-rendering tests: the textual plans for the paper's figures.
// These pin the exact operator parameters (monoids, group-by variables,
// null-conversion variables, predicate placement) that Figures 1, 2 and 8
// display. Gensym::Reset() makes generated variable names deterministic.

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/core/simplify.h"
#include "src/core/unnest.h"
#include "src/workload/company.h"
#include "src/workload/university.h"
#include "src/oql/parser.h"
#include "src/oql/translate.h"

namespace ldb {
namespace {

ExprPtr Q(const std::string& oql) { return oql::Translate(oql::Parse(oql)); }

TEST(PlanShapesTest, Figure1A) {
  Gensym::Reset();
  Schema schema = workload::CompanySchema();
  AlgPtr plan = UnnestComp(
      Normalize(Q("select distinct struct(E: e.name, C: c.name) "
                  "from e in Employees, c in e.children")),
      schema);
  EXPECT_EQ(PrintPlan(plan),
            "Reduce[set/<E=e.name, C=c.name>]\n"
            "  Unnest[c := e.children]\n"
            "    Scan[e <- Employees]\n");
}

TEST(PlanShapesTest, Figure1B) {
  Gensym::Reset();
  Schema schema = workload::CompanySchema();
  AlgPtr plan = UnnestComp(
      Normalize(Q("select distinct struct(D: d, E: (select distinct e "
                  "from e in Employees where e.dno = d.dno)) "
                  "from d in Departments")),
      schema);
  EXPECT_EQ(PrintPlan(plan),
            "Reduce[set/<D=d, E=v$0>]\n"
            "  Nest[set/e -> v$0 group_by(d) nulls(e)]\n"
            "    OuterJoin[(e.dno = d.dno)]\n"
            "      Scan[d <- Departments]\n"
            "      Scan[e <- Employees]\n");
}

TEST(PlanShapesTest, Figure1D) {
  Gensym::Reset();
  Schema schema = workload::CompanySchema();
  AlgPtr plan = UnnestComp(
      Normalize(Q(
          "select distinct struct(E: e, M: count(select distinct c "
          "from c in e.children "
          "where for all d in e.manager.children: c.age > d.age)) "
          "from e in Employees")),
      schema);
  EXPECT_EQ(PrintPlan(plan),
            "Reduce[set/<E=e, M=v$1>]\n"
            "  Nest[sum/1 -> v$1 group_by(e) nulls(c) if v$0]\n"
            "    Nest[all/(c.age > d.age) -> v$0 group_by(e, c) nulls(d)]\n"
            "      OuterUnnest[d := e.manager.children]\n"
            "        OuterUnnest[c := e.children]\n"
            "          Scan[e <- Employees]\n");
}

TEST(PlanShapesTest, Figure1E_Figure2) {
  Gensym::Reset();
  Schema schema = workload::UniversitySchema();
  AlgPtr plan = UnnestComp(
      Normalize(Q(
          "select distinct s from s in Students "
          "where for all c in select c from c in Courses "
          "where c.title = 'DB': "
          "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno")),
      schema);
  // Normalization alpha-renames the course binder to c$0 when flattening the
  // quantifier domain (N7).
  EXPECT_EQ(
      PrintPlan(plan),
      "Reduce[set/s if v$2]\n"
      "  Nest[all/v$1 -> v$2 group_by(s) nulls(c$0)]\n"
      "    Nest[some/true -> v$1 group_by(s, c$0) nulls(t)]\n"
      "      OuterJoin[((t.sid = s.sid) and (t.cno = c$0.cno))]\n"
      "        OuterJoin[true]\n"
      "          Scan[s <- Students]\n"
      "          Scan[c$0 <- Courses if (c$0.title = \"DB\")]\n"
      "        Scan[t <- Transcripts]\n");
}

TEST(PlanShapesTest, Figure8BeforeAndAfter) {
  Gensym::Reset();
  Schema schema = workload::CompanySchema();
  ExprPtr q = Q("select distinct e.dno, avg(e.salary) from Employees e "
                "where e.age > 30 group by e.dno");
  AlgPtr plan = UnnestComp(Normalize(q), schema);
  EXPECT_EQ(PrintPlan(plan),
            "Reduce[set/<dno=e.dno, avg=v$1>]\n"
            "  Nest[avg/e$0.salary -> v$1 group_by(e) nulls(e$0)]\n"
            "    OuterJoin[(e$0.dno = e.dno)]\n"
            "      Scan[e <- Employees if (e.age > 30)]\n"
            "      Scan[e$0 <- Employees if (e$0.age > 30)]\n");
  AlgPtr simplified = Simplify(plan, schema);
  EXPECT_EQ(PrintPlan(simplified),
            "Reduce[set/<dno=k$2, avg=v$1>]\n"
            "  Nest[avg/e.salary -> v$1 group_by(k$2=e.dno) "
            "nulls() if not(is_null(e.dno))]\n"
            "    Scan[e <- Employees if (e.age > 30)]\n");
}

}  // namespace
}  // namespace ldb
