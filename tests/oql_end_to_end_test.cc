// End-to-end OQL tests: parse -> translate -> typecheck -> normalize ->
// unnest -> simplify -> physical -> execute, compared against hand-computed
// oracles and the baseline evaluator, over all three workload schemas.

#include <gtest/gtest.h>

#include "src/workload/travel.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

class EndToEndCompanyTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
};

TEST_F(EndToEndCompanyTest, FlatSelect) {
  Value r = testing::RunBothWays(
      db_, "select distinct e.name from e in Employees where e.salary >= "
           "100000");
  EXPECT_EQ(r, Value::Set({Value::Str("Ann"), Value::Str("Dee")}));
}

TEST_F(EndToEndCompanyTest, PathNavigationThroughManager) {
  Value r = testing::RunBothWays(
      db_, "select distinct e.manager.name from e in Employees "
           "where e.manager.age >= 50");
  EXPECT_EQ(r, Value::Set({Value::Str("Meg")}));
}

TEST_F(EndToEndCompanyTest, NullManagerNavigationIsSilentlyFalse) {
  // Cal's manager is NULL: e.manager.age >= 0 is a comparison with NULL.
  Value r = testing::RunBothWays(
      db_, "select distinct e.name from e in Employees "
           "where e.manager.age >= 0");
  EXPECT_EQ(r, Value::Set({Value::Str("Ann"), Value::Str("Bob"),
                           Value::Str("Dee")}));
}

TEST_F(EndToEndCompanyTest, IsNullTestViaComparisonDuals) {
  Value r = testing::RunBothWays(
      db_, "select distinct e.name from e in Employees "
           "where not (e.manager.age >= 0) and not (e.manager.age < 0)");
  EXPECT_EQ(r, Value::Set({Value::Str("Cal")}));
}

TEST_F(EndToEndCompanyTest, CrossProductOfExtents) {
  Value r = testing::RunBothWays(
      db_, "count(select struct(a: e.name, b: m.name) "
           "from e in Employees, m in Managers)");
  EXPECT_EQ(r, Value::Int(8));
}

TEST_F(EndToEndCompanyTest, ArithmeticInProjectionAndPredicate) {
  Value r = testing::RunBothWays(
      db_, "select distinct e.salary * 2 + 1 from e in Employees "
           "where e.age mod 5 = 0");
  // Ann 30, Bob 40, Cal 25, Dee 55 -> all divisible by 5.
  EXPECT_EQ(r.AsElems().size(), 4u);
}

TEST_F(EndToEndCompanyTest, MembershipInSubquery) {
  Value r = testing::RunBothWays(
      db_,
      "select distinct d.name from d in Departments "
      "where d.dno in (select e.dno from e in Employees where e.age > 50)");
  EXPECT_EQ(r, Value::Set({Value::Str("R&D")}));
}

TEST_F(EndToEndCompanyTest, QuantifierOverQuantifier) {
  // Employees all of whose children are older than some manager's child.
  Value r = testing::RunBothWays(
      db_,
      "select distinct e.name from e in Employees "
      "where for all c in e.children: "
      "exists m in Managers: exists k in m.children: c.age > k.age");
  // Manager kids: Pat(20). Ann: Al(5)>20 no -> fails. Bob: vacuous yes.
  // Cal: Cam(30)>20 yes. Dee: Dan(10)>20 no.
  EXPECT_EQ(r, Value::Set({Value::Str("Bob"), Value::Str("Cal")}));
}

TEST_F(EndToEndCompanyTest, AggregatesInSelectAndWhere) {
  Value r = testing::RunBothWays(
      db_,
      "select distinct struct(E: e.name, k: count(e.children), "
      "a: avg(select c.age from c in e.children)) "
      "from e in Employees where count(e.children) >= 1");
  Value expected = Value::Set({
      Value::Tuple({{"E", Value::Str("Ann")},
                    {"k", Value::Int(2)},
                    {"a", Value::Real(15.0)}}),
      Value::Tuple({{"E", Value::Str("Cal")},
                    {"k", Value::Int(1)},
                    {"a", Value::Real(30.0)}}),
      Value::Tuple({{"E", Value::Str("Dee")},
                    {"k", Value::Int(1)},
                    {"a", Value::Real(10.0)}}),
  });
  EXPECT_EQ(r, expected);
}

TEST_F(EndToEndCompanyTest, MinMaxAggregates) {
  EXPECT_EQ(testing::RunBothWays(
                db_, "min(select e.salary from e in Employees)"),
            Value::Real(60000));
  EXPECT_EQ(testing::RunBothWays(
                db_, "max(select e.age from e in Employees where e.dno = 0)"),
            Value::Int(40));
}

TEST_F(EndToEndCompanyTest, SelectFromSubquery) {
  Value r = testing::RunBothWays(
      db_,
      "select distinct p.name from p in (select distinct e from e in "
      "Employees where e.dno = 0)");
  EXPECT_EQ(r, Value::Set({Value::Str("Ann"), Value::Str("Bob")}));
}

class EndToEndTravelTest : public ::testing::Test {
 protected:
  Database db_ = workload::MakeTravelDatabase({});
};

TEST_F(EndToEndTravelTest, SectionTwoHotelQuery) {
  // The paper's Section 2 OQL example, verbatim modulo extent names.
  const char* q =
      "select distinct hotel.price "
      "from hotel in ( select h from c in Cities, h in c.hotels "
      "                where c.name = 'Arlington' ) "
      "where exists r in hotel.rooms: r.bed_num = 3 "
      "  and hotel.name in ( select t.name from s in States, "
      "                      t in s.attractions where s.name = 'Texas' )";
  Value optimized = testing::RunBothWays(db_, q);
  // Texas attractions include "hotel-0-0" and "hotel-2-0"; only "hotel-0-0"
  // is in Arlington (city 0). Whether it qualifies depends on a 3-bed room,
  // which is seeded-deterministic; just require agreement plus sane size.
  EXPECT_LE(optimized.AsElems().size(), 1u);
}

TEST_F(EndToEndTravelTest, NestedGeneratorsFlattenAndRun) {
  Value r = testing::RunBothWays(
      db_,
      "count(select struct(c: c.name, h: h.name, r: r.bed_num) "
      "from c in Cities, h in c.hotels, r in h.rooms)");
  EXPECT_EQ(r, Value::Int(20 * 5 * 4));
}

class EndToEndUniversityTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyUniversity();
};

TEST_F(EndToEndUniversityTest, QueryEStudentsWhoTookAllDBCourses) {
  Value r = testing::RunBothWays(
      db_,
      "select distinct s.name from s in Students "
      "where for all c in select c from c in Courses where c.title = 'DB': "
      "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno");
  EXPECT_EQ(r, Value::Set({Value::Str("s0"), Value::Str("s3")}));
}

TEST_F(EndToEndUniversityTest, DivisionViaDoubleNegationAgrees) {
  // NOT EXISTS course NOT taken — the relational-division dual; DeMorgan
  // rewrites push the negations into quantifier duals.
  Value r = testing::RunBothWays(
      db_,
      "select distinct s.name from s in Students "
      "where not (exists c in (select c from c in Courses "
      "                        where c.title = 'DB'): "
      "           not (exists t in Transcripts: t.sid = s.sid "
      "                and t.cno = c.cno))");
  EXPECT_EQ(r, Value::Set({Value::Str("s0"), Value::Str("s3")}));
}

TEST_F(EndToEndUniversityTest, PerStudentCourseCounts) {
  Value r = testing::RunBothWays(
      db_,
      "select distinct struct(s: s.name, n: count(select t from t in "
      "Transcripts where t.sid = s.sid)) from s in Students");
  Value expected = Value::Set({
      Value::Tuple({{"s", Value::Str("s0")}, {"n", Value::Int(3)}}),
      Value::Tuple({{"s", Value::Str("s1")}, {"n", Value::Int(1)}}),
      Value::Tuple({{"s", Value::Str("s2")}, {"n", Value::Int(0)}}),
      Value::Tuple({{"s", Value::Str("s3")}, {"n", Value::Int(2)}}),
  });
  EXPECT_EQ(r, expected);
}

}  // namespace
}  // namespace ldb
