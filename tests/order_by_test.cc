// Tests for `order by` (facade-level sorting; the list boundary of the
// paper's Section 8 future work).

#include <gtest/gtest.h>

#include "src/oql/parser.h"
#include "src/oql/translate.h"
#include "src/runtime/error.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

class OrderByTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
};

TEST_F(OrderByTest, ParserAcceptsOrderBy) {
  oql::NodePtr q = oql::Parse(
      "select e.name from e in Employees order by e.salary desc, e.name asc");
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_TRUE(q->order_by[0].second);   // desc
  EXPECT_FALSE(q->order_by[1].second);  // asc
}

TEST_F(OrderByTest, PlainTranslateRejectsOrderBy) {
  oql::NodePtr q =
      oql::Parse("select e.name from e in Employees order by e.age");
  EXPECT_THROW(oql::Translate(q), UnsupportedError);
  oql::OrderedQuery ordered = oql::TranslateWithOrdering(q);
  EXPECT_TRUE(ordered.ordered);
  ASSERT_EQ(ordered.descending.size(), 1u);
  EXPECT_FALSE(ordered.descending[0]);
}

TEST_F(OrderByTest, AscendingProducesSortedList) {
  Value r = RunOQL(db_,
                   "select e.name from e in Employees order by e.salary");
  // Cal 60k, Bob 80k, Ann 100k, Dee 120k.
  EXPECT_EQ(r, Value::List({Value::Str("Cal"), Value::Str("Bob"),
                            Value::Str("Ann"), Value::Str("Dee")}));
}

TEST_F(OrderByTest, DescendingAndTieBreaks) {
  Value r = RunOQL(db_,
                   "select e.name from e in Employees "
                   "order by e.dno desc, e.salary asc");
  // dno 1 first (Cal 60k, Dee 120k), then dno 0 (Bob 80k, Ann 100k).
  EXPECT_EQ(r, Value::List({Value::Str("Cal"), Value::Str("Dee"),
                            Value::Str("Bob"), Value::Str("Ann")}));
}

TEST_F(OrderByTest, BaselineAgrees) {
  const char* q =
      "select struct(n: e.name, s: e.salary) from e in Employees "
      "where e.age > 25 order by e.salary desc";
  EXPECT_EQ(RunOQL(db_, q), RunOQLBaseline(db_, q));
  Value r = RunOQL(db_, q);
  ASSERT_EQ(r.kind(), Value::Kind::kList);
  EXPECT_EQ(r.AsElems()[0].Field("n"), Value::Str("Dee"));
}

TEST_F(OrderByTest, OrderByWithWhereAndNestedQuery) {
  const char* q =
      "select struct(D: d.name, n: count(select e from e in Employees "
      "where e.dno = d.dno)) from d in Departments order by d.dno desc";
  Value r = RunOQL(db_, q);
  ASSERT_EQ(r.kind(), Value::Kind::kList);
  ASSERT_EQ(r.AsElems().size(), 3u);
  EXPECT_EQ(r.AsElems()[0].Field("D"), Value::Str("Empty"));
  EXPECT_EQ(r.AsElems()[0].Field("n"), Value::Int(0));
  EXPECT_EQ(RunOQLBaseline(db_, q), r);
}

TEST_F(OrderByTest, DistinctOrderByDeduplicatesPairs) {
  // Two employees share dno 0 and dno 1: distinct on (key, value) pairs.
  Value r = RunOQL(db_,
                   "select distinct e.dno from e in Employees order by e.dno");
  EXPECT_EQ(r, Value::List({Value::Int(0), Value::Int(1)}));
}

TEST_F(OrderByTest, OrderingByNullKeysGroupsFirst) {
  // NULL sorts before everything (Value::Compare ranks kNull lowest):
  // Cal's manager is NULL.
  Value r = RunOQL(db_,
                   "select e.name from e in Employees order by e.manager.age");
  ASSERT_EQ(r.AsElems().size(), 4u);
  EXPECT_EQ(r.AsElems()[0], Value::Str("Cal"));
}

TEST_F(OrderByTest, StableForEqualKeys) {
  // Equal keys keep a deterministic order (stable sort over the canonical
  // bag order).
  Value a = RunOQL(db_, "select e.name from e in Employees order by e.dno");
  Value b = RunOQL(db_, "select e.name from e in Employees order by e.dno");
  EXPECT_EQ(a, b);
}

TEST_F(OrderByTest, GroupByPlusOrderByRejected) {
  EXPECT_THROW(RunOQL(db_,
                      "select distinct e.dno, avg(e.salary) from Employees e "
                      "group by e.dno order by e.dno"),
               UnsupportedError);
}

}  // namespace
}  // namespace ldb
