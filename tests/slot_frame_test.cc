// Fixed-seed regression corpus for the slot-frame executor (slot_plan.* and
// the frame engine in exec_pipeline.cc): the scoping corners that slot
// assignment must get right (variable shadowing, outer-join NULL padding,
// nested unnest variables, grouping), serial/parallel parity with tiny
// morsels, and the ExactSum order-independence the parallel merge relies on.

#include "src/runtime/slot_plan.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/monoid.h"
#include "src/core/normalize.h"
#include "src/core/unnest.h"
#include "src/runtime/exec_pipeline.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

class SlotFrameTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();

  // Runs `oql` through the serial slot engine, the legacy Env engine, and
  // the parallel slot engine (tiny morsels so several really form), and
  // expects all three to equal the nested-loop baseline. Returns the serial
  // slot result for exact-value assertions.
  Value CheckEngines(const Database& db, const std::string& oql) {
    Value baseline = RunOQLBaseline(db, oql);
    Value slot_serial = RunOQL(db, oql);  // default: slot frames, 1 thread
    EXPECT_EQ(slot_serial, baseline) << oql;
    OptimizerOptions env;
    env.exec.use_slot_frames = false;
    EXPECT_EQ(RunOQL(db, oql, env), baseline) << "Env engine: " << oql;
    OptimizerOptions par;
    par.exec.n_threads = 4;
    par.exec.morsel_size = 2;
    EXPECT_EQ(RunOQL(db, oql, par), baseline) << "parallel: " << oql;
    return slot_serial;
  }
};

TEST_F(SlotFrameTest, ShadowedVariableInSubquery) {
  // The inner generator rebinds `e`; its domain `e.children` refers to the
  // OUTER e. The plan typechecker rejects rebinding along a scope chain, so
  // this is only reachable with typecheck off — and then slot compilation
  // must give the two e's distinct slots with the later binding shadowing
  // the earlier (reverse scope lookup), matching the Env engines.
  const std::string oql =
      "select distinct e.name from e in Employees "
      "where e.age > sum(select e.age from e in e.children)";
  // Release surfaces the plan typechecker's TypeError directly; Debug
  // builds verify plans by default and report the same rejection as a
  // structured Fig6-typing violation (VerifyError). Both derive from Error.
  try {
    RunOQL(db_, oql);
    FAIL() << "rebinding must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rebinds variable 'e'"),
              std::string::npos)
        << e.what();
  }

  // The baseline's Env scoping handles the shadowing directly.
  // Ann 30 !> 5+25, Bob 40 > 0, Cal 25 !> 30, Dee 55 > 10.
  EXPECT_EQ(RunOQLBaseline(db_, oql),
            Value::Set({Value::Str("Bob"), Value::Str("Dee")}));

  // With the check off, the unnester name-captures during splicing (that is
  // WHY rebinding is rejected), so the plan's meaning drifts from the
  // calculus — but the plan itself still contains a rebound `e`, and all
  // three plan engines must interpret it identically: slot compilation's
  // reverse scope lookup must shadow exactly like the Env engines do.
  OptimizerOptions unchecked;
  unchecked.typecheck = false;
  // The verifier re-runs the plan typecheck as its Fig6-typing rule, so it
  // must come off with the checker (it is on by default in Debug builds).
  unchecked.verify_plans = false;
  Value slot_serial = RunOQL(db_, oql, unchecked);
  unchecked.exec.use_slot_frames = false;
  EXPECT_EQ(RunOQL(db_, oql, unchecked), slot_serial) << "Env pipeline";
  unchecked.exec.use_slot_frames = true;
  unchecked.exec.n_threads = 4;
  unchecked.exec.morsel_size = 2;
  EXPECT_EQ(RunOQL(db_, oql, unchecked), slot_serial) << "parallel";
  unchecked.exec = {};
  unchecked.pipelined_execution = false;
  EXPECT_EQ(RunOQL(db_, oql, unchecked), slot_serial)
      << "materializing executor";
}

TEST_F(SlotFrameTest, OuterJoinNullPadding) {
  // "Empty" has no employees: the outer join pads the whole employee span
  // with NULLs and the count must come out 0, not vanish.
  Value r = CheckEngines(
      db_,
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments");
  auto row = [](const char* d, int n) {
    return Value::Tuple(
        {{"D", Value::Str(d)}, {"n", Value::Int(n)}});
  };
  EXPECT_EQ(r, Value::Set({row("Sales", 2), row("R&D", 2), row("Empty", 0)}));
}

TEST_F(SlotFrameTest, NullManagerNavigation) {
  // Cal's manager is NULL: the compiled projection must yield NULL and the
  // compiled comparison must treat it as false (not crash, not match).
  Value r = CheckEngines(
      db_, "select distinct e.name from e in Employees where e.manager.age > 45");
  EXPECT_EQ(r, Value::Set({Value::Str("Ann"), Value::Str("Dee")}));
}

TEST_F(SlotFrameTest, NestedUnnestVariables) {
  // Two dependent unnests: c ranges over e.children, m over
  // e.manager.children. Each unnest's path is compiled under the scope of
  // everything to its left; Cal's NULL manager makes the second unnest empty.
  CheckEngines(db_,
               "select distinct struct(E: e.name, C: c.name, M: m.name) "
               "from e in Employees, c in e.children, m in e.manager.children");
}

TEST_F(SlotFrameTest, GroupByAggregates) {
  // HashNest below the root: in parallel this exercises the per-morsel
  // partial group tables and their morsel-order merge (Mode B).
  CheckEngines(db_,
               "select distinct e.dno, sum(e.salary), avg(e.age) "
               "from Employees e group by e.dno");
  CheckEngines(db_,
               "select distinct e.dno, count(select c from c in e.children) "
               "from Employees e where e.age > 20 group by e.dno");
}

TEST_F(SlotFrameTest, QuantifierSaturationParity) {
  // Quantifier roots short-circuit; the parallel path uses a shared stop
  // flag instead — both must land on the same answer.
  Value some = CheckEngines(
      db_, "exists e in Employees: e.salary > 110000");
  EXPECT_EQ(some, Value::Bool(true));
  Value all = CheckEngines(db_, "for all e in Employees: e.age > 26");
  EXPECT_EQ(all, Value::Bool(false));
}

TEST_F(SlotFrameTest, ParallelParityOnGeneratedWorkload) {
  // A larger synthetic company so morsels are plentiful and group tables
  // have real fan-in; serial and parallel slot execution must agree exactly
  // (kSum/kAvg via ExactSum, group order via morsel-order merge).
  workload::CompanyParams params;
  params.n_departments = 7;
  params.n_employees = 500;
  params.n_managers = 10;
  params.seed = 20260805;
  Database db = workload::MakeCompanyDatabase(params);
  const char* queries[] = {
      "sum(select e.salary from e in Employees where e.age > 30)",
      "avg(select e.salary from e in Employees)",
      "select distinct e.dno, sum(e.salary), count(select x from x in "
      "e.children) from Employees e group by e.dno",
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments",
      "select distinct e.name from e in Employees "
      "where e.salary < max(select m.salary from m in Managers "
      "where e.age > m.age)",
  };
  OptimizerOptions par;
  par.exec.n_threads = 8;
  par.exec.morsel_size = 16;
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    EXPECT_EQ(RunOQL(db, q, par), RunOQL(db, q));
  }
}

TEST_F(SlotFrameTest, ExactSumIsOrderAndPartitionIndependent) {
  // The parallel engine splits a sum across morsels and absorbs the
  // partials; ExactSum promises the result is bit-identical to one serial
  // pass regardless of order or partitioning — including catastrophic
  // cancellation cases naive compensated sums get wrong.
  std::vector<double> xs = {1e100,  3.14,   -1e100, 1e-300, 2.5e17,
                            -0.125, 1e-300, 7.0,    -2.5e17, 0.625};
  auto bits = [](double d) {
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  Accumulator serial(MonoidKind::kSum);
  for (double x : xs) serial.Add(Value::Real(x));
  double want = serial.Finish().AsReal();

  // Partition into three uneven morsels, absorb out of order.
  Accumulator a(MonoidKind::kSum), b(MonoidKind::kSum), c(MonoidKind::kSum);
  for (size_t i = 0; i < 3; ++i) a.Add(Value::Real(xs[i]));
  for (size_t i = 3; i < 4; ++i) b.Add(Value::Real(xs[i]));
  for (size_t i = 4; i < xs.size(); ++i) c.Add(Value::Real(xs[i]));
  Accumulator merged(MonoidKind::kSum);
  merged.Absorb(c);
  merged.Absorb(a);
  merged.Absorb(b);
  EXPECT_EQ(bits(merged.Finish().AsReal()), bits(want));

  // Reversed input order, one accumulator.
  Accumulator rev(MonoidKind::kSum);
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    rev.Add(Value::Real(*it));
  }
  EXPECT_EQ(bits(rev.Finish().AsReal()), bits(want));
}

TEST_F(SlotFrameTest, MixedIntRealSumTyping) {
  // A sum stays Int while only ints are seen, even when merged from
  // partials; one real anywhere makes the whole result Real.
  Accumulator ints(MonoidKind::kSum);
  ints.Add(Value::Int(2));
  ints.Add(Value::Int(40));
  Accumulator more(MonoidKind::kSum);
  more.Add(Value::Int(-1));
  ints.Absorb(more);
  Value v = ints.Finish();
  EXPECT_EQ(v, Value::Int(41));

  Accumulator mixed(MonoidKind::kSum);
  mixed.Add(Value::Int(2));
  mixed.Add(Value::Real(0.5));
  EXPECT_EQ(mixed.Finish(), Value::Real(2.5));
}

TEST_F(SlotFrameTest, PrintSlotPlanShowsSpans) {
  AlgPtr logical = UnnestComp(
      Normalize(ParseOQL(
          "select distinct struct(E: e.name, C: c.name) "
          "from e in Employees, c in e.children where e.age > 26")),
      db_.schema());
  PhysPtr phys = PlanPhysical(logical, db_);
  SlotPlan plan = CompileSlotPlan(phys, db_);
  EXPECT_GE(plan.n_slots, 2);  // e and c at minimum
  std::string printed = PrintSlotPlan(plan);
  EXPECT_NE(printed.find("frame["), std::string::npos) << printed;
  EXPECT_NE(printed.find("TableScan Employees var@"), std::string::npos)
      << printed;
  EXPECT_NE(printed.find("span["), std::string::npos) << printed;

  // The compiled plan is runnable as-is (without going through RunOQL).
  Value direct = ExecuteSlotPlan(plan, db_);
  EXPECT_EQ(direct, RunOQLBaseline(db_,
                                   "select distinct struct(E: e.name, C: "
                                   "c.name) from e in Employees, c in "
                                   "e.children where e.age > 26"));
}

TEST_F(SlotFrameTest, MorselSizeExtremes) {
  // morsel_size 1 (one row per morsel) and a size far larger than the
  // extent (single morsel) must both match the serial result.
  const char* q =
      "select distinct e.dno, sum(e.salary) from Employees e group by e.dno";
  Value serial = RunOQL(db_, q);
  for (size_t morsel : {size_t{1}, size_t{100000}}) {
    OptimizerOptions par;
    par.exec.n_threads = 3;
    par.exec.morsel_size = morsel;
    EXPECT_EQ(RunOQL(db_, q, par), serial) << "morsel_size=" << morsel;
  }
}

}  // namespace
}  // namespace ldb
