// Tests for the ODL schema parser (src/oql/odl.*).

#include "src/oql/odl.h"

#include <gtest/gtest.h>

#include "src/lambdadb.h"

namespace ldb {
namespace {

const char* kCompanyOdl = R"(
  class Person (extent Persons) {
    attribute string name;
    attribute long age;
  };
  class Manager (extent Managers) {
    attribute string name;
    attribute long age;
    attribute double salary;
    relationship set<Person> children;
  };
  class Employee (extent Employees) {
    attribute string name;
    attribute long age;
    attribute double salary;
    attribute long dno;
    relationship Manager manager;
    relationship set<Person> children;
  };
  class Department (extent Departments) {
    attribute long dno;
    attribute string name;
    attribute double budget;
  };
)";

TEST(OdlTest, ParsesCompanySchema) {
  Schema schema = oql::ParseODL(kCompanyOdl);
  const ClassDecl* emp = schema.FindClass("Employee");
  ASSERT_NE(emp, nullptr);
  EXPECT_EQ(emp->extent, "Employees");
  EXPECT_EQ(emp->attributes.size(), 6u);
  EXPECT_EQ(emp->AttributeType("salary")->kind(), Type::Kind::kReal);
  EXPECT_EQ(emp->AttributeType("manager")->class_name(), "Manager");
  TypePtr children = emp->AttributeType("children");
  ASSERT_EQ(children->kind(), Type::Kind::kSet);
  EXPECT_EQ(children->elem()->class_name(), "Person");
  EXPECT_TRUE(schema.IsExtent("Departments"));
}

TEST(OdlTest, ParsedSchemaRunsQueries) {
  // An ODL-defined schema is interchangeable with the hand-built one: the
  // whole pipeline runs against it.
  Database db(oql::ParseODL(kCompanyOdl));
  Value d = db.Insert("Department",
                      Value::Tuple({{"dno", Value::Int(1)},
                                    {"name", Value::Str("R&D")},
                                    {"budget", Value::Real(1)}}));
  (void)d;
  db.Insert("Employee", Value::Tuple({{"name", Value::Str("A")},
                                      {"age", Value::Int(30)},
                                      {"salary", Value::Real(10)},
                                      {"dno", Value::Int(1)},
                                      {"manager", Value::Null()},
                                      {"children", Value::Set({})}}));
  Value r = RunOQL(db,
                   "select distinct struct(D: d.name, n: count(select e from "
                   "e in Employees where e.dno = d.dno)) from d in Departments");
  EXPECT_EQ(r, Value::Set({Value::Tuple(
                   {{"D", Value::Str("R&D")}, {"n", Value::Int(1)}})}));
}

TEST(OdlTest, ForwardReferencesResolve) {
  // Employee references Manager before Manager is declared.
  Schema schema = oql::ParseODL(
      "class Employee (extent Es) { relationship Manager boss; } "
      "class Manager (extent Ms) { attribute string name; }");
  EXPECT_EQ(schema.FindClass("Employee")->AttributeType("boss")->class_name(),
            "Manager");
}

TEST(OdlTest, TypeSpellings) {
  Schema schema = oql::ParseODL(
      "class T (extent Ts) {"
      "  attribute boolean b; attribute int i; attribute integer j;"
      "  attribute short s; attribute long l; attribute float f;"
      "  attribute double d; attribute real r; attribute string str;"
      "  attribute bag<int> bi; attribute list<string> ls;"
      "  attribute set<set<int>> nested;"
      "}");
  const ClassDecl* t = schema.FindClass("T");
  EXPECT_EQ(t->AttributeType("b")->kind(), Type::Kind::kBool);
  EXPECT_EQ(t->AttributeType("i")->kind(), Type::Kind::kInt);
  EXPECT_EQ(t->AttributeType("f")->kind(), Type::Kind::kReal);
  EXPECT_EQ(t->AttributeType("bi")->kind(), Type::Kind::kBag);
  EXPECT_EQ(t->AttributeType("ls")->kind(), Type::Kind::kList);
  EXPECT_EQ(t->AttributeType("nested")->elem()->kind(), Type::Kind::kSet);
}

TEST(OdlTest, ClassWithoutExtent) {
  Schema schema = oql::ParseODL("class P { attribute string name; }");
  EXPECT_NE(schema.FindClass("P"), nullptr);
  EXPECT_TRUE(schema.FindClass("P")->extent.empty());
}

TEST(OdlTest, Errors) {
  EXPECT_THROW(oql::ParseODL("class"), ParseError);
  EXPECT_THROW(oql::ParseODL("class X { attribute string; }"), ParseError);
  EXPECT_THROW(oql::ParseODL("class X { string name; }"), ParseError);
  EXPECT_THROW(oql::ParseODL("class X { attribute set<string name; }"),
               ParseError);
  // Unknown class reference.
  EXPECT_THROW(oql::ParseODL("class X { relationship Nope r; }"), TypeError);
  // Duplicate class / extent.
  EXPECT_THROW(oql::ParseODL("class X {} class X {}"), TypeError);
  EXPECT_THROW(oql::ParseODL("class X (extent E) {} class Y (extent E) {}"),
               TypeError);
}

TEST(OdlTest, CommentsAndCase) {
  Schema schema = oql::ParseODL(
      "-- the person class\n"
      "CLASS Person (EXTENT Persons) { ATTRIBUTE STRING name; }");
  EXPECT_TRUE(schema.IsExtent("Persons"));
}

}  // namespace
}  // namespace ldb
