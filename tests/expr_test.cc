// Unit tests for the calculus AST utilities: free variables, substitution
// (capture avoidance), structural equality, paths, conjunct handling
// (src/core/expr.*), and the pretty printer (src/core/pretty.*).

#include "src/core/expr.h"

#include <gtest/gtest.h>

#include "src/core/pretty.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

TEST(ExprTest, FreeVarsSimple) {
  ExprPtr e = Expr::Eq(Expr::Proj(V("x"), "a"), V("y"));
  std::set<std::string> fv = FreeVars(e);
  EXPECT_EQ(fv, (std::set<std::string>{"x", "y"}));
}

TEST(ExprTest, FreeVarsGeneratorBindsTail) {
  // set{ x.a | x <- X, x.b = y }: x bound, X and y free.
  ExprPtr comp = Expr::Comp(
      MonoidKind::kSet, Expr::Proj(V("x"), "a"),
      {Qualifier::Generator("x", V("X")),
       Qualifier::Filter(Expr::Eq(Expr::Proj(V("x"), "b"), V("y")))});
  EXPECT_EQ(FreeVars(comp), (std::set<std::string>{"X", "y"}));
}

TEST(ExprTest, FreeVarsGeneratorDomainNotBound) {
  // The generator's own domain sees outer bindings: set{ x | x <- x.kids }
  // has free x in the domain.
  ExprPtr comp = Expr::Comp(MonoidKind::kSet, V("x"),
                            {Qualifier::Generator("x", Expr::Proj(V("x"), "kids"))});
  EXPECT_EQ(FreeVars(comp), (std::set<std::string>{"x"}));
}

TEST(ExprTest, FreeVarsLambda) {
  ExprPtr lam = Expr::Lambda("v", Expr::Eq(V("v"), V("w")));
  EXPECT_EQ(FreeVars(lam), (std::set<std::string>{"w"}));
}

TEST(ExprTest, SubstReplacesFreeOccurrences) {
  ExprPtr e = Expr::Eq(V("x"), Expr::Proj(V("x"), "a"));
  ExprPtr out = Subst(e, "x", V("z"));
  EXPECT_TRUE(ExprEqual(out, Expr::Eq(V("z"), Expr::Proj(V("z"), "a"))));
}

TEST(ExprTest, SubstRespectsGeneratorShadowing) {
  // In set{ x | x <- D, x = y }, substituting for x must not touch the bound
  // occurrences; substituting into the domain is fine.
  ExprPtr comp = Expr::Comp(MonoidKind::kSet, V("x"),
                            {Qualifier::Generator("x", V("x")),
                             Qualifier::Filter(Expr::Eq(V("x"), V("y")))});
  ExprPtr out = Subst(comp, "x", V("q"));
  // Domain becomes q, bound occurrences unchanged.
  EXPECT_EQ(out->quals[0].expr->name, "q");
  EXPECT_EQ(out->quals[1].expr->a->name, "x");
  EXPECT_EQ(out->a->name, "x");
}

TEST(ExprTest, SubstAvoidsCaptureInComp) {
  // Substituting y := x into set{ y | x <- D } must rename the binder x.
  ExprPtr comp = Expr::Comp(MonoidKind::kSet, V("y"),
                            {Qualifier::Generator("x", V("D"))});
  ExprPtr out = Subst(comp, "y", V("x"));
  ASSERT_EQ(out->quals.size(), 1u);
  EXPECT_NE(out->quals[0].var, "x");           // binder renamed
  EXPECT_EQ(out->a->name, "x");                // the substituted free x
}

TEST(ExprTest, SubstAvoidsCaptureInLambda) {
  ExprPtr lam = Expr::Lambda("x", Expr::Bin(BinOpKind::kAdd, V("x"), V("y")));
  ExprPtr out = Subst(lam, "y", V("x"));
  EXPECT_NE(out->name, "x");  // lambda binder renamed
  // Body: renamed + x.
  EXPECT_EQ(out->a->b->name, "x");
  EXPECT_EQ(out->a->a->name, out->name);
}

TEST(ExprTest, SubstShadowedLambda) {
  ExprPtr lam = Expr::Lambda("x", V("x"));
  EXPECT_TRUE(ExprEqual(Subst(lam, "x", V("z")), lam));
}

TEST(ExprTest, ExprEqualStructural) {
  ExprPtr a = Expr::And(Expr::Eq(V("x"), Expr::Int(1)), Expr::True());
  ExprPtr b = Expr::And(Expr::Eq(V("x"), Expr::Int(1)), Expr::True());
  ExprPtr c = Expr::And(Expr::Eq(V("y"), Expr::Int(1)), Expr::True());
  EXPECT_TRUE(ExprEqual(a, b));
  EXPECT_FALSE(ExprEqual(a, c));
}

TEST(ExprTest, ContainsComp) {
  ExprPtr comp = Expr::Comp(MonoidKind::kSum, Expr::Int(1), {});
  EXPECT_TRUE(ContainsComp(comp));
  EXPECT_TRUE(ContainsComp(Expr::Eq(V("x"), comp)));
  EXPECT_TRUE(ContainsComp(Expr::Record({{"a", comp}})));
  EXPECT_FALSE(ContainsComp(Expr::Eq(V("x"), Expr::Int(1))));
}

TEST(ExprTest, IsPath) {
  std::string root;
  std::vector<std::string> attrs;
  EXPECT_TRUE(IsPath(V("e"), &root, &attrs));
  EXPECT_EQ(root, "e");
  EXPECT_TRUE(attrs.empty());

  ExprPtr p = Expr::Proj(Expr::Proj(V("e"), "manager"), "children");
  EXPECT_TRUE(IsPath(p, &root, &attrs));
  EXPECT_EQ(root, "e");
  EXPECT_EQ(attrs, (std::vector<std::string>{"manager", "children"}));

  EXPECT_FALSE(IsPath(Expr::Eq(V("x"), V("y")), &root, &attrs));
  EXPECT_FALSE(IsPath(Expr::Proj(Expr::Int(1), "a"), &root, &attrs));
}

TEST(ExprTest, PathBuilder) {
  ExprPtr p = Expr::Path(V("e"), {"a", "b"});
  EXPECT_EQ(PrintExpr(p), "e.a.b");
}

TEST(ExprTest, SplitAndMakeConjunction) {
  ExprPtr a = Expr::Eq(V("x"), Expr::Int(1));
  ExprPtr b = Expr::Eq(V("y"), Expr::Int(2));
  ExprPtr c = Expr::Eq(V("z"), Expr::Int(3));
  ExprPtr conj = Expr::And(Expr::And(a, b), c);
  std::vector<ExprPtr> parts = SplitConjuncts(conj);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_TRUE(ExprEqual(parts[0], a));
  EXPECT_TRUE(ExprEqual(parts[2], c));

  EXPECT_TRUE(SplitConjuncts(Expr::True()).empty());
  EXPECT_TRUE(MakeConjunction({})->IsTrueLiteral());
  EXPECT_TRUE(ExprEqual(MakeConjunction({a}), a));
  EXPECT_TRUE(ExprEqual(MakeConjunction({Expr::True(), a}), a));
}

TEST(ExprTest, GensymNamesCannotCollideWithOQLIdentifiers) {
  std::string n = Gensym::Fresh("v");
  EXPECT_NE(n.find('$'), std::string::npos);
}

TEST(ExprTest, TrueFalseLiteralPredicates) {
  EXPECT_TRUE(Expr::True()->IsTrueLiteral());
  EXPECT_FALSE(Expr::True()->IsFalseLiteral());
  EXPECT_TRUE(Expr::False()->IsFalseLiteral());
  EXPECT_FALSE(Expr::Int(1)->IsTrueLiteral());
}

TEST(PrettyTest, PrintsComprehension) {
  ExprPtr comp = Expr::Comp(
      MonoidKind::kSet,
      Expr::Record({{"E", Expr::Proj(V("e"), "name")}}),
      {Qualifier::Generator("e", V("Employees")),
       Qualifier::Filter(Expr::Bin(BinOpKind::kGt, Expr::Proj(V("e"), "age"),
                                   Expr::Int(30)))});
  EXPECT_EQ(PrintExpr(comp),
            "set{ <E=e.name> | e <- Employees, (e.age > 30) }");
}

TEST(PrettyTest, PrintsQuantifiersAndZero) {
  ExprPtr comp = Expr::Comp(MonoidKind::kAll, Expr::True(),
                            {Qualifier::Generator("a", V("A"))});
  EXPECT_EQ(PrintExpr(comp), "all{ true | a <- A }");
  EXPECT_EQ(PrintExpr(Expr::Zero(MonoidKind::kSome)), "zero[some]");
  EXPECT_EQ(PrintExpr(Expr::Singleton(MonoidKind::kSet, Expr::Int(1))),
            "set{ 1 }");
}

TEST(PrettyTest, PrintsIfAndOps) {
  ExprPtr e = Expr::If(Expr::Un(UnOpKind::kIsNull, V("x")), Expr::Int(0),
                       Expr::Un(UnOpKind::kNeg, V("x")));
  EXPECT_EQ(PrintExpr(e), "if is_null(x) then 0 else -(x)");
}

}  // namespace
}  // namespace ldb
