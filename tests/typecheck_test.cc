// Tests for the calculus type checker (Figure 3) and the plan type checker
// (Figure 6) — src/core/typecheck.*.

#include "src/core/typecheck.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/unnest.h"
#include "src/runtime/error.h"
#include "src/workload/company.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

class TypecheckTest : public ::testing::Test {
 protected:
  Schema schema_ = workload::CompanySchema();
};

TEST_F(TypecheckTest, LiteralsAndVars) {
  EXPECT_EQ(TypeCheck(Expr::Int(1), schema_)->kind(), Type::Kind::kInt);
  EXPECT_EQ(TypeCheck(Expr::Str("x"), schema_)->kind(), Type::Kind::kStr);
  EXPECT_EQ(TypeCheck(Expr::Null(), schema_)->kind(), Type::Kind::kAny);
  TypeEnv env{{"x", Type::Real()}};
  EXPECT_EQ(TypeCheck(V("x"), schema_, env)->kind(), Type::Kind::kReal);
  EXPECT_THROW(TypeCheck(V("nope"), schema_), TypeError);
}

TEST_F(TypecheckTest, ExtentResolvesToSetOfClass) {
  TypePtr t = TypeCheck(V("Employees"), schema_);
  ASSERT_EQ(t->kind(), Type::Kind::kSet);
  EXPECT_EQ(t->elem()->class_name(), "Employee");
}

TEST_F(TypecheckTest, ProjectionThroughClassAttributes) {
  TypeEnv env{{"e", Type::Class("Employee")}};
  EXPECT_EQ(TypeCheck(Expr::Proj(V("e"), "salary"), schema_, env)->kind(),
            Type::Kind::kReal);
  // e.manager.children : set(Person)
  TypePtr t = TypeCheck(
      Expr::Path(V("e"), {"manager", "children"}), schema_, env);
  ASSERT_EQ(t->kind(), Type::Kind::kSet);
  EXPECT_EQ(t->elem()->class_name(), "Person");
  EXPECT_THROW(TypeCheck(Expr::Proj(V("e"), "nothere"), schema_, env), TypeError);
}

TEST_F(TypecheckTest, ProjectionOnRecord) {
  ExprPtr rec = Expr::Record({{"a", Expr::Int(1)}});
  EXPECT_EQ(TypeCheck(Expr::Proj(rec, "a"), schema_)->kind(), Type::Kind::kInt);
  EXPECT_THROW(TypeCheck(Expr::Proj(rec, "b"), schema_), TypeError);
  EXPECT_THROW(TypeCheck(Expr::Proj(Expr::Int(1), "a"), schema_), TypeError);
}

TEST_F(TypecheckTest, IfRequiresBoolAndUnifiableBranches) {
  EXPECT_EQ(
      TypeCheck(Expr::If(Expr::True(), Expr::Int(1), Expr::Real(2)), schema_)
          ->kind(),
      Type::Kind::kReal);
  EXPECT_THROW(TypeCheck(Expr::If(Expr::Int(1), Expr::Int(1), Expr::Int(2)),
                         schema_),
               TypeError);
  EXPECT_THROW(
      TypeCheck(Expr::If(Expr::True(), Expr::Int(1), Expr::Str("x")), schema_),
      TypeError);
}

TEST_F(TypecheckTest, BinOps) {
  EXPECT_EQ(TypeCheck(Expr::Bin(BinOpKind::kAdd, Expr::Int(1), Expr::Real(2)),
                      schema_)->kind(),
            Type::Kind::kReal);
  EXPECT_EQ(TypeCheck(Expr::Eq(Expr::Int(1), Expr::Real(2)), schema_)->kind(),
            Type::Kind::kBool);
  EXPECT_THROW(TypeCheck(Expr::Eq(Expr::Int(1), Expr::Str("x")), schema_),
               TypeError);
  EXPECT_THROW(TypeCheck(Expr::Bin(BinOpKind::kAdd, Expr::Int(1), Expr::True()),
                         schema_),
               TypeError);
  EXPECT_THROW(TypeCheck(Expr::And(Expr::Int(1), Expr::True()), schema_),
               TypeError);
  // Strings are ordered.
  EXPECT_EQ(TypeCheck(Expr::Bin(BinOpKind::kLt, Expr::Str("a"), Expr::Str("b")),
                      schema_)->kind(),
            Type::Kind::kBool);
}

TEST_F(TypecheckTest, ComprehensionTyping) {
  // set{ e.name | e <- Employees, e.age > 30 } : set(string)
  ExprPtr comp = Expr::Comp(
      MonoidKind::kSet, Expr::Proj(V("e"), "name"),
      {Qualifier::Generator("e", V("Employees")),
       Qualifier::Filter(Expr::Bin(BinOpKind::kGt, Expr::Proj(V("e"), "age"),
                                   Expr::Int(30)))});
  TypePtr t = TypeCheck(comp, schema_);
  ASSERT_EQ(t->kind(), Type::Kind::kSet);
  EXPECT_EQ(t->elem()->kind(), Type::Kind::kStr);
}

TEST_F(TypecheckTest, ComprehensionMonoidHeadConstraints) {
  // sum over strings is ill-typed.
  ExprPtr bad = Expr::Comp(MonoidKind::kSum, Expr::Proj(V("e"), "name"),
                           {Qualifier::Generator("e", V("Employees"))});
  EXPECT_THROW(TypeCheck(bad, schema_), TypeError);
  // all over non-bool is ill-typed.
  ExprPtr bad2 = Expr::Comp(MonoidKind::kAll, Expr::Int(1),
                            {Qualifier::Generator("e", V("Employees"))});
  EXPECT_THROW(TypeCheck(bad2, schema_), TypeError);
  // sum over int head types as int; over real as real.
  ExprPtr age_sum = Expr::Comp(MonoidKind::kSum, Expr::Proj(V("e"), "age"),
                               {Qualifier::Generator("e", V("Employees"))});
  EXPECT_EQ(TypeCheck(age_sum, schema_)->kind(), Type::Kind::kInt);
}

TEST_F(TypecheckTest, GeneratorDomainMustBeCollection) {
  ExprPtr bad = Expr::Comp(MonoidKind::kSet, V("x"),
                           {Qualifier::Generator("x", Expr::Int(1))});
  EXPECT_THROW(TypeCheck(bad, schema_), TypeError);
}

TEST_F(TypecheckTest, FilterMustBeBool) {
  ExprPtr bad = Expr::Comp(MonoidKind::kSet, V("e"),
                           {Qualifier::Generator("e", V("Employees")),
                            Qualifier::Filter(Expr::Int(1))});
  EXPECT_THROW(TypeCheck(bad, schema_), TypeError);
}

TEST_F(TypecheckTest, NestedComprehensionUsesOuterBindings) {
  // set{ sum{ c.age | c <- e.children } | e <- Employees } : set(int)
  ExprPtr inner = Expr::Comp(MonoidKind::kSum, Expr::Proj(V("c"), "age"),
                             {Qualifier::Generator("c", Expr::Proj(V("e"), "children"))});
  ExprPtr outer = Expr::Comp(MonoidKind::kSet, inner,
                             {Qualifier::Generator("e", V("Employees"))});
  TypePtr t = TypeCheck(outer, schema_);
  ASSERT_EQ(t->kind(), Type::Kind::kSet);
  EXPECT_EQ(t->elem()->kind(), Type::Kind::kInt);
}

TEST_F(TypecheckTest, IsNullAlwaysBool) {
  TypeEnv env{{"e", Type::Class("Employee")}};
  EXPECT_EQ(TypeCheck(Expr::Un(UnOpKind::kIsNull, Expr::Proj(V("e"), "manager")),
                      schema_, env)->kind(),
            Type::Kind::kBool);
}

TEST_F(TypecheckTest, PlanTypeChecks) {
  // Unnest the Query B pattern and type the plan: the result element is
  // (D: Department, E: set(Employee)).
  ExprPtr inner = Expr::Comp(
      MonoidKind::kSet, V("e"),
      {Qualifier::Generator("e", V("Employees")),
       Qualifier::Filter(Expr::Eq(Expr::Proj(V("e"), "dno"),
                                  Expr::Proj(V("d"), "dno")))});
  ExprPtr query = Expr::Comp(
      MonoidKind::kSet, Expr::Record({{"D", V("d")}, {"E", inner}}),
      {Qualifier::Generator("d", V("Departments"))});
  AlgPtr plan = UnnestComp(Normalize(query), schema_);
  TypePtr t = TypeCheckPlan(plan, schema_);
  ASSERT_EQ(t->kind(), Type::Kind::kSet);
  ASSERT_EQ(t->elem()->kind(), Type::Kind::kTuple);
  EXPECT_EQ(t->elem()->FieldType("D")->class_name(), "Department");
  ASSERT_EQ(t->elem()->FieldType("E")->kind(), Type::Kind::kSet);
  EXPECT_EQ(t->elem()->FieldType("E")->elem()->class_name(), "Employee");
}

TEST_F(TypecheckTest, PlanRejectsIllFormed) {
  // Scan of unknown extent.
  AlgPtr bad = AlgOp::Reduce(AlgOp::Scan("Nowhere", "x", nullptr),
                             MonoidKind::kSet, V("x"), nullptr);
  EXPECT_THROW(TypeCheckPlan(bad, schema_), TypeError);

  // Non-boolean predicate.
  AlgPtr bad2 = AlgOp::Reduce(
      AlgOp::Scan("Employees", "e", Expr::Proj(V("e"), "age")),
      MonoidKind::kSet, V("e"), nullptr);
  EXPECT_THROW(TypeCheckPlan(bad2, schema_), TypeError);

  // Unnest over a non-collection path.
  AlgPtr bad3 = AlgOp::Reduce(
      AlgOp::Unnest(AlgOp::Scan("Employees", "e", nullptr),
                    Expr::Proj(V("e"), "age"), "c", nullptr),
      MonoidKind::kSet, V("c"), nullptr);
  EXPECT_THROW(TypeCheckPlan(bad3, schema_), TypeError);

  // Root must be a reduce.
  EXPECT_THROW(TypeCheckPlan(AlgOp::Scan("Employees", "e", nullptr), schema_),
               TypeError);
}

TEST_F(TypecheckTest, PlanRejectsVariableCollision) {
  AlgPtr join = AlgOp::Join(AlgOp::Scan("Employees", "e", nullptr),
                            AlgOp::Scan("Employees", "e", nullptr), nullptr);
  AlgPtr plan = AlgOp::Reduce(join, MonoidKind::kSum, Expr::Int(1), nullptr);
  EXPECT_THROW(TypeCheckPlan(plan, schema_), TypeError);
}

}  // namespace
}  // namespace ldb
