// Coverage for the plan/physical printers and the remaining calculus
// rendering branches (src/core/pretty.*, src/runtime/physical_plan.*).

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/core/unnest.h"
#include "src/runtime/physical_plan.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

TEST(PrettyPlanTest, AllLogicalOperatorsRender) {
  AlgPtr unit = AlgOp::Unit();
  EXPECT_EQ(PrintPlan(unit), "Unit\n");

  AlgPtr sel = AlgOp::Select(AlgOp::Scan("Employees", "e", nullptr),
                             Expr::Eq(Expr::Proj(V("e"), "dno"), Expr::Int(1)));
  std::string s = PrintPlan(sel);
  EXPECT_NE(s.find("Select[(e.dno = 1)]"), std::string::npos);
  EXPECT_NE(s.find("  Scan[e <- Employees]"), std::string::npos);

  AlgPtr ou = AlgOp::OuterUnnest(AlgOp::Scan("Employees", "e", nullptr),
                                 Expr::Proj(V("e"), "children"), "c",
                                 Expr::Bin(BinOpKind::kGt,
                                           Expr::Proj(V("c"), "age"),
                                           Expr::Int(3)));
  EXPECT_NE(PrintPlan(ou).find(
                "OuterUnnest[c := e.children if (c.age > 3)]"),
            std::string::npos);

  // Nest with expression keys renders `name=expr`.
  AlgPtr nest = AlgOp::Nest(AlgOp::Scan("Employees", "e", nullptr),
                            MonoidKind::kAvg, Expr::Proj(V("e"), "salary"),
                            "m", {{"k", Expr::Proj(V("e"), "dno")}}, {"e"},
                            nullptr);
  std::string n = PrintPlan(nest);
  EXPECT_NE(n.find("Nest[avg/e.salary -> m group_by(k=e.dno) nulls(e)]"),
            std::string::npos)
      << n;
}

TEST(PrettyPlanTest, ShapeOfEveryKind) {
  AlgPtr plan = AlgOp::Reduce(
      AlgOp::Select(
          AlgOp::OuterUnnest(AlgOp::Unit(), Expr::Proj(V("x"), "ys"), "y",
                             nullptr),
          Expr::True()),
      MonoidKind::kSome, Expr::True(), nullptr);
  EXPECT_EQ(PlanShape(plan), "Reduce(Select(OuterUnnest(Unit)))");
}

TEST(PrettyPlanTest, PhysicalPlanRendersEveryOperator) {
  Database db = testing::TinyCompany();
  db.BuildIndex("Employees", "dno");
  AlgPtr logical = UnnestComp(
      Normalize(ParseOQL(
          "select distinct struct(D: d.name, E: (select distinct e.name "
          "from e in Employees where e.dno = d.dno)) from d in Departments")),
      db.schema());
  PhysPtr phys = PlanPhysical(logical, db);
  std::string printed = PrintPhysicalPlan(phys);
  EXPECT_NE(printed.find("Reduce[set/"), std::string::npos);
  EXPECT_NE(printed.find("HashNest[set/e.name -> "), std::string::npos);
  EXPECT_NE(printed.find("HashOuterJoin[build=right keys(d.dno=e.dno)]"),
            std::string::npos);

  // UnitRow + Filter render too.
  auto filter = std::make_shared<PhysOp>();
  filter->kind = PhysKind::kFilter;
  filter->pred = Expr::True();
  auto unit = std::make_shared<PhysOp>();
  unit->kind = PhysKind::kUnitRow;
  unit->pred = Expr::True();
  filter->left = unit;
  EXPECT_EQ(PrintPhysicalPlan(filter), "Filter[true]\n  UnitRow\n");
}

TEST(PrettyPlanTest, MergeApplyLambdaRender) {
  ExprPtr m = Expr::Merge(MonoidKind::kBag, V("A"), V("B"));
  EXPECT_EQ(PrintExpr(m), "(A (+)bag B)");
  ExprPtr app = Expr::Apply(Expr::Lambda("x", V("x")), Expr::Int(1));
  EXPECT_EQ(PrintExpr(app), "\\x. x(1)");
}

TEST(PrettyPlanTest, NullPlanAndExprAreSafe) {
  EXPECT_EQ(PrintExpr(nullptr), "<null-expr>");
  EXPECT_EQ(PrintPlan(nullptr), "<null-plan>\n");
}

TEST(PrettyPlanTest, UnnestStepsRenderMeaningfully) {
  Database db = testing::TinyCompany();
  std::vector<UnnestStep> steps;
  UnnestCompTraced(Normalize(ParseOQL(
                       "select distinct d.name from d in Departments "
                       "where count(select e from e in Employees "
                       "where e.dno = d.dno) = 0")),
                   db.schema(), &steps);
  ASSERT_GE(steps.size(), 4u);
  EXPECT_EQ(steps.front().rule, "C1");
  EXPECT_NE(steps.front().description.find("Departments"), std::string::npos);
  EXPECT_EQ(steps.back().rule, "C2");
}

}  // namespace
}  // namespace ldb
