// Tests for path materialization (src/core/materialize.*): navigation
// through object references becomes outer-joins with the referenced extent,
// preserving results (including NULL references) and enabling hash joins on
// navigation-correlated predicates.

#include "src/core/materialize.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/core/typecheck.h"
#include "src/core/unnest.h"
#include "src/runtime/eval_algebra.h"
#include "src/runtime/eval_calculus.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

class MaterializeTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
  const Schema& schema_ = db_.schema();

  AlgPtr PlanOf(const std::string& oql) {
    return UnnestComp(Normalize(ParseOQL(oql)), schema_);
  }

  void CheckSameResults(const std::string& oql) {
    AlgPtr plan = PlanOf(oql);
    AlgPtr mat = MaterializePaths(plan, schema_);
    EXPECT_EQ(ExecutePlan(mat, db_), ExecutePlan(plan, db_)) << oql;
    EXPECT_EQ(ExecutePlan(mat, db_), EvalCalculus(ParseOQL(oql), db_)) << oql;
    // The rewritten plan still type-checks.
    TypeCheckPlan(mat, schema_);
  }
};

TEST_F(MaterializeTest, NavigationBecomesOuterJoin) {
  AlgPtr plan = PlanOf(
      "select distinct e.manager.name from e in Employees "
      "where e.manager.age >= 50");
  AlgPtr mat = MaterializePaths(plan, schema_);
  std::string shape = PlanShape(mat);
  // One join with Managers serves both uses of e.manager.
  EXPECT_EQ(shape, "Reduce(OuterJoin(Scan(Employees),Scan(Managers)))") << shape;
}

TEST_F(MaterializeTest, SharedPrefixJoinsOnce) {
  // Both e.manager.age and e.manager.name use the same prefix: exactly one
  // join is introduced (ReplaceInOp rewrites every occurrence).
  AlgPtr plan = PlanOf(
      "select distinct struct(n: e.manager.name, a: e.manager.age) "
      "from e in Employees");
  AlgPtr mat = MaterializePaths(plan, schema_);
  EXPECT_EQ(PlanSize(mat), PlanSize(plan) + 2u);  // OuterJoin + Scan
}

TEST_F(MaterializeTest, ResultsUnchangedIncludingNullRefs) {
  // Cal's manager is NULL: navigation yields NULL, and the materialized
  // outer-join pads m = NULL — same comparisons, same results.
  CheckSameResults(
      "select distinct e.name from e in Employees "
      "where e.manager.age >= 50");
  CheckSameResults(
      "select distinct e.manager.name from e in Employees");
  CheckSameResults(
      "select distinct struct(e: e.name, k: count(e.manager.children)) "
      "from e in Employees");
}

TEST_F(MaterializeTest, BareRefValueIsNotMaterialized) {
  // `e.manager = m` uses the reference as a value (not a path prefix).
  AlgPtr plan = PlanOf(
      "select distinct e.name from e in Employees, m in Managers "
      "where e.manager = m and m.age > 45");
  AlgPtr mat = MaterializePaths(plan, schema_);
  EXPECT_TRUE(AlgEqual(plan, mat));
}

TEST_F(MaterializeTest, UnnestPathThroughRefMaterializes) {
  // e.manager.children as an unnest path: the prefix e.manager joins with
  // Managers and the unnest runs over m.children.
  AlgPtr plan = PlanOf(
      "select distinct c.name from e in Employees, c in e.manager.children");
  AlgPtr mat = MaterializePaths(plan, schema_);
  std::string shape = PlanShape(mat);
  EXPECT_NE(shape.find("Scan(Managers)"), std::string::npos) << shape;
  EXPECT_EQ(ExecutePlan(mat, db_), ExecutePlan(plan, db_));
}

TEST_F(MaterializeTest, DoubleNestedQueryDStillAgrees) {
  CheckSameResults(
      "select distinct struct(E: e.name, M: count(select distinct c "
      "from c in e.children "
      "where for all d in e.manager.children: c.age > d.age)) "
      "from e in Employees");
}

TEST_F(MaterializeTest, EnablesHashJoinOnNavigationCorrelation) {
  // Employees whose manager's kid count matches… simpler: join employees to
  // managers via navigation equality on a non-key attribute. Before
  // materialization the predicate references a path; after, it is a plain
  // var-to-var attribute equality that ExtractEquiKeys can hash.
  AlgPtr plan = PlanOf(
      "select distinct struct(e: e.name, m: g.name) "
      "from e in Employees, g in Managers where e.manager.age = g.age");
  JoinKeys before = ExtractEquiKeys(plan->left->pred, {"e"}, {"g"});
  AlgPtr mat = MaterializePaths(plan, schema_);
  // The top join predicate now relates m$X.age to g.age.
  const AlgOp* top_join = mat->left.get();
  ASSERT_TRUE(top_join->kind == AlgKind::kJoin ||
              top_join->kind == AlgKind::kOuterJoin);
  JoinKeys after = ExtractEquiKeys(top_join->pred, OutputVars(top_join->left),
                                   OutputVars(top_join->right));
  EXPECT_TRUE(after.hashable());
  (void)before;
  EXPECT_EQ(ExecutePlan(mat, db_), ExecutePlan(plan, db_));
}

TEST_F(MaterializeTest, ViaOptimizerOption) {
  OptimizerOptions opts;
  opts.materialize_paths = true;
  const char* q =
      "select distinct e.manager.name from e in Employees "
      "where e.manager.age >= 50";
  EXPECT_EQ(RunOQL(db_, q, opts), RunOQLBaseline(db_, q));
}

TEST_F(MaterializeTest, NoOpOnPlansWithoutNavigation) {
  AlgPtr plan = PlanOf("select distinct e.name from e in Employees");
  EXPECT_TRUE(AlgEqual(plan, MaterializePaths(plan, schema_)));
}

TEST_F(MaterializeTest, PersonChildrenHaveNoRefAttrsSoChainsStop) {
  // c.name where c ranges over children (Persons): no ref-typed prefix.
  AlgPtr plan = PlanOf(
      "select distinct c.name from e in Employees, c in e.children");
  EXPECT_TRUE(AlgEqual(plan, MaterializePaths(plan, schema_)));
}

}  // namespace
}  // namespace ldb
