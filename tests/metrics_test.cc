// Observability tests (docs/OBSERVABILITY.md): counter exactness under
// concurrency, histogram bucket boundaries and quantiles, Prometheus/JSON
// snapshot round-trips, the query-log ring (wraparound, slow capture at
// exactly the threshold), plan-cache eviction reasons, the trace exporter,
// and the service-level wiring — including the status a cancelled query
// logs and the per-worker profiler totals it keeps exactly once.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/lambdadb.h"
#include "src/obs/query_log.h"
#include "src/obs/trace_export.h"
#include "src/workload/company.h"
#include "src/workload/oo7.h"

namespace ldb {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::QueryLog;
using obs::QueryLogRecord;

// Most assertions count events, which requires the instruments to be
// compiled in; with -DLDB_METRICS=OFF they become no-ops by design.
#define SKIP_WITHOUT_METRICS()                                   \
  if (!MetricsRegistry::Enabled()) {                             \
    GTEST_SKIP() << "built with -DLDB_METRICS=OFF";              \
  }

// ----------------------------------------------------------------- counters

TEST(CounterTest, SerialIncrementsAreExact) {
  SKIP_WITHOUT_METRICS();
  Counter c;
  for (int i = 0; i < 1000; ++i) c.Inc();
  c.Inc(500);
  EXPECT_EQ(c.Value(), 1500u);
}

// The sharded counter must not lose increments under contention: the total
// over N threads x M increments is exactly N*M, same as the serial result.
TEST(CounterTest, ConcurrentIncrementsMatchSerialTotal) {
  SKIP_WITHOUT_METRICS();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;

  Counter serial;
  for (int i = 0; i < kThreads * kIncrements; ++i) serial.Inc();

  Counter parallel;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&parallel] {
      for (int i = 0; i < kIncrements; ++i) parallel.Inc();
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(parallel.Value(), serial.Value());
  EXPECT_EQ(parallel.Value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(GaugeTest, SetAddAndPeak) {
  SKIP_WITHOUT_METRICS();
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.SetMax(5);
  EXPECT_EQ(g.Value(), 7);  // SetMax never lowers
  g.SetMax(42);
  EXPECT_EQ(g.Value(), 42);
}

// ---------------------------------------------------------------- histograms

// Bucket upper bounds are 2^0..2^38: a value lands in the first bucket whose
// upper bound it does not exceed, so exact powers of two sit in their own
// bucket, not the next one.
TEST(HistogramTest, BucketBoundaries) {
  SKIP_WITHOUT_METRICS();
  Histogram h;
  h.Observe(0.5);   // <= 1        -> bucket le=1
  h.Observe(1.0);   // == 1        -> bucket le=1
  h.Observe(1.001); // > 1, <= 2   -> bucket le=2
  h.Observe(2.0);   // == 2        -> bucket le=2
  h.Observe(3.0);   // > 2, <= 4   -> bucket le=4

  std::vector<uint64_t> cum = h.CumulativeCounts();
  ASSERT_EQ(cum.size(), static_cast<size_t>(Histogram::kBuckets));
  EXPECT_EQ(cum[0], 2u);  // le=1
  EXPECT_EQ(cum[1], 4u);  // le=2
  EXPECT_EQ(cum[2], 5u);  // le=4
  EXPECT_EQ(cum[Histogram::kBuckets - 1], 5u);  // +Inf == total
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Max(), 3.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.001 + 2.0 + 3.0);

  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(10), 1024.0);
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperBound(Histogram::kBuckets - 1)));
}

TEST(HistogramTest, QuantilesAreBucketUpperBounds) {
  SKIP_WITHOUT_METRICS();
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 90; ++i) h.Observe(3);    // le=4
  for (int i = 0; i < 10; ++i) h.Observe(1000); // le=1024
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.90), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 1024.0);
}

// Values beyond the largest finite bucket land in +Inf, whose quantile
// reports the observed max rather than infinity.
TEST(HistogramTest, OverflowBucketReportsMax) {
  SKIP_WITHOUT_METRICS();
  Histogram h;
  const double huge = 1e12;  // > 2^38
  h.Observe(huge);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), huge);
}

TEST(HistogramTest, ConcurrentObservationsKeepTotalCount) {
  SKIP_WITHOUT_METRICS();
  constexpr int kThreads = 4;
  constexpr int kObs = 20000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) h.Observe(t + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kObs);
  EXPECT_DOUBLE_EQ(h.Max(), kThreads);
}

// ------------------------------------------------------------------ registry

TEST(RegistryTest, SameSeriesReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("requests_total", "requests");
  Counter* b = reg.GetCounter("requests_total", "requests");
  EXPECT_EQ(a, b);
  // Different labels -> different series -> different instrument.
  Counter* c = reg.GetCounter("requests_total", "requests", {{"op", "scan"}});
  EXPECT_NE(a, c);
  // Same name as a different kind is a registration bug.
  EXPECT_THROW(reg.GetGauge("requests_total", "requests"), Error);
}

TEST(RegistryTest, PrometheusTextFormat) {
  SKIP_WITHOUT_METRICS();
  MetricsRegistry reg;
  reg.GetCounter("ops_total", "operations", {{"op", "scan"}})->Inc(3);
  reg.GetGauge("depth", "queue depth")->Set(-2);
  reg.GetHistogram("lat_ms", "latency")->Observe(5);

  std::string text = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("ops_total{op=\"scan\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"8\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 1"), std::string::npos);
}

// ToJson -> SnapshotFromJson -> ToJson must be byte-identical: the snapshot
// is the archival format CI diffs across runs.
TEST(RegistryTest, JsonRoundTrip) {
  SKIP_WITHOUT_METRICS();
  MetricsRegistry reg;
  reg.GetCounter("a_total", "a", {{"k", "v"}})->Inc(7);
  reg.GetGauge("b", "b gauge")->Set(9);
  Histogram* h = reg.GetHistogram("c_ms", "c latency");
  h->Observe(1);
  h->Observe(300);
  h->Observe(1e12);  // exercises the +Inf bucket in the round trip

  MetricsSnapshot snap = reg.Snapshot();
  std::string json = snap.ToJson();
  MetricsSnapshot parsed = obs::SnapshotFromJson(json);
  EXPECT_EQ(parsed.ToJson(), json);
  ASSERT_EQ(parsed.samples.size(), snap.samples.size());
  EXPECT_EQ(parsed.samples[0].name, "a_total");
  EXPECT_EQ(parsed.samples[0].labels.at("k"), "v");
}

// ----------------------------------------------------------------- query log

QueryLogRecord MakeRecord(const std::string& status) {
  QueryLogRecord rec;
  rec.status = status;
  rec.engine = "slot";
  return rec;
}

TEST(QueryLogTest, RingWraparoundKeepsNewestRecords) {
  QueryLog log(/*capacity=*/4, /*slow_ms=*/0);
  for (int i = 0; i < 10; ++i) log.Append(MakeRecord("ok"));
  EXPECT_EQ(log.appended(), 10u);
  EXPECT_EQ(log.dropped(), 6u);

  std::vector<QueryLogRecord> tail = log.Tail(100);
  ASSERT_EQ(tail.size(), 4u);  // never more than capacity
  EXPECT_EQ(tail.front().id, 7u);  // oldest survivor
  EXPECT_EQ(tail.back().id, 10u);  // newest
  // Tail(2) returns only the newest two, still oldest-first.
  tail = log.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].id, 9u);
  EXPECT_EQ(tail[1].id, 10u);
}

// The threshold is inclusive: a query at *exactly* slow_ms is slow. A
// threshold <= 0 disables capture no matter the duration.
TEST(QueryLogTest, SlowThresholdIsInclusive) {
  QueryLog log(8, /*slow_ms=*/50);
  EXPECT_FALSE(log.IsSlow(49.999));
  EXPECT_TRUE(log.IsSlow(50.0));
  EXPECT_TRUE(log.IsSlow(50.001));
  QueryLog disabled(8, /*slow_ms=*/0);
  EXPECT_FALSE(disabled.IsSlow(1e9));
}

TEST(QueryLogTest, ToStringCarriesStatusAndError) {
  QueryLogRecord rec = MakeRecord("failed");
  rec.id = 3;
  rec.error = "type error";
  rec.rows = 12;
  std::string s = rec.ToString();
  EXPECT_NE(s.find("failed"), std::string::npos);
  EXPECT_NE(s.find("type error"), std::string::npos);
  EXPECT_NE(s.find("engine=slot"), std::string::npos);
}

// -------------------------------------------------------- plan-cache reasons

TEST(PlanCacheTest, EvictionReasonsAreSplit) {
  PlanCache cache(/*capacity=*/2);
  auto plan = std::make_shared<const PreparedPlan>();
  cache.Insert("a\n@v1", plan);
  cache.Insert("b\n@v1", plan);
  cache.Insert("c\n@v1", plan);  // LRU evicts "a"

  PlanCacheStats s = cache.Stats();
  EXPECT_EQ(s.evictions_capacity, 1u);
  EXPECT_EQ(s.evictions_invalidated, 0u);
  EXPECT_EQ(s.evictions, 1u);

  // A version-stamp change drops everything not compiled under the new
  // stamp — counted as invalidation, not capacity.
  EXPECT_EQ(cache.EvictNotMatching("\n@v2"), 2u);
  s = cache.Stats();
  EXPECT_EQ(s.evictions_capacity, 1u);
  EXPECT_EQ(s.evictions_invalidated, 2u);
  EXPECT_EQ(s.entries, 0u);

  cache.Insert("d\n@v2", plan);
  EXPECT_EQ(cache.EvictNotMatching("\n@v2"), 0u);  // survivor matches
  cache.Clear();
  s = cache.Stats();
  EXPECT_EQ(s.evictions_invalidated, 3u);
}

// ------------------------------------------------------------ service wiring

class MetricsServiceTest : public ::testing::Test {
 protected:
  Database db_ = workload::MakeCompanyDatabase({});
  const std::string query_ =
      "select distinct e.name from e in Employees where e.salary > 50000.0";
};

TEST_F(MetricsServiceTest, CountsQueriesAndCacheOutcomes) {
  SKIP_WITHOUT_METRICS();
  QueryService svc(db_);
  auto session = svc.OpenSession();
  svc.Execute(*session, query_);
  svc.Execute(*session, query_);
  svc.Execute(*session, query_);

  MetricsSnapshot snap = svc.metrics().Snapshot();
  auto value_of = [&](const std::string& name) -> double {
    double total = 0;
    for (const obs::MetricSample& s : snap.samples) {
      if (s.name == name) total += s.value;
    }
    return total;
  };
  EXPECT_EQ(value_of("ldb_queries_started_total"), 3);
  EXPECT_EQ(value_of("ldb_queries_ok_total"), 3);
  EXPECT_EQ(value_of("ldb_queries_failed_total"), 0);
  EXPECT_EQ(value_of("ldb_plan_cache_misses_total"), 1);
  EXPECT_EQ(value_of("ldb_plan_cache_hits_total"), 2);
  EXPECT_EQ(value_of("ldb_sessions_opened_total"), 1);

  // Histograms saw one observation per query.
  for (const obs::MetricSample& s : snap.samples) {
    if (s.name == "ldb_query_total_ms") {
      EXPECT_EQ(s.count, 3u);
    }
    if (s.name == "ldb_result_rows") {
      EXPECT_EQ(s.count, 3u);
    }
  }
}

TEST_F(MetricsServiceTest, QueryLogRecordsOutcomes) {
  QueryService svc(db_);
  auto session = svc.OpenSession();
  svc.Execute(*session, query_);
  EXPECT_THROW(svc.Execute(*session, "select x from"), Error);

  std::vector<QueryLogRecord> tail = svc.query_log().Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].status, "ok");
  EXPECT_EQ(tail[0].session, session->id());
  EXPECT_GT(tail[0].rows, 0u);
  EXPECT_TRUE(tail[0].plan_cached == false);
  EXPECT_FALSE(tail[0].cache_key.empty());
  EXPECT_EQ(tail[1].status, "failed");
  EXPECT_FALSE(tail[1].error.empty());
}

// Satellite 1: a cancelled query must be logged with status "cancelled"
// (and counted as such), with the profiler's per-worker stats merged
// exactly once despite the unwind.
TEST_F(MetricsServiceTest, CancelledQueryLogsCancelledStatus) {
  workload::OO7Params p;
  p.n_composite_parts = 250;
  p.parts_per_composite = 20;  // 5000 atomic parts: outlives a 1ms deadline
  Database big = workload::MakeOO7Database(p);
  QueryService svc(big);
  SessionOptions so;
  so.deadline_ms = 1;
  auto session = svc.OpenSession(so);

  const std::string slow =
      "count(select struct(A: a.id, B: b.id) "
      "from a in AtomicParts, b in AtomicParts where a.x < b.y)";
  QueryProfiler prof;
  EXPECT_THROW(svc.Execute(*session, slow, nullptr, &prof), QueryCancelled);

  std::vector<QueryLogRecord> tail = svc.query_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].status, "cancelled");

  if (MetricsRegistry::Enabled()) {
    MetricsSnapshot snap = svc.metrics().Snapshot();
    double cancelled = 0;
    for (const obs::MetricSample& s : snap.samples) {
      if (s.name == "ldb_queries_cancelled_total") cancelled += s.value;
    }
    EXPECT_EQ(cancelled, 1);
  }
}

// Every query is slow at a zero-adjacent threshold: the log must capture the
// rendered plan (and the profile when one was attached).
TEST_F(MetricsServiceTest, SlowQueryCapturesPlanAndProfile) {
  ServiceOptions opts;
  opts.slow_query_ms = 1e-9;
  QueryService svc(db_, opts);
  auto session = svc.OpenSession();
  QueryProfiler prof;
  svc.Execute(*session, query_, nullptr, &prof);

  std::vector<QueryLogRecord> tail = svc.query_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_TRUE(tail[0].slow);
  EXPECT_NE(tail[0].plan_text.find("TableScan"), std::string::npos);
  EXPECT_FALSE(tail[0].profile_json.empty());
  EXPECT_GT(svc.query_log().slow_count(), 0u);
}

TEST_F(MetricsServiceTest, UpdateCatalogInvalidatesCachedPlans) {
  QueryService svc(db_);
  auto session = svc.OpenSession();
  svc.Execute(*session, query_);
  EXPECT_EQ(svc.cache_stats().entries, 1u);

  Catalog cat = Catalog::FromDatabase(db_);
  cat.SetExtentCardinality("Employees", 999999);  // stamp must move
  svc.UpdateCatalog(cat);

  PlanCacheStats s = svc.cache_stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.evictions_invalidated, 1u);
  EXPECT_EQ(s.evictions_capacity, 0u);

  // Re-running recompiles under the new stamp and still answers correctly.
  Value v = svc.Execute(*session, query_);
  EXPECT_EQ(v, RunOQL(db_, query_));
  EXPECT_EQ(svc.cache_stats().misses, 2u);
}

// ------------------------------------------------------------ trace exporter

TEST_F(MetricsServiceTest, TraceExportIsWellFormedAndCoversWorkers) {
  OptimizerOptions options;
  options.trace = true;
  Optimizer opt(db_.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(query_));
  PhysPtr phys = PlanPhysical(q.simplified, db_, options.physical);
  QueryProfiler prof;
  ExecOptions exec;
  exec.profiler = &prof;
  exec.n_threads = 2;
  Value result = ExecutePipelined(phys, db_, exec);
  EXPECT_EQ(result, RunOQL(db_, query_));

  std::string json = obs::TraceEventsJson(prof, q.trace.get());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Compile lane, execution lane(s), and per-operator summary lane.
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 3"), std::string::npos);
  EXPECT_NE(json.find("TableScan"), std::string::npos);
}

}  // namespace
}  // namespace ldb
