// Unit tests for the calculus interpreter (src/runtime/expr_eval.*): the
// D-rules, NULL discipline, arithmetic, short-circuiting, and environments.

#include "src/runtime/expr_eval.h"

#include <gtest/gtest.h>

#include "src/runtime/error.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

class ExprEvalTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
  ExprEvaluator ev_{db_};

  Value Eval(const ExprPtr& e) { return ev_.Eval(e, Env()); }
  Value EvalIn(const ExprPtr& e, const Env& env) { return ev_.Eval(e, env); }
};

TEST_F(ExprEvalTest, EnvBindingAndShadowing) {
  Env env;
  env.Bind("x", Value::Int(1));
  env.Bind("x", Value::Int(2));  // later binding shadows
  EXPECT_EQ(*env.Lookup("x"), Value::Int(2));
  EXPECT_EQ(env.Lookup("y"), nullptr);
  Env extended = env.With("y", Value::Int(3));
  EXPECT_EQ(*extended.Lookup("y"), Value::Int(3));
  EXPECT_EQ(env.Lookup("y"), nullptr);  // With copies
}

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval(Expr::Bin(BinOpKind::kAdd, Expr::Int(2), Expr::Int(3))),
            Value::Int(5));
  EXPECT_EQ(Eval(Expr::Bin(BinOpKind::kMul, Expr::Int(2), Expr::Real(1.5))),
            Value::Real(3.0));
  EXPECT_EQ(Eval(Expr::Bin(BinOpKind::kDiv, Expr::Int(7), Expr::Int(2))),
            Value::Int(3));  // integer division
  EXPECT_EQ(Eval(Expr::Bin(BinOpKind::kMod, Expr::Int(7), Expr::Int(3))),
            Value::Int(1));
  EXPECT_EQ(Eval(Expr::Un(UnOpKind::kNeg, Expr::Int(4))), Value::Int(-4));
}

TEST_F(ExprEvalTest, DivisionByZeroThrows) {
  EXPECT_THROW(Eval(Expr::Bin(BinOpKind::kDiv, Expr::Int(1), Expr::Int(0))),
               EvalError);
  EXPECT_THROW(Eval(Expr::Bin(BinOpKind::kMod, Expr::Int(1), Expr::Int(0))),
               EvalError);
}

TEST_F(ExprEvalTest, NullPropagation) {
  // Arithmetic with NULL yields NULL; comparisons with NULL are false.
  EXPECT_TRUE(Eval(Expr::Bin(BinOpKind::kAdd, Expr::Null(), Expr::Int(1))).is_null());
  EXPECT_EQ(Eval(Expr::Eq(Expr::Null(), Expr::Null())), Value::Bool(false));
  EXPECT_EQ(Eval(Expr::Bin(BinOpKind::kGe, Expr::Null(), Expr::Int(0))),
            Value::Bool(false));
  EXPECT_EQ(Eval(Expr::Un(UnOpKind::kIsNull, Expr::Null())), Value::Bool(true));
  EXPECT_EQ(Eval(Expr::Un(UnOpKind::kNeg, Expr::Null())), Value::Null());
  // not(NULL-as-predicate) is true, consistently with EvalPred.
  EXPECT_EQ(Eval(Expr::Not(Expr::Null())), Value::Bool(true));
}

TEST_F(ExprEvalTest, ShortCircuit) {
  // RHS would throw (division by zero) if evaluated.
  ExprPtr boom = Expr::Eq(Expr::Bin(BinOpKind::kDiv, Expr::Int(1), Expr::Int(0)),
                          Expr::Int(1));
  EXPECT_EQ(Eval(Expr::And(Expr::False(), boom)), Value::Bool(false));
  EXPECT_EQ(Eval(Expr::Bin(BinOpKind::kOr, Expr::True(), boom)),
            Value::Bool(true));
}

TEST_F(ExprEvalTest, RecordAndProjection) {
  ExprPtr rec = Expr::Record({{"a", Expr::Int(1)}, {"b", Expr::Str("x")}});
  EXPECT_EQ(Eval(Expr::Proj(rec, "b")), Value::Str("x"));
}

TEST_F(ExprEvalTest, PathNavigationThroughRefs) {
  Env env;
  env.Bind("e", db_.Extent("Employees")[0]);  // Ann
  EXPECT_EQ(EvalIn(Expr::Proj(V("e"), "name"), env), Value::Str("Ann"));
  EXPECT_EQ(EvalIn(Expr::Path(V("e"), {"manager", "name"}), env),
            Value::Str("Meg"));
  // NULL manager navigation (Cal is Employees[2]).
  Env env2;
  env2.Bind("e", db_.Extent("Employees")[2]);
  EXPECT_TRUE(EvalIn(Expr::Path(V("e"), {"manager", "name"}), env2).is_null());
}

TEST_F(ExprEvalTest, ExtentLookupAndCaching) {
  Value employees = Eval(V("Employees"));
  ASSERT_EQ(employees.kind(), Value::Kind::kSet);
  EXPECT_EQ(employees.AsElems().size(), 4u);
  // Second evaluation uses the cache and yields the identical value.
  EXPECT_EQ(Eval(V("Employees")), employees);
  EXPECT_THROW(Eval(V("NoSuchThing")), EvalError);
}

TEST_F(ExprEvalTest, ComprehensionNestedLoops) {
  // sum{ c.age | e <- Employees, c <- e.children }
  ExprPtr q = Expr::Comp(
      MonoidKind::kSum, Expr::Proj(V("c"), "age"),
      {Qualifier::Generator("e", V("Employees")),
       Qualifier::Generator("c", Expr::Proj(V("e"), "children"))});
  // Ann: Al(5) + Amy(25); Cal: Cam(30); Dee: Dan(10) = 70.
  EXPECT_EQ(Eval(q), Value::Int(70));
}

TEST_F(ExprEvalTest, GeneratorOverNullDomainYieldsZero) {
  Env env;
  env.Bind("x", Value::Null());
  ExprPtr q = Expr::Comp(MonoidKind::kSum, Expr::Int(1),
                         {Qualifier::Generator("v", V("x"))});
  EXPECT_EQ(EvalIn(q, env), Value::Int(0));
  ExprPtr all = Expr::Comp(MonoidKind::kAll, Expr::False(),
                           {Qualifier::Generator("v", V("x"))});
  EXPECT_EQ(EvalIn(all, env), Value::Bool(true));  // zero of all
}

TEST_F(ExprEvalTest, QuantifierShortCircuitAcrossGenerators) {
  // some over Employees x Employees stops at the first satisfying pair, so
  // even a would-be O(n^2) check is fast; semantically it is just true.
  ExprPtr q = Expr::Comp(
      MonoidKind::kSome, Expr::True(),
      {Qualifier::Generator("a", V("Employees")),
       Qualifier::Generator("b", V("Employees"))});
  EXPECT_EQ(Eval(q), Value::Bool(true));
}

TEST_F(ExprEvalTest, MergeAndZero) {
  ExprPtr m = Expr::Merge(MonoidKind::kSet,
                          Expr::Lit(Value::Set({Value::Int(1)})),
                          Expr::Lit(Value::Set({Value::Int(2)})));
  EXPECT_EQ(Eval(m), Value::Set({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(Eval(Expr::Zero(MonoidKind::kSum)), Value::Int(0));
}

TEST_F(ExprEvalTest, IfSelectsBranch) {
  EXPECT_EQ(Eval(Expr::If(Expr::True(), Expr::Int(1), Expr::Int(2))),
            Value::Int(1));
  // NULL condition is false-y.
  EXPECT_EQ(Eval(Expr::If(Expr::Null(), Expr::Int(1), Expr::Int(2))),
            Value::Int(2));
}

TEST_F(ExprEvalTest, ApplyBetaReducesAtRuntime) {
  ExprPtr apply = Expr::Apply(
      Expr::Lambda("x", Expr::Bin(BinOpKind::kAdd, V("x"), Expr::Int(1))),
      Expr::Int(41));
  EXPECT_EQ(Eval(apply), Value::Int(42));
  EXPECT_THROW(Eval(Expr::Lambda("x", V("x"))), EvalError);
  EXPECT_THROW(Eval(Expr::Apply(Expr::Int(1), Expr::Int(2))), EvalError);
}

TEST_F(ExprEvalTest, EvalPredOnNullIsFalse) {
  EXPECT_FALSE(ev_.EvalPred(Expr::Null(), Env()));
  EXPECT_TRUE(ev_.EvalPred(Expr::True(), Env()));
  EXPECT_THROW(ev_.EvalPred(Expr::Int(3), Env()), EvalError);
}

TEST_F(ExprEvalTest, AvgComprehension) {
  ExprPtr q = Expr::Comp(MonoidKind::kAvg, Expr::Proj(V("e"), "age"),
                         {Qualifier::Generator("e", V("Employees"))});
  EXPECT_EQ(Eval(q), Value::Real((30 + 40 + 25 + 55) / 4.0));
}

TEST_F(ExprEvalTest, FilterBetweenGenerators) {
  // Generators after a failing filter never run.
  ExprPtr q = Expr::Comp(
      MonoidKind::kSum, Expr::Int(1),
      {Qualifier::Generator("e", V("Employees")),
       Qualifier::Filter(Expr::Bin(BinOpKind::kGt, Expr::Proj(V("e"), "age"),
                                   Expr::Int(100))),
       Qualifier::Generator("c", Expr::Proj(V("e"), "children"))});
  EXPECT_EQ(Eval(q), Value::Int(0));
}

}  // namespace
}  // namespace ldb
