// Query service tests: parameterized prepared statements, the plan cache
// (hits, eviction, key soundness), cooperative cancellation under both
// engines serial and morsel-parallel, admission control, memory budgets,
// and index rebuild on load (docs/SERVICE.md).

#include "src/service/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "src/lambdadb.h"
#include "src/workload/oo7.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

// A hash-join query: equality predicate across the join, so the build side
// (all of AtomicParts) goes through the hash-build loop the cancellation
// tests target.
const char* kHashJoinQuery =
    "select distinct struct(A: a.id, B: b.id) "
    "from a in AtomicParts, b in AtomicParts "
    "where a.build_date = b.build_date and a.id < b.id";

// A nesting query: the correlated subquery unnests to an outer hash join
// feeding a nest operator, exercising the nest drain loop.
const char* kNestQuery =
    "select distinct struct(D: b.id, P: (select p.id from p in AtomicParts "
    "where p.build_date = b.build_date)) "
    "from b in BaseAssemblies";

// A nested-loop self join (no equality conjunct): quadratic in AtomicParts,
// so it reliably outlives any cancel/deadline the tests throw at it.
const char* kSlowQuery =
    "count(select struct(A: a.id, B: b.id) "
    "from a in AtomicParts, b in AtomicParts where a.x < b.y)";

Database LargeOO7() {
  workload::OO7Params p;
  p.n_composite_parts = 250;
  p.parts_per_composite = 20;  // 5000 atomic parts
  return workload::MakeOO7Database(p);
}

class ServiceTest : public ::testing::Test {
 protected:
  Database db_ = workload::MakeOO7Database({});
};

// ---------------------------------------------------------------- parameters

TEST_F(ServiceTest, PositionalParameterBindsAndRebinds) {
  QueryService svc(db_);
  svc.Prepare("by_id",
              "select distinct p.x from p in AtomicParts where p.id = $1");
  auto session = svc.OpenSession();

  session->Bind("1", Value::Int(7));
  Value r7 = svc.ExecutePrepared(*session, "by_id");
  EXPECT_EQ(r7, RunOQL(db_,
                       "select distinct p.x from p in AtomicParts "
                       "where p.id = 7"));

  session->Bind("1", Value::Int(13));
  Value r13 = svc.ExecutePrepared(*session, "by_id");
  EXPECT_EQ(r13, RunOQL(db_,
                        "select distinct p.x from p in AtomicParts "
                        "where p.id = 13"));
  EXPECT_NE(r7, r13);
}

TEST_F(ServiceTest, NamedParameter) {
  QueryService svc(db_);
  auto session = svc.OpenSession();
  session->Bind("cutoff", Value::Int(1500));
  Value r = svc.Execute(*session,
                        "count(select p from p in AtomicParts "
                        "where p.build_date < $cutoff)");
  EXPECT_EQ(r, RunOQL(db_,
                      "count(select p from p in AtomicParts "
                      "where p.build_date < 1500)"));
}

TEST_F(ServiceTest, ParameterWorksUnderEnvEngine) {
  QueryService svc(db_);
  SessionOptions so;
  so.use_slot_frames = false;
  auto session = svc.OpenSession(so);
  session->Bind("1", Value::Int(7));
  Value r = svc.Execute(
      *session, "select distinct p.x from p in AtomicParts where p.id = $1");
  EXPECT_EQ(r, RunOQL(db_,
                      "select distinct p.x from p in AtomicParts "
                      "where p.id = 7"));
}

TEST_F(ServiceTest, UnboundParameterIsEvalError) {
  QueryService svc(db_);
  auto session = svc.OpenSession();
  EXPECT_THROW(
      svc.Execute(*session,
                  "select p.x from p in AtomicParts where p.id = $1"),
      EvalError);
}

// ---------------------------------------------------------------- plan cache

TEST_F(ServiceTest, SecondExecutionHitsCacheWithIdenticalResult) {
  QueryService svc(db_);
  auto session = svc.OpenSession();

  QueryStats s1, s2;
  QueryProfiler p1, p2;
  Value r1 = svc.Execute(*session, kHashJoinQuery, &s1, &p1);
  Value r2 = svc.Execute(*session, kHashJoinQuery, &s2, &p2);

  EXPECT_FALSE(s1.plan_cached);
  EXPECT_TRUE(s2.plan_cached);
  EXPECT_GE(s2.cache.hits, 1u);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, RunOQL(db_, kHashJoinQuery));

  // The cache outcome reaches the profile JSON.
  EXPECT_EQ(p1.plan_cached, 0u);
  EXPECT_EQ(p2.plan_cached, 1u);
  std::string json = ProfileToJson(p2);
  EXPECT_NE(json.find("\"plan_cached\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_hits\": "), std::string::npos) << json;
}

TEST_F(ServiceTest, CachedPlanIdenticalUnderBothEngines) {
  QueryService svc(db_);
  auto slot = svc.OpenSession();
  SessionOptions env_opts;
  env_opts.use_slot_frames = false;
  auto env = svc.OpenSession(env_opts);

  // One compiled plan (same cache key) serves both engines.
  QueryStats s1, s2;
  Value via_slot = svc.Execute(*slot, kNestQuery, &s1);
  Value via_env = svc.Execute(*env, kNestQuery, &s2);
  EXPECT_FALSE(s1.plan_cached);
  EXPECT_TRUE(s2.plan_cached);
  EXPECT_EQ(via_slot, via_env);
  EXPECT_EQ(via_slot, RunOQL(db_, kNestQuery));
}

TEST_F(ServiceTest, PreparedStatementSecondExecutionHitsCache) {
  QueryService svc(db_);
  svc.Prepare("q", kNestQuery);
  EXPECT_TRUE(svc.HasPrepared("q"));
  EXPECT_FALSE(svc.HasPrepared("nope"));
  auto session = svc.OpenSession();

  QueryStats s1, s2;
  Value r1 = svc.ExecutePrepared(*session, "q", &s1);
  Value r2 = svc.ExecutePrepared(*session, "q", &s2);
  EXPECT_FALSE(s1.plan_cached);
  EXPECT_TRUE(s2.plan_cached);
  EXPECT_EQ(r1, r2);

  EXPECT_THROW(svc.ExecutePrepared(*session, "nope"), EvalError);
}

TEST_F(ServiceTest, OrderDirectionIsPartOfTheCacheKey) {
  QueryService svc(db_);
  auto session = svc.OpenSession();

  QueryStats s_asc, s_desc;
  Value asc = svc.Execute(
      *session, "select b.id from b in BaseAssemblies order by b.id", &s_asc);
  Value desc = svc.Execute(
      *session, "select b.id from b in BaseAssemblies order by b.id desc",
      &s_desc);

  // Same wrapped comprehension, different direction: must NOT share a plan.
  EXPECT_FALSE(s_asc.plan_cached);
  EXPECT_FALSE(s_desc.plan_cached);
  Elems up = asc.AsElems();
  Elems down = desc.AsElems();
  ASSERT_EQ(up.size(), down.size());
  for (size_t i = 0; i < up.size(); ++i) {
    EXPECT_EQ(up[i], down[down.size() - 1 - i]);
  }
}

TEST_F(ServiceTest, LruEvictionAndClear) {
  ServiceOptions opts;
  opts.plan_cache_capacity = 2;
  QueryService svc(db_, opts);
  auto session = svc.OpenSession();

  svc.Execute(*session, "count(select p from p in AtomicParts)");
  svc.Execute(*session, "count(select b from b in BaseAssemblies)");
  svc.Execute(*session, "count(select c from c in CompositeParts)");
  PlanCacheStats cs = svc.cache_stats();
  EXPECT_EQ(cs.entries, 2u);
  EXPECT_GE(cs.evictions, 1u);

  svc.ClearCache();
  cs = svc.cache_stats();
  EXPECT_EQ(cs.entries, 0u);
  EXPECT_GE(cs.misses, 3u);  // counters are lifetime totals
}

// -------------------------------------------------------------- cancellation

TEST_F(ServiceTest, DeadlineAbortsHashBuildSerialAndParallel) {
  Database big = LargeOO7();
  QueryService svc(big);
  for (int threads : {1, 2, 4}) {
    SessionOptions so;
    so.deadline_ms = 1;
    so.n_threads = threads;
    auto session = svc.OpenSession(so);
    EXPECT_THROW(svc.Execute(*session, kHashJoinQuery), QueryCancelled)
        << "threads=" << threads;

    // Clean abort: the session (and service) stay usable — the deadline is
    // re-armed per query, workers are joined, no partial state leaks.
    session->options().deadline_ms = 0;
    Value ok = svc.Execute(*session,
                           "count(select b from b in BaseAssemblies)");
    EXPECT_EQ(ok.AsInt(), 10);
  }
}

TEST_F(ServiceTest, DeadlineAbortsNestSerialAndParallel) {
  Database big = LargeOO7();
  QueryService svc(big);
  for (int threads : {1, 2, 4}) {
    SessionOptions so;
    so.deadline_ms = 1;
    so.n_threads = threads;
    auto session = svc.OpenSession(so);
    try {
      svc.Execute(*session, kNestQuery);
      FAIL() << "expected QueryCancelled at threads=" << threads;
    } catch (const QueryCancelled& e) {
      EXPECT_NE(std::string(e.what()).find("deadline exceeded"),
                std::string::npos);
    }
    // Full (undeadlined) execution still produces the correct result.
    session->options().deadline_ms = 0;
    EXPECT_EQ(svc.Execute(*session, kNestQuery), RunOQL(big, kNestQuery));
  }
}

TEST_F(ServiceTest, DeadlineAbortsEnvEngine) {
  Database big = LargeOO7();
  QueryService svc(big);
  SessionOptions so;
  so.deadline_ms = 1;
  so.use_slot_frames = false;
  auto session = svc.OpenSession(so);
  EXPECT_THROW(svc.Execute(*session, kHashJoinQuery), QueryCancelled);
}

TEST_F(ServiceTest, ExplicitCancelFromAnotherThread) {
  Database big = LargeOO7();
  QueryService svc(big);
  for (int threads : {1, 2, 4}) {
    SessionOptions so;
    so.n_threads = threads;
    auto session = svc.OpenSession(so);
    std::atomic<bool> cancelled{false};
    std::string error;
    std::thread runner([&] {
      try {
        svc.Execute(*session, kSlowQuery);  // quadratic; cannot finish first
      } catch (const QueryCancelled& e) {
        cancelled = true;
        error = e.what();
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    session->Cancel();
    runner.join();
    EXPECT_TRUE(cancelled) << "threads=" << threads;
    EXPECT_NE(error.find("cancelled by caller"), std::string::npos) << error;
    EXPECT_EQ(svc.running(), 0);
  }
}

// ----------------------------------------------------------------- admission

TEST_F(ServiceTest, OverAdmissionIsRejectedThenSlotFrees) {
  Database big = LargeOO7();
  ServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 0;
  QueryService svc(big, opts);

  auto holder = svc.OpenSession();
  std::thread runner([&] {
    try {
      svc.Execute(*holder, kSlowQuery);
    } catch (const QueryCancelled&) {
    }
  });
  while (svc.running() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto other = svc.OpenSession();
  EXPECT_THROW(
      svc.Execute(*other, "count(select b from b in BaseAssemblies)"),
      AdmissionError);

  holder->Cancel();
  runner.join();
  EXPECT_EQ(svc.running(), 0);
  // The slot is free again.
  EXPECT_EQ(
      svc.Execute(*other, "count(select b from b in BaseAssemblies)").AsInt(),
      10);
}

TEST_F(ServiceTest, QueuedQueryRunsOnceSlotFrees) {
  Database big = LargeOO7();
  ServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 2;
  QueryService svc(big, opts);

  auto holder = svc.OpenSession();
  std::thread runner([&] {
    try {
      svc.Execute(*holder, kSlowQuery);
    } catch (const QueryCancelled&) {
    }
  });
  while (svc.running() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto waiter = svc.OpenSession();
  std::atomic<bool> done{false};
  Value result;
  std::thread queued([&] {
    result = svc.Execute(*waiter, "count(select b from b in BaseAssemblies)");
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done);  // still waiting behind the held slot

  holder->Cancel();
  runner.join();
  queued.join();
  EXPECT_TRUE(done);
  EXPECT_EQ(result.AsInt(), 10);
}

TEST_F(ServiceTest, DeadlineExpiresWhileQueued) {
  Database big = LargeOO7();
  ServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 2;
  QueryService svc(big, opts);

  auto holder = svc.OpenSession();
  std::thread runner([&] {
    try {
      svc.Execute(*holder, kSlowQuery);
    } catch (const QueryCancelled&) {
    }
  });
  while (svc.running() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  SessionOptions so;
  so.deadline_ms = 30;  // expires in the admission queue
  auto waiter = svc.OpenSession(so);
  EXPECT_THROW(
      svc.Execute(*waiter, "count(select b from b in BaseAssemblies)"),
      QueryCancelled);

  holder->Cancel();
  runner.join();
}

// ------------------------------------------------------------ memory budget

TEST_F(ServiceTest, MemoryBudgetRejectsOversizedResult) {
  QueryService svc(db_);
  SessionOptions so;
  so.memory_budget_bytes = 64;  // far below 1000 atomic parts
  auto session = svc.OpenSession(so);
  EXPECT_THROW(svc.Execute(*session, "select p.id from p in AtomicParts"),
               EvalError);

  session->options().memory_budget_bytes = 0;
  EXPECT_EQ(svc.Execute(*session, "count(select p from p in AtomicParts)")
                .AsInt(),
            1000);
}

// -------------------------------------------------- index rebuild on load

TEST_F(ServiceTest, LoadWithIndexesRestoresAccessPaths) {
  Database db = testing::TinyCompany();
  db.BuildIndex("Employees", "dno");

  std::stringstream dump;
  DumpDatabase(db, dump);
  Database loaded = QueryService::LoadWithIndexes(dump);

  // Plain LoadDatabase leaves the declaration pending; the service factory
  // rebuilds it.
  EXPECT_TRUE(loaded.HasIndex("Employees", "dno"));

  // The physical planner picks the index-backed access path again ...
  Optimizer opt(loaded.schema());
  CompiledQuery q = opt.Compile(
      ParseOQL("select distinct e.name from e in Employees where e.dno = 1"));
  std::string explained = ExplainPhysical(q.simplified, {}, &loaded);
  EXPECT_NE(explained.find("IndexScan[e <- Employees.dno = 1]"),
            std::string::npos)
      << explained;

  // ... and queries through the service agree with the original database.
  QueryService svc(loaded);
  auto session = svc.OpenSession();
  EXPECT_EQ(svc.Execute(*session,
                        "select distinct e.name from e in Employees "
                        "where e.dno = 1"),
            Value::Set({Value::Str("Cal"), Value::Str("Dee")}));
}

// ------------------------------------------------------- fallback execution

TEST_F(ServiceTest, NonComprehensionTopLevelFallsBackToRun) {
  QueryService svc(db_);
  auto session = svc.OpenSession();
  // A record of aggregates is not comprehension-rooted; the service routes
  // it through Optimizer::Run (and still caches the decision).
  const char* q =
      "struct(N: count(select p from p in AtomicParts), "
      "B: count(select b from b in BaseAssemblies))";
  QueryStats s1, s2;
  Value r1 = svc.Execute(*session, q, &s1);
  Value r2 = svc.Execute(*session, q, &s2);
  EXPECT_TRUE(s2.plan_cached);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, RunOQL(db_, q));
}

}  // namespace
}  // namespace ldb
