// Exactness tests for the EXPLAIN ANALYZE substrate (runtime/profile.*):
// per-operator row counts on fixed plans over the hand-computable
// TinyCompany, serial == parallel row totals at several thread/morsel
// settings, Env-engine / slot-engine profile parity, JSON round-trips, the
// optimizer CompileTrace, and the byte-identical-results guarantee when
// profiling is disabled.

#include "src/runtime/profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/lambdadb.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

// Pre-order operator list; the index of each PhysOp in the result IS its
// profiler id (the numbering CompileSlotPlan assigns).
void Preorder(const PhysPtr& op, std::vector<const PhysOp*>* out) {
  if (!op) return;
  out->push_back(op.get());
  Preorder(op->left, out);
  Preorder(op->right, out);
}

int FindOpId(const std::vector<const PhysOp*>& ops, PhysKind kind,
             const std::string& extent = "") {
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i]->kind == kind && (extent.empty() || ops[i]->extent == extent)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

struct ProfiledRun {
  Value value;
  QueryProfiler prof;
  PhysPtr phys;
};

// Compiles `oql` through the full pipeline and executes it with a profiler
// attached, returning the result, the profile, and the physical plan.
ProfiledRun RunProfiled(const Database& db, const std::string& oql,
                        int threads = 1, size_t morsel = 2048,
                        bool slot_frames = true) {
  OptimizerOptions options;
  Optimizer opt(db.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(oql));
  ProfiledRun r;
  r.phys = PlanPhysical(q.simplified, db, options.physical);
  ExecOptions exec;
  exec.n_threads = threads;
  exec.morsel_size = morsel;
  exec.use_slot_frames = slot_frames;
  exec.profiler = &r.prof;
  r.value = ExecutePipelined(r.phys, db, exec);
  return r;
}

class ProfileTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
};

TEST_F(ProfileTest, Figure1StylePlanExactRows) {
  // Reduce(HashNest(HashOuterJoin(Scan(Departments), Scan(Employees)))) —
  // the Figure 1 nested count after unnesting. Every row count is knowable
  // by hand: 3 departments, 4 employees, Sales 2 + R&D 2 + Empty 1 (NULL
  // pad) = 5 join rows, 3 groups.
  ProfiledRun r = RunProfiled(
      db_,
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments");
  std::vector<const PhysOp*> ops;
  Preorder(r.phys, &ops);

  const int dept = FindOpId(ops, PhysKind::kTableScan, "Departments");
  const int emp = FindOpId(ops, PhysKind::kTableScan, "Employees");
  const int join = FindOpId(ops, PhysKind::kHashOuterJoin);
  const int nest = FindOpId(ops, PhysKind::kHashNest);
  ASSERT_GE(dept, 0);
  ASSERT_GE(emp, 0);
  ASSERT_GE(join, 0) << PrintPhysicalPlan(r.phys);
  ASSERT_GE(nest, 0);

  EXPECT_EQ(r.prof.Find(dept)->rows_out, 3u);
  EXPECT_EQ(r.prof.Find(emp)->rows_out, 4u);  // drained into the build table
  EXPECT_EQ(r.prof.Find(join)->build_rows, 4u);
  EXPECT_EQ(r.prof.Find(join)->rows_out, 5u);
  EXPECT_EQ(r.prof.Find(nest)->groups, 3u);
  EXPECT_EQ(r.prof.Find(nest)->rows_out, 3u);
  EXPECT_EQ(r.prof.Find(0)->rows_out, 3u);  // root Reduce folds 3 group rows
  EXPECT_EQ(r.prof.parallel_mode, "serial");
  EXPECT_GT(r.prof.wall_ns, 0);

  // Every operator in the plan registered stats.
  EXPECT_EQ(r.prof.Operators().size(), ops.size());
}

TEST_F(ProfileTest, UnnestPlanExactRows) {
  // Ann has 2 children, Bob 0, Cal 1, Dee 1: the Unnest emits 4 rows from a
  // 4-row scan (empty collections drop).
  ProfiledRun r = RunProfiled(
      db_,
      "select distinct struct(E: e.name, C: c.name) "
      "from e in Employees, c in e.children");
  std::vector<const PhysOp*> ops;
  Preorder(r.phys, &ops);
  const int scan = FindOpId(ops, PhysKind::kTableScan, "Employees");
  const int unnest = FindOpId(ops, PhysKind::kUnnest);
  ASSERT_GE(scan, 0);
  ASSERT_GE(unnest, 0) << PrintPhysicalPlan(r.phys);
  EXPECT_EQ(r.prof.Find(scan)->rows_out, 4u);
  EXPECT_EQ(r.prof.Find(unnest)->rows_out, 4u);
  EXPECT_EQ(r.prof.Find(0)->rows_out, 4u);
}

TEST_F(ProfileTest, QuantifierShortCircuitCounted) {
  // Ann (the first employee) already satisfies the predicate: the Reduce
  // saturates after one row and stops pulling from the scan.
  ProfiledRun r = RunProfiled(db_, "exists e in Employees: e.salary > 70000");
  EXPECT_EQ(r.value, Value::Bool(true));
  std::vector<const PhysOp*> ops;
  Preorder(r.phys, &ops);
  const int scan = FindOpId(ops, PhysKind::kTableScan, "Employees");
  ASSERT_GE(scan, 0);
  EXPECT_EQ(r.prof.Find(0)->short_circuits, 1u);
  EXPECT_EQ(r.prof.Find(scan)->rows_out, 1u);
}

TEST_F(ProfileTest, EnvEngineProfileMatchesSlotEngine) {
  const char* queries[] = {
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments",
      "select distinct struct(E: e.name, C: c.name) "
      "from e in Employees, c in e.children",
      "sum(select e.salary from e in Employees where e.age > 30)",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    ProfiledRun slot = RunProfiled(db_, q, 1, 2048, /*slot_frames=*/true);
    ProfiledRun env = RunProfiled(db_, q, 1, 2048, /*slot_frames=*/false);
    EXPECT_EQ(slot.value, env.value);
    auto slot_ops = slot.prof.Operators();
    auto env_ops = env.prof.Operators();
    ASSERT_EQ(slot_ops.size(), env_ops.size());
    for (size_t i = 0; i < slot_ops.size(); ++i) {
      EXPECT_EQ(slot_ops[i]->op_id, env_ops[i]->op_id);
      EXPECT_EQ(slot_ops[i]->kind, env_ops[i]->kind) << "op " << i;
      EXPECT_EQ(slot_ops[i]->rows_out, env_ops[i]->rows_out) << "op " << i;
      EXPECT_EQ(slot_ops[i]->build_rows, env_ops[i]->build_rows) << "op " << i;
      EXPECT_EQ(slot_ops[i]->groups, env_ops[i]->groups) << "op " << i;
    }
  }
}

TEST_F(ProfileTest, SerialAndParallelRowTotalsAgree) {
  // A workload large enough for real morsels. Only the row counters are
  // compared: next_calls and times legitimately differ (each worker pays its
  // own end-of-stream Next(), times accumulate across threads).
  workload::CompanyParams params;
  params.n_departments = 7;
  params.n_employees = 500;
  params.n_managers = 10;
  params.seed = 20260805;
  Database db = workload::MakeCompanyDatabase(params);
  const char* queries[] = {
      "sum(select e.salary from e in Employees where e.age > 30)",
      "select distinct e.dno, sum(e.salary), avg(e.age) "
      "from Employees e group by e.dno",
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments",
  };
  struct Setting {
    int threads;
    size_t morsel;
  };
  const Setting settings[] = {{4, 16}, {8, 7}, {2, 64}};
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    ProfiledRun serial = RunProfiled(db, q);
    for (const Setting& s : settings) {
      SCOPED_TRACE(std::to_string(s.threads) + " threads, morsel " +
                   std::to_string(s.morsel));
      ProfiledRun par = RunProfiled(db, q, s.threads, s.morsel);
      EXPECT_EQ(par.value, serial.value);
      auto sops = serial.prof.Operators();
      auto pops = par.prof.Operators();
      ASSERT_EQ(sops.size(), pops.size());
      for (size_t i = 0; i < sops.size(); ++i) {
        EXPECT_EQ(sops[i]->op_id, pops[i]->op_id);
        EXPECT_EQ(sops[i]->rows_out, pops[i]->rows_out)
            << sops[i]->label << " (op " << sops[i]->op_id << ")";
        EXPECT_EQ(sops[i]->build_rows, pops[i]->build_rows) << sops[i]->label;
        EXPECT_EQ(sops[i]->groups, pops[i]->groups) << sops[i]->label;
      }
      if (par.prof.parallel_mode != "serial") {
        // Worker/morsel accounting is internally consistent.
        EXPECT_LE(par.prof.workers.size(), static_cast<size_t>(s.threads));
        EXPECT_FALSE(par.prof.morsels.empty());
        uint64_t wrows = 0, mrows = 0;
        for (const WorkerStats& w : par.prof.workers) wrows += w.rows;
        for (const MorselStats& m : par.prof.morsels) mrows += m.rows;
        EXPECT_EQ(wrows, mrows);
      }
    }
  }
}

TEST_F(ProfileTest, ProfileJsonRoundTrips) {
  // Parallel run so workers/morsels/mode are populated too.
  workload::CompanyParams params;
  params.n_employees = 200;
  params.seed = 7;
  Database db = workload::MakeCompanyDatabase(params);
  ProfiledRun r = RunProfiled(
      db,
      "select distinct e.dno, sum(e.salary) from Employees e group by e.dno",
      4, 16);
  std::string s1 = ProfileToJson(r.prof);
  QueryProfiler parsed = ProfileFromJson(s1);
  EXPECT_EQ(ProfileToJson(parsed), s1);

  EXPECT_EQ(parsed.threads_used, r.prof.threads_used);
  EXPECT_EQ(parsed.parallel_mode, r.prof.parallel_mode);
  auto want = r.prof.Operators();
  auto got = parsed.Operators();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i]->op_id, want[i]->op_id);
    EXPECT_EQ(got[i]->kind, want[i]->kind);
    EXPECT_EQ(got[i]->label, want[i]->label);
    EXPECT_EQ(got[i]->rows_out, want[i]->rows_out);
    EXPECT_EQ(got[i]->next_calls, want[i]->next_calls);
    EXPECT_EQ(got[i]->open_ns, want[i]->open_ns);  // %.17g is bit-exact
    EXPECT_EQ(got[i]->next_ns, want[i]->next_ns);
  }
  EXPECT_EQ(parsed.workers.size(), r.prof.workers.size());
  EXPECT_EQ(parsed.morsels.size(), r.prof.morsels.size());

  EXPECT_THROW(ProfileFromJson("{\"threads\": }"), ParseError);
  EXPECT_THROW(ProfileFromJson("not json"), ParseError);
}

TEST_F(ProfileTest, DisabledProfilingResultsIdentical) {
  const char* queries[] = {
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments",
      "avg(select e.salary from e in Employees)",
      "for all e in Employees: e.age > 20",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    Value plain = RunOQL(db_, q);  // profiler == nullptr
    EXPECT_EQ(RunProfiled(db_, q).value, plain);
    EXPECT_EQ(RunProfiled(db_, q, 1, 2048, /*slot_frames=*/false).value,
              plain);
    EXPECT_EQ(RunProfiled(db_, q, 4, 2).value, plain);
  }
}

TEST_F(ProfileTest, CompileTraceRecordsStagesAndRules) {
  OptimizerOptions options;
  options.trace = true;
  Optimizer opt(db_.schema(), options);
  const std::string oql =
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments";
  CompiledQuery q = opt.Compile(ParseOQL(oql));
  ASSERT_NE(q.trace, nullptr);

  auto has_stage = [&](const std::string& name) {
    for (const StageTiming& st : q.trace->stages) {
      if (st.stage == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_stage("typecheck-calculus"));
  EXPECT_TRUE(has_stage("normalize"));
  EXPECT_TRUE(has_stage("unnest"));
  EXPECT_TRUE(has_stage("simplify"));
  EXPECT_FALSE(has_stage("physical"));  // not executed yet
  EXPECT_FALSE(q.trace->unnest_steps.empty());

  // The Figure 1 query is already canonical; a comprehension-valued
  // generator domain forces a Figure 4 composition rule to fire.
  CompiledQuery nested = opt.Compile(ParseOQL(
      "select distinct e.name from e in (select x from x in Employees "
      "where x.age > 26)"));
  ASSERT_NE(nested.trace, nullptr);
  ASSERT_FALSE(nested.trace->normalize_rules.empty());
  for (const RuleFiring& rf : nested.trace->normalize_rules) {
    EXPECT_FALSE(rf.rule.empty());
    EXPECT_GE(rf.count, 1) << rf.rule;
  }
  double sum = 0;
  for (const StageTiming& st : q.trace->stages) sum += st.ms;
  EXPECT_DOUBLE_EQ(q.trace->total_ms, sum);

  // Execute appends the physical-selection stage to the shared trace.
  Value v = opt.Execute(q, db_);
  EXPECT_EQ(v, RunOQLBaseline(db_, oql));
  EXPECT_TRUE(has_stage("physical"));

  std::string printed = PrintCompileTrace(*q.trace);
  EXPECT_NE(printed.find("compile trace"), std::string::npos) << printed;
  EXPECT_NE(printed.find("normalize"), std::string::npos) << printed;
  EXPECT_NE(printed.find("unnest steps:"), std::string::npos) << printed;

  std::string json = CompileTraceToJson(*q.trace);
  EXPECT_NE(json.find("\"stages\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"normalize_rules\""), std::string::npos) << json;

  // Tracing off: no trace allocated.
  Optimizer plain(db_.schema(), {});
  EXPECT_EQ(plain.Compile(ParseOQL(oql)).trace, nullptr);
}

TEST_F(ProfileTest, ExplainAnalyzeRendersTreeAndCounters) {
  ProfiledRun r = RunProfiled(
      db_,
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments");
  std::string out = ExplainAnalyze(r.phys, r.prof);
  EXPECT_NE(out.find("EXPLAIN ANALYZE (mode=serial"), std::string::npos)
      << out;
  EXPECT_NE(out.find("Reduce"), std::string::npos) << out;
  EXPECT_NE(out.find("Departments"), std::string::npos) << out;
  EXPECT_NE(out.find("rows=3"), std::string::npos) << out;
  EXPECT_NE(out.find("build=4"), std::string::npos) << out;
  EXPECT_NE(out.find("groups=3"), std::string::npos) << out;
  EXPECT_NE(out.find("time="), std::string::npos) << out;
  EXPECT_EQ(out.find("est="), std::string::npos) << out;  // no catalog given

  Catalog cat = Catalog::FromDatabase(db_);
  std::string with_est = ExplainAnalyze(r.phys, r.prof, &cat);
  EXPECT_NE(with_est.find("est="), std::string::npos) << with_est;

  // Parallel execution adds worker utilization lines.
  workload::CompanyParams params;
  params.n_employees = 300;
  params.seed = 3;
  Database big = workload::MakeCompanyDatabase(params);
  ProfiledRun par = RunProfiled(
      big, "sum(select e.salary from e in Employees where e.age > 30)", 4, 16);
  if (par.prof.parallel_mode != "serial") {
    std::string pout = ExplainAnalyze(par.phys, par.prof);
    EXPECT_NE(pout.find("workers:"), std::string::npos) << pout;
    EXPECT_NE(pout.find("mode=spine-reduce"), std::string::npos) << pout;
  }
}

TEST_F(ProfileTest, PhysicalCardinalityEstimates) {
  Catalog cat = Catalog::FromDatabase(db_);
  OptimizerOptions options;
  Optimizer opt(db_.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments"));
  PhysPtr phys = PlanPhysical(q.simplified, db_, options.physical);
  std::vector<const PhysOp*> ops;
  Preorder(phys, &ops);
  const int dept = FindOpId(ops, PhysKind::kTableScan, "Departments");
  ASSERT_GE(dept, 0);
  // A bare extent scan estimates exactly the extent cardinality.
  PhysPtr dept_scan = std::make_shared<PhysOp>(*ops[dept]);
  EXPECT_DOUBLE_EQ(EstimatePhysicalCardinality(dept_scan, cat), 3.0);
  // The root Reduce is always a single value.
  EXPECT_DOUBLE_EQ(EstimatePhysicalCardinality(phys, cat), 1.0);
}

}  // namespace
}  // namespace ldb
