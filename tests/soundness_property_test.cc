// Property-based suites (parameterized gtest):
//
//  * Soundness (Theorem 2): for a battery of queries over randomized
//    databases of several sizes/seeds, the unnested plan's result equals the
//    nested-loop baseline's.
//  * Completeness (Theorem 1): every compiled plan is fully unnested.
//  * Normalization preserves meaning and is idempotent.
//  * Every stage toggle (normalize/simplify/hash) preserves results.

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

// The query battery over the Company schema, exercising every nesting class:
// flat (none), N (generator nesting), J (existential), A (aggregate),
// JA (correlated aggregate/quantifier), and multi-level nesting.
const char* kCompanyQueries[] = {
    // flat
    "select distinct e.name from e in Employees where e.age > 30",
    "select distinct struct(E: e.name, C: c.name) "
    "from e in Employees, c in e.children",
    // type N: nested generator domain
    "select distinct p.name from p in (select distinct e from e in Employees "
    "where e.salary > 50000)",
    // type J: existential / membership
    "select distinct e.name from e in Employees "
    "where exists c in e.children: c.age < 10",
    "select distinct d.name from d in Departments "
    "where d.dno in (select e.dno from e in Employees)",
    // type A: uncorrelated aggregate
    "select distinct e.name from e in Employees "
    "where e.salary > avg(select u.salary from u in Employees)",
    // type JA: correlated aggregate (the count bug shape)
    "select distinct struct(D: d.name, n: count(select e from e in Employees "
    "where e.dno = d.dno)) from d in Departments",
    "select distinct d.name from d in Departments "
    "where count(select e from e in Employees where e.dno = d.dno) = 0",
    // correlated max in predicate (Section 2 example)
    "select distinct e.name from e in Employees "
    "where e.salary < max(select m.salary from m in Managers "
    "where e.age > m.age)",
    // universal quantification over a subquery (Query E shape)
    "select distinct e.name from e in Employees "
    "where for all c in e.children: c.age > 3",
    // double nesting (Query D)
    "select distinct struct(E: e.name, M: count(select distinct c "
    "from c in e.children "
    "where for all d in e.manager.children: c.age > d.age)) "
    "from e in Employees",
    // group by (Figure 8)
    "select distinct e.dno, avg(e.salary) from Employees e "
    "where e.age > 30 group by e.dno",
    "select distinct e.dno, count(e), max(e.salary) from Employees e "
    "group by e.dno",
    // aggregates of aggregates
    "max(select count(select c from c in e.children) from e in Employees)",
    // nested query in head over a different extent
    "select distinct struct(m: m.name, peers: (select distinct e.name "
    "from e in Employees where e.manager = m)) from m in Managers",
    // bag semantics without nesting
    "select e.dno from e in Employees",
    // bag semantics with safe nesting
    "select struct(n: e.name, k: count(select c from c in e.children)) "
    "from e in Employees",
};

struct PropertyParams {
  int n_departments;
  int n_employees;
  int n_managers;
  uint64_t seed;
};

class CompanySoundnessTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(CompanySoundnessTest, PlanEqualsBaselineAndPlansAreComplete) {
  const PropertyParams& p = GetParam();
  workload::CompanyParams params;
  params.n_departments = p.n_departments;
  params.n_employees = p.n_employees;
  params.n_managers = p.n_managers;
  params.seed = p.seed;
  Database db = workload::MakeCompanyDatabase(params);

  Optimizer opt(db.schema());
  for (const char* q : kCompanyQueries) {
    ExprPtr calculus = ParseOQL(q);
    Value baseline = EvalCalculus(calculus, db);
    // Completeness: when the query is comprehension-rooted, its plan has no
    // comprehension left anywhere.
    ExprPtr normalized = Normalize(calculus);
    if (normalized->kind == ExprKind::kComp) {
      CompiledQuery compiled = opt.Compile(calculus);
      EXPECT_TRUE(IsFullyUnnested(compiled.plan)) << q;
      EXPECT_TRUE(IsFullyUnnested(compiled.simplified)) << q;
    }
    EXPECT_EQ(opt.Run(calculus, db), baseline)
        << "seed=" << p.seed << " query: " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CompanySoundnessTest,
    ::testing::Values(PropertyParams{3, 10, 2, 1}, PropertyParams{5, 40, 4, 2},
                      PropertyParams{8, 120, 6, 3}, PropertyParams{2, 7, 1, 4},
                      PropertyParams{1, 1, 1, 5}, PropertyParams{4, 0, 0, 6},
                      PropertyParams{12, 60, 3, 7}));

class OptionTogglesTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptionTogglesTest, EveryStageToggleIsMeaningPreserving) {
  workload::CompanyParams params;
  params.n_departments = 6;
  params.n_employees = 50;
  params.seed = GetParam();
  Database db = workload::MakeCompanyDatabase(params);

  OptimizerOptions variants[5];
  variants[1].normalize = false;
  variants[2].simplify = false;
  variants[3].physical.use_hash_joins = false;
  variants[4].materialize_paths = true;

  for (const char* q : kCompanyQueries) {
    Value baseline = RunOQLBaseline(db, q);
    for (const OptimizerOptions& o : variants) {
      try {
        EXPECT_EQ(RunOQL(db, q, o), baseline)
            << "query: " << q << " (normalize=" << o.normalize
            << " simplify=" << o.simplify
            << " hash=" << o.physical.use_hash_joins << ")";
      } catch (const UnsupportedError&) {
        // Without normalization, type-N queries keep comprehension-valued
        // generator domains, which the unnester (correctly) rejects — the
        // paper requires canonical form before unnesting.
        EXPECT_FALSE(o.normalize) << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptionTogglesTest,
                         ::testing::Values(11, 12, 13));

class UniversitySoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniversitySoundnessTest, QueryEAgreesAcrossScales) {
  workload::UniversityParams params;
  params.n_students = 30;
  params.n_courses = 8;
  params.seed = GetParam();
  Database db = workload::MakeUniversityDatabase(params);
  const char* q =
      "select distinct s.name from s in Students "
      "where for all c in select c from c in Courses where c.title = 'DB': "
      "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno";
  EXPECT_EQ(RunOQL(db, q), RunOQLBaseline(db, q)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniversitySoundnessTest,
                         ::testing::Range(uint64_t{20}, uint64_t{30}));

class NormalizePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormalizePropertyTest, NormalizationPreservesMeaningAndIsIdempotent) {
  workload::CompanyParams params;
  params.n_departments = 4;
  params.n_employees = 25;
  params.seed = GetParam();
  Database db = workload::MakeCompanyDatabase(params);
  for (const char* q : kCompanyQueries) {
    ExprPtr e = ParseOQL(q);
    ExprPtr n = Normalize(e);
    EXPECT_EQ(EvalCalculus(e, db), EvalCalculus(n, db)) << q;
    EXPECT_TRUE(ExprEqual(n, Normalize(n))) << "not idempotent: " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizePropertyTest,
                         ::testing::Values(31, 32, 33, 34));

class TypePreservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TypePreservationTest, PlanTypeMatchesCalculusType) {
  workload::CompanyParams params;
  params.seed = GetParam();
  Database db = workload::MakeCompanyDatabase(params);
  Optimizer opt(db.schema());
  for (const char* q : kCompanyQueries) {
    ExprPtr calculus = ParseOQL(q);
    if (Normalize(calculus)->kind != ExprKind::kComp) continue;
    TypePtr before = TypeCheck(calculus, db.schema());
    CompiledQuery compiled = opt.Compile(calculus);
    ASSERT_NE(compiled.result_type, nullptr);
    EXPECT_TRUE(Type::Equal(before, compiled.result_type))
        << q << ": " << before->ToString() << " vs "
        << compiled.result_type->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypePreservationTest, ::testing::Values(41));

}  // namespace
}  // namespace ldb
