// Negative-compile probe for the clang thread-safety analysis (DESIGN.md,
// "Locking discipline"). This file MUST NOT compile under
// `clang++ -Werror=thread-safety`: it reads and writes a LDB_GUARDED_BY
// field without holding its mutex. The configure step (tests/CMakeLists.txt)
// try_compiles it and FAILS THE BUILD if it compiles cleanly — proving the
// analysis that the `thread-safety` CI job relies on actually fires, rather
// than silently no-opping (e.g. a macro-definition regression in
// src/core/thread_annotations.h).

#include "src/core/thread_annotations.h"

namespace {

class Account {
 public:
  // BUG (intentional): touches balance_ without acquiring mu_.
  void UnlockedDeposit(long amount) { balance_ += amount; }

 private:
  ldb::Mutex mu_;
  long balance_ LDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.UnlockedDeposit(1);
  return 0;
}
