// Tests for the unnesting algorithm (Figure 7, rules C1-C9) —
// src/core/unnest.*. Covers each rule, the paper's Queries A-E (plan shape
// AND result), and the Theorem 1 completeness property.

#include "src/core/unnest.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/runtime/error.h"
#include "src/runtime/eval_algebra.h"
#include "src/runtime/eval_calculus.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

ExprPtr V(const std::string& n) { return Expr::Var(n); }

class UnnestTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();
  const Schema& schema_ = db_.schema();

  AlgPtr Plan(const ExprPtr& e) { return UnnestComp(Normalize(e), schema_); }

  // Soundness on the spot: baseline result == plan result.
  Value CheckBothWays(const ExprPtr& e) {
    AlgPtr plan = Plan(e);
    EXPECT_TRUE(IsFullyUnnested(plan)) << PrintPlan(plan);
    Value via_plan = ExecutePlan(plan, db_);
    Value via_loops = EvalCalculus(e, db_);
    EXPECT_EQ(via_plan, via_loops) << PrintPlan(plan);
    return via_plan;
  }
};

TEST_F(UnnestTest, C1C2SimpleScanReduce) {
  // set{ e.name | e <- Employees, e.age > 35 }: selection lands on the scan.
  ExprPtr q = Expr::Comp(
      MonoidKind::kSet, Expr::Proj(V("e"), "name"),
      {Qualifier::Generator("e", V("Employees")),
       Qualifier::Filter(Expr::Bin(BinOpKind::kGt, Expr::Proj(V("e"), "age"),
                                   Expr::Int(35)))});
  AlgPtr plan = Plan(q);
  EXPECT_EQ(PlanShape(plan), "Reduce(Scan(Employees))");
  EXPECT_FALSE(plan->left->pred->IsTrueLiteral());  // pushed to the scan
  EXPECT_EQ(CheckBothWays(q),
            Value::Set({Value::Str("Bob"), Value::Str("Dee")}));
}

TEST_F(UnnestTest, C3CrossAndEquiJoin) {
  // Join predicate is split: d-only on the scan, join part on the join (C3).
  ExprPtr q = Expr::Comp(
      MonoidKind::kSet,
      Expr::Record({{"e", Expr::Proj(V("e"), "name")},
                    {"d", Expr::Proj(V("d"), "name")}}),
      {Qualifier::Generator("e", V("Employees")),
       Qualifier::Generator("d", V("Departments")),
       Qualifier::Filter(Expr::Eq(Expr::Proj(V("e"), "dno"),
                                  Expr::Proj(V("d"), "dno"))),
       Qualifier::Filter(Expr::Bin(BinOpKind::kGt, Expr::Proj(V("d"), "budget"),
                                   Expr::Real(500)))});
  AlgPtr plan = Plan(q);
  EXPECT_EQ(PlanShape(plan), "Reduce(Join(Scan(Employees),Scan(Departments)))");
  // d.budget > 500 must be on the Departments scan, not the join.
  EXPECT_FALSE(plan->left->right->pred->IsTrueLiteral());
  CheckBothWays(q);
}

TEST_F(UnnestTest, C4Unnest) {
  ExprPtr q = Expr::Comp(MonoidKind::kSet, Expr::Proj(V("c"), "name"),
                         {Qualifier::Generator("e", V("Employees")),
                          Qualifier::Generator("c", Expr::Proj(V("e"), "children"))});
  AlgPtr plan = Plan(q);
  EXPECT_EQ(PlanShape(plan), "Reduce(Unnest(Scan(Employees)))");
  CheckBothWays(q);
}

TEST_F(UnnestTest, QueryA_Figure1A) {
  ExprPtr q = ParseOQL(
      "select distinct struct(E: e.name, C: c.name) "
      "from e in Employees, c in e.children");
  AlgPtr plan = Plan(q);
  EXPECT_EQ(PlanShape(plan), "Reduce(Unnest(Scan(Employees)))");
  Value r = CheckBothWays(q);
  // (Ann,Al), (Ann,Amy), (Cal,Cam), (Dee,Dan); Bob has no children.
  EXPECT_EQ(r.AsElems().size(), 4u);
}

TEST_F(UnnestTest, QueryB_Figure1B) {
  ExprPtr q = ParseOQL(
      "select distinct struct(D: d.name, E: (select distinct e.name "
      "from e in Employees where e.dno = d.dno)) from d in Departments");
  AlgPtr plan = Plan(q);
  EXPECT_EQ(PlanShape(plan),
            "Reduce(Nest(OuterJoin(Scan(Departments),Scan(Employees))))");
  // The nest groups by d and zero-converts e-nulls.
  const AlgOp& nest = *plan->left;
  ASSERT_EQ(nest.group_by.size(), 1u);
  EXPECT_EQ(nest.group_by[0].first, "d");
  EXPECT_EQ(nest.null_vars, (std::vector<std::string>{"e"}));
  Value r = CheckBothWays(q);
  // The Empty department appears with the empty set, not dropped.
  bool found_empty = false;
  for (const Value& row : r.AsElems()) {
    if (row.Field("D") == Value::Str("Empty")) {
      found_empty = true;
      EXPECT_EQ(row.Field("E"), Value::Set({}));
    }
  }
  EXPECT_TRUE(found_empty);
}

TEST_F(UnnestTest, QueryC_Figure1C_SetContainment) {
  // A subset-of B via all{ some{ a = b | b <- B } | a <- A }, expressed over
  // employee names vs. department names (false) and over itself (true).
  auto subset_query = [](const std::string& A, const std::string& B) {
    return Expr::Comp(
        MonoidKind::kAll,
        Expr::Comp(MonoidKind::kSome,
                   Expr::Eq(Expr::Proj(V("a"), "dno"), Expr::Proj(V("b"), "dno")),
                   {Qualifier::Generator("b", V(B))}),
        {Qualifier::Generator("a", V(A))});
  };
  ExprPtr q = subset_query("Employees", "Departments");
  AlgPtr plan = Plan(q);
  EXPECT_EQ(PlanShape(plan),
            "Reduce(Nest(OuterJoin(Scan(Employees),Scan(Departments))))");
  EXPECT_EQ(CheckBothWays(q), Value::Bool(true));  // dnos 0,1 both exist

  // Reverse: department 2 has no employee.
  ExprPtr q2 = subset_query("Departments", "Employees");
  EXPECT_EQ(CheckBothWays(q2), Value::Bool(false));
}

TEST_F(UnnestTest, QueryD_Figure1D) {
  ExprPtr q = ParseOQL(
      "select distinct struct(E: e.name, M: count(select distinct c "
      "from c in e.children "
      "where for all d in e.manager.children: c.age > d.age)) "
      "from e in Employees");
  AlgPtr plan = Plan(q);
  // Figure 1.D: two outer-unnests, two nests.
  EXPECT_EQ(
      PlanShape(plan),
      "Reduce(Nest(Nest(OuterUnnest(OuterUnnest(Scan(Employees))))))");
  Value r = CheckBothWays(q);
  // Oracle: Meg's kid Pat is 20.
  //   Ann (mgr Meg): kids Al(5), Amy(25) -> only Amy > 20 -> M=1
  //   Bob (mgr Mo, no kids of Mo): no children -> M=0
  //   Cal (no mgr): kid Cam; manager NULL -> all{} over NULL domain = true
  //       -> Cam counts -> M=1
  //   Dee (mgr Meg): kid Dan(10) -> 10 > 20 false -> M=0
  Value expected = Value::Set({
      Value::Tuple({{"E", Value::Str("Ann")}, {"M", Value::Int(1)}}),
      Value::Tuple({{"E", Value::Str("Bob")}, {"M", Value::Int(0)}}),
      Value::Tuple({{"E", Value::Str("Cal")}, {"M", Value::Int(1)}}),
      Value::Tuple({{"E", Value::Str("Dee")}, {"M", Value::Int(0)}}),
  });
  EXPECT_EQ(r, expected);
}

TEST_F(UnnestTest, QueryE_Figure1E) {
  Database uni = testing::TinyUniversity();
  ExprPtr q = ParseOQL(
      "select distinct s.name from s in Students "
      "where for all c in select c from c in Courses where c.title = 'DB': "
      "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno");
  AlgPtr plan = UnnestComp(Normalize(q), uni.schema());
  EXPECT_TRUE(IsFullyUnnested(plan));
  // Figure 1.E / Figure 2: two outer-joins then two nests.
  EXPECT_EQ(PlanShape(plan),
            "Reduce(Nest(Nest(OuterJoin(OuterJoin(Scan(Students),"
            "Scan(Courses)),Scan(Transcripts)))))");
  // "Which nulls to convert when" (Section 1.2): the inner nest converts
  // null t's (to false), the outer nest converts null c's (to true).
  const AlgOp& outer_nest = *plan->left;
  const AlgOp& inner_nest = *outer_nest.left;
  EXPECT_EQ(outer_nest.monoid, MonoidKind::kAll);
  ASSERT_EQ(outer_nest.null_vars.size(), 1u);
  // Normalization alpha-renames spliced binders, so compare the stem.
  EXPECT_EQ(outer_nest.null_vars[0].substr(0, 1), "c");
  EXPECT_EQ(inner_nest.monoid, MonoidKind::kSome);
  ASSERT_EQ(inner_nest.null_vars.size(), 1u);
  EXPECT_EQ(inner_nest.null_vars[0].substr(0, 1), "t");

  Value via_plan = ExecutePlan(plan, uni);
  Value via_loops = EvalCalculus(q, uni);
  EXPECT_EQ(via_plan, via_loops);
  EXPECT_EQ(via_plan, Value::Set({Value::Str("s0"), Value::Str("s3")}));
}

TEST_F(UnnestTest, SectionTwoNestedAggregateInPredicate) {
  // e.salary > max{ m.salary | m <- Managers, e.age > m.age } — a type-JA
  // nesting in the predicate, spliced by C8.
  ExprPtr q = ParseOQL(
      "select distinct e.name from e in Employees "
      "where e.salary > max(select m.salary from m in Managers "
      "                     where e.age > m.age)");
  AlgPtr plan = Plan(q);
  EXPECT_EQ(PlanShape(plan),
            "Reduce(Nest(OuterJoin(Scan(Employees),Scan(Managers))))");
  // Oracle: Meg(50, 200k), Mo(40, 150k).
  //   Ann(30,100k): no younger manager -> max over {} = NULL -> comparison
  //                 with NULL false -> out
  //   Bob(40,80k): {} -> out       Cal(25,60k): {} -> out
  //   Dee(55,120k): max(200k,150k)=200k; 120k > 200k false -> out
  EXPECT_EQ(CheckBothWays(q), Value::Set({}));

  // Flip the comparison so someone qualifies: Dee's salary 120k < 200k.
  ExprPtr q2 = ParseOQL(
      "select distinct e.name from e in Employees "
      "where e.salary < max(select m.salary from m in Managers "
      "                     where e.age > m.age)");
  EXPECT_EQ(CheckBothWays(q2), Value::Set({Value::Str("Dee")}));
}

TEST_F(UnnestTest, NestedQueryInHeadRecordField) {
  // Aggregates in the head are spliced by C9.
  ExprPtr q = ParseOQL(
      "select distinct struct(n: d.name, total: sum(select e.salary "
      "from e in Employees where e.dno = d.dno)) from d in Departments");
  AlgPtr plan = Plan(q);
  EXPECT_EQ(PlanShape(plan),
            "Reduce(Nest(OuterJoin(Scan(Departments),Scan(Employees))))");
  Value r = CheckBothWays(q);
  // Empty department: sum over empty group = 0 (monoid zero), not dropped.
  bool found = false;
  for (const Value& row : r.AsElems()) {
    if (row.Field("n") == Value::Str("Empty")) {
      found = true;
      EXPECT_EQ(row.Field("total"), Value::Int(0));
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(UnnestTest, TwoIndependentNestedQueries) {
  // Two subqueries in one head: both spliced, two nests.
  ExprPtr q = ParseOQL(
      "select distinct struct(n: d.name,"
      " cnt: count(select e from e in Employees where e.dno = d.dno),"
      " top: max(select e.salary from e in Employees where e.dno = d.dno)) "
      "from d in Departments");
  AlgPtr plan = Plan(q);
  EXPECT_TRUE(IsFullyUnnested(plan));
  EXPECT_EQ(PlanShape(plan),
            "Reduce(Nest(OuterJoin(Nest(OuterJoin(Scan(Departments),"
            "Scan(Employees))),Scan(Employees))))");
  Value r = CheckBothWays(q);
  for (const Value& row : r.AsElems()) {
    if (row.Field("n") == Value::Str("Empty")) {
      EXPECT_EQ(row.Field("cnt"), Value::Int(0));
      EXPECT_TRUE(row.Field("top").is_null());  // max of empty = NULL
    }
    if (row.Field("n") == Value::Str("Sales")) {
      EXPECT_EQ(row.Field("cnt"), Value::Int(2));
      EXPECT_EQ(row.Field("top"), Value::Real(100000));
    }
  }
}

TEST_F(UnnestTest, CorrelationOnNonFirstGenerator) {
  // The nested query correlates with the SECOND outer generator; C8 must
  // wait until c is available before splicing.
  ExprPtr q = ParseOQL(
      "select distinct struct(k: c.name, n: count(select p from p in Persons "
      "where p.age < c.age)) "
      "from e in Employees, c in e.children");
  AlgPtr plan = Plan(q);
  EXPECT_TRUE(IsFullyUnnested(plan));
  CheckBothWays(q);
}

TEST_F(UnnestTest, GeneratorlessComprehension) {
  ExprPtr q = Expr::Comp(MonoidKind::kSum, Expr::Int(5), {});
  // Normalizes to the bare literal; wrap so it stays a comprehension.
  ExprPtr q2 = Expr::Comp(MonoidKind::kSet, Expr::Int(5), {});
  AlgPtr plan = UnnestComp(q2, schema_);
  EXPECT_EQ(PlanShape(plan), "Reduce(Unit)");
  EXPECT_EQ(ExecutePlan(plan, db_), Value::Set({Value::Int(5)}));
  (void)q;
}

TEST_F(UnnestTest, ListComprehensionRejected) {
  ExprPtr q = Expr::Comp(MonoidKind::kList, V("e"),
                         {Qualifier::Generator("e", V("Employees"))});
  EXPECT_THROW(UnnestComp(q, schema_), UnsupportedError);
}

TEST_F(UnnestTest, NonCanonicalDomainRejected) {
  // Generator over a literal collection is not a path.
  ExprPtr q = Expr::Comp(
      MonoidKind::kSet, V("x"),
      {Qualifier::Generator(
          "x", Expr::Lit(Value::Set({Value::Int(1), Value::Int(2)})))});
  EXPECT_THROW(UnnestComp(q, schema_), UnsupportedError);
}

TEST_F(UnnestTest, UnknownExtentRejected) {
  ExprPtr q = Expr::Comp(MonoidKind::kSet, V("x"),
                         {Qualifier::Generator("x", V("Nowhere"))});
  EXPECT_THROW(UnnestComp(q, schema_), TypeError);
}

TEST_F(UnnestTest, NotAComprehensionRejected) {
  EXPECT_THROW(UnnestComp(Expr::Int(1), schema_), UnsupportedError);
}

TEST_F(UnnestTest, TripleNesting) {
  // Three levels: for each department, for each employee count children
  // older than every child of the employee's manager... synthesized as
  // nested aggregates; completeness must hold.
  ExprPtr q = ParseOQL(
      "select distinct struct(d: d.name, "
      "  m: max(select count(select c from c in e.children) "
      "         from e in Employees where e.dno = d.dno)) "
      "from d in Departments");
  AlgPtr plan = Plan(q);
  EXPECT_TRUE(IsFullyUnnested(plan));
  Value r = CheckBothWays(q);
  for (const Value& row : r.AsElems()) {
    if (row.Field("d") == Value::Str("Sales")) {
      EXPECT_EQ(row.Field("m"), Value::Int(2));  // Ann has 2 kids, Bob 0
    }
  }
}

TEST_F(UnnestTest, UncorrelatedSubqueryOverEmptySelectionYieldsZeroRow) {
  // Regression (found by random_query_test): an UNCORRELATED subquery is
  // spliced before any outer generator, so its nest has no group-by keys.
  // When its input filters down to nothing, the nest must still emit one
  // row carrying the monoid zero — all{ ... | m <- Managers, false-ish } is
  // vacuously true, so every department qualifies.
  ExprPtr vacuous_all = Expr::Comp(
      MonoidKind::kAll,
      Expr::Bin(BinOpKind::kGt, Expr::Proj(V("m"), "age"), Expr::Int(0)),
      {Qualifier::Generator("m", V("Managers")),
       Qualifier::Filter(Expr::Bin(BinOpKind::kLt, Expr::Proj(V("m"), "age"),
                                   Expr::Proj(V("m"), "age")))});
  ExprPtr q = Expr::Comp(MonoidKind::kSet, Expr::Proj(V("d"), "name"),
                         {Qualifier::Generator("d", V("Departments")),
                          Qualifier::Filter(vacuous_all)});
  Value r = CheckBothWays(q);
  EXPECT_EQ(r.AsElems().size(), 3u);  // every department

  // And the dual: an uncorrelated some over nothing is false.
  ExprPtr vacuous_some = Expr::Comp(
      MonoidKind::kSome, Expr::True(),
      {Qualifier::Generator("m", V("Managers")),
       Qualifier::Filter(Expr::Bin(BinOpKind::kLt, Expr::Proj(V("m"), "age"),
                                   Expr::Proj(V("m"), "age")))});
  ExprPtr q2 = Expr::Comp(MonoidKind::kSet, Expr::Proj(V("d"), "name"),
                          {Qualifier::Generator("d", V("Departments")),
                           Qualifier::Filter(vacuous_some)});
  EXPECT_EQ(CheckBothWays(q2), Value::Set({}));
}

TEST_F(UnnestTest, QuantifierOverEmptyDomainIsZero) {
  // all over an empty domain is true; some is false (zero elements).
  ExprPtr q = ParseOQL(
      "select distinct e.name from e in Employees "
      "where for all c in e.children: c.age > 100");
  // Bob has no children -> vacuously true.
  Value r = CheckBothWays(q);
  EXPECT_EQ(r, Value::Set({Value::Str("Bob")}));

  ExprPtr q2 = ParseOQL(
      "select distinct e.name from e in Employees "
      "where exists c in e.children: c.age > 100");
  EXPECT_EQ(CheckBothWays(q2), Value::Set({}));
}

}  // namespace
}  // namespace ldb
