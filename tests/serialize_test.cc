// Tests for database serialization (src/runtime/serialize.*): round-trips,
// query equivalence across reloads, and malformed-input rejection.

#include "src/runtime/serialize.h"

#include <gtest/gtest.h>

#include "src/lambdadb.h"
#include "src/workload/oo7.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

TEST(SerializeTest, TinyCompanyRoundTrips) {
  Database db = testing::TinyCompany();
  std::string dump = DumpDatabaseToString(db);
  Database loaded = LoadDatabaseFromString(dump);
  EXPECT_EQ(loaded.ObjectCount(), db.ObjectCount());
  // Dumping again yields the identical bytes (stable oids and ordering).
  EXPECT_EQ(DumpDatabaseToString(loaded), dump);
}

TEST(SerializeTest, QueriesAgreeAcrossReload) {
  Database db = testing::TinyCompany();
  Database loaded = LoadDatabaseFromString(DumpDatabaseToString(db));
  const char* queries[] = {
      "select distinct struct(D: d.name, E: (select distinct e.name "
      "from e in Employees where e.dno = d.dno)) from d in Departments",
      "select distinct e.manager.name from e in Employees",
      "select distinct struct(E: e.name, k: count(e.children)) "
      "from e in Employees",
  };
  for (const char* q : queries) {
    EXPECT_EQ(RunOQL(loaded, q), RunOQL(db, q)) << q;
  }
}

TEST(SerializeTest, GeneratedWorkloadsRoundTrip) {
  workload::CompanyParams p;
  p.n_employees = 200;
  Database db = workload::MakeCompanyDatabase(p);
  Database loaded = LoadDatabaseFromString(DumpDatabaseToString(db));
  EXPECT_EQ(RunOQL(loaded, "count(select e from e in Employees)"),
            Value::Int(200));
  EXPECT_EQ(RunOQL(loaded, "sum(select e.salary from e in Employees)"),
            RunOQL(db, "sum(select e.salary from e in Employees)"));

  Database oo7 = workload::MakeOO7Database({});
  Database oo7_loaded = LoadDatabaseFromString(DumpDatabaseToString(oo7));
  EXPECT_EQ(oo7_loaded.ObjectCount(), oo7.ObjectCount());
}

TEST(SerializeTest, SpecialValuesSurvive) {
  Schema schema;
  schema.AddClass(ClassDecl{
      "T",
      "Ts",
      {{"s", Type::Str()},
       {"r", Type::Real()},
       {"b", Type::Bool()},
       {"maybe", Type::Int()},
       {"bag", Type::Bag(Type::Str())},
       {"seq", Type::List(Type::Int())}}});
  Database db(schema);
  db.Insert("T", Value::Tuple({
                     {"s", Value::Str("line\nbreak 7:colon \"quote\"")},
                     {"r", Value::Real(0.1)},
                     {"b", Value::Bool(true)},
                     {"maybe", Value::Null()},
                     {"bag", Value::Bag({Value::Str("a"), Value::Str("a")})},
                     {"seq", Value::List({Value::Int(2), Value::Int(1)})},
                 }));
  Database loaded = LoadDatabaseFromString(DumpDatabaseToString(db));
  const Value& obj = loaded.Deref(loaded.Extent("Ts")[0].AsRef());
  EXPECT_EQ(obj.Field("s"), Value::Str("line\nbreak 7:colon \"quote\""));
  EXPECT_EQ(obj.Field("r"), Value::Real(0.1));  // %.17g round-trips doubles
  EXPECT_TRUE(obj.Field("maybe").is_null());
  EXPECT_EQ(obj.Field("bag").AsElems().size(), 2u);
  EXPECT_EQ(obj.Field("seq"), Value::List({Value::Int(2), Value::Int(1)}));
}

TEST(SerializeTest, CrossClassRefsResolveAfterLoad) {
  Database db = testing::TinyCompany();
  Database loaded = LoadDatabaseFromString(DumpDatabaseToString(db));
  // Ann's manager is Meg — navigation must still resolve.
  EXPECT_EQ(RunOQL(loaded,
                   "select distinct e.manager.name from e in Employees "
                   "where e.name = 'Ann'"),
            Value::Set({Value::Str("Meg")}));
}

TEST(SerializeTest, MalformedInputsRejected) {
  EXPECT_THROW(LoadDatabaseFromString(""), ParseError);
  EXPECT_THROW(LoadDatabaseFromString("wrong header"), ParseError);
  EXPECT_THROW(LoadDatabaseFromString("lambdadb-dump 1\nclass"), ParseError);
  EXPECT_THROW(LoadDatabaseFromString("lambdadb-dump 1\nnonsense\n"), ParseError);
  // Truncated object section.
  Database db = testing::TinyCompany();
  std::string dump = DumpDatabaseToString(db);
  EXPECT_THROW(LoadDatabaseFromString(dump.substr(0, dump.size() / 2)),
               ParseError);
}

TEST(SerializeTest, IndexContentsAreRebuiltNotSerialized) {
  // Only the index DECLARATION travels in the dump; loading records it as a
  // pending spec without building (hash tables are derived state).
  Database db = testing::TinyCompany();
  db.BuildIndex("Employees", "dno");
  std::string dump = DumpDatabaseToString(db);
  EXPECT_NE(dump.find("index Employees dno"), std::string::npos) << dump;
  Database loaded = LoadDatabaseFromString(dump);
  EXPECT_FALSE(loaded.HasIndex("Employees", "dno"));
  loaded.BuildIndex("Employees", "dno");
  EXPECT_EQ(loaded.IndexLookup("Employees", "dno", Value::Int(0)).size(), 2u);
}

TEST(SerializeTest, DeclaredIndexesSurviveRoundTripViaRebuild) {
  Database db = testing::TinyCompany();
  db.BuildIndex("Employees", "dno");
  db.BuildIndex("Departments", "dno");
  Database loaded = LoadDatabaseFromString(DumpDatabaseToString(db));
  ASSERT_EQ(loaded.IndexSpecs().size(), 2u);
  RebuildIndexes(loaded);
  EXPECT_TRUE(loaded.HasIndex("Employees", "dno"));
  EXPECT_TRUE(loaded.HasIndex("Departments", "dno"));
  EXPECT_EQ(loaded.IndexLookup("Employees", "dno", Value::Int(0)).size(), 2u);
  // Dumping the loaded database preserves the declarations again.
  std::string redump = DumpDatabaseToString(loaded);
  EXPECT_NE(redump.find("index Departments dno"), std::string::npos);
  EXPECT_NE(redump.find("index Employees dno"), std::string::npos);
}

}  // namespace
}  // namespace ldb
