// Tests for the OQL lexer (src/oql/lexer.*).

#include "src/oql/lexer.h"

#include <gtest/gtest.h>

#include "src/runtime/error.h"

namespace ldb::oql {
namespace {

TEST(LexerTest, IdentifiersAndKeywordsCaseInsensitive) {
  auto toks = Lex("SELECT distinct Employees e");
  ASSERT_EQ(toks.size(), 5u);  // 4 idents + end
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].lower, "select");
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[2].text, "Employees");
  EXPECT_EQ(toks.back().kind, TokKind::kEnd);
}

TEST(LexerTest, Numbers) {
  auto toks = Lex("42 3.5 1e3 2.5e-1 7");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokKind::kReal);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 3.5);
  EXPECT_EQ(toks[2].kind, TokKind::kReal);
  EXPECT_DOUBLE_EQ(toks[2].real_value, 1000.0);
  EXPECT_EQ(toks[3].kind, TokKind::kReal);
  EXPECT_DOUBLE_EQ(toks[3].real_value, 0.25);
  EXPECT_EQ(toks[4].kind, TokKind::kInt);
}

TEST(LexerTest, Strings) {
  auto toks = Lex("'DB' \"Arlington\"");
  EXPECT_EQ(toks[0].kind, TokKind::kString);
  EXPECT_EQ(toks[0].text, "DB");
  EXPECT_EQ(toks[1].text, "Arlington");
}

TEST(LexerTest, StringEscapes) {
  auto toks = Lex("'a\\'b'");
  EXPECT_EQ(toks[0].text, "a'b");
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(Lex("'oops"), ParseError);
}

TEST(LexerTest, SymbolsIncludingTwoChar) {
  auto toks = Lex("<= >= != <> = < > ( ) . , : * + - /");
  EXPECT_EQ(toks[0].text, "<=");
  EXPECT_EQ(toks[1].text, ">=");
  EXPECT_EQ(toks[2].text, "!=");
  EXPECT_EQ(toks[3].text, "!=");  // <> normalizes to !=
  EXPECT_EQ(toks[4].text, "=");
  EXPECT_EQ(toks[5].text, "<");
}

TEST(LexerTest, PathTokens) {
  auto toks = Lex("e.manager.children");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[1].text, ".");
  EXPECT_EQ(toks[4].text, "children");
}

TEST(LexerTest, LineComments) {
  auto toks = Lex("a -- comment here\n b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, BadCharacterThrows) {
  EXPECT_THROW(Lex("a @ b"), ParseError);
}

TEST(LexerTest, OffsetsForDiagnostics) {
  auto toks = Lex("ab  cd");
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 4u);
}

}  // namespace
}  // namespace ldb::oql
