// OO7-style workload tests: the classic OO7 query patterns expressed in OQL
// and validated against the nested-loop baseline on the simplified design
// hierarchy (src/workload/oo7.*).

#include "src/workload/oo7.h"

#include <gtest/gtest.h>

#include "src/lambdadb.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

class OO7Test : public ::testing::Test {
 protected:
  Database db_ = workload::MakeOO7Database({});
};

TEST_F(OO7Test, GeneratorStructure) {
  workload::OO7Params p;
  p.n_modules = 3;
  p.assemblies_per_module = 4;
  p.n_composite_parts = 10;
  p.parts_per_composite = 5;
  Database db = workload::MakeOO7Database(p);
  EXPECT_EQ(db.Extent("Modules").size(), 3u);
  EXPECT_EQ(db.Extent("BaseAssemblies").size(), 12u);
  EXPECT_EQ(db.Extent("CompositeParts").size(), 10u);
  EXPECT_EQ(db.Extent("AtomicParts").size(), 50u);
  EXPECT_EQ(db.Extent("Documents").size(), 10u);
}

TEST_F(OO7Test, Q1ExactMatchLookup) {
  // OO7 Q1: lookup atomic parts by id (with an index, an access-path pick).
  db_.BuildIndex("AtomicParts", "id");
  Value r = testing::RunBothWays(
      db_, "select distinct p.x from p in AtomicParts where p.id = 7");
  EXPECT_EQ(r.AsElems().size(), 1u);
}

TEST_F(OO7Test, Q3DateRangeScan) {
  // OO7 Q3: atomic parts in a build-date range.
  Value count = testing::RunBothWays(
      db_, "count(select p from p in AtomicParts "
           "where p.build_date >= 1000 and p.build_date < 2000)");
  EXPECT_GT(count.AsInt(), 0);
  EXPECT_LT(count.AsInt(), 1000);
}

TEST_F(OO7Test, Q5NewerComponents) {
  // OO7 Q5: base assemblies that use a composite part with a MORE RECENT
  // build date than their own — an existential over a nested set.
  Value r = testing::RunBothWays(
      db_,
      "select distinct b.id from b in BaseAssemblies "
      "where exists c in b.components: c.build_date > b.build_date");
  EXPECT_GT(r.AsElems().size(), 0u);
  EXPECT_LT(r.AsElems().size(), db_.Extent("BaseAssemblies").size() + 1);
}

TEST_F(OO7Test, Q5Complement) {
  // Assemblies all of whose components are older — the ∀ dual; the two
  // answers must partition the extent.
  Value newer = RunOQL(db_,
      "count(select b from b in BaseAssemblies "
      "where exists c in b.components: c.build_date > b.build_date)");
  Value all_older = RunOQL(db_,
      "count(select b from b in BaseAssemblies "
      "where for all c in b.components: c.build_date <= b.build_date)");
  EXPECT_EQ(newer.AsInt() + all_older.AsInt(),
            static_cast<int64_t>(db_.Extent("BaseAssemblies").size()));
}

TEST_F(OO7Test, Q8DocumentJoin) {
  // OO7 Q8-ish: pair composite parts with their documentation titles via
  // navigation; materialization can turn it into a join.
  const char* q =
      "select distinct struct(id: c.id, doc: c.documentation.title) "
      "from c in CompositeParts";
  Value r = testing::RunBothWays(db_, q);
  EXPECT_EQ(r.AsElems().size(), db_.Extent("CompositeParts").size());
  OptimizerOptions mat;
  mat.materialize_paths = true;
  EXPECT_EQ(RunOQL(db_, q, mat), r);
}

TEST_F(OO7Test, TraversalWithAggregates) {
  // T-style traversal: per module, count atomic parts reachable through
  // assemblies and components (with multiplicity, since components are
  // shared between assemblies).
  const char* q =
      "select distinct struct(m: m.id, parts: count(select p "
      "from a in m.assemblies, c in a.components, p in c.parts)) "
      "from m in Modules";
  Value r = testing::RunBothWays(db_, q);
  ASSERT_EQ(r.AsElems().size(), db_.Extent("Modules").size());
  for (const Value& row : r.AsElems()) {
    // 5 assemblies x 3 components x 20 parts, minus duplicate-component
    // collapses inside each assembly's component SET.
    EXPECT_GT(row.Field("parts").AsInt(), 0);
    EXPECT_LE(row.Field("parts").AsInt(), 5 * 3 * 20);
  }
}

TEST_F(OO7Test, NestedAggregateOverSharedComponents) {
  // For each composite part, how many assemblies use it (reverse navigation
  // via a correlated membership test).
  const char* q =
      "select distinct struct(id: c.id, uses: count(select b from b in "
      "BaseAssemblies where c in b.components)) from c in CompositeParts";
  Value r = testing::RunBothWays(db_, q);
  int64_t total_uses = 0;
  for (const Value& row : r.AsElems()) total_uses += row.Field("uses").AsInt();
  // Each assembly contributes |components-set| uses (set semantics dedupes
  // repeated picks inside one assembly).
  int64_t expected = 0;
  for (const Value& bref : db_.Extent("BaseAssemblies")) {
    expected += static_cast<int64_t>(
        db_.Deref(bref.AsRef()).Field("components").AsElems().size());
  }
  EXPECT_EQ(total_uses, expected);
}

}  // namespace
}  // namespace ldb
