// Tests for the unnesting derivation trace: the rule sequence for QUERY D
// must match the paper's Section 4 worked example.

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/unnest.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

std::vector<std::string> Rules(const std::vector<UnnestStep>& steps) {
  std::vector<std::string> out;
  for (const UnnestStep& s : steps) out.push_back(s.rule);
  return out;
}

class UnnestTraceTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();

  std::vector<UnnestStep> TraceOf(const std::string& oql) {
    std::vector<UnnestStep> steps;
    UnnestCompTraced(Normalize(ParseOQL(oql)), db_.schema(), &steps);
    return steps;
  }
};

TEST_F(UnnestTraceTest, QueryDFollowsThePaperDerivation) {
  // Section 4 compiles QUERY D as: (C1) scan Employees; then the head count
  // splices via (C9), whose compilation outer-unnests e.children (C7), then
  // splices the universal quantifier via (C8), whose compilation
  // outer-unnests e.manager.children (C7) and nests with ∧ (C5); the count
  // nests with + (C5); finally the outermost reduce (C2).
  std::vector<UnnestStep> steps = TraceOf(
      "select distinct struct(E: e.name, M: count(select distinct c "
      "from c in e.children "
      "where for all d in e.manager.children: c.age > d.age)) "
      "from e in Employees");
  EXPECT_EQ(Rules(steps),
            (std::vector<std::string>{"C1", "C7", "C7", "C5", "C8", "C5", "C9",
                                      "C2"}));
  // The C8 step names the spliced quantifier; the C9 step the count.
  EXPECT_NE(steps[4].description.find("all-comprehension"), std::string::npos);
  EXPECT_NE(steps[6].description.find("sum-comprehension"), std::string::npos);
}

TEST_F(UnnestTraceTest, QueryBDerivation) {
  std::vector<UnnestStep> steps = TraceOf(
      "select distinct struct(D: d.name, E: (select distinct e.name "
      "from e in Employees where e.dno = d.dno)) from d in Departments");
  // C1 scan Departments; the head set-comp splices (C9) after compiling to
  // an outer-join (C6) + nest (C5); the root reduces (C2).
  EXPECT_EQ(Rules(steps),
            (std::vector<std::string>{"C1", "C6", "C5", "C9", "C2"}));
}

TEST_F(UnnestTraceTest, FlatQueryUsesOnlyC1C4C2) {
  std::vector<UnnestStep> steps = TraceOf(
      "select distinct struct(E: e.name, C: c.name) "
      "from e in Employees, c in e.children");
  EXPECT_EQ(Rules(steps), (std::vector<std::string>{"C1", "C4", "C2"}));
}

TEST_F(UnnestTraceTest, PredicateSubquerySplicesViaC8) {
  std::vector<UnnestStep> steps = TraceOf(
      "select distinct e.name from e in Employees "
      "where e.salary < max(select m.salary from m in Managers "
      "where e.age > m.age)");
  EXPECT_EQ(Rules(steps),
            (std::vector<std::string>{"C1", "C6", "C5", "C8", "C2"}));
}

TEST_F(UnnestTraceTest, UntracedEntryPointIsEquivalent) {
  ExprPtr q = Normalize(ParseOQL(
      "select distinct e.name from e in Employees where e.age > 35"));
  std::vector<UnnestStep> steps;
  EXPECT_TRUE(AlgEqual(UnnestComp(q, db_.schema()),
                       UnnestCompTraced(q, db_.schema(), &steps)));
  EXPECT_FALSE(steps.empty());
}

}  // namespace
}  // namespace ldb
