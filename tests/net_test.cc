// Tests for the network front end (src/net/): the wire codec byte-for-byte
// (framing, torn reads, hostile lengths, fuzzed input) and the server
// end-to-end over real sockets (concurrent clients, paging, cancellation,
// deadlines, admission backpressure, graceful drain).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/runtime/serialize.h"
#include "src/service/query_service.h"
#include "src/workload/company.h"

namespace ldb {
namespace {

using net::BindRequest;
using net::ErrorCode;
using net::ErrorReply;
using net::ExecReply;
using net::ExecuteRequest;
using net::FetchRequest;
using net::Frame;
using net::FrameDecoder;
using net::HelloReply;
using net::HelloRequest;
using net::Opcode;
using net::PrepareReply;
using net::PrepareRequest;
using net::RowsReply;
using net::WireError;

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(NetWireTest, FrameRoundTripEveryMessageType) {
  HelloRequest hello;
  hello.version = 1;
  hello.deadline_ms = 2500;
  hello.memory_budget_bytes = 1u << 30;
  hello.n_threads = 3;
  hello.morsel_size = 512;
  hello.use_slot_frames = 0;

  HelloReply hello_ok;
  hello_ok.version = 1;
  hello_ok.session_id = 42;
  hello_ok.server_info = "test server";

  PrepareRequest prep;
  prep.oql = "select e from e in Employees where e.dno = $1";
  PrepareReply prep_ok;
  prep_ok.handle = 7;

  BindRequest bind;
  bind.clear_first = 0;
  bind.Add("1", Value::Int(3));
  bind.Add("name", Value::Str("Ann \"quoted\" \n newline"));

  ExecuteRequest exec;
  exec.mode = ExecuteRequest::kPrepared;
  exec.handle = 7;
  exec.deadline_ms = 1000;
  exec.fetch_hint = 64;

  ExecReply exec_ok;
  exec_ok.rows = 123;
  exec_ok.scalar = 0;
  exec_ok.plan_cached = 1;
  exec_ok.queue_ms = 0.25;
  exec_ok.compile_ms = 1.5;
  exec_ok.exec_ms = 9.75;

  FetchRequest fetch;
  fetch.max_rows = 99;

  RowsReply rows;
  rows.has_more = 1;
  rows.rows = {"1", "\"two\"", "<a=3, b=\"x\">"};

  ErrorReply err;
  err.code = ErrorCode::kAdmission;
  err.message = "queue full";

  // Concatenate every frame, then decode the stream and re-parse each.
  std::string stream = hello.Encode() + hello_ok.Encode() + prep.Encode() +
                       prep_ok.Encode() + bind.Encode() + exec.Encode() +
                       exec_ok.Encode() + fetch.Encode() + rows.Encode() +
                       err.Encode() +
                       EncodeFrame(Opcode::kCancel, std::string()) +
                       EncodeFrame(Opcode::kGoodbye, std::string()) +
                       EncodeFrame(Opcode::kBindOk, std::string());

  FrameDecoder dec;
  dec.Feed(stream);
  std::vector<Frame> frames;
  Frame f;
  while (dec.Next(&f)) frames.push_back(f);
  ASSERT_EQ(frames.size(), 13u);
  EXPECT_EQ(dec.buffered(), 0u);

  HelloRequest h2 = HelloRequest::Parse(frames[0].payload);
  EXPECT_EQ(h2.version, hello.version);
  EXPECT_EQ(h2.deadline_ms, hello.deadline_ms);
  EXPECT_EQ(h2.memory_budget_bytes, hello.memory_budget_bytes);
  EXPECT_EQ(h2.n_threads, hello.n_threads);
  EXPECT_EQ(h2.morsel_size, hello.morsel_size);
  EXPECT_EQ(h2.use_slot_frames, hello.use_slot_frames);

  HelloReply ho2 = HelloReply::Parse(frames[1].payload);
  EXPECT_EQ(ho2.version, hello_ok.version);
  EXPECT_EQ(ho2.session_id, hello_ok.session_id);
  EXPECT_EQ(ho2.server_info, hello_ok.server_info);

  EXPECT_EQ(PrepareRequest::Parse(frames[2].payload).oql, prep.oql);
  EXPECT_EQ(PrepareReply::Parse(frames[3].payload).handle, prep_ok.handle);

  BindRequest b2 = BindRequest::Parse(frames[4].payload);
  EXPECT_EQ(b2.clear_first, bind.clear_first);
  ASSERT_EQ(b2.params.size(), 2u);
  EXPECT_EQ(b2.params[0].first, "1");
  EXPECT_EQ(ValueFromText(b2.params[0].second), Value::Int(3));
  EXPECT_EQ(ValueFromText(b2.params[1].second),
            Value::Str("Ann \"quoted\" \n newline"));

  ExecuteRequest e2 = ExecuteRequest::Parse(frames[5].payload);
  EXPECT_EQ(e2.mode, exec.mode);
  EXPECT_EQ(e2.handle, exec.handle);
  EXPECT_EQ(e2.deadline_ms, exec.deadline_ms);
  EXPECT_EQ(e2.fetch_hint, exec.fetch_hint);

  ExecReply eo2 = ExecReply::Parse(frames[6].payload);
  EXPECT_EQ(eo2.rows, exec_ok.rows);
  EXPECT_EQ(eo2.plan_cached, exec_ok.plan_cached);
  EXPECT_DOUBLE_EQ(eo2.queue_ms, exec_ok.queue_ms);
  EXPECT_DOUBLE_EQ(eo2.exec_ms, exec_ok.exec_ms);

  EXPECT_EQ(FetchRequest::Parse(frames[7].payload).max_rows, fetch.max_rows);

  RowsReply r2 = RowsReply::Parse(frames[8].payload);
  EXPECT_EQ(r2.has_more, rows.has_more);
  EXPECT_EQ(r2.rows, rows.rows);

  ErrorReply er2 = ErrorReply::Parse(frames[9].payload);
  EXPECT_EQ(er2.code, err.code);
  EXPECT_EQ(er2.message, err.message);

  EXPECT_EQ(frames[10].opcode, Opcode::kCancel);
  EXPECT_TRUE(frames[10].payload.empty());
  EXPECT_EQ(frames[11].opcode, Opcode::kGoodbye);
  EXPECT_EQ(frames[12].opcode, Opcode::kBindOk);
}

TEST(NetWireTest, DecoderHandlesTornReadsOneByteAtATime) {
  PrepareRequest prep;
  prep.oql = "select d.name from d in Departments";
  ErrorReply err;
  err.code = ErrorCode::kEval;
  err.message = "boom";
  std::string stream = prep.Encode() + err.Encode();

  FrameDecoder dec;
  std::vector<Frame> frames;
  for (char byte : stream) {
    dec.Feed(&byte, 1);
    Frame f;
    while (dec.Next(&f)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(PrepareRequest::Parse(frames[0].payload).oql, prep.oql);
  EXPECT_EQ(ErrorReply::Parse(frames[1].payload).message, "boom");
}

TEST(NetWireTest, DecoderRejectsOversizedLengthWithoutAllocating) {
  // length = 0xFFFFFFFF: must throw before any payload allocation.
  FrameDecoder dec;
  dec.Feed("\xff\xff\xff\xff", 4);
  Frame f;
  EXPECT_THROW(dec.Next(&f), WireError);
  EXPECT_TRUE(dec.error());
  // The decoder stays poisoned even for subsequent valid bytes.
  dec.Feed(EncodeFrame(Opcode::kCancel, std::string()));
  EXPECT_THROW(dec.Next(&f), WireError);
}

TEST(NetWireTest, DecoderRejectsZeroLength) {
  FrameDecoder dec;
  dec.Feed(std::string(4, '\0'));
  Frame f;
  EXPECT_THROW(dec.Next(&f), WireError);
  EXPECT_TRUE(dec.error());
}

TEST(NetWireTest, DecoderHonorsTightenedCeiling) {
  FrameDecoder dec(/*max_frame_bytes=*/16);
  // A 100-byte payload is fine globally but above this decoder's ceiling.
  std::string frame = EncodeFrame(Opcode::kPrepare, std::string(100, 'x'));
  dec.Feed(frame);
  Frame f;
  EXPECT_THROW(dec.Next(&f), WireError);
}

TEST(NetWireTest, EncoderRefusesOversizedFrame) {
  std::string huge(net::kMaxFrameBytes, 'x');
  EXPECT_THROW(EncodeFrame(Opcode::kPrepare, huge), WireError);
}

TEST(NetWireTest, TrailingPayloadBytesAreIgnoredForVersioning) {
  HelloRequest hello;
  hello.deadline_ms = 77;
  std::string frame = hello.Encode();
  // A future peer appends a field: strip the frame header, extend the
  // payload, and re-frame.
  std::string payload = frame.substr(5);
  payload += "future-field";
  HelloRequest parsed = HelloRequest::Parse(payload);
  EXPECT_EQ(parsed.deadline_ms, 77u);
}

TEST(NetWireTest, TruncatedPayloadThrows) {
  HelloRequest hello;
  std::string payload = hello.Encode().substr(5);
  payload.resize(payload.size() / 2);
  EXPECT_THROW(HelloRequest::Parse(payload), WireError);
  EXPECT_THROW(ExecReply::Parse(std::string("\x01", 1)), WireError);
  EXPECT_THROW(ErrorReply::Parse(std::string()), WireError);
}

TEST(NetWireTest, LyingInnerCountsRejectedWithoutAllocationBlowup) {
  // A BIND payload claiming 2^31 parameters in a 9-byte body must be
  // rejected by bounds checks, not by attempting the reserve.
  net::PayloadWriter w;
  w.U8(1);
  w.U32(0x7FFFFFFF);
  EXPECT_THROW(BindRequest::Parse(w.bytes()), WireError);

  // Same for ROWS, and for a string whose inner length outruns the payload.
  net::PayloadWriter w2;
  w2.U8(0);
  w2.U32(0x40000000);
  EXPECT_THROW(RowsReply::Parse(w2.bytes()), WireError);

  net::PayloadWriter w3;
  w3.U32(0x10000000);  // string length far beyond the remaining bytes
  w3.U8('x');
  EXPECT_THROW(PrepareRequest::Parse(w3.bytes()), WireError);
}

TEST(NetWireTest, FuzzedFramesNeverCrashTheDecoderOrParsers) {
  // Deterministic LCG fuzz: random byte blobs through the decoder, and any
  // frames that survive framing through every message parser. The invariant
  // is "WireError or success", never a crash or runaway allocation.
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(state >> 33);
  };
  for (int iter = 0; iter < 300; ++iter) {
    FrameDecoder dec;
    std::string blob;
    size_t len = rnd() % 512;
    blob.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      blob.push_back(static_cast<char>(rnd() & 0xFF));
    }
    // Occasionally make the length prefix plausible so payload parsers run.
    if (iter % 3 == 0 && blob.size() >= 5) {
      uint32_t plausible = 1 + rnd() % 64;
      std::memcpy(blob.data(), &plausible, 4);
    }
    dec.Feed(blob);
    try {
      Frame f;
      while (dec.Next(&f)) {
        for (int which = 0; which < 10; ++which) {
          try {
            switch (which) {
              case 0: HelloRequest::Parse(f.payload); break;
              case 1: HelloReply::Parse(f.payload); break;
              case 2: PrepareRequest::Parse(f.payload); break;
              case 3: PrepareReply::Parse(f.payload); break;
              case 4: BindRequest::Parse(f.payload); break;
              case 5: ExecuteRequest::Parse(f.payload); break;
              case 6: ExecReply::Parse(f.payload); break;
              case 7: FetchRequest::Parse(f.payload); break;
              case 8: RowsReply::Parse(f.payload); break;
              case 9: ErrorReply::Parse(f.payload); break;
            }
          } catch (const WireError&) {
            // Expected for malformed payloads.
          }
        }
      }
    } catch (const WireError&) {
      EXPECT_TRUE(dec.error());
    }
  }
}

TEST(NetWireTest, ValueTextRoundTrip) {
  Value v = Value::Bag(
      {Value::Tuple({{"name", Value::Str("Ann \"q\"")},
                     {"age", Value::Int(7)},
                     {"tags", Value::List({Value::Real(1.5), Value::Null()})}}),
       Value::Tuple({{"name", Value::Str("Bo")},
                     {"age", Value::Int(9)},
                     {"tags", Value::List({})}})});
  EXPECT_EQ(ValueFromText(ValueToText(v)), v);
  EXPECT_EQ(ValueFromText(ValueToText(Value::Bool(true))), Value::Bool(true));
  // Trailing bytes after a complete value are an error.
  EXPECT_THROW(ValueFromText(ValueToText(Value::Int(1)) + " 2"), ParseError);
}

// ---------------------------------------------------------------------------
// Server end-to-end (real sockets on an ephemeral port)
// ---------------------------------------------------------------------------

Database MakeDb(int scale) {
  workload::CompanyParams p;
  p.n_employees = scale;
  p.n_departments = std::max(4, scale / 40);
  p.n_managers = std::max(2, scale / 100);
  return workload::MakeCompanyDatabase(p);
}

// Inequality-only triple join: no equi predicate, so the planner has to
// nested-loop it — reliably slow at moderate scales, the workhorse for the
// cancel/deadline/drain tests.
const char* const kSlowQuery =
    "count(select e.name from e in Employees, m in Managers, "
    "e2 in Employees where e.age > m.age and e2.salary > e.salary)";

struct Harness {
  explicit Harness(int scale = 200, ServiceOptions sopts = {},
                   net::ServerOptions nopts = {})
      : db(MakeDb(scale)), svc(db, sopts), server(svc, [&nopts] {
          nopts.port = 0;  // ephemeral: no port races between tests
          return nopts;
        }()) {
    server.Start();
  }
  ~Harness() { server.Shutdown(); }

  uint16_t port() const { return server.bound_port(); }

  Database db;
  QueryService svc;
  net::Server server;
};

class NetServerTest : public ::testing::Test {};

TEST_F(NetServerTest, AdhocExecuteMatchesInProcessResults) {
  Harness h;
  const std::string oql =
      "select distinct struct(D: d.name, total: sum(select e.salary "
      "from e in Employees where e.dno = d.dno)) from d in Departments";

  net::Client client;
  client.Connect("127.0.0.1", h.port());
  EXPECT_GT(client.session_id(), 0u);
  net::ClientResult remote = client.Execute(oql);

  auto session = h.svc.OpenSession();
  Value local = h.svc.Execute(*session, oql);

  ASSERT_TRUE(local.is_collection());
  ASSERT_EQ(remote.rows.size(), local.AsElems().size());
  EXPECT_EQ(remote.exec.rows, local.AsElems().size());
  for (size_t i = 0; i < remote.rows.size(); ++i) {
    EXPECT_EQ(remote.rows[i], local.AsElems()[i]) << "row " << i;
  }
  // Second run: the plan must come from the shared cache.
  net::ClientResult again = client.Execute(oql);
  EXPECT_EQ(again.exec.plan_cached, 1);
  client.Close();
}

TEST_F(NetServerTest, ScalarResultTravelsAsOneRow) {
  Harness h;
  net::Client client;
  client.Connect("127.0.0.1", h.port());
  net::ClientResult r =
      client.Execute("count(select e from e in Employees)");
  EXPECT_TRUE(r.scalar());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0], Value::Int(200));
}

TEST_F(NetServerTest, PreparedStatementsWithBindings) {
  Harness h;
  net::Client client;
  client.Connect("127.0.0.1", h.port());
  uint64_t handle = client.Prepare(
      "select distinct e.name from e in Employees where e.dno = $1");

  auto session = h.svc.OpenSession();
  for (int dno = 0; dno < 3; ++dno) {
    client.Bind({{"1", Value::Int(dno)}});
    net::ClientResult remote = client.ExecutePrepared(handle);
    session->Bind("1", Value::Int(dno));
    Value local = h.svc.Execute(
        *session,
        "select distinct e.name from e in Employees where e.dno = $1");
    ASSERT_EQ(remote.rows.size(), local.AsElems().size()) << "dno " << dno;
    for (size_t i = 0; i < remote.rows.size(); ++i) {
      EXPECT_EQ(remote.rows[i], local.AsElems()[i]);
    }
  }

  // Unknown handle: a STATE error, and the connection stays usable.
  EXPECT_THROW(
      {
        try {
          client.ExecutePrepared(handle + 100);
        } catch (const net::RemoteError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kState);
          throw;
        }
      },
      net::RemoteError);
  net::ClientResult still_works = client.ExecutePrepared(handle);
  EXPECT_FALSE(still_works.rows.empty());

  // PREPARE of garbage OQL surfaces a PARSE error eagerly.
  EXPECT_THROW(
      {
        try {
          client.Prepare("select from from where");
        } catch (const net::RemoteError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kParse);
          throw;
        }
      },
      net::RemoteError);
}

TEST_F(NetServerTest, ConcurrentClientsAgreeWithInProcessResults) {
  Harness h;
  const std::vector<std::string> mix = {
      "select distinct d.name from d in Departments "
      "where count(select e from e in Employees where e.dno = d.dno) = 0",
      "select distinct e.name from e in Employees "
      "where e.salary < max(select m.salary from m in Managers "
      "where e.age > m.age)",
      "count(select e from e in Employees)",
  };
  std::vector<Value> expected;
  {
    auto session = h.svc.OpenSession();
    for (const std::string& oql : mix) {
      expected.push_back(h.svc.Execute(*session, oql));
    }
  }

  constexpr int kClients = 4;
  constexpr int kIters = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::Client client;
        client.Connect("127.0.0.1", h.port());
        for (int i = 0; i < kIters; ++i) {
          const size_t m = static_cast<size_t>(c + i) % mix.size();
          net::ClientResult r = client.Execute(mix[m]);
          const Value& want = expected[m];
          if (want.is_collection()) {
            if (r.rows.size() != want.AsElems().size() ||
                !std::equal(r.rows.begin(), r.rows.end(),
                            want.AsElems().begin())) {
              ++failures;
            }
          } else if (r.rows.size() != 1 || r.rows[0] != want) {
            ++failures;
          }
        }
        client.Close();
      } catch (const Error&) {
        ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(NetServerTest, FetchPagesBoundedBatches) {
  Harness h;
  net::Client client;
  client.Connect("127.0.0.1", h.port());

  // fetch_hint = 0: EXEC_OK only, rows pulled by explicit FETCH.
  ExecuteRequest req;
  req.mode = ExecuteRequest::kAdhoc;
  req.oql = "select e.name from e in Employees";
  req.fetch_hint = 0;
  client.SendRaw(req.Encode());
  Frame f = client.ReadFrame();
  ASSERT_EQ(f.opcode, Opcode::kExecOk);
  ExecReply exec = ExecReply::Parse(f.payload);
  EXPECT_EQ(exec.rows, 200u);

  size_t got = 0;
  int batches = 0;
  bool more = true;
  while (more) {
    FetchRequest fetch;
    fetch.max_rows = 17;
    client.SendRaw(fetch.Encode());
    Frame rf = client.ReadFrame();
    ASSERT_EQ(rf.opcode, Opcode::kRows);
    RowsReply rows = RowsReply::Parse(rf.payload);
    EXPECT_LE(rows.rows.size(), 17u);
    got += rows.rows.size();
    ++batches;
    more = rows.has_more != 0;
  }
  EXPECT_EQ(got, exec.rows);
  EXPECT_GT(batches, 1);

  // FETCH past exhaustion: STATE error, connection stays usable.
  FetchRequest fetch;
  fetch.max_rows = 1;
  client.SendRaw(fetch.Encode());
  Frame ef = client.ReadFrame();
  ASSERT_EQ(ef.opcode, Opcode::kError);
  EXPECT_EQ(ErrorReply::Parse(ef.payload).code, ErrorCode::kState);
  EXPECT_EQ(client.Execute("count(select e from e in Employees)").rows.size(),
            1u);
}

TEST_F(NetServerTest, CancelAbortsTheInFlightQuery) {
  Harness h(/*scale=*/2000);
  net::Client client;
  client.Connect("127.0.0.1", h.port());

  // Issue the slow query and cancel from another thread mid-execution.
  std::thread canceller([&client] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    client.Cancel();
  });
  auto t0 = std::chrono::steady_clock::now();
  bool cancelled = false;
  try {
    client.Execute(kSlowQuery);
  } catch (const net::RemoteError& e) {
    cancelled = e.code() == ErrorCode::kCancelled;
  }
  canceller.join();
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  EXPECT_TRUE(cancelled);
  // The abort is cooperative but prompt — far faster than the full query.
  EXPECT_LT(ms, 5000);

  // The session survives a cancel: the next query runs normally.
  net::ClientResult r = client.Execute("count(select e from e in Employees)");
  EXPECT_EQ(r.rows[0], Value::Int(2000));
}

TEST_F(NetServerTest, RemoteAddressFlowsIntoActiveQueriesAndQueryLog) {
  Harness h(/*scale=*/2000);
  net::Client client;
  client.Connect("127.0.0.1", h.port());

  std::thread worker([&client] {
    try {
      client.Execute(kSlowQuery);
    } catch (const net::RemoteError&) {
    }
  });
  // Poll ActiveQueries() until the remote query shows up.
  bool seen_remote = false;
  for (int i = 0; i < 200 && !seen_remote; ++i) {
    for (const obs::ActiveQueryInfo& q : h.svc.ActiveQueries()) {
      if (q.remote.rfind("127.0.0.1:", 0) == 0) seen_remote = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  client.Cancel();
  worker.join();
  EXPECT_TRUE(seen_remote);

  // The finished query carries the same address in the query log.
  std::vector<obs::QueryLogRecord> tail = h.svc.query_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].remote.rfind("127.0.0.1:", 0), 0u);
  EXPECT_NE(tail[0].ToString().find("remote=127.0.0.1:"), std::string::npos);
}

TEST_F(NetServerTest, DeadlineExpiryReturnsCancelled) {
  Harness h(/*scale=*/1000);
  net::Client client;
  client.Connect("127.0.0.1", h.port());
  bool cancelled = false;
  try {
    client.Execute(kSlowQuery, /*deadline_ms=*/1);
  } catch (const net::RemoteError& e) {
    cancelled = e.code() == ErrorCode::kCancelled;
  }
  EXPECT_TRUE(cancelled);
  // The per-request deadline must not stick to the session.
  net::ClientResult r = client.Execute("count(select e from e in Employees)");
  EXPECT_EQ(r.rows[0], Value::Int(1000));
}

TEST_F(NetServerTest, AdmissionOverflowRejectsAsErrorFrameNotDisconnect) {
  ServiceOptions sopts;
  sopts.max_concurrent = 1;
  sopts.max_queue = 0;  // anything beyond the one running query is rejected
  Harness h(/*scale=*/1000, sopts);

  obs::Counter* rejected = h.svc.metrics().GetCounter(
      "ldb_queries_rejected_total",
      "Queries refused at admission (queue full)");
  const uint64_t rejected_before = rejected->Value();

  net::Client slow;
  slow.Connect("127.0.0.1", h.port());
  ExecuteRequest req;
  req.mode = ExecuteRequest::kAdhoc;
  req.oql = kSlowQuery;
  req.fetch_hint = 0;
  slow.SendRaw(req.Encode());  // occupies the single admission slot

  // Wait until the slow query is actually running.
  for (int i = 0; i < 400 && h.svc.running() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(h.svc.running(), 0);

  net::Client fast;
  fast.Connect("127.0.0.1", h.port());
  bool saw_admission_error = false;
  try {
    fast.Execute("count(select e from e in Employees)");
  } catch (const net::RemoteError& e) {
    saw_admission_error = e.code() == ErrorCode::kAdmission;
  }
  EXPECT_TRUE(saw_admission_error);
  EXPECT_GT(rejected->Value(), rejected_before);

  slow.Cancel();
  Frame f = slow.ReadFrame();  // CANCEL_OK or the EXECUTE's ERROR
  while (f.opcode == Opcode::kCancelOk) f = slow.ReadFrame();
  EXPECT_EQ(f.opcode, Opcode::kError);

  // The rejected client was never disconnected: it can retry and succeed.
  net::ClientResult r = fast.Execute("count(select e from e in Employees)");
  EXPECT_EQ(r.rows[0], Value::Int(1000));
}

TEST_F(NetServerTest, UnknownOpcodeGetsProtocolErrorAndConnSurvives) {
  Harness h;
  net::Client client;
  client.Connect("127.0.0.1", h.port());
  client.SendRaw(net::EncodeFrame(static_cast<Opcode>(0x55), "junk"));
  Frame f = client.ReadFrame();
  ASSERT_EQ(f.opcode, Opcode::kError);
  EXPECT_EQ(ErrorReply::Parse(f.payload).code, ErrorCode::kProtocol);
  net::ClientResult r = client.Execute("count(select e from e in Employees)");
  EXPECT_EQ(r.rows[0], Value::Int(200));
}

TEST_F(NetServerTest, GarbageLengthPrefixPoisonsOnlyThatConnection) {
  Harness h;
  net::Client bad;
  bad.Connect("127.0.0.1", h.port());
  bad.SendRaw(std::string("\xff\xff\xff\x7f", 4));
  Frame f = bad.ReadFrame();
  ASSERT_EQ(f.opcode, Opcode::kError);
  EXPECT_EQ(ErrorReply::Parse(f.payload).code, ErrorCode::kProtocol);
  EXPECT_THROW(bad.ReadFrame(), Error);  // server closed the connection

  // A well-behaved neighbor is unaffected.
  net::Client good;
  good.Connect("127.0.0.1", h.port());
  EXPECT_EQ(good.Execute("count(select e from e in Employees)").rows[0],
            Value::Int(200));
}

TEST_F(NetServerTest, HelloMustBeTheFirstFrame) {
  Harness h;
  // Raw socket: skip the handshake and send PREPARE straight away.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  PrepareRequest prep;
  prep.oql = "select e from e in Employees";
  std::string frame = prep.Encode();
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  FrameDecoder dec;
  Frame f;
  char buf[4096];
  bool got_frame = false;
  for (int i = 0; i < 100 && !got_frame; ++i) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    dec.Feed(buf, static_cast<size_t>(n));
    got_frame = dec.Next(&f);
  }
  ASSERT_TRUE(got_frame);
  EXPECT_EQ(f.opcode, Opcode::kError);
  EXPECT_EQ(ErrorReply::Parse(f.payload).code, ErrorCode::kProtocol);
  ::close(fd);
}

TEST_F(NetServerTest, TornWritesReachTheServerIntact) {
  Harness h;
  net::Client client;
  client.Connect("127.0.0.1", h.port());
  ExecuteRequest req;
  req.mode = ExecuteRequest::kAdhoc;
  req.oql = "count(select e from e in Employees)";
  req.fetch_hint = 1;
  std::string frame = req.Encode();
  for (char byte : frame) {  // one byte per send()
    client.SendRaw(std::string(1, byte));
  }
  Frame f = client.ReadFrame();
  ASSERT_EQ(f.opcode, Opcode::kExecOk);
  Frame rows = client.ReadFrame();
  ASSERT_EQ(rows.opcode, Opcode::kRows);
  RowsReply rr = RowsReply::Parse(rows.payload);
  ASSERT_EQ(rr.rows.size(), 1u);
  EXPECT_EQ(ValueFromText(rr.rows[0]), Value::Int(200));
}

TEST_F(NetServerTest, GracefulShutdownDrainsInFlightQueriesUnderDeadline) {
  net::ServerOptions nopts;
  nopts.drain_timeout_ms = 300;
  auto h = std::make_unique<Harness>(/*scale=*/2000, ServiceOptions{}, nopts);

  net::Client client;
  client.Connect("127.0.0.1", h->port());
  std::atomic<bool> got_reply{false};
  std::atomic<bool> got_cancelled{false};
  std::thread worker([&] {
    try {
      client.Execute(kSlowQuery);
      got_reply = true;
    } catch (const net::RemoteError& e) {
      got_reply = true;
      got_cancelled = e.code() == ErrorCode::kCancelled;
    } catch (const Error&) {
      // Transport error would mean the drain dropped the reply: a failure.
    }
  });

  // Let the query get onto a worker, then shut down mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto t0 = std::chrono::steady_clock::now();
  h->server.Shutdown();
  double shutdown_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  worker.join();

  // The drain cancelled the query at its deadline but still delivered the
  // ERROR frame before closing — no silent connection drop.
  EXPECT_TRUE(got_reply.load());
  EXPECT_TRUE(got_cancelled.load());
  EXPECT_LT(shutdown_ms, 5000);

  // The listener is gone: new connections are refused.
  net::Client late;
  EXPECT_THROW(late.Connect("127.0.0.1", h->port()), Error);
}

TEST_F(NetServerTest, NetMetricsAreRegisteredAndCounted) {
  Harness h;
  net::Client client;
  client.Connect("127.0.0.1", h.port());
  client.Execute("count(select e from e in Employees)");

  obs::MetricsSnapshot snap = h.svc.metrics().Snapshot();
  auto value_of = [&snap](const std::string& name,
                          const std::string& op = "") -> double {
    for (const obs::MetricSample& s : snap.samples) {
      if (s.name != name) continue;
      if (!op.empty()) {
        auto it = s.labels.find("op");
        if (it == s.labels.end() || it->second != op) continue;
      }
      return s.value;
    }
    return -1;
  };
  EXPECT_EQ(value_of("ldb_connections_open"), 1);
  EXPECT_GE(value_of("ldb_connections_total"), 1);
  EXPECT_GT(value_of("ldb_net_bytes_sent_total"), 0);
  EXPECT_GT(value_of("ldb_net_bytes_recv_total"), 0);
  EXPECT_GE(value_of("ldb_net_frames_total", "HELLO"), 1);
  EXPECT_GE(value_of("ldb_net_frames_total", "EXECUTE"), 1);
  EXPECT_EQ(value_of("ldb_net_frames_total", "CANCEL"), 0);
  client.Close();
}

}  // namespace
}  // namespace ldb
