// Shared helpers for the lambdadb test suites: a tiny hand-built Company
// database with contents small enough to compute oracles by hand, and
// conveniences for running queries both ways.

#ifndef LAMBDADB_TESTS_TEST_UTIL_H_
#define LAMBDADB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "src/lambdadb.h"
#include "src/workload/company.h"
#include "src/workload/university.h"

namespace ldb::testing {

// A fixed 3-department / 4-employee / 2-manager company:
//
//   Departments: d0 "Sales", d1 "R&D", d2 "Empty" (no employees)
//   Managers:    m0 "Meg" (age 50, salary 200k, kids: Pat(20))
//                m1 "Mo"  (age 40, salary 150k, no kids)
//   Employees:   e0 "Ann" age 30 salary 100k dno 0 mgr m0 kids {Al(5), Amy(25)}
//                e1 "Bob" age 40 salary  80k dno 0 mgr m1 kids {}
//                e2 "Cal" age 25 salary  60k dno 1 mgr NULL kids {Cam(30)}
//                e3 "Dee" age 55 salary 120k dno 1 mgr m0 kids {Dan(10)}
inline Database TinyCompany() {
  Database db(workload::CompanySchema());
  auto person = [&](const std::string& name, int age) {
    return db.Insert("Person", Value::Tuple({{"name", Value::Str(name)},
                                             {"age", Value::Int(age)}}));
  };
  auto dept = [&](int dno, const std::string& name) {
    db.Insert("Department",
              Value::Tuple({{"dno", Value::Int(dno)},
                            {"name", Value::Str(name)},
                            {"budget", Value::Real(1000.0 * dno)}}));
  };
  dept(0, "Sales");
  dept(1, "R&D");
  dept(2, "Empty");

  Value m0 = db.Insert(
      "Manager", Value::Tuple({{"name", Value::Str("Meg")},
                               {"age", Value::Int(50)},
                               {"salary", Value::Real(200000)},
                               {"children", Value::Set({person("Pat", 20)})}}));
  Value m1 = db.Insert(
      "Manager", Value::Tuple({{"name", Value::Str("Mo")},
                               {"age", Value::Int(40)},
                               {"salary", Value::Real(150000)},
                               {"children", Value::Set({})}}));

  auto emp = [&](const std::string& name, int age, double salary, int dno,
                 Value mgr, Elems kids) {
    db.Insert("Employee",
              Value::Tuple({{"name", Value::Str(name)},
                            {"age", Value::Int(age)},
                            {"salary", Value::Real(salary)},
                            {"dno", Value::Int(dno)},
                            {"manager", mgr},
                            {"children", Value::Set(std::move(kids))}}));
  };
  emp("Ann", 30, 100000, 0, m0, {person("Al", 5), person("Amy", 25)});
  emp("Bob", 40, 80000, 0, m1, {});
  emp("Cal", 25, 60000, 1, Value::Null(), {person("Cam", 30)});
  emp("Dee", 55, 120000, 1, m0, {person("Dan", 10)});
  return db;
}

// A fixed university:
//   Courses: c0 "DB", c1 "DB", c2 "OS"
//   Students: s0 took {c0, c1, c2}  (all DB)            -> qualifies
//             s1 took {c0}          (one DB)            -> no
//             s2 took {}                                -> no
//             s3 took {c0, c1}      (all DB)            -> qualifies
inline Database TinyUniversity() {
  Database db(workload::UniversitySchema());
  auto course = [&](int cno, const std::string& title) {
    db.Insert("Course", Value::Tuple({{"cno", Value::Int(cno)},
                                      {"title", Value::Str(title)}}));
  };
  course(0, "DB");
  course(1, "DB");
  course(2, "OS");
  auto student = [&](int sid, const std::string& name) {
    db.Insert("Student", Value::Tuple({{"sid", Value::Int(sid)},
                                       {"name", Value::Str(name)}}));
  };
  student(0, "s0");
  student(1, "s1");
  student(2, "s2");
  student(3, "s3");
  auto took = [&](int sid, int cno) {
    db.Insert("Transcript", Value::Tuple({{"sid", Value::Int(sid)},
                                          {"cno", Value::Int(cno)}}));
  };
  took(0, 0);
  took(0, 1);
  took(0, 2);
  took(1, 0);
  took(3, 0);
  took(3, 1);
  return db;
}

/// Runs `oql` through the full optimizer pipeline and through the baseline
/// and EXPECTs the results to agree; returns the optimized result.
inline Value RunBothWays(const Database& db, const std::string& oql,
                         OptimizerOptions options = {}) {
  Value optimized = RunOQL(db, oql, options);
  Value baseline = RunOQLBaseline(db, oql);
  EXPECT_EQ(optimized, baseline) << "query: " << oql;
  return optimized;
}

}  // namespace ldb::testing

#endif  // LAMBDADB_TESTS_TEST_UTIL_H_
