// Tests for the physical plan layer (src/runtime/physical_plan.*) and the
// Volcano pipelined executor (src/runtime/exec_pipeline.*): operator choice,
// engine equivalence with the materializing executor, and pipeline
// short-circuiting behaviour.

#include "src/runtime/exec_pipeline.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/unnest.h"
#include "src/runtime/eval_algebra.h"
#include "tests/test_util.h"

namespace ldb {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  Database db_ = testing::TinyCompany();

  AlgPtr PlanOf(const std::string& oql) {
    return UnnestComp(Normalize(ParseOQL(oql)), db_.schema());
  }

  // Engine equivalence on one query: materializing == pipelined == baseline.
  void CheckAllEngines(const std::string& oql) {
    AlgPtr logical = PlanOf(oql);
    Value materialized = ExecutePlan(logical, db_);
    PhysPtr physical = PlanPhysical(logical, db_);
    Value pipelined = ExecutePipelined(physical, db_);
    Value baseline = RunOQLBaseline(db_, oql);
    EXPECT_EQ(pipelined, materialized) << oql << "\n"
                                       << PrintPhysicalPlan(physical);
    EXPECT_EQ(pipelined, baseline) << oql;
  }
};

TEST_F(PipelineTest, PlannerChoosesOperators) {
  AlgPtr logical = PlanOf(
      "select distinct struct(D: d.name, E: (select distinct e.name "
      "from e in Employees where e.dno = d.dno)) from d in Departments");
  PhysPtr phys = PlanPhysical(logical, db_);
  std::string printed = PrintPhysicalPlan(phys);
  EXPECT_NE(printed.find("HashOuterJoin[build=right keys(d.dno=e.dno)]"),
            std::string::npos)
      << printed;
  EXPECT_NE(printed.find("HashNest"), std::string::npos);
  EXPECT_NE(printed.find("TableScan"), std::string::npos);

  PhysicalOptions nl;
  nl.use_hash_joins = false;
  PhysPtr phys_nl = PlanPhysical(logical, db_, nl);
  EXPECT_NE(PrintPhysicalPlan(phys_nl).find("NLOuterJoin"), std::string::npos);
}

TEST_F(PipelineTest, PlannerUsesIndexes) {
  db_.BuildIndex("Employees", "dno");
  AlgPtr logical = PlanOf(
      "select distinct e.name from e in Employees where e.dno = 1");
  PhysPtr phys = PlanPhysical(logical, db_);
  EXPECT_NE(PrintPhysicalPlan(phys).find("IndexScan[e <- Employees.dno = 1]"),
            std::string::npos);
  EXPECT_EQ(ExecutePipelined(phys, db_), Value::Set({Value::Str("Cal"),
                                                     Value::Str("Dee")}));
}

TEST_F(PipelineTest, InnerHashJoinBuildsOnSmallerSide) {
  AlgPtr logical = PlanOf(
      "select distinct struct(a: e.name, b: d.name) "
      "from e in Employees, d in Departments where e.dno = d.dno");
  PhysPtr phys = PlanPhysical(logical, db_);
  // Departments (3) < Employees (4): with Employees on the left, the build
  // flips to... the right side here IS Departments, so build=right; write a
  // reversed query to see build=left.
  std::string printed = PrintPhysicalPlan(phys);
  EXPECT_NE(printed.find("HashJoin[build=right"), std::string::npos) << printed;

  AlgPtr reversed = PlanOf(
      "select distinct struct(a: e.name, b: d.name) "
      "from d in Departments, e in Employees where e.dno = d.dno");
  // Left side Departments is smaller: build stays... left=Departments(3) <
  // right=Employees(4) -> build_is_left.
  std::string printed2 = PrintPhysicalPlan(PlanPhysical(reversed, db_));
  EXPECT_NE(printed2.find("HashJoin[build=left"), std::string::npos)
      << printed2;
  CheckAllEngines(
      "select distinct struct(a: e.name, b: d.name) "
      "from d in Departments, e in Employees where e.dno = d.dno");
}

TEST_F(PipelineTest, EnginesAgreeOnPaperQueries) {
  const char* queries[] = {
      "select distinct struct(E: e.name, C: c.name) "
      "from e in Employees, c in e.children",
      "select distinct struct(D: d.name, E: (select distinct e.name "
      "from e in Employees where e.dno = d.dno)) from d in Departments",
      "select distinct struct(E: e.name, M: count(select distinct c "
      "from c in e.children "
      "where for all d in e.manager.children: c.age > d.age)) "
      "from e in Employees",
      "select distinct e.name from e in Employees "
      "where e.salary < max(select m.salary from m in Managers "
      "where e.age > m.age)",
      "select distinct e.dno, avg(e.salary) from Employees e "
      "where e.age > 30 group by e.dno",
      "select distinct d.name from d in Departments "
      "where count(select e from e in Employees where e.dno = d.dno) = 0",
      "select e.dno from e in Employees",  // bag
      "count(select e from e in Employees)",
  };
  for (const char* q : queries) CheckAllEngines(q);
}

TEST_F(PipelineTest, EnginesAgreeOnQueryE) {
  Database uni = testing::TinyUniversity();
  const char* q =
      "select distinct s.name from s in Students "
      "where for all c in select c from c in Courses where c.title = 'DB': "
      "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno";
  AlgPtr logical = UnnestComp(Normalize(ParseOQL(q)), uni.schema());
  PhysPtr phys = PlanPhysical(logical, uni);
  EXPECT_EQ(ExecutePipelined(phys, uni),
            Value::Set({Value::Str("s0"), Value::Str("s3")}));
}

TEST_F(PipelineTest, OuterJoinsAlwaysProbeWithLeft) {
  // An outer join must not flip its build side even when the left input is
  // smaller (padding is per left row).
  AlgPtr logical = PlanOf(
      "select distinct struct(D: d.name, n: count(select e from e in "
      "Employees where e.dno = d.dno)) from d in Departments");
  PhysPtr phys = PlanPhysical(logical, db_);
  EXPECT_NE(PrintPhysicalPlan(phys).find("HashOuterJoin[build=right"),
            std::string::npos);
}

TEST_F(PipelineTest, IteratorContractBasics) {
  ExprEvaluator ev(db_);
  auto scan = std::make_shared<PhysOp>();
  scan->kind = PhysKind::kTableScan;
  scan->extent = "Employees";
  scan->var = "e";
  scan->pred = Expr::True();
  std::unique_ptr<RowIterator> it = MakeIterator(scan, &ev);
  it->Open();
  Env env;
  int rows = 0;
  while (it->Next(&env)) {
    ++rows;
    EXPECT_NE(env.Lookup("e"), nullptr);
  }
  EXPECT_EQ(rows, 4);
  EXPECT_FALSE(it->Next(&env));  // stays exhausted
  it->Close();
}

TEST_F(PipelineTest, UnitRowEmitsExactlyOnce) {
  ExprEvaluator ev(db_);
  auto unit = std::make_shared<PhysOp>();
  unit->kind = PhysKind::kUnitRow;
  unit->pred = Expr::True();
  auto it = MakeIterator(unit, &ev);
  it->Open();
  Env env;
  EXPECT_TRUE(it->Next(&env));
  EXPECT_FALSE(it->Next(&env));
}

TEST_F(PipelineTest, ScalarNestEmitsZeroRowOnEmptyInput) {
  // The regression from random_query_test must hold in this engine too.
  auto scan = std::make_shared<PhysOp>();
  scan->kind = PhysKind::kTableScan;
  scan->extent = "Employees";
  scan->var = "e";
  scan->pred = Expr::False();  // nothing survives
  auto nest = std::make_shared<PhysOp>();
  nest->kind = PhysKind::kHashNest;
  nest->left = scan;
  nest->monoid = MonoidKind::kAll;
  nest->head = Expr::True();
  nest->var = "v";
  nest->pred = Expr::True();
  ExprEvaluator ev(db_);
  auto it = MakeIterator(nest, &ev);
  it->Open();
  Env env;
  ASSERT_TRUE(it->Next(&env));
  EXPECT_EQ(*env.Lookup("v"), Value::Bool(true));  // zero of all
  EXPECT_FALSE(it->Next(&env));
}

TEST_F(PipelineTest, OptimizerUsesPipelineByDefault) {
  OptimizerOptions pipelined, materializing;
  materializing.pipelined_execution = false;
  const char* q = "select distinct e.name from e in Employees where e.age > 35";
  EXPECT_EQ(RunOQL(db_, q, pipelined), RunOQL(db_, q, materializing));
}

}  // namespace
}  // namespace ldb
