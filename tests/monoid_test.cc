// Unit tests for the monoid registry and Accumulator (src/core/monoid.*),
// including the algebraic laws the unnesting algorithm relies on.

#include "src/core/monoid.h"

#include <gtest/gtest.h>

#include "src/runtime/error.h"

namespace ldb {
namespace {

const MonoidKind kAllMonoids[] = {
    MonoidKind::kSet,  MonoidKind::kBag, MonoidKind::kList, MonoidKind::kSum,
    MonoidKind::kProd, MonoidKind::kMax, MonoidKind::kMin,  MonoidKind::kSome,
    MonoidKind::kAll};

TEST(MonoidTest, Properties) {
  EXPECT_TRUE(IsCollectionMonoid(MonoidKind::kSet));
  EXPECT_TRUE(IsCollectionMonoid(MonoidKind::kBag));
  EXPECT_TRUE(IsCollectionMonoid(MonoidKind::kList));
  EXPECT_FALSE(IsCollectionMonoid(MonoidKind::kSum));
  EXPECT_TRUE(IsPrimitiveMonoid(MonoidKind::kAll));

  EXPECT_TRUE(IsIdempotentMonoid(MonoidKind::kSet));
  EXPECT_TRUE(IsIdempotentMonoid(MonoidKind::kMax));
  EXPECT_TRUE(IsIdempotentMonoid(MonoidKind::kSome));
  EXPECT_FALSE(IsIdempotentMonoid(MonoidKind::kSum));
  EXPECT_FALSE(IsIdempotentMonoid(MonoidKind::kBag));
  EXPECT_FALSE(IsIdempotentMonoid(MonoidKind::kList));

  EXPECT_FALSE(IsCommutativeMonoid(MonoidKind::kList));
  EXPECT_TRUE(IsCommutativeMonoid(MonoidKind::kBag));
}

// A structural law check: zero is a left and right identity of merge.
TEST(MonoidTest, ZeroIsIdentity) {
  struct Case {
    MonoidKind m;
    Value x;
  };
  const Case cases[] = {
      {MonoidKind::kSet, Value::Set({Value::Int(1)})},
      {MonoidKind::kBag, Value::Bag({Value::Int(1), Value::Int(1)})},
      {MonoidKind::kList, Value::List({Value::Int(2), Value::Int(1)})},
      {MonoidKind::kSum, Value::Int(7)},
      {MonoidKind::kProd, Value::Int(7)},
      {MonoidKind::kMax, Value::Int(-5)},
      {MonoidKind::kMin, Value::Int(5)},
      {MonoidKind::kSome, Value::Bool(true)},
      {MonoidKind::kAll, Value::Bool(false)},
  };
  for (const Case& c : cases) {
    Value z = MonoidZero(c.m);
    EXPECT_EQ(MonoidMerge(c.m, z, c.x), c.x) << MonoidName(c.m);
    EXPECT_EQ(MonoidMerge(c.m, c.x, z), c.x) << MonoidName(c.m);
  }
}

TEST(MonoidTest, MaxZeroIsNullNotZero) {
  // Deviation from the paper's (max, 0): max of {-5} must be -5, which a
  // zero of 0 would break.
  Accumulator acc(MonoidKind::kMax);
  acc.Add(Value::Int(-5));
  EXPECT_EQ(acc.Finish(), Value::Int(-5));
}

TEST(MonoidTest, MergeAssociativeOnSamples) {
  for (MonoidKind m : {MonoidKind::kSum, MonoidKind::kProd, MonoidKind::kMax,
                       MonoidKind::kMin}) {
    Value a = Value::Int(2), b = Value::Int(5), c = Value::Int(3);
    EXPECT_EQ(MonoidMerge(m, MonoidMerge(m, a, b), c),
              MonoidMerge(m, a, MonoidMerge(m, b, c)))
        << MonoidName(m);
  }
  Value a = Value::List({Value::Int(1)});
  Value b = Value::List({Value::Int(2)});
  Value c = Value::List({Value::Int(3)});
  EXPECT_EQ(MonoidMerge(MonoidKind::kList, MonoidMerge(MonoidKind::kList, a, b), c),
            Value::List({Value::Int(1), Value::Int(2), Value::Int(3)}));
}

TEST(MonoidTest, IdempotentMonoidsAreIdempotentOnSamples) {
  for (MonoidKind m : kAllMonoids) {
    if (!IsIdempotentMonoid(m)) continue;
    Value x = m == MonoidKind::kSet   ? Value::Set({Value::Int(4)})
              : m == MonoidKind::kSome ? Value::Bool(true)
              : m == MonoidKind::kAll  ? Value::Bool(false)
                                       : Value::Int(4);
    EXPECT_EQ(MonoidMerge(m, x, x), x) << MonoidName(m);
  }
}

TEST(MonoidTest, BagMergeIsAdditive) {
  Value a = Value::Bag({Value::Int(1)});
  Value merged = MonoidMerge(MonoidKind::kBag, a, a);
  EXPECT_EQ(merged.AsElems().size(), 2u);
}

TEST(MonoidTest, SetMergeDeduplicates) {
  Value a = Value::Set({Value::Int(1)});
  EXPECT_EQ(MonoidMerge(MonoidKind::kSet, a, a), a);
}

TEST(MonoidTest, UnitLiftsCollections) {
  EXPECT_EQ(MonoidUnit(MonoidKind::kSet, Value::Int(1)),
            Value::Set({Value::Int(1)}));
  EXPECT_EQ(MonoidUnit(MonoidKind::kSum, Value::Int(1)), Value::Int(1));
}

TEST(MonoidTest, NullIsIdentityForEveryMonoid) {
  // This is what lets nest convert outer-join padding into zeros.
  for (MonoidKind m : kAllMonoids) {
    Value x = IsCollectionMonoid(m) ? MonoidUnit(m, Value::Int(9))
              : (m == MonoidKind::kSome || m == MonoidKind::kAll)
                  ? Value::Bool(true)
                  : Value::Int(9);
    EXPECT_EQ(MonoidMerge(m, Value::Null(), x), x) << MonoidName(m);
    EXPECT_EQ(MonoidMerge(m, x, Value::Null()), x) << MonoidName(m);
  }
}

TEST(MonoidTest, AccumulatorEmptyYieldsZero) {
  for (MonoidKind m : kAllMonoids) {
    Accumulator acc(m);
    EXPECT_EQ(acc.Finish(), MonoidZero(m)) << MonoidName(m);
  }
}

TEST(MonoidTest, AccumulatorSumAndProd) {
  Accumulator sum(MonoidKind::kSum);
  sum.Add(Value::Int(2));
  sum.Add(Value::Int(3));
  EXPECT_EQ(sum.Finish(), Value::Int(5));

  Accumulator prod(MonoidKind::kProd);
  prod.Add(Value::Int(2));
  prod.Add(Value::Int(3));
  prod.Add(Value::Int(4));
  EXPECT_EQ(prod.Finish(), Value::Int(24));
}

TEST(MonoidTest, AccumulatorMixedNumericWidens) {
  Accumulator sum(MonoidKind::kSum);
  sum.Add(Value::Int(2));
  sum.Add(Value::Real(0.5));
  EXPECT_EQ(sum.Finish(), Value::Real(2.5));
}

TEST(MonoidTest, AccumulatorAvg) {
  Accumulator avg(MonoidKind::kAvg);
  avg.Add(Value::Int(2));
  avg.Add(Value::Int(4));
  EXPECT_EQ(avg.Finish(), Value::Real(3.0));

  Accumulator empty(MonoidKind::kAvg);
  EXPECT_TRUE(empty.Finish().is_null());
}

TEST(MonoidTest, AccumulatorSkipsNulls) {
  Accumulator avg(MonoidKind::kAvg);
  avg.Add(Value::Null());
  avg.Add(Value::Int(10));
  avg.Add(Value::Null());
  EXPECT_EQ(avg.Finish(), Value::Real(10.0));

  Accumulator set(MonoidKind::kSet);
  set.Add(Value::Null());
  EXPECT_EQ(set.Finish(), Value::Set({}));
}

TEST(MonoidTest, AccumulatorSaturation) {
  Accumulator some(MonoidKind::kSome);
  EXPECT_FALSE(some.Saturated());
  some.Add(Value::Bool(false));
  EXPECT_FALSE(some.Saturated());
  some.Add(Value::Bool(true));
  EXPECT_TRUE(some.Saturated());

  Accumulator all(MonoidKind::kAll);
  all.Add(Value::Bool(true));
  EXPECT_FALSE(all.Saturated());
  all.Add(Value::Bool(false));
  EXPECT_TRUE(all.Saturated());
  EXPECT_EQ(all.Finish(), Value::Bool(false));
}

TEST(MonoidTest, AccumulatorCollections) {
  Accumulator set(MonoidKind::kSet);
  set.Add(Value::Int(2));
  set.Add(Value::Int(1));
  set.Add(Value::Int(2));
  EXPECT_EQ(set.Finish(), Value::Set({Value::Int(1), Value::Int(2)}));

  Accumulator bag(MonoidKind::kBag);
  bag.Add(Value::Int(2));
  bag.Add(Value::Int(2));
  EXPECT_EQ(bag.Finish(), Value::Bag({Value::Int(2), Value::Int(2)}));

  Accumulator list(MonoidKind::kList);
  list.Add(Value::Int(2));
  list.Add(Value::Int(1));
  EXPECT_EQ(list.Finish(), Value::List({Value::Int(2), Value::Int(1)}));
}

TEST(MonoidTest, AccumulatorMergePreReduced) {
  Accumulator set(MonoidKind::kSet);
  set.Merge(Value::Set({Value::Int(1), Value::Int(2)}));
  set.Merge(Value::Set({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(set.Finish(),
            Value::Set({Value::Int(1), Value::Int(2), Value::Int(3)}));
}

TEST(MonoidTest, AvgValuesDoNotMerge) {
  EXPECT_THROW(MonoidMerge(MonoidKind::kAvg, Value::Real(1), Value::Real(2)),
               UnsupportedError);
}

TEST(MonoidTest, ResultTypes) {
  EXPECT_EQ(MonoidResultType(MonoidKind::kSet, Type::Int())->ToString(),
            "set(int)");
  EXPECT_EQ(MonoidResultType(MonoidKind::kSum, Type::Int())->kind(),
            Type::Kind::kInt);
  EXPECT_EQ(MonoidResultType(MonoidKind::kSum, Type::Real())->kind(),
            Type::Kind::kReal);
  EXPECT_EQ(MonoidResultType(MonoidKind::kAll, Type::Bool())->kind(),
            Type::Kind::kBool);
  EXPECT_EQ(MonoidResultType(MonoidKind::kAvg, Type::Int())->kind(),
            Type::Kind::kReal);
}

TEST(MonoidTest, HeadConstraints) {
  EXPECT_EQ(MonoidHeadConstraint(MonoidKind::kSet), nullptr);
  EXPECT_EQ(MonoidHeadConstraint(MonoidKind::kSome)->kind(), Type::Kind::kBool);
  EXPECT_EQ(MonoidHeadConstraint(MonoidKind::kSum)->kind(), Type::Kind::kReal);
}

}  // namespace
}  // namespace ldb
