#!/usr/bin/env python3
"""Validates the observability artifacts bench_unnesting --metrics emits.

Usage:
    check_observability.py <bench.json> <metrics.prom> <trace.json> \
        [server.prom [ring.json [serving.json]]]
    check_observability.py --metrics-off <serving.json> [server.prom \
        [ring.json]]

Checks three things:
  * the benchmark report embeds a metrics snapshot with sane counters;
  * the Prometheus text exposition is well-formed (TYPE lines, cumulative
    histogram buckets, _count == +Inf bucket, well-formed OpenMetrics
    exemplar suffixes on bucket lines);
  * the Chrome trace-event JSON is loadable, events are well-formed with
    non-negative monotone-sortable timestamps, and spans within one
    (pid, tid) lane nest properly (a worker lane never has two morsels
    overlapping halfway).

With the optional fourth argument — a Prometheus dump from an ldb_server
run (--metrics-dump) — it additionally validates the network-front-end
instruments: connection and byte counters moved, per-opcode frame counters
are present, everything the server accepted was counted, and the latency
histograms carry at least one exemplar linking a bucket to a trace id.

With the optional fifth/sixth arguments it validates the request-tracing
artifacts (docs/OBSERVABILITY.md, "Request tracing"):
  * ring.json — an ldb_server --trace-dump / SIGUSR1 trace-ring snapshot:
    counters consistent, every kept trace carries a valid sample_reason,
    16-hex trace id, and a properly parented span tree;
  * serving.json — an ldb_loadgen --json report whose server_phases section
    must be present with non-negative phase means and a non-zero
    slowest_trace_id (the serving run issues traced requests).

The --metrics-off mode validates the opposite build: an ldb_server compiled
with -DLDB_METRICS=OFF must still *serve* (the loadgen report shows
successful requests at non-zero qps with no transport errors) while its
metrics dump proves the instruments are genuinely compiled out (every
query/connection counter pinned at zero, no exemplars anywhere) and its
trace-ring dump proves tracing compiled out too (capacity 0, nothing
submitted or kept). This guards the include seam tools/lint_layering.py
enforces: runtime sees obs only through obs/resource.h, so turning metrics
off must never take the server with it.

Exits non-zero with a message on the first violation.
"""

import json
import re
import sys
from collections import defaultdict


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


# A sample line: name, optional {labels}, a float value, and an optional
# OpenMetrics exemplar suffix (` # {trace_id="<16 hex>"} <value>`) that the
# histogram bucket lines carry once a traced request landed in the bucket.
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+]+|\+Inf|NaN)"
    r"(?:\s+#\s+\{trace_id=\"([0-9a-f]{16})\"\}\s+(-?[0-9.eE+]+|\+Inf))?$"
)
TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")


def check_prometheus(path):
    typed = {}
    samples = defaultdict(list)  # name -> [(labels, value)]
    exemplars = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram"
                ):
                    fail(f"{path}:{lineno}: malformed TYPE line: {line}")
                if parts[2] in typed:
                    fail(f"{path}:{lineno}: duplicate TYPE for {parts[2]}")
                typed[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: malformed sample line: {line}")
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            if m.group(4) is not None:
                # Exemplars only make sense on histogram bucket lines.
                if not name.endswith("_bucket"):
                    fail(f"{path}:{lineno}: exemplar on a non-bucket "
                         f"sample: {line}")
                if m.group(4) == "0" * 16:
                    fail(f"{path}:{lineno}: exemplar with the zero "
                         f"trace id: {line}")
                exemplars += 1
            samples[name].append((labels, float(value.replace("+Inf", "inf"))))

    if not typed:
        fail(f"{path}: no TYPE lines — empty exposition?")

    for name, kind in typed.items():
        if kind != "histogram":
            if not samples.get(name):
                fail(f"{path}: TYPE {name} declared but no samples")
            continue
        buckets = samples.get(name + "_bucket", [])
        if not buckets:
            fail(f"{path}: histogram {name} has no _bucket samples")
        # Buckets must be cumulative (non-decreasing in le order, which is
        # the emission order) and end at +Inf matching _count.
        prev = -1.0
        inf_cum = None
        for labels, cum in buckets:
            if cum < prev:
                fail(f"{path}: {name} buckets not cumulative at {labels}")
            prev = cum
            if 'le="+Inf"' in labels:
                inf_cum = cum
        if inf_cum is None:
            fail(f"{path}: {name} missing the +Inf bucket")
        counts = samples.get(name + "_count", [])
        if len(counts) != 1 or counts[0][1] != inf_cum:
            fail(f"{path}: {name}_count != +Inf bucket cumulative")
    print(f"prometheus OK: {len(typed)} metrics, "
          f"{sum(len(v) for v in samples.values())} samples, "
          f"{exemplars} exemplar(s)")
    return exemplars


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")

    lanes = defaultdict(list)
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            fail(f"{path}: event {i} has unsupported phase {ph!r}")
        if ph == "M":
            continue
        if not ev.get("name"):
            fail(f"{path}: complete event {i} has no name")
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: event {i} has bad ts {ts!r}")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"{path}: event {i} has bad dur {dur!r}")
        lanes[(ev.get("pid"), ev.get("tid"))].append((ts, dur, ev["name"]))

    if not lanes:
        fail(f"{path}: only metadata events, no spans")

    spans = 0
    for (pid, tid), lane in lanes.items():
        lane.sort()
        open_stack = []  # end timestamps of enclosing spans
        prev_ts = -1.0
        for ts, dur, name in lane:
            if ts < prev_ts:
                fail(f"{path}: lane {pid}/{tid} timestamps not sorted")
            prev_ts = ts
            # Timestamps are rendered with microsecond %.3f precision, so
            # adjacent spans can appear to overlap by up to ~1e-3 us.
            end = ts + dur
            while open_stack and ts >= open_stack[-1] - 2e-3:
                open_stack.pop()
            if open_stack and end > open_stack[-1] + 2e-3:
                fail(f"{path}: lane {pid}/{tid} span '{name}' "
                     f"[{ts}, {end}) overlaps its predecessor without nesting")
            open_stack.append(end)
            spans += 1
    print(f"trace OK: {spans} spans across {len(lanes)} lanes")


def check_bench(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not metrics:
        fail(f"{path}: no top-level metrics block (run with --metrics)")
    by_name = defaultdict(float)
    histograms = {}
    for s in metrics.get("samples", []):
        if "name" not in s or "type" not in s:
            fail(f"{path}: metrics sample missing name/type: {s}")
        if s["type"] == "counter":
            by_name[s["name"]] += s.get("value", 0)
        elif s["type"] == "histogram":
            histograms[s["name"]] = s
        elif s["type"] == "gauge":
            # gauges accumulate by max: ldb_operator_mem_peak_bytes has one
            # series per operator class and only the peak matters here.
            by_name[s["name"]] = max(by_name[s["name"]], s.get("value", 0))
    started = by_name.get("ldb_queries_started_total", 0)
    ok = by_name.get("ldb_queries_ok_total", 0)
    hits = by_name.get("ldb_plan_cache_hits_total", 0)
    if started <= 0:
        fail(f"{path}: ldb_queries_started_total is {started} after a "
             "service run")
    if ok <= 0 or ok > started:
        fail(f"{path}: ldb_queries_ok_total {ok} inconsistent with "
             f"started {started}")
    if hits <= 0:
        fail(f"{path}: no plan-cache hits in a repeated-statement mix")

    # Parallel-pipeline probe: the --metrics block runs morsel-parallel
    # executions, so the dispatch/busy counters must have moved.
    if by_name.get("ldb_morsels_dispatched_total", 0) <= 0:
        fail(f"{path}: ldb_morsels_dispatched_total is zero — the parallel "
             "probe did not engage")
    if by_name.get("ldb_worker_busy_ns_total", 0) <= 0:
        fail(f"{path}: ldb_worker_busy_ns_total is zero")

    # Memory attribution: peak-bytes histogram populated, at least one
    # operator class charged, and build identity present.
    mem_peak = histograms.get("ldb_query_mem_peak_bytes")
    if mem_peak is None or mem_peak.get("count", 0) <= 0:
        fail(f"{path}: ldb_query_mem_peak_bytes histogram empty")
    if mem_peak.get("sum", 0) <= 0:
        fail(f"{path}: ldb_query_mem_peak_bytes sum is zero — no query "
             "charged any tracked memory")
    if by_name.get("ldb_operator_mem_peak_bytes", 0) <= 0:
        fail(f"{path}: no operator class has a non-zero memory peak")
    build_info = [s for s in metrics.get("samples", [])
                  if s["name"] == "ldb_build_info"]
    if not build_info:
        fail(f"{path}: ldb_build_info gauge missing")
    for key in ("commit", "build_type", "metrics"):
        if key not in build_info[0].get("labels", {}):
            fail(f"{path}: ldb_build_info missing label {key!r}")
    rb = histograms.get("ldb_result_bytes")
    if rb is None or rb.get("count", 0) <= 0:
        fail(f"{path}: ldb_result_bytes histogram empty — it must be "
             "recorded for every successful query")

    # Live-introspection probe: the active_queries capture must be present
    # and each entry shaped like an ActiveQueryInfo.
    active = metrics.get("active_queries")
    if active is None:
        fail(f"{path}: metrics block has no active_queries capture")
    for q in active:
        for key in ("query_id", "session", "phase", "elapsed_ms", "rows",
                    "mem_in_use_bytes", "mem_peak_bytes", "remote"):
            if key not in q:
                fail(f"{path}: active_queries entry missing {key!r}: {q}")
        if q["phase"] not in ("queued", "compiling", "executing"):
            fail(f"{path}: active_queries entry has bad phase: {q['phase']}")
        # In-process bench queries have no peer; over TCP this is "ip:port".
        if not isinstance(q["remote"], str):
            fail(f"{path}: active_queries 'remote' is not a string: {q}")

    print(f"bench metrics OK: {started:.0f} started, {ok:.0f} ok, "
          f"{hits:.0f} cache hits, "
          f"{by_name['ldb_morsels_dispatched_total']:.0f} morsels, "
          f"mem peak sum {mem_peak['sum']:.0f}B, "
          f"{len(active)} active-query capture(s)")


def parse_prom_samples(path):
    """name -> [(labels-dict, value)] for every non-comment sample line."""
    out = defaultdict(list)
    label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: malformed sample line: {line}")
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            out[name].append((dict(label_re.findall(labels)),
                              float(value.replace("+Inf", "inf"))))
    return out


def check_server(path):
    """Validates the network instruments in an ldb_server --metrics-dump."""
    exemplars = check_prometheus(path)  # structural pass first
    samples = parse_prom_samples(path)
    if exemplars <= 0:
        fail(f"{path}: no histogram exemplars — a traced serving run must "
             "leave a trace_id on at least one latency bucket")

    def total(name):
        if name not in samples:
            fail(f"{path}: server metric {name} missing")
        return sum(v for _, v in samples[name])

    conns_total = total("ldb_connections_total")
    if conns_total <= 0:
        fail(f"{path}: ldb_connections_total is zero after a server run")
    conns_open = total("ldb_connections_open")
    if conns_open < 0 or conns_open > conns_total:
        fail(f"{path}: ldb_connections_open {conns_open} inconsistent with "
             f"total {conns_total}")
    sent = total("ldb_net_bytes_sent_total")
    recv = total("ldb_net_bytes_recv_total")
    if sent <= 0 or recv <= 0:
        fail(f"{path}: ldb_net_bytes_{{sent,recv}}_total did not move "
             f"(sent {sent}, recv {recv})")

    frames = {labels.get("op", "?"): v
              for labels, v in samples.get("ldb_net_frames_total", [])}
    if not frames:
        fail(f"{path}: ldb_net_frames_total has no per-opcode series")
    for op in ("HELLO", "EXECUTE"):
        if frames.get(op, 0) <= 0:
            fail(f"{path}: ldb_net_frames_total{{op=\"{op}\"}} is zero — "
                 "the serving run issued no such frames?")
    if frames.get("HELLO", 0) > conns_total:
        fail(f"{path}: more HELLO frames ({frames['HELLO']}) than "
             f"connections ({conns_total})")
    print(f"server metrics OK: {conns_total:.0f} connections, "
          f"{sent:.0f}B sent, {recv:.0f}B received, "
          f"frames {sorted(frames.items())}")


VALID_SAMPLE_REASONS = ("slow", "error", "head", "forced")


def check_trace_ring(path, expect_empty=False):
    """Validates an ldb_server --trace-dump / SIGUSR1 trace-ring snapshot."""
    with open(path) as f:
        doc = json.load(f)
    for key in ("capacity", "submitted", "kept", "dropped", "traces"):
        if key not in doc:
            fail(f"{path}: trace-ring snapshot missing {key!r}")
    traces = doc["traces"]
    if doc["kept"] < len(traces):
        fail(f"{path}: kept counter {doc['kept']} below the {len(traces)} "
             "traces actually present")
    if doc["submitted"] != doc["kept"] + doc["dropped"]:
        fail(f"{path}: submitted != kept + dropped "
             f"({doc['submitted']} != {doc['kept']} + {doc['dropped']})")
    if expect_empty:
        if doc["capacity"] != 0 or doc["submitted"] != 0 or traces:
            fail(f"{path}: -DLDB_METRICS=OFF trace ring is not compiled "
                 f"out: capacity {doc['capacity']}, submitted "
                 f"{doc['submitted']}, {len(traces)} trace(s)")
        print("trace ring OK: compiled out (capacity 0, nothing submitted)")
        return
    if len(traces) > doc["capacity"]:
        fail(f"{path}: {len(traces)} traces exceed capacity "
             f"{doc['capacity']}")
    if not traces:
        fail(f"{path}: trace ring kept nothing — the serving run must "
             "leave at least one sampled trace")
    n_spans = 0
    for t in traces:
        tid = t.get("trace_id", "")
        if not TRACE_ID_RE.match(tid) or tid == "0" * 16:
            fail(f"{path}: bad trace_id {tid!r}")
        if t.get("sample_reason") not in VALID_SAMPLE_REASONS:
            fail(f"{path}: trace {tid} has bad sample_reason "
                 f"{t.get('sample_reason')!r}")
        if not t.get("status"):
            fail(f"{path}: trace {tid} has no status")
        total = t.get("total_ms", -1)
        if not isinstance(total, (int, float)) or total < 0:
            fail(f"{path}: trace {tid} has bad total_ms {total!r}")
        spans = t.get("spans", [])
        if not spans:
            fail(f"{path}: trace {tid} has no spans")
        ids = set()
        roots = 0
        for s in spans:
            for key in ("span_id", "parent_span_id", "name", "lane",
                        "start_ms", "dur_ms"):
                if key not in s:
                    fail(f"{path}: trace {tid} span missing {key!r}: {s}")
            if s["span_id"] in ids or s["span_id"] == 0:
                fail(f"{path}: trace {tid} duplicate/zero span_id "
                     f"{s['span_id']}")
            ids.add(s["span_id"])
            if s["start_ms"] < 0 or s["dur_ms"] < 0:
                fail(f"{path}: trace {tid} span {s['name']!r} has negative "
                     "timing")
            roots += s["parent_span_id"] == 0
        if roots != 1:
            fail(f"{path}: trace {tid} has {roots} roots (want exactly 1)")
        for s in spans:
            if s["parent_span_id"] != 0 and s["parent_span_id"] not in ids:
                fail(f"{path}: trace {tid} span {s['name']!r} parent "
                     f"{s['parent_span_id']} does not resolve")
        n_spans += len(spans)
    print(f"trace ring OK: {len(traces)} kept trace(s), {n_spans} spans, "
          f"{doc['submitted']} submitted / {doc['dropped']} dropped")


def check_serving_phases(path):
    """Validates the server_phases section of an ldb_loadgen --json report."""
    with open(path) as f:
        doc = json.load(f)
    recs = doc.get("serving")
    if not recs:
        fail(f"{path}: no serving records — did ldb_loadgen run?")
    rec = recs[0]
    phases = rec.get("server_phases")
    if phases is None:
        fail(f"{path}: serving record has no server_phases section")
    for key in ("queue_wait_ms_mean", "queue_ms_mean", "compile_ms_mean",
                "exec_ms_mean", "serialize_ms_mean"):
        v = phases.get(key)
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"{path}: server_phases.{key} is {v!r}")
    if rec.get("ok", 0) > 0 and phases.get("exec_ms_mean", 0) <= 0:
        fail(f"{path}: requests succeeded but exec_ms_mean is zero — the "
             "EXEC_OK phase extension did not come back")
    slowest = phases.get("slowest_trace_id", "")
    if not TRACE_ID_RE.match(slowest) or slowest == "0" * 16:
        fail(f"{path}: server_phases.slowest_trace_id {slowest!r} is not a "
             "real trace id — traced requests must report their ids")
    print(f"serving phases OK: exec mean {phases['exec_ms_mean']:.3f} ms, "
          f"slowest trace {slowest}")


def check_metrics_off(serving_path, prom_path=None, ring_path=None):
    """Asserts a -DLDB_METRICS=OFF server served real traffic with every
    instrument compiled out."""
    with open(serving_path) as f:
        doc = json.load(f)
    recs = doc.get("serving")
    if not recs:
        fail(f"{serving_path}: no serving records — did ldb_loadgen run?")
    rec = recs[0]
    if rec.get("ok", 0) <= 0:
        fail(f"{serving_path}: metrics-off server completed no requests: "
             f"{rec}")
    if rec.get("achieved_qps", 0) <= 0:
        fail(f"{serving_path}: metrics-off server achieved zero qps: {rec}")
    if rec.get("transport_errors", 0) != 0:
        fail(f"{serving_path}: transport errors against the metrics-off "
             f"server: {rec}")
    # The compile gate also covers trace minting: a metrics-off server must
    # not report trace ids back to the loadgen.
    phases = rec.get("server_phases")
    if phases is not None:
        slowest = phases.get("slowest_trace_id", "0" * 16)
        if slowest not in ("", "0" * 16):
            fail(f"{serving_path}: metrics-off server reported trace id "
                 f"{slowest} — trace minting escaped the compile-out gate")
    print(f"metrics-off serving OK: {rec['ok']} ok requests at "
          f"{rec['achieved_qps']:.1f} q/s")

    if prom_path is not None:
        # The registry still exists when compiled out (call sites stay
        # #ifdef-free), so the dump is well-formed — but nothing may have
        # counted. A moving counter here means some instrument escaped the
        # LDB_METRICS_ENABLED gate.
        exemplars = check_prometheus(prom_path)
        if exemplars != 0:
            fail(f"{prom_path}: {exemplars} exemplar(s) in a "
                 "-DLDB_METRICS=OFF build — exemplar capture escaped the "
                 "compile-out gate")
        samples = parse_prom_samples(prom_path)
        for name in ("ldb_queries_started_total", "ldb_queries_ok_total",
                     "ldb_connections_total", "ldb_net_bytes_recv_total",
                     "ldb_plan_cache_hits_total",
                     "ldb_plan_cache_misses_total",
                     "ldb_morsels_dispatched_total"):
            moved = sum(v for _, v in samples.get(name, []))
            if moved != 0:
                fail(f"{prom_path}: {name} = {moved} in a -DLDB_METRICS=OFF "
                     "build — an instrument escaped the compile-out gate")
        print(f"metrics-off dump OK: all instruments pinned at zero")
    if ring_path is not None:
        check_trace_ring(ring_path, expect_empty=True)


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--metrics-off":
        if len(sys.argv) not in (3, 4, 5):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_metrics_off(*sys.argv[2:])
        print("metrics-off build OK")
        return
    if len(sys.argv) not in (4, 5, 6, 7):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_bench(sys.argv[1])
    check_prometheus(sys.argv[2])
    check_trace(sys.argv[3])
    if len(sys.argv) >= 5:
        check_server(sys.argv[4])
    if len(sys.argv) >= 6:
        check_trace_ring(sys.argv[5])
    if len(sys.argv) >= 7:
        check_serving_phases(sys.argv[6])
    print("all observability artifacts OK")


if __name__ == "__main__":
    main()
