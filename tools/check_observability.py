#!/usr/bin/env python3
"""Validates the observability artifacts bench_unnesting --metrics emits.

Usage:
    check_observability.py <bench.json> <metrics.prom> <trace.json> \
        [server.prom]
    check_observability.py --metrics-off <serving.json> [server.prom]

Checks three things:
  * the benchmark report embeds a metrics snapshot with sane counters;
  * the Prometheus text exposition is well-formed (TYPE lines, cumulative
    histogram buckets, _count == +Inf bucket);
  * the Chrome trace-event JSON is loadable, events are well-formed with
    non-negative monotone-sortable timestamps, and spans within one
    (pid, tid) lane nest properly (a worker lane never has two morsels
    overlapping halfway).

With the optional fourth argument — a Prometheus dump from an ldb_server
run (--metrics-dump) — it additionally validates the network-front-end
instruments: connection and byte counters moved, per-opcode frame counters
are present, and everything the server accepted was counted.

The --metrics-off mode validates the opposite build: an ldb_server compiled
with -DLDB_METRICS=OFF must still *serve* (the loadgen report shows
successful requests at non-zero qps with no transport errors) while its
metrics dump proves the instruments are genuinely compiled out (every
query/connection counter pinned at zero). This guards the include seam
tools/lint_layering.py enforces: runtime sees obs only through
obs/resource.h, so turning metrics off must never take the server with it.

Exits non-zero with a message on the first violation.
"""

import json
import re
import sys
from collections import defaultdict


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


# A sample line: name, optional {labels}, a float value.
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+]+|\+Inf|NaN)$"
)


def check_prometheus(path):
    typed = {}
    samples = defaultdict(list)  # name -> [(labels, value)]
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram"
                ):
                    fail(f"{path}:{lineno}: malformed TYPE line: {line}")
                if parts[2] in typed:
                    fail(f"{path}:{lineno}: duplicate TYPE for {parts[2]}")
                typed[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: malformed sample line: {line}")
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            samples[name].append((labels, float(value.replace("+Inf", "inf"))))

    if not typed:
        fail(f"{path}: no TYPE lines — empty exposition?")

    for name, kind in typed.items():
        if kind != "histogram":
            if not samples.get(name):
                fail(f"{path}: TYPE {name} declared but no samples")
            continue
        buckets = samples.get(name + "_bucket", [])
        if not buckets:
            fail(f"{path}: histogram {name} has no _bucket samples")
        # Buckets must be cumulative (non-decreasing in le order, which is
        # the emission order) and end at +Inf matching _count.
        prev = -1.0
        inf_cum = None
        for labels, cum in buckets:
            if cum < prev:
                fail(f"{path}: {name} buckets not cumulative at {labels}")
            prev = cum
            if 'le="+Inf"' in labels:
                inf_cum = cum
        if inf_cum is None:
            fail(f"{path}: {name} missing the +Inf bucket")
        counts = samples.get(name + "_count", [])
        if len(counts) != 1 or counts[0][1] != inf_cum:
            fail(f"{path}: {name}_count != +Inf bucket cumulative")
    print(f"prometheus OK: {len(typed)} metrics, "
          f"{sum(len(v) for v in samples.values())} samples")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")

    lanes = defaultdict(list)
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            fail(f"{path}: event {i} has unsupported phase {ph!r}")
        if ph == "M":
            continue
        if not ev.get("name"):
            fail(f"{path}: complete event {i} has no name")
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: event {i} has bad ts {ts!r}")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"{path}: event {i} has bad dur {dur!r}")
        lanes[(ev.get("pid"), ev.get("tid"))].append((ts, dur, ev["name"]))

    if not lanes:
        fail(f"{path}: only metadata events, no spans")

    spans = 0
    for (pid, tid), lane in lanes.items():
        lane.sort()
        open_stack = []  # end timestamps of enclosing spans
        prev_ts = -1.0
        for ts, dur, name in lane:
            if ts < prev_ts:
                fail(f"{path}: lane {pid}/{tid} timestamps not sorted")
            prev_ts = ts
            # Timestamps are rendered with microsecond %.3f precision, so
            # adjacent spans can appear to overlap by up to ~1e-3 us.
            end = ts + dur
            while open_stack and ts >= open_stack[-1] - 2e-3:
                open_stack.pop()
            if open_stack and end > open_stack[-1] + 2e-3:
                fail(f"{path}: lane {pid}/{tid} span '{name}' "
                     f"[{ts}, {end}) overlaps its predecessor without nesting")
            open_stack.append(end)
            spans += 1
    print(f"trace OK: {spans} spans across {len(lanes)} lanes")


def check_bench(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not metrics:
        fail(f"{path}: no top-level metrics block (run with --metrics)")
    by_name = defaultdict(float)
    histograms = {}
    for s in metrics.get("samples", []):
        if "name" not in s or "type" not in s:
            fail(f"{path}: metrics sample missing name/type: {s}")
        if s["type"] == "counter":
            by_name[s["name"]] += s.get("value", 0)
        elif s["type"] == "histogram":
            histograms[s["name"]] = s
        elif s["type"] == "gauge":
            # gauges accumulate by max: ldb_operator_mem_peak_bytes has one
            # series per operator class and only the peak matters here.
            by_name[s["name"]] = max(by_name[s["name"]], s.get("value", 0))
    started = by_name.get("ldb_queries_started_total", 0)
    ok = by_name.get("ldb_queries_ok_total", 0)
    hits = by_name.get("ldb_plan_cache_hits_total", 0)
    if started <= 0:
        fail(f"{path}: ldb_queries_started_total is {started} after a "
             "service run")
    if ok <= 0 or ok > started:
        fail(f"{path}: ldb_queries_ok_total {ok} inconsistent with "
             f"started {started}")
    if hits <= 0:
        fail(f"{path}: no plan-cache hits in a repeated-statement mix")

    # Parallel-pipeline probe: the --metrics block runs morsel-parallel
    # executions, so the dispatch/busy counters must have moved.
    if by_name.get("ldb_morsels_dispatched_total", 0) <= 0:
        fail(f"{path}: ldb_morsels_dispatched_total is zero — the parallel "
             "probe did not engage")
    if by_name.get("ldb_worker_busy_ns_total", 0) <= 0:
        fail(f"{path}: ldb_worker_busy_ns_total is zero")

    # Memory attribution: peak-bytes histogram populated, at least one
    # operator class charged, and build identity present.
    mem_peak = histograms.get("ldb_query_mem_peak_bytes")
    if mem_peak is None or mem_peak.get("count", 0) <= 0:
        fail(f"{path}: ldb_query_mem_peak_bytes histogram empty")
    if mem_peak.get("sum", 0) <= 0:
        fail(f"{path}: ldb_query_mem_peak_bytes sum is zero — no query "
             "charged any tracked memory")
    if by_name.get("ldb_operator_mem_peak_bytes", 0) <= 0:
        fail(f"{path}: no operator class has a non-zero memory peak")
    build_info = [s for s in metrics.get("samples", [])
                  if s["name"] == "ldb_build_info"]
    if not build_info:
        fail(f"{path}: ldb_build_info gauge missing")
    for key in ("commit", "build_type", "metrics"):
        if key not in build_info[0].get("labels", {}):
            fail(f"{path}: ldb_build_info missing label {key!r}")
    rb = histograms.get("ldb_result_bytes")
    if rb is None or rb.get("count", 0) <= 0:
        fail(f"{path}: ldb_result_bytes histogram empty — it must be "
             "recorded for every successful query")

    # Live-introspection probe: the active_queries capture must be present
    # and each entry shaped like an ActiveQueryInfo.
    active = metrics.get("active_queries")
    if active is None:
        fail(f"{path}: metrics block has no active_queries capture")
    for q in active:
        for key in ("query_id", "session", "phase", "elapsed_ms", "rows",
                    "mem_in_use_bytes", "mem_peak_bytes", "remote"):
            if key not in q:
                fail(f"{path}: active_queries entry missing {key!r}: {q}")
        if q["phase"] not in ("queued", "compiling", "executing"):
            fail(f"{path}: active_queries entry has bad phase: {q['phase']}")
        # In-process bench queries have no peer; over TCP this is "ip:port".
        if not isinstance(q["remote"], str):
            fail(f"{path}: active_queries 'remote' is not a string: {q}")

    print(f"bench metrics OK: {started:.0f} started, {ok:.0f} ok, "
          f"{hits:.0f} cache hits, "
          f"{by_name['ldb_morsels_dispatched_total']:.0f} morsels, "
          f"mem peak sum {mem_peak['sum']:.0f}B, "
          f"{len(active)} active-query capture(s)")


def parse_prom_samples(path):
    """name -> [(labels-dict, value)] for every non-comment sample line."""
    out = defaultdict(list)
    label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: malformed sample line: {line}")
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            out[name].append((dict(label_re.findall(labels)),
                              float(value.replace("+Inf", "inf"))))
    return out


def check_server(path):
    """Validates the network instruments in an ldb_server --metrics-dump."""
    check_prometheus(path)  # structural pass first
    samples = parse_prom_samples(path)

    def total(name):
        if name not in samples:
            fail(f"{path}: server metric {name} missing")
        return sum(v for _, v in samples[name])

    conns_total = total("ldb_connections_total")
    if conns_total <= 0:
        fail(f"{path}: ldb_connections_total is zero after a server run")
    conns_open = total("ldb_connections_open")
    if conns_open < 0 or conns_open > conns_total:
        fail(f"{path}: ldb_connections_open {conns_open} inconsistent with "
             f"total {conns_total}")
    sent = total("ldb_net_bytes_sent_total")
    recv = total("ldb_net_bytes_recv_total")
    if sent <= 0 or recv <= 0:
        fail(f"{path}: ldb_net_bytes_{{sent,recv}}_total did not move "
             f"(sent {sent}, recv {recv})")

    frames = {labels.get("op", "?"): v
              for labels, v in samples.get("ldb_net_frames_total", [])}
    if not frames:
        fail(f"{path}: ldb_net_frames_total has no per-opcode series")
    for op in ("HELLO", "EXECUTE"):
        if frames.get(op, 0) <= 0:
            fail(f"{path}: ldb_net_frames_total{{op=\"{op}\"}} is zero — "
                 "the serving run issued no such frames?")
    if frames.get("HELLO", 0) > conns_total:
        fail(f"{path}: more HELLO frames ({frames['HELLO']}) than "
             f"connections ({conns_total})")
    print(f"server metrics OK: {conns_total:.0f} connections, "
          f"{sent:.0f}B sent, {recv:.0f}B received, "
          f"frames {sorted(frames.items())}")


def check_metrics_off(serving_path, prom_path=None):
    """Asserts a -DLDB_METRICS=OFF server served real traffic with every
    instrument compiled out."""
    with open(serving_path) as f:
        doc = json.load(f)
    recs = doc.get("serving")
    if not recs:
        fail(f"{serving_path}: no serving records — did ldb_loadgen run?")
    rec = recs[0]
    if rec.get("ok", 0) <= 0:
        fail(f"{serving_path}: metrics-off server completed no requests: "
             f"{rec}")
    if rec.get("achieved_qps", 0) <= 0:
        fail(f"{serving_path}: metrics-off server achieved zero qps: {rec}")
    if rec.get("transport_errors", 0) != 0:
        fail(f"{serving_path}: transport errors against the metrics-off "
             f"server: {rec}")
    print(f"metrics-off serving OK: {rec['ok']} ok requests at "
          f"{rec['achieved_qps']:.1f} q/s")

    if prom_path is None:
        return
    # The registry still exists when compiled out (call sites stay
    # #ifdef-free), so the dump is well-formed — but nothing may have
    # counted. A moving counter here means some instrument escaped the
    # LDB_METRICS_ENABLED gate.
    check_prometheus(prom_path)
    samples = parse_prom_samples(prom_path)
    for name in ("ldb_queries_started_total", "ldb_queries_ok_total",
                 "ldb_connections_total", "ldb_net_bytes_recv_total",
                 "ldb_plan_cache_hits_total", "ldb_plan_cache_misses_total",
                 "ldb_morsels_dispatched_total"):
        moved = sum(v for _, v in samples.get(name, []))
        if moved != 0:
            fail(f"{prom_path}: {name} = {moved} in a -DLDB_METRICS=OFF "
                 "build — an instrument escaped the compile-out gate")
    print(f"metrics-off dump OK: all instruments pinned at zero")


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--metrics-off":
        if len(sys.argv) not in (3, 4):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_metrics_off(*sys.argv[2:])
        print("metrics-off build OK")
        return
    if len(sys.argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_bench(sys.argv[1])
    check_prometheus(sys.argv[2])
    check_trace(sys.argv[3])
    if len(sys.argv) == 5:
        check_server(sys.argv[4])
    print("all observability artifacts OK")


if __name__ == "__main__":
    main()
