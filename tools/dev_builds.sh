#!/usr/bin/env sh
# Reproducible auxiliary build trees (DESIGN.md, "Locking discipline").
#
# The repo's CI and local workflows use three configure variants beyond the
# default `build/` tree:
#
#   nometrics   build-nometrics/   -DLDB_METRICS=OFF, Release — the
#               "metrics compiled out" baseline the layering lint protects
#               (obs/resource.h is the only obs header runtime sees, so
#               this tree must configure, build, and serve cleanly).
#   prof        build-prof/        RelWithDebInfo + frame pointers — what
#               perf/flamegraph sessions and the bench profile artifacts
#               should be collected from.
#   tsafe       build-tsafe/       clang++ -Werror=thread-safety — the
#               static lock-discipline gate (requires clang; the configure
#               step also runs the negative-compile check in
#               tests/CMakeLists.txt).
#
# The failure mode this script exists for: a stale build directory whose
# CMakeCache.txt still carries last month's flags, silently giving you a
# metrics-ON "nometrics" tree. Each invocation stamps the exact configure
# arguments into <dir>/.ldb_config and wipes the tree whenever the stamp
# does not match, so the named configurations are reproducible from any
# checkout state.
#
# Usage:  tools/dev_builds.sh <nometrics|prof|tsafe|all> [--build]
#         --build additionally compiles the tree (-j nproc).

set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

usage() {
    sed -n '2,28p' "$0" | sed 's/^# \{0,1\}//'
    exit 2
}

configure() {
    # configure <dir> <stamp> [cmake args...]
    dir="$ROOT/$1"
    stamp="$2"
    shift 2
    if [ -f "$dir/.ldb_config" ] && [ "$(cat "$dir/.ldb_config")" = "$stamp" ]
    then
        echo "== $dir: configuration unchanged ($stamp)"
    else
        if [ -d "$dir" ]; then
            echo "== $dir: stale or unstamped tree, wiping"
            rm -rf "$dir"
        fi
        echo "== $dir: configuring: $stamp"
        cmake -B "$dir" -S "$ROOT" "$@"
        printf '%s' "$stamp" > "$dir/.ldb_config"
    fi
    if [ "$DO_BUILD" = yes ]; then
        cmake --build "$dir" -j"$(nproc)"
    fi
}

nometrics() {
    configure build-nometrics \
        "Release LDB_METRICS=OFF" \
        -DCMAKE_BUILD_TYPE=Release -DLDB_METRICS=OFF
}

prof() {
    configure build-prof \
        "RelWithDebInfo frame-pointers" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS=-fno-omit-frame-pointer
}

tsafe() {
    command -v clang++ >/dev/null 2>&1 || {
        echo "dev_builds.sh: tsafe needs clang++ (the thread-safety" \
             "analysis is clang-only)" >&2
        exit 1
    }
    CC=clang CXX=clang++ configure build-tsafe \
        "clang Werror=thread-safety" \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_CXX_FLAGS=-Werror=thread-safety
}

[ $# -ge 1 ] || usage
TARGET="$1"
DO_BUILD=no
[ "${2:-}" = "--build" ] && DO_BUILD=yes

case "$TARGET" in
    nometrics) nometrics ;;
    prof)      prof ;;
    tsafe)     tsafe ;;
    all)       nometrics; prof; tsafe ;;
    *)         usage ;;
esac
