#!/usr/bin/env python3
"""Compares two bench_unnesting JSON reports section by section.

Usage:
    bench_compare.py <baseline.json> <current.json> [--threshold PCT]

"results" records are matched on (experiment, engine, scale, threads) and
printed with their wall-time delta; "serving" records (the ldb_loadgen /
ldb_server numbers, see docs/WIRE.md) are matched on their label and
printed with achieved-qps and tail-latency deltas. Records or whole
sections present on only one side are reported as added/removed rather
than being an error — a report from before a section existed must still
compare cleanly against one from after.

Pairs whose |delta| exceeds the threshold (default 25%) are flagged as
WARN. The exit code is always 0 — benchmark noise in shared CI runners
makes regressions advisory, not blocking; the WARN lines are for a human
reading the job log.
"""

import argparse
import json
import sys


def key_of(rec):
    return (rec.get("experiment"), rec.get("engine"),
            rec.get("scale"), rec.get("threads"))


def sort_key(k):
    # Keys may mix None/str/int across malformed or partial records; compare
    # by stringified fields so sorting never raises TypeError.
    return tuple(str(x) for x in k)


def load(path):
    with open(path) as f:
        return json.load(f)


def timed_results(doc):
    out = {}
    for rec in doc.get("results", []):
        ms = rec.get("ms")
        if ms is None or ms <= 0:
            continue
        # Duplicate keys (repeated experiments) keep the last record, which
        # matches the report's own "latest run wins" reading.
        out[key_of(rec)] = ms
    return out


def serving_records(doc):
    out = {}
    for rec in doc.get("serving", []):
        out[rec.get("label", "?")] = rec
    return out


def pct_delta(base, cur):
    if not base:
        return 0.0
    return (cur - base) / base * 100.0


def compare_results(base_doc, cur_doc, threshold):
    base = timed_results(base_doc)
    cur = timed_results(cur_doc)
    if not base and not cur:
        return 0, 0
    warns = 0
    shared = sorted((k for k in base if k in cur), key=sort_key)
    for k in shared:
        experiment, engine, scale, threads = k
        b, c = base[k], cur[k]
        delta = pct_delta(b, c)
        flag = ""
        if abs(delta) > threshold:
            flag = "  WARN" if delta > 0 else "  (faster)"
            warns += delta > 0
        label = f"{experiment}/{engine} scale={scale} threads={threads}"
        print(f"{label:<55} {b:10.3f} ms -> {c:10.3f} ms  {delta:+7.1f}%"
              f"{flag}")
    only_base = sorted((k for k in base if k not in cur), key=sort_key)
    only_cur = sorted((k for k in cur if k not in base), key=sort_key)
    for k in only_base:
        print(f"results: removed (baseline only): {k}")
    for k in only_cur:
        print(f"results: added (current only):    {k}")
    return len(shared), warns


def compare_serving(base_doc, cur_doc, threshold):
    base = serving_records(base_doc)
    cur = serving_records(cur_doc)
    if not base and not cur:
        return 0, 0
    if not base:
        print(f"serving: section added (current only, "
              f"{len(cur)} record(s))")
    if not cur:
        print(f"serving: section removed (baseline only, "
              f"{len(base)} record(s))")
    warns = 0
    shared = sorted(label for label in base if label in cur)
    for label in shared:
        b, c = base[label], cur[label]
        qps_b = b.get("achieved_qps", 0) or 0
        qps_c = c.get("achieved_qps", 0) or 0
        p95_b = b.get("p95_ms", 0) or 0
        p95_c = c.get("p95_ms", 0) or 0
        qps_delta = pct_delta(qps_b, qps_c)
        p95_delta = pct_delta(p95_b, p95_c)
        # Throughput dropping or tail latency rising is the regression side.
        flag = ""
        if qps_delta < -threshold or p95_delta > threshold:
            flag = "  WARN"
            warns += 1
        elif qps_delta > threshold or p95_delta < -threshold:
            flag = "  (faster)"
        print(f"serving/{label:<46} {qps_b:8.1f} -> {qps_c:8.1f} q/s "
              f"({qps_delta:+6.1f}%) | p95 {p95_b:8.2f} -> {p95_c:8.2f} ms "
              f"({p95_delta:+6.1f}%){flag}")
        rej_b, rej_c = b.get("rejected", 0), c.get("rejected", 0)
        if rej_b != rej_c:
            print(f"serving/{label}: rejected {rej_b} -> {rej_c}")
    for label in sorted(label for label in base if label not in cur):
        print(f"serving: removed (baseline only): {label}")
    for label in sorted(label for label in cur if label not in base):
        print(f"serving: added (current only):    {label}")
    return len(shared), warns


def main():
    ap = argparse.ArgumentParser(
        description="Per-experiment deltas between bench reports")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="warn when |delta| exceeds this percentage")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)

    n_results, warns_results = compare_results(base_doc, cur_doc,
                                               args.threshold)
    n_serving, warns_serving = compare_serving(base_doc, cur_doc,
                                               args.threshold)
    pairs = n_results + n_serving
    warns = warns_results + warns_serving
    if pairs == 0:
        print("bench_compare: no shared records; nothing to compare")
        return

    print(f"bench_compare: {pairs} pairs compared "
          f"({n_results} results, {n_serving} serving), {warns} regression "
          f"warning(s) over {args.threshold:.0f}%")
    if warns:
        print("bench_compare: WARN lines are advisory — shared-runner "
              "timing noise regularly exceeds the threshold; investigate "
              "only when a warning persists across runs", file=sys.stderr)


if __name__ == "__main__":
    main()
