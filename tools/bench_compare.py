#!/usr/bin/env python3
"""Compares two bench_unnesting JSON reports experiment by experiment.

Usage:
    bench_compare.py <baseline.json> <current.json> [--threshold PCT]

Matches result records on (experiment, engine, scale, threads) and prints
the wall-time delta for each pair. Pairs whose |delta| exceeds the
threshold (default 25%) are flagged as WARN; pairs present on only one
side are listed as unmatched. The exit code is always 0 — benchmark noise
in shared CI runners makes regressions advisory, not blocking; the WARN
lines are for a human reading the job log.
"""

import argparse
import json
import sys


def key_of(rec):
    return (rec.get("experiment"), rec.get("engine"),
            rec.get("scale"), rec.get("threads"))


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for rec in doc.get("results", []):
        ms = rec.get("ms")
        if ms is None or ms <= 0:
            continue
        # Duplicate keys (repeated experiments) keep the last record, which
        # matches the report's own "latest run wins" reading.
        out[key_of(rec)] = ms
    return out


def main():
    ap = argparse.ArgumentParser(
        description="Per-experiment wall-time deltas between bench reports")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="warn when |delta| exceeds this percentage")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if not base or not cur:
        print("bench_compare: one of the reports has no timed results; "
              "nothing to compare")
        return

    shared = sorted(k for k in base if k in cur)
    warns = 0
    for k in shared:
        experiment, engine, scale, threads = k
        b, c = base[k], cur[k]
        delta = (c - b) / b * 100.0
        flag = ""
        if abs(delta) > args.threshold:
            flag = "  WARN" if delta > 0 else "  (faster)"
            warns += delta > 0
        label = f"{experiment}/{engine} scale={scale} threads={threads}"
        print(f"{label:<55} {b:10.3f} ms -> {c:10.3f} ms  {delta:+7.1f}%"
              f"{flag}")

    only_base = sorted(k for k in base if k not in cur)
    only_cur = sorted(k for k in cur if k not in base)
    for k in only_base:
        print(f"unmatched (baseline only): {k}")
    for k in only_cur:
        print(f"unmatched (current only):  {k}")

    print(f"bench_compare: {len(shared)} pairs compared, {warns} regression "
          f"warning(s) over {args.threshold:.0f}%, "
          f"{len(only_base) + len(only_cur)} unmatched")
    if warns:
        print("bench_compare: WARN lines are advisory — shared-runner "
              "timing noise regularly exceeds the threshold; investigate "
              "only when a warning persists across runs", file=sys.stderr)


if __name__ == "__main__":
    main()
