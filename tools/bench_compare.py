#!/usr/bin/env python3
"""Compares two bench_unnesting JSON reports section by section.

Usage:
    bench_compare.py <baseline.json> <current.json> [--threshold PCT]
                     [--serving-gate PCT]

"results" records are matched on (experiment, engine, scale, threads) and
printed with their wall-time delta; "serving" records (the ldb_loadgen /
ldb_server numbers, see docs/WIRE.md) are matched on their label and
printed with achieved-qps and tail-latency deltas. Records or whole
sections present on only one side are reported as added/removed rather
than being an error — a report from before a section existed must still
compare cleanly against one from after.

Pairs whose |delta| exceeds the threshold (default 25%) are flagged as
WARN. By default the exit code is always 0 — benchmark noise in shared CI
runners makes regressions advisory, not blocking; the WARN lines are for a
human reading the job log.

--serving-gate PCT turns the SERVING comparison into a hard gate: exit 1
when any shared serving pair regresses beyond PCT (achieved qps down by
more than PCT, or p95 latency up by more than PCT), and also exit 1 when
the gate is requested but no serving pair matched — a gate that silently
compares nothing is a broken gate, not a pass. The gate threshold should
be far above run-to-run noise: shared-runner serving numbers routinely
wobble +/-15%, so CI gates at 50% — catching "the server got 2x slower"
while letting noise through to the advisory WARN lines. "results" pairs
stay advisory either way (microbenchmark wall times are noisier still).
"""

import argparse
import json
import sys


def key_of(rec):
    return (rec.get("experiment"), rec.get("engine"),
            rec.get("scale"), rec.get("threads"))


def sort_key(k):
    # Keys may mix None/str/int across malformed or partial records; compare
    # by stringified fields so sorting never raises TypeError.
    return tuple(str(x) for x in k)


def load(path):
    with open(path) as f:
        return json.load(f)


def timed_results(doc):
    out = {}
    for rec in doc.get("results", []):
        ms = rec.get("ms")
        if ms is None or ms <= 0:
            continue
        # Duplicate keys (repeated experiments) keep the last record, which
        # matches the report's own "latest run wins" reading.
        out[key_of(rec)] = ms
    return out


def serving_records(doc):
    out = {}
    for rec in doc.get("serving", []):
        out[rec.get("label", "?")] = rec
    return out


def pct_delta(base, cur):
    if not base:
        return 0.0
    return (cur - base) / base * 100.0


def compare_results(base_doc, cur_doc, threshold):
    base = timed_results(base_doc)
    cur = timed_results(cur_doc)
    if not base and not cur:
        return 0, 0
    warns = 0
    shared = sorted((k for k in base if k in cur), key=sort_key)
    for k in shared:
        experiment, engine, scale, threads = k
        b, c = base[k], cur[k]
        delta = pct_delta(b, c)
        flag = ""
        if abs(delta) > threshold:
            flag = "  WARN" if delta > 0 else "  (faster)"
            warns += delta > 0
        label = f"{experiment}/{engine} scale={scale} threads={threads}"
        print(f"{label:<55} {b:10.3f} ms -> {c:10.3f} ms  {delta:+7.1f}%"
              f"{flag}")
    only_base = sorted((k for k in base if k not in cur), key=sort_key)
    only_cur = sorted((k for k in cur if k not in base), key=sort_key)
    for k in only_base:
        print(f"results: removed (baseline only): {k}")
    for k in only_cur:
        print(f"results: added (current only):    {k}")
    return len(shared), warns


def compare_serving(base_doc, cur_doc, threshold, gate=None):
    base = serving_records(base_doc)
    cur = serving_records(cur_doc)
    if not base and not cur:
        return 0, 0, []
    if not base:
        print(f"serving: section added (current only, "
              f"{len(cur)} record(s))")
    if not cur:
        print(f"serving: section removed (baseline only, "
              f"{len(base)} record(s))")
    warns = 0
    gate_failures = []
    shared = sorted(label for label in base if label in cur)
    for label in shared:
        b, c = base[label], cur[label]
        qps_b = b.get("achieved_qps", 0) or 0
        qps_c = c.get("achieved_qps", 0) or 0
        p95_b = b.get("p95_ms", 0) or 0
        p95_c = c.get("p95_ms", 0) or 0
        qps_delta = pct_delta(qps_b, qps_c)
        p95_delta = pct_delta(p95_b, p95_c)
        # Throughput dropping or tail latency rising is the regression side.
        flag = ""
        if qps_delta < -threshold or p95_delta > threshold:
            flag = "  WARN"
            warns += 1
        elif qps_delta > threshold or p95_delta < -threshold:
            flag = "  (faster)"
        if gate is not None and (qps_delta < -gate or p95_delta > gate):
            flag += "  GATE-FAIL"
            gate_failures.append(
                f"{label}: qps {qps_delta:+.1f}%, p95 {p95_delta:+.1f}% "
                f"(gate {gate:.0f}%)")
        print(f"serving/{label:<46} {qps_b:8.1f} -> {qps_c:8.1f} q/s "
              f"({qps_delta:+6.1f}%) | p95 {p95_b:8.2f} -> {p95_c:8.2f} ms "
              f"({p95_delta:+6.1f}%){flag}")
        rej_b, rej_c = b.get("rejected", 0), c.get("rejected", 0)
        if rej_b != rej_c:
            print(f"serving/{label}: rejected {rej_b} -> {rej_c}")
    for label in sorted(label for label in base if label not in cur):
        print(f"serving: removed (baseline only): {label}")
    for label in sorted(label for label in cur if label not in base):
        print(f"serving: added (current only):    {label}")
    return len(shared), warns, gate_failures


def main():
    ap = argparse.ArgumentParser(
        description="Per-experiment deltas between bench reports")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="warn when |delta| exceeds this percentage")
    ap.add_argument("--serving-gate", type=float, default=None,
                    metavar="PCT",
                    help="exit 1 when any serving pair loses more than PCT%% "
                         "qps or gains more than PCT%% p95 (or when no "
                         "serving pair matched at all)")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)

    n_results, warns_results = compare_results(base_doc, cur_doc,
                                               args.threshold)
    n_serving, warns_serving, gate_failures = compare_serving(
        base_doc, cur_doc, args.threshold, args.serving_gate)
    pairs = n_results + n_serving
    warns = warns_results + warns_serving
    if pairs == 0:
        print("bench_compare: no shared records; nothing to compare")
        if args.serving_gate is not None:
            print("bench_compare: GATE FAIL — --serving-gate was requested "
                  "but no serving pair matched (empty gates don't pass)",
                  file=sys.stderr)
            sys.exit(1)
        return

    print(f"bench_compare: {pairs} pairs compared "
          f"({n_results} results, {n_serving} serving), {warns} regression "
          f"warning(s) over {args.threshold:.0f}%")
    if warns:
        print("bench_compare: WARN lines are advisory — shared-runner "
              "timing noise regularly exceeds the threshold; investigate "
              "only when a warning persists across runs", file=sys.stderr)
    if args.serving_gate is not None:
        if n_serving == 0:
            print("bench_compare: GATE FAIL — --serving-gate was requested "
                  "but no serving pair matched (empty gates don't pass)",
                  file=sys.stderr)
            sys.exit(1)
        if gate_failures:
            for failure in gate_failures:
                print(f"bench_compare: GATE FAIL — serving/{failure}",
                      file=sys.stderr)
            sys.exit(1)
        print(f"bench_compare: serving gate ok "
              f"({n_serving} pair(s) within {args.serving_gate:.0f}%)")


if __name__ == "__main__":
    main()
