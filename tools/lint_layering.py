#!/usr/bin/env python3
"""Architecture-layering lint: enforce the #include dependency DAG.

The repo's module graph (DESIGN.md, "Locking discipline" / "Layering"):

    +--------------- engine ring ---------------+
    |  core  <-------------------------->  runtime  |
    +-------------------------------------------+
         ^            ^             ^
         |            |             |
        oql         verify         obs        (peer layers over the engine)
         ^            ^             ^
         +------------+-------------+
                      |
                   service                    (sees both engine and obs)
                      |
                     net                      (the wire front end)

  * `core` and `runtime` form one engine ring: the algebra/optimizer and
    the executors are mutually recursive by design (physical plans carry
    calculus fragments; the optimizer consults runtime catalogs), so the
    lint treats them as a single layer rather than pretending otherwise.
  * `oql`, `verify`, and `obs` sit directly on the engine ring and must
    not know about each other, the service, or the network.
  * `service` may use everything below it; `net` may additionally use
    `service`. Nothing below `net` may include it.
  * `workload` (generators for the load harness) sees only the engine.
  * THE SEAM: `runtime` may include from `obs` ONLY `obs/resource.h`
    (per-query accounting, metrics-free by construction). Engines report
    through plain ExecTotals; the service flushes totals into the
    MetricsRegistry. This is what keeps LDB_METRICS=OFF builds
    include-clean: `obs/resource.h` itself is checked to stay free of
    `obs/metrics.h` / `obs/query_log.h`.
  * Named exception: `src/core/optimizer.cc` includes `verify/verify.h`
    (the optimizer self-checks plans when verify_plans is set). It is the
    only engine file allowed to, and only from the .cc.
  * `src/lambdadb.h` is the public umbrella header: it may include any
    library module except `net` and `workload` (embedding the library
    must not pull in the server).

Run:  python3 tools/lint_layering.py [--root DIR] [-v]
Exit: 0 when the tree conforms; 1 with `file:line: error: ...` lines
otherwise (the format editors and CI annotate).
"""

import argparse
import os
import re
import sys

# Module -> modules it may include from (itself always allowed).
ALLOWED = {
    "core": {"core", "runtime"},
    "runtime": {"runtime", "core", "obs"},  # obs: seam header only, see below
    "oql": {"oql", "core", "runtime"},
    "verify": {"verify", "core", "runtime"},
    "obs": {"obs", "core", "runtime"},
    "service": {"service", "core", "runtime", "oql", "verify", "obs"},
    "net": {"net", "core", "runtime", "oql", "verify", "obs", "service"},
    "workload": {"workload", "core", "runtime"},
}

# The only obs/ header the runtime layer may include (the ExecTotals /
# resource-accounting seam).
RUNTIME_OBS_SEAM = {"resource.h"}

# Files (repo-relative, forward slashes) allowed the core -> verify edge.
CORE_VERIFY_EXCEPTIONS = {"src/core/optimizer.cc"}

# Headers obs/resource.h must never include, or the LDB_METRICS=OFF build
# (and the runtime layer with it) silently grows a metrics dependency.
SEAM_FORBIDDEN = {"src/obs/metrics.h", "src/obs/query_log.h"}

# The public umbrella: everything except the server and the load harness.
UMBRELLA = "src/lambdadb.h"
UMBRELLA_ALLOWED = {"core", "runtime", "oql", "verify", "obs", "service"}

INCLUDE_RE = re.compile(r'\s*#\s*include\s+"src/([^/"]+)/([^"]+)"')


def iter_source_files(root):
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc", ".cpp")):
                yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def lint_file(root, path, errors, edges):
    rel = relpath(root, path)
    parts = rel.split("/")
    if rel == UMBRELLA:
        module = None  # umbrella: special-cased below
    elif len(parts) >= 3 and parts[0] == "src":
        module = parts[1]
    else:
        module = None  # other files directly under src/: treated like umbrella

    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target_mod, target_rest = m.group(1), m.group(2)
            if "/" not in target_rest and "." not in target_rest:
                # "src/<file>" with no module dir (e.g. src/lambdadb.h):
                continue

            def err(msg):
                errors.append(f"{rel}:{lineno}: error: {msg}")

            # Seam-cleanliness for the one obs header runtime may see.
            if rel == "src/obs/resource.h":
                full = f"src/{target_mod}/{target_rest}"
                if full in SEAM_FORBIDDEN:
                    err(
                        f'seam header obs/resource.h must not include "{full}" '
                        "(it is the only obs/ header the runtime layer sees; "
                        "keeping it metrics-free keeps LDB_METRICS=OFF builds "
                        "include-clean)"
                    )

            if module is None:
                if target_mod not in UMBRELLA_ALLOWED:
                    err(
                        f'"{rel}" may not include module "{target_mod}" '
                        f"(umbrella header exposes the embedding API only: "
                        f"{', '.join(sorted(UMBRELLA_ALLOWED))})"
                    )
                edges.add(("<umbrella>", target_mod))
                continue

            edges.add((module, target_mod))
            if target_mod == module:
                continue

            if module == "core" and target_mod == "verify":
                if rel in CORE_VERIFY_EXCEPTIONS:
                    continue
                err(
                    f'module "core" may include "verify" only from '
                    f"{sorted(CORE_VERIFY_EXCEPTIONS)} (the optimizer's "
                    "self-check); move the dependency or extend the "
                    "documented exception list"
                )
                continue

            allowed = ALLOWED.get(module)
            if allowed is None:
                err(
                    f'unknown module "{module}" — add it to ALLOWED in '
                    "tools/lint_layering.py with its permitted dependencies"
                )
                continue
            if target_mod not in allowed:
                err(
                    f'module "{module}" may not include module '
                    f'"{target_mod}" (allowed: '
                    f"{', '.join(sorted(allowed - {module}))})"
                )
                continue

            if module == "runtime" and target_mod == "obs":
                if target_rest not in RUNTIME_OBS_SEAM:
                    err(
                        f'runtime may include from obs only '
                        f"{sorted(RUNTIME_OBS_SEAM)} (the resource-accounting "
                        f'seam), not "obs/{target_rest}" — engines report '
                        "via ExecTotals; the service flushes metrics"
                    )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)",
    )
    ap.add_argument(
        "-v", "--verbose", action="store_true", help="print the observed edges"
    )
    args = ap.parse_args()

    errors = []
    edges = set()
    n_files = 0
    for path in iter_source_files(args.root):
        n_files += 1
        lint_file(args.root, path, errors, edges)

    if args.verbose:
        by_mod = {}
        for a, b in edges:
            if a != b:
                by_mod.setdefault(a, set()).add(b)
        for a in sorted(by_mod):
            print(f"{a} -> {', '.join(sorted(by_mod[a]))}")
        print(f"({n_files} files scanned)")

    if errors:
        for e in errors:
            print(e)
        print(f"lint_layering: {len(errors)} violation(s) in {n_files} files")
        return 1
    print(f"lint_layering: OK ({n_files} files, {len(edges)} module edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
