#!/usr/bin/env python3
"""Fold an ldb_loadgen --json report into a bench JSON report.

    tools/merge_serving.py BENCH_unnesting.json serving.json

Replaces (or adds) the top-level "serving" section of the bench report with
the loadgen run's records, so the committed BENCH_unnesting.json carries the
measured-over-TCP serving numbers and tools/bench_compare.py can diff them
across commits.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench_path, serving_path = sys.argv[1], sys.argv[2]

    with open(bench_path) as f:
        bench = json.load(f)
    with open(serving_path) as f:
        serving = json.load(f)

    records = serving.get("serving")
    if not isinstance(records, list) or not records:
        print(f"{serving_path}: no 'serving' records", file=sys.stderr)
        return 1

    bench["serving"] = records
    with open(bench_path, "w") as f:
        json.dump(bench, f, indent=1)
        f.write("\n")
    print(f"{bench_path}: serving section updated "
          f"({len(records)} record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
