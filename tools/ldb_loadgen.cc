// ldb_loadgen — open-loop load harness for ldb_server (docs/WIRE.md).
//
//   $ ./tools/ldb_loadgen --port 4994 --rate 100 --duration-s 10 \
//         --connections 8 --json serving.json
//
// Open-loop means fixed arrival rate: every request has a precomputed
// arrival time (i / rate seconds after start) and its latency is measured
// from that *scheduled* arrival, not from when the client got around to
// sending it — so a saturated server shows its real queueing delay instead
// of the coordinated-omission mirage a closed loop produces.
//
// The workload replays the SERVICE mix from bench_unnesting (type-A,
// type-JA, count-bug, and a parameterized lookup rotated through its
// bindings), PREPAREd once per connection and issued as EXECUTE(prepared).
// Requests are assigned to connections round-robin.
//
// Outcomes are counted by wire error code: ok, rejected (ADMISSION — the
// server's admission queue overflowed), cancelled (CANCELLED — deadline
// expiry or an injected CANCEL when --cancel-every is set), errors
// (anything else). --json writes a {"serving": [...]} report that
// tools/merge_serving.py folds into BENCH_unnesting.json and
// tools/bench_compare.py diffs across runs.
//
// Every EXECUTE carries a minted trace context (docs/WIRE.md v2), and every
// EXEC_OK comes back with the server-side phase breakdown (wire wait, queue,
// compile, exec, serialize) plus the request's trace id. The report's
// "server_phases" section separates server time from client-observed
// latency — when p99 blows up, it says whether the milliseconds went to
// admission queueing or to execution. --trace-out FILE additionally fetches
// the slowest request's full span trace from the server's tail-sampling
// ring over INTROSPECT (a second connection, after the run) and writes it
// as Chrome/Perfetto JSON.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/net/client.h"

namespace {

using namespace ldb;
using clock_t_ = std::chrono::steady_clock;

// The SERVICE statement mix (bench/bench_unnesting.cc).
struct MixEntry {
  const char* oql;
  bool parameterized;
};
const MixEntry kMix[] = {
    {"select distinct struct(D: d.name, total: sum(select e.salary "
     "from e in Employees where e.dno = d.dno)) from d in Departments",
     false},
    {"select distinct e.name from e in Employees "
     "where e.salary < max(select m.salary from m in Managers "
     "where e.age > m.age)",
     false},
    {"select distinct d.name from d in Departments "
     "where count(select e from e in Employees where e.dno = d.dno) = 0",
     false},
    {"select distinct e.name from e in Employees where e.dno = $1", true},
};
constexpr size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 4994;
  int connections = 8;
  double rate = 50;       ///< offered arrivals per second (all connections)
  double duration_s = 10;
  uint64_t deadline_ms = 0;  ///< per-request deadline sent on EXECUTE
  uint32_t fetch_batch = 0;  ///< rows per ROWS batch (0 = server default)
  int cancel_every = 0;      ///< inject a CANCEL on every Nth request
  std::string json_file;
  std::string trace_out;  ///< fetch the slowest trace via INTROSPECT
  std::string label = "service-mix";
};

struct Outcome {
  double latency_ms = 0;  ///< completion - scheduled arrival
  enum { kOk, kRejected, kCancelled, kError } kind = kOk;
  // Server-reported phase breakdown from the EXEC_OK v2 extension (all 0
  // against a v1 server).
  double queue_wait_ms = 0;
  double queue_ms = 0;
  double compile_ms = 0;
  double exec_ms = 0;
  double serialize_ms = 0;
  uint64_t trace_id = 0;
};

struct ConnReport {
  std::vector<Outcome> outcomes;
  int transport_errors = 0;
};

void RunConnection(const Options& opt, const std::vector<size_t>& indices,
                   clock_t_::time_point start, ConnReport* report) {
  net::Client client;
  try {
    net::HelloRequest hello;
    client.Connect(opt.host, opt.port, hello);
  } catch (const Error&) {
    report->transport_errors += static_cast<int>(indices.size());
    return;
  }

  uint64_t handles[kMixSize] = {};
  try {
    for (size_t m = 0; m < kMixSize; ++m) {
      handles[m] = client.Prepare(kMix[m].oql);
    }
  } catch (const Error&) {
    report->transport_errors += static_cast<int>(indices.size());
    return;
  }

  for (size_t req : indices) {
    auto scheduled =
        start + std::chrono::duration_cast<clock_t_::duration>(
                    std::chrono::duration<double>(req / opt.rate));
    std::this_thread::sleep_until(scheduled);

    const size_t m = req % kMixSize;
    Outcome out;
    std::thread canceller;
    try {
      if (kMix[m].parameterized) {
        client.Bind({{"1", Value::Int(static_cast<int64_t>(req % 4))}});
      }
      if (opt.cancel_every > 0 &&
          req % static_cast<size_t>(opt.cancel_every) == 0) {
        canceller = std::thread([&client] {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          try {
            client.Cancel();
          } catch (const Error&) {
          }
        });
      }
      net::ClientResult r =
          client.ExecutePrepared(handles[m], opt.deadline_ms, opt.fetch_batch);
      out.kind = Outcome::kOk;
      out.queue_wait_ms = r.exec.queue_wait_ms;
      out.queue_ms = r.exec.queue_ms;
      out.compile_ms = r.exec.compile_ms;
      out.exec_ms = r.exec.exec_ms;
      out.serialize_ms = r.exec.serialize_ms;
      out.trace_id = r.exec.trace_id;
    } catch (const net::RemoteError& e) {
      out.kind = e.code() == net::ErrorCode::kAdmission ? Outcome::kRejected
                 : e.code() == net::ErrorCode::kCancelled
                     ? Outcome::kCancelled
                     : Outcome::kError;
    } catch (const Error&) {
      // Transport failure: this connection is done.
      if (canceller.joinable()) canceller.join();
      ++report->transport_errors;
      break;
    }
    if (canceller.joinable()) canceller.join();
    out.latency_ms = std::chrono::duration<double, std::milli>(
                         clock_t_::now() - scheduled)
                         .count();
    report->outcomes.push_back(out);
  }
  try {
    client.Close();
  } catch (const Error&) {
  }
}

double Pct(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  return sorted[static_cast<size_t>(p * (sorted.size() - 1))];
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host A] [--port P] [--connections N] [--rate QPS]\n"
      "          [--duration-s S] [--deadline-ms N] [--fetch-batch N]\n"
      "          [--cancel-every N] [--json FILE] [--trace-out FILE]\n"
      "          [--label NAME]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      opt.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--connections") {
      opt.connections = std::max(1, std::atoi(next()));
    } else if (arg == "--rate") {
      opt.rate = std::atof(next());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::atof(next());
    } else if (arg == "--deadline-ms") {
      opt.deadline_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fetch-batch") {
      opt.fetch_batch = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--cancel-every") {
      opt.cancel_every = std::atoi(next());
    } else if (arg == "--json") {
      opt.json_file = next();
    } else if (arg == "--trace-out") {
      opt.trace_out = next();
    } else if (arg == "--label") {
      opt.label = next();
    } else {
      return Usage(argv[0]);
    }
  }
  if (opt.rate <= 0 || opt.duration_s <= 0) return Usage(argv[0]);

  const size_t n_requests =
      static_cast<size_t>(opt.rate * opt.duration_s);
  std::vector<std::vector<size_t>> per_conn(
      static_cast<size_t>(opt.connections));
  for (size_t i = 0; i < n_requests; ++i) {
    per_conn[i % per_conn.size()].push_back(i);
  }

  std::printf(
      "ldb_loadgen: offering %.1f q/s for %.1f s over %d connections "
      "(%zu requests) against %s:%u\n",
      opt.rate, opt.duration_s, opt.connections, n_requests, opt.host.c_str(),
      static_cast<unsigned>(opt.port));

  std::vector<ConnReport> reports(per_conn.size());
  clock_t_::time_point start = clock_t_::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(per_conn.size());
    for (size_t c = 0; c < per_conn.size(); ++c) {
      threads.emplace_back(RunConnection, std::cref(opt),
                           std::cref(per_conn[c]), start, &reports[c]);
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(clock_t_::now() - start).count();

  size_t n_ok = 0, n_rejected = 0, n_cancelled = 0, n_error = 0,
         n_transport = 0;
  std::vector<double> ok_latencies;
  // Server-phase accumulators over ok requests, and the slowest traced
  // request (the trace --trace-out goes after).
  double sum_wait = 0, sum_queue = 0, sum_compile = 0, sum_exec = 0,
         sum_serialize = 0;
  uint64_t slowest_trace_id = 0;
  double slowest_latency_ms = -1;
  for (const ConnReport& r : reports) {
    n_transport += static_cast<size_t>(r.transport_errors);
    for (const Outcome& o : r.outcomes) {
      switch (o.kind) {
        case Outcome::kOk:
          ++n_ok;
          ok_latencies.push_back(o.latency_ms);
          sum_wait += o.queue_wait_ms;
          sum_queue += o.queue_ms;
          sum_compile += o.compile_ms;
          sum_exec += o.exec_ms;
          sum_serialize += o.serialize_ms;
          if (o.trace_id != 0 && o.latency_ms > slowest_latency_ms) {
            slowest_latency_ms = o.latency_ms;
            slowest_trace_id = o.trace_id;
          }
          break;
        case Outcome::kRejected:
          ++n_rejected;
          break;
        case Outcome::kCancelled:
          ++n_cancelled;
          break;
        case Outcome::kError:
          ++n_error;
          break;
      }
    }
  }
  std::sort(ok_latencies.begin(), ok_latencies.end());
  const double achieved = wall_s > 0 ? n_ok / wall_s : 0;
  const double p50 = Pct(ok_latencies, 0.50);
  const double p95 = Pct(ok_latencies, 0.95);
  const double p99 = Pct(ok_latencies, 0.99);
  const double max_ms = ok_latencies.empty() ? 0 : ok_latencies.back();

  std::printf(
      "achieved %.1f q/s in %.1f s | ok %zu | rejected %zu | cancelled %zu | "
      "errors %zu | transport %zu\n",
      achieved, wall_s, n_ok, n_rejected, n_cancelled, n_error, n_transport);
  std::printf(
      "latency from scheduled arrival (ms): p50 %.2f | p95 %.2f | p99 %.2f "
      "| max %.2f\n",
      p50, p95, p99, max_ms);
  const double inv_ok = n_ok > 0 ? 1.0 / static_cast<double>(n_ok) : 0;
  const double mean_wait = sum_wait * inv_ok;
  const double mean_queue = sum_queue * inv_ok;
  const double mean_compile = sum_compile * inv_ok;
  const double mean_exec = sum_exec * inv_ok;
  const double mean_serialize = sum_serialize * inv_ok;
  std::printf(
      "server phases, mean over ok (ms): wait %.3f | queue %.3f | "
      "compile %.3f | exec %.3f | serialize %.3f | slowest trace %s\n",
      mean_wait, mean_queue, mean_compile, mean_exec, mean_serialize,
      obs::TraceIdHex(slowest_trace_id).c_str());

  if (!opt.json_file.empty()) {
    std::ofstream out(opt.json_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_file.c_str());
      return 1;
    }
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\n  \"serving\": [\n    {\n"
        "      \"label\": \"%s\",\n"
        "      \"connections\": %d,\n"
        "      \"offered_qps\": %.3f,\n"
        "      \"achieved_qps\": %.3f,\n"
        "      \"duration_s\": %.3f,\n"
        "      \"requests\": %zu,\n"
        "      \"ok\": %zu,\n"
        "      \"rejected\": %zu,\n"
        "      \"cancelled\": %zu,\n"
        "      \"errors\": %zu,\n"
        "      \"transport_errors\": %zu,\n"
        "      \"deadline_ms\": %llu,\n"
        "      \"p50_ms\": %.3f,\n"
        "      \"p95_ms\": %.3f,\n"
        "      \"p99_ms\": %.3f,\n"
        "      \"max_ms\": %.3f,\n"
        "      \"server_phases\": {\n"
        "        \"queue_wait_ms_mean\": %.4f,\n"
        "        \"queue_ms_mean\": %.4f,\n"
        "        \"compile_ms_mean\": %.4f,\n"
        "        \"exec_ms_mean\": %.4f,\n"
        "        \"serialize_ms_mean\": %.4f,\n"
        "        \"slowest_trace_id\": \"%s\",\n"
        "        \"slowest_latency_ms\": %.3f\n"
        "      }\n"
        "    }\n  ]\n}\n",
        opt.label.c_str(), opt.connections, opt.rate, achieved, wall_s,
        n_requests, n_ok, n_rejected, n_cancelled, n_error, n_transport,
        static_cast<unsigned long long>(opt.deadline_ms), p50, p95, p99,
        max_ms, mean_wait, mean_queue, mean_compile, mean_exec,
        mean_serialize, obs::TraceIdHex(slowest_trace_id).c_str(),
        slowest_latency_ms < 0 ? 0 : slowest_latency_ms);
    out << buf;
    std::printf("ldb_loadgen: wrote %s\n", opt.json_file.c_str());
  }

  // --trace-out: fetch the slowest request's span trace from the server's
  // tail-sampling ring, over a FRESH connection (proving remote
  // introspection works from a second client). Falls back to the server's
  // own slowest kept trace when ours was sampled out or evicted.
  if (!opt.trace_out.empty()) {
    try {
      net::Client c;
      c.Connect(opt.host, opt.port, net::HelloRequest{});
      std::string json;
      try {
        json = c.Introspect(net::IntrospectRequest::kTrace, 0,
                            slowest_trace_id);
      } catch (const net::RemoteError&) {
        json = c.Introspect(net::IntrospectRequest::kTrace, 0, 0);
      }
      c.Close();
      std::ofstream out(opt.trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", opt.trace_out.c_str());
        return 1;
      }
      out << json;
      std::printf("ldb_loadgen: wrote %s (load via ui.perfetto.dev)\n",
                  opt.trace_out.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "ldb_loadgen: trace fetch failed: %s\n", e.what());
    }
  }

  // Exit nonzero if nothing succeeded — the CI smoke test asserts on this.
  return n_ok > 0 ? 0 : 1;
}
