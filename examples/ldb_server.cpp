// ldb_server — the network front end: serves a synthetic workload (or a
// database dump) over the ldb wire protocol (docs/WIRE.md).
//
//   $ ./examples/ldb_server [options]
//     --workload company|university|travel   synthetic dataset (default company)
//     --scale N          workload scale (default 2000)
//     --db FILE          serve a database dump instead (indexes rebuilt)
//     --host A           listen address (default 127.0.0.1)
//     --port P           listen port (default 4994; 0 = ephemeral)
//     --workers N        network worker threads (default 8)
//     --max-concurrent N admission: queries executing at once (default 4)
//     --max-queue N      admission: waiters beyond that (default 16)
//     --deadline-ms N    default per-query deadline (0 = none)
//     --memory-budget N  default per-query memory budget in bytes (0 = none)
//     --metrics-dump F   write the Prometheus metrics snapshot to F on exit
//                        (and on every SIGUSR1)
//     --trace-dump F     write the trace-ring JSON snapshot to F on exit
//                        (and on every SIGUSR1)
//
// Prints "listening on <host>:<port>" once ready (scripts wait for that
// line). SIGTERM/SIGINT trigger a graceful drain — in-flight queries finish
// (or are cancelled at the drain deadline), replies are flushed — then the
// process exits 0 with a serving summary. SIGUSR1 dumps the observability
// snapshots (--metrics-dump / --trace-dump targets) without stopping —
// "kill -USR1" is the zero-downtime way to grab server state.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/net/server.h"
#include "src/service/query_service.h"
#include "src/workload/company.h"
#include "src/workload/travel.h"
#include "src/workload/university.h"

namespace {

using namespace ldb;

Database MakeDb(const std::string& which, int scale) {
  if (which == "university") {
    workload::UniversityParams p;
    p.n_students = scale;
    return workload::MakeUniversityDatabase(p);
  }
  if (which == "travel") {
    workload::TravelParams p;
    p.n_cities = std::max(2, scale / 10);
    return workload::MakeTravelDatabase(p);
  }
  workload::CompanyParams p;
  p.n_employees = scale;
  p.n_departments = std::max(4, scale / 40);
  p.n_managers = std::max(2, scale / 100);
  return workload::MakeCompanyDatabase(p);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload company|university|travel] [--scale N] "
               "[--db FILE]\n"
               "          [--host A] [--port P] [--workers N] "
               "[--max-concurrent N] [--max-queue N]\n"
               "          [--deadline-ms N] [--memory-budget N] "
               "[--metrics-dump FILE] [--trace-dump FILE]\n",
               argv0);
  return 2;
}

// Writes one observability snapshot to `path` (no-op when empty). Returns
// whether the file was written, so the caller can log it.
bool DumpTo(const std::string& path, const std::string& body) {
  if (path.empty()) return false;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "ldb_server: cannot write %s\n", path.c_str());
    return false;
  }
  out << body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "company";
  std::string dump_file;
  std::string metrics_dump;
  std::string trace_dump;
  int scale = 2000;
  ldb::ServiceOptions svc_opts;
  ldb::net::ServerOptions net_opts;
  net_opts.port = 4994;
  net_opts.n_workers = 8;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--scale") {
      scale = std::atoi(next());
    } else if (arg == "--db") {
      dump_file = next();
    } else if (arg == "--host") {
      net_opts.host = next();
    } else if (arg == "--port") {
      net_opts.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      net_opts.n_workers = std::atoi(next());
    } else if (arg == "--max-concurrent") {
      svc_opts.max_concurrent = std::atoi(next());
    } else if (arg == "--max-queue") {
      svc_opts.max_queue = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--deadline-ms") {
      net_opts.session.deadline_ms = std::atoll(next());
    } else if (arg == "--memory-budget") {
      net_opts.session.memory_budget_bytes =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--metrics-dump") {
      metrics_dump = next();
    } else if (arg == "--trace-dump") {
      trace_dump = next();
    } else {
      return Usage(argv[0]);
    }
  }

  // Block the handled signals before any thread spawns, so every thread
  // inherits the mask and sigwait below is the single delivery point.
  // SIGUSR1 is the live snapshot trigger; INT/TERM drain and exit.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    ldb::Database db = [&] {
      if (!dump_file.empty()) {
        std::ifstream in(dump_file);
        if (!in) throw ldb::Error("cannot open dump: " + dump_file);
        return ldb::QueryService::LoadWithIndexes(in);
      }
      return MakeDb(workload_name, scale);
    }();
    std::printf("ldb_server: %s (%zu objects), admission %d+%zu, %d workers\n",
                dump_file.empty()
                    ? (workload_name + " scale " + std::to_string(scale))
                          .c_str()
                    : dump_file.c_str(),
                db.ObjectCount(), svc_opts.max_concurrent, svc_opts.max_queue,
                net_opts.n_workers);

    ldb::QueryService svc(db, svc_opts);
    ldb::net::Server server(svc, net_opts);
    server.Start();
    std::printf("listening on %s:%u\n", net_opts.host.c_str(),
                static_cast<unsigned>(server.bound_port()));
    std::fflush(stdout);

    for (;;) {
      int sig = 0;
      sigwait(&sigs, &sig);
      if (sig == SIGUSR1) {
        // Live snapshot: dump without disturbing serving, keep waiting.
        if (DumpTo(metrics_dump, svc.metrics().Snapshot().ToPrometheusText()))
          std::printf("ldb_server: SIGUSR1, metrics written to %s\n",
                      metrics_dump.c_str());
        if (DumpTo(trace_dump, svc.trace_ring().ToJson()))
          std::printf("ldb_server: SIGUSR1, trace ring written to %s\n",
                      trace_dump.c_str());
        std::fflush(stdout);
        continue;
      }
      std::printf("ldb_server: received %s, draining...\n", strsignal(sig));
      std::fflush(stdout);
      break;
    }
    server.Shutdown();

    if (DumpTo(metrics_dump, svc.metrics().Snapshot().ToPrometheusText()))
      std::printf("ldb_server: metrics written to %s\n", metrics_dump.c_str());
    if (DumpTo(trace_dump, svc.trace_ring().ToJson()))
      std::printf("ldb_server: trace ring written to %s\n", trace_dump.c_str());

    ldb::net::ServerStats st = server.stats();
    std::printf(
        "ldb_server: served %llu connections, %llu frames "
        "(%llu B in, %llu B out, %llu protocol errors)\n",
        static_cast<unsigned long long>(st.connections_total),
        static_cast<unsigned long long>(st.frames_received),
        static_cast<unsigned long long>(st.bytes_recv),
        static_cast<unsigned long long>(st.bytes_sent),
        static_cast<unsigned long long>(st.protocol_errors));
    return 0;
  } catch (const ldb::Error& e) {
    std::fprintf(stderr, "ldb_server: %s\n", e.what());
    return 1;
  }
}
