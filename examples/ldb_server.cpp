// ldb_server — the network front end: serves a synthetic workload (or a
// database dump) over the ldb wire protocol (docs/WIRE.md).
//
//   $ ./examples/ldb_server [options]
//     --workload company|university|travel   synthetic dataset (default company)
//     --scale N          workload scale (default 2000)
//     --db FILE          serve a database dump instead (indexes rebuilt)
//     --host A           listen address (default 127.0.0.1)
//     --port P           listen port (default 4994; 0 = ephemeral)
//     --workers N        network worker threads (default 8)
//     --max-concurrent N admission: queries executing at once (default 4)
//     --max-queue N      admission: waiters beyond that (default 16)
//     --deadline-ms N    default per-query deadline (0 = none)
//     --memory-budget N  default per-query memory budget in bytes (0 = none)
//     --metrics-dump F   write the Prometheus metrics snapshot to F on exit
//
// Prints "listening on <host>:<port>" once ready (scripts wait for that
// line). SIGTERM/SIGINT trigger a graceful drain — in-flight queries finish
// (or are cancelled at the drain deadline), replies are flushed — then the
// process exits 0 with a serving summary.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/net/server.h"
#include "src/service/query_service.h"
#include "src/workload/company.h"
#include "src/workload/travel.h"
#include "src/workload/university.h"

namespace {

using namespace ldb;

Database MakeDb(const std::string& which, int scale) {
  if (which == "university") {
    workload::UniversityParams p;
    p.n_students = scale;
    return workload::MakeUniversityDatabase(p);
  }
  if (which == "travel") {
    workload::TravelParams p;
    p.n_cities = std::max(2, scale / 10);
    return workload::MakeTravelDatabase(p);
  }
  workload::CompanyParams p;
  p.n_employees = scale;
  p.n_departments = std::max(4, scale / 40);
  p.n_managers = std::max(2, scale / 100);
  return workload::MakeCompanyDatabase(p);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload company|university|travel] [--scale N] "
               "[--db FILE]\n"
               "          [--host A] [--port P] [--workers N] "
               "[--max-concurrent N] [--max-queue N]\n"
               "          [--deadline-ms N] [--memory-budget N] "
               "[--metrics-dump FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "company";
  std::string dump_file;
  std::string metrics_dump;
  int scale = 2000;
  ldb::ServiceOptions svc_opts;
  ldb::net::ServerOptions net_opts;
  net_opts.port = 4994;
  net_opts.n_workers = 8;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--scale") {
      scale = std::atoi(next());
    } else if (arg == "--db") {
      dump_file = next();
    } else if (arg == "--host") {
      net_opts.host = next();
    } else if (arg == "--port") {
      net_opts.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      net_opts.n_workers = std::atoi(next());
    } else if (arg == "--max-concurrent") {
      svc_opts.max_concurrent = std::atoi(next());
    } else if (arg == "--max-queue") {
      svc_opts.max_queue = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--deadline-ms") {
      net_opts.session.deadline_ms = std::atoll(next());
    } else if (arg == "--memory-budget") {
      net_opts.session.memory_budget_bytes =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--metrics-dump") {
      metrics_dump = next();
    } else {
      return Usage(argv[0]);
    }
  }

  // Block the shutdown signals before any thread spawns, so every thread
  // inherits the mask and sigwait below is the single delivery point.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    ldb::Database db = [&] {
      if (!dump_file.empty()) {
        std::ifstream in(dump_file);
        if (!in) throw ldb::Error("cannot open dump: " + dump_file);
        return ldb::QueryService::LoadWithIndexes(in);
      }
      return MakeDb(workload_name, scale);
    }();
    std::printf("ldb_server: %s (%zu objects), admission %d+%zu, %d workers\n",
                dump_file.empty()
                    ? (workload_name + " scale " + std::to_string(scale))
                          .c_str()
                    : dump_file.c_str(),
                db.ObjectCount(), svc_opts.max_concurrent, svc_opts.max_queue,
                net_opts.n_workers);

    ldb::QueryService svc(db, svc_opts);
    ldb::net::Server server(svc, net_opts);
    server.Start();
    std::printf("listening on %s:%u\n", net_opts.host.c_str(),
                static_cast<unsigned>(server.bound_port()));
    std::fflush(stdout);

    int sig = 0;
    sigwait(&sigs, &sig);
    std::printf("ldb_server: received %s, draining...\n", strsignal(sig));
    std::fflush(stdout);
    server.Shutdown();

    if (!metrics_dump.empty()) {
      std::ofstream out(metrics_dump);
      out << svc.metrics().Snapshot().ToPrometheusText();
      std::printf("ldb_server: metrics written to %s\n", metrics_dump.c_str());
    }

    ldb::net::ServerStats st = server.stats();
    std::printf(
        "ldb_server: served %llu connections, %llu frames "
        "(%llu B in, %llu B out, %llu protocol errors)\n",
        static_cast<unsigned long long>(st.connections_total),
        static_cast<unsigned long long>(st.frames_received),
        static_cast<unsigned long long>(st.bytes_recv),
        static_cast<unsigned long long>(st.bytes_sent),
        static_cast<unsigned long long>(st.protocol_errors));
    return 0;
  } catch (const ldb::Error& e) {
    std::fprintf(stderr, "ldb_server: %s\n", e.what());
    return 1;
  }
}
