// University audit: universal quantification workloads (the Claussen et al
// class the paper extends to). Finds students who completed every DB course
// (the paper's QUERY E), shows the unnested plan, and runs the dual
// formulation through double negation to show they agree.
//
//   $ ./examples/university_audit [n_students]

#include <cstdio>
#include <cstdlib>

#include "src/lambdadb.h"
#include "src/workload/university.h"

int main(int argc, char** argv) {
  using namespace ldb;

  workload::UniversityParams params;
  params.n_students = argc > 1 ? std::atoi(argv[1]) : 500;
  params.n_courses = 30;
  params.take_all_fraction = 0.05;
  Database db = workload::MakeUniversityDatabase(params);

  const char* query_e =
      "select distinct s.name from s in Students "
      "where for all c in select c from c in Courses where c.title = 'DB': "
      "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno";

  std::printf("QUERY E — students who have taken ALL database courses\n");
  std::printf("OQL:\n  %s\n\n", query_e);

  Optimizer optimizer(db.schema());
  CompiledQuery compiled = optimizer.Compile(ParseOQL(query_e));
  std::printf("unnested plan (Figure 1.E — two outer-joins, ∃-nest then ∀-nest):\n%s\n",
              PrintPlan(compiled.simplified).c_str());

  Value qualified = optimizer.Execute(compiled, db);
  std::printf("%zu of %d students qualify\n", qualified.AsElems().size(),
              params.n_students);

  // The relational-division dual: NOT EXISTS a DB course NOT taken.
  const char* dual =
      "select distinct s.name from s in Students "
      "where not (exists c in (select c from c in Courses "
      "                        where c.title = 'DB'): "
      "           not (exists t in Transcripts: t.sid = s.sid "
      "                and t.cno = c.cno))";
  Value via_dual = RunOQL(db, dual);
  std::printf("double-negation formulation agrees: %s\n",
              via_dual == qualified ? "yes" : "NO");

  Value baseline = RunOQLBaseline(db, query_e);
  std::printf("nested-loop baseline agrees: %s\n",
              baseline == qualified ? "yes" : "NO");

  // Per-student course load, with zero-enrollment students kept alive by the
  // outer-join + nest (they'd vanish under a plain join).
  Value loads = RunOQL(db,
      "select distinct struct(s: s.name, n: count(select t from t in "
      "Transcripts where t.sid = s.sid)) from s in Students");
  int zeros = 0;
  for (const Value& row : loads.AsElems()) {
    if (row.Field("n") == Value::Int(0)) ++zeros;
  }
  std::printf("students with zero enrollments (kept by outer-join): %d\n", zeros);
  return 0;
}
