// Company reporting: the kind of correlated-aggregate workload the paper's
// introduction motivates. Runs a set of management reports over a mid-size
// company database, comparing the naive nested-loop strategy with the
// unnested plans, and demonstrates that empty departments survive (the
// count bug).
//
//   $ ./examples/company_reports [n_employees]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/lambdadb.h"
#include "src/workload/company.h"

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Report(const ldb::Database& db, const char* title, const char* oql,
            bool show_rows = true) {
  std::printf("---- %s ----\n  %s\n", title, oql);
  auto t0 = std::chrono::steady_clock::now();
  ldb::Value optimized = ldb::RunOQL(db, oql);
  double opt_ms = MsSince(t0);
  t0 = std::chrono::steady_clock::now();
  ldb::Value baseline = ldb::RunOQLBaseline(db, oql);
  double base_ms = MsSince(t0);
  if (show_rows && optimized.is_collection()) {
    size_t shown = 0;
    for (const ldb::Value& row : optimized.AsElems()) {
      if (shown++ == 5) {
        std::printf("  ... (%zu rows total)\n", optimized.AsElems().size());
        break;
      }
      std::printf("  %s\n", row.ToString().c_str());
    }
  } else {
    std::printf("  => %s\n", optimized.ToString().c_str());
  }
  std::printf("  unnested: %.2f ms | nested-loop baseline: %.2f ms | agree: %s\n\n",
              opt_ms, base_ms, optimized == baseline ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  ldb::workload::CompanyParams params;
  params.n_employees = argc > 1 ? std::atoi(argv[1]) : 2000;
  params.n_departments = 40;
  params.n_managers = 25;
  ldb::Database db = ldb::workload::MakeCompanyDatabase(params);
  std::printf("company database: %d employees, %d departments, %d managers\n\n",
              params.n_employees, params.n_departments, params.n_managers);

  Report(db,
         "Department rosters (QUERY B: nested set query in the head)",
         "select distinct struct(D: d.name, E: (select distinct e.name "
         "from e in Employees where e.dno = d.dno)) from d in Departments");

  Report(db,
         "Headcount and payroll per department (correlated aggregates)",
         "select distinct struct(D: d.name, "
         "  n: count(select e from e in Employees where e.dno = d.dno), "
         "  payroll: sum(select e.salary from e in Employees "
         "               where e.dno = d.dno)) "
         "from d in Departments");

  Report(db,
         "Departments with no employees (the count-bug query)",
         "select distinct d.name from d in Departments "
         "where count(select e from e in Employees where e.dno = d.dno) = 0");

  Report(db,
         "Average salary by dno for seniors (Figure 8 group-by)",
         "select distinct e.dno, avg(e.salary) from Employees e "
         "where e.age > 30 group by e.dno");

  Report(db,
         "Employees paid less than some younger manager (correlated max)",
         "select distinct e.name from e in Employees "
         "where e.salary < max(select m.salary from m in Managers "
         "where e.age > m.age)");

  Report(db,
         "Employees all of whose children out-age the boss's kids (QUERY D)",
         "select distinct struct(E: e.name, M: count(select distinct c "
         "from c in e.children "
         "where for all d in e.manager.children: c.age > d.age)) "
         "from e in Employees");
  return 0;
}
