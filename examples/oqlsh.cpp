// oqlsh — an interactive OQL shell over the synthetic workloads.
//
//   $ ./examples/oqlsh [company|university|travel] [scale]
//
// Commands:
//   .help                this text
//   .schema              list classes, extents, attributes
//   .plan <oql>          show calculus, normalized form, and algebra plans
//   .explain <oql>       EXPLAIN ANALYZE: execute with profiling and print
//                        the annotated plan (est vs measured rows, times)
//                        plus the compile trace
//   .profile <oql>       same, but emit the profile and trace as JSON
//   .verify <oql>        run the static verifier over every IR the compiler
//                        produces (docs/VERIFIER.md) and report per-stage
//                        checks, findings, and wall time
//   .baseline <oql>      evaluate with the nested-loop baseline
//   .time <oql>          compare baseline vs unnested timings
//   .prepare <name> <oql> register a (possibly parameterized) statement
//   .exec <name> [args]  run a prepared statement; args bind $1, $2, ...
//   .timeout <ms>        per-query deadline for this session (0 = none)
//   .cache [clear]       plan-cache counters / drop all cached plans
//   .metrics             dump the service metrics (Prometheus text format)
//   .querylog [n]        last n query-log records (default 10); slow queries
//                        additionally print their captured plan
//   .trace <file> <oql>  execute with profiling and write a Chrome/Perfetto
//                        trace (load via ui.perfetto.dev or chrome://tracing)
//   .connect host:port   attach to an ldb_server; ad-hoc queries, .prepare,
//                        and .exec then go over the wire (docs/WIRE.md).
//                        .metrics then reads the SERVER registry (INTROSPECT)
//   .stats               remote only: server active queries + query-log tail
//                        fetched over INTROSPECT
//   .fetch-trace [id] [file]  remote only: fetch a server-side trace from the
//                        tail-sampling ring as Perfetto JSON. `id` is 16-hex
//                        (default: the last executed query's trace id;
//                        "slowest" = the slowest kept trace). Prints to the
//                        terminal unless a file is given
//   .disconnect          drop the server connection, back to in-process
//   .quit                exit
//   <oql>                execute through the query service + print
//
// Reads one query per line (no multi-line continuation). Ad-hoc queries and
// prepared statements both run through a QueryService, so repeated queries
// hit the plan cache and `.timeout` applies to everything — including remote
// execution, where it is sent as the per-request deadline.

#include <chrono>
#include <cstdio>
#include <functional>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "src/lambdadb.h"
#include "src/net/client.h"
#include "src/workload/company.h"
#include "src/workload/travel.h"
#include "src/workload/university.h"

namespace {

using namespace ldb;

Database MakeDb(const std::string& which, int scale) {
  if (which == "university") {
    workload::UniversityParams p;
    p.n_students = scale;
    return workload::MakeUniversityDatabase(p);
  }
  if (which == "travel") {
    workload::TravelParams p;
    p.n_cities = std::max(2, scale / 10);
    return workload::MakeTravelDatabase(p);
  }
  workload::CompanyParams p;
  p.n_employees = scale;
  p.n_departments = std::max(4, scale / 40);
  return workload::MakeCompanyDatabase(p);
}

void ShowSchema(const Schema& schema) {
  for (const auto& [name, decl] : schema.classes()) {
    std::printf("class %s", name.c_str());
    if (!decl.extent.empty()) std::printf(" (extent %s)", decl.extent.c_str());
    std::printf(" {\n");
    for (const auto& [attr, type] : decl.attributes) {
      std::printf("  %s: %s\n", attr.c_str(), type->ToString().c_str());
    }
    std::printf("}\n");
  }
}

void ShowPlan(const Database& db, const std::string& oql) {
  ExprPtr calculus = ParseOQL(oql);
  std::printf("calculus:   %s\n", PrintExpr(calculus).c_str());
  ExprPtr normalized = Normalize(calculus);
  std::printf("normalized: %s\n", PrintExpr(normalized).c_str());
  if (normalized->kind != ExprKind::kComp) {
    std::printf("(top level is not a comprehension; subqueries compile "
                "individually)\n");
    return;
  }
  std::vector<UnnestStep> steps;
  UnnestCompTraced(normalized, db.schema(), &steps);
  std::printf("derivation (Figure 7 rules):\n");
  for (const UnnestStep& s : steps) {
    std::printf("  (%s) %s\n", s.rule.c_str(), s.description.c_str());
  }
  Optimizer opt(db.schema());
  CompiledQuery q = opt.Compile(calculus);
  std::printf("algebra plan:\n%s", PrintPlan(q.plan).c_str());
  if (!AlgEqual(q.plan, q.simplified)) {
    std::printf("simplified:\n%s", PrintPlan(q.simplified).c_str());
  }
  std::printf("physical:\n%s",
              PrintPhysicalPlan(PlanPhysical(q.simplified, db)).c_str());
  std::printf("result type: %s\n", q.result_type->ToString().c_str());
}

void PrintResult(const Value& v);

// Compiles with tracing, executes with a profiler attached, and prints
// either the human-readable EXPLAIN ANALYZE (with catalog estimates) or the
// JSON profile + compile trace.
void ExplainQuery(const Database& db, const std::string& oql, bool as_json) {
  OptimizerOptions options;
  options.trace = true;
  options.verify_plans = true;  // the trace then carries the verify stages
  Optimizer opt(db.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(oql));
  PhysPtr phys = PlanPhysical(q.simplified, db, options.physical);
  QueryProfiler prof;
  ExecOptions exec;
  exec.profiler = &prof;
  Value result = ExecutePipelined(phys, db, exec);
  if (as_json) {
    std::printf("%s\n%s\n", ProfileToJson(prof).c_str(),
                CompileTraceToJson(*q.trace).c_str());
    return;
  }
  std::printf("%s", PrintCompileTrace(*q.trace).c_str());
  Catalog cat = Catalog::FromDatabase(db);
  std::printf("%s", ExplainAnalyze(phys, prof, &cat).c_str());
  PrintResult(result);
}

// `.verify`: compiles the query with verification off, then runs every
// verifier layer explicitly — including the slot plan — and prints each
// stage's summary plus any findings, instead of stopping at the first
// VerifyError the pipeline would throw.
void VerifyQuery(const Database& db, const std::string& oql) {
  OptimizerOptions options;
  options.verify_plans = false;  // run the layers by hand below
  Optimizer opt(db.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(oql));
  std::vector<VerifyReport> reports = VerifyCompiledQuery(q, db.schema());
  SlotPlan slots = CompileSlotPlan(PlanPhysical(q.simplified, db), db);
  reports.push_back(VerifySlotPlan(slots));
  bool all_ok = true;
  double total_ms = 0;
  for (const VerifyReport& r : reports) {
    std::printf("%s\n", r.ToString().c_str());
    for (const VerifyFinding& f : r.findings) {
      std::printf("  %s\n", f.ToString().c_str());
    }
    all_ok = all_ok && r.ok();
    total_ms += r.ms;
  }
  std::printf("verdict: %s (%.3f ms)\n", all_ok ? "ok" : "FAILED", total_ms);
}

double MsOf(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// `.trace`: compiles with the optimizer trace on, executes with a profiler,
// and writes the combined compile + execution timeline as Chrome trace-event
// JSON (one lane per worker; load in ui.perfetto.dev or chrome://tracing).
void TraceQuery(const Database& db, const std::string& file,
                const std::string& oql) {
  OptimizerOptions options;
  options.trace = true;
  Optimizer opt(db.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(oql));
  PhysPtr phys = PlanPhysical(q.simplified, db, options.physical);
  QueryProfiler prof;
  ExecOptions exec;
  exec.profiler = &prof;
  Value result = ExecutePipelined(phys, db, exec);
  std::ofstream out(file);
  if (!out) {
    std::printf("error: cannot write '%s'\n", file.c_str());
    return;
  }
  out << obs::TraceEventsJson(prof, q.trace.get());
  std::printf("wrote %s (%zu operators, %zu morsels)\n", file.c_str(),
              prof.Operators().size(), prof.morsels.size());
  PrintResult(result);
}

void ShowActiveQueries(const QueryService& service) {
  std::vector<obs::ActiveQueryInfo> active = service.ActiveQueries();
  if (active.empty()) {
    std::printf("(no active queries)\n");
    return;
  }
  for (const obs::ActiveQueryInfo& q : active) {
    std::printf(
        "#%llu session=%llu %s elapsed=%.2fms rows=%llu "
        "mem=%lluB peak=%lluB hash=%016llx\n",
        static_cast<unsigned long long>(q.query_id),
        static_cast<unsigned long long>(q.session), q.phase.c_str(),
        q.elapsed_ms, static_cast<unsigned long long>(q.rows),
        static_cast<unsigned long long>(q.mem_in_use_bytes),
        static_cast<unsigned long long>(q.mem_peak_bytes),
        static_cast<unsigned long long>(q.query_hash));
  }
}

void ShowQueryLog(const ldb::obs::QueryLog& log, size_t n) {
  std::vector<obs::QueryLogRecord> tail = log.Tail(n);
  if (tail.empty()) {
    std::printf("(query log empty)\n");
    return;
  }
  for (const obs::QueryLogRecord& rec : tail) {
    std::printf("%s\n", rec.ToString().c_str());
    if (rec.slow && !rec.plan_text.empty()) {
      std::printf("  -- slow-query plan --\n%s", rec.plan_text.c_str());
    }
  }
  std::printf("(%llu appended, %llu slow, %llu dropped by the ring)\n",
              static_cast<unsigned long long>(log.appended()),
              static_cast<unsigned long long>(log.slow_count()),
              static_cast<unsigned long long>(log.dropped()));
}

// `.exec` argument literals: "quoted" -> string, integer -> int,
// decimal -> real, anything else -> string.
Value ParseArgValue(const std::string& tok) {
  if (tok.size() >= 2 && tok.front() == '"' && tok.back() == '"') {
    return Value::Str(tok.substr(1, tok.size() - 2));
  }
  try {
    size_t pos = 0;
    long long i = std::stoll(tok, &pos);
    if (pos == tok.size()) return Value::Int(i);
  } catch (...) {
  }
  try {
    size_t pos = 0;
    double d = std::stod(tok, &pos);
    if (pos == tok.size()) return Value::Real(d);
  } catch (...) {
  }
  return Value::Str(tok);
}

void PrintQueryStats(const QueryStats& stats) {
  std::printf("(%s plan | queue %.2f ms | compile %.2f ms | exec %.2f ms)\n",
              stats.plan_cached ? "cached" : "compiled", stats.queue_ms,
              stats.compile_ms, stats.exec_ms);
}

void PrintResult(const Value& v) {
  if (v.is_collection() && v.AsElems().size() > 20) {
    size_t i = 0;
    for (const Value& row : v.AsElems()) {
      if (i++ == 20) break;
      std::printf("  %s\n", row.ToString().c_str());
    }
    std::printf("  ... (%zu rows)\n", v.AsElems().size());
  } else {
    std::printf("  %s\n", v.ToString().c_str());
  }
}

void PrintRemoteResult(const net::ClientResult& r) {
  if (r.scalar() && r.rows.size() == 1) {
    std::printf("  %s\n", r.rows[0].ToString().c_str());
  } else {
    size_t shown = 0;
    for (const Value& row : r.rows) {
      if (shown++ == 20) break;
      std::printf("  %s\n", row.ToString().c_str());
    }
    if (r.rows.size() > 20) std::printf("  ... (%zu rows)\n", r.rows.size());
  }
  std::printf("(%s plan | wait %.2f ms | queue %.2f ms | compile %.2f ms | "
              "exec %.2f ms | serialize %.2f ms | trace %s | remote)\n",
              r.exec.plan_cached ? "cached" : "compiled", r.exec.queue_wait_ms,
              r.exec.queue_ms, r.exec.compile_ms, r.exec.exec_ms,
              r.exec.serialize_ms, obs::TraceIdHex(r.exec.trace_id).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "company";
  int scale = argc > 2 ? std::atoi(argv[2]) : 500;
  Database db = MakeDb(which, scale);
  std::printf("oqlsh: %s database at scale %d (%zu objects). Type .help\n",
              which.c_str(), scale, db.ObjectCount());

  QueryService service(db);
  std::shared_ptr<Session> session = service.OpenSession();

  // `.connect` state: while attached, ad-hoc queries, .prepare, and .exec go
  // through the wire protocol instead of the in-process service.
  net::Client remote;
  std::map<std::string, uint64_t> remote_prepared;
  auto remote_deadline = [&session] {
    return static_cast<uint64_t>(session->options().deadline_ms);
  };

  std::string line;
  while (std::printf("oql> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    try {
      if (line == ".quit" || line == ".exit") break;
      if (line == ".help") {
        std::printf(".schema | .plan <oql> | .explain <oql> | .profile <oql> "
                    "| .verify <oql> | .baseline <oql> | .time <oql> "
                    "| .prepare <name> <oql> | .exec <name> [args] "
                    "| .timeout <ms> | .budget <bytes> | .cache [clear] "
                    "| .metrics | .querylog [n] | .queries "
                    "| .trace <file> <oql> | .connect host:port "
                    "| .stats | .fetch-trace [id] [file] "
                    "| .disconnect | .quit | <oql>\n"
                    "(.explain prints the profiled plan inline; .trace writes "
                    "the same execution as a Perfetto timeline; while "
                    ".connect'ed, .metrics/.stats/.fetch-trace read the "
                    "server over INTROSPECT)\n");
      } else if (line == ".schema") {
        ShowSchema(db.schema());
      } else if (line.rfind(".plan ", 0) == 0) {
        ShowPlan(db, line.substr(6));
      } else if (line.rfind(".explain ", 0) == 0) {
        ExplainQuery(db, line.substr(9), /*as_json=*/false);
      } else if (line.rfind(".profile ", 0) == 0) {
        ExplainQuery(db, line.substr(9), /*as_json=*/true);
      } else if (line.rfind(".verify ", 0) == 0) {
        VerifyQuery(db, line.substr(8));
      } else if (line.rfind(".baseline ", 0) == 0) {
        PrintResult(RunOQLBaseline(db, line.substr(10)));
      } else if (line.rfind(".time ", 0) == 0) {
        std::string oql = line.substr(6);
        Value opt_result, base_result;
        double opt_ms = MsOf([&] { opt_result = RunOQL(db, oql); });
        double base_ms = MsOf([&] { base_result = RunOQLBaseline(db, oql); });
        std::printf("unnested: %.2f ms | baseline: %.2f ms | agree: %s\n",
                    opt_ms, base_ms, opt_result == base_result ? "yes" : "NO");
      } else if (line.rfind(".prepare ", 0) == 0) {
        std::istringstream in(line.substr(9));
        std::string name;
        in >> name;
        std::string oql;
        std::getline(in, oql);
        size_t start = oql.find_first_not_of(' ');
        if (name.empty() || start == std::string::npos) {
          std::printf("usage: .prepare <name> <oql>\n");
        } else if (remote.connected()) {
          remote_prepared[name] = remote.Prepare(oql.substr(start));
          std::printf("prepared '%s' (remote handle %llu)\n", name.c_str(),
                      static_cast<unsigned long long>(remote_prepared[name]));
        } else {
          service.Prepare(name, oql.substr(start));
          std::printf("prepared '%s'\n", name.c_str());
        }
      } else if (line.rfind(".exec ", 0) == 0) {
        std::istringstream in(line.substr(6));
        std::string name;
        in >> name;
        std::vector<std::pair<std::string, Value>> args;
        std::string tok;
        int idx = 1;
        while (in >> tok) {
          args.emplace_back(std::to_string(idx++), ParseArgValue(tok));
        }
        if (remote.connected()) {
          auto it = remote_prepared.find(name);
          if (it == remote_prepared.end()) {
            std::printf("error: no remote prepared statement '%s'\n",
                        name.c_str());
          } else {
            remote.Bind(args);
            PrintRemoteResult(
                remote.ExecutePrepared(it->second, remote_deadline()));
          }
        } else {
          session->ClearBindings();
          for (const auto& [pname, pval] : args) session->Bind(pname, pval);
          QueryStats stats;
          PrintResult(service.ExecutePrepared(*session, name, &stats));
          PrintQueryStats(stats);
        }
      } else if (line.rfind(".timeout ", 0) == 0) {
        session->options().deadline_ms = std::atoll(line.substr(9).c_str());
        std::printf("per-query deadline: %lld ms\n",
                    static_cast<long long>(session->options().deadline_ms));
      } else if (line.rfind(".budget ", 0) == 0) {
        session->options().memory_budget_bytes =
            std::strtoull(line.c_str() + 8, nullptr, 10);
        std::printf("per-query memory budget: %llu bytes%s\n",
                    static_cast<unsigned long long>(
                        session->options().memory_budget_bytes),
                    session->options().memory_budget_bytes == 0
                        ? " (unlimited)"
                        : "");
      } else if (line == ".queries") {
        ShowActiveQueries(service);
      } else if (line == ".cache") {
        PlanCacheStats cs = service.cache_stats();
        std::printf(
            "plan cache: %zu/%zu entries | %llu hits | %llu misses | "
            "%llu evictions\n",
            cs.entries, cs.capacity, static_cast<unsigned long long>(cs.hits),
            static_cast<unsigned long long>(cs.misses),
            static_cast<unsigned long long>(cs.evictions));
      } else if (line == ".cache clear") {
        service.ClearCache();
        std::printf("plan cache cleared\n");
      } else if (line == ".metrics") {
        if (remote.connected()) {
          std::printf("%s\n",
                      remote.Introspect(net::IntrospectRequest::kMetrics)
                          .c_str());
        } else {
          std::printf("%s",
                      service.metrics().Snapshot().ToPrometheusText().c_str());
        }
      } else if (line == ".stats") {
        if (!remote.connected()) {
          std::printf("not connected (.stats reads the server over "
                      "INTROSPECT; use .queries/.querylog in-process)\n");
        } else {
          std::printf(
              "-- server active queries --\n%s\n"
              "-- server query log (last 10) --\n%s\n",
              remote.Introspect(net::IntrospectRequest::kActiveQueries)
                  .c_str(),
              remote.Introspect(net::IntrospectRequest::kQueryLog, 10)
                  .c_str());
        }
      } else if (line == ".fetch-trace" ||
                 line.rfind(".fetch-trace ", 0) == 0) {
        if (!remote.connected()) {
          std::printf("not connected (.fetch-trace reads the server's trace "
                      "ring over INTROSPECT)\n");
        } else {
          std::istringstream in(
              line.size() > 12 ? line.substr(13) : std::string());
          std::string id_tok, file;
          in >> id_tok >> file;
          uint64_t id = remote.last_trace_id();
          if (id_tok == "slowest") {
            id = 0;  // the server resolves 0 to its slowest kept trace
          } else if (!id_tok.empty()) {
            id = obs::TraceIdFromHex(id_tok);
            if (id == 0) {
              std::printf("usage: .fetch-trace [16-hex-id|slowest] [file]\n");
              continue;
            }
          }
          std::string json =
              remote.Introspect(net::IntrospectRequest::kTrace, 0, id);
          if (file.empty()) {
            std::printf("%s\n", json.c_str());
          } else {
            std::ofstream out(file);
            if (!out) {
              std::printf("error: cannot write '%s'\n", file.c_str());
            } else {
              out << json;
              std::printf("wrote %s (load via ui.perfetto.dev)\n",
                          file.c_str());
            }
          }
        }
      } else if (line == ".querylog" || line.rfind(".querylog ", 0) == 0) {
        size_t n = 10;
        if (line.size() > 10) n = std::strtoull(line.c_str() + 10, nullptr, 10);
        ShowQueryLog(service.query_log(), n == 0 ? 10 : n);
      } else if (line.rfind(".connect ", 0) == 0) {
        std::string target = line.substr(9);
        size_t colon = target.rfind(':');
        if (remote.connected()) {
          std::printf("already connected; .disconnect first\n");
        } else if (colon == std::string::npos || colon == 0 ||
                   colon + 1 == target.size()) {
          std::printf("usage: .connect host:port\n");
        } else {
          net::HelloRequest hello;
          remote.Connect(target.substr(0, colon),
                         static_cast<uint16_t>(
                             std::atoi(target.c_str() + colon + 1)),
                         hello);
          remote_prepared.clear();
          std::printf("connected: %s (session %llu, wire v%u)\n",
                      remote.hello().server_info.c_str(),
                      static_cast<unsigned long long>(remote.session_id()),
                      remote.hello().version);
        }
      } else if (line == ".disconnect") {
        if (!remote.connected()) {
          std::printf("not connected\n");
        } else {
          remote.Close();
          remote_prepared.clear();
          std::printf("disconnected\n");
        }
      } else if (line.rfind(".trace ", 0) == 0) {
        std::istringstream in(line.substr(7));
        std::string file;
        in >> file;
        std::string oql;
        std::getline(in, oql);
        size_t start = oql.find_first_not_of(' ');
        if (file.empty() || start == std::string::npos) {
          std::printf("usage: .trace <file> <oql>\n");
        } else {
          TraceQuery(db, file, oql.substr(start));
        }
      } else if (remote.connected()) {
        PrintRemoteResult(remote.Execute(line, remote_deadline()));
      } else {
        QueryStats stats;
        PrintResult(service.Execute(*session, line, &stats));
        PrintQueryStats(stats);
      }
    } catch (const Error& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
