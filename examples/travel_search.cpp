// Travel search: the paper's Section 2 hotel query — a query whose nesting
// is removed entirely by the NORMALIZATION algorithm (rules N7/N8), no
// outer-joins needed. Prints the before/after comprehensions so the
// flattening is visible, then runs parameterized searches.
//
//   $ ./examples/travel_search [n_cities]

#include <cstdio>
#include <cstdlib>

#include "src/lambdadb.h"
#include "src/workload/travel.h"

int main(int argc, char** argv) {
  using namespace ldb;

  workload::TravelParams params;
  params.n_cities = argc > 1 ? std::atoi(argv[1]) : 50;
  params.hotels_per_city = 8;
  Database db = workload::MakeTravelDatabase(params);

  const char* oql =
      "select distinct hotel.price "
      "from hotel in ( select h from c in Cities, h in c.hotels "
      "                where c.name = 'Arlington' ) "
      "where exists r in hotel.rooms: r.bed_num = 3 "
      "  and hotel.name in ( select t.name from s in States, "
      "                      t in s.attractions where s.name = 'Texas' )";

  std::printf("Section 2 hotel query:\n  %s\n\n", oql);

  ExprPtr calculus = ParseOQL(oql);
  std::printf("calculus (three nested comprehensions):\n  %s\n\n",
              PrintExpr(calculus).c_str());
  ExprPtr normalized = Normalize(calculus);
  std::printf("normalized (one flat comprehension — N7 flattened the hotel\n"
              "domain, N8 unnested both existentials):\n  %s\n\n",
              PrintExpr(normalized).c_str());

  AlgPtr plan = UnnestComp(normalized, db.schema());
  std::printf("algebra plan (joins and unnests only, no outer operators):\n%s\n",
              PrintPlan(plan).c_str());

  Value prices = ExecutePlan(plan, db);
  std::printf("matching prices: %s\n", prices.ToString().c_str());
  std::printf("baseline agrees: %s\n\n",
              prices == RunOQLBaseline(db, oql) ? "yes" : "NO");

  // A few more searches over the same data.
  Value cheap = RunOQL(db,
      "select distinct struct(city: c.name, hotel: h.name, price: h.price) "
      "from c in Cities, h in c.hotels where h.price < 60");
  std::printf("hotels under $60: %zu\n", cheap.AsElems().size());

  Value biggest = RunOQL(db,
      "max(select r.bed_num from h in Hotels, r in h.rooms)");
  std::printf("largest room (beds): %s\n", biggest.ToString().c_str());

  Value per_city = RunOQL(db,
      "select distinct struct(city: c.name, "
      "  cheapest: min(select h.price from h in c.hotels)) "
      "from c in Cities where c.name = 'Arlington'");
  std::printf("cheapest in Arlington: %s\n", per_city.ToString().c_str());
  return 0;
}
