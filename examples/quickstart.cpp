// Quickstart: build a tiny OODB, run one nested OQL query through the full
// pipeline, and print every intermediate the paper shows — calculus,
// normalized form, unnested algebra plan, physical plan, result.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "src/lambdadb.h"
#include "src/workload/company.h"

int main() {
  using namespace ldb;

  // 1. Build a small company database (see src/workload/company.h for the
  //    schema: Employees, Departments, Managers, Persons).
  workload::CompanyParams params;
  params.n_departments = 5;
  params.n_employees = 30;
  params.seed = 7;
  Database db = workload::MakeCompanyDatabase(params);
  std::printf("database: %zu objects across %zu classes\n\n", db.ObjectCount(),
              db.schema().classes().size());

  // 2. A nested query: for every department, the names of its employees.
  //    This is the paper's QUERY B — the classic "nested query in the head".
  const char* oql =
      "select distinct struct(D: d.name, E: (select distinct e.name "
      "from e in Employees where e.dno = d.dno)) "
      "from d in Departments";
  std::printf("OQL:\n  %s\n\n", oql);

  // 3. Walk the pipeline stage by stage.
  ExprPtr calculus = ParseOQL(oql);
  std::printf("monoid calculus:\n  %s\n\n", PrintExpr(calculus).c_str());

  Optimizer optimizer(db.schema());
  CompiledQuery compiled = optimizer.Compile(calculus);
  std::printf("result type: %s\n\n", compiled.result_type->ToString().c_str());
  std::printf("unnested algebra plan (outer-join + nest, Figure 1.B):\n%s\n",
              PrintPlan(compiled.simplified).c_str());
  std::printf("physical plan:\n%s\n",
              ExplainPhysical(compiled.simplified, PhysicalOptions{}).c_str());

  // 4. Execute — and cross-check against the naive nested-loop baseline.
  Value result = optimizer.Execute(compiled, db);
  Value baseline = RunOQLBaseline(db, oql);
  std::printf("result (%zu departments):\n", result.AsElems().size());
  for (const Value& row : result.AsElems()) {
    std::printf("  %s\n", row.ToString().c_str());
  }
  std::printf("\nbaseline (no unnesting) agrees: %s\n",
              result == baseline ? "yes" : "NO");

  // 5. One-liners for everything above:
  Value oneliner = RunOQL(db, "count(select e from e in Employees "
                              "where e.salary > 50000)");
  std::printf("employees over 50k: %s\n", oneliner.ToString().c_str());
  return 0;
}
