file(REMOVE_RECURSE
  "CMakeFiles/company_reports.dir/company_reports.cpp.o"
  "CMakeFiles/company_reports.dir/company_reports.cpp.o.d"
  "company_reports"
  "company_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
