# Empty dependencies file for company_reports.
# This may be replaced when dependencies are built.
