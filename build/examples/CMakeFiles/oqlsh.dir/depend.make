# Empty dependencies file for oqlsh.
# This may be replaced when dependencies are built.
