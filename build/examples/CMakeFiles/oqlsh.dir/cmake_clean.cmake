file(REMOVE_RECURSE
  "CMakeFiles/oqlsh.dir/oqlsh.cpp.o"
  "CMakeFiles/oqlsh.dir/oqlsh.cpp.o.d"
  "oqlsh"
  "oqlsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqlsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
