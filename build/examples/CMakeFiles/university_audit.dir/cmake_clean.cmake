file(REMOVE_RECURSE
  "CMakeFiles/university_audit.dir/university_audit.cpp.o"
  "CMakeFiles/university_audit.dir/university_audit.cpp.o.d"
  "university_audit"
  "university_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
