# Empty compiler generated dependencies file for university_audit.
# This may be replaced when dependencies are built.
