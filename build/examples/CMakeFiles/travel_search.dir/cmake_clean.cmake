file(REMOVE_RECURSE
  "CMakeFiles/travel_search.dir/travel_search.cpp.o"
  "CMakeFiles/travel_search.dir/travel_search.cpp.o.d"
  "travel_search"
  "travel_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
