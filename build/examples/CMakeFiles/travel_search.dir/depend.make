# Empty dependencies file for travel_search.
# This may be replaced when dependencies are built.
