# Empty dependencies file for bench_unnesting.
# This may be replaced when dependencies are built.
