file(REMOVE_RECURSE
  "CMakeFiles/bench_oo7.dir/bench_oo7.cc.o"
  "CMakeFiles/bench_oo7.dir/bench_oo7.cc.o.d"
  "bench_oo7"
  "bench_oo7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oo7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
