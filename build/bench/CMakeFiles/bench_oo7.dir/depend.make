# Empty dependencies file for bench_oo7.
# This may be replaced when dependencies are built.
