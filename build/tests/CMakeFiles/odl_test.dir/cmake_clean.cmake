file(REMOVE_RECURSE
  "CMakeFiles/odl_test.dir/odl_test.cc.o"
  "CMakeFiles/odl_test.dir/odl_test.cc.o.d"
  "odl_test"
  "odl_test.pdb"
  "odl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
