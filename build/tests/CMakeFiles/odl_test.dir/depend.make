# Empty dependencies file for odl_test.
# This may be replaced when dependencies are built.
