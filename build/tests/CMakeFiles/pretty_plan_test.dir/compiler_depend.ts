# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pretty_plan_test.
