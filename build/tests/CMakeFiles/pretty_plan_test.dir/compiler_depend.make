# Empty compiler generated dependencies file for pretty_plan_test.
# This may be replaced when dependencies are built.
