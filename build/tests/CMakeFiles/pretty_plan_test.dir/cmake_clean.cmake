file(REMOVE_RECURSE
  "CMakeFiles/pretty_plan_test.dir/pretty_plan_test.cc.o"
  "CMakeFiles/pretty_plan_test.dir/pretty_plan_test.cc.o.d"
  "pretty_plan_test"
  "pretty_plan_test.pdb"
  "pretty_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretty_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
