# Empty dependencies file for order_by_test.
# This may be replaced when dependencies are built.
