file(REMOVE_RECURSE
  "CMakeFiles/order_by_test.dir/order_by_test.cc.o"
  "CMakeFiles/order_by_test.dir/order_by_test.cc.o.d"
  "order_by_test"
  "order_by_test.pdb"
  "order_by_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_by_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
