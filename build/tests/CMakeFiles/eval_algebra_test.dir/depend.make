# Empty dependencies file for eval_algebra_test.
# This may be replaced when dependencies are built.
