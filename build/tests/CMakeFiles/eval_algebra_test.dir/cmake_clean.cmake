file(REMOVE_RECURSE
  "CMakeFiles/eval_algebra_test.dir/eval_algebra_test.cc.o"
  "CMakeFiles/eval_algebra_test.dir/eval_algebra_test.cc.o.d"
  "eval_algebra_test"
  "eval_algebra_test.pdb"
  "eval_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
