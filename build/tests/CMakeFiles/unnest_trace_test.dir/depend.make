# Empty dependencies file for unnest_trace_test.
# This may be replaced when dependencies are built.
