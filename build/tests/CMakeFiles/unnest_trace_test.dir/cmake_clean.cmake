file(REMOVE_RECURSE
  "CMakeFiles/unnest_trace_test.dir/unnest_trace_test.cc.o"
  "CMakeFiles/unnest_trace_test.dir/unnest_trace_test.cc.o.d"
  "unnest_trace_test"
  "unnest_trace_test.pdb"
  "unnest_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unnest_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
