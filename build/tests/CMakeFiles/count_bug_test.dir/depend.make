# Empty dependencies file for count_bug_test.
# This may be replaced when dependencies are built.
