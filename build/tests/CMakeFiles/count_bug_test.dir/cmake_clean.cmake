file(REMOVE_RECURSE
  "CMakeFiles/count_bug_test.dir/count_bug_test.cc.o"
  "CMakeFiles/count_bug_test.dir/count_bug_test.cc.o.d"
  "count_bug_test"
  "count_bug_test.pdb"
  "count_bug_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_bug_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
