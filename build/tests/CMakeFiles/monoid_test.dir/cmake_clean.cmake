file(REMOVE_RECURSE
  "CMakeFiles/monoid_test.dir/monoid_test.cc.o"
  "CMakeFiles/monoid_test.dir/monoid_test.cc.o.d"
  "monoid_test"
  "monoid_test.pdb"
  "monoid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monoid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
