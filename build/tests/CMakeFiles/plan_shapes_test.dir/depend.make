# Empty dependencies file for plan_shapes_test.
# This may be replaced when dependencies are built.
