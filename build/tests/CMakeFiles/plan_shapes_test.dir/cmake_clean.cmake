file(REMOVE_RECURSE
  "CMakeFiles/plan_shapes_test.dir/plan_shapes_test.cc.o"
  "CMakeFiles/plan_shapes_test.dir/plan_shapes_test.cc.o.d"
  "plan_shapes_test"
  "plan_shapes_test.pdb"
  "plan_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
