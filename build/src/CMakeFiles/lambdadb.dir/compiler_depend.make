# Empty compiler generated dependencies file for lambdadb.
# This may be replaced when dependencies are built.
