file(REMOVE_RECURSE
  "liblambdadb.a"
)
