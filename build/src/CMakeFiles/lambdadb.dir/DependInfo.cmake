
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algebra.cc" "src/CMakeFiles/lambdadb.dir/core/algebra.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/algebra.cc.o.d"
  "/root/repo/src/core/cost.cc" "src/CMakeFiles/lambdadb.dir/core/cost.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/cost.cc.o.d"
  "/root/repo/src/core/expr.cc" "src/CMakeFiles/lambdadb.dir/core/expr.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/expr.cc.o.d"
  "/root/repo/src/core/materialize.cc" "src/CMakeFiles/lambdadb.dir/core/materialize.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/materialize.cc.o.d"
  "/root/repo/src/core/monoid.cc" "src/CMakeFiles/lambdadb.dir/core/monoid.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/monoid.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/CMakeFiles/lambdadb.dir/core/normalize.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/normalize.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/lambdadb.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/pretty.cc" "src/CMakeFiles/lambdadb.dir/core/pretty.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/pretty.cc.o.d"
  "/root/repo/src/core/simplify.cc" "src/CMakeFiles/lambdadb.dir/core/simplify.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/simplify.cc.o.d"
  "/root/repo/src/core/type.cc" "src/CMakeFiles/lambdadb.dir/core/type.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/type.cc.o.d"
  "/root/repo/src/core/typecheck.cc" "src/CMakeFiles/lambdadb.dir/core/typecheck.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/typecheck.cc.o.d"
  "/root/repo/src/core/unnest.cc" "src/CMakeFiles/lambdadb.dir/core/unnest.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/core/unnest.cc.o.d"
  "/root/repo/src/oql/lexer.cc" "src/CMakeFiles/lambdadb.dir/oql/lexer.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/oql/lexer.cc.o.d"
  "/root/repo/src/oql/odl.cc" "src/CMakeFiles/lambdadb.dir/oql/odl.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/oql/odl.cc.o.d"
  "/root/repo/src/oql/parser.cc" "src/CMakeFiles/lambdadb.dir/oql/parser.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/oql/parser.cc.o.d"
  "/root/repo/src/oql/translate.cc" "src/CMakeFiles/lambdadb.dir/oql/translate.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/oql/translate.cc.o.d"
  "/root/repo/src/runtime/database.cc" "src/CMakeFiles/lambdadb.dir/runtime/database.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/database.cc.o.d"
  "/root/repo/src/runtime/eval_algebra.cc" "src/CMakeFiles/lambdadb.dir/runtime/eval_algebra.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/eval_algebra.cc.o.d"
  "/root/repo/src/runtime/eval_calculus.cc" "src/CMakeFiles/lambdadb.dir/runtime/eval_calculus.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/eval_calculus.cc.o.d"
  "/root/repo/src/runtime/exec_pipeline.cc" "src/CMakeFiles/lambdadb.dir/runtime/exec_pipeline.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/exec_pipeline.cc.o.d"
  "/root/repo/src/runtime/expr_eval.cc" "src/CMakeFiles/lambdadb.dir/runtime/expr_eval.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/expr_eval.cc.o.d"
  "/root/repo/src/runtime/physical.cc" "src/CMakeFiles/lambdadb.dir/runtime/physical.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/physical.cc.o.d"
  "/root/repo/src/runtime/physical_plan.cc" "src/CMakeFiles/lambdadb.dir/runtime/physical_plan.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/physical_plan.cc.o.d"
  "/root/repo/src/runtime/schema.cc" "src/CMakeFiles/lambdadb.dir/runtime/schema.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/schema.cc.o.d"
  "/root/repo/src/runtime/serialize.cc" "src/CMakeFiles/lambdadb.dir/runtime/serialize.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/serialize.cc.o.d"
  "/root/repo/src/runtime/value.cc" "src/CMakeFiles/lambdadb.dir/runtime/value.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/runtime/value.cc.o.d"
  "/root/repo/src/workload/company.cc" "src/CMakeFiles/lambdadb.dir/workload/company.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/workload/company.cc.o.d"
  "/root/repo/src/workload/oo7.cc" "src/CMakeFiles/lambdadb.dir/workload/oo7.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/workload/oo7.cc.o.d"
  "/root/repo/src/workload/travel.cc" "src/CMakeFiles/lambdadb.dir/workload/travel.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/workload/travel.cc.o.d"
  "/root/repo/src/workload/university.cc" "src/CMakeFiles/lambdadb.dir/workload/university.cc.o" "gcc" "src/CMakeFiles/lambdadb.dir/workload/university.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
