// Experiments F8 + P-SIMP (DESIGN.md): regenerates Figure 8 — the
// self-outer-join plan (8.A) the unnesting algorithm produces for a group-by
// query and the single-scan nest (8.B) after the Section 5 simplification —
// and measures the simplification's effect across scales (ablation P-SIMP).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/workload/company.h"

int main() {
  using namespace ldb;
  Gensym::Reset();

  const char* kQuery =
      "select distinct e.dno, avg(e.salary) from Employees e "
      "where e.age > 30 group by e.dno";

  workload::CompanyParams small;
  small.n_employees = 100;
  Database db = workload::MakeCompanyDatabase(small);

  bench::PrintHeader("Figure 8: simplification of a group-by query");
  std::printf("OQL:\n  %s\n\n", kQuery);
  ExprPtr calculus = ParseOQL(kQuery);
  std::printf("monoid calculus (note: the group-by IS a nested query):\n  %s\n\n",
              PrintExpr(calculus).c_str());
  AlgPtr plan = UnnestComp(Normalize(calculus), db.schema());
  std::printf("Figure 8.A — after unnesting (self outer-join + nest):\n%s\n",
              PrintPlan(plan).c_str());
  AlgPtr simplified = Simplify(plan, db.schema());
  std::printf("Figure 8.B — after the Section 5 rule (single scan + nest):\n%s\n",
              PrintPlan(simplified).c_str());

  bench::PrintHeader(
      "P-SIMP: execution time, simplification on vs off (hash operators)");
  std::printf("%-20s %16s %16s %14s %6s\n", "employees", "plan A (ms)",
              "plan B (ms)", "simp speedup", "agree");
  for (int n : {500, 2000, 8000, 32000}) {
    workload::CompanyParams p;
    p.n_departments = 50;
    p.n_employees = n;
    Database d = workload::MakeCompanyDatabase(p);
    OptimizerOptions with, without;
    without.simplify = false;
    Value ra, rb;
    double a_ms = ldb::bench::TimeMs([&] { ra = RunOQL(d, kQuery, without); });
    double b_ms = ldb::bench::TimeMs([&] { rb = RunOQL(d, kQuery, with); });
    std::printf("%-20d %16.2f %16.2f %13.1fx %6s\n", n, a_ms, b_ms,
                b_ms > 0 ? a_ms / b_ms : 0.0, ra == rb ? "yes" : "NO!");
  }

  bench::PrintHeader(
      "Figure 8 query: baseline vs unnested (context for the simplification)");
  ldb::bench::PrintRowHeader();
  for (int n : {500, 2000, 8000}) {
    workload::CompanyParams p;
    p.n_departments = 50;
    p.n_employees = n;
    Database d = workload::MakeCompanyDatabase(p);
    ldb::bench::PrintRow("company/" + std::to_string(n),
                         ldb::bench::RunStrategies(d, kQuery));
  }
  return 0;
}
