// Experiment F1.A-F1.E + F2 (DESIGN.md): regenerates the algebraic plans of
// Figure 1 (Queries A-E) and the unnesting pipeline of Figure 2 as text, and
// verifies each plan's result against the nested-loop baseline on the
// matching workload. The *shape* of each printed plan is the paper artifact
// being reproduced; the timing row shows the effect of unnesting at a small
// scale.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workload/company.h"
#include "src/workload/university.h"

namespace {

using namespace ldb;

struct FigureQuery {
  const char* id;
  const char* description;
  const char* oql;
};

void ShowQuery(const Database& db, const FigureQuery& fq) {
  bench::PrintHeader((std::string(fq.id) + ": " + fq.description).c_str());
  std::printf("OQL:\n  %s\n\n", fq.oql);
  ExprPtr calculus = ParseOQL(fq.oql);
  std::printf("monoid calculus:\n  %s\n\n", PrintExpr(calculus).c_str());
  ExprPtr normalized = Normalize(calculus);
  std::printf("normalized:\n  %s\n\n", PrintExpr(normalized).c_str());
  AlgPtr plan = UnnestComp(normalized, db.schema());
  std::printf("unnested algebra plan (the Figure 1 artifact):\n%s\n",
              PrintPlan(plan).c_str());
  std::printf("physical plan:\n%s\n",
              ExplainPhysical(plan, PhysicalOptions{}).c_str());
  bench::StrategyTimes t = bench::RunStrategies(db, fq.oql);
  bench::PrintRowHeader();
  bench::PrintRow(fq.id, t);
  auto record = [&](const char* engine, double ms) {
    bench::JsonRecord r;
    r.experiment = fq.id;
    r.query = fq.oql;
    r.engine = engine;
    r.rows = t.rows;
    r.ms = ms;
    r.agree = t.results_agree;
    bench::JsonReporter::Get().Add(std::move(r));
  };
  record("baseline", t.baseline_ms);
  record("unnested-nl", t.unnested_nl_ms);
  record("unnested-hash", t.unnested_hash_ms);
}

}  // namespace

int main(int argc, char** argv) {
  if (!ldb::bench::JsonReporter::Get().ParseArgs(argc, argv)) return 1;
  ldb::Gensym::Reset();

  ldb::workload::CompanyParams cp;
  cp.n_departments = 40;
  cp.n_employees = 2000;
  cp.n_managers = 40;
  ldb::Database company = ldb::workload::MakeCompanyDatabase(cp);

  ldb::workload::UniversityParams up;
  up.n_students = 800;
  up.n_courses = 40;
  ldb::Database university = ldb::workload::MakeUniversityDatabase(up);

  const FigureQuery kQueryA{
      "Figure 1.A (QUERY A)", "flat select-from over employees and children",
      "select distinct struct(E: e.name, C: c.name) "
      "from e in Employees, c in e.children"};
  const FigureQuery kQueryB{
      "Figure 1.B (QUERY B)",
      "nested set query in the head: outer-join + nest",
      "select distinct struct(D: d.name, E: (select distinct e.name "
      "from e in Employees where e.dno = d.dno)) from d in Departments"};
  const FigureQuery kQueryD{
      "Figure 1.D (QUERY D)",
      "double-nested count + universal quantifier: two outer-unnest/nest pairs",
      "select distinct struct(E: e.name, M: count(select distinct c "
      "from c in e.children "
      "where for all d in e.manager.children: c.age > d.age)) "
      "from e in Employees"};
  const FigureQuery kQueryE{
      "Figure 1.E / Figure 2 (QUERY E)",
      "students who took all DB courses: ∀ over ∃ via two outer-joins",
      "select distinct s.name from s in Students "
      "where for all c in select c from c in Courses where c.title = 'DB': "
      "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno"};

  ShowQuery(company, kQueryA);
  ShowQuery(company, kQueryB);

  // Figure 1.C is pure calculus (A ⊆ B): build it directly.
  {
    using ldb::Expr;
    bench::PrintHeader("Figure 1.C (QUERY C): A subset-of B as all{some{...}}");
    ldb::ExprPtr q = Expr::Comp(
        ldb::MonoidKind::kAll,
        Expr::Comp(ldb::MonoidKind::kSome,
                   Expr::Eq(Expr::Proj(Expr::Var("a"), "dno"),
                            Expr::Proj(Expr::Var("b"), "dno")),
                   {ldb::Qualifier::Generator("b", Expr::Var("Departments"))}),
        {ldb::Qualifier::Generator("a", Expr::Var("Employees"))});
    std::printf("monoid calculus:\n  %s\n\n", ldb::PrintExpr(q).c_str());
    ldb::AlgPtr plan = ldb::UnnestComp(ldb::Normalize(q), company.schema());
    std::printf("unnested algebra plan:\n%s\n", ldb::PrintPlan(plan).c_str());
    ldb::Value via_plan = ldb::ExecutePlan(plan, company);
    ldb::Value via_loops = ldb::EvalCalculus(q, company);
    std::printf("result: %s (baseline agrees: %s)\n",
                via_plan.ToString().c_str(),
                via_plan == via_loops ? "yes" : "NO!");
  }

  ShowQuery(company, kQueryD);

  // Figure 2: the staged unnesting of Query E, box by box.
  bench::PrintHeader("Figure 2: unnesting pipeline of QUERY E, stage by stage");
  {
    ldb::ExprPtr calculus = ldb::ParseOQL(kQueryE.oql);
    std::printf("stage 1 - calculus (boxes A/B/C as nested comprehensions):\n"
                "  %s\n\n", ldb::PrintExpr(calculus).c_str());
    ldb::ExprPtr normalized = ldb::Normalize(calculus);
    std::printf("stage 2 - normalized (N7 flattens the course domain, the\n"
                "          existential predicate moves into join position):\n"
                "  %s\n\n", ldb::PrintExpr(normalized).c_str());
    std::vector<ldb::UnnestStep> steps;
    ldb::AlgPtr plan =
        ldb::UnnestCompTraced(normalized, university.schema(), &steps);
    std::printf("stage 3 - rule applications (Figure 7):\n");
    for (const ldb::UnnestStep& s : steps) {
      std::printf("  (%s) %s\n", s.rule.c_str(), s.description.c_str());
    }
    std::printf("\nstage 4 - spliced boxes: joins became outer-joins,\n"
                "          reductions became nests, inner nest converts null\n"
                "          t's to false, outer nest converts null c's to true:\n"
                "%s\n", ldb::PrintPlan(plan).c_str());
  }

  ShowQuery(university, kQueryE);
  if (!ldb::bench::JsonReporter::Get().Write("bench_figure1")) return 1;
  return 0;
}
