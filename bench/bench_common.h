// Shared helpers for the benchmark harnesses: wall-clock timing of the three
// evaluation strategies (baseline nested loops, unnested plan with
// nested-loop operators, unnested plan with hash operators) and table
// printing in the style of the paper's experiment reports.

#ifndef LAMBDADB_BENCH_BENCH_COMMON_H_
#define LAMBDADB_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "src/lambdadb.h"

namespace ldb::bench {

/// Milliseconds taken by `fn()`, run once (the workloads are sized so a
/// single run is representative; google-benchmark covers the micro side).
template <typename Fn>
double TimeMs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

struct StrategyTimes {
  double baseline_ms = 0;    ///< nested-loop interpretation of the calculus
  double unnested_nl_ms = 0; ///< unnested plan, nested-loop operators
  double unnested_hash_ms = 0;  ///< unnested plan, hash operators
  bool results_agree = false;
};

/// Runs `oql` under all three strategies and checks result agreement.
inline StrategyTimes RunStrategies(const Database& db, const std::string& oql) {
  StrategyTimes t;
  Value baseline, nl, hash;
  t.baseline_ms = TimeMs([&] { baseline = RunOQLBaseline(db, oql); });
  OptimizerOptions nl_opts;
  nl_opts.physical.use_hash_joins = false;
  t.unnested_nl_ms = TimeMs([&] { nl = RunOQL(db, oql, nl_opts); });
  t.unnested_hash_ms = TimeMs([&] { hash = RunOQL(db, oql, {}); });
  t.results_agree = (baseline == nl) && (nl == hash);
  return t;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void PrintRowHeader() {
  std::printf("%-28s %12s %14s %14s %9s %6s\n", "workload/scale",
              "baseline(ms)", "unnested-NL(ms)", "unnested-hash",
              "speedup", "agree");
}

inline void PrintRow(const std::string& label, const StrategyTimes& t) {
  std::printf("%-28s %12.2f %14.2f %14.2f %8.1fx %6s\n", label.c_str(),
              t.baseline_ms, t.unnested_nl_ms, t.unnested_hash_ms,
              t.unnested_hash_ms > 0 ? t.baseline_ms / t.unnested_hash_ms : 0.0,
              t.results_agree ? "yes" : "NO!");
  std::fflush(stdout);  // rows appear as they complete, even when piped
}

}  // namespace ldb::bench

#endif  // LAMBDADB_BENCH_BENCH_COMMON_H_
