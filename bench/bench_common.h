// Shared helpers for the benchmark harnesses: wall-clock timing of the three
// evaluation strategies (baseline nested loops, unnested plan with
// nested-loop operators, unnested plan with hash operators) and table
// printing in the style of the paper's experiment reports.

#ifndef LAMBDADB_BENCH_BENCH_COMMON_H_
#define LAMBDADB_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "src/lambdadb.h"

namespace ldb::bench {

/// Milliseconds taken by `fn()`, run once (the workloads are sized so a
/// single run is representative; google-benchmark covers the micro side).
template <typename Fn>
double TimeMs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

struct StrategyTimes {
  double baseline_ms = 0;    ///< nested-loop interpretation of the calculus
  double unnested_nl_ms = 0; ///< unnested plan, nested-loop operators
  double unnested_hash_ms = 0;  ///< unnested plan, hash operators
  long rows = 0;                ///< result cardinality
  bool results_agree = false;
};

inline long ResultRows(const Value& v);  // defined below

/// Runs `oql` under all three strategies and checks result agreement.
inline StrategyTimes RunStrategies(const Database& db, const std::string& oql) {
  StrategyTimes t;
  Value baseline, nl, hash;
  t.baseline_ms = TimeMs([&] { baseline = RunOQLBaseline(db, oql); });
  OptimizerOptions nl_opts;
  nl_opts.physical.use_hash_joins = false;
  t.unnested_nl_ms = TimeMs([&] { nl = RunOQL(db, oql, nl_opts); });
  t.unnested_hash_ms = TimeMs([&] { hash = RunOQL(db, oql, {}); });
  t.rows = ResultRows(hash);
  t.results_agree = (baseline == nl) && (nl == hash);
  return t;
}

/// Wall time of one full static-verifier pass over `oql` (docs/VERIFIER.md):
/// every calculus and algebra layer plus the slot-plan dataflow check. The
/// query compiles with `verify_plans` off so the number isolates the
/// verifier itself instead of folding it into compile time; each report
/// carries its own internally measured duration and they are summed here.
inline double VerifyMs(const Database& db, const std::string& oql) {
  OptimizerOptions options;
  options.verify_plans = false;
  Optimizer opt(db.schema(), options);
  CompiledQuery q = opt.Compile(ParseOQL(oql));
  std::vector<VerifyReport> reports = VerifyCompiledQuery(q, db.schema());
  reports.push_back(
      VerifySlotPlan(CompileSlotPlan(PlanPhysical(q.simplified, db), db)));
  double ms = 0;
  for (const VerifyReport& r : reports) {
    if (!r.ok()) {
      std::fprintf(stderr, "verify FAILED: %s\n", r.ToString().c_str());
    }
    ms += r.ms;
  }
  return ms;
}

/// The current git commit id, or "unknown" outside a work tree — recorded in
/// the JSON header so archived reports are attributable to a revision.
inline std::string GitCommitId() {
#if defined(__unix__) || defined(__APPLE__)
  FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (!p) return "unknown";
  char buf[64] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, p);
  ::pclose(p);
  std::string s(buf, n);
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  if (s.size() != 40 ||
      s.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return "unknown";
  }
  return s;
#else
  return "unknown";
#endif
}

/// Current UTC time as ISO 8601 (e.g. "2026-08-05T12:34:56Z").
inline std::string IsoTimestampUtc() {
  std::time_t t = std::time(nullptr);
  std::tm tm{};
#if defined(__unix__) || defined(__APPLE__)
  gmtime_r(&t, &tm);
#else
  tm = *std::gmtime(&t);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// CPUs this process may actually run on (affinity-aware on Linux) — CI and
/// containers often pin benchmarks to fewer cores than the machine has, and
/// thread-scaling numbers are meaningless without recording this.
inline int UsableCpus() {
#ifdef __linux__
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
#endif
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

/// One measurement destined for the machine-readable report.
struct JsonRecord {
  std::string experiment;  ///< e.g. "P-A" or "Figure 1.B"
  std::string query;       ///< the OQL text
  std::string engine;      ///< baseline | env-pipeline | slot | slot-parallel...
  int scale = 0;
  int threads = 1;
  long rows = 0;           ///< result cardinality (1 for scalar results)
  double ms = 0;           ///< wall time of one execution
  bool agree = true;       ///< result matched the reference for this query
  std::string profile;     ///< raw JSON: ProfileToJson of one profiled run
  std::string compile_trace;  ///< raw JSON: CompileTraceToJson (stage times)

  // Service-mode metrics (bench_unnesting --clients): emitted only when
  // qps > 0. `threads` then holds the client count and `ms` the wall time
  // of the whole run.
  double qps = 0;             ///< completed queries per second
  double p50_ms = 0;          ///< median per-query latency
  double p99_ms = 0;          ///< 99th-percentile per-query latency
  double cache_hit_rate = 0;  ///< plan-cache hits / (hits + misses)

  /// Static-verifier wall time for this query (--verify); < 0 = not measured.
  double verify_ms = -1;
};

/// Collects JsonRecords and writes them as a single JSON document when the
/// benchmark was invoked with `--json <path>`. Records are ignored when no
/// path was given, so call sites never need to check.
class JsonReporter {
 public:
  static JsonReporter& Get() {
    static JsonReporter r;
    return r;
  }

  /// Parses `--json <path>`, `--quick`, and `--clients <n>` out of argv;
  /// returns false on a malformed flag.
  bool ParseArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--json requires a path argument\n");
          return false;
        }
        path_ = argv[++i];
      } else if (std::string(argv[i]) == "--quick") {
        quick_ = true;
      } else if (std::string(argv[i]) == "--verify") {
        verify_ = true;
      } else if (std::string(argv[i]) == "--metrics") {
        metrics_ = true;
      } else if (std::string(argv[i]) == "--clients") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--clients requires a count argument\n");
          return false;
        }
        clients_ = std::atoi(argv[++i]);
        if (clients_ <= 0) {
          std::fprintf(stderr, "--clients wants a positive count\n");
          return false;
        }
      } else {
        std::fprintf(stderr,
                     "unknown argument '%s' (supported: --json <path>, "
                     "--quick, --verify, --metrics, --clients <n>)\n",
                     argv[i]);
        return false;
      }
    }
    return true;
  }

  bool enabled() const { return !path_.empty(); }

  /// `--quick`: benchmarks should use their smallest scales (CI schema
  /// checks, not performance numbers).
  bool quick() const { return quick_; }

  /// `--verify`: run the static verifier over each benchmarked query and
  /// report its wall time (`verify_ms`) alongside the execution numbers.
  bool verify() const { return verify_; }

  /// `--clients <n>`: concurrent client count for the query-service
  /// experiment (bench_unnesting); 0 = flag not given, use the default.
  int clients() const { return clients_; }

  /// `--metrics`: collect the service MetricsRegistry during the service
  /// experiment and embed its snapshot in the report (bench_unnesting).
  bool metrics() const { return metrics_; }

  /// Installs an already-serialized MetricsSnapshot::ToJson document; it is
  /// emitted verbatim as the report's top-level "metrics" field.
  void SetMetricsJson(std::string json) { metrics_json_ = std::move(json); }

  void Add(JsonRecord r) {
    if (enabled()) records_.push_back(std::move(r));
  }

  /// Writes the report; returns false (with a message) on I/O failure.
  bool Write(const std::string& bench_name) {
    if (!enabled()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      return false;
    }
    out << "{\n";
    out << "  \"bench\": \"" << Escape(bench_name) << "\",\n";
    out << "  \"commit\": \"" << Escape(GitCommitId()) << "\",\n";
    out << "  \"timestamp\": \"" << Escape(IsoTimestampUtc()) << "\",\n";
    out << "  \"host_cpus\": " << UsableCpus() << ",\n";
    out << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n";
    if (!metrics_json_.empty()) {
      out << "  \"metrics\": " << metrics_json_ << ",\n";
    }
    out << "  \"results\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      out << "    {\"experiment\": \"" << Escape(r.experiment) << "\", "
          << "\"query\": \"" << Escape(r.query) << "\", "
          << "\"engine\": \"" << Escape(r.engine) << "\", "
          << "\"scale\": " << r.scale << ", "
          << "\"threads\": " << r.threads << ", "
          << "\"rows\": " << r.rows << ", "
          << "\"ms\": " << r.ms << ", "
          << "\"ns_per_op\": " << r.ms * 1e6 << ", "
          << "\"agree\": " << (r.agree ? "true" : "false");
      if (r.verify_ms >= 0) out << ", \"verify_ms\": " << r.verify_ms;
      if (r.qps > 0) {
        out << ", \"qps\": " << r.qps << ", \"p50_ms\": " << r.p50_ms
            << ", \"p99_ms\": " << r.p99_ms
            << ", \"cache_hit_rate\": " << r.cache_hit_rate;
      }
      // Profile/trace fields hold already-serialized JSON objects
      // (ProfileToJson / CompileTraceToJson) and nest verbatim.
      if (!r.profile.empty()) out << ", \"profile\": " << r.profile;
      if (!r.compile_trace.empty()) {
        out << ", \"compile_trace\": " << r.compile_trace;
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %zu records to %s\n", records_.size(), path_.c_str());
    return static_cast<bool>(out);
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string path_;
  bool quick_ = false;
  bool verify_ = false;
  bool metrics_ = false;
  int clients_ = 0;
  std::string metrics_json_;
  std::vector<JsonRecord> records_;
};

/// Result cardinality for reporting: collection size, or 1 for scalars.
inline long ResultRows(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kSet:
    case Value::Kind::kBag:
    case Value::Kind::kList:
      return static_cast<long>(v.AsElems().size());
    default:
      return 1;
  }
}

/// Executor-engine comparison on one already-unnested query: the legacy
/// string-Env pipeline vs the slot-frame engine (same physical plan), plus
/// the slot engine at several thread counts. The plan is compiled once;
/// timings cover execution only, which is what the engines differ in.
struct EngineTimes {
  double env_ms = 0;      ///< Env pipeline (use_slot_frames = false)
  double slot_ms = 0;     ///< slot frames, serial
  std::vector<std::pair<int, double>> parallel_ms;  ///< (threads, ms)
  long rows = 0;
  bool agree = false;     ///< every engine produced the identical Value
  std::string profile_json;        ///< per-operator stats of one profiled
                                   ///< serial slot run (ProfileToJson)
  std::string compile_trace_json;  ///< per-stage compile times
                                   ///< (CompileTraceToJson)
};

inline EngineTimes RunEngines(const Database& db, const std::string& oql,
                              std::initializer_list<int> thread_counts = {2, 4,
                                                                          8}) {
  EngineTimes t;
  Optimizer opt(db.schema());
  CompiledQuery cq = opt.Compile(ParseOQL(oql));
  PhysPtr phys = PlanPhysical(cq.simplified, db);

  // Best-of-3: the first execution of either engine pays first-touch page
  // faults on the freshly generated extents, which on a shared host can
  // double the reading. The minimum of three runs is the least-noise
  // estimate of each engine's true cost, and both engines get the same
  // treatment.
  auto best_of = [](int reps, auto&& body) {
    double best = 0;
    for (int i = 0; i < reps; ++i) {
      double ms = TimeMs(body);
      if (i == 0 || ms < best) best = ms;
    }
    return best;
  };

  ExecOptions env_opts;
  env_opts.use_slot_frames = false;
  Value env_v;
  t.env_ms = best_of(3, [&] { env_v = ExecutePipelined(phys, db, env_opts); });

  SlotPlan slots = CompileSlotPlan(phys, db);
  Value slot_v;
  t.slot_ms = best_of(3, [&] { slot_v = ExecuteSlotPlan(slots, db); });
  t.rows = ResultRows(slot_v);
  t.agree = (env_v == slot_v);

  for (int n : thread_counts) {
    ExecOptions par;
    par.n_threads = n;
    Value par_v;
    double ms = best_of(3, [&] { par_v = ExecuteSlotPlan(slots, db, par); });
    t.agree = t.agree && (par_v == slot_v);
    t.parallel_ms.emplace_back(n, ms);
  }

  // One extra traced compile + profiled serial slot execution, outside the
  // timed runs, so the JSON report carries per-operator stats and per-stage
  // compile times without perturbing the measurements above.
  OptimizerOptions prof_opts;
  prof_opts.trace = true;
  QueryProfiler prof;
  prof_opts.exec.profiler = &prof;
  Optimizer prof_opt(db.schema(), prof_opts);
  CompiledQuery prof_cq = prof_opt.Compile(ParseOQL(oql));
  Value prof_v = prof_opt.Execute(prof_cq, db);
  t.agree = t.agree && (prof_v == slot_v);
  t.profile_json = ProfileToJson(prof);
  t.compile_trace_json = CompileTraceToJson(*prof_cq.trace);
  return t;
}

inline void PrintEngineRowHeader() {
  std::printf("%-28s %12s %12s %9s", "workload/scale", "env(ms)", "slot(ms)",
              "speedup");
  for (const char* h : {"par x2", "par x4", "par x8"}) {
    std::printf(" %9s", h);
  }
  std::printf(" %6s\n", "agree");
}

inline void PrintEngineRow(const std::string& label, const EngineTimes& t) {
  std::printf("%-28s %12.2f %12.2f %8.1fx", label.c_str(), t.env_ms, t.slot_ms,
              t.slot_ms > 0 ? t.env_ms / t.slot_ms : 0.0);
  for (const auto& [n, ms] : t.parallel_ms) {
    (void)n;
    std::printf(" %9.2f", ms);
  }
  std::printf(" %6s\n", t.agree ? "yes" : "NO!");
  std::fflush(stdout);
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void PrintRowHeader() {
  std::printf("%-28s %12s %14s %14s %9s %6s\n", "workload/scale",
              "baseline(ms)", "unnested-NL(ms)", "unnested-hash",
              "speedup", "agree");
}

inline void PrintRow(const std::string& label, const StrategyTimes& t) {
  std::printf("%-28s %12.2f %14.2f %14.2f %8.1fx %6s\n", label.c_str(),
              t.baseline_ms, t.unnested_nl_ms, t.unnested_hash_ms,
              t.unnested_hash_ms > 0 ? t.baseline_ms / t.unnested_hash_ms : 0.0,
              t.results_agree ? "yes" : "NO!");
  std::fflush(stdout);  // rows appear as they complete, even when piped
}

}  // namespace ldb::bench

#endif  // LAMBDADB_BENCH_BENCH_COMMON_H_
