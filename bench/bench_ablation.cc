// Experiments P-NORM and P-PHYS (DESIGN.md), as google-benchmark sweeps:
//
//   P-NORM  — normalization on/off ahead of unnesting. Without it, type-J
//             existentials compile to outer-join + nest instead of a plain
//             join (more operators, more work); type-N queries cannot be
//             unnested at all (the paper requires canonical form).
//   P-PHYS  — hash vs nested-loop operators on the unnested plan: unnesting
//             alone "does not result in performance improvement" (Section 1);
//             the enabled hash join is what wins.
//
// Each benchmark reports items_processed = employees scanned, so per-item
// costs are comparable across scales.

#include <benchmark/benchmark.h>

#include "src/lambdadb.h"
#include "src/workload/company.h"
#include "src/workload/university.h"

namespace {

using namespace ldb;

const char* kTypeJQuery =
    "select distinct s.name from s in Students "
    "where exists t in Transcripts: t.sid = s.sid";

const char* kTypeAQuery =
    "select distinct struct(D: d.name, total: sum(select e.salary "
    "from e in Employees where e.dno = d.dno)) from d in Departments";

Database& UniversityDb(int64_t scale) {
  static std::map<int64_t, Database> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    workload::UniversityParams p;
    p.n_students = static_cast<int>(scale);
    p.n_courses = 20;
    it = cache.emplace(scale, workload::MakeUniversityDatabase(p)).first;
  }
  return it->second;
}

Database& CompanyDb(int64_t scale) {
  static std::map<int64_t, Database> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    workload::CompanyParams p;
    p.n_departments = static_cast<int>(std::max<int64_t>(4, scale / 40));
    p.n_employees = static_cast<int>(scale);
    it = cache.emplace(scale, workload::MakeCompanyDatabase(p)).first;
  }
  return it->second;
}

void BM_Norm_On_TypeJ(benchmark::State& state) {
  Database& db = UniversityDb(state.range(0));
  OptimizerOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(db, kTypeJQuery, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Norm_On_TypeJ)->Arg(200)->Arg(800)->Arg(3200);

void BM_Norm_Off_TypeJ(benchmark::State& state) {
  Database& db = UniversityDb(state.range(0));
  OptimizerOptions opts;
  opts.normalize = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(db, kTypeJQuery, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Norm_Off_TypeJ)->Arg(200)->Arg(800);  // 3200 would materialize a ~245M-row cross product

void BM_Phys_Hash_TypeA(benchmark::State& state) {
  Database& db = CompanyDb(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(db, kTypeAQuery, {}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Phys_Hash_TypeA)->Arg(500)->Arg(2000)->Arg(8000);

void BM_Phys_NL_TypeA(benchmark::State& state) {
  Database& db = CompanyDb(state.range(0));
  OptimizerOptions opts;
  opts.physical.use_hash_joins = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(db, kTypeAQuery, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Phys_NL_TypeA)->Arg(500)->Arg(2000);

void BM_Baseline_TypeA(benchmark::State& state) {
  Database& db = CompanyDb(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQLBaseline(db, kTypeAQuery));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Baseline_TypeA)->Arg(500)->Arg(2000);

// P-MAT: a navigation-correlated join. Without materialization the predicate
// e.manager.age = g.age is not hashable (it is a path, not a var-to-var
// equality); materializing e.manager into a join with Managers makes it one.
const char* kNavJoinQuery =
    "select distinct struct(e: e.name, m: g.name) "
    "from e in Employees, g in Managers where e.manager.age = g.age";

void BM_Mat_Off_NavJoin(benchmark::State& state) {
  Database& db = CompanyDb(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(db, kNavJoinQuery, {}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Mat_Off_NavJoin)->Arg(500)->Arg(2000)->Arg(8000);

void BM_Mat_On_NavJoin(benchmark::State& state) {
  Database& db = CompanyDb(state.range(0));
  OptimizerOptions opts;
  opts.materialize_paths = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(db, kNavJoinQuery, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Mat_On_NavJoin)->Arg(500)->Arg(2000)->Arg(8000);

// P-ORD: join-order permutation on a three-extent flat query written
// big-extent-first. Reordering starts from Departments/Managers and keeps
// intermediates small; the win is modest with hash joins (intermediate
// sizes, not probe counts, dominate).
const char* kOrderQuery =
    "select distinct struct(a: e.name, b: d.name, c: m.name) "
    "from e in Employees, d in Departments, m in Managers "
    "where e.dno = d.dno and e.manager = m";

void BM_Order_Off(benchmark::State& state) {
  Database& db = CompanyDb(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(db, kOrderQuery, {}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Order_Off)->Arg(2000)->Arg(8000);

void BM_Order_On(benchmark::State& state) {
  Database& db = CompanyDb(state.range(0));
  OptimizerOptions opts;
  opts.reorder_joins = true;
  opts.catalog = Catalog::FromDatabase(db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(db, kOrderQuery, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Order_On)->Arg(2000)->Arg(8000);

// P-IDX: access-path choice — a selective constant predicate over a large
// extent, with and without a hash index on the attribute.
void BM_Index_Off(benchmark::State& state) {
  Database& db = CompanyDb(state.range(0));
  const char* q = "select distinct e.name from e in Employees where e.dno = 3";
  OptimizerOptions opts;
  opts.physical.use_indexes = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(db, q, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Index_Off)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_Index_On(benchmark::State& state) {
  // A separate cache: these databases carry the index.
  static std::map<int64_t, Database> cache;
  auto it = cache.find(state.range(0));
  if (it == cache.end()) {
    workload::CompanyParams p;
    p.n_departments = static_cast<int>(std::max<int64_t>(4, state.range(0) / 40));
    p.n_employees = static_cast<int>(state.range(0));
    it = cache.emplace(state.range(0), workload::MakeCompanyDatabase(p)).first;
    it->second.BuildIndex("Employees", "dno");
  }
  const char* q = "select distinct e.name from e in Employees where e.dno = 3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOQL(it->second, q, {}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Index_On)->Arg(2000)->Arg(8000)->Arg(32000);

}  // namespace

BENCHMARK_MAIN();
