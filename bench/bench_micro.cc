// Micro-benchmarks of the optimizer stages themselves (google-benchmark):
// lexing/parsing, translation, normalization, unnesting, simplification, and
// full compilation. The paper claims the unnesting algorithm "takes time
// linear to the size of the query" (Section 8); BM_Unnest_ChainLength checks
// that compile time grows roughly linearly in the number of nested levels.

#include <benchmark/benchmark.h>

#include <string>

#include "src/lambdadb.h"
#include "src/workload/company.h"

namespace {

using namespace ldb;

const char* kQueryD =
    "select distinct struct(E: e.name, M: count(select distinct c "
    "from c in e.children "
    "where for all d in e.manager.children: c.age > d.age)) "
    "from e in Employees";

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(oql::Parse(kQueryD));
  }
}
BENCHMARK(BM_Parse);

void BM_Translate(benchmark::State& state) {
  oql::NodePtr ast = oql::Parse(kQueryD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oql::Translate(ast));
  }
}
BENCHMARK(BM_Translate);

void BM_Normalize(benchmark::State& state) {
  ExprPtr calculus = ParseOQL(kQueryD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Normalize(calculus));
  }
}
BENCHMARK(BM_Normalize);

void BM_Unnest(benchmark::State& state) {
  Schema schema = workload::CompanySchema();
  ExprPtr normalized = Normalize(ParseOQL(kQueryD));
  for (auto _ : state) {
    benchmark::DoNotOptimize(UnnestComp(normalized, schema));
  }
}
BENCHMARK(BM_Unnest);

void BM_FullCompile(benchmark::State& state) {
  Schema schema = workload::CompanySchema();
  Optimizer opt(schema);
  ExprPtr calculus = ParseOQL(kQueryD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.Compile(calculus));
  }
}
BENCHMARK(BM_FullCompile);

// Builds a query with `depth` levels of correlated aggregation:
//   count(select e2 ... where e2.dno = e.dno and count(...) >= 0)
std::string NestedQuery(int depth) {
  std::string inner = "0";
  for (int i = depth; i >= 1; --i) {
    std::string v = "e" + std::to_string(i);
    std::string outer_var = i == 1 ? std::string("e0") : "e" + std::to_string(i - 1);
    inner = "count(select " + v + " from " + v + " in Employees where " + v +
            ".dno = " + outer_var + ".dno and " + inner + " >= 0)";
  }
  return "select distinct e0.name from e0 in Employees where " + inner +
         " >= 0";
}

void BM_Unnest_ChainLength(benchmark::State& state) {
  Schema schema = workload::CompanySchema();
  ExprPtr normalized = Normalize(ParseOQL(NestedQuery(static_cast<int>(state.range(0)))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(UnnestComp(normalized, schema));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Unnest_ChainLength)->DenseRange(1, 8)->Complexity();

void BM_Simplify(benchmark::State& state) {
  Schema schema = workload::CompanySchema();
  AlgPtr plan = UnnestComp(
      Normalize(ParseOQL("select distinct e.dno, avg(e.salary) "
                         "from Employees e group by e.dno")),
      schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Simplify(plan, schema));
  }
}
BENCHMARK(BM_Simplify);

void BM_HashJoinExecution(benchmark::State& state) {
  workload::CompanyParams p;
  p.n_employees = static_cast<int>(state.range(0));
  p.n_departments = std::max<int>(4, static_cast<int>(state.range(0) / 40));
  Database db = workload::MakeCompanyDatabase(p);
  Optimizer opt(db.schema());
  CompiledQuery q = opt.Compile(ParseOQL(
      "select distinct struct(e: e.name, d: d.name) "
      "from e in Employees, d in Departments where e.dno = d.dno"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.Execute(q, db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoinExecution)->Arg(1000)->Arg(4000)->Arg(16000);

// Engine comparison: pipelined Volcano iterators vs the materializing
// executor. The existential query shows the pipeline's short-circuit: the
// root `some` stops pulling at the first witness, while the materializing
// engine computes every stream fully.
void BM_Engine_Pipelined_Exists(benchmark::State& state) {
  workload::CompanyParams p;
  p.n_employees = static_cast<int>(state.range(0));
  Database db = workload::MakeCompanyDatabase(p);
  Optimizer opt(db.schema());
  CompiledQuery q = opt.Compile(ParseOQL(
      "exists(select e from e in Employees, d in Departments "
      "where e.dno = d.dno)"));
  PhysPtr phys = PlanPhysical(q.simplified, db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecutePipelined(phys, db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Engine_Pipelined_Exists)->Arg(1000)->Arg(8000);

void BM_Engine_Materializing_Exists(benchmark::State& state) {
  workload::CompanyParams p;
  p.n_employees = static_cast<int>(state.range(0));
  Database db = workload::MakeCompanyDatabase(p);
  Optimizer opt(db.schema());
  CompiledQuery q = opt.Compile(ParseOQL(
      "exists(select e from e in Employees, d in Departments "
      "where e.dno = d.dno)"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecutePlan(q.simplified, db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Engine_Materializing_Exists)->Arg(1000)->Arg(8000);

void BM_Engine_Pipelined_GroupBy(benchmark::State& state) {
  workload::CompanyParams p;
  p.n_employees = static_cast<int>(state.range(0));
  Database db = workload::MakeCompanyDatabase(p);
  Optimizer opt(db.schema());
  CompiledQuery q = opt.Compile(ParseOQL(
      "select distinct e.dno, avg(e.salary) from Employees e group by e.dno"));
  PhysPtr phys = PlanPhysical(q.simplified, db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecutePipelined(phys, db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Engine_Pipelined_GroupBy)->Arg(1000)->Arg(8000);

void BM_Engine_Materializing_GroupBy(benchmark::State& state) {
  workload::CompanyParams p;
  p.n_employees = static_cast<int>(state.range(0));
  Database db = workload::MakeCompanyDatabase(p);
  Optimizer opt(db.schema());
  CompiledQuery q = opt.Compile(ParseOQL(
      "select distinct e.dno, avg(e.salary) from Employees e group by e.dno"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecutePlan(q.simplified, db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Engine_Materializing_GroupBy)->Arg(1000)->Arg(8000);

}  // namespace

BENCHMARK_MAIN();
