// OO7-style experiment (complementary workload; DESIGN.md row P-OO7): the
// classic OODB benchmark's query classes on the simplified design hierarchy,
// baseline vs unnested across module counts. Q5 ("base assemblies using a
// component with a more recent build date") is a type-J nesting over a
// nested set; the per-module traversal aggregates are type-A.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/workload/oo7.h"

namespace {

ldb::Database MakeDb(int modules) {
  ldb::workload::OO7Params p;
  p.n_modules = modules;
  p.assemblies_per_module = 20;
  p.components_per_assembly = 5;
  p.n_composite_parts = 40 * modules;
  p.parts_per_composite = 20;
  return ldb::workload::MakeOO7Database(p);
}

}  // namespace

int main() {
  using ldb::bench::PrintHeader;
  using ldb::bench::PrintRow;
  using ldb::bench::PrintRowHeader;
  using ldb::bench::RunStrategies;

  struct Q {
    const char* id;
    const char* oql;
  };
  const Q queries[] = {
      {"OO7-Q1 (exact lookup)",
       "select distinct p.x from p in AtomicParts where p.id = 42"},
      {"OO7-Q5 (newer components)",
       "select distinct b.id from b in BaseAssemblies "
       "where exists c in b.components: c.build_date > b.build_date"},
      {"OO7-Q5-forall (dual)",
       "select distinct b.id from b in BaseAssemblies "
       "where for all c in b.components: c.build_date <= b.build_date"},
      {"OO7-Q8 (doc join)",
       "select distinct struct(id: c.id, doc: c.documentation.title) "
       "from c in CompositeParts"},
      {"OO7-T (traversal count)",
       "select distinct struct(m: m.id, parts: count(select p "
       "from a in m.assemblies, c in a.components, p in c.parts)) "
       "from m in Modules"},
      {"OO7-reverse (uses per component)",
       "select distinct struct(id: c.id, uses: count(select b from b in "
       "BaseAssemblies where c in b.components)) from c in CompositeParts"},
  };

  for (const Q& q : queries) {
    PrintHeader(q.id);
    std::printf("OQL:\n  %s\n\n", q.oql);
    PrintRowHeader();
    for (int modules : {2, 8, 24}) {
      ldb::Database db = MakeDb(modules);
      PrintRow("modules " + std::to_string(modules), RunStrategies(db, q.oql));
    }
  }

  std::printf(
      "\nOO7 notes: Q1 is an access-path case (build an index on "
      "AtomicParts.id to see\nthe IndexScan path; this harness measures the "
      "scan form). Q5 and its dual are\nexistential/universal quantifications "
      "over nested sets; the reverse-use query\nis the correlated-membership "
      "pattern whose baseline is quadratic in components.\n");
  return 0;
}
