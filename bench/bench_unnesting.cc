// Experiments P-N, P-J, P-A, P-JA, CB (DESIGN.md): for every nesting class
// of Kim's taxonomy the paper's algorithm handles, measure the nested-loop
// baseline against the unnested plan across scale, and print a paper-style
// summary table. The expected *shape* (the paper makes no absolute claims):
// the baseline is O(outer x inner) while the unnested hash plan is ~linear,
// so the speedup grows roughly linearly with the inner extent size, and
// nested-loop-only unnested plans stay near the baseline (unnesting itself
// is an enabler, not a win — Section 1).

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/workload/company.h"
#include "src/workload/travel.h"
#include "src/workload/university.h"

namespace {

using namespace ldb;

struct Experiment {
  const char* id;
  const char* title;
  const char* oql;
};

// Type-N: nesting in the generator domain — unnested by normalization alone.
const Experiment kTypeN{
    "P-N", "type-N (nested generator; normalization only)",
    "select distinct h.price "
    "from h in (select h from c in Cities, h in c.hotels "
    "           where c.name = 'Arlington')"};

// Type-J: existential predicate over a subquery — normalization (N8).
const Experiment kTypeJ{
    "P-J", "type-J (existential / membership predicate)",
    "select distinct s.name from s in Students "
    "where exists t in Transcripts: t.sid = s.sid"};

// Type-A: correlated aggregate in the head (the Query B / Figure 8 family).
const Experiment kTypeA{
    "P-A", "type-A (correlated aggregate in the head)",
    "select distinct struct(D: d.name, total: sum(select e.salary "
    "from e in Employees where e.dno = d.dno)) from d in Departments"};

// Type-JA: correlated aggregate + quantifier in the predicate.
const Experiment kTypeJA{
    "P-JA", "type-JA (correlated aggregate in the predicate)",
    "select distinct e.name from e in Employees "
    "where e.salary < max(select m.salary from m in Managers "
    "where e.age > m.age)"};

// Query E: universal quantification (the Claussen et al class).
const Experiment kForAll{
    "P-JA/forall", "universal quantification over a subquery (Query E)",
    "select distinct s.name from s in Students "
    "where for all c in select c from c in Courses where c.title = 'DB': "
    "exists t in Transcripts: t.sid = s.sid and t.cno = c.cno"};

// Deep scopes: three generators joined pairwise with a navigation- and
// comparison-heavy predicate touching every range variable. There is no
// group table here, so per-row cost is almost entirely expression
// evaluation over the full scope — the configuration slot compilation
// targets: the Env engine rebuilds a string-keyed scope per joined row and
// resolves every variable reference by string comparison, while the slot
// engine does one vector load per reference.
const Experiment kDeep{
    "P-DEEP", "deep scopes (3-generator join, navigation-heavy predicate)",
    "select distinct struct(E: e.name, M: m.name, D: d.name) "
    "from e in Employees, d in Departments, m in Managers "
    "where e.dno = d.dno and m.name = e.manager.name "
    "and e.age < m.age and e.salary < m.salary and d.budget > e.salary"};

// Pure per-row expression cost: a scan-filter-aggregate with no joins, no
// group table, and no result materialization. Every nanosecond is variable
// binding + navigation + arithmetic, which is exactly what slot compilation
// replaces — this isolates the engine difference the join-bearing
// experiments dilute with shared hash-table work.
const Experiment kScan{
    "P-SCAN", "scan-filter-aggregate (pure per-row expression cost)",
    "sum(select e.salary + e.age * 100 from e in Employees "
    "where e.age > 21 and e.age < 65 and e.salary > 35000.0)"};

// The count-bug query: empty groups must survive with count 0.
const Experiment kCountBug{
    "CB", "count-bug pattern (WHERE count(subquery) = 0)",
    "select distinct d.name from d in Departments "
    "where count(select e from e in Employees where e.dno = d.dno) = 0"};

Database MakeCompany(int scale) {
  workload::CompanyParams p;
  p.n_departments = std::max(4, scale / 40);
  p.n_employees = scale;
  p.n_managers = std::max(2, scale / 100);
  return workload::MakeCompanyDatabase(p);
}

Database MakeUniversity(int scale) {
  workload::UniversityParams p;
  p.n_students = scale;
  p.n_courses = 24;  // fixed: the quantifier cost scales with students
  return workload::MakeUniversityDatabase(p);
}

Database MakeTravel(int scale) {
  workload::TravelParams p;
  p.n_cities = std::max(2, scale / 10);
  p.hotels_per_city = 10;
  return workload::MakeTravelDatabase(p);
}

template <typename MakeDb>
void RunExperiment(const Experiment& exp, MakeDb make_db,
                   std::initializer_list<int> scales) {
  bench::PrintHeader((std::string(exp.id) + ": " + exp.title).c_str());
  std::printf("OQL:\n  %s\n\n", exp.oql);
  bench::PrintRowHeader();
  for (int scale : scales) {
    Database db = make_db(scale);
    bench::StrategyTimes t = bench::RunStrategies(db, exp.oql);
    bench::PrintRow("scale " + std::to_string(scale), t);
    double verify_ms = -1;
    if (bench::JsonReporter::Get().verify()) {
      verify_ms = bench::VerifyMs(db, exp.oql);
      std::printf("%-28s %12.3f ms\n", "  verify", verify_ms);
    }
    auto record = [&](const char* engine, double ms) {
      bench::JsonRecord r;
      r.experiment = exp.id;
      r.query = exp.oql;
      r.engine = engine;
      r.scale = scale;
      r.rows = t.rows;
      r.ms = ms;
      r.agree = t.results_agree;
      r.verify_ms = verify_ms;
      bench::JsonReporter::Get().Add(std::move(r));
    };
    record("baseline", t.baseline_ms);
    record("unnested-nl", t.unnested_nl_ms);
    record("unnested-hash", t.unnested_hash_ms);
  }
}

// The executor-engine comparison the strategy table cannot show: the same
// unnested hash plan run through the legacy string-Env pipeline vs the
// slot-frame engine, and the slot engine across thread counts. Thread
// scaling is only meaningful up to the usable-CPU count recorded in the
// JSON report (containers often pin benchmarks to one core).
template <typename MakeDb>
void RunEngineExperiment(const Experiment& exp, MakeDb make_db,
                         std::initializer_list<int> scales) {
  bench::PrintHeader(
      (std::string(exp.id) + " engines: " + exp.title).c_str());
  bench::PrintEngineRowHeader();
  for (int scale : scales) {
    Database db = make_db(scale);
    bench::EngineTimes t = bench::RunEngines(db, exp.oql);
    bench::PrintEngineRow("scale " + std::to_string(scale), t);
    double verify_ms = -1;
    if (bench::JsonReporter::Get().verify()) {
      verify_ms = bench::VerifyMs(db, exp.oql);
      std::printf("%-28s %12.3f ms\n", "  verify", verify_ms);
    }
    auto record = [&](const char* engine, int threads, double ms,
                      bool with_profile = false) {
      bench::JsonRecord r;
      r.experiment = exp.id;
      r.query = exp.oql;
      r.engine = engine;
      r.scale = scale;
      r.threads = threads;
      r.rows = t.rows;
      r.ms = ms;
      r.agree = t.agree;
      r.verify_ms = verify_ms;
      if (with_profile) {
        r.profile = t.profile_json;
        r.compile_trace = t.compile_trace_json;
      }
      bench::JsonReporter::Get().Add(std::move(r));
    };
    record("env-pipeline", 1, t.env_ms);
    record("slot", 1, t.slot_ms, /*with_profile=*/true);
    for (const auto& [n, ms] : t.parallel_ms) record("slot-parallel", n, ms);
  }
}

// Query-service throughput: N client threads hammer one QueryService with a
// fixed statement mix (three unnesting workhorses plus one parameterized
// lookup rotated through its bindings). After the first round every
// execution should be a plan-cache hit, so the numbers measure the serving
// path — admission, cache lookup, execution — not compilation.
void RunServiceExperiment(int n_clients, bool quick) {
  bench::PrintHeader(("SERVICE: query service, " + std::to_string(n_clients) +
                      " concurrent clients")
                         .c_str());
  const int scale = quick ? 2000 : 8000;
  const int iters = quick ? 25 : 100;  // executions per client
  Database db = MakeCompany(scale);

  ServiceOptions opts;
  opts.max_concurrent = n_clients;  // measure execution, not queueing
  QueryService svc(db, opts);
  const std::vector<std::string> mix = {
      kTypeA.oql, kTypeJA.oql, kCountBug.oql,
      "select distinct e.name from e in Employees where e.dno = $1"};

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(n_clients));
  double total_ms = bench::TimeMs([&] {
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(n_clients));
    for (int c = 0; c < n_clients; ++c) {
      clients.emplace_back([&, c] {
        auto session = svc.OpenSession();
        for (int i = 0; i < iters; ++i) {
          const std::string& oql = mix[(c + i) % mix.size()];
          session->Bind("1", Value::Int((c + i) % 4));
          latencies[c].push_back(
              bench::TimeMs([&] { svc.Execute(*session, oql); }));
        }
      });
    }
    for (std::thread& t : clients) t.join();
  });

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  auto pct = [&](double p) {
    return all[static_cast<size_t>(p * (all.size() - 1))];
  };
  const double qps = all.size() / (total_ms / 1000.0);
  PlanCacheStats cs = svc.cache_stats();
  const double hit_rate =
      cs.hits + cs.misses > 0
          ? static_cast<double>(cs.hits) / (cs.hits + cs.misses)
          : 0.0;

  std::printf(
      "scale %d | %zu queries in %.0f ms | %.1f q/s | p50 %.2f ms | "
      "p99 %.2f ms | cache hit rate %.3f\n",
      scale, all.size(), total_ms, qps, pct(0.50), pct(0.99), hit_rate);

  bench::JsonRecord r;
  r.experiment = "SERVICE";
  r.query = "mixed (type-A, type-JA, count-bug, parameterized lookup)";
  r.engine = "service";
  r.scale = scale;
  r.threads = n_clients;
  r.rows = static_cast<long>(all.size());
  r.ms = total_ms;
  r.qps = qps;
  r.p50_ms = pct(0.50);
  r.p99_ms = pct(0.99);
  r.cache_hit_rate = hit_rate;
  bench::JsonReporter::Get().Add(std::move(r));

  // --metrics: embed the registry snapshot in the JSON report and write the
  // Prometheus text + a Perfetto trace of one profiled parallel execution as
  // standalone artifacts (CI uploads and validates them).
  if (bench::JsonReporter::Get().metrics()) {
    auto session = svc.OpenSession();
    // Force the morsel pipeline to engage (driver extent >> morsel size) so
    // the parallel counters (ldb_morsels_dispatched_total, worker busy time)
    // land in the snapshot even at the quick scale. kTypeA's driver is the
    // small Departments extent, hence the tiny morsel; kScan drives off
    // Employees and covers the spine-reduce parallel mode.
    session->options().n_threads = 2;
    session->options().morsel_size = 16;
    QueryProfiler prof;
    svc.Execute(*session, kTypeA.oql, nullptr, &prof);
    svc.Execute(*session, kScan.oql);

    // Live-introspection probe: run one query on a worker thread and
    // snapshot ActiveQueries() from here while it is in flight. Polling is
    // racy by nature, so keep whatever snapshot was captured — CI checks
    // the field's shape, tests pin the semantics.
    std::vector<obs::ActiveQueryInfo> seen;
    {
      std::thread worker([&] {
        auto s2 = svc.OpenSession();
        svc.Execute(*s2, kTypeJA.oql);
      });
      for (int spin = 0; spin < 200000 && seen.empty(); ++spin) {
        seen = svc.ActiveQueries();
        if (seen.empty()) std::this_thread::yield();
      }
      worker.join();
    }

    obs::MetricsSnapshot snap = svc.metrics().Snapshot();
    std::string metrics_json = snap.ToJson();
    {
      // Splice the probe into the snapshot document:
      // {"samples": [...], "active_queries": [...]}.
      std::ostringstream aq;
      aq << ", \"active_queries\": [";
      for (size_t i = 0; i < seen.size(); ++i) {
        const obs::ActiveQueryInfo& q = seen[i];
        if (i > 0) aq << ", ";
        aq << "{\"query_id\": " << q.query_id
           << ", \"session\": " << q.session << ", \"phase\": \"" << q.phase
           << "\", \"elapsed_ms\": " << q.elapsed_ms
           << ", \"rows\": " << q.rows
           << ", \"mem_in_use_bytes\": " << q.mem_in_use_bytes
           << ", \"mem_peak_bytes\": " << q.mem_peak_bytes
           << ", \"remote\": \"" << q.remote << "\"}";
      }
      aq << "]";
      metrics_json.insert(metrics_json.rfind('}'), aq.str());
    }
    bench::JsonReporter::Get().SetMetricsJson(std::move(metrics_json));
    {
      std::ofstream prom("bench_metrics.prom");
      prom << snap.ToPrometheusText();
    }
    {
      std::ofstream trace("bench_trace.json");
      trace << obs::TraceEventsJson(prof);
    }
    std::printf("metrics: %zu series -> bench_metrics.prom; "
                "trace (%zu operators, %zu morsels) -> bench_trace.json\n",
                snap.samples.size(), prof.Operators().size(),
                prof.morsels.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::JsonReporter::Get().ParseArgs(argc, argv)) return 1;
  // --quick: smallest scales only — CI uses this to validate the report
  // schema (incl. the embedded profile blocks), not to measure.
  const bool quick = bench::JsonReporter::Get().quick();

  if (quick) {
    RunExperiment(kTypeN, MakeTravel, {100});
    RunExperiment(kTypeJ, MakeUniversity, {200});
    RunExperiment(kTypeA, MakeCompany, {500});
    RunExperiment(kTypeJA, MakeCompany, {500});
    RunExperiment(kForAll, MakeUniversity, {50});
    RunExperiment(kCountBug, MakeCompany, {500});
  } else {
    RunExperiment(kTypeN, MakeTravel, {100, 400, 1600});
    RunExperiment(kTypeJ, MakeUniversity, {200, 800, 2400});
    RunExperiment(kTypeA, MakeCompany, {500, 2000, 8000});
    RunExperiment(kTypeJA, MakeCompany, {500, 2000, 8000});
    RunExperiment(kForAll, MakeUniversity, {50, 150, 450});
    RunExperiment(kCountBug, MakeCompany, {500, 2000, 8000});
  }

  std::printf("\nusable CPUs: %d\n", bench::UsableCpus());
  if (quick) {
    RunEngineExperiment(kTypeA, MakeCompany, {2000});
    RunEngineExperiment(kTypeJA, MakeCompany, {2000});
    RunEngineExperiment(kCountBug, MakeCompany, {2000});
    RunEngineExperiment(kTypeJ, MakeUniversity, {2400});
    RunEngineExperiment(kDeep, MakeCompany, {8000});
    RunEngineExperiment(kScan, MakeCompany, {32000});
  } else {
    RunEngineExperiment(kTypeA, MakeCompany, {2000, 8000, 32000});
    RunEngineExperiment(kTypeJA, MakeCompany, {2000, 8000, 32000});
    RunEngineExperiment(kCountBug, MakeCompany, {2000, 8000, 32000});
    RunEngineExperiment(kTypeJ, MakeUniversity, {2400, 9600});
    RunEngineExperiment(kDeep, MakeCompany, {8000, 32000, 128000});
    RunEngineExperiment(kScan, MakeCompany, {32000, 128000, 512000});
  }

  // Concurrent-service throughput (override the client count with
  // `--clients N`; defaults to 4, capped at the usable-CPU count in quick
  // mode so CI numbers stay honest).
  int clients = bench::JsonReporter::Get().clients();
  if (clients <= 0) clients = quick ? std::min(4, bench::UsableCpus()) : 4;
  RunServiceExperiment(clients, quick);

  std::printf(
      "\nReading the table: 'baseline' is the naive nested-loop evaluation an\n"
      "OODB uses without unnesting; 'unnested-NL' is the unnested plan with\n"
      "nested-loop operators (unnesting alone, paper Section 1: roughly\n"
      "cost-neutral); 'unnested-hash' adds the join-algorithm choice that\n"
      "unnesting ENABLES — this is where the speedup comes from, and it\n"
      "grows with scale because the baseline is quadratic.\n"
      "The engine tables compare the two pipelined executors on the same\n"
      "hash plan: 'env' interprets string-keyed environments, 'slot' runs\n"
      "the slot-compiled frame engine, 'par xN' adds morsel parallelism\n"
      "(wall-clock gains require > 1 usable CPU; results stay identical).\n");
  if (!bench::JsonReporter::Get().Write("bench_unnesting")) return 1;
  return 0;
}
