#include "src/oql/lexer.h"

#include <cctype>

#include "src/runtime/error.h"

namespace ldb::oql {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::vector<Token> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokKind k, std::string text, size_t off) {
    Token t;
    t.kind = k;
    t.lower = Lower(text);
    t.text = std::move(text);
    t.offset = off;
    out.push_back(std::move(t));
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // line comment
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      push(TokKind::kIdent, input.substr(start, i - start), start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      bool is_real = false;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          is_real = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
        }
      }
      std::string text = input.substr(start, i - start);
      Token t;
      t.kind = is_real ? TokKind::kReal : TokKind::kInt;
      t.text = text;
      t.lower = text;
      t.offset = start;
      if (is_real) {
        t.real_value = std::stod(text);
      } else {
        t.int_value = std::stoll(text);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string body;
      while (i < n && input[i] != quote) {
        if (input[i] == '\\' && i + 1 < n) ++i;  // simple escapes
        body.push_back(input[i]);
        ++i;
      }
      if (i >= n) {
        throw ParseError("unterminated string literal at offset " +
                         std::to_string(start));
      }
      ++i;  // closing quote
      Token t;
      t.kind = TokKind::kString;
      t.text = body;
      t.lower = Lower(body);
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '$') {
      ++i;
      size_t name_start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      if (i == name_start) {
        throw ParseError("expected a parameter name after '$' at offset " +
                         std::to_string(start));
      }
      push(TokKind::kParam, input.substr(name_start, i - name_start), start);
      continue;
    }
    // multi-char symbols
    auto two = [&](const char* s) {
      return i + 1 < n && input[i] == s[0] && input[i + 1] == s[1];
    };
    if (two("!=") || two("<>") || two("<=") || two(">=")) {
      std::string sym = input.substr(i, 2);
      if (sym == "<>") sym = "!=";
      push(TokKind::kSymbol, sym, start);
      i += 2;
      continue;
    }
    static const std::string kSingles = "().,:;*+-/=<>{}";
    if (kSingles.find(c) != std::string::npos) {
      push(TokKind::kSymbol, std::string(1, c), start);
      ++i;
      continue;
    }
    throw ParseError(std::string("unexpected character '") + c +
                     "' at offset " + std::to_string(start));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace ldb::oql
