// Abstract syntax for the OQL subset of ODMG OQL the paper's examples use
// (select-from-where with distinct and group-by, struct construction, path
// expressions, universal/existential quantifiers, membership, aggregates).
//
// The OQL AST is deliberately separate from the calculus AST: the paper's
// pipeline is OQL --(translation [13])--> monoid calculus --> algebra, and
// src/oql/translate.cc implements the first arrow.

#ifndef LAMBDADB_OQL_AST_H_
#define LAMBDADB_OQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/value.h"

namespace ldb::oql {

struct Node;
using NodePtr = std::shared_ptr<const Node>;

enum class NodeKind {
  kSelect,   ///< select [distinct] proj from ... [where ...] [group by ...]
  kIdent,    ///< variable / extent name
  kLiteral,  ///< constant
  kProj,     ///< e.attr
  kBin,      ///< binary operator (arith / comparison / and / or)
  kUn,       ///< not / unary minus
  kIn,       ///< e in collection
  kExists,   ///< exists v in D: pred
  kForAll,   ///< for all v in D: pred
  kAgg,      ///< count/sum/avg/max/min ( arg ), or exists( arg )
  kStruct,   ///< struct(A: e, ...)
  kParam,    ///< $1 / $name placeholder bound at execute time
};

enum class OBin { kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr, kAdd, kSub, kMul, kDiv, kMod };
enum class OUn { kNot, kNeg };
enum class OAgg { kCount, kSum, kAvg, kMax, kMin, kExists };

/// One `var in domain` binding of a from-clause.
struct FromItem {
  std::string var;
  NodePtr domain;
};

/// One projection item `expr [as name]`.
struct ProjItem {
  NodePtr expr;
  std::string as;  // empty if unnamed
};

struct Node {
  NodeKind kind;

  // kSelect
  bool distinct = false;
  std::vector<ProjItem> projection;  // >1 items build an implicit struct
  std::vector<FromItem> froms;
  NodePtr where;                     // may be null
  std::vector<NodePtr> group_by;     // paths
  /// order-by items: (key expression, descending?). Ordering produces a
  /// LIST result and is applied by the facade after execution — ordered
  /// collections are outside the unnesting algorithm (paper Section 8).
  std::vector<std::pair<NodePtr, bool>> order_by;

  // kIdent / kProj attribute / kStruct field names in `fields`
  std::string name;
  Value literal;                                    // kLiteral
  OBin bin{};                                       // kBin
  OUn un{};                                         // kUn
  OAgg agg{};                                       // kAgg
  NodePtr a, b;                                     // children
  std::string var;                                  // kExists/kForAll binder
  std::vector<std::pair<std::string, NodePtr>> fields;  // kStruct

  static std::shared_ptr<Node> New(NodeKind k) {
    auto n = std::make_shared<Node>();
    n->kind = k;
    return n;
  }
  static NodePtr Ident(std::string n) {
    auto node = New(NodeKind::kIdent);
    node->name = std::move(n);
    return node;
  }
  static NodePtr Param(std::string n) {
    auto node = New(NodeKind::kParam);
    node->name = std::move(n);
    return node;
  }
  static NodePtr Lit(Value v) {
    auto node = New(NodeKind::kLiteral);
    node->literal = std::move(v);
    return node;
  }
  static NodePtr Proj(NodePtr base, std::string attr) {
    auto node = New(NodeKind::kProj);
    node->a = std::move(base);
    node->name = std::move(attr);
    return node;
  }
  static NodePtr Bin(OBin op, NodePtr l, NodePtr r) {
    auto node = New(NodeKind::kBin);
    node->bin = op;
    node->a = std::move(l);
    node->b = std::move(r);
    return node;
  }
  static NodePtr Un(OUn op, NodePtr e) {
    auto node = New(NodeKind::kUn);
    node->un = op;
    node->a = std::move(e);
    return node;
  }
  static NodePtr In(NodePtr elem, NodePtr coll) {
    auto node = New(NodeKind::kIn);
    node->a = std::move(elem);
    node->b = std::move(coll);
    return node;
  }
  static NodePtr Quantifier(NodeKind kind, std::string var, NodePtr domain,
                            NodePtr pred) {
    auto node = New(kind);
    node->var = std::move(var);
    node->a = std::move(domain);
    node->b = std::move(pred);
    return node;
  }
  static NodePtr Agg(OAgg op, NodePtr arg) {
    auto node = New(NodeKind::kAgg);
    node->agg = op;
    node->a = std::move(arg);
    return node;
  }
  static NodePtr Struct(std::vector<std::pair<std::string, NodePtr>> fields) {
    auto node = New(NodeKind::kStruct);
    node->fields = std::move(fields);
    return node;
  }
};

}  // namespace ldb::oql

#endif  // LAMBDADB_OQL_AST_H_
