// Recursive-descent parser for the OQL subset (see ast.h). Grammar sketch:
//
//   query      := select | expr
//   select     := SELECT [DISTINCT] proj_list FROM from_item ("," from_item)*
//                 [WHERE expr] [GROUP BY path ("," path)*]
//   proj_list  := proj_item ("," proj_item)*           (implicit struct if >1)
//   proj_item  := expr [AS ident]
//   from_item  := ident IN expr | expr [AS] ident      ("Employees e")
//   expr       := or-precedence expression with NOT, comparisons (= != <>
//                 < <= > >=), IN, arithmetic, unary minus
//   quantifier := EXISTS ident IN expr ":" expr
//               | FOR ALL ident IN expr ":" expr
//   primary    := literal | ident | "(" query ")" | struct "(" a ":" e, .. ")"
//               | (count|sum|avg|max|min|exists) "(" query ")"
//               | primary "." ident
//
// Quantifier bodies extend maximally to the right, as in the paper's
// examples ("for all d in e.manager.children: c.age > d.age").

#ifndef LAMBDADB_OQL_PARSER_H_
#define LAMBDADB_OQL_PARSER_H_

#include <string>

#include "src/oql/ast.h"

namespace ldb::oql {

/// Parses one OQL query (a select or a bare expression). Throws ParseError.
NodePtr Parse(const std::string& input);

}  // namespace ldb::oql

#endif  // LAMBDADB_OQL_PARSER_H_
