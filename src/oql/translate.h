// Translation of OQL into the monoid comprehension calculus, following the
// scheme of Fegaras & Maier (the paper's reference [13]) used throughout the
// SIGMOD'98 examples:
//
//   select distinct e from ...         ->  set{ e | ... }
//   select e from ...                  ->  bag{ e | ... }
//   exists v in D: p                   ->  some{ p | v <- D }
//   for all v in D: p                  ->  all{ p | v <- D }
//   x in D                             ->  some{ w = x | w <- D }
//   count(q)                           ->  sum{ 1 | quals(q) }
//   sum/avg/max/min(q)                 ->  sum/avg/max/min{ head(q) | quals(q) }
//   exists(q)                          ->  some{ true | quals(q) }
//   select g, agg(f) ... group by g    ->  set{ <g=g, agg=agg{f[u/v] |
//                                            u <- D, where[u/v], g[u/v]=g }>
//                                            | v <- D, where }
//
// The group-by translation is the paper's Section 5 example generalized to
// several aggregates and group keys, restricted to a single from-binding.

#ifndef LAMBDADB_OQL_TRANSLATE_H_
#define LAMBDADB_OQL_TRANSLATE_H_

#include "src/core/expr.h"
#include "src/oql/ast.h"

namespace ldb::oql {

/// Translates an OQL AST into a calculus term. Pure syntax-directed; name
/// resolution (extents vs variables) happens later in the type checker and
/// unnester. Throws UnsupportedError for OQL outside the fragment,
/// including a top-level `order by` (use TranslateWithOrdering).
ExprPtr Translate(const NodePtr& query);

/// A translated query plus its ordering request. `order by` produces a LIST
/// result; since ordered collections are outside the unnesting algorithm
/// (paper Section 8), the sort runs in the facade AFTER execution: the head
/// is wrapped as <key$=<k1,...>, val$=head>, the wrapped comprehension runs
/// through the normal pipeline, and the caller sorts by key$ (per-key
/// descending flags) and projects val$ into a list.
struct OrderedQuery {
  ExprPtr comp;                 ///< the (possibly wrapped) comprehension
  bool ordered = false;
  std::vector<bool> descending; ///< one flag per order-by key
};

/// Like Translate, but compiles a top-level `order by` into the wrapped
/// form described above.
OrderedQuery TranslateWithOrdering(const NodePtr& query);

}  // namespace ldb::oql

#endif  // LAMBDADB_OQL_TRANSLATE_H_
