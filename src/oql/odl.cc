#include "src/oql/odl.h"

#include <set>
#include <vector>

#include "src/oql/lexer.h"
#include "src/runtime/error.h"

namespace ldb::oql {

namespace {

class OdlParser {
 public:
  explicit OdlParser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Schema Parse() {
    std::vector<ClassDecl> decls;
    while (Peek().kind != TokKind::kEnd) {
      decls.push_back(ClassDecl());
      ParseClass(&decls.back());
    }
    // Validate forward references: every class-typed member must name a
    // declared class.
    std::set<std::string> names;
    for (const ClassDecl& d : decls) names.insert(d.name);
    for (const ClassDecl& d : decls) {
      for (const auto& [attr, type] : d.attributes) {
        ValidateType(type, names, d.name + "." + attr);
      }
    }
    Schema schema;
    for (ClassDecl& d : decls) schema.AddClass(std::move(d));
    return schema;
  }

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;

  const Token& Peek() const { return toks_[pos_]; }
  const Token& Advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  [[noreturn]] void Fail(const std::string& msg) const {
    throw ParseError("ODL: " + msg + " near offset " +
                     std::to_string(Peek().offset));
  }

  bool AcceptKeyword(const char* kw) {
    if (Peek().kind == TokKind::kIdent && Peek().lower == kw) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) Fail(std::string("expected '") + kw + "'");
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == s) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) Fail(std::string("expected '") + s + "'");
  }
  std::string ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) Fail("expected identifier");
    return Advance().text;
  }

  void ParseClass(ClassDecl* decl) {
    ExpectKeyword("class");
    decl->name = ExpectIdent();
    if (AcceptSymbol("(")) {
      ExpectKeyword("extent");
      decl->extent = ExpectIdent();
      ExpectSymbol(")");
    }
    ExpectSymbol("{");
    while (!AcceptSymbol("}")) {
      if (!AcceptKeyword("attribute") && !AcceptKeyword("relationship")) {
        Fail("expected 'attribute' or 'relationship'");
      }
      TypePtr type = ParseType();
      std::string name = ExpectIdent();
      ExpectSymbol(";");
      decl->attributes.emplace_back(std::move(name), std::move(type));
    }
    AcceptSymbol(";");  // optional trailing semicolon
  }

  TypePtr ParseType() {
    std::string name = ExpectIdent();
    std::string lower;
    for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
    if (lower == "boolean" || lower == "bool") return Type::Bool();
    if (lower == "short" || lower == "int" || lower == "integer" ||
        lower == "long") {
      return Type::Int();
    }
    if (lower == "float" || lower == "double" || lower == "real") {
      return Type::Real();
    }
    if (lower == "string") return Type::Str();
    if (lower == "set" || lower == "bag" || lower == "list") {
      ExpectSymbol("<");
      TypePtr elem = ParseType();
      ExpectSymbol(">");
      if (lower == "set") return Type::Set(elem);
      if (lower == "bag") return Type::Bag(elem);
      return Type::List(elem);
    }
    return Type::Class(name);  // resolved after the whole schema is read
  }

  static void ValidateType(const TypePtr& t, const std::set<std::string>& classes,
                           const std::string& where) {
    if (t->kind() == Type::Kind::kClass) {
      if (classes.count(t->class_name()) == 0) {
        throw TypeError("ODL: unknown class '" + t->class_name() + "' in " +
                        where);
      }
      return;
    }
    if (t->is_collection()) ValidateType(t->elem(), classes, where);
  }
};

}  // namespace

Schema ParseODL(const std::string& input) {
  OdlParser parser(Lex(input));
  return parser.Parse();
}

}  // namespace ldb::oql
