#include "src/oql/parser.h"

#include "src/oql/lexer.h"
#include "src/runtime/error.h"

namespace ldb::oql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  NodePtr ParseQuery() {
    NodePtr q = Query();
    Expect(TokKind::kEnd, "end of input");
    return q;
  }

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  [[noreturn]] void Fail(const std::string& msg) const {
    throw ParseError(msg + " near offset " + std::to_string(Peek().offset) +
                     (Peek().kind == TokKind::kEnd ? " (end of input)"
                                                   : " ('" + Peek().text + "')"));
  }

  bool IsKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokKind::kIdent && t.lower == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  void ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) Fail(std::string("expected '") + kw + "'");
  }
  bool IsSymbol(const char* s, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokKind::kSymbol && t.text == s;
  }
  bool AcceptSymbol(const char* s) {
    if (!IsSymbol(s)) return false;
    Advance();
    return true;
  }
  void ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) Fail(std::string("expected '") + s + "'");
  }
  void Expect(TokKind k, const char* what) {
    if (Peek().kind != k) Fail(std::string("expected ") + what);
  }
  std::string ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) Fail("expected identifier");
    return Advance().text;
  }

  static bool IsReserved(const std::string& lower) {
    static const char* kReserved[] = {
        "select", "distinct", "from", "where", "group",  "by",   "in",
        "as",     "exists",   "for",  "all",   "and",    "or",   "not",
        "struct", "true",     "false", "null",  "nil",   "count", "sum",
        "avg",    "max",      "min",   "mod",   "undefined",
        "order",  "asc",      "desc"};
    for (const char* kw : kReserved) {
      if (lower == kw) return true;
    }
    return false;
  }

  NodePtr Query() {
    if (IsKeyword("select")) return Select();
    return OrExpr();
  }

  NodePtr Select() {
    ExpectKeyword("select");
    auto node = Node::New(NodeKind::kSelect);
    node->distinct = AcceptKeyword("distinct");
    // projection list (stops at FROM)
    node->projection.push_back(ProjItemRule());
    while (AcceptSymbol(",")) node->projection.push_back(ProjItemRule());
    ExpectKeyword("from");
    node->froms.push_back(FromItemRule());
    while (AcceptSymbol(",")) node->froms.push_back(FromItemRule());
    if (AcceptKeyword("where")) node->where = OrExpr();
    if (AcceptKeyword("group")) {
      ExpectKeyword("by");
      node->group_by.push_back(OrExpr());
      while (AcceptSymbol(",")) node->group_by.push_back(OrExpr());
    }
    if (AcceptKeyword("order")) {
      ExpectKeyword("by");
      do {
        NodePtr key = OrExpr();
        bool desc = false;
        if (AcceptKeyword("desc")) {
          desc = true;
        } else {
          AcceptKeyword("asc");
        }
        node->order_by.emplace_back(std::move(key), desc);
      } while (AcceptSymbol(","));
    }
    return node;
  }

  ProjItem ProjItemRule() {
    ProjItem item;
    // `A : expr` named projection (OQL struct-less naming)
    if (Peek().kind == TokKind::kIdent && IsSymbol(":", 1) &&
        !IsReserved(Peek().lower)) {
      item.as = Advance().text;
      Advance();  // ':'
      item.expr = OrExpr();
      return item;
    }
    item.expr = OrExpr();
    if (AcceptKeyword("as")) item.as = ExpectIdent();
    return item;
  }

  FromItem FromItemRule() {
    FromItem item;
    // `ident in expr`
    if (Peek().kind == TokKind::kIdent && IsKeyword("in", 1) &&
        !IsReserved(Peek().lower)) {
      item.var = Advance().text;
      Advance();  // 'in'
      item.domain = IsKeyword("select") ? Select() : OrExpr();
      return item;
    }
    // `expr [as] ident`  ("Employees e" / "Employees as e")
    item.domain = OrExpr();
    AcceptKeyword("as");
    if (Peek().kind == TokKind::kIdent && !IsReserved(Peek().lower)) {
      item.var = Advance().text;
      return item;
    }
    Fail("expected range variable in from-clause");
  }

  NodePtr OrExpr() {
    NodePtr l = AndExpr();
    while (AcceptKeyword("or")) l = Node::Bin(OBin::kOr, l, AndExpr());
    return l;
  }

  NodePtr AndExpr() {
    NodePtr l = NotExpr();
    while (AcceptKeyword("and")) l = Node::Bin(OBin::kAnd, l, NotExpr());
    return l;
  }

  NodePtr NotExpr() {
    if (AcceptKeyword("not")) return Node::Un(OUn::kNot, NotExpr());
    // Quantifiers bind like NOT and their body extends maximally right.
    if (IsKeyword("exists") && Peek(1).kind == TokKind::kIdent &&
        IsKeyword("in", 2)) {
      Advance();
      std::string var = ExpectIdent();
      ExpectKeyword("in");
      NodePtr domain = IsKeyword("select") ? Select() : Comparison();
      ExpectSymbol(":");
      NodePtr body = OrExpr();
      return Node::Quantifier(NodeKind::kExists, var, domain, body);
    }
    if (IsKeyword("for") && IsKeyword("all", 1)) {
      Advance();
      Advance();
      std::string var = ExpectIdent();
      ExpectKeyword("in");
      NodePtr domain = IsKeyword("select") ? Select() : Comparison();
      ExpectSymbol(":");
      NodePtr body = OrExpr();
      return Node::Quantifier(NodeKind::kForAll, var, domain, body);
    }
    return Comparison();
  }

  NodePtr Comparison() {
    NodePtr l = Additive();
    if (Peek().kind == TokKind::kSymbol) {
      const std::string& s = Peek().text;
      OBin op;
      if (s == "=") {
        op = OBin::kEq;
      } else if (s == "!=") {
        op = OBin::kNe;
      } else if (s == "<") {
        op = OBin::kLt;
      } else if (s == "<=") {
        op = OBin::kLe;
      } else if (s == ">") {
        op = OBin::kGt;
      } else if (s == ">=") {
        op = OBin::kGe;
      } else {
        return MaybeIn(l);
      }
      Advance();
      return Node::Bin(op, l, Additive());
    }
    return MaybeIn(l);
  }

  NodePtr MaybeIn(NodePtr l) {
    if (AcceptKeyword("in")) return Node::In(l, Additive());
    return l;
  }

  NodePtr Additive() {
    NodePtr l = Multiplicative();
    while (true) {
      if (AcceptSymbol("+")) {
        l = Node::Bin(OBin::kAdd, l, Multiplicative());
      } else if (AcceptSymbol("-")) {
        l = Node::Bin(OBin::kSub, l, Multiplicative());
      } else {
        return l;
      }
    }
  }

  NodePtr Multiplicative() {
    NodePtr l = Unary();
    while (true) {
      if (AcceptSymbol("*")) {
        l = Node::Bin(OBin::kMul, l, Unary());
      } else if (AcceptSymbol("/")) {
        l = Node::Bin(OBin::kDiv, l, Unary());
      } else if (AcceptKeyword("mod")) {
        l = Node::Bin(OBin::kMod, l, Unary());
      } else {
        return l;
      }
    }
  }

  NodePtr Unary() {
    if (AcceptSymbol("-")) return Node::Un(OUn::kNeg, Unary());
    return Postfix();
  }

  NodePtr Postfix() {
    NodePtr e = Primary();
    while (AcceptSymbol(".")) e = Node::Proj(e, ExpectIdent());
    return e;
  }

  static bool AggFromKeyword(const std::string& lower, OAgg* out) {
    if (lower == "count") *out = OAgg::kCount;
    else if (lower == "sum") *out = OAgg::kSum;
    else if (lower == "avg") *out = OAgg::kAvg;
    else if (lower == "max") *out = OAgg::kMax;
    else if (lower == "min") *out = OAgg::kMin;
    else if (lower == "exists") *out = OAgg::kExists;
    else return false;
    return true;
  }

  NodePtr Primary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kInt: {
        Advance();
        return Node::Lit(Value::Int(t.int_value));
      }
      case TokKind::kReal: {
        Advance();
        return Node::Lit(Value::Real(t.real_value));
      }
      case TokKind::kString: {
        Advance();
        return Node::Lit(Value::Str(t.text));
      }
      case TokKind::kParam: {
        Advance();
        return Node::Param(t.text);
      }
      case TokKind::kSymbol:
        if (t.text == "(") {
          Advance();
          NodePtr q = Query();
          ExpectSymbol(")");
          return q;
        }
        Fail("expected expression");
      case TokKind::kIdent: {
        if (t.lower == "true") {
          Advance();
          return Node::Lit(Value::Bool(true));
        }
        if (t.lower == "false") {
          Advance();
          return Node::Lit(Value::Bool(false));
        }
        if (t.lower == "null" || t.lower == "nil" || t.lower == "undefined") {
          Advance();
          return Node::Lit(Value::Null());
        }
        if (t.lower == "struct" && IsSymbol("(", 1)) {
          Advance();
          Advance();
          std::vector<std::pair<std::string, NodePtr>> fields;
          if (!IsSymbol(")")) {
            do {
              std::string name = ExpectIdent();
              ExpectSymbol(":");
              fields.emplace_back(name, OrExpr());
            } while (AcceptSymbol(","));
          }
          ExpectSymbol(")");
          return Node::Struct(std::move(fields));
        }
        OAgg agg;
        if (AggFromKeyword(t.lower, &agg) && IsSymbol("(", 1)) {
          Advance();
          Advance();
          NodePtr arg = Query();
          ExpectSymbol(")");
          return Node::Agg(agg, arg);
        }
        Advance();
        return Node::Ident(t.text);
      }
      case TokKind::kEnd:
        Fail("unexpected end of input");
    }
    Fail("expected expression");
  }
};

}  // namespace

NodePtr Parse(const std::string& input) {
  Parser p(Lex(input));
  return p.ParseQuery();
}

}  // namespace ldb::oql
