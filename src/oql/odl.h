// ODL (Object Definition Language) schema parser — the ODMG companion of
// OQL [4]. Lets applications declare the class schema textually instead of
// building ClassDecl objects by hand:
//
//   class Employee (extent Employees) {
//     attribute string name;
//     attribute long age;
//     attribute double salary;
//     attribute long dno;
//     relationship Manager manager;
//     relationship set<Person> children;
//   };
//
// Supported types: boolean, short/int/integer/long (-> int), float/double/
// real (-> real), string, class names, and set<T>/bag<T>/list<T>.
// `attribute` and `relationship` are interchangeable (both declare a typed
// member; "relationship" is the conventional keyword for reference-valued
// ones). Classes may be referenced before they are declared; names are
// resolved against the whole schema at the end.

#ifndef LAMBDADB_OQL_ODL_H_
#define LAMBDADB_OQL_ODL_H_

#include <string>

#include "src/runtime/schema.h"

namespace ldb::oql {

/// Parses an ODL schema definition. Throws ParseError on syntax errors and
/// TypeError on unknown type names or duplicate classes/extents.
Schema ParseODL(const std::string& input);

}  // namespace ldb::oql

#endif  // LAMBDADB_OQL_ODL_H_
