// Lexer for the OQL subset. Keywords are case-insensitive (ODMG convention);
// identifiers are case-sensitive. Strings use single or double quotes.

#ifndef LAMBDADB_OQL_LEXER_H_
#define LAMBDADB_OQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ldb::oql {

enum class TokKind {
  kIdent,
  kInt,
  kReal,
  kString,
  kSymbol,  // punctuation / operator, in `text`
  kParam,   // $1 / $name placeholder; `text` holds the name without the '$'
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;    // identifier (original case), symbol, or string body
  std::string lower;   // lowercased text (for keyword matching)
  int64_t int_value = 0;
  double real_value = 0;
  size_t offset = 0;   // byte offset, for error messages
};

/// Tokenizes the input. Throws ParseError on bad characters or unterminated
/// strings.
std::vector<Token> Lex(const std::string& input);

}  // namespace ldb::oql

#endif  // LAMBDADB_OQL_LEXER_H_
