#include "src/oql/translate.h"

#include "src/runtime/error.h"

namespace ldb::oql {

namespace {

ExprPtr Trans(const NodePtr& n);

MonoidKind AggMonoid(OAgg a) {
  switch (a) {
    case OAgg::kCount:  return MonoidKind::kSum;
    case OAgg::kSum:    return MonoidKind::kSum;
    case OAgg::kAvg:    return MonoidKind::kAvg;
    case OAgg::kMax:    return MonoidKind::kMax;
    case OAgg::kMin:    return MonoidKind::kMin;
    case OAgg::kExists: return MonoidKind::kSome;
  }
  throw InternalError("bad aggregate");
}

const char* AggName(OAgg a) {
  switch (a) {
    case OAgg::kCount:  return "count";
    case OAgg::kSum:    return "sum";
    case OAgg::kAvg:    return "avg";
    case OAgg::kMax:    return "max";
    case OAgg::kMin:    return "min";
    case OAgg::kExists: return "exists";
  }
  return "agg";
}

// Derives a result-field name for an unnamed projection item.
std::string DeriveName(const ProjItem& item, size_t index) {
  if (!item.as.empty()) return item.as;
  const NodePtr& e = item.expr;
  if (e->kind == NodeKind::kIdent) return e->name;
  if (e->kind == NodeKind::kProj) return e->name;  // last attribute
  if (e->kind == NodeKind::kAgg) return AggName(e->agg);
  return "c" + std::to_string(index + 1);
}

struct SelectParts {
  std::vector<Qualifier> quals;  // generators + where filter
  MonoidKind monoid;             // set if distinct, bag otherwise
};

SelectParts TransSelectBody(const Node& sel) {
  SelectParts parts;
  parts.monoid = sel.distinct ? MonoidKind::kSet : MonoidKind::kBag;
  for (const FromItem& f : sel.froms) {
    parts.quals.push_back(Qualifier::Generator(f.var, Trans(f.domain)));
  }
  if (sel.where) parts.quals.push_back(Qualifier::Filter(Trans(sel.where)));
  return parts;
}

ExprPtr HeadOfProjection(const std::vector<ProjItem>& projection) {
  if (projection.size() == 1 && projection[0].as.empty()) {
    return Trans(projection[0].expr);
  }
  std::vector<std::pair<std::string, ExprPtr>> fields;
  for (size_t i = 0; i < projection.size(); ++i) {
    fields.emplace_back(DeriveName(projection[i], i), Trans(projection[i].expr));
  }
  return Expr::Record(std::move(fields));
}

// Group-by translation (paper, Section 5): restricted to one from-binding;
// every projection item must be a group key or an aggregate over the binding.
ExprPtr TransGroupBy(const Node& sel) {
  if (sel.froms.size() != 1) {
    throw UnsupportedError("group by requires a single from-binding");
  }
  const std::string& v = sel.froms[0].var;
  ExprPtr domain = Trans(sel.froms[0].domain);
  ExprPtr where = sel.where ? Trans(sel.where) : Expr::True();

  std::vector<ExprPtr> keys;
  keys.reserve(sel.group_by.size());
  for (const NodePtr& g : sel.group_by) keys.push_back(Trans(g));

  auto is_key = [&](const ExprPtr& e) {
    for (const ExprPtr& k : keys) {
      if (ExprEqual(e, k)) return true;
    }
    return false;
  };

  std::vector<std::pair<std::string, ExprPtr>> fields;
  for (size_t i = 0; i < sel.projection.size(); ++i) {
    const ProjItem& item = sel.projection[i];
    if (item.expr->kind != NodeKind::kAgg) {
      ExprPtr e = Trans(item.expr);
      if (is_key(e)) {
        fields.emplace_back(DeriveName(item, i), e);
        continue;
      }
      throw UnsupportedError(
          "projection in a group-by query must be a group key or an aggregate");
    }
    // Build the correlated aggregate over a fresh copy of the binding.
    std::string u = Gensym::Fresh(v);
    ExprPtr uvar = Expr::Var(u);
    std::vector<Qualifier> quals;
    quals.push_back(Qualifier::Generator(u, domain));
    if (!where->IsTrueLiteral()) {
      quals.push_back(Qualifier::Filter(Subst(where, v, uvar)));
    }
    for (const ExprPtr& k : keys) {
      quals.push_back(Qualifier::Filter(Expr::Eq(Subst(k, v, uvar), k)));
    }
    ExprPtr head;
    if (item.expr->agg == OAgg::kCount) {
      head = Expr::Int(1);
    } else {
      // Aggregate argument must be an expression over the binding.
      if (item.expr->a->kind == NodeKind::kSelect) {
        throw UnsupportedError("subquery aggregate inside group-by");
      }
      head = Subst(Trans(item.expr->a), v, uvar);
    }
    fields.emplace_back(DeriveName(item, i),
                        Expr::Comp(AggMonoid(item.expr->agg), head,
                                   std::move(quals)));
  }

  std::vector<Qualifier> outer;
  outer.push_back(Qualifier::Generator(v, domain));
  if (!where->IsTrueLiteral()) outer.push_back(Qualifier::Filter(where));
  // One output row per group: the head is keyed by the group attributes, and
  // set collapsing merges the per-member duplicates (Section 5 example).
  return Expr::Comp(MonoidKind::kSet, Expr::Record(std::move(fields)),
                    std::move(outer));
}

ExprPtr TransAgg(const Node& n) {
  const MonoidKind m = AggMonoid(n.agg);
  if (n.a->kind == NodeKind::kSelect) {
    const Node& sel = *n.a;
    if (!sel.group_by.empty()) {
      throw UnsupportedError("aggregate over a group-by subquery");
    }
    if (n.agg == OAgg::kExists) {
      SelectParts parts = TransSelectBody(sel);
      return Expr::Comp(MonoidKind::kSome, Expr::True(), std::move(parts.quals));
    }
    if (sel.distinct) {
      // agg(select distinct ...): when the projected value is a bare range
      // variable, iterating the (set-valued) domains already yields each
      // binding once, so `distinct` is a no-op and we emit the paper's
      // direct form (Query D: count(select distinct c from c in e.children)
      // = sum{ 1 | c <- e.children }). Domains here are class extents or
      // set-typed paths; a bag-typed domain would need the guarded form
      // below. Otherwise the deduplicating inner set comprehension is kept
      // (a genuine count-distinct), which the unnester cannot unnest — the
      // baseline evaluator still handles it.
      bool head_is_binding = false;
      if (sel.projection.size() == 1 &&
          sel.projection[0].expr->kind == NodeKind::kIdent) {
        for (const FromItem& f : sel.froms) {
          if (f.var == sel.projection[0].expr->name) head_is_binding = true;
        }
      }
      if (!head_is_binding) {
        ExprPtr inner = Trans(n.a);
        std::string x = Gensym::Fresh("x");
        ExprPtr head = n.agg == OAgg::kCount ? Expr::Int(1) : Expr::Var(x);
        return Expr::Comp(m, head, {Qualifier::Generator(x, inner)});
      }
      // fall through to the direct translation
    }
    SelectParts parts = TransSelectBody(sel);
    ExprPtr head = n.agg == OAgg::kCount ? Expr::Int(1)
                                         : HeadOfProjection(sel.projection);
    return Expr::Comp(m, head, std::move(parts.quals));
  }
  // Aggregate over a collection-valued expression.
  ExprPtr coll = Trans(n.a);
  std::string x = Gensym::Fresh("x");
  ExprPtr head;
  switch (n.agg) {
    case OAgg::kCount:  head = Expr::Int(1); break;
    case OAgg::kExists: head = Expr::True(); break;
    default:            head = Expr::Var(x); break;
  }
  return Expr::Comp(n.agg == OAgg::kExists ? MonoidKind::kSome : m, head,
                    {Qualifier::Generator(x, coll)});
}

ExprPtr Trans(const NodePtr& n) {
  if (!n) throw InternalError("null OQL node");
  switch (n->kind) {
    case NodeKind::kIdent:
      return Expr::Var(n->name);
    case NodeKind::kParam:
      return Expr::Param(n->name);
    case NodeKind::kLiteral:
      return Expr::Lit(n->literal);
    case NodeKind::kProj:
      return Expr::Proj(Trans(n->a), n->name);
    case NodeKind::kStruct: {
      std::vector<std::pair<std::string, ExprPtr>> fields;
      for (const auto& [name, f] : n->fields) fields.emplace_back(name, Trans(f));
      return Expr::Record(std::move(fields));
    }
    case NodeKind::kBin: {
      static const BinOpKind kMap[] = {
          BinOpKind::kEq,  BinOpKind::kNe,  BinOpKind::kLt,  BinOpKind::kLe,
          BinOpKind::kGt,  BinOpKind::kGe,  BinOpKind::kAnd, BinOpKind::kOr,
          BinOpKind::kAdd, BinOpKind::kSub, BinOpKind::kMul, BinOpKind::kDiv,
          BinOpKind::kMod};
      return Expr::Bin(kMap[static_cast<int>(n->bin)], Trans(n->a), Trans(n->b));
    }
    case NodeKind::kUn:
      return n->un == OUn::kNot ? Expr::Not(Trans(n->a))
                                : Expr::Un(UnOpKind::kNeg, Trans(n->a));
    case NodeKind::kIn: {
      // x in D  ->  some{ w = x | w <- D }
      std::string w = Gensym::Fresh("w");
      return Expr::Comp(MonoidKind::kSome,
                        Expr::Eq(Expr::Var(w), Trans(n->a)),
                        {Qualifier::Generator(w, Trans(n->b))});
    }
    case NodeKind::kExists:
      return Expr::Comp(MonoidKind::kSome, Trans(n->b),
                        {Qualifier::Generator(n->var, Trans(n->a))});
    case NodeKind::kForAll:
      return Expr::Comp(MonoidKind::kAll, Trans(n->b),
                        {Qualifier::Generator(n->var, Trans(n->a))});
    case NodeKind::kAgg:
      return TransAgg(*n);
    case NodeKind::kSelect: {
      if (!n->order_by.empty()) {
        throw UnsupportedError(
            "order by produces a list (the paper's future work); use "
            "TranslateWithOrdering / RunOQL, which sort after execution");
      }
      if (!n->group_by.empty()) return TransGroupBy(*n);
      SelectParts parts = TransSelectBody(*n);
      return Expr::Comp(parts.monoid, HeadOfProjection(n->projection),
                        std::move(parts.quals));
    }
  }
  throw InternalError("unhandled OQL node");
}

}  // namespace

ExprPtr Translate(const NodePtr& query) { return Trans(query); }

OrderedQuery TranslateWithOrdering(const NodePtr& query) {
  OrderedQuery out;
  if (!query || query->kind != NodeKind::kSelect || query->order_by.empty()) {
    out.comp = Trans(query);
    return out;
  }
  if (!query->group_by.empty()) {
    throw UnsupportedError("order by combined with group by");
  }
  out.ordered = true;
  // Wrap the head: <key$ = <o1=k1, ...>, val$ = head>. The keys see the
  // same range variables as the head.
  std::vector<std::pair<std::string, ExprPtr>> key_fields;
  for (size_t i = 0; i < query->order_by.size(); ++i) {
    key_fields.emplace_back("o" + std::to_string(i),
                            Trans(query->order_by[i].first));
    out.descending.push_back(query->order_by[i].second);
  }
  auto unordered = Node::New(NodeKind::kSelect);
  *unordered = *query;
  unordered->order_by.clear();
  ExprPtr base = Trans(unordered);  // the select without ordering
  ExprPtr wrapped_head = Expr::Record(
      {{"key$", Expr::Record(std::move(key_fields))}, {"val$", base->a}});
  out.comp = Expr::Comp(base->monoid, wrapped_head, base->quals);
  return out;
}

}  // namespace ldb::oql
