#include "src/runtime/schema.h"

#include "src/runtime/error.h"

namespace ldb {

TypePtr ClassDecl::AttributeType(const std::string& attr) const {
  for (const auto& [n, t] : attributes) {
    if (n == attr) return t;
  }
  return nullptr;
}

void Schema::AddClass(ClassDecl decl) {
  if (classes_.count(decl.name) > 0) {
    throw TypeError("duplicate class '" + decl.name + "'");
  }
  if (!decl.extent.empty()) {
    if (extent_owner_.count(decl.extent) > 0) {
      throw TypeError("duplicate extent '" + decl.extent + "'");
    }
    extent_owner_[decl.extent] = decl.name;
  }
  classes_[decl.name] = std::move(decl);
}

const ClassDecl* Schema::FindClass(const std::string& name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

const ClassDecl* Schema::FindExtent(const std::string& extent) const {
  auto it = extent_owner_.find(extent);
  return it == extent_owner_.end() ? nullptr : FindClass(it->second);
}

}  // namespace ldb
