// The physical plan layer (paper Section 6: the prototype's final stage
// "translat[es] algebraic forms into physical plans").
//
// A physical plan makes every execution decision explicit that the logical
// algebra leaves open: which join algorithm runs (hash vs nested-loop, with
// extracted equi-keys), which side builds the hash table, whether a scan
// goes through an index, and where grouping hash tables sit. Two engines
// consume it:
//
//   * ExecutePipelined (exec_pipeline.h) — Volcano-style open/next/close
//     iterators; rows flow one at a time, quantifier roots stop pulling as
//     soon as they saturate;
//   * the materializing executor (eval_algebra.h) predates this layer and
//     remains as a reference implementation; both engines are tested to
//     agree everywhere.

#ifndef LAMBDADB_RUNTIME_PHYSICAL_PLAN_H_
#define LAMBDADB_RUNTIME_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/algebra.h"
#include "src/runtime/database.h"
#include "src/runtime/physical.h"

namespace ldb {

struct PhysOp;
using PhysPtr = std::shared_ptr<const PhysOp>;

enum class PhysKind {
  kUnitRow,        ///< one empty row
  kTableScan,      ///< full extent scan + selection
  kIndexScan,      ///< index lookup + residual selection
  kFilter,         ///< predicate filter
  kNLJoin,         ///< nested-loop (inner) join; right side buffered
  kHashJoin,       ///< hash (inner) join; build side buffered
  kNLOuterJoin,    ///< nested-loop left outer-join
  kHashOuterJoin,  ///< hash left outer-join; right side builds
  kUnnest,         ///< per-row collection expansion (drops empty)
  kOuterUnnest,    ///< per-row expansion with NULL padding
  kHashNest,       ///< blocking hash grouping (the Γ operator)
  kReduce,         ///< root fold, with quantifier short-circuit
};

/// One physical operator. Field use mirrors AlgOp, plus the physical
/// decisions (keys, build side, index attribute).
struct PhysOp {
  PhysKind kind;
  PhysPtr left, right;

  std::string extent;  // scans
  std::string var;     // scans/unnests: bound variable; nest: output variable
  ExprPtr pred;        // residual predicate (never null; True() if none)
  ExprPtr path;        // unnests
  ExprPtr head;        // nest/reduce
  MonoidKind monoid{};

  // kIndexScan
  std::string index_attr;
  ExprPtr index_key;

  // hash joins
  std::vector<ExprPtr> probe_keys;  // evaluated over the probe (streamed) side
  std::vector<ExprPtr> build_keys;  // evaluated over the build (buffered) side
  bool build_is_left = false;       ///< inner hash join built on the left input

  // kHashNest
  std::vector<std::pair<std::string, ExprPtr>> group_by;
  std::vector<std::string> null_vars;

  // padding variables for outer joins (the build/buffered side's variables)
  std::vector<std::string> pad_vars;
};

/// Translates a logical plan into a physical one, making all algorithm
/// choices using `db`'s indexes/statistics and `options`. The logical plan
/// must be Reduce-rooted (as produced by the unnesting algorithm).
PhysPtr PlanPhysical(const AlgPtr& plan, const Database& db,
                     const PhysicalOptions& options = {});

/// Operator-kind mnemonic ("TableScan", "HashJoin", ...).
const char* PhysKindName(PhysKind kind);

/// One-line description of a single operator (no children, no newline) —
/// the per-node text shared by PrintPhysicalPlan and ExplainAnalyze.
std::string DescribePhysOp(const PhysOp& op);

/// Indented rendering of a physical plan.
std::string PrintPhysicalPlan(const PhysPtr& plan);

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_PHYSICAL_PLAN_H_
