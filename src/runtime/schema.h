// Schema of an in-memory OODB: named classes with typed attributes, each
// class having a named extent (the set of all its instances).
//
// This is the substrate the paper assumes (class extents like `Employees`,
// `Departments`, relationship attributes like `e.children` and `e.manager`).
// The paper's prototype evaluated plans in memory (Section 6); this store
// plays the role SHORE would have played.

#ifndef LAMBDADB_RUNTIME_SCHEMA_H_
#define LAMBDADB_RUNTIME_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/type.h"

namespace ldb {

/// A class declaration: attribute names/types plus the extent name under
/// which all instances are reachable in queries (e.g. class Employee with
/// extent "Employees").
struct ClassDecl {
  std::string name;
  std::string extent;  ///< empty if the class has no named extent
  std::vector<std::pair<std::string, TypePtr>> attributes;

  TypePtr AttributeType(const std::string& attr) const;
};

/// A database schema: the set of class declarations.
class Schema {
 public:
  /// Declares a class. Throws TypeError on duplicate class or extent names.
  void AddClass(ClassDecl decl);

  /// Returns the class declaration, or nullptr if unknown.
  const ClassDecl* FindClass(const std::string& name) const;
  /// Returns the class owning the named extent, or nullptr.
  const ClassDecl* FindExtent(const std::string& extent) const;

  /// True iff `name` is a declared extent.
  bool IsExtent(const std::string& name) const {
    return FindExtent(name) != nullptr;
  }

  const std::map<std::string, ClassDecl>& classes() const { return classes_; }

 private:
  std::map<std::string, ClassDecl> classes_;        // by class name
  std::map<std::string, std::string> extent_owner_;  // extent -> class name
};

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_SCHEMA_H_
