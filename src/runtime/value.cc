#include "src/runtime/value.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "src/runtime/error.h"

namespace ldb {

namespace {

int KindRank(Value::Kind k) { return static_cast<int>(k); }

void SortCanonical(Elems* elems) {
  std::sort(elems->begin(), elems->end(),
            [](const Value& a, const Value& b) { return Value::Compare(a, b) < 0; });
}

size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.b_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.i_ = i;
  return v;
}

Value Value::Real(double d) {
  Value v;
  v.kind_ = Kind::kReal;
  v.r_ = d;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = Kind::kStr;
  v.s_ = std::move(s);
  return v;
}

Value Value::Tuple(Fields fields) {
  Value v;
  v.kind_ = Kind::kTuple;
  v.tuple_ = std::make_shared<const Fields>(std::move(fields));
  return v;
}

Value Value::Set(Elems elems) {
  SortCanonical(&elems);
  elems.erase(std::unique(elems.begin(), elems.end(),
                          [](const Value& a, const Value& b) {
                            return Compare(a, b) == 0;
                          }),
              elems.end());
  Value v;
  v.kind_ = Kind::kSet;
  v.elems_ = std::make_shared<const Elems>(std::move(elems));
  return v;
}

Value Value::Bag(Elems elems) {
  SortCanonical(&elems);
  Value v;
  v.kind_ = Kind::kBag;
  v.elems_ = std::make_shared<const Elems>(std::move(elems));
  return v;
}

Value Value::List(Elems elems) {
  Value v;
  v.kind_ = Kind::kList;
  v.elems_ = std::make_shared<const Elems>(std::move(elems));
  return v;
}

Value Value::MakeRef(std::string class_name, int64_t oid) {
  Value v;
  v.kind_ = Kind::kRef;
  v.ref_ = Ref{std::move(class_name), oid};
  return v;
}

bool Value::AsBool() const {
  if (kind_ != Kind::kBool) throw EvalError("expected bool, got " + ToString());
  return b_;
}

int64_t Value::AsInt() const {
  if (kind_ != Kind::kInt) throw EvalError("expected int, got " + ToString());
  return i_;
}

double Value::AsReal() const {
  if (kind_ != Kind::kReal) throw EvalError("expected real, got " + ToString());
  return r_;
}

double Value::AsNumeric() const {
  if (kind_ == Kind::kInt) return static_cast<double>(i_);
  if (kind_ == Kind::kReal) return r_;
  throw EvalError("expected numeric, got " + ToString());
}

const std::string& Value::AsStr() const {
  if (kind_ != Kind::kStr) throw EvalError("expected string, got " + ToString());
  return s_;
}

const Fields& Value::AsTuple() const {
  if (kind_ != Kind::kTuple) throw EvalError("expected tuple, got " + ToString());
  return *tuple_;
}

const Elems& Value::AsElems() const {
  if (!is_collection()) throw EvalError("expected collection, got " + ToString());
  return *elems_;
}

const Ref& Value::AsRef() const {
  if (kind_ != Kind::kRef) throw EvalError("expected ref, got " + ToString());
  return ref_;
}

const Value& Value::Field(const std::string& name) const {
  for (const auto& [n, v] : AsTuple()) {
    if (n == name) return v;
  }
  throw EvalError("tuple has no attribute '" + name + "': " + ToString());
}

bool Value::HasField(const std::string& name) const {
  if (kind_ != Kind::kTuple) return false;
  for (const auto& [n, v] : *tuple_) {
    if (n == name) return true;
  }
  return false;
}

int Value::Compare(const Value& a, const Value& b) {
  // Numeric values of different kinds (int vs real) compare by numeric value
  // so that 3 == 3.0; everything else ranks by kind first.
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.AsNumeric(), y = b.AsNumeric();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.kind_ != b.kind_) return KindRank(a.kind_) < KindRank(b.kind_) ? -1 : 1;
  switch (a.kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kBool:
      return (a.b_ ? 1 : 0) - (b.b_ ? 1 : 0);
    case Kind::kInt:
    case Kind::kReal:
      return 0;  // handled above
    case Kind::kStr:
      return a.s_.compare(b.s_);
    case Kind::kTuple: {
      const Fields& fa = *a.tuple_;
      const Fields& fb = *b.tuple_;
      size_t n = std::min(fa.size(), fb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = fa[i].first.compare(fb[i].first);
        if (c != 0) return c;
        c = Compare(fa[i].second, fb[i].second);
        if (c != 0) return c;
      }
      if (fa.size() != fb.size()) return fa.size() < fb.size() ? -1 : 1;
      return 0;
    }
    case Kind::kSet:
    case Kind::kBag:
    case Kind::kList: {
      const Elems& ea = *a.elems_;
      const Elems& eb = *b.elems_;
      size_t n = std::min(ea.size(), eb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(ea[i], eb[i]);
        if (c != 0) return c;
      }
      if (ea.size() != eb.size()) return ea.size() < eb.size() ? -1 : 1;
      return 0;
    }
    case Kind::kRef: {
      int c = a.ref_.class_name.compare(b.ref_.class_name);
      if (c != 0) return c;
      if (a.ref_.oid != b.ref_.oid) return a.ref_.oid < b.ref_.oid ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x9e3779b9;
  switch (kind_) {
    case Kind::kNull:
      return h;
    case Kind::kBool:
      return HashCombine(h, b_ ? 1 : 2);
    case Kind::kInt:
      // Hash ints through double so that 3 and 3.0 (which compare equal) hash
      // the same.
      return HashCombine(0x7f, std::hash<double>()(static_cast<double>(i_)));
    case Kind::kReal:
      return HashCombine(0x7f, std::hash<double>()(r_));
    case Kind::kStr:
      return HashCombine(h, std::hash<std::string>()(s_));
    case Kind::kTuple: {
      for (const auto& [n, v] : *tuple_) {
        h = HashCombine(h, std::hash<std::string>()(n));
        h = HashCombine(h, v.Hash());
      }
      return h;
    }
    case Kind::kSet:
    case Kind::kBag:
    case Kind::kList: {
      for (const Value& v : *elems_) h = HashCombine(h, v.Hash());
      return h;
    }
    case Kind::kRef:
      h = HashCombine(h, std::hash<std::string>()(ref_.class_name));
      return HashCombine(h, std::hash<int64_t>()(ref_.oid));
  }
  return h;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kNull:
      os << "NULL";
      break;
    case Kind::kBool:
      os << (b_ ? "true" : "false");
      break;
    case Kind::kInt:
      os << i_;
      break;
    case Kind::kReal:
      os << r_;
      break;
    case Kind::kStr:
      os << '"' << s_ << '"';
      break;
    case Kind::kTuple: {
      os << '<';
      bool first = true;
      for (const auto& [n, v] : *tuple_) {
        if (!first) os << ", ";
        first = false;
        os << n << '=' << v.ToString();
      }
      os << '>';
      break;
    }
    case Kind::kSet:
    case Kind::kBag:
    case Kind::kList: {
      const char* open = kind_ == Kind::kSet ? "{" : kind_ == Kind::kBag ? "{|" : "[";
      const char* close = kind_ == Kind::kSet ? "}" : kind_ == Kind::kBag ? "|}" : "]";
      os << open;
      bool first = true;
      for (const Value& v : *elems_) {
        if (!first) os << ", ";
        first = false;
        os << v.ToString();
      }
      os << close;
      break;
    }
    case Kind::kRef:
      os << ref_.class_name << '#' << ref_.oid;
      break;
  }
  return os.str();
}

size_t EstimateValueBytes(const Value& v) {
  size_t bytes = sizeof(Value);
  switch (v.kind()) {
    case Value::Kind::kStr:
      bytes += v.AsStr().size();
      break;
    case Value::Kind::kTuple:
      for (const auto& [name, field] : v.AsTuple())
        bytes += name.size() + EstimateValueBytes(field);
      break;
    case Value::Kind::kSet:
    case Value::Kind::kBag:
    case Value::Kind::kList:
      for (const Value& elem : v.AsElems()) bytes += EstimateValueBytes(elem);
      break;
    default:
      break;  // null / bool / int / real / ref fit in the Value header
  }
  return bytes;
}

}  // namespace ldb
