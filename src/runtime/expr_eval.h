// Direct interpreter for monoid calculus terms, implementing the reduction
// semantics (D1)-(D7) of Fegaras, SIGMOD'98 by nested iteration.
//
// This interpreter plays two roles:
//  * it is the BASELINE evaluator: evaluating an unoptimized comprehension
//    this way is exactly the naive nested-loop strategy the paper says OODB
//    systems use without unnesting ("for each step of the outer query, all
//    the steps of the inner query need to be executed", Section 1);
//  * the algebra executor reuses it for operator heads and predicates
//    (which are comprehension-free after unnesting).
//
// NULL discipline (paper Section 2/3): the only operations on NULL are
// creation and testing. Navigation from NULL yields NULL, comparisons with
// NULL yield false, arithmetic with NULL yields NULL, and accumulating NULL
// into a monoid contributes the zero element.

#ifndef LAMBDADB_RUNTIME_EXPR_EVAL_H_
#define LAMBDADB_RUNTIME_EXPR_EVAL_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/expr.h"
#include "src/obs/resource.h"
#include "src/runtime/database.h"

namespace ldb {

class CancelToken;  // fwd (src/runtime/cancel.h)

/// A runtime environment: range-variable bindings, in binding order.
/// Lookup is linear — environments hold a handful of variables.
class Env {
 public:
  Env() = default;

  void Bind(const std::string& var, Value v) {
    vars_.emplace_back(var, std::move(v));
  }

  /// Returns the binding, or nullptr if absent (later bindings shadow
  /// earlier ones).
  const Value* Lookup(const std::string& var) const {
    for (auto it = vars_.rbegin(); it != vars_.rend(); ++it) {
      if (it->first == var) return &it->second;
    }
    return nullptr;
  }

  /// Extends a copy of this environment with one more binding.
  Env With(const std::string& var, Value v) const {
    Env out = *this;
    out.Bind(var, std::move(v));
    return out;
  }

  const std::vector<std::pair<std::string, Value>>& bindings() const {
    return vars_;
  }

 private:
  std::vector<std::pair<std::string, Value>> vars_;
};

/// Comparison operator on already-evaluated operands. Comparisons involving
/// NULL are false (the paper's NULL discipline). `op` must be one of
/// kEq/kNe/kLt/kLe/kGt/kGe.
Value ApplyCompareOp(BinOpKind op, const Value& l, const Value& r);

/// Arithmetic operator on already-evaluated operands; NULL propagates.
/// `op` must be one of kAdd/kSub/kMul/kDiv/kMod.
Value ApplyArithOp(BinOpKind op, const Value& l, const Value& r);

/// Unary operator on an already-evaluated operand (NULL discipline included).
Value ApplyUnaryOp(UnOpKind op, const Value& v);

/// Evaluates calculus terms against a database. Caches extent values so that
/// repeated evaluation of the same extent name does not rebuild the set.
class ExprEvaluator {
 public:
  explicit ExprEvaluator(const Database& db) : db_(db) {}

  /// Evaluates `e` under `env`. Throws EvalError on runtime failures.
  Value Eval(const ExprPtr& e, const Env& env);

  /// Evaluates a predicate: NULL and non-bool results count as false only if
  /// NULL (non-bool throws).
  bool EvalPred(const ExprPtr& pred, const Env& env);

  /// Binding source for kParam nodes ($1 / $name). Parameters are execution
  /// state rather than environment state (scan iterators build fresh Envs
  /// per row), so they live on the evaluator. The map must outlive every
  /// Eval call; nullptr (the default) makes any kParam an EvalError.
  void SetParams(const std::map<std::string, Value>* params) {
    params_ = params;
  }
  const std::map<std::string, Value>* params() const { return params_; }

  /// Cooperative-cancellation token polled by the evaluator's generator
  /// loops and by the pipelined iterators that share this evaluator. Null
  /// (the default) disables the checks.
  void SetCancel(const CancelToken* cancel) { cancel_ = cancel; }
  const CancelToken* cancel() const { return cancel_; }

  /// Arms the evaluator's memory tracker against a query's resource context
  /// (nullptr, the default, disarms it). The pipelined iterators that share
  /// this evaluator charge their buffered state through mem().
  void SetResource(obs::QueryResourceContext* rc) { mem_.Arm(rc); }
  obs::MemoryTracker& mem() { return mem_; }

  const Database& db() const { return db_; }

 private:
  Value EvalComp(const ExprPtr& comp, const Env& env);
  Value EvalBinOp(const ExprPtr& e, const Env& env);
  Value LookupVar(const std::string& name, const Env& env);

  const Database& db_;
  const std::map<std::string, Value>* params_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  obs::MemoryTracker mem_;
  std::map<std::string, Value> extent_cache_;
};

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_EXPR_EVAL_H_
