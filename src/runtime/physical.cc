#include "src/runtime/physical.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/core/pretty.h"
#include "src/runtime/database.h"
#include "src/runtime/error.h"

namespace ldb {

namespace {

// True if all free variables of e are within vars (names with '$' are
// generated range variables; extent names never appear in join keys, so a
// plain subset test suffices — an extent-referencing conjunct simply stays
// in the residual).
bool Within(const ExprPtr& e, const std::vector<std::string>& vars) {
  std::set<std::string> fv = FreeVars(e);
  for (const std::string& v : fv) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) return false;
  }
  return true;
}

}  // namespace

JoinKeys ExtractEquiKeys(const ExprPtr& pred,
                         const std::vector<std::string>& left_vars,
                         const std::vector<std::string>& right_vars) {
  JoinKeys out;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : SplitConjuncts(pred)) {
    if (c->kind == ExprKind::kBinOp && c->bin_op == BinOpKind::kEq) {
      if (Within(c->a, left_vars) && Within(c->b, right_vars)) {
        out.left_keys.push_back(c->a);
        out.right_keys.push_back(c->b);
        continue;
      }
      if (Within(c->b, left_vars) && Within(c->a, right_vars)) {
        out.left_keys.push_back(c->b);
        out.right_keys.push_back(c->a);
        continue;
      }
    }
    residual.push_back(c);
  }
  out.residual = MakeConjunction(residual);
  return out;
}

bool MatchIndexScan(const AlgOp& scan, const Database& db, IndexMatch* out) {
  LDB_INTERNAL_CHECK(scan.kind == AlgKind::kScan, "not a scan");
  std::vector<ExprPtr> conjuncts = SplitConjuncts(scan.pred);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const ExprPtr& c = conjuncts[i];
    if (c->kind != ExprKind::kBinOp || c->bin_op != BinOpKind::kEq) continue;
    for (bool flipped : {false, true}) {
      const ExprPtr& attr_side = flipped ? c->b : c->a;
      const ExprPtr& key_side = flipped ? c->a : c->b;
      if (attr_side->kind != ExprKind::kProj ||
          attr_side->a->kind != ExprKind::kVar ||
          attr_side->a->name != scan.var) {
        continue;
      }
      if (!FreeVars(key_side).empty()) continue;  // not a constant
      if (!db.HasIndex(scan.extent, attr_side->name)) continue;
      out->attr = attr_side->name;
      out->key = key_side;
      std::vector<ExprPtr> residual = conjuncts;
      residual.erase(residual.begin() + static_cast<long>(i));
      out->residual = MakeConjunction(residual);
      return true;
    }
  }
  return false;
}

namespace {

void Explain(const AlgPtr& op, int indent, const PhysicalOptions& options,
             const Database* db, std::ostringstream& os) {
  if (!op) return;
  os << std::string(static_cast<size_t>(indent) * 2, ' ');
  switch (op->kind) {
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin: {
      JoinKeys keys = ExtractEquiKeys(op->pred, OutputVars(op->left),
                                      OutputVars(op->right));
      bool hash = options.use_hash_joins && keys.hashable();
      os << (hash ? "Hash" : "NL")
         << (op->kind == AlgKind::kJoin ? "Join" : "OuterJoin");
      if (hash) {
        os << " keys(";
        for (size_t i = 0; i < keys.left_keys.size(); ++i) {
          if (i) os << ", ";
          os << PrintExpr(keys.left_keys[i]) << '=' << PrintExpr(keys.right_keys[i]);
        }
        os << ')';
        if (!keys.residual->IsTrueLiteral()) {
          os << " residual(" << PrintExpr(keys.residual) << ')';
        }
      } else {
        os << " pred(" << PrintExpr(op->pred) << ')';
      }
      os << '\n';
      Explain(op->left, indent + 1, options, db, os);
      Explain(op->right, indent + 1, options, db, os);
      return;
    }
    case AlgKind::kNest:
      os << "HashNest[" << MonoidName(op->monoid) << "]\n";
      Explain(op->left, indent + 1, options, db, os);
      return;
    case AlgKind::kScan: {
      IndexMatch m;
      if (db != nullptr && options.use_indexes && MatchIndexScan(*op, *db, &m)) {
        os << "IndexScan[" << op->var << " <- " << op->extent << '.' << m.attr
           << " = " << PrintExpr(m.key);
        if (!m.residual->IsTrueLiteral()) {
          os << " residual(" << PrintExpr(m.residual) << ')';
        }
        os << "]\n";
        return;
      }
      std::string line = PrintPlan(op);
      os << line.substr(0, line.find('\n')) << '\n';
      return;
    }
    default: {
      // Reuse the logical printer's one-line form for the other operators.
      std::string line = PrintPlan(op);
      os << line.substr(0, line.find('\n')) << '\n';
      Explain(op->left, indent + 1, options, db, os);
      Explain(op->right, indent + 1, options, db, os);
      return;
    }
  }
}

}  // namespace

std::string ExplainPhysical(const AlgPtr& plan, const PhysicalOptions& options,
                            const Database* db) {
  std::ostringstream os;
  Explain(plan, 0, options, db, os);
  return os.str();
}

}  // namespace ldb
