#include "src/runtime/physical_plan.h"

#include <sstream>

#include "src/core/cost.h"
#include "src/core/pretty.h"
#include "src/runtime/error.h"

namespace ldb {

namespace {

std::shared_ptr<PhysOp> New(PhysKind k) {
  auto op = std::make_shared<PhysOp>();
  op->kind = k;
  op->pred = Expr::True();
  return op;
}

class Planner {
 public:
  Planner(const Database& db, const PhysicalOptions& options)
      : db_(db), options_(options), catalog_(Catalog::FromDatabase(db)) {}

  PhysPtr Root(const AlgPtr& plan) {
    LDB_INTERNAL_CHECK(plan && plan->kind == AlgKind::kReduce,
                       "physical planning expects a Reduce root");
    auto out = New(PhysKind::kReduce);
    out->left = Plan(plan->left);
    out->pred = plan->pred;
    out->head = plan->head;
    out->monoid = plan->monoid;
    return out;
  }

 private:
  const Database& db_;
  PhysicalOptions options_;
  Catalog catalog_;

  PhysPtr Plan(const AlgPtr& op) {
    LDB_INTERNAL_CHECK(op != nullptr, "null logical operator");
    switch (op->kind) {
      case AlgKind::kUnit:
        return New(PhysKind::kUnitRow);
      case AlgKind::kScan:
        return PlanScan(*op);
      case AlgKind::kSelect: {
        auto out = New(PhysKind::kFilter);
        out->left = Plan(op->left);
        out->pred = op->pred;
        return out;
      }
      case AlgKind::kJoin:
      case AlgKind::kOuterJoin:
        return PlanJoin(*op);
      case AlgKind::kUnnest:
      case AlgKind::kOuterUnnest: {
        auto out = New(op->kind == AlgKind::kUnnest ? PhysKind::kUnnest
                                                    : PhysKind::kOuterUnnest);
        out->left = Plan(op->left);
        out->path = op->path;
        out->var = op->var;
        out->pred = op->pred;
        return out;
      }
      case AlgKind::kNest: {
        auto out = New(PhysKind::kHashNest);
        out->left = Plan(op->left);
        out->monoid = op->monoid;
        out->head = op->head;
        out->var = op->var;
        out->group_by = op->group_by;
        out->null_vars = op->null_vars;
        out->pred = op->pred;
        return out;
      }
      case AlgKind::kReduce:
        throw InternalError("reduce below the plan root");
    }
    throw InternalError("unhandled logical operator");
  }

  PhysPtr PlanScan(const AlgOp& scan) {
    IndexMatch m;
    if (options_.use_indexes && MatchIndexScan(scan, db_, &m)) {
      auto out = New(PhysKind::kIndexScan);
      out->extent = scan.extent;
      out->var = scan.var;
      out->index_attr = m.attr;
      out->index_key = m.key;
      out->pred = m.residual;
      return out;
    }
    auto out = New(PhysKind::kTableScan);
    out->extent = scan.extent;
    out->var = scan.var;
    out->pred = scan.pred;
    return out;
  }

  PhysPtr PlanJoin(const AlgOp& join) {
    const bool outer = join.kind == AlgKind::kOuterJoin;
    PhysPtr left = Plan(join.left);
    PhysPtr right = Plan(join.right);
    std::vector<std::string> lvars = OutputVars(join.left);
    std::vector<std::string> rvars = OutputVars(join.right);
    JoinKeys keys = ExtractEquiKeys(join.pred, lvars, rvars);

    if (options_.use_hash_joins && keys.hashable()) {
      auto out = New(outer ? PhysKind::kHashOuterJoin : PhysKind::kHashJoin);
      out->left = left;
      out->right = right;
      out->pred = keys.residual;
      out->pad_vars = rvars;
      // Outer joins must probe with left rows; inner joins build on the side
      // the statistics say is smaller.
      bool build_left = false;
      if (!outer) {
        double lcard = RoughCard(join.left);
        double rcard = RoughCard(join.right);
        build_left = lcard < rcard;
      }
      out->build_is_left = build_left;
      if (build_left) {
        out->build_keys = keys.left_keys;
        out->probe_keys = keys.right_keys;
      } else {
        out->build_keys = keys.right_keys;
        out->probe_keys = keys.left_keys;
      }
      return out;
    }

    auto out = New(outer ? PhysKind::kNLOuterJoin : PhysKind::kNLJoin);
    out->left = left;
    out->right = right;
    out->pred = join.pred;
    out->pad_vars = rvars;
    return out;
  }

  // A statistics peek for build-side choice: actual extent sizes where
  // visible, otherwise a neutral constant.
  double RoughCard(const AlgPtr& op) {
    return EstimateCardinality(op, catalog_);
  }
};

void Print(const PhysPtr& op, int indent, std::ostringstream& os) {
  if (!op) return;
  os << std::string(static_cast<size_t>(indent) * 2, ' ')
     << DescribePhysOp(*op) << '\n';
  Print(op->left, indent + 1, os);
  Print(op->right, indent + 1, os);
}

}  // namespace

const char* PhysKindName(PhysKind kind) {
  switch (kind) {
    case PhysKind::kUnitRow:       return "UnitRow";
    case PhysKind::kTableScan:     return "TableScan";
    case PhysKind::kIndexScan:     return "IndexScan";
    case PhysKind::kFilter:        return "Filter";
    case PhysKind::kNLJoin:        return "NLJoin";
    case PhysKind::kHashJoin:      return "HashJoin";
    case PhysKind::kNLOuterJoin:   return "NLOuterJoin";
    case PhysKind::kHashOuterJoin: return "HashOuterJoin";
    case PhysKind::kUnnest:        return "Unnest";
    case PhysKind::kOuterUnnest:   return "OuterUnnest";
    case PhysKind::kHashNest:      return "HashNest";
    case PhysKind::kReduce:        return "Reduce";
  }
  return "?";
}

std::string DescribePhysOp(const PhysOp& op) {
  std::ostringstream os;
  auto pred_suffix = [&]() -> std::string {
    if (op.pred && !op.pred->IsTrueLiteral()) {
      return " if " + PrintExpr(op.pred);
    }
    return "";
  };
  switch (op.kind) {
    case PhysKind::kUnitRow:
      os << "UnitRow";
      break;
    case PhysKind::kTableScan:
      os << "TableScan[" << op.var << " <- " << op.extent << pred_suffix()
         << "]";
      break;
    case PhysKind::kIndexScan:
      os << "IndexScan[" << op.var << " <- " << op.extent << '.'
         << op.index_attr << " = " << PrintExpr(op.index_key) << pred_suffix()
         << "]";
      break;
    case PhysKind::kFilter:
      os << "Filter[" << PrintExpr(op.pred) << "]";
      break;
    case PhysKind::kNLJoin:
      os << "NLJoin[" << PrintExpr(op.pred) << "]";
      break;
    case PhysKind::kHashJoin:
    case PhysKind::kHashOuterJoin: {
      os << (op.kind == PhysKind::kHashJoin ? "HashJoin[" : "HashOuterJoin[");
      os << "build=" << (op.build_is_left ? "left" : "right") << " keys(";
      for (size_t i = 0; i < op.probe_keys.size(); ++i) {
        if (i) os << ", ";
        os << PrintExpr(op.probe_keys[i]) << '=' << PrintExpr(op.build_keys[i]);
      }
      os << ')' << pred_suffix() << "]";
      break;
    }
    case PhysKind::kNLOuterJoin:
      os << "NLOuterJoin[" << PrintExpr(op.pred) << "]";
      break;
    case PhysKind::kUnnest:
    case PhysKind::kOuterUnnest:
      os << (op.kind == PhysKind::kUnnest ? "Unnest[" : "OuterUnnest[")
         << op.var << " := " << PrintExpr(op.path) << pred_suffix() << "]";
      break;
    case PhysKind::kHashNest:
      os << "HashNest[" << MonoidName(op.monoid) << '/' << PrintExpr(op.head)
         << " -> " << op.var << pred_suffix() << "]";
      break;
    case PhysKind::kReduce:
      os << "Reduce[" << MonoidName(op.monoid) << '/' << PrintExpr(op.head)
         << pred_suffix() << "]";
      break;
  }
  return os.str();
}

PhysPtr PlanPhysical(const AlgPtr& plan, const Database& db,
                     const PhysicalOptions& options) {
  Planner planner(db, options);
  return planner.Root(plan);
}

std::string PrintPhysicalPlan(const PhysPtr& plan) {
  std::ostringstream os;
  Print(plan, 0, os);
  return os.str();
}

}  // namespace ldb
