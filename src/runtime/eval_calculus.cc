#include "src/runtime/eval_calculus.h"

#include "src/runtime/expr_eval.h"

namespace ldb {

Value EvalCalculus(const ExprPtr& e, const Database& db) {
  ExprEvaluator ev(db);
  return ev.Eval(e, Env());
}

}  // namespace ldb
