// Runtime value model for the lambdadb query engine.
//
// Values are the data the engine computes over: the primitives of the monoid
// calculus (booleans, integers, reals, strings), the NULL value introduced by
// outer-joins and outer-unnests (Fegaras, SIGMOD'98, Section 3), records
// ("tuples" in the paper), the three collection kinds (set, bag, list), and
// references to objects stored in class extents (the OODB part).
//
// Values are immutable and cheap to copy: records and collections hold their
// elements behind shared_ptr, so rewriting passes and evaluators can share
// structure freely.
//
// Sets and bags are kept in a canonical order (sorted by Value::Compare; sets
// additionally deduplicated) so that operator== is plain structural equality
// and query results can be compared directly in tests.

#ifndef LAMBDADB_RUNTIME_VALUE_H_
#define LAMBDADB_RUNTIME_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ldb {

class Value;

/// Named fields of a record value, in declaration order.
using Fields = std::vector<std::pair<std::string, Value>>;
/// Elements of a collection value.
using Elems = std::vector<Value>;

/// A reference to an object living in a class extent of a Database.
struct Ref {
  std::string class_name;
  int64_t oid = 0;
};

/// An immutable runtime value.
class Value {
 public:
  enum class Kind {
    kNull,    ///< The NULL value (outer-join padding). Distinct from any other.
    kBool,
    kInt,     ///< 64-bit signed integer.
    kReal,    ///< Double-precision float.
    kStr,
    kTuple,   ///< Record with named attributes.
    kSet,     ///< Canonical: sorted, deduplicated.
    kBag,     ///< Canonical: sorted, duplicates kept.
    kList,    ///< Order preserved as constructed.
    kRef,     ///< Reference to an object in a class extent.
  };

  /// Constructs NULL.
  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Real(double d);
  static Value Str(std::string s);
  /// Builds a record value from named fields (order preserved).
  static Value Tuple(Fields fields);
  /// Builds a set: elements are sorted and deduplicated.
  static Value Set(Elems elems);
  /// Builds a bag: elements are sorted, duplicates kept.
  static Value Bag(Elems elems);
  /// Builds a list: element order is preserved.
  static Value List(Elems elems);
  /// Builds an object reference.
  static Value MakeRef(std::string class_name, int64_t oid);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_collection() const {
    return kind_ == Kind::kSet || kind_ == Kind::kBag || kind_ == Kind::kList;
  }
  bool is_numeric() const { return kind_ == Kind::kInt || kind_ == Kind::kReal; }

  /// Accessors. Calling the wrong accessor for the kind throws EvalError.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsReal() const;
  /// Returns the numeric content widened to double (kInt or kReal).
  double AsNumeric() const;
  const std::string& AsStr() const;
  const Fields& AsTuple() const;
  const Elems& AsElems() const;
  const Ref& AsRef() const;

  /// Looks up a record field; throws EvalError if absent or not a tuple.
  const Value& Field(const std::string& name) const;
  /// Returns true iff this is a tuple that has the named field.
  bool HasField(const std::string& name) const;

  /// Total order over all values: kinds rank first, then contents.
  /// Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  bool operator==(const Value& other) const { return Compare(*this, other) == 0; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(*this, other) < 0; }

  /// Structural hash, consistent with operator==.
  size_t Hash() const;

  /// Renders the value in a readable literal-like syntax, e.g.
  /// `{<name="Ann", age=7>, <name="Bo", age=9>}`.
  std::string ToString() const;

 private:
  Kind kind_;
  bool b_ = false;
  int64_t i_ = 0;
  double r_ = 0.0;
  std::string s_;
  std::shared_ptr<const Fields> tuple_;
  std::shared_ptr<const Elems> elems_;
  Ref ref_;
};

/// Hash functor so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Rough byte footprint of a materialized value: payload (strings, element
/// headers, field names) rather than exact allocator overhead. Used by the
/// session memory budget and the per-query memory tracker — a consistent
/// estimate, not an accounting of malloc reality. Shared substructure is
/// counted every time it appears (a budget should see the logical size).
size_t EstimateValueBytes(const Value& v);

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_VALUE_H_
