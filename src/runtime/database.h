// In-memory object store: one vector of objects per class, addressed by
// (class name, oid) references.
//
// Objects are record Values; relationship attributes hold Ref values (or
// collections of Refs). Path navigation `e.manager.children` dereferences
// through the store.

#ifndef LAMBDADB_RUNTIME_DATABASE_H_
#define LAMBDADB_RUNTIME_DATABASE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/runtime/schema.h"
#include "src/runtime/value.h"

namespace ldb {

/// An in-memory OODB instance: a schema plus populated class extents.
class Database {
 public:
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Inserts an object (a tuple Value) into the class and returns a Ref to
  /// it. Throws TypeError if the class is unknown, EvalError if not a tuple.
  Value Insert(const std::string& class_name, Value object);

  /// Replaces the attributes of an existing object (used by generators to
  /// patch cyclic references after allocation). Throws on a dangling ref.
  void Update(const Value& ref, Value object);

  /// Returns the object a Ref points to. Throws EvalError on dangling refs.
  const Value& Deref(const Ref& ref) const;

  /// The whole object store of one class, indexed by oid. Lets evaluators
  /// that dereference many Refs of the same class resolve the class-name
  /// hash lookup once instead of per Deref. Throws EvalError if the class
  /// has no store.
  const std::vector<Value>& ObjectsOf(const std::string& class_name) const;

  /// Returns the extent of a class as a vector of Refs, in insertion order.
  /// Throws TypeError if `extent_name` is not a declared extent.
  const std::vector<Value>& Extent(const std::string& extent_name) const;

  /// Navigates one attribute step: if `v` is a Ref it is dereferenced first;
  /// NULL propagates to NULL (paper: every domain contains NULL and the only
  /// operations are creation and testing, so navigation from NULL yields
  /// NULL rather than an error).
  Value Navigate(const Value& v, const std::string& attr) const;

  /// Total number of stored objects, across all classes.
  size_t ObjectCount() const;

  // -- access paths (paper Section 6: "choosing access paths") --------------

  /// Builds (or rebuilds) a hash index on `extent_name` keyed by the value
  /// of `attr` of each object. NULL-keyed objects are not indexed (an
  /// equality with NULL never matches). Throws TypeError on unknown extents
  /// or attributes.
  void BuildIndex(const std::string& extent_name, const std::string& attr);

  /// True if BuildIndex was called for (extent, attr).
  bool HasIndex(const std::string& extent_name, const std::string& attr) const;

  /// Refs of the extent's objects whose `attr` equals `key`; empty if the
  /// index has no entry. Requires HasIndex.
  const std::vector<Value>& IndexLookup(const std::string& extent_name,
                                        const std::string& attr,
                                        const Value& key) const;

  /// Records that (extent, attr) should carry an index without building it.
  /// LoadDatabase uses this for the dump's `index` records so loading stays
  /// cheap; RebuildIndexes turns declarations into live indexes. Throws
  /// TypeError on unknown extents or attributes.
  void DeclareIndex(const std::string& extent_name, const std::string& attr);

  /// Every (extent, attr) pair this database indexes: built ones plus
  /// declared-but-unbuilt ones, sorted, deduplicated. Feeds DumpDatabase and
  /// RebuildIndexes.
  std::vector<std::pair<std::string, std::string>> IndexSpecs() const;

 private:
  Schema schema_;
  std::map<std::string, std::vector<Value>> objects_;  // class -> objects
  std::map<std::string, std::vector<Value>> extents_;  // extent -> refs

  using IndexKey = std::pair<std::string, std::string>;  // (extent, attr)
  using IndexMap = std::unordered_map<Value, std::vector<Value>, ValueHash>;
  std::map<IndexKey, IndexMap> indexes_;
  std::vector<IndexKey> declared_;  // DeclareIndex'd, not yet built
};

/// Builds every declared-but-unbuilt index (Database::IndexSpecs). The dump
/// format records index declarations but not their contents, so a loaded
/// database answers HasIndex false until this runs; the query service calls
/// it right after LoadDatabase so index-backed access paths keep firing
/// across a serialize round-trip.
void RebuildIndexes(Database& db);

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_DATABASE_H_
