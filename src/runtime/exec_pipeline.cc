#include "src/runtime/exec_pipeline.h"

#include <unordered_map>
#include <vector>

#include "src/runtime/error.h"

namespace ldb {

namespace {

// -- leaf iterators ----------------------------------------------------------

class UnitRowIter : public RowIterator {
 public:
  void Open() override { done_ = false; }
  bool Next(Env* out) override {
    if (done_) return false;
    done_ = true;
    *out = Env();
    return true;
  }

 private:
  bool done_ = true;
};

class TableScanIter : public RowIterator {
 public:
  TableScanIter(const PhysOp& op, ExprEvaluator* ev) : op_(op), ev_(ev) {}

  void Open() override { pos_ = 0; }
  bool Next(Env* out) override {
    const std::vector<Value>& extent = ev_->db().Extent(op_.extent);
    while (pos_ < extent.size()) {
      Env env;
      env.Bind(op_.var, extent[pos_++]);
      if (ev_->EvalPred(op_.pred, env)) {
        *out = std::move(env);
        return true;
      }
    }
    return false;
  }

 private:
  const PhysOp& op_;
  ExprEvaluator* ev_;
  size_t pos_ = 0;
};

class IndexScanIter : public RowIterator {
 public:
  IndexScanIter(const PhysOp& op, ExprEvaluator* ev) : op_(op), ev_(ev) {}

  void Open() override {
    pos_ = 0;
    Value key = ev_->Eval(op_.index_key, Env());
    bucket_ = key.is_null()
                  ? nullptr  // = NULL never matches
                  : &ev_->db().IndexLookup(op_.extent, op_.index_attr, key);
  }
  bool Next(Env* out) override {
    if (bucket_ == nullptr) return false;
    while (pos_ < bucket_->size()) {
      Env env;
      env.Bind(op_.var, (*bucket_)[pos_++]);
      if (ev_->EvalPred(op_.pred, env)) {
        *out = std::move(env);
        return true;
      }
    }
    return false;
  }

 private:
  const PhysOp& op_;
  ExprEvaluator* ev_;
  const std::vector<Value>* bucket_ = nullptr;
  size_t pos_ = 0;
};

// -- streaming unary iterators ----------------------------------------------

class FilterIter : public RowIterator {
 public:
  FilterIter(const PhysOp& op, std::unique_ptr<RowIterator> child,
             ExprEvaluator* ev)
      : op_(op), child_(std::move(child)), ev_(ev) {}

  void Open() override { child_->Open(); }
  bool Next(Env* out) override {
    Env env;
    while (child_->Next(&env)) {
      if (ev_->EvalPred(op_.pred, env)) {
        *out = std::move(env);
        return true;
      }
    }
    return false;
  }
  void Close() override { child_->Close(); }

 private:
  const PhysOp& op_;
  std::unique_ptr<RowIterator> child_;
  ExprEvaluator* ev_;
};

class UnnestIter : public RowIterator {
 public:
  UnnestIter(const PhysOp& op, std::unique_ptr<RowIterator> child,
             ExprEvaluator* ev)
      : op_(op), outer_(op.kind == PhysKind::kOuterUnnest),
        child_(std::move(child)), ev_(ev) {}

  void Open() override {
    child_->Open();
    have_row_ = false;
  }

  bool Next(Env* out) override {
    while (true) {
      if (!have_row_) {
        if (!child_->Next(&current_)) return false;
        Value coll = ev_->Eval(op_.path, current_);
        elems_ = coll.is_null() ? nullptr
                                : std::make_shared<const Elems>(coll.AsElems());
        pos_ = 0;
        emitted_ = false;
        have_row_ = true;
      }
      if (elems_ != nullptr) {
        while (pos_ < elems_->size()) {
          Env env = current_.With(op_.var, (*elems_)[pos_++]);
          if (ev_->EvalPred(op_.pred, env)) {
            emitted_ = true;
            *out = std::move(env);
            return true;
          }
        }
      }
      have_row_ = false;
      if (outer_ && !emitted_) {
        *out = current_.With(op_.var, Value::Null());
        return true;
      }
    }
  }
  void Close() override { child_->Close(); }

 private:
  const PhysOp& op_;
  bool outer_;
  std::unique_ptr<RowIterator> child_;
  ExprEvaluator* ev_;
  Env current_;
  std::shared_ptr<const Elems> elems_;
  size_t pos_ = 0;
  bool have_row_ = false;
  bool emitted_ = false;
};

// -- joins -------------------------------------------------------------------

Env Concat(const Env& a, const Env& b) {
  Env out = a;
  for (const auto& [v, val] : b.bindings()) out.Bind(v, val);
  return out;
}

Env PadNulls(const Env& a, const std::vector<std::string>& vars) {
  Env out = a;
  for (const std::string& v : vars) out.Bind(v, Value::Null());
  return out;
}

// Buffers the right child on Open; iterates it per left row.
class NLJoinIter : public RowIterator {
 public:
  NLJoinIter(const PhysOp& op, std::unique_ptr<RowIterator> left,
             std::unique_ptr<RowIterator> right, ExprEvaluator* ev)
      : op_(op), outer_(op.kind == PhysKind::kNLOuterJoin),
        left_(std::move(left)), right_(std::move(right)), ev_(ev) {}

  void Open() override {
    left_->Open();
    right_->Open();
    buffer_.clear();
    Env env;
    while (right_->Next(&env)) buffer_.push_back(env);
    right_->Close();
    have_row_ = false;
  }

  bool Next(Env* out) override {
    while (true) {
      if (!have_row_) {
        if (!left_->Next(&current_)) return false;
        pos_ = 0;
        matched_ = false;
        have_row_ = true;
      }
      while (pos_ < buffer_.size()) {
        Env merged = Concat(current_, buffer_[pos_++]);
        if (ev_->EvalPred(op_.pred, merged)) {
          matched_ = true;
          *out = std::move(merged);
          return true;
        }
      }
      have_row_ = false;
      if (outer_ && !matched_) {
        *out = PadNulls(current_, op_.pad_vars);
        return true;
      }
    }
  }
  void Close() override {
    left_->Close();
    buffer_.clear();
  }

 private:
  const PhysOp& op_;
  bool outer_;
  std::unique_ptr<RowIterator> left_, right_;
  ExprEvaluator* ev_;
  std::vector<Env> buffer_;
  Env current_;
  size_t pos_ = 0;
  bool have_row_ = false;
  bool matched_ = false;
};

// Builds a hash table from the build side on Open; streams the probe side.
class HashJoinIter : public RowIterator {
 public:
  HashJoinIter(const PhysOp& op, std::unique_ptr<RowIterator> left,
               std::unique_ptr<RowIterator> right, ExprEvaluator* ev)
      : op_(op), outer_(op.kind == PhysKind::kHashOuterJoin),
        left_(std::move(left)), right_(std::move(right)), ev_(ev) {}

  void Open() override {
    // Probe side streams: for an outer join it is always the left child; for
    // inner joins the planner may have flipped the build side.
    RowIterator* build = op_.build_is_left ? left_.get() : right_.get();
    probe_ = op_.build_is_left ? right_.get() : left_.get();
    build->Open();
    probe_->Open();
    table_.clear();
    Env env;
    while (build->Next(&env)) {
      Value key = EvalKey(op_.build_keys, env);
      if (!key.is_null()) table_[key].push_back(env);
    }
    build->Close();
    have_row_ = false;
  }

  bool Next(Env* out) override {
    while (true) {
      if (!have_row_) {
        if (!probe_->Next(&current_)) return false;
        Value key = EvalKey(op_.probe_keys, current_);
        bucket_ = nullptr;
        if (!key.is_null()) {
          auto it = table_.find(key);
          if (it != table_.end()) bucket_ = &it->second;
        }
        pos_ = 0;
        matched_ = false;
        have_row_ = true;
      }
      if (bucket_ != nullptr) {
        while (pos_ < bucket_->size()) {
          // Keep left-side bindings first regardless of build side.
          const Env& build_env = (*bucket_)[pos_++];
          Env merged = op_.build_is_left ? Concat(build_env, current_)
                                         : Concat(current_, build_env);
          if (ev_->EvalPred(op_.pred, merged)) {
            matched_ = true;
            *out = std::move(merged);
            return true;
          }
        }
      }
      have_row_ = false;
      if (outer_ && !matched_) {
        *out = PadNulls(current_, op_.pad_vars);
        return true;
      }
    }
  }
  void Close() override {
    left_->Close();
    right_->Close();
    table_.clear();
  }

 private:
  Value EvalKey(const std::vector<ExprPtr>& keys, const Env& env) {
    Elems parts;
    parts.reserve(keys.size());
    for (const ExprPtr& k : keys) {
      Value v = ev_->Eval(k, env);
      if (v.is_null()) return Value::Null();  // = NULL never matches
      parts.push_back(std::move(v));
    }
    return Value::List(std::move(parts));
  }

  const PhysOp& op_;
  bool outer_;
  std::unique_ptr<RowIterator> left_, right_;
  RowIterator* probe_ = nullptr;
  ExprEvaluator* ev_;
  std::unordered_map<Value, std::vector<Env>, ValueHash> table_;
  Env current_;
  const std::vector<Env>* bucket_ = nullptr;
  size_t pos_ = 0;
  bool have_row_ = false;
  bool matched_ = false;
};

// -- grouping (blocking) ------------------------------------------------------

class HashNestIter : public RowIterator {
 public:
  HashNestIter(const PhysOp& op, std::unique_ptr<RowIterator> child,
               ExprEvaluator* ev)
      : op_(op), child_(std::move(child)), ev_(ev) {}

  void Open() override {
    child_->Open();
    groups_.clear();
    index_.clear();
    Env env;
    while (child_->Next(&env)) {
      Elems key;
      key.reserve(op_.group_by.size());
      for (const auto& [name, expr] : op_.group_by) {
        key.push_back(ev_->Eval(expr, env));
      }
      Value key_value = Value::List(key);
      auto [it, inserted] = index_.emplace(key_value, groups_.size());
      if (inserted) groups_.push_back(Group{std::move(key), Accumulator(op_.monoid)});
      Group& g = groups_[it->second];
      bool padded = false;
      for (const std::string& v : op_.null_vars) {
        const Value* val = env.Lookup(v);
        LDB_INTERNAL_CHECK(val != nullptr, "nest null-var not bound");
        if (val->is_null()) {
          padded = true;
          break;
        }
      }
      if (!padded && ev_->EvalPred(op_.pred, env)) {
        g.acc.Add(ev_->Eval(op_.head, env));
      }
    }
    child_->Close();
    // Scalar aggregation (no keys) always yields one row (see eval_algebra).
    if (op_.group_by.empty() && groups_.empty()) {
      groups_.push_back(Group{{}, Accumulator(op_.monoid)});
    }
    pos_ = 0;
  }

  bool Next(Env* out) override {
    if (pos_ >= groups_.size()) return false;
    Group& g = groups_[pos_++];
    Env env;
    for (size_t i = 0; i < op_.group_by.size(); ++i) {
      env.Bind(op_.group_by[i].first, g.key[i]);
    }
    env.Bind(op_.var, g.acc.Finish());
    *out = std::move(env);
    return true;
  }
  void Close() override {
    groups_.clear();
    index_.clear();
  }

 private:
  struct Group {
    Elems key;
    Accumulator acc;
  };
  const PhysOp& op_;
  std::unique_ptr<RowIterator> child_;
  ExprEvaluator* ev_;
  std::vector<Group> groups_;
  std::unordered_map<Value, size_t, ValueHash> index_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<RowIterator> MakeIterator(const PhysPtr& op, ExprEvaluator* ev) {
  LDB_INTERNAL_CHECK(op != nullptr, "null physical operator");
  switch (op->kind) {
    case PhysKind::kUnitRow:
      return std::make_unique<UnitRowIter>();
    case PhysKind::kTableScan:
      return std::make_unique<TableScanIter>(*op, ev);
    case PhysKind::kIndexScan:
      return std::make_unique<IndexScanIter>(*op, ev);
    case PhysKind::kFilter:
      return std::make_unique<FilterIter>(*op, MakeIterator(op->left, ev), ev);
    case PhysKind::kUnnest:
    case PhysKind::kOuterUnnest:
      return std::make_unique<UnnestIter>(*op, MakeIterator(op->left, ev), ev);
    case PhysKind::kNLJoin:
    case PhysKind::kNLOuterJoin:
      return std::make_unique<NLJoinIter>(*op, MakeIterator(op->left, ev),
                                          MakeIterator(op->right, ev), ev);
    case PhysKind::kHashJoin:
    case PhysKind::kHashOuterJoin:
      return std::make_unique<HashJoinIter>(*op, MakeIterator(op->left, ev),
                                            MakeIterator(op->right, ev), ev);
    case PhysKind::kHashNest:
      return std::make_unique<HashNestIter>(*op, MakeIterator(op->left, ev), ev);
    case PhysKind::kReduce:
      throw InternalError("reduce is driven by ExecutePipelined, not pulled");
  }
  throw InternalError("unhandled physical operator");
}

Value ExecutePipelined(const PhysPtr& plan, const Database& db) {
  LDB_INTERNAL_CHECK(plan && plan->kind == PhysKind::kReduce,
                     "pipelined execution expects a Reduce root");
  ExprEvaluator ev(db);
  std::unique_ptr<RowIterator> input = MakeIterator(plan->left, &ev);
  input->Open();
  Accumulator acc(plan->monoid);
  Env env;
  while (input->Next(&env)) {
    if (!ev.EvalPred(plan->pred, env)) continue;
    acc.Add(ev.Eval(plan->head, env));
    if (acc.Saturated()) break;  // the pipeline stops pulling here
  }
  input->Close();
  return acc.Finish();
}

}  // namespace ldb
