#include "src/runtime/exec_pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/monoid.h"
#include "src/core/thread_annotations.h"
#include "src/obs/resource.h"
#include "src/runtime/cancel.h"
#include "src/runtime/error.h"
#include "src/runtime/profile.h"

namespace ldb {

namespace {

// Cooperative cancellation poll (docs/SERVICE.md). Free when no token is
// attached (one pointer test); one relaxed atomic load when attached; a
// steady-clock read additionally only when the token armed a deadline.
inline void PollCancel(const CancelToken* cancel) {
  if (cancel != nullptr) cancel->ThrowIfCancelled();
}

// -- memory accounting helpers -----------------------------------------------
//
// The operators that hold state (join builds, nest groups, collection folds)
// charge their buffered bytes through the owning evaluator's MemoryTracker
// (src/obs/resource.h) and release them in Close() AND the destructor, so an
// abort unwind (cancel, budget, error) leaves no reservation behind. Byte
// sizing is gated on `tracker.armed() || stats != nullptr` at every site —
// untracked unprofiled runs never walk a value.

size_t EnvRowBytes(const Env& env) {
  size_t b = 0;
  for (const auto& [name, v] : env.bindings()) {
    b += name.size() + EstimateValueBytes(v);
  }
  return b;
}

// Publishes root-fold rows into the resource context in batches of 1024
// (the live rows-so-far of the active-query view; docs/OBSERVABILITY.md)
// and flushes the remainder on scope exit, including unwinds.
struct RowPulse {
  obs::QueryResourceContext* rc;
  uint64_t pending = 0;
  void Tick() {
    if (rc != nullptr && (++pending & 1023u) == 0) rc->AddRows(1024);
  }
  ~RowPulse() {
    if (rc != nullptr) rc->AddRows(pending & 1023u);
  }
};

// Releases a root fold's collection-element charges on scope exit: the
// result Value leaves the engine when the fold finishes, so its bytes stop
// being engine-held exactly then (and a fold abort must return them too).
struct FoldChargeGuard {
  obs::MemoryTracker* mem;
  const size_t* charged;
  ~FoldChargeGuard() {
    if (*charged > 0) {
      mem->Release(static_cast<int>(PhysKind::kReduce), *charged);
    }
  }
};

// -- profiling helpers -------------------------------------------------------
//
// Profiling is gated on ExecOptions::profiler. When it is null the iterator
// trees below are built exactly as before (no decorator, no per-row branch);
// when set, every operator is wrapped in a timing/counting decorator and the
// operators that buffer state (joins, nests) additionally report build sizes
// through a nullable OperatorStats* they carry.

using ProfClock = std::chrono::steady_clock;

double NsSince(ProfClock::time_point t0) {
  return std::chrono::duration<double, std::nano>(ProfClock::now() - t0)
      .count();
}

// Flushes a serial run's root-row count into ExecOptions::totals on scope
// exit, so a QueryCancelled unwind still reports the partial total. The
// counter stays a plain local on the fold loop's hot path.
struct SerialTotalsGuard {
  ExecTotals* totals;
  const uint64_t* rows;
  ~SerialTotalsGuard() {
    if (totals != nullptr) {
      totals->root_rows += *rows;
      totals->mode = "serial";
    }
  }
};

// Short operator label: the kind plus the extent for scans.
std::string ProfLabel(PhysKind kind, const std::string& extent) {
  std::string out = PhysKindName(kind);
  if (!extent.empty()) {
    out += '(';
    out += extent;
    out += ')';
  }
  return out;
}

// ===========================================================================
// Legacy Env engine (reference implementation; see header).
// ===========================================================================

// Counting/timing decorator around any Env iterator.
class ProfiledRowIter : public RowIterator {
 public:
  ProfiledRowIter(std::unique_ptr<RowIterator> inner, OperatorStats* stats)
      : inner_(std::move(inner)), stats_(stats) {}

  void Open() override {
    ++stats_->opens;
    auto t0 = ProfClock::now();
    inner_->Open();
    stats_->open_ns += NsSince(t0);
  }
  bool Next(Env* out) override {
    ++stats_->next_calls;
    auto t0 = ProfClock::now();
    bool ok = inner_->Next(out);
    stats_->next_ns += NsSince(t0);
    if (ok) ++stats_->rows_out;
    return ok;
  }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<RowIterator> inner_;
  OperatorStats* stats_;
};

// -- leaf iterators ----------------------------------------------------------

class UnitRowIter : public RowIterator {
 public:
  void Open() override { done_ = false; }
  bool Next(Env* out) override {
    if (done_) return false;
    done_ = true;
    *out = Env();
    return true;
  }

 private:
  bool done_ = true;
};

class TableScanIter : public RowIterator {
 public:
  TableScanIter(const PhysOp& op, ExprEvaluator* ev) : op_(op), ev_(ev) {}

  void Open() override {
    extent_ = &ev_->db().Extent(op_.extent);
    pos_ = 0;
  }
  bool Next(Env* out) override {
    while (pos_ < extent_->size()) {
      PollCancel(ev_->cancel());
      Env env;
      env.Bind(op_.var, (*extent_)[pos_++]);
      if (ev_->EvalPred(op_.pred, env)) {
        *out = std::move(env);
        return true;
      }
    }
    return false;
  }

 private:
  const PhysOp& op_;
  ExprEvaluator* ev_;
  const std::vector<Value>* extent_ = nullptr;
  size_t pos_ = 0;
};

class IndexScanIter : public RowIterator {
 public:
  IndexScanIter(const PhysOp& op, ExprEvaluator* ev) : op_(op), ev_(ev) {}

  void Open() override {
    pos_ = 0;
    Value key = ev_->Eval(op_.index_key, Env());
    bucket_ = key.is_null()
                  ? nullptr  // = NULL never matches
                  : &ev_->db().IndexLookup(op_.extent, op_.index_attr, key);
  }
  bool Next(Env* out) override {
    if (bucket_ == nullptr) return false;
    while (pos_ < bucket_->size()) {
      Env env;
      env.Bind(op_.var, (*bucket_)[pos_++]);
      if (ev_->EvalPred(op_.pred, env)) {
        *out = std::move(env);
        return true;
      }
    }
    return false;
  }

 private:
  const PhysOp& op_;
  ExprEvaluator* ev_;
  const std::vector<Value>* bucket_ = nullptr;
  size_t pos_ = 0;
};

// -- streaming unary iterators ----------------------------------------------

class FilterIter : public RowIterator {
 public:
  FilterIter(const PhysOp& op, std::unique_ptr<RowIterator> child,
             ExprEvaluator* ev)
      : op_(op), child_(std::move(child)), ev_(ev) {}

  void Open() override { child_->Open(); }
  bool Next(Env* out) override {
    Env env;
    while (child_->Next(&env)) {
      if (ev_->EvalPred(op_.pred, env)) {
        *out = std::move(env);
        return true;
      }
    }
    return false;
  }
  void Close() override { child_->Close(); }

 private:
  const PhysOp& op_;
  std::unique_ptr<RowIterator> child_;
  ExprEvaluator* ev_;
};

class UnnestIter : public RowIterator {
 public:
  UnnestIter(const PhysOp& op, std::unique_ptr<RowIterator> child,
             ExprEvaluator* ev)
      : op_(op), outer_(op.kind == PhysKind::kOuterUnnest),
        child_(std::move(child)), ev_(ev) {}

  void Open() override {
    child_->Open();
    have_row_ = false;
  }

  bool Next(Env* out) override {
    while (true) {
      if (!have_row_) {
        if (!child_->Next(&current_)) return false;
        // Keep the collection Value alive and walk its elements in place
        // (a shared_ptr hop) instead of deep-copying them per outer row.
        coll_ = ev_->Eval(op_.path, current_);
        elems_ = coll_.is_null() ? nullptr : &coll_.AsElems();
        pos_ = 0;
        emitted_ = false;
        have_row_ = true;
      }
      if (elems_ != nullptr) {
        while (pos_ < elems_->size()) {
          Env env = current_.With(op_.var, (*elems_)[pos_++]);
          if (ev_->EvalPred(op_.pred, env)) {
            emitted_ = true;
            *out = std::move(env);
            return true;
          }
        }
      }
      have_row_ = false;
      if (outer_ && !emitted_) {
        *out = current_.With(op_.var, Value::Null());
        return true;
      }
    }
  }
  void Close() override { child_->Close(); }

 private:
  const PhysOp& op_;
  bool outer_;
  std::unique_ptr<RowIterator> child_;
  ExprEvaluator* ev_;
  Env current_;
  Value coll_;
  const Elems* elems_ = nullptr;
  size_t pos_ = 0;
  bool have_row_ = false;
  bool emitted_ = false;
};

// -- joins -------------------------------------------------------------------

Env Concat(const Env& a, const Env& b) {
  Env out = a;
  for (const auto& [v, val] : b.bindings()) out.Bind(v, val);
  return out;
}

Env PadNulls(const Env& a, const std::vector<std::string>& vars) {
  Env out = a;
  for (const std::string& v : vars) out.Bind(v, Value::Null());
  return out;
}

// Buffers the right child on Open; iterates it per left row.
class NLJoinIter : public RowIterator {
 public:
  NLJoinIter(const PhysOp& op, std::unique_ptr<RowIterator> left,
             std::unique_ptr<RowIterator> right, ExprEvaluator* ev)
      : op_(op), outer_(op.kind == PhysKind::kNLOuterJoin),
        left_(std::move(left)), right_(std::move(right)), ev_(ev) {}

  ~NLJoinIter() override { ReleaseCharge(); }

  void set_stats(OperatorStats* s) { stats_ = s; }

  void Open() override {
    ReleaseCharge();
    left_->Open();
    right_->Open();
    buffer_.clear();
    Env env;
    const bool sized = ev_->mem().armed() || stats_ != nullptr;
    while (right_->Next(&env)) {
      PollCancel(ev_->cancel());
      if (sized) {
        size_t b = EnvRowBytes(env);
        if (stats_) stats_->mem_bytes += b;
        charged_ += b;
        ev_->mem().Charge(static_cast<int>(op_.kind), b);
      }
      buffer_.push_back(env);
    }
    right_->Close();
    if (stats_) stats_->build_rows += buffer_.size();
    have_row_ = false;
  }

  bool Next(Env* out) override {
    while (true) {
      if (!have_row_) {
        if (!left_->Next(&current_)) return false;
        pos_ = 0;
        matched_ = false;
        have_row_ = true;
      }
      while (pos_ < buffer_.size()) {
        Env merged = Concat(current_, buffer_[pos_++]);
        if (ev_->EvalPred(op_.pred, merged)) {
          matched_ = true;
          *out = std::move(merged);
          return true;
        }
      }
      have_row_ = false;
      if (outer_ && !matched_) {
        *out = PadNulls(current_, op_.pad_vars);
        return true;
      }
    }
  }
  void Close() override {
    left_->Close();
    buffer_.clear();
    ReleaseCharge();
  }

 private:
  void ReleaseCharge() {
    if (charged_ > 0) {
      ev_->mem().Release(static_cast<int>(op_.kind), charged_);
      charged_ = 0;
    }
  }

  const PhysOp& op_;
  bool outer_;
  std::unique_ptr<RowIterator> left_, right_;
  ExprEvaluator* ev_;
  OperatorStats* stats_ = nullptr;
  size_t charged_ = 0;
  std::vector<Env> buffer_;
  Env current_;
  size_t pos_ = 0;
  bool have_row_ = false;
  bool matched_ = false;
};

// Builds a hash table from the build side on Open; streams the probe side.
class HashJoinIter : public RowIterator {
 public:
  HashJoinIter(const PhysOp& op, std::unique_ptr<RowIterator> left,
               std::unique_ptr<RowIterator> right, ExprEvaluator* ev)
      : op_(op), outer_(op.kind == PhysKind::kHashOuterJoin),
        left_(std::move(left)), right_(std::move(right)), ev_(ev) {}

  ~HashJoinIter() override { ReleaseCharge(); }

  void set_stats(OperatorStats* s) { stats_ = s; }

  void Open() override {
    ReleaseCharge();
    // Probe side streams: for an outer join it is always the left child; for
    // inner joins the planner may have flipped the build side.
    RowIterator* build = op_.build_is_left ? left_.get() : right_.get();
    probe_ = op_.build_is_left ? right_.get() : left_.get();
    build->Open();
    probe_->Open();
    table_.clear();
    Env env;
    size_t built = 0;
    const bool sized = ev_->mem().armed() || stats_ != nullptr;
    while (build->Next(&env)) {
      PollCancel(ev_->cancel());
      Value key = EvalKey(op_.build_keys, env);
      if (!key.is_null()) {
        if (sized) {
          size_t b = EnvRowBytes(env);
          if (stats_) stats_->mem_bytes += b;
          charged_ += b;
          ev_->mem().Charge(static_cast<int>(op_.kind), b);
        }
        table_[key].push_back(env);
        ++built;
      }
    }
    build->Close();
    if (stats_) stats_->build_rows += built;
    have_row_ = false;
  }

  bool Next(Env* out) override {
    while (true) {
      if (!have_row_) {
        if (!probe_->Next(&current_)) return false;
        Value key = EvalKey(op_.probe_keys, current_);
        bucket_ = nullptr;
        if (!key.is_null()) {
          auto it = table_.find(key);
          if (it != table_.end()) bucket_ = &it->second;
        }
        pos_ = 0;
        matched_ = false;
        have_row_ = true;
      }
      if (bucket_ != nullptr) {
        while (pos_ < bucket_->size()) {
          // Keep left-side bindings first regardless of build side.
          const Env& build_env = (*bucket_)[pos_++];
          Env merged = op_.build_is_left ? Concat(build_env, current_)
                                         : Concat(current_, build_env);
          if (ev_->EvalPred(op_.pred, merged)) {
            matched_ = true;
            *out = std::move(merged);
            return true;
          }
        }
      }
      have_row_ = false;
      if (outer_ && !matched_) {
        *out = PadNulls(current_, op_.pad_vars);
        return true;
      }
    }
  }
  void Close() override {
    left_->Close();
    right_->Close();
    table_.clear();
    ReleaseCharge();
  }

 private:
  void ReleaseCharge() {
    if (charged_ > 0) {
      ev_->mem().Release(static_cast<int>(op_.kind), charged_);
      charged_ = 0;
    }
  }

  Value EvalKey(const std::vector<ExprPtr>& keys, const Env& env) {
    Elems parts;
    parts.reserve(keys.size());
    for (const ExprPtr& k : keys) {
      Value v = ev_->Eval(k, env);
      if (v.is_null()) return Value::Null();  // = NULL never matches
      parts.push_back(std::move(v));
    }
    return Value::List(std::move(parts));
  }

  const PhysOp& op_;
  bool outer_;
  std::unique_ptr<RowIterator> left_, right_;
  RowIterator* probe_ = nullptr;
  ExprEvaluator* ev_;
  OperatorStats* stats_ = nullptr;
  size_t charged_ = 0;
  std::unordered_map<Value, std::vector<Env>, ValueHash> table_;
  Env current_;
  const std::vector<Env>* bucket_ = nullptr;
  size_t pos_ = 0;
  bool have_row_ = false;
  bool matched_ = false;
};

// -- grouping (blocking) ------------------------------------------------------

class HashNestIter : public RowIterator {
 public:
  HashNestIter(const PhysOp& op, std::unique_ptr<RowIterator> child,
               ExprEvaluator* ev)
      : op_(op), child_(std::move(child)), ev_(ev) {}

  ~HashNestIter() override { ReleaseCharge(); }

  void set_stats(OperatorStats* s) { stats_ = s; }

  void Open() override {
    ReleaseCharge();
    child_->Open();
    groups_.clear();
    index_.clear();
    Env env;
    const bool sized = ev_->mem().armed() || stats_ != nullptr;
    const bool coll = IsCollectionMonoid(op_.monoid);
    const int cls = static_cast<int>(op_.kind);
    while (child_->Next(&env)) {
      PollCancel(ev_->cancel());
      Elems key;
      key.reserve(op_.group_by.size());
      for (const auto& [name, expr] : op_.group_by) {
        key.push_back(ev_->Eval(expr, env));
      }
      Value key_value = Value::List(key);
      auto [it, inserted] = index_.emplace(key_value, groups_.size());
      if (inserted) {
        groups_.push_back(Group{std::move(key), Accumulator(op_.monoid)});
        if (sized) {
          size_t b = EstimateValueBytes(it->first);
          if (stats_) stats_->mem_bytes += b;
          charged_ += b;
          ev_->mem().Charge(cls, b);
        }
      }
      Group& g = groups_[it->second];
      bool padded = false;
      for (const std::string& v : op_.null_vars) {
        const Value* val = env.Lookup(v);
        LDB_INTERNAL_CHECK(val != nullptr, "nest null-var not bound");
        if (val->is_null()) {
          padded = true;
          break;
        }
      }
      if (!padded && ev_->EvalPred(op_.pred, env)) {
        Value hv = ev_->Eval(op_.head, env);
        // Scalar monoids fold into O(1) state; only collection monoids
        // retain each head value, so only those bytes count as buffered.
        if (sized && coll) {
          size_t b = EstimateValueBytes(hv);
          if (stats_) stats_->mem_bytes += b;
          charged_ += b;
          ev_->mem().Charge(cls, b);
        }
        g.acc.Add(std::move(hv));
      }
    }
    child_->Close();
    // Scalar aggregation (no keys) always yields one row (see eval_algebra).
    if (op_.group_by.empty() && groups_.empty()) {
      groups_.push_back(Group{{}, Accumulator(op_.monoid)});
    }
    if (stats_) stats_->groups += groups_.size();
    pos_ = 0;
  }

  bool Next(Env* out) override {
    if (pos_ >= groups_.size()) return false;
    Group& g = groups_[pos_++];
    Env env;
    for (size_t i = 0; i < op_.group_by.size(); ++i) {
      env.Bind(op_.group_by[i].first, g.key[i]);
    }
    env.Bind(op_.var, g.acc.Finish());
    *out = std::move(env);
    return true;
  }
  void Close() override {
    groups_.clear();
    index_.clear();
    ReleaseCharge();
  }

 private:
  void ReleaseCharge() {
    if (charged_ > 0) {
      ev_->mem().Release(static_cast<int>(op_.kind), charged_);
      charged_ = 0;
    }
  }

  struct Group {
    Elems key;
    Accumulator acc;
  };
  const PhysOp& op_;
  std::unique_ptr<RowIterator> child_;
  ExprEvaluator* ev_;
  OperatorStats* stats_ = nullptr;
  size_t charged_ = 0;
  std::vector<Group> groups_;
  std::unordered_map<Value, size_t, ValueHash> index_;
  size_t pos_ = 0;
};

// Builds the Env iterator tree with every operator wrapped in a profiling
// decorator. Ids are assigned in pre-order (left subtree before right), the
// exact numbering CompileSlotPlan uses, so Env and slot profiles of the same
// plan line up operator by operator. *next_id enters as this subtree's id.
std::unique_ptr<RowIterator> MakeProfiledEnvIter(const PhysPtr& op,
                                                 ExprEvaluator* ev,
                                                 QueryProfiler* prof,
                                                 int* next_id) {
  LDB_INTERNAL_CHECK(op != nullptr, "null physical operator");
  const int id = (*next_id)++;
  OperatorStats* stats =
      prof->Register(id, op->kind, ProfLabel(op->kind, op->extent));
  std::unique_ptr<RowIterator> inner;
  switch (op->kind) {
    case PhysKind::kUnitRow:
      inner = std::make_unique<UnitRowIter>();
      break;
    case PhysKind::kTableScan:
      inner = std::make_unique<TableScanIter>(*op, ev);
      break;
    case PhysKind::kIndexScan:
      inner = std::make_unique<IndexScanIter>(*op, ev);
      break;
    case PhysKind::kFilter:
      inner = std::make_unique<FilterIter>(
          *op, MakeProfiledEnvIter(op->left, ev, prof, next_id), ev);
      break;
    case PhysKind::kUnnest:
    case PhysKind::kOuterUnnest:
      inner = std::make_unique<UnnestIter>(
          *op, MakeProfiledEnvIter(op->left, ev, prof, next_id), ev);
      break;
    case PhysKind::kNLJoin:
    case PhysKind::kNLOuterJoin: {
      auto left = MakeProfiledEnvIter(op->left, ev, prof, next_id);
      auto right = MakeProfiledEnvIter(op->right, ev, prof, next_id);
      auto join = std::make_unique<NLJoinIter>(*op, std::move(left),
                                               std::move(right), ev);
      join->set_stats(stats);
      inner = std::move(join);
      break;
    }
    case PhysKind::kHashJoin:
    case PhysKind::kHashOuterJoin: {
      auto left = MakeProfiledEnvIter(op->left, ev, prof, next_id);
      auto right = MakeProfiledEnvIter(op->right, ev, prof, next_id);
      auto join = std::make_unique<HashJoinIter>(*op, std::move(left),
                                                 std::move(right), ev);
      join->set_stats(stats);
      inner = std::move(join);
      break;
    }
    case PhysKind::kHashNest: {
      auto nest = std::make_unique<HashNestIter>(
          *op, MakeProfiledEnvIter(op->left, ev, prof, next_id), ev);
      nest->set_stats(stats);
      inner = std::move(nest);
      break;
    }
    case PhysKind::kReduce:
      throw InternalError("reduce is driven by ExecuteEnvPipeline, not pulled");
  }
  return std::make_unique<ProfiledRowIter>(std::move(inner), stats);
}

Value ExecuteEnvPipeline(const PhysPtr& plan, const Database& db,
                         const ExecOptions& options) {
  QueryProfiler* prof = options.profiler;
  ExprEvaluator ev(db);
  ev.SetParams(options.params);
  ev.SetCancel(options.cancel);
  ev.SetResource(options.resource);
  Accumulator acc(plan->monoid);
  Env env;
  uint64_t folded = 0;
  SerialTotalsGuard totals_guard{options.totals, &folded};
  RowPulse pulse{options.resource};
  const bool fold_sized = ev.mem().armed() && IsCollectionMonoid(plan->monoid);
  size_t fold_charged = 0;
  FoldChargeGuard fold_guard{&ev.mem(), &fold_charged};
  if (prof == nullptr) {
    std::unique_ptr<RowIterator> input = MakeIterator(plan->left, &ev);
    input->Open();
    while (input->Next(&env)) {
      PollCancel(options.cancel);
      if (!ev.EvalPred(plan->pred, env)) continue;
      Value hv = ev.Eval(plan->head, env);
      if (fold_sized) {
        size_t b = EstimateValueBytes(hv);
        fold_charged += b;
        ev.mem().Charge(static_cast<int>(PhysKind::kReduce), b);
      }
      acc.Add(std::move(hv));
      ++folded;
      pulse.Tick();
      if (acc.Saturated()) break;  // the pipeline stops pulling here
    }
    input->Close();
    return acc.Finish();
  }
  auto wall0 = ProfClock::now();
  prof->parallel_mode = "serial";
  int next_id = 0;
  OperatorStats* rstats =
      prof->Register(next_id++, PhysKind::kReduce, "Reduce");
  std::unique_ptr<RowIterator> input =
      MakeProfiledEnvIter(plan->left, &ev, prof, &next_id);
  input->Open();
  ++rstats->opens;
  auto t0 = ProfClock::now();
  while (input->Next(&env)) {
    PollCancel(options.cancel);
    ++rstats->next_calls;
    if (!ev.EvalPred(plan->pred, env)) continue;
    Value hv = ev.Eval(plan->head, env);
    if (fold_sized) {
      size_t b = EstimateValueBytes(hv);
      rstats->mem_bytes += b;
      fold_charged += b;
      ev.mem().Charge(static_cast<int>(PhysKind::kReduce), b);
    }
    acc.Add(std::move(hv));
    ++rstats->rows_out;
    ++folded;
    pulse.Tick();
    if (acc.Saturated()) {
      ++rstats->short_circuits;
      break;
    }
  }
  rstats->next_ns += NsSince(t0);
  input->Close();
  Value result = acc.Finish();
  prof->wall_ns += NsSince(wall0);
  return result;
}

// ===========================================================================
// Slot-frame engine.
// ===========================================================================

// A buffered row: a copy of a subtree's covering slot span [out_lo, out_hi).
using BufRow = std::vector<Value>;
// Hash-join build table over span copies.
using JoinTable = std::unordered_map<Value, std::vector<BufRow>, ValueHash>;

// Build-side tables prebuilt once and shared read-only by all workers,
// keyed by the owning operator's SlotOp::id.
struct SharedTables {
  std::unordered_map<int, JoinTable> join_tables;
  std::unordered_map<int, std::vector<BufRow>> buffers;
  // (op class, bytes) charged per prebuilt table. Entries are pushed before
  // the rows charge against them, so an over-budget throw mid-build still
  // leaves every applied byte recorded; the parallel executor's scope guard
  // releases them when the tables die.
  std::vector<std::pair<int, size_t>> charges;
};

struct NestGroup {
  Elems key;
  Accumulator acc;
};

// Per-morsel (and serial) grouping state for HashNest.
struct PartialGroups {
  std::vector<NestGroup> groups;  // first-encounter order
  std::unordered_map<Value, size_t, ValueHash> index;
  size_t charged = 0;  // bytes charged for this state, updated pre-Charge so
                       // an over-budget throw still leaves it releasable
};

void LoadSpan(Frame& frame, int lo, const BufRow& row) {
  std::copy(row.begin(), row.end(), frame.begin() + lo);
}

void FillNullSpan(Frame& frame, int lo, int hi) {
  for (int i = lo; i < hi; ++i) frame[i] = Value::Null();
}

BufRow CopySpan(const Frame& frame, int lo, int hi) {
  return BufRow(frame.begin() + lo, frame.begin() + hi);
}

size_t SpanBytes(const BufRow& row) {
  size_t b = 0;
  for (const Value& v : row) b += EstimateValueBytes(v);
  return b;
}

// Composite hash key; a single-key join uses the key value directly instead
// of allocating a one-element list per row. NULL keys never match.
Value EvalKeyTuple(FrameEvaluator* fev, Frame& frame,
                   const std::vector<CExprPtr>& keys) {
  if (keys.size() == 1) return fev->Eval(*keys[0], frame);
  Elems parts;
  parts.reserve(keys.size());
  for (const CExprPtr& k : keys) {
    Value v = fev->Eval(*k, frame);
    if (v.is_null()) return Value::Null();
    parts.push_back(std::move(v));
  }
  return Value::List(std::move(parts));
}

// Probe-side variant of EvalKeyTuple: the key is only looked up, never
// stored, so a single-key probe can use the pointer path and skip the
// 128-byte Value copy per probe row.
const Value* EvalKeyPtr(FrameEvaluator* fev, Frame& frame,
                        const std::vector<CExprPtr>& keys, Value* scratch) {
  if (keys.size() == 1) return fev->EvalPtr(*keys[0], frame, scratch);
  *scratch = EvalKeyTuple(fev, frame, keys);
  return scratch;
}

// Writes the caller's parameter bindings into the plan's reserved slots.
// Every parameter the plan declares must be bound (a missing binding is an
// EvalError); extra bindings are ignored. Called once per frame — each
// executing thread (serial, prebuild, worker, tail) owns its frame, so
// parameters are plain slot reads afterwards.
void FillParams(const SlotPlan& sp, const ExecOptions& opt, Frame& frame) {
  for (const auto& [name, slot] : sp.param_slots) {
    if (opt.params != nullptr) {
      auto it = opt.params->find(name);
      if (it != opt.params->end()) {
        frame[static_cast<size_t>(slot)] = it->second;
        continue;
      }
    }
    throw EvalError("unbound parameter $" + name);
  }
}

// Routes the caller's parameter bindings (for fallback subterms),
// cancellation token, and resource context onto a thread's frame evaluator.
void ArmEvaluator(FrameEvaluator* fev, const ExecOptions& opt) {
  fev->SetParams(opt.params);
  fev->SetCancel(opt.cancel);
  fev->SetResource(opt.resource);
}

// Folds the current frame into the group table exactly the way the serial
// HashNest does; shared by the serial iterator and the parallel workers so
// grouping logic cannot drift between them. Buffered bytes (group keys, and
// head values for collection monoids) are charged through the evaluator and
// recorded in pg->charged; the caller owns the release.
void AccumulateNestRow(const SlotOp& nest, FrameEvaluator* fev, Frame& frame,
                       PartialGroups* pg, OperatorStats* stats) {
  const bool sized = fev->mem().armed() || stats != nullptr;
  Elems key;
  key.reserve(nest.group_slots.size());
  for (const auto& [slot, expr] : nest.group_slots) {
    key.push_back(fev->Eval(*expr, frame));
  }
  auto [it, inserted] = pg->index.emplace(Value::List(key), pg->groups.size());
  if (inserted) {
    pg->groups.push_back(NestGroup{std::move(key), Accumulator(nest.monoid)});
    if (sized) {
      size_t b = EstimateValueBytes(it->first);
      if (stats) stats->mem_bytes += b;
      pg->charged += b;
      fev->mem().Charge(static_cast<int>(PhysKind::kHashNest), b);
    }
  }
  NestGroup& g = pg->groups[it->second];
  bool padded = false;
  for (int s : nest.null_slots) {
    if (frame[s].is_null()) {
      padded = true;
      break;
    }
  }
  if (!padded && fev->EvalPred(*nest.pred, frame)) {
    Value scratch;
    const Value* hv = fev->EvalPtr(*nest.head, frame, &scratch);
    if (sized && IsCollectionMonoid(nest.monoid)) {
      size_t b = EstimateValueBytes(*hv);
      if (stats) stats->mem_bytes += b;
      pg->charged += b;
      fev->mem().Charge(static_cast<int>(PhysKind::kHashNest), b);
    }
    g.acc.Add(*hv);
  }
}

// Iterators communicate through the shared per-thread frame: Next() writes
// the operator's output slots and returns whether a row was produced.
class FrameIter {
 public:
  virtual ~FrameIter() = default;
  virtual void Open() = 0;
  virtual bool Next() = 0;
  virtual void Close() {}
};

// Counting/timing decorator around any frame iterator.
class FProfiledIter : public FrameIter {
 public:
  FProfiledIter(std::unique_ptr<FrameIter> inner, OperatorStats* stats)
      : inner_(std::move(inner)), stats_(stats) {}

  void Open() override {
    ++stats_->opens;
    auto t0 = ProfClock::now();
    inner_->Open();
    stats_->open_ns += NsSince(t0);
  }
  bool Next() override {
    ++stats_->next_calls;
    auto t0 = ProfClock::now();
    bool ok = inner_->Next();
    stats_->next_ns += NsSince(t0);
    if (ok) ++stats_->rows_out;
    return ok;
  }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<FrameIter> inner_;
  OperatorStats* stats_;
};

class FUnitRowIter : public FrameIter {
 public:
  void Open() override { done_ = false; }
  bool Next() override {
    if (done_) return false;
    done_ = true;
    return true;
  }

 private:
  bool done_ = true;
};

class FTableScanIter : public FrameIter {
 public:
  FTableScanIter(const SlotOp& op, FrameEvaluator* fev, Frame* frame)
      : op_(op), fev_(fev), frame_(frame) {}

  /// Restricts the scan to extent rows [lo, hi) — the morsel handed to a
  /// worker. Takes effect at the next Open().
  void SetRange(size_t lo, size_t hi) {
    ranged_ = true;
    lo_ = lo;
    hi_ = hi;
  }

  void Open() override {
    extent_ = &fev_->db().Extent(op_.extent);
    pos_ = ranged_ ? lo_ : 0;
    end_ = ranged_ ? hi_ : extent_->size();
  }
  bool Next() override {
    while (pos_ < end_) {
      PollCancel(fev_->cancel());
      (*frame_)[op_.var_slot] = (*extent_)[pos_++];
      if (fev_->EvalPred(*op_.pred, *frame_)) return true;
    }
    return false;
  }

 private:
  const SlotOp& op_;
  FrameEvaluator* fev_;
  Frame* frame_;
  const std::vector<Value>* extent_ = nullptr;
  size_t pos_ = 0, end_ = 0;
  bool ranged_ = false;
  size_t lo_ = 0, hi_ = 0;
};

class FIndexScanIter : public FrameIter {
 public:
  FIndexScanIter(const SlotOp& op, FrameEvaluator* fev, Frame* frame)
      : op_(op), fev_(fev), frame_(frame) {}

  void Open() override {
    pos_ = 0;
    Value key = fev_->Eval(*op_.index_key, *frame_);
    bucket_ = key.is_null()
                  ? nullptr  // = NULL never matches
                  : &fev_->db().IndexLookup(op_.extent, op_.index_attr, key);
  }
  bool Next() override {
    if (bucket_ == nullptr) return false;
    while (pos_ < bucket_->size()) {
      (*frame_)[op_.var_slot] = (*bucket_)[pos_++];
      if (fev_->EvalPred(*op_.pred, *frame_)) return true;
    }
    return false;
  }

 private:
  const SlotOp& op_;
  FrameEvaluator* fev_;
  Frame* frame_;
  const std::vector<Value>* bucket_ = nullptr;
  size_t pos_ = 0;
};

class FFilterIter : public FrameIter {
 public:
  FFilterIter(const SlotOp& op, std::unique_ptr<FrameIter> child,
              FrameEvaluator* fev, Frame* frame)
      : op_(op), child_(std::move(child)), fev_(fev), frame_(frame) {}

  void Open() override { child_->Open(); }
  bool Next() override {
    while (child_->Next()) {
      if (fev_->EvalPred(*op_.pred, *frame_)) return true;
    }
    return false;
  }
  void Close() override { child_->Close(); }

 private:
  const SlotOp& op_;
  std::unique_ptr<FrameIter> child_;
  FrameEvaluator* fev_;
  Frame* frame_;
};

class FUnnestIter : public FrameIter {
 public:
  FUnnestIter(const SlotOp& op, std::unique_ptr<FrameIter> child,
              FrameEvaluator* fev, Frame* frame)
      : op_(op), outer_(op.kind == PhysKind::kOuterUnnest),
        child_(std::move(child)), fev_(fev), frame_(frame) {}

  void Open() override {
    child_->Open();
    have_row_ = false;
  }

  bool Next() override {
    while (true) {
      if (!have_row_) {
        if (!child_->Next()) return false;
        coll_ = fev_->Eval(*op_.path, *frame_);
        elems_ = coll_.is_null() ? nullptr : &coll_.AsElems();
        pos_ = 0;
        emitted_ = false;
        have_row_ = true;
      }
      if (elems_ != nullptr) {
        while (pos_ < elems_->size()) {
          (*frame_)[op_.var_slot] = (*elems_)[pos_++];
          if (fev_->EvalPred(*op_.pred, *frame_)) {
            emitted_ = true;
            return true;
          }
        }
      }
      have_row_ = false;
      if (outer_ && !emitted_) {
        (*frame_)[op_.var_slot] = Value::Null();
        return true;
      }
    }
  }
  void Close() override { child_->Close(); }

 private:
  const SlotOp& op_;
  bool outer_;
  std::unique_ptr<FrameIter> child_;
  FrameEvaluator* fev_;
  Frame* frame_;
  Value coll_;
  const Elems* elems_ = nullptr;
  size_t pos_ = 0;
  bool have_row_ = false;
  bool emitted_ = false;
};

// Streams the left child; the right child is buffered as span copies (or
// injected prebuilt by the parallel executor, in which case right_ is null).
class FNLJoinIter : public FrameIter {
 public:
  FNLJoinIter(const SlotOp& op, std::unique_ptr<FrameIter> left,
              std::unique_ptr<FrameIter> right, FrameEvaluator* fev,
              Frame* frame, const std::vector<BufRow>* shared_buffer)
      : op_(op), outer_(op.kind == PhysKind::kNLOuterJoin),
        left_(std::move(left)), right_(std::move(right)), fev_(fev),
        frame_(frame), shared_buffer_(shared_buffer) {}

  ~FNLJoinIter() override { ReleaseCharge(); }

  void set_stats(OperatorStats* s) { stats_ = s; }

  void Open() override {
    ReleaseCharge();
    if (shared_buffer_ != nullptr) {
      buffer_ = shared_buffer_;  // prebuilt: the parallel executor owns the charge
    } else {
      own_buffer_.clear();
      right_->Open();
      const bool sized = fev_->mem().armed() || stats_ != nullptr;
      while (right_->Next()) {
        PollCancel(fev_->cancel());
        own_buffer_.push_back(
            CopySpan(*frame_, op_.right->out_lo, op_.right->out_hi));
        if (sized) {
          size_t b = SpanBytes(own_buffer_.back());
          if (stats_) stats_->mem_bytes += b;
          charged_ += b;
          fev_->mem().Charge(static_cast<int>(op_.kind), b);
        }
      }
      right_->Close();
      if (stats_) stats_->build_rows += own_buffer_.size();
      buffer_ = &own_buffer_;
    }
    left_->Open();
    have_row_ = false;
  }

  bool Next() override {
    while (true) {
      if (!have_row_) {
        if (!left_->Next()) return false;
        pos_ = 0;
        matched_ = false;
        have_row_ = true;
      }
      while (pos_ < buffer_->size()) {
        LoadSpan(*frame_, op_.right->out_lo, (*buffer_)[pos_++]);
        if (fev_->EvalPred(*op_.pred, *frame_)) {
          matched_ = true;
          return true;
        }
      }
      have_row_ = false;
      if (outer_ && !matched_) {
        FillNullSpan(*frame_, op_.right->out_lo, op_.right->out_hi);
        return true;
      }
    }
  }
  void Close() override {
    left_->Close();
    own_buffer_.clear();
    ReleaseCharge();
  }

 private:
  void ReleaseCharge() {
    if (charged_ > 0) {
      fev_->mem().Release(static_cast<int>(op_.kind), charged_);
      charged_ = 0;
    }
  }

  const SlotOp& op_;
  bool outer_;
  std::unique_ptr<FrameIter> left_, right_;
  FrameEvaluator* fev_;
  Frame* frame_;
  OperatorStats* stats_ = nullptr;
  size_t charged_ = 0;
  const std::vector<BufRow>* shared_buffer_;
  std::vector<BufRow> own_buffer_;
  const std::vector<BufRow>* buffer_ = nullptr;
  size_t pos_ = 0;
  bool have_row_ = false;
  bool matched_ = false;
};

class FHashJoinIter : public FrameIter {
 public:
  FHashJoinIter(const SlotOp& op, std::unique_ptr<FrameIter> left,
                std::unique_ptr<FrameIter> right, FrameEvaluator* fev,
                Frame* frame, const JoinTable* shared_table)
      : op_(op), outer_(op.kind == PhysKind::kHashOuterJoin),
        left_(std::move(left)), right_(std::move(right)), fev_(fev),
        frame_(frame), shared_table_(shared_table) {
    build_op_ = (op_.build_is_left ? op_.left : op_.right).get();
  }

  ~FHashJoinIter() override { ReleaseCharge(); }

  void set_stats(OperatorStats* s) { stats_ = s; }

  void Open() override {
    ReleaseCharge();
    FrameIter* build = op_.build_is_left ? left_.get() : right_.get();
    probe_ = op_.build_is_left ? right_.get() : left_.get();
    if (shared_table_ != nullptr) {
      table_ = shared_table_;  // prebuilt: the parallel executor owns the charge
    } else {
      own_table_.clear();
      size_t built = 0;
      build->Open();
      const bool sized = fev_->mem().armed() || stats_ != nullptr;
      while (build->Next()) {
        PollCancel(fev_->cancel());
        Value key = EvalKeyTuple(fev_, *frame_, op_.build_keys);
        if (!key.is_null()) {
          BufRow row = CopySpan(*frame_, build_op_->out_lo, build_op_->out_hi);
          if (sized) {
            size_t b = SpanBytes(row);
            if (stats_) stats_->mem_bytes += b;
            charged_ += b;
            fev_->mem().Charge(static_cast<int>(op_.kind), b);
          }
          own_table_[std::move(key)].push_back(std::move(row));
          ++built;
        }
      }
      build->Close();
      if (stats_) stats_->build_rows += built;
      table_ = &own_table_;
    }
    probe_->Open();
    have_row_ = false;
  }

  bool Next() override {
    while (true) {
      if (!have_row_) {
        if (!probe_->Next()) return false;
        Value key_scratch;
        const Value* key = EvalKeyPtr(fev_, *frame_, op_.probe_keys,
                                      &key_scratch);
        bucket_ = nullptr;
        if (!key->is_null()) {
          auto it = table_->find(*key);
          if (it != table_->end()) bucket_ = &it->second;
        }
        pos_ = 0;
        matched_ = false;
        have_row_ = true;
      }
      if (bucket_ != nullptr) {
        while (pos_ < bucket_->size()) {
          LoadSpan(*frame_, build_op_->out_lo, (*bucket_)[pos_++]);
          if (fev_->EvalPred(*op_.pred, *frame_)) {
            matched_ = true;
            return true;
          }
        }
      }
      have_row_ = false;
      if (outer_ && !matched_) {
        // Outer joins always probe left, so the padded side is the right.
        FillNullSpan(*frame_, op_.right->out_lo, op_.right->out_hi);
        return true;
      }
    }
  }
  void Close() override {
    if (left_) left_->Close();
    if (right_) right_->Close();
    own_table_.clear();
    ReleaseCharge();
  }

 private:
  void ReleaseCharge() {
    if (charged_ > 0) {
      fev_->mem().Release(static_cast<int>(op_.kind), charged_);
      charged_ = 0;
    }
  }

  const SlotOp& op_;
  bool outer_;
  std::unique_ptr<FrameIter> left_, right_;
  FrameEvaluator* fev_;
  Frame* frame_;
  OperatorStats* stats_ = nullptr;
  size_t charged_ = 0;
  const SlotOp* build_op_;
  const JoinTable* shared_table_;
  JoinTable own_table_;
  FrameIter* probe_ = nullptr;
  const JoinTable* table_ = nullptr;
  const std::vector<BufRow>* bucket_ = nullptr;
  size_t pos_ = 0;
  bool have_row_ = false;
  bool matched_ = false;
};

// Blocking grouping. Either drains its child on Open, or replays groups
// merged from parallel workers (prebuilt constructor; no child).
class FHashNestIter : public FrameIter {
 public:
  FHashNestIter(const SlotOp& op, std::unique_ptr<FrameIter> child,
                FrameEvaluator* fev, Frame* frame)
      : op_(op), child_(std::move(child)), fev_(fev), frame_(frame) {}

  // Prebuilt groups were charged by the parallel executor (which owns the
  // release); `prebuilt_bytes` only feeds this operator's profile line.
  FHashNestIter(const SlotOp& op, std::vector<NestGroup> prebuilt,
                size_t prebuilt_bytes, FrameEvaluator* fev, Frame* frame)
      : op_(op), fev_(fev), frame_(frame),
        prebuilt_(std::move(prebuilt)), prebuilt_bytes_(prebuilt_bytes),
        has_prebuilt_(true) {}

  ~FHashNestIter() override { ReleaseCharge(); }

  void set_stats(OperatorStats* s) { stats_ = s; }

  void Open() override {
    ReleaseCharge();
    if (has_prebuilt_) {
      groups_ = std::move(prebuilt_);
      has_prebuilt_ = false;
      if (stats_) stats_->mem_bytes += prebuilt_bytes_;
    } else {
      PartialGroups pg;
      child_->Open();
      try {
        while (child_->Next()) {
          PollCancel(fev_->cancel());
          AccumulateNestRow(op_, fev_, *frame_, &pg, stats_);
        }
      } catch (...) {
        // pg dies with the unwind; its reservation must die with it.
        charged_ = pg.charged;
        ReleaseCharge();
        throw;
      }
      child_->Close();
      charged_ = pg.charged;
      groups_ = std::move(pg.groups);
    }
    // Scalar aggregation (no keys) always yields one row (see eval_algebra).
    if (op_.group_slots.empty() && groups_.empty()) {
      groups_.push_back(NestGroup{{}, Accumulator(op_.monoid)});
    }
    if (stats_) stats_->groups += groups_.size();
    pos_ = 0;
  }

  bool Next() override {
    if (pos_ >= groups_.size()) return false;
    NestGroup& g = groups_[pos_++];
    for (size_t i = 0; i < op_.group_slots.size(); ++i) {
      (*frame_)[op_.group_slots[i].first] = g.key[i];
    }
    (*frame_)[op_.var_slot] = g.acc.Finish();
    return true;
  }
  void Close() override {
    groups_.clear();
    ReleaseCharge();
  }

 private:
  void ReleaseCharge() {
    if (charged_ > 0) {
      fev_->mem().Release(static_cast<int>(PhysKind::kHashNest), charged_);
      charged_ = 0;
    }
  }

  const SlotOp& op_;
  std::unique_ptr<FrameIter> child_;
  FrameEvaluator* fev_;
  Frame* frame_;
  OperatorStats* stats_ = nullptr;
  size_t charged_ = 0;
  std::vector<NestGroup> prebuilt_;
  size_t prebuilt_bytes_ = 0;
  bool has_prebuilt_ = false;
  std::vector<NestGroup> groups_;
  size_t pos_ = 0;
};

// Construction context: the per-thread frame/evaluator, plus the parallel
// executor's injections (shared build tables, the morsel-ranged driver scan,
// pre-merged nest groups for the serial tail).
struct FrameExecCtx {
  FrameEvaluator* fev = nullptr;
  Frame* frame = nullptr;
  const SharedTables* shared = nullptr;
  int driver_id = -1;
  FTableScanIter* driver = nullptr;  // out: the driver scan, if driver_id hit
  int prebuilt_nest_id = -1;
  std::vector<NestGroup>* prebuilt_groups = nullptr;  // moved from when hit
  size_t prebuilt_bytes = 0;  // bytes the executor charged for those groups
  QueryProfiler* profiler = nullptr;  // null = build the uninstrumented tree
};

std::unique_ptr<FrameIter> MakeFrameIterator(const SlotOpPtr& op,
                                             FrameExecCtx& ctx) {
  LDB_INTERNAL_CHECK(op != nullptr, "null slot operator");
  OperatorStats* stats =
      ctx.profiler == nullptr
          ? nullptr
          : ctx.profiler->Register(op->id, op->kind,
                                   ProfLabel(op->kind, op->extent));
  std::unique_ptr<FrameIter> out;
  switch (op->kind) {
    case PhysKind::kUnitRow:
      out = std::make_unique<FUnitRowIter>();
      break;
    case PhysKind::kTableScan: {
      auto it = std::make_unique<FTableScanIter>(*op, ctx.fev, ctx.frame);
      if (op->id == ctx.driver_id) ctx.driver = it.get();
      out = std::move(it);
      break;
    }
    case PhysKind::kIndexScan:
      out = std::make_unique<FIndexScanIter>(*op, ctx.fev, ctx.frame);
      break;
    case PhysKind::kFilter:
      out = std::make_unique<FFilterIter>(
          *op, MakeFrameIterator(op->left, ctx), ctx.fev, ctx.frame);
      break;
    case PhysKind::kUnnest:
    case PhysKind::kOuterUnnest:
      out = std::make_unique<FUnnestIter>(
          *op, MakeFrameIterator(op->left, ctx), ctx.fev, ctx.frame);
      break;
    case PhysKind::kNLJoin:
    case PhysKind::kNLOuterJoin: {
      const std::vector<BufRow>* shared_buffer = nullptr;
      if (ctx.shared != nullptr) {
        auto it = ctx.shared->buffers.find(op->id);
        if (it != ctx.shared->buffers.end()) shared_buffer = &it->second;
      }
      // With a shared buffer the buffered subtree is never instantiated.
      auto right = shared_buffer ? nullptr : MakeFrameIterator(op->right, ctx);
      auto join = std::make_unique<FNLJoinIter>(
          *op, MakeFrameIterator(op->left, ctx), std::move(right), ctx.fev,
          ctx.frame, shared_buffer);
      join->set_stats(stats);
      out = std::move(join);
      break;
    }
    case PhysKind::kHashJoin:
    case PhysKind::kHashOuterJoin: {
      const JoinTable* shared_table = nullptr;
      if (ctx.shared != nullptr) {
        auto it = ctx.shared->join_tables.find(op->id);
        if (it != ctx.shared->join_tables.end()) shared_table = &it->second;
      }
      const SlotOpPtr& build = op->build_is_left ? op->left : op->right;
      const SlotOpPtr& probe = op->build_is_left ? op->right : op->left;
      std::unique_ptr<FrameIter> build_it =
          shared_table ? nullptr : MakeFrameIterator(build, ctx);
      std::unique_ptr<FrameIter> probe_it = MakeFrameIterator(probe, ctx);
      auto left = op->build_is_left ? std::move(build_it) : std::move(probe_it);
      auto right = op->build_is_left ? std::move(probe_it) : std::move(build_it);
      auto join = std::make_unique<FHashJoinIter>(*op, std::move(left),
                                                  std::move(right), ctx.fev,
                                                  ctx.frame, shared_table);
      join->set_stats(stats);
      out = std::move(join);
      break;
    }
    case PhysKind::kHashNest: {
      std::unique_ptr<FHashNestIter> nest;
      if (op->id == ctx.prebuilt_nest_id) {
        nest = std::make_unique<FHashNestIter>(
            *op, std::move(*ctx.prebuilt_groups), ctx.prebuilt_bytes,
            ctx.fev, ctx.frame);
      } else {
        nest = std::make_unique<FHashNestIter>(
            *op, MakeFrameIterator(op->left, ctx), ctx.fev, ctx.frame);
      }
      nest->set_stats(stats);
      out = std::move(nest);
      break;
    }
    case PhysKind::kReduce:
      throw InternalError("reduce is driven by ExecuteSlotPlan, not pulled");
  }
  if (stats != nullptr) {
    return std::make_unique<FProfiledIter>(std::move(out), stats);
  }
  return out;
}

Value ExecuteSlotSerial(const SlotPlan& sp, const Database& db,
                        const ExecOptions& opt, QueryProfiler* prof) {
  FrameEvaluator fev(db);
  ArmEvaluator(&fev, opt);
  Frame frame(static_cast<size_t>(sp.n_slots));
  FillParams(sp, opt, frame);
  FrameExecCtx ctx;
  ctx.fev = &fev;
  ctx.frame = &frame;
  ctx.profiler = prof;
  Accumulator acc(sp.root->monoid);
  Value scratch;
  uint64_t folded = 0;
  SerialTotalsGuard totals_guard{opt.totals, &folded};
  RowPulse pulse{opt.resource};
  const bool fold_sized =
      fev.mem().armed() && IsCollectionMonoid(sp.root->monoid);
  size_t fold_charged = 0;
  FoldChargeGuard fold_guard{&fev.mem(), &fold_charged};
  if (prof == nullptr) {
    std::unique_ptr<FrameIter> input = MakeFrameIterator(sp.root->left, ctx);
    input->Open();
    while (input->Next()) {
      PollCancel(opt.cancel);
      if (!fev.EvalPred(*sp.root->pred, frame)) continue;
      const Value* hv = fev.EvalPtr(*sp.root->head, frame, &scratch);
      if (fold_sized) {
        size_t b = EstimateValueBytes(*hv);
        fold_charged += b;
        fev.mem().Charge(static_cast<int>(PhysKind::kReduce), b);
      }
      acc.Add(*hv);
      ++folded;
      pulse.Tick();
      if (acc.Saturated()) break;  // the pipeline stops pulling here
    }
    input->Close();
    return acc.Finish();
  }
  prof->parallel_mode = "serial";
  OperatorStats* rstats =
      prof->Register(sp.root->id, PhysKind::kReduce, "Reduce");
  std::unique_ptr<FrameIter> input = MakeFrameIterator(sp.root->left, ctx);
  input->Open();
  ++rstats->opens;
  auto t0 = ProfClock::now();
  while (input->Next()) {
    PollCancel(opt.cancel);
    ++rstats->next_calls;
    if (!fev.EvalPred(*sp.root->pred, frame)) continue;
    const Value* hv = fev.EvalPtr(*sp.root->head, frame, &scratch);
    if (fold_sized) {
      size_t b = EstimateValueBytes(*hv);
      rstats->mem_bytes += b;
      fold_charged += b;
      fev.mem().Charge(static_cast<int>(PhysKind::kReduce), b);
    }
    acc.Add(*hv);
    ++rstats->rows_out;
    ++folded;
    pulse.Tick();
    if (acc.Saturated()) {
      ++rstats->short_circuits;
      break;
    }
  }
  rstats->next_ns += NsSince(t0);
  input->Close();
  return acc.Finish();
}

// ===========================================================================
// Morsel-driven parallel execution.
// ===========================================================================

// The streaming spine: the chain of operators a driver-scan row flows
// through without being buffered. Joins continue along their probe/streamed
// side; HashNest is a barrier but is still spine (mode B parallelizes below
// the lowest one).
struct SpineInfo {
  SlotOpPtr driver;       // the driving kTableScan (null = not parallelizable)
  SlotOpPtr lowest_nest;  // deepest kHashNest on the spine, if any
};

SpineInfo AnalyzeSpine(const SlotOpPtr& root) {
  SpineInfo info;
  SlotOpPtr cur = root->left;
  while (cur) {
    switch (cur->kind) {
      case PhysKind::kFilter:
      case PhysKind::kUnnest:
      case PhysKind::kOuterUnnest:
      case PhysKind::kNLJoin:
      case PhysKind::kNLOuterJoin:
        cur = cur->left;
        break;
      case PhysKind::kHashJoin:
      case PhysKind::kHashOuterJoin:
        cur = cur->build_is_left ? cur->right : cur->left;
        break;
      case PhysKind::kHashNest:
        info.lowest_nest = cur;
        cur = cur->left;
        break;
      case PhysKind::kTableScan:
        info.driver = cur;
        return info;
      default:  // kUnitRow / kIndexScan drivers: stay serial
        return SpineInfo{};
    }
  }
  return SpineInfo{};
}

// Builds every spine join's build/buffer side once, serially, so workers
// share the tables read-only. With a profiler, the build subtrees' counters
// and the joins' build_rows land in *prof — once, matching the serial run —
// while the workers (who only read the shared tables) record nothing for
// them.
void PrebuildSpineTables(const SlotOpPtr& sub_root, const Database& db,
                         const SlotPlan& sp, const ExecOptions& opt,
                         SharedTables* shared, QueryProfiler* prof) {
  FrameEvaluator fev(db);
  ArmEvaluator(&fev, opt);
  Frame frame(static_cast<size_t>(sp.n_slots));
  FillParams(sp, opt, frame);
  for (SlotOpPtr cur = sub_root; cur;) {
    switch (cur->kind) {
      case PhysKind::kFilter:
      case PhysKind::kUnnest:
      case PhysKind::kOuterUnnest:
        cur = cur->left;
        break;
      case PhysKind::kNLJoin:
      case PhysKind::kNLOuterJoin: {
        FrameExecCtx ctx;
        ctx.fev = &fev;
        ctx.frame = &frame;
        ctx.profiler = prof;
        auto it = MakeFrameIterator(cur->right, ctx);
        it->Open();
        std::vector<BufRow> buf;
        const bool sized = fev.mem().armed() || prof != nullptr;
        shared->charges.emplace_back(static_cast<int>(cur->kind), 0);
        size_t& bytes = shared->charges.back().second;
        while (it->Next()) {
          PollCancel(opt.cancel);
          buf.push_back(CopySpan(frame, cur->right->out_lo, cur->right->out_hi));
          if (sized) {
            size_t b = SpanBytes(buf.back());
            bytes += b;
            fev.mem().Charge(static_cast<int>(cur->kind), b);
          }
        }
        it->Close();
        if (prof) {
          OperatorStats* s = prof->Register(
              cur->id, cur->kind, ProfLabel(cur->kind, cur->extent));
          s->build_rows += buf.size();
          s->mem_bytes += bytes;
        }
        shared->buffers.emplace(cur->id, std::move(buf));
        cur = cur->left;
        break;
      }
      case PhysKind::kHashJoin:
      case PhysKind::kHashOuterJoin: {
        const SlotOpPtr& build = cur->build_is_left ? cur->left : cur->right;
        FrameExecCtx ctx;
        ctx.fev = &fev;
        ctx.frame = &frame;
        ctx.profiler = prof;
        auto it = MakeFrameIterator(build, ctx);
        it->Open();
        JoinTable table;
        size_t built = 0;
        const bool sized = fev.mem().armed() || prof != nullptr;
        shared->charges.emplace_back(static_cast<int>(cur->kind), 0);
        size_t& bytes = shared->charges.back().second;
        while (it->Next()) {
          PollCancel(opt.cancel);
          Value key = EvalKeyTuple(&fev, frame, cur->build_keys);
          if (!key.is_null()) {
            BufRow row = CopySpan(frame, build->out_lo, build->out_hi);
            if (sized) {
              size_t b = SpanBytes(row);
              bytes += b;
              fev.mem().Charge(static_cast<int>(cur->kind), b);
            }
            table[std::move(key)].push_back(std::move(row));
            ++built;
          }
        }
        it->Close();
        if (prof) {
          OperatorStats* s = prof->Register(
              cur->id, cur->kind, ProfLabel(cur->kind, cur->extent));
          s->build_rows += built;
          s->mem_bytes += bytes;
        }
        shared->join_tables.emplace(cur->id, std::move(table));
        cur = cur->build_is_left ? cur->right : cur->left;
        break;
      }
      default:  // the driver scan
        return;
    }
  }
}

// Hands out extent ranges [i*morsel, (i+1)*morsel) by atomic counter.
struct MorselQueue {
  size_t total;
  size_t morsel;
  std::atomic<size_t> next{0};

  size_t count() const { return (total + morsel - 1) / morsel; }
  bool Grab(size_t* idx, size_t* lo, size_t* hi) {
    size_t i = next.fetch_add(1, std::memory_order_relaxed);
    size_t l = i * morsel;
    if (l >= total) return false;
    *idx = i;
    *lo = l;
    *hi = std::min(total, l + morsel);
    return true;
  }
};

// First-writer-wins exception slot shared by the morsel workers. The
// annotated struct (rather than a local mutex + local exception_ptr, which
// the thread-safety analysis cannot guard) makes the scheduler's merge
// state checkable: Record is the only concurrent entry point.
struct GuardedFirstError {
  Mutex mu;
  std::exception_ptr error LDB_GUARDED_BY(mu);

  void Record(std::exception_ptr e) LDB_EXCLUDES(mu) {
    MutexLock lock(&mu);
    if (!error) error = std::move(e);
  }
  /// Safe unguarded: called only after every writer thread has joined.
  std::exception_ptr TakeAfterJoin() LDB_NO_THREAD_SAFETY_ANALYSIS {
    return error;
  }
};

// Runs `body(idx, lo, hi, worker_state)` over all morsels on `n_workers`
// threads; per-morsel exceptions are captured and the lowest-indexed one
// recorded rethrown (the closest parallel analogue of where the serial
// execution would have failed first).
template <typename MakeState, typename Body>
void RunMorsels(MorselQueue& mq, int n_workers, std::atomic<bool>& stop,
                MakeState make_state, Body body) {
  std::vector<std::exception_ptr> errors(mq.count());
  GuardedFirstError setup_error;
  auto work = [&]() {
    // The state is heap-allocated: iterators keep pointers into it, so its
    // address must be stable.
    auto state = make_state();
    size_t idx, lo, hi;
    while (!stop.load(std::memory_order_relaxed) && mq.Grab(&idx, &lo, &hi)) {
      try {
        body(idx, lo, hi, *state);
      } catch (...) {
        errors[idx] = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n_workers));
  for (int t = 0; t < n_workers; ++t) {
    threads.emplace_back([&]() {
      try {
        work();
      } catch (...) {
        // Worker setup failures surface after join.
        setup_error.Record(std::current_exception());
        stop.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (std::exception_ptr e = setup_error.TakeAfterJoin()) {
    std::rethrow_exception(e);
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

// Per-worker pipeline over the parallel sub-spine. Under profiling each
// worker also owns a private QueryProfiler (its iterators are wrapped
// against it — no shared counters, no atomics) plus its utilization totals;
// TryExecuteParallel merges them into the caller's profiler after join.
struct WorkerPipeline {
  FrameEvaluator fev;
  Frame frame;
  std::unique_ptr<FrameIter> pipe;
  FTableScanIter* driver = nullptr;
  QueryProfiler prof;   // used only when `profiled`
  WorkerStats wstats;
  bool profiled = false;

  WorkerPipeline(const Database& db, const SlotPlan& sp,
                 const ExecOptions& opt, const SlotOpPtr& sub_root,
                 const SharedTables& shared, int driver_id, int worker_id,
                 bool with_profiling)
      : fev(db), frame(static_cast<size_t>(sp.n_slots)),
        profiled(with_profiling) {
    ArmEvaluator(&fev, opt);
    FillParams(sp, opt, frame);
    wstats.worker = worker_id;
    FrameExecCtx ctx;
    ctx.fev = &fev;
    ctx.frame = &frame;
    ctx.shared = &shared;
    ctx.driver_id = driver_id;
    ctx.profiler = profiled ? &prof : nullptr;
    pipe = MakeFrameIterator(sub_root, ctx);
    driver = ctx.driver;
    LDB_INTERNAL_CHECK(driver != nullptr, "parallel driver scan not found");
  }
};

// Collects the per-worker pipeline states created during a parallel run so
// their private profilers / utilization counters survive the join and can
// be merged. Add races between workers (hence the annotated mutex); the
// merge side only runs once every worker thread has joined.
struct WorkerStateRegistry {
  Mutex mu;
  std::vector<std::shared_ptr<WorkerPipeline>> states LDB_GUARDED_BY(mu);

  void Add(std::shared_ptr<WorkerPipeline> state) LDB_EXCLUDES(mu) {
    MutexLock lock(&mu);
    states.push_back(std::move(state));
  }
  /// Safe unguarded: called only after every writer thread has joined.
  std::vector<std::shared_ptr<WorkerPipeline>>& AfterJoin()
      LDB_NO_THREAD_SAFETY_ANALYSIS {
    return states;
  }
};

// True if a parallel run of this plan is guaranteed bit-identical to the
// serial run when per-morsel partials merge in morsel order. The only
// exclusion is a floating-point product at the root: Accumulator folds
// kProd pairwise in arrival order and FP multiplication is not associative.
// (kSum/kAvg are exact via ExactSum; max/min/some/all are order-independent;
// collections either canonicalize (set/bag) or concatenate in morsel order
// (list); a spine HashNest merges whole groups in morsel order, which
// restores the serial stream order within every group.)
bool ParallelRootEligible(MonoidKind root_monoid) {
  return root_monoid != MonoidKind::kProd;
}

bool TryExecuteParallel(const SlotPlan& sp, const Database& db,
                        const ExecOptions& opt, Value* out) {
  const SlotOpPtr& root = sp.root;
  SpineInfo spine = AnalyzeSpine(root);
  if (!spine.driver) return false;
  if (!spine.lowest_nest && !ParallelRootEligible(root->monoid)) return false;
  const std::vector<Value>& extent = db.Extent(spine.driver->extent);
  const size_t morsel = std::max<size_t>(1, opt.morsel_size);
  if (extent.size() <= morsel) return false;  // one morsel: serial is exact

  QueryProfiler* uprof = opt.profiler;
  const bool profiling = uprof != nullptr;
  // ExecTotals collection rides on the same per-worker counters profiling
  // uses (plain fields, summed after the join) — worker states are retained
  // whenever either consumer is attached.
  const bool track = profiling || opt.totals != nullptr;

  const SlotOpPtr sub_root = spine.lowest_nest ? spine.lowest_nest->left
                                               : root->left;
  SharedTables shared;
  // The prebuilt tables' reservations live exactly as long as the tables:
  // released here on every exit path (success, cancel, over-budget unwind).
  struct SharedChargeGuard {
    const ExecOptions* opt;
    const SharedTables* shared;
    ~SharedChargeGuard() {
      if (opt->resource == nullptr) return;
      for (const auto& [cls, b] : shared->charges) {
        if (b > 0) opt->resource->Apply(cls, -static_cast<int64_t>(b));
      }
    }
  } shared_guard{&opt, &shared};
  PrebuildSpineTables(sub_root, db, sp, opt, &shared, uprof);

  MorselQueue mq{extent.size(), morsel};
  const size_t n_morsels = mq.count();
  const int n_workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(opt.n_threads), n_morsels));
  std::atomic<bool> stop{false};

  // Worker states are kept alive past RunMorsels (which drops its own
  // reference at thread exit) so their private profilers can be harvested.
  std::atomic<int> worker_seq{0};
  WorkerStateRegistry registry;
  std::vector<MorselStats> morsel_stats(profiling ? n_morsels : 0);

  auto make_state = [&]() {
    auto state = std::make_shared<WorkerPipeline>(
        db, sp, opt, sub_root, shared, spine.driver->id,
        worker_seq.fetch_add(1, std::memory_order_relaxed), profiling);
    if (track) registry.Add(state);
    return state;
  };

  // Timeline origin for MorselStats spans (trace export draws one lane per
  // worker from these offsets).
  const auto run_epoch = ProfClock::now();

  // Records the morsel into the worker's totals and the per-morsel table
  // (only ever this worker's slot: each index is grabbed exactly once).
  auto record_morsel = [&](WorkerPipeline& w, size_t idx, size_t lo, size_t hi,
                           uint64_t rows, ProfClock::time_point t0) {
    double dur = NsSince(t0);
    w.wstats.morsels += 1;
    w.wstats.rows += rows;
    w.wstats.busy_ns += dur;
    if (profiling) {
      double start =
          std::chrono::duration<double, std::nano>(t0 - run_epoch).count();
      morsel_stats[idx] =
          MorselStats{idx, lo, hi, rows, w.wstats.worker, start, dur};
    }
  };

  // Merges prebuild/worker counters and parallel metadata into *uprof and
  // flushes ExecTotals. Runs exactly once — on the success path or on a
  // QueryCancelled/error unwind, never both. The exactly-once flag matters
  // beyond idempotence: mode B's serial tail executes *after* this and
  // accumulates straight into *uprof, so a second merge of the worker
  // profilers (e.g. from a catch-all around the tail) would double-count
  // every sub-spine operator.
  bool finished = false;
  auto finish = [&](const char* mode, bool rows_are_root) {
    if (finished) return;
    finished = true;
    // Workers are joined on every path that reaches here; AfterJoin is the
    // registry's single-threaded view.
    std::vector<std::shared_ptr<WorkerPipeline>>& states = registry.AfterJoin();
    std::sort(states.begin(), states.end(),
              [](const auto& a, const auto& b) {
                return a->wstats.worker < b->wstats.worker;
              });
    if (opt.totals != nullptr) {
      ExecTotals& t = *opt.totals;
      t.mode = mode;
      t.workers = static_cast<int>(states.size());
      for (const auto& s : states) {
        t.morsels += s->wstats.morsels;
        t.busy_ns += s->wstats.busy_ns;
        if (rows_are_root) t.root_rows += s->wstats.rows;
      }
    }
    if (!profiling) return;
    uprof->parallel_mode = mode;
    uprof->threads_used = n_workers;
    uprof->morsel_size = morsel;
    for (const auto& s : states) {
      uprof->MergeFrom(s->prof);
      uprof->workers.push_back(s->wstats);
    }
    for (const MorselStats& m : morsel_stats) {
      if (m.hi > m.lo) uprof->morsels.push_back(m);  // hi == 0: never grabbed
    }
  };

  if (!spine.lowest_nest) {
    // Mode A: workers run the whole spine including the root reduce; one
    // partial accumulator per morsel, merged in morsel order.
    std::vector<std::optional<Accumulator>> parts(n_morsels);
    // Collection-monoid fold charges, recorded per morsel slot as they are
    // applied (each slot is written by exactly one worker) and released when
    // the partials die with this scope — merged or unwound alike.
    std::vector<size_t> part_charged(n_morsels, 0);
    const bool fold_coll = IsCollectionMonoid(root->monoid);
    struct PartsChargeGuard {
      const ExecOptions* opt;
      const std::vector<size_t>* charged;
      ~PartsChargeGuard() {
        if (opt->resource == nullptr) return;
        size_t total = 0;
        for (size_t b : *charged) total += b;
        if (total > 0) {
          opt->resource->Apply(static_cast<int>(PhysKind::kReduce),
                               -static_cast<int64_t>(total));
        }
      }
    } parts_guard{&opt, &part_charged};
    auto run_a = [&] {
      RunMorsels(mq, n_workers, stop, make_state,
               [&](size_t idx, size_t lo, size_t hi, WorkerPipeline& w) {
                 auto t0 = ProfClock::now();
                 w.driver->SetRange(lo, hi);
                 w.pipe->Open();
                 Accumulator acc(root->monoid);
                 Value scratch;
                 const bool fold_sized = fold_coll && w.fev.mem().armed();
                 size_t& pb = part_charged[idx];
                 if (!w.profiled) {
                   uint64_t plain_rows = 0;
                   while (w.pipe->Next()) {
                     if (!w.fev.EvalPred(*root->pred, w.frame)) continue;
                     const Value* hv =
                         w.fev.EvalPtr(*root->head, w.frame, &scratch);
                     if (fold_sized) {
                       size_t b = EstimateValueBytes(*hv);
                       pb += b;
                       w.fev.mem().Charge(static_cast<int>(PhysKind::kReduce),
                                          b);
                     }
                     acc.Add(*hv);
                     ++plain_rows;
                     if (acc.Saturated()) {
                       // The saturated value is the final result whichever
                       // morsel produces it first; stop dispatching.
                       stop.store(true, std::memory_order_relaxed);
                       break;
                     }
                   }
                   w.pipe->Close();
                   // Land this morsel's pending deltas in the context now:
                   // the fold-charge guard releases against the context
                   // directly, so nothing may stay batched past the join.
                   w.fev.mem().Flush();
                   parts[idx].emplace(std::move(acc));
                   if (opt.resource != nullptr) opt.resource->AddRows(plain_rows);
                   if (track) record_morsel(w, idx, lo, hi, plain_rows, t0);
                   return;
                 }
                 OperatorStats* rstats =
                     w.prof.Register(root->id, PhysKind::kReduce, "Reduce");
                 ++rstats->opens;
                 uint64_t folded = 0;
                 while (w.pipe->Next()) {
                   ++rstats->next_calls;
                   if (!w.fev.EvalPred(*root->pred, w.frame)) continue;
                   const Value* hv =
                       w.fev.EvalPtr(*root->head, w.frame, &scratch);
                   if (fold_sized) {
                     size_t b = EstimateValueBytes(*hv);
                     rstats->mem_bytes += b;
                     pb += b;
                     w.fev.mem().Charge(static_cast<int>(PhysKind::kReduce), b);
                   }
                   acc.Add(*hv);
                   ++folded;
                   if (acc.Saturated()) {
                     ++rstats->short_circuits;
                     stop.store(true, std::memory_order_relaxed);
                     break;
                   }
                 }
                 rstats->rows_out += folded;
                 w.pipe->Close();
                 w.fev.mem().Flush();
                 parts[idx].emplace(std::move(acc));
                 if (opt.resource != nullptr) opt.resource->AddRows(folded);
                 record_morsel(w, idx, lo, hi, folded, t0);
               });
    };
    try {
      run_a();
    } catch (...) {
      // Cancellation (or any per-morsel error) still merges the worker
      // profilers into *uprof — exactly once — before the unwind continues.
      finish("spine-reduce", /*rows_are_root=*/true);
      throw;
    }
    Accumulator final_acc(root->monoid);
    for (std::optional<Accumulator>& p : parts) {
      if (p) final_acc.Absorb(*p);
    }
    finish("spine-reduce", /*rows_are_root=*/true);
    *out = final_acc.Finish();
    return true;
  }

  // Mode B: workers run the sub-spine below the lowest HashNest and group
  // into per-morsel tables; groups merge in morsel order (first-encounter
  // group order and within-group stream order both match the serial run),
  // then the plan above the nest executes serially over the merged groups.
  const SlotOp& nest = *spine.lowest_nest;
  std::vector<std::optional<PartialGroups>> parts(n_morsels);
  // Per-morsel nest charges stay reserved while the groups live on — through
  // the merge and the prebuilt tail — and are released here when the merged
  // groups die with this scope, or on the unwind after summing the partials'
  // records below.
  size_t nest_outstanding = 0;
  struct NestChargeGuard {
    const ExecOptions* opt;
    const size_t* bytes;
    ~NestChargeGuard() {
      if (opt->resource != nullptr && *bytes > 0) {
        opt->resource->Apply(static_cast<int>(PhysKind::kHashNest),
                             -static_cast<int64_t>(*bytes));
      }
    }
  } nest_guard{&opt, &nest_outstanding};
  try {
    RunMorsels(mq, n_workers, stop, make_state,
             [&](size_t idx, size_t lo, size_t hi, WorkerPipeline& w) {
               auto t0 = ProfClock::now();
               w.driver->SetRange(lo, hi);
               w.pipe->Open();
               PartialGroups pg;
               uint64_t rows = 0;
               try {
                 while (w.pipe->Next()) {
                   AccumulateNestRow(nest, &w.fev, w.frame, &pg, nullptr);
                   ++rows;
                 }
               } catch (...) {
                 // pg dies with this morsel; return its reservation through
                 // the worker's own tracker before the unwind continues.
                 w.fev.mem().Release(static_cast<int>(PhysKind::kHashNest),
                                     pg.charged);
                 w.fev.mem().FlushNoThrow();
                 throw;
               }
               w.pipe->Close();
               w.fev.mem().Flush();
               parts[idx].emplace(std::move(pg));
               if (track) record_morsel(w, idx, lo, hi, rows, t0);
             });
  } catch (...) {
    for (std::optional<PartialGroups>& p : parts) {
      if (p) nest_outstanding += p->charged;
    }
    finish("spine-nest", /*rows_are_root=*/false);
    throw;
  }

  PartialGroups merged;
  for (std::optional<PartialGroups>& p : parts) {
    if (!p) continue;
    nest_outstanding += p->charged;
    for (NestGroup& g : p->groups) {
      auto [it, inserted] =
          merged.index.emplace(Value::List(g.key), merged.groups.size());
      if (inserted) {
        merged.groups.push_back(
            NestGroup{std::move(g.key), Accumulator(nest.monoid)});
      }
      merged.groups[it->second].acc.Absorb(g.acc);
    }
  }
  finish("spine-nest", /*rows_are_root=*/false);

  // The serial tail above the nest accumulates straight into the caller's
  // profiler (it runs once, exactly like the serial path). `finish` already
  // ran, so a tail unwind cannot re-merge the worker profilers; the guard
  // below still flushes the tail's partial root-row count into the totals.
  FrameEvaluator fev(db);
  ArmEvaluator(&fev, opt);
  Frame frame(static_cast<size_t>(sp.n_slots));
  FillParams(sp, opt, frame);
  FrameExecCtx ctx;
  ctx.fev = &fev;
  ctx.frame = &frame;
  ctx.prebuilt_nest_id = nest.id;
  ctx.prebuilt_groups = &merged.groups;
  ctx.prebuilt_bytes = nest_outstanding;
  ctx.profiler = uprof;
  Accumulator acc(root->monoid);
  Value scratch;
  uint64_t tail_rows = 0;
  struct TailTotalsGuard {
    ExecTotals* totals;
    const uint64_t* rows;
    ~TailTotalsGuard() {
      if (totals != nullptr) totals->root_rows += *rows;
    }
  } tail_guard{opt.totals, &tail_rows};
  RowPulse pulse{opt.resource};
  const bool fold_sized =
      fev.mem().armed() && IsCollectionMonoid(root->monoid);
  size_t fold_charged = 0;
  FoldChargeGuard fold_guard{&fev.mem(), &fold_charged};
  if (!profiling) {
    std::unique_ptr<FrameIter> input = MakeFrameIterator(root->left, ctx);
    input->Open();
    while (input->Next()) {
      PollCancel(opt.cancel);
      if (!fev.EvalPred(*root->pred, frame)) continue;
      const Value* hv = fev.EvalPtr(*root->head, frame, &scratch);
      if (fold_sized) {
        size_t b = EstimateValueBytes(*hv);
        fold_charged += b;
        fev.mem().Charge(static_cast<int>(PhysKind::kReduce), b);
      }
      acc.Add(*hv);
      ++tail_rows;
      pulse.Tick();
      if (acc.Saturated()) break;
    }
    input->Close();
    *out = acc.Finish();
    return true;
  }
  OperatorStats* rstats =
      uprof->Register(root->id, PhysKind::kReduce, "Reduce");
  std::unique_ptr<FrameIter> input = MakeFrameIterator(root->left, ctx);
  input->Open();
  ++rstats->opens;
  auto t0 = ProfClock::now();
  while (input->Next()) {
    PollCancel(opt.cancel);
    ++rstats->next_calls;
    if (!fev.EvalPred(*root->pred, frame)) continue;
    const Value* hv = fev.EvalPtr(*root->head, frame, &scratch);
    if (fold_sized) {
      size_t b = EstimateValueBytes(*hv);
      rstats->mem_bytes += b;
      fold_charged += b;
      fev.mem().Charge(static_cast<int>(PhysKind::kReduce), b);
    }
    acc.Add(*hv);
    ++rstats->rows_out;
    ++tail_rows;
    pulse.Tick();
    if (acc.Saturated()) {
      ++rstats->short_circuits;
      break;
    }
  }
  rstats->next_ns += NsSince(t0);
  input->Close();
  *out = acc.Finish();
  return true;
}

}  // namespace

std::unique_ptr<RowIterator> MakeIterator(const PhysPtr& op, ExprEvaluator* ev) {
  LDB_INTERNAL_CHECK(op != nullptr, "null physical operator");
  switch (op->kind) {
    case PhysKind::kUnitRow:
      return std::make_unique<UnitRowIter>();
    case PhysKind::kTableScan:
      return std::make_unique<TableScanIter>(*op, ev);
    case PhysKind::kIndexScan:
      return std::make_unique<IndexScanIter>(*op, ev);
    case PhysKind::kFilter:
      return std::make_unique<FilterIter>(*op, MakeIterator(op->left, ev), ev);
    case PhysKind::kUnnest:
    case PhysKind::kOuterUnnest:
      return std::make_unique<UnnestIter>(*op, MakeIterator(op->left, ev), ev);
    case PhysKind::kNLJoin:
    case PhysKind::kNLOuterJoin:
      return std::make_unique<NLJoinIter>(*op, MakeIterator(op->left, ev),
                                          MakeIterator(op->right, ev), ev);
    case PhysKind::kHashJoin:
    case PhysKind::kHashOuterJoin:
      return std::make_unique<HashJoinIter>(*op, MakeIterator(op->left, ev),
                                            MakeIterator(op->right, ev), ev);
    case PhysKind::kHashNest:
      return std::make_unique<HashNestIter>(*op, MakeIterator(op->left, ev), ev);
    case PhysKind::kReduce:
      throw InternalError("reduce is driven by ExecutePipelined, not pulled");
  }
  throw InternalError("unhandled physical operator");
}

Value ExecuteSlotPlan(const SlotPlan& plan, const Database& db,
                      const ExecOptions& options) {
  LDB_INTERNAL_CHECK(plan.root && plan.root->kind == PhysKind::kReduce,
                     "slot execution expects a Reduce root");
  if (options.profiler == nullptr) {
    if (options.n_threads > 1) {
      Value out;
      if (TryExecuteParallel(plan, db, options, &out)) return out;
    }
    return ExecuteSlotSerial(plan, db, options, nullptr);
  }
  auto wall0 = ProfClock::now();
  Value result;
  bool done = false;
  try {
    if (options.n_threads > 1) {
      done = TryExecuteParallel(plan, db, options, &result);
    }
    if (!done) result = ExecuteSlotSerial(plan, db, options, options.profiler);
  } catch (...) {
    // A cancelled (or failed) run still records how long it ran; the worker
    // profilers were already merged by the executor's unwind path.
    options.profiler->wall_ns += NsSince(wall0);
    throw;
  }
  options.profiler->wall_ns += NsSince(wall0);
  return result;
}

Value ExecutePipelined(const PhysPtr& plan, const Database& db,
                       const ExecOptions& options) {
  LDB_INTERNAL_CHECK(plan && plan->kind == PhysKind::kReduce,
                     "pipelined execution expects a Reduce root");
  if (!options.use_slot_frames) {
    return ExecuteEnvPipeline(plan, db, options);
  }
  return ExecuteSlotPlan(CompileSlotPlan(plan, db), db, options);
}

}  // namespace ldb
