#include "src/runtime/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/runtime/error.h"

namespace ldb {

namespace {

// -- writing ------------------------------------------------------------------

void WriteString(std::ostream& os, const std::string& s) {
  os << s.size() << ':' << s;
}

void WriteType(std::ostream& os, const TypePtr& t) {
  switch (t->kind()) {
    case Type::Kind::kBool: os << 'b'; return;
    case Type::Kind::kInt:  os << 'i'; return;
    case Type::Kind::kReal: os << 'r'; return;
    case Type::Kind::kStr:  os << 's'; return;
    case Type::Kind::kAny:  os << 'a'; return;
    case Type::Kind::kClass:
      os << 'C';
      WriteString(os, t->class_name());
      return;
    case Type::Kind::kSet:
    case Type::Kind::kBag:
    case Type::Kind::kList:
      os << (t->kind() == Type::Kind::kSet    ? 'S'
             : t->kind() == Type::Kind::kBag ? 'G'
                                             : 'L')
         << '(';
      WriteType(os, t->elem());
      os << ')';
      return;
    case Type::Kind::kTuple: {
      os << 'T' << t->fields().size() << '(';
      for (const auto& [n, f] : t->fields()) {
        WriteString(os, n);
        WriteType(os, f);
      }
      os << ')';
      return;
    }
    case Type::Kind::kFunc:
      throw UnsupportedError("function types do not serialize");
  }
}

void WriteValue(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      os << 'N';
      return;
    case Value::Kind::kBool:
      os << (v.AsBool() ? "B1" : "B0");
      return;
    case Value::Kind::kInt:
      os << 'I' << v.AsInt() << ';';
      return;
    case Value::Kind::kReal: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsReal());
      os << 'R' << buf << ';';
      return;
    }
    case Value::Kind::kStr:
      os << 's';
      WriteString(os, v.AsStr());
      return;
    case Value::Kind::kTuple: {
      os << 't' << v.AsTuple().size() << '(';
      for (const auto& [n, f] : v.AsTuple()) {
        WriteString(os, n);
        WriteValue(os, f);
      }
      os << ')';
      return;
    }
    case Value::Kind::kSet:
    case Value::Kind::kBag:
    case Value::Kind::kList: {
      char tag = v.kind() == Value::Kind::kSet    ? 'e'
                 : v.kind() == Value::Kind::kBag ? 'g'
                                                 : 'l';
      os << tag << v.AsElems().size() << '(';
      for (const Value& x : v.AsElems()) WriteValue(os, x);
      os << ')';
      return;
    }
    case Value::Kind::kRef:
      os << 'f';
      WriteString(os, v.AsRef().class_name);
      os << '#' << v.AsRef().oid << ';';
      return;
  }
}

// -- reading ------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  char GetChar() {
    int c = is_.get();
    if (c == EOF) throw ParseError("dump: unexpected end of input");
    return static_cast<char>(c);
  }

  void Expect(char c) {
    char got = GetChar();
    if (got != c) {
      throw ParseError(std::string("dump: expected '") + c + "', got '" + got +
                       "'");
    }
  }

  int64_t ReadInt() {
    int64_t out = 0;
    bool neg = false;
    int c = is_.peek();
    if (c == '-') {
      neg = true;
      is_.get();
      c = is_.peek();
    }
    if (c < '0' || c > '9') throw ParseError("dump: expected integer");
    while (c >= '0' && c <= '9') {
      out = out * 10 + (c - '0');
      is_.get();
      c = is_.peek();
    }
    return neg ? -out : out;
  }

  std::string ReadString() {
    int64_t len = ReadInt();
    Expect(':');
    std::string out(static_cast<size_t>(len), '\0');
    is_.read(out.data(), len);
    if (is_.gcount() != len) throw ParseError("dump: truncated string");
    return out;
  }

  double ReadReal() {
    std::string num;
    int c = is_.peek();
    while (c != EOF && (std::isdigit(c) || c == '-' || c == '+' || c == '.' ||
                        c == 'e' || c == 'E' || c == 'n' || c == 'a' ||
                        c == 'i' || c == 'f')) {
      num.push_back(static_cast<char>(is_.get()));
      c = is_.peek();
    }
    try {
      return std::stod(num);
    } catch (...) {
      throw ParseError("dump: bad real '" + num + "'");
    }
  }

  TypePtr ReadType() {
    char tag = GetChar();
    switch (tag) {
      case 'b': return Type::Bool();
      case 'i': return Type::Int();
      case 'r': return Type::Real();
      case 's': return Type::Str();
      case 'a': return Type::Any();
      case 'C': return Type::Class(ReadString());
      case 'S':
      case 'G':
      case 'L': {
        Expect('(');
        TypePtr elem = ReadType();
        Expect(')');
        if (tag == 'S') return Type::Set(elem);
        if (tag == 'G') return Type::Bag(elem);
        return Type::List(elem);
      }
      case 'T': {
        int64_t n = ReadInt();
        Expect('(');
        std::vector<std::pair<std::string, TypePtr>> fields;
        for (int64_t i = 0; i < n; ++i) {
          std::string name = ReadString();
          fields.emplace_back(std::move(name), ReadType());
        }
        Expect(')');
        return Type::Tuple(std::move(fields));
      }
      default:
        throw ParseError(std::string("dump: bad type tag '") + tag + "'");
    }
  }

  Value ReadValue() {
    char tag = GetChar();
    switch (tag) {
      case 'N': return Value::Null();
      case 'B': return Value::Bool(GetChar() == '1');
      case 'I': {
        int64_t i = ReadInt();
        Expect(';');
        return Value::Int(i);
      }
      case 'R': {
        double d = ReadReal();
        Expect(';');
        return Value::Real(d);
      }
      case 's': return Value::Str(ReadString());
      case 't': {
        int64_t n = ReadInt();
        Expect('(');
        Fields fields;
        for (int64_t i = 0; i < n; ++i) {
          std::string name = ReadString();
          fields.emplace_back(std::move(name), ReadValue());
        }
        Expect(')');
        return Value::Tuple(std::move(fields));
      }
      case 'e':
      case 'g':
      case 'l': {
        int64_t n = ReadInt();
        Expect('(');
        Elems elems;
        elems.reserve(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) elems.push_back(ReadValue());
        Expect(')');
        if (tag == 'e') return Value::Set(std::move(elems));
        if (tag == 'g') return Value::Bag(std::move(elems));
        return Value::List(std::move(elems));
      }
      case 'f': {
        std::string cls = ReadString();
        Expect('#');
        int64_t oid = ReadInt();
        Expect(';');
        return Value::MakeRef(std::move(cls), oid);
      }
      default:
        throw ParseError(std::string("dump: bad value tag '") + tag + "'");
    }
  }

  void SkipWhitespace() {
    while (is_.peek() == '\n' || is_.peek() == ' ' || is_.peek() == '\r') {
      is_.get();
    }
  }

  std::string ReadWord() {
    SkipWhitespace();
    std::string out;
    int c = is_.peek();
    while (c != EOF && !std::isspace(c)) {
      out.push_back(static_cast<char>(is_.get()));
      c = is_.peek();
    }
    return out;
  }

 private:
  std::istream& is_;
};

}  // namespace

void DumpDatabase(const Database& db, std::ostream& os) {
  os << "lambdadb-dump 1\n";
  const Schema& schema = db.schema();
  for (const auto& [name, decl] : schema.classes()) {
    os << "class " << name << ' ' << (decl.extent.empty() ? "-" : decl.extent)
       << ' ' << decl.attributes.size() << '\n';
    for (const auto& [attr, type] : decl.attributes) {
      os << "attr ";
      WriteString(os, attr);
      os << ' ';
      WriteType(os, type);
      os << '\n';
    }
  }
  // Objects, per class, in oid order (extents only reference by oid so a
  // full per-class walk needs the extent; classes without extents hold no
  // reachable objects of their own here — every Insert goes through a class
  // with storage, so walk via Deref over the extent refs).
  for (const auto& [name, decl] : schema.classes()) {
    if (decl.extent.empty()) continue;
    const std::vector<Value>& refs = db.Extent(decl.extent);
    os << "objects " << name << ' ' << refs.size() << '\n';
    for (const Value& ref : refs) {
      WriteValue(os, db.Deref(ref.AsRef()));
      os << '\n';
    }
  }
  // Index declarations (extent + attr are identifiers, so plain words are
  // safe, mirroring the `class` record). Only the spec is recorded — the
  // buckets are derivable, so RebuildIndexes reconstructs them after load.
  for (const auto& [extent, attr] : db.IndexSpecs()) {
    os << "index " << extent << ' ' << attr << '\n';
  }
  os << "end\n";
}

namespace {
int64_t ParseCount(const std::string& word) {
  try {
    size_t used = 0;
    int64_t out = std::stoll(word, &used);
    if (used != word.size() || out < 0) throw std::invalid_argument(word);
    return out;
  } catch (...) {
    throw ParseError("dump: bad count '" + word + "'");
  }
}
}  // namespace

Database LoadDatabase(std::istream& is) {
  Reader r(is);
  if (r.ReadWord() != "lambdadb-dump" || r.ReadWord() != "1") {
    throw ParseError("dump: bad header");
  }
  Schema schema;
  std::string word = r.ReadWord();
  // Classes must all be declared before objects (DumpDatabase's layout).
  std::vector<std::pair<std::string, int64_t>> object_sections;
  while (word == "class") {
    ClassDecl decl;
    decl.name = r.ReadWord();
    std::string extent = r.ReadWord();
    if (extent != "-") decl.extent = extent;
    int64_t n = ParseCount(r.ReadWord());
    for (int64_t i = 0; i < n; ++i) {
      if (r.ReadWord() != "attr") throw ParseError("dump: expected attr");
      r.SkipWhitespace();
      std::string attr_name = r.ReadString();
      r.SkipWhitespace();
      decl.attributes.emplace_back(std::move(attr_name), r.ReadType());
    }
    schema.AddClass(std::move(decl));
    word = r.ReadWord();
  }
  Database db(std::move(schema));
  while (word == "objects") {
    std::string cls = r.ReadWord();
    int64_t n = ParseCount(r.ReadWord());
    for (int64_t i = 0; i < n; ++i) {
      r.SkipWhitespace();
      Value object = r.ReadValue();
      Value ref = db.Insert(cls, std::move(object));
      // Oids must be stable for refs serialized inside other objects.
      if (ref.AsRef().oid != i) throw ParseError("dump: oid mismatch");
    }
    word = r.ReadWord();
  }
  while (word == "index") {
    std::string extent = r.ReadWord();
    std::string attr = r.ReadWord();
    db.DeclareIndex(extent, attr);
    word = r.ReadWord();
  }
  if (word != "end") throw ParseError("dump: expected 'end', got '" + word + "'");
  return db;
}

std::string DumpDatabaseToString(const Database& db) {
  std::ostringstream os;
  DumpDatabase(db, os);
  return os.str();
}

Database LoadDatabaseFromString(const std::string& dump) {
  std::istringstream is(dump);
  return LoadDatabase(is);
}

std::string ValueToText(const Value& v) {
  std::ostringstream os;
  WriteValue(os, v);
  return os.str();
}

Value ValueFromText(const std::string& text) {
  std::istringstream is(text);
  Reader r(is);
  Value v = r.ReadValue();
  if (is.peek() != EOF) {
    throw ParseError("value: trailing bytes after a complete value");
  }
  return v;
}

}  // namespace ldb
