// Cooperative cancellation for query execution.
//
// A CancelToken is shared between the thread that owns a query (a Session,
// a shell, a test) and the threads executing it. The owner calls Cancel()
// or arms a deadline; the executors poll ThrowIfCancelled() at their
// blocking points — hash/nest build loops, buffered-join builds, root
// reduce loops, and the morsel grab loop — and abort by throwing
// QueryCancelled. Under morsel parallelism the throw rides the existing
// per-morsel exception machinery: every worker is joined before the error
// is rethrown to the caller, so cancellation never leaks a thread.
//
// The cancelled flag is a relaxed atomic (it is a pure flag — no data is
// published through it), so polling costs one uncontended load. Deadline
// polling additionally reads the steady clock, which only happens when a
// deadline was armed.

#ifndef LAMBDADB_RUNTIME_CANCEL_H_
#define LAMBDADB_RUNTIME_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/runtime/error.h"

namespace ldb {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests abort. Safe from any thread, any number of times.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) a deadline `ms` milliseconds from now. Must be set
  /// before execution starts (the executors read it without synchronization).
  void SetDeadlineAfterMs(int64_t ms) {
    deadline_ = Clock::now() + std::chrono::milliseconds(ms);
    has_deadline_ = true;
  }

  /// Re-arms the token for a fresh execution: clears the cancelled flag and
  /// any deadline. Only between executions — no thread may be polling.
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    has_deadline_ = false;
  }

  /// True once Cancel() was called or the deadline passed.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// The executors' polling point: throws QueryCancelled when expired.
  void ThrowIfCancelled() const {
    if (!Expired()) return;
    throw QueryCancelled(cancelled_.load(std::memory_order_relaxed)
                             ? "cancelled by caller"
                             : "deadline exceeded");
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_CANCEL_H_
