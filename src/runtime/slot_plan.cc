#include "src/runtime/slot_plan.h"

#include <sstream>

#include "src/core/pretty.h"
#include "src/runtime/error.h"

namespace ldb {

namespace {

// Visible bindings at a point in the plan; later entries shadow earlier ones
// (matching Env's reverse-order lookup).
struct Scope {
  std::vector<std::pair<std::string, int>> vars;

  int Lookup(const std::string& name) const {
    for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return -1;
  }
  void Bind(const std::string& name, int slot) { vars.emplace_back(name, slot); }
  void Append(const Scope& other) {
    vars.insert(vars.end(), other.vars.begin(), other.vars.end());
  }
};

// Operator slots a subtree needs (scratch slots are counted separately).
int CountOpSlots(const PhysPtr& p) {
  if (!p) return 0;
  int n = CountOpSlots(p->left) + CountOpSlots(p->right);
  switch (p->kind) {
    case PhysKind::kTableScan:
    case PhysKind::kIndexScan:
    case PhysKind::kUnnest:
    case PhysKind::kOuterUnnest:
      return n + 1;
    case PhysKind::kHashNest:
      return n + static_cast<int>(p->group_by.size()) + 1;
    default:
      return n;
  }
}

class Compiler {
 public:
  Compiler(const Database& db, int n_op_slots)
      : db_(db), next_scratch_(n_op_slots) {}

  std::shared_ptr<SlotOp> CompileOp(const PhysPtr& p, Scope* out_scope) {
    LDB_INTERNAL_CHECK(p != nullptr, "null physical operator");
    auto op = std::make_shared<SlotOp>();
    op->kind = p->kind;
    op->id = next_id_++;
    op->monoid = p->monoid;
    op->out_lo = next_slot_;

    switch (p->kind) {
      case PhysKind::kUnitRow:
        break;
      case PhysKind::kTableScan: {
        op->extent = p->extent;
        op->var_slot = next_slot_++;
        Scope s;
        s.Bind(p->var, op->var_slot);
        op->pred = CompileExpr(p->pred, s);
        *out_scope = std::move(s);
        break;
      }
      case PhysKind::kIndexScan: {
        op->extent = p->extent;
        op->index_attr = p->index_attr;
        op->var_slot = next_slot_++;
        op->index_key = CompileExpr(p->index_key, Scope{});  // opened keyless
        Scope s;
        s.Bind(p->var, op->var_slot);
        op->pred = CompileExpr(p->pred, s);
        *out_scope = std::move(s);
        break;
      }
      case PhysKind::kFilter: {
        Scope s;
        op->left = CompileOp(p->left, &s);
        op->out_lo = op->left->out_lo;
        op->pred = CompileExpr(p->pred, s);
        *out_scope = std::move(s);
        break;
      }
      case PhysKind::kUnnest:
      case PhysKind::kOuterUnnest: {
        Scope s;
        op->left = CompileOp(p->left, &s);
        op->out_lo = op->left->out_lo;
        op->path = CompileExpr(p->path, s);  // over the child scope
        op->var_slot = next_slot_++;
        s.Bind(p->var, op->var_slot);        // shadows like Env::With
        op->pred = CompileExpr(p->pred, s);
        *out_scope = std::move(s);
        break;
      }
      case PhysKind::kNLJoin:
      case PhysKind::kNLOuterJoin: {
        Scope ls, rs;
        op->left = CompileOp(p->left, &ls);
        op->right = CompileOp(p->right, &rs);
        op->out_lo = op->left->out_lo;
        Scope s = ls;
        s.Append(rs);  // right binds after (and shadows) left, like Concat
        op->pred = CompileExpr(p->pred, s);
        *out_scope = std::move(s);
        break;
      }
      case PhysKind::kHashJoin:
      case PhysKind::kHashOuterJoin: {
        Scope ls, rs;
        op->left = CompileOp(p->left, &ls);
        op->right = CompileOp(p->right, &rs);
        op->out_lo = op->left->out_lo;
        op->build_is_left = p->build_is_left;
        const Scope& build = p->build_is_left ? ls : rs;
        const Scope& probe = p->build_is_left ? rs : ls;
        for (const ExprPtr& k : p->build_keys) {
          op->build_keys.push_back(CompileExpr(k, build));
        }
        for (const ExprPtr& k : p->probe_keys) {
          op->probe_keys.push_back(CompileExpr(k, probe));
        }
        Scope s = ls;
        s.Append(rs);
        op->pred = CompileExpr(p->pred, s);
        *out_scope = std::move(s);
        break;
      }
      case PhysKind::kHashNest: {
        Scope child;
        op->left = CompileOp(p->left, &child);
        // Group keys, padding test, residual predicate, and head all read
        // the child scope; the output scope is group names + var only.
        op->out_lo = next_slot_;
        Scope s;
        for (const auto& [name, expr] : p->group_by) {
          int slot = next_slot_++;
          op->group_slots.emplace_back(slot, CompileExpr(expr, child));
          s.Bind(name, slot);
        }
        for (const std::string& v : p->null_vars) {
          int slot = child.Lookup(v);
          LDB_INTERNAL_CHECK(slot >= 0, "nest null-var not bound");
          op->null_slots.push_back(slot);
        }
        op->pred = CompileExpr(p->pred, child);
        op->head = CompileExpr(p->head, child);
        op->var_slot = next_slot_++;
        s.Bind(p->var, op->var_slot);
        *out_scope = std::move(s);
        break;
      }
      case PhysKind::kReduce: {
        Scope s;
        op->left = CompileOp(p->left, &s);
        op->out_lo = op->left->out_lo;
        op->pred = CompileExpr(p->pred, s);
        op->head = CompileExpr(p->head, s);
        *out_scope = std::move(s);
        break;
      }
    }
    op->out_hi = next_slot_;
    return op;
  }

  CExprPtr CompileExpr(const ExprPtr& e, const Scope& scope) {
    if (!e) throw EvalError("null expression");
    auto out = std::make_shared<CExpr>();
    switch (e->kind) {
      case ExprKind::kVar: {
        int slot = scope.Lookup(e->name);
        if (slot >= 0) {
          out->kind = CExprKind::kSlot;
          out->slot = slot;
          return out;
        }
        if (db_.schema().IsExtent(e->name)) {
          // Extents are immutable during execution: resolve now, once.
          out->kind = CExprKind::kLit;
          out->literal = Value::Set(db_.Extent(e->name));
          return out;
        }
        throw EvalError("unbound variable '" + e->name + "'");
      }
      case ExprKind::kParam: {
        // One reserved slot per distinct parameter name; the executor fills
        // it from the bindings before any row flows, so a parameter read is
        // the same one vector load as a range-variable read.
        out->kind = CExprKind::kSlot;
        out->slot = ParamSlot(e->name);
        return out;
      }
      case ExprKind::kLiteral:
        out->kind = CExprKind::kLit;
        out->literal = e->literal;
        return out;
      case ExprKind::kRecord:
        out->kind = CExprKind::kRecord;
        out->fields.reserve(e->fields.size());
        for (const auto& [n, f] : e->fields) {
          out->fields.emplace_back(n, CompileExpr(f, scope));
        }
        return out;
      case ExprKind::kProj:
        out->kind = CExprKind::kProj;
        out->proj_id = next_proj_id_++;  // keys the evaluator's deref cache
        out->name = e->name;
        out->a = CompileExpr(e->a, scope);
        return out;
      case ExprKind::kIf:
        out->kind = CExprKind::kIf;
        out->a = CompileExpr(e->a, scope);
        out->b = CompileExpr(e->b, scope);
        out->c = CompileExpr(e->c, scope);
        return out;
      case ExprKind::kBinOp:
        out->kind = CExprKind::kBinOp;
        out->bin_op = e->bin_op;
        out->a = CompileExpr(e->a, scope);
        out->b = CompileExpr(e->b, scope);
        return out;
      case ExprKind::kUnOp:
        out->kind = CExprKind::kUnOp;
        out->un_op = e->un_op;
        out->a = CompileExpr(e->a, scope);
        return out;
      case ExprKind::kApply:
        if (e->a->kind == ExprKind::kLambda) {
          // (λv. body)(arg): evaluate arg into a scratch slot, then the
          // body with v bound to that slot.
          out->kind = CExprKind::kLet;
          out->slot = next_scratch_++;
          out->a = CompileExpr(e->b, scope);
          Scope inner = scope;
          inner.Bind(e->a->name, out->slot);
          out->b = CompileExpr(e->a->a, inner);
          return out;
        }
        return Fallback(e, scope);
      case ExprKind::kMerge:
        out->kind = CExprKind::kMerge;
        out->monoid = e->monoid;
        out->a = CompileExpr(e->a, scope);
        out->b = CompileExpr(e->b, scope);
        return out;
      case ExprKind::kZero:
        out->kind = CExprKind::kLit;
        out->literal = MonoidZero(e->monoid);
        return out;
      case ExprKind::kComp:
      case ExprKind::kLambda:
        // Comprehensions iterate their own bindings and bare lambdas are a
        // runtime error; both go through the interpreter.
        return Fallback(e, scope);
    }
    throw InternalError("unhandled expr kind in slot compilation");
  }

  int n_slots() const { return next_scratch_; }
  const std::vector<std::pair<std::string, int>>& param_slots() const {
    return param_slots_;
  }

 private:
  int ParamSlot(const std::string& name) {
    for (const auto& [n, slot] : param_slots_) {
      if (n == name) return slot;
    }
    int slot = next_scratch_++;
    param_slots_.emplace_back(name, slot);
    return slot;
  }

  CExprPtr Fallback(const ExprPtr& e, const Scope& scope) {
    auto out = std::make_shared<CExpr>();
    out->kind = CExprKind::kFallback;
    out->original = e;
    // Only the free variables can be read; keeping the Env minimal makes
    // its per-evaluation reconstruction cheap.
    std::set<std::string> free = FreeVars(e);
    for (const auto& [name, slot] : scope.vars) {
      if (free.count(name)) out->scope.emplace_back(name, slot);
    }
    return out;
  }

  const Database& db_;
  int next_slot_ = 0;
  int next_scratch_;
  int next_id_ = 0;
  int next_proj_id_ = 0;
  std::vector<std::pair<std::string, int>> param_slots_;
};

void PrintSlotOp(const SlotOpPtr& op, int indent, std::ostringstream* out) {
  if (!op) return;
  *out << std::string(static_cast<size_t>(indent) * 2, ' ')
       << PhysKindName(op->kind);
  if (!op->extent.empty()) *out << " " << op->extent;
  if (op->var_slot >= 0) *out << " var@" << op->var_slot;
  if (op->kind == PhysKind::kHashNest) {
    *out << " groups@[";
    for (size_t i = 0; i < op->group_slots.size(); ++i) {
      if (i) *out << ",";
      *out << op->group_slots[i].first;
    }
    *out << "]";
  }
  *out << " span[" << op->out_lo << "," << op->out_hi << ")";
  if (op->kind == PhysKind::kReduce || op->kind == PhysKind::kHashNest) {
    *out << " monoid=" << MonoidName(op->monoid);
  }
  *out << "\n";
  PrintSlotOp(op->left, indent + 1, out);
  PrintSlotOp(op->right, indent + 1, out);
}

}  // namespace

SlotPlan CompileSlotPlan(const PhysPtr& plan, const Database& db) {
  LDB_INTERNAL_CHECK(plan && plan->kind == PhysKind::kReduce,
                     "slot compilation expects a Reduce root");
  Compiler c(db, CountOpSlots(plan));
  Scope scope;
  SlotPlan out;
  out.root = c.CompileOp(plan, &scope);
  out.n_slots = c.n_slots();
  out.param_slots = c.param_slots();
  return out;
}

std::string PrintSlotPlan(const SlotPlan& plan) {
  std::ostringstream out;
  out << "frame[" << plan.n_slots << "]\n";
  PrintSlotOp(plan.root, 0, &out);
  return out.str();
}

}  // namespace ldb
