// Slot-compiled expressions and flat execution frames.
//
// The physical executor used to evaluate operator predicates/heads through
// the calculus interpreter, resolving every variable reference by a linear
// string comparison against an Env rebuilt (copied) for every row. Slot
// compilation moves all name resolution to plan time: a pass over the
// physical plan (slot_plan.h) assigns each range variable a dense integer
// slot and rewrites every expression into a CExpr tree whose variable
// references carry the resolved slot index. At run time a row is a flat
// `std::vector<Value>` frame indexed by slot — binding a variable is one
// vector store, reading it one vector load, and concatenating join sides is
// a contiguous range copy.
//
// Constructs the calculus interpreter handles by environment manipulation
// (nested comprehensions, bare lambdas) compile to a kFallback node that
// reconstructs a minimal Env (free variables only) and delegates to
// ExprEvaluator; everything on the hot path compiles away from strings.

#ifndef LAMBDADB_RUNTIME_FRAME_H_
#define LAMBDADB_RUNTIME_FRAME_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/expr.h"
#include "src/runtime/database.h"
#include "src/runtime/expr_eval.h"

namespace ldb {

/// A runtime row: one Value per slot. Sized once per executing thread
/// (SlotPlan::n_slots) and reused for every row that flows through the
/// pipeline.
using Frame = std::vector<Value>;

struct CExpr;
using CExprPtr = std::shared_ptr<const CExpr>;

enum class CExprKind {
  kSlot,      ///< frame[slot] — a resolved range-variable reference
  kLit,       ///< constant (literals, monoid zeros, resolved extents)
  kRecord,
  kProj,
  kIf,
  kBinOp,
  kUnOp,
  kLet,       ///< evaluate `a` into a scratch slot, then evaluate `b`
  kMerge,
  kFallback,  ///< rebuild an Env from `scope` and run ExprEvaluator
};

/// A compiled expression. Fields not applicable to a node's kind are
/// default-initialized (mirrors Expr).
struct CExpr {
  CExprKind kind;
  int slot = -1;       // kSlot: source; kLet: scratch target
  int proj_id = -1;    // kProj: plan-unique id for the evaluator's cache
  Value literal;       // kLit
  std::string name;    // kProj attribute
  BinOpKind bin_op{};  // kBinOp
  UnOpKind un_op{};    // kUnOp
  MonoidKind monoid{}; // kMerge
  std::vector<std::pair<std::string, CExprPtr>> fields;  // kRecord
  CExprPtr a, b, c;

  // kFallback: the original term plus the (free-variable-restricted) mapping
  // from visible names to slots, used to reconstruct an Env per evaluation.
  ExprPtr original;
  std::vector<std::pair<std::string, int>> scope;
};

/// Evaluates compiled expressions against a frame. One instance per
/// executing thread (the embedded fallback interpreter caches extents).
/// The frame is non-const because kLet writes scratch slots.
class FrameEvaluator {
 public:
  explicit FrameEvaluator(const Database& db) : db_(db), fallback_(db) {}

  Value Eval(const CExpr& e, Frame& frame);

  /// NULL counts as false; non-bool throws (same contract as ExprEvaluator).
  bool EvalPred(const CExpr& e, Frame& frame);

  /// Copy-free evaluation for operand positions: slot reads, literals, and
  /// projections return a pointer to existing storage (the frame, the plan,
  /// the object store, or `*scratch` when the result had to be computed).
  /// Value is 128 bytes with two strings and two shared_ptrs inside, so
  /// skipping the copy is the difference on comparison-heavy inner loops.
  /// The pointer is valid until `frame`, `*scratch`, or the database is
  /// next mutated.
  const Value* EvalPtr(const CExpr& e, Frame& frame, Value* scratch);

  /// Routes parameter bindings to the embedded fallback interpreter (the
  /// compiled hot path reads params from frame slots instead).
  void SetParams(const std::map<std::string, Value>* params) {
    fallback_.SetParams(params);
  }

  /// Cancellation token shared with the iterators built over this
  /// evaluator; also armed on the fallback interpreter so long-running
  /// fallback comprehensions stay cancellable.
  void SetCancel(const CancelToken* cancel) {
    cancel_ = cancel;
    fallback_.SetCancel(cancel);
  }
  const CancelToken* cancel() const { return cancel_; }

  /// Arms this evaluator's memory tracker against a query's resource
  /// context (nullptr disarms). Iterators built over this evaluator charge
  /// their buffered state through mem(); the fallback interpreter's tracker
  /// stays disarmed (fallback subterms are transient per-row work).
  void SetResource(obs::QueryResourceContext* rc) { mem_.Arm(rc); }
  obs::MemoryTracker& mem() { return mem_; }

  const Database& db() const { return db_; }

 private:
  // Per-kProj-site memo: schema-homogeneous inputs make the object-store
  // lookup and the tuple field position stable across rows, so each is
  // resolved once and then validated with one cheap comparison per row
  // (falling back to the full lookup on mismatch — semantics are identical
  // to Database::Navigate). Per-evaluator state, so thread-safe: workers
  // each own a FrameEvaluator.
  struct ProjCache {
    const std::vector<Value>* class_vec = nullptr;  ///< resolved object store
    std::string cls;                                ///< class it belongs to
    int field_idx = -1;                             ///< last tuple hit
  };

  const Value* EvalProjPtr(const CExpr& e, const Value& base, Value* scratch);

  const Database& db_;
  ExprEvaluator fallback_;
  const CancelToken* cancel_ = nullptr;
  obs::MemoryTracker mem_;
  std::vector<ProjCache> proj_cache_;  // indexed by CExpr::proj_id
};

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_FRAME_H_
