// Plan-time slot compilation of physical plans (see frame.h for the why).
//
// CompileSlotPlan walks a Reduce-rooted PhysOp tree, assigns every range
// variable a dense frame slot, and compiles every operator expression
// (predicates, unnest paths, hash keys, group-by keys, heads) into CExpr
// trees with resolved slot references.
//
// Slot layout. Slots are assigned depth-first, left before right, so:
//   * a subtree's output bindings occupy a contiguous covering span
//     [out_lo, out_hi) — join concatenation is a range copy and outer-join
//     NULL padding is a range fill;
//   * out_hi always equals the subtree's allocation high-water mark; the
//     covering span may include dead slots (bindings hidden by a HashNest
//     below), which are only ever copied or NULL-filled, never read.
// Scratch slots for kLet (compiled lambda applications) are allocated after
// all operator slots; SlotPlan::n_slots sizes the whole frame.
//
// Scoping mirrors the Env executor exactly: later bindings shadow earlier
// ones, a join's output scope is left-then-right, a HashNest replaces its
// child's scope with the group-by names plus the accumulated variable.

#ifndef LAMBDADB_RUNTIME_SLOT_PLAN_H_
#define LAMBDADB_RUNTIME_SLOT_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/frame.h"
#include "src/runtime/physical_plan.h"

namespace ldb {

struct SlotOp;
using SlotOpPtr = std::shared_ptr<const SlotOp>;

/// One slot-compiled physical operator. Field use mirrors PhysOp with names
/// resolved to slots and expressions compiled.
struct SlotOp {
  PhysKind kind;
  SlotOpPtr left, right;

  int id = 0;          ///< stable pre-order id (keys shared build tables)
  int out_lo = 0;      ///< covering span of this subtree's output bindings
  int out_hi = 0;

  std::string extent;  // scans
  int var_slot = -1;   // scans/unnests bound variable; nest output variable
  CExprPtr pred;       // never null; compiled True() if none
  CExprPtr path;       // unnests
  CExprPtr head;       // nest/reduce
  MonoidKind monoid{};

  // kIndexScan
  std::string index_attr;
  CExprPtr index_key;

  // hash joins
  std::vector<CExprPtr> probe_keys;
  std::vector<CExprPtr> build_keys;
  bool build_is_left = false;

  // kHashNest: output slot + compiled key expression (over the child scope)
  // per group-by column; null_slots are the resolved null_vars.
  std::vector<std::pair<int, CExprPtr>> group_slots;
  std::vector<int> null_slots;
};

/// A compiled plan: the Reduce root plus the frame size (operator slots +
/// scratch slots for compiled lambda applications and query parameters).
struct SlotPlan {
  SlotOpPtr root;
  int n_slots = 0;

  /// Parameter name -> reserved frame slot. kParam expressions compile to
  /// plain kSlot reads; executors write the session's bindings into these
  /// slots of every frame before rows flow (ExecOptions::params).
  std::vector<std::pair<std::string, int>> param_slots;
};

/// Compiles `plan` (Reduce-rooted, as produced by PlanPhysical) against
/// `db` (extent references resolve to constants at compile time). Throws
/// EvalError on unbound variables.
SlotPlan CompileSlotPlan(const PhysPtr& plan, const Database& db);

/// Indented rendering with slot annotations (debugging / EXPLAIN).
std::string PrintSlotPlan(const SlotPlan& plan);

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_SLOT_PLAN_H_
