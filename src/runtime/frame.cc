#include "src/runtime/frame.h"

#include "src/runtime/error.h"

namespace ldb {

namespace {
const Value kNullValue;  // stable NULL to point at (Value() is NULL)
}  // namespace

const Value* FrameEvaluator::EvalProjPtr(const CExpr& e, const Value& base,
                                         Value* scratch) {
  if (base.is_null()) return &kNullValue;  // NULL navigation yields NULL
  if (e.proj_id < 0) {
    Value v = db_.Navigate(base, e.name);
    *scratch = std::move(v);
    return scratch;
  }
  if (proj_cache_.size() <= static_cast<size_t>(e.proj_id)) {
    proj_cache_.resize(static_cast<size_t>(e.proj_id) + 1);
  }
  ProjCache& pc = proj_cache_[static_cast<size_t>(e.proj_id)];
  const Value* obj = &base;
  if (base.kind() == Value::Kind::kRef) {
    const Ref& r = base.AsRef();
    if (pc.class_vec == nullptr || pc.cls != r.class_name) {
      pc.class_vec = &db_.ObjectsOf(r.class_name);
      pc.cls = r.class_name;
    }
    if (r.oid < 0 || r.oid >= static_cast<int64_t>(pc.class_vec->size())) {
      throw EvalError("dangling reference " + r.class_name + "#" +
                      std::to_string(r.oid));
    }
    obj = &(*pc.class_vec)[static_cast<size_t>(r.oid)];
  }
  const Fields& fs = obj->AsTuple();
  if (pc.field_idx >= 0 && static_cast<size_t>(pc.field_idx) < fs.size() &&
      fs[static_cast<size_t>(pc.field_idx)].first == e.name) {
    return &fs[static_cast<size_t>(pc.field_idx)].second;
  }
  for (size_t i = 0; i < fs.size(); ++i) {
    if (fs[i].first == e.name) {
      pc.field_idx = static_cast<int>(i);
      return &fs[i].second;
    }
  }
  throw EvalError("tuple has no attribute '" + e.name + "': " +
                  obj->ToString());
}

const Value* FrameEvaluator::EvalPtr(const CExpr& e, Frame& frame,
                                     Value* scratch) {
  switch (e.kind) {
    case CExprKind::kSlot:
      return &frame[e.slot];
    case CExprKind::kLit:
      return &e.literal;
    case CExprKind::kProj: {
      // `base` may already live in *scratch; the projected field pointer
      // then points into the tuple payload *scratch keeps alive, which is
      // exactly the contract EvalPtr documents.
      const Value* base = EvalPtr(*e.a, frame, scratch);
      return EvalProjPtr(e, *base, scratch);
    }
    case CExprKind::kIf:
      return EvalPred(*e.a, frame) ? EvalPtr(*e.b, frame, scratch)
                                   : EvalPtr(*e.c, frame, scratch);
    default:
      *scratch = Eval(e, frame);
      return scratch;
  }
}

bool FrameEvaluator::EvalPred(const CExpr& e, Frame& frame) {
  Value scratch;
  const Value* v = EvalPtr(e, frame, &scratch);
  if (v->is_null()) return false;
  return v->AsBool();
}

Value FrameEvaluator::Eval(const CExpr& e, Frame& frame) {
  switch (e.kind) {
    case CExprKind::kSlot:
      return frame[e.slot];
    case CExprKind::kLit:
      return e.literal;
    case CExprKind::kRecord: {
      Fields fields;
      fields.reserve(e.fields.size());
      for (const auto& [n, f] : e.fields) {
        fields.emplace_back(n, Eval(*f, frame));
      }
      return Value::Tuple(std::move(fields));
    }
    case CExprKind::kProj: {
      Value scratch;
      return *EvalPtr(e, frame, &scratch);  // copy out before scratch dies
    }
    case CExprKind::kIf:
      return EvalPred(*e.a, frame) ? Eval(*e.b, frame) : Eval(*e.c, frame);
    case CExprKind::kBinOp: {
      // Short-circuit connectives.
      if (e.bin_op == BinOpKind::kAnd) {
        if (!EvalPred(*e.a, frame)) return Value::Bool(false);
        return Value::Bool(EvalPred(*e.b, frame));
      }
      if (e.bin_op == BinOpKind::kOr) {
        if (EvalPred(*e.a, frame)) return Value::Bool(true);
        return Value::Bool(EvalPred(*e.b, frame));
      }
      // Operands via the pointer path: comparisons and arithmetic on
      // projections/slots are the hottest expressions in any plan, and
      // neither needs an owned operand Value.
      Value ls, rs;
      const Value* l = EvalPtr(*e.a, frame, &ls);
      const Value* r = EvalPtr(*e.b, frame, &rs);
      switch (e.bin_op) {
        case BinOpKind::kEq:
        case BinOpKind::kNe:
        case BinOpKind::kLt:
        case BinOpKind::kLe:
        case BinOpKind::kGt:
        case BinOpKind::kGe:
          return ApplyCompareOp(e.bin_op, *l, *r);
        default:
          return ApplyArithOp(e.bin_op, *l, *r);
      }
    }
    case CExprKind::kUnOp: {
      Value scratch;
      return ApplyUnaryOp(e.un_op, *EvalPtr(*e.a, frame, &scratch));
    }
    case CExprKind::kLet:
      frame[e.slot] = Eval(*e.a, frame);
      return Eval(*e.b, frame);
    case CExprKind::kMerge: {
      Value l = Eval(*e.a, frame);
      Value r = Eval(*e.b, frame);
      return MonoidMerge(e.monoid, l, r);
    }
    case CExprKind::kFallback: {
      Env env;
      for (const auto& [name, slot] : e.scope) env.Bind(name, frame[slot]);
      return fallback_.Eval(e.original, env);
    }
  }
  throw InternalError("unhandled compiled expr kind");
}

}  // namespace ldb
