// The baseline query evaluator: direct nested-loop interpretation of a
// calculus term (no unnesting, no algebra). This is the strategy the paper
// attributes to OODB systems without unnesting (Section 1) and the
// comparator every benchmark measures against.

#ifndef LAMBDADB_RUNTIME_EVAL_CALCULUS_H_
#define LAMBDADB_RUNTIME_EVAL_CALCULUS_H_

#include "src/core/expr.h"
#include "src/runtime/database.h"

namespace ldb {

/// Evaluates a closed calculus term by nested loops.
Value EvalCalculus(const ExprPtr& e, const Database& db);

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_EVAL_CALCULUS_H_
