#include "src/runtime/eval_algebra.h"

#include <unordered_map>

#include "src/runtime/error.h"
#include "src/runtime/expr_eval.h"

namespace ldb {

namespace {

class Executor {
 public:
  Executor(const Database& db, const PhysicalOptions& options)
      : ev_(db), options_(options) {}

  Value Run(const AlgPtr& plan) {
    LDB_INTERNAL_CHECK(plan && plan->kind == AlgKind::kReduce,
                       "plan root must be a reduce");
    std::vector<Env> input = Stream(plan->left);
    Accumulator acc(plan->monoid);  // (O4)
    for (const Env& env : input) {
      if (!ev_.EvalPred(plan->pred, env)) continue;
      acc.Add(ev_.Eval(plan->head, env));
      if (acc.Saturated()) break;
    }
    return acc.Finish();
  }

 private:
  ExprEvaluator ev_;
  PhysicalOptions options_;

  std::vector<Env> Stream(const AlgPtr& op) {
    LDB_INTERNAL_CHECK(op != nullptr, "null plan node");
    switch (op->kind) {
      case AlgKind::kUnit:
        return {Env()};
      case AlgKind::kScan:
        return EvalScan(*op);
      case AlgKind::kSelect: {
        std::vector<Env> out;
        for (Env& env : Stream(op->left)) {
          if (ev_.EvalPred(op->pred, env)) out.push_back(std::move(env));
        }
        return out;
      }
      case AlgKind::kJoin:
      case AlgKind::kOuterJoin:
        return EvalJoin(*op);
      case AlgKind::kUnnest:
      case AlgKind::kOuterUnnest:
        return EvalUnnest(*op);
      case AlgKind::kNest:
        return EvalNest(*op);
      case AlgKind::kReduce:
        throw InternalError("reduce below the plan root");
    }
    throw InternalError("unhandled operator");
  }

  std::vector<Env> EvalScan(const AlgOp& op) {  // σp(X) over an extent (O2)
    std::vector<Env> out;
    // Access-path choice: a predicate pinning an indexed attribute to a
    // constant fetches through the index instead of scanning the extent.
    IndexMatch m;
    if (options_.use_indexes && MatchIndexScan(op, ev_.db(), &m)) {
      Value key = ev_.Eval(m.key, Env());
      if (key.is_null()) return out;  // = NULL never matches
      for (const Value& ref : ev_.db().IndexLookup(op.extent, m.attr, key)) {
        Env env;
        env.Bind(op.var, ref);
        if (ev_.EvalPred(m.residual, env)) out.push_back(std::move(env));
      }
      return out;
    }
    for (const Value& ref : ev_.db().Extent(op.extent)) {
      Env env;
      env.Bind(op.var, ref);
      if (ev_.EvalPred(op.pred, env)) out.push_back(std::move(env));
    }
    return out;
  }

  static Env Concat(const Env& l, const Env& r) {
    Env out = l;
    for (const auto& [v, val] : r.bindings()) out.Bind(v, val);
    return out;
  }

  static Env PadNulls(const Env& l, const std::vector<std::string>& vars) {
    Env out = l;
    for (const std::string& v : vars) out.Bind(v, Value::Null());
    return out;
  }

  // (O1) join and (O5) left outer-join, hash or nested-loop.
  std::vector<Env> EvalJoin(const AlgOp& op) {
    const bool outer = op.kind == AlgKind::kOuterJoin;
    std::vector<Env> left = Stream(op.left);
    std::vector<Env> right = Stream(op.right);
    std::vector<std::string> right_vars = OutputVars(op.right);
    std::vector<Env> out;

    JoinKeys keys = ExtractEquiKeys(op.pred, OutputVars(op.left), right_vars);
    if (options_.use_hash_joins && keys.hashable()) {
      // Inner joins build the hash table on the smaller input; outer joins
      // must probe with the left rows (padding is per left row), so they
      // always build on the right.
      if (!outer && left.size() < right.size()) {
        std::swap(left, right);
        std::swap(keys.left_keys, keys.right_keys);
      }
      // Build on the right input.
      std::unordered_map<Value, std::vector<const Env*>, ValueHash> table;
      table.reserve(right.size());
      for (const Env& r : right) {
        Elems kv;
        kv.reserve(keys.right_keys.size());
        bool null_key = false;
        for (const ExprPtr& k : keys.right_keys) {
          Value v = ev_.Eval(k, r);
          // An equality with a NULL side never matches (comparisons with
          // NULL are false), so NULL-keyed build rows are dropped.
          if (v.is_null()) null_key = true;
          kv.push_back(std::move(v));
        }
        if (!null_key) table[Value::List(std::move(kv))].push_back(&r);
      }
      for (const Env& l : left) {
        Elems kv;
        kv.reserve(keys.left_keys.size());
        bool null_key = false;
        for (const ExprPtr& k : keys.left_keys) {
          Value v = ev_.Eval(k, l);
          if (v.is_null()) null_key = true;
          kv.push_back(std::move(v));
        }
        size_t matches = 0;
        if (!null_key) {
          auto it = table.find(Value::List(std::move(kv)));
          if (it != table.end()) {
            for (const Env* r : it->second) {
              Env merged = Concat(l, *r);
              if (ev_.EvalPred(keys.residual, merged)) {
                out.push_back(std::move(merged));
                ++matches;
              }
            }
          }
        }
        if (outer && matches == 0) out.push_back(PadNulls(l, right_vars));
      }
      return out;
    }

    // Nested loops.
    for (const Env& l : left) {
      size_t matches = 0;
      for (const Env& r : right) {
        Env merged = Concat(l, r);
        if (ev_.EvalPred(op.pred, merged)) {
          out.push_back(std::move(merged));
          ++matches;
        }
      }
      if (outer && matches == 0) out.push_back(PadNulls(l, right_vars));
    }
    return out;
  }

  // (O3) unnest and (O6) outer-unnest.
  std::vector<Env> EvalUnnest(const AlgOp& op) {
    const bool outer = op.kind == AlgKind::kOuterUnnest;
    std::vector<Env> out;
    for (const Env& l : Stream(op.left)) {
      Value coll = ev_.Eval(op.path, l);
      size_t matches = 0;
      if (!coll.is_null()) {
        for (const Value& elem : coll.AsElems()) {
          Env extended = l.With(op.var, elem);
          if (ev_.EvalPred(op.pred, extended)) {
            out.push_back(std::move(extended));
            ++matches;
          }
        }
      }
      if (outer && matches == 0) {
        out.push_back(l.With(op.var, Value::Null()));
      }
    }
    return out;
  }

  // (O7) nest: hash grouping on the group-by keys. Every input row creates
  // its group (so outer-join padding yields a group with the zero element);
  // a row contributes its head value only if its null-test variables are
  // all non-NULL and the predicate holds.
  std::vector<Env> EvalNest(const AlgOp& op) {
    std::vector<Env> input = Stream(op.left);
    struct Group {
      Elems key;
      Accumulator acc;
    };
    std::vector<Group> groups;
    std::unordered_map<Value, size_t, ValueHash> index;
    for (const Env& env : input) {
      Elems key;
      key.reserve(op.group_by.size());
      for (const auto& [name, expr] : op.group_by) {
        key.push_back(ev_.Eval(expr, env));
      }
      Value key_value = Value::List(key);
      auto [it, inserted] = index.emplace(key_value, groups.size());
      if (inserted) {
        groups.push_back(Group{std::move(key), Accumulator(op.monoid)});
      }
      Group& g = groups[it->second];

      bool padded = false;
      for (const std::string& v : op.null_vars) {
        const Value* val = env.Lookup(v);
        LDB_INTERNAL_CHECK(val != nullptr, "nest null-var not bound");
        if (val->is_null()) {
          padded = true;
          break;
        }
      }
      if (!padded && ev_.EvalPred(op.pred, env)) {
        g.acc.Add(ev_.Eval(op.head, env));
      }
    }
    std::vector<Env> out;
    out.reserve(groups.size());
    for (Group& g : groups) {
      Env env;
      for (size_t i = 0; i < op.group_by.size(); ++i) {
        env.Bind(op.group_by[i].first, g.key[i]);
      }
      env.Bind(op.var, g.acc.Finish());
      out.push_back(std::move(env));
    }
    // A nest with no group-by attributes is scalar aggregation (it arises
    // when an UNCORRELATED subquery is spliced before any outer generator):
    // it must emit exactly one row even over an empty input, carrying the
    // monoid's zero — all{...} over nothing is true, sum is 0, etc.
    if (op.group_by.empty() && groups.empty()) {
      Env env;
      env.Bind(op.var, Accumulator(op.monoid).Finish());
      out.push_back(std::move(env));
    }
    return out;
  }
};

}  // namespace

Value ExecutePlan(const AlgPtr& plan, const Database& db,
                  const PhysicalOptions& options) {
  Executor ex(db, options);
  return ex.Run(plan);
}

}  // namespace ldb
