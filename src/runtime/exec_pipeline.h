// Pipelined execution of physical plans.
//
// Two engines live here:
//
//  * The SLOT-FRAME engine (the default): the plan is first slot-compiled
//    (slot_plan.h) so rows are flat Value frames and variable references are
//    integer slots; iterators implement the same Volcano open/next/close
//    protocol but communicate through a shared per-thread frame instead of
//    passing Env objects. With ExecOptions::n_threads > 1 the engine runs
//    morsel-driven parallel: the driving table scan is split into morsels,
//    workers execute the streaming spine against shared read-only hash/join
//    build tables, and per-morsel partial accumulators (or partial group
//    tables for a spine HashNest) are merged in morsel order — results are
//    identical to the serial path (see docs/EXECUTOR.md for why).
//
//  * The legacy ENV engine (RowIterator/MakeIterator): string-keyed
//    environments, kept as a reference implementation and for tests that
//    inspect bindings by name. ExecOptions::use_slot_frames = false routes
//    through it.
//
// Blocking points are exactly the hash builds (join build sides, grouping
// tables) — everything else streams, and the root reduce stops pulling the
// moment a quantifier saturates.

#ifndef LAMBDADB_RUNTIME_EXEC_PIPELINE_H_
#define LAMBDADB_RUNTIME_EXEC_PIPELINE_H_

#include <memory>

#include "src/runtime/expr_eval.h"
#include "src/runtime/physical_plan.h"
#include "src/runtime/slot_plan.h"

namespace ldb {

/// A pull-based row iterator over environments (legacy Env engine).
class RowIterator {
 public:
  virtual ~RowIterator() = default;
  /// Acquires resources / builds hash tables. Must be called before Next.
  virtual void Open() = 0;
  /// Produces the next row into *out; returns false at end of stream.
  virtual bool Next(Env* out) = 0;
  /// Releases buffered state. Idempotent.
  virtual void Close() {}
};

/// Builds the legacy Env iterator tree for a (non-Reduce) physical subtree.
/// Exposed for tests; `ev` must outlive the returned iterator.
std::unique_ptr<RowIterator> MakeIterator(const PhysPtr& op, ExprEvaluator* ev);

/// Executes a Reduce-rooted physical plan by pulling rows through the
/// pipeline; short-circuits saturated quantifier roots. `options` selects
/// the engine (slot frames vs legacy Env) and the degree of parallelism.
Value ExecutePipelined(const PhysPtr& plan, const Database& db,
                       const ExecOptions& options = {});

/// Executes an already slot-compiled plan (serial or parallel per
/// `options`). Exposed so benchmarks can separate compile time from run
/// time; `plan` must come from CompileSlotPlan against the same `db`.
Value ExecuteSlotPlan(const SlotPlan& plan, const Database& db,
                      const ExecOptions& options = {});

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_EXEC_PIPELINE_H_
