// Volcano-style pipelined execution of physical plans: every operator is an
// open/next/close iterator, rows flow one at a time, and the root reduce
// stops pulling the moment a quantifier saturates (an `exists` stops at the
// first witness instead of materializing the whole join).
//
// Blocking points are exactly the hash builds (join build sides, grouping
// tables) — everything else streams.

#ifndef LAMBDADB_RUNTIME_EXEC_PIPELINE_H_
#define LAMBDADB_RUNTIME_EXEC_PIPELINE_H_

#include <memory>

#include "src/runtime/expr_eval.h"
#include "src/runtime/physical_plan.h"

namespace ldb {

/// A pull-based row iterator over environments.
class RowIterator {
 public:
  virtual ~RowIterator() = default;
  /// Acquires resources / builds hash tables. Must be called before Next.
  virtual void Open() = 0;
  /// Produces the next row into *out; returns false at end of stream.
  virtual bool Next(Env* out) = 0;
  /// Releases buffered state. Idempotent.
  virtual void Close() {}
};

/// Builds the iterator tree for a (non-Reduce) physical subtree. Exposed for
/// tests; `ev` must outlive the returned iterator.
std::unique_ptr<RowIterator> MakeIterator(const PhysPtr& op, ExprEvaluator* ev);

/// Executes a Reduce-rooted physical plan by pulling rows through the
/// pipeline; short-circuits saturated quantifier roots.
Value ExecutePipelined(const PhysPtr& plan, const Database& db);

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_EXEC_PIPELINE_H_
