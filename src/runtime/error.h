// Error types thrown by the lambdadb public API.
//
// All user-facing failures are reported as subclasses of ldb::Error so that a
// caller can catch one type at the API boundary. Internal invariant
// violations use LDB_INTERNAL_CHECK which throws InternalError with the
// failing condition and location.

#ifndef LAMBDADB_RUNTIME_ERROR_H_
#define LAMBDADB_RUNTIME_ERROR_H_

#include <stdexcept>
#include <string>

namespace ldb {

/// Base class of all lambdadb errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

/// Raised by the OQL lexer/parser on malformed input.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& msg) : Error("parse error: " + msg) {}
};

/// Raised by the type checker (calculus typing, Figure 3; algebra typing,
/// Figure 6) on ill-typed queries or plans.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& msg) : Error("type error: " + msg) {}
};

/// Raised when a query uses a feature outside the supported fragment (e.g.
/// unnesting a bag comprehension, which the paper leaves as future work).
class UnsupportedError : public Error {
 public:
  explicit UnsupportedError(const std::string& msg)
      : Error("unsupported: " + msg) {}
};

/// Raised by the evaluators on runtime failures (bad field access, dangling
/// object reference, division by zero, ...).
class EvalError : public Error {
 public:
  explicit EvalError(const std::string& msg) : Error("eval error: " + msg) {}
};

/// Raised when a running query is aborted cooperatively — an explicit
/// Cancel() on its session or an expired deadline. The executors check the
/// token at morsel boundaries and inside blocking (hash-build / nest /
/// buffer) loops, so both engines abort deterministically with all worker
/// threads joined and no partial result escaping.
class QueryCancelled : public Error {
 public:
  explicit QueryCancelled(const std::string& msg)
      : Error("query cancelled: " + msg) {}
};

/// Raised when an internal invariant is violated; indicates a bug in lambdadb.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& msg)
      : Error("internal error: " + msg) {}
};

#define LDB_INTERNAL_CHECK(cond, msg)                                   \
  do {                                                                  \
    if (!(cond)) {                                                      \
      throw ::ldb::InternalError(std::string(msg) + " (" #cond ") at " \
                                 __FILE__ ":" + std::to_string(__LINE__)); \
    }                                                                   \
  } while (0)

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_ERROR_H_
