#include "src/runtime/database.h"

#include <algorithm>

#include "src/runtime/error.h"

namespace ldb {

Value Database::Insert(const std::string& class_name, Value object) {
  const ClassDecl* decl = schema_.FindClass(class_name);
  if (decl == nullptr) throw TypeError("unknown class '" + class_name + "'");
  if (object.kind() != Value::Kind::kTuple) {
    throw EvalError("object must be a tuple: " + object.ToString());
  }
  auto& vec = objects_[class_name];
  int64_t oid = static_cast<int64_t>(vec.size());
  vec.push_back(std::move(object));
  Value ref = Value::MakeRef(class_name, oid);
  if (!decl->extent.empty()) extents_[decl->extent].push_back(ref);
  return ref;
}

void Database::Update(const Value& ref, Value object) {
  const Ref& r = ref.AsRef();
  auto it = objects_.find(r.class_name);
  if (it == objects_.end() || r.oid < 0 ||
      r.oid >= static_cast<int64_t>(it->second.size())) {
    throw EvalError("dangling reference " + ref.ToString());
  }
  it->second[static_cast<size_t>(r.oid)] = std::move(object);
}

const std::vector<Value>& Database::ObjectsOf(
    const std::string& class_name) const {
  auto it = objects_.find(class_name);
  if (it == objects_.end()) {
    throw EvalError("no objects of class " + class_name);
  }
  return it->second;
}

const Value& Database::Deref(const Ref& ref) const {
  auto it = objects_.find(ref.class_name);
  if (it == objects_.end() || ref.oid < 0 ||
      ref.oid >= static_cast<int64_t>(it->second.size())) {
    throw EvalError("dangling reference " + ref.class_name + "#" +
                    std::to_string(ref.oid));
  }
  return it->second[static_cast<size_t>(ref.oid)];
}

const std::vector<Value>& Database::Extent(const std::string& extent_name) const {
  if (!schema_.IsExtent(extent_name)) {
    throw TypeError("unknown extent '" + extent_name + "'");
  }
  static const std::vector<Value> kEmpty;
  auto it = extents_.find(extent_name);
  return it == extents_.end() ? kEmpty : it->second;
}

Value Database::Navigate(const Value& v, const std::string& attr) const {
  if (v.is_null()) return Value::Null();
  if (v.kind() == Value::Kind::kRef) {
    return Deref(v.AsRef()).Field(attr);
  }
  return v.Field(attr);
}

size_t Database::ObjectCount() const {
  size_t n = 0;
  for (const auto& [cls, vec] : objects_) n += vec.size();
  return n;
}

void Database::BuildIndex(const std::string& extent_name,
                          const std::string& attr) {
  const ClassDecl* cls = schema_.FindExtent(extent_name);
  if (cls == nullptr) throw TypeError("unknown extent '" + extent_name + "'");
  if (!cls->AttributeType(attr)) {
    throw TypeError("class " + cls->name + " has no attribute '" + attr + "'");
  }
  IndexMap index;
  for (const Value& ref : Extent(extent_name)) {
    const Value& key = Deref(ref.AsRef()).Field(attr);
    if (key.is_null()) continue;  // equality with NULL never matches
    index[key].push_back(ref);
  }
  indexes_[IndexKey{extent_name, attr}] = std::move(index);
}

bool Database::HasIndex(const std::string& extent_name,
                        const std::string& attr) const {
  return indexes_.count(IndexKey{extent_name, attr}) > 0;
}

const std::vector<Value>& Database::IndexLookup(const std::string& extent_name,
                                                const std::string& attr,
                                                const Value& key) const {
  static const std::vector<Value> kEmpty;
  auto it = indexes_.find(IndexKey{extent_name, attr});
  if (it == indexes_.end()) {
    throw EvalError("no index on " + extent_name + "." + attr);
  }
  auto hit = it->second.find(key);
  return hit == it->second.end() ? kEmpty : hit->second;
}

void Database::DeclareIndex(const std::string& extent_name,
                            const std::string& attr) {
  const ClassDecl* cls = schema_.FindExtent(extent_name);
  if (cls == nullptr) throw TypeError("unknown extent '" + extent_name + "'");
  if (!cls->AttributeType(attr)) {
    throw TypeError("class " + cls->name + " has no attribute '" + attr + "'");
  }
  IndexKey key{extent_name, attr};
  for (const IndexKey& d : declared_) {
    if (d == key) return;
  }
  declared_.push_back(std::move(key));
}

std::vector<std::pair<std::string, std::string>> Database::IndexSpecs() const {
  std::vector<IndexKey> out;
  for (const auto& [key, index] : indexes_) out.push_back(key);
  for (const IndexKey& d : declared_) {
    if (indexes_.count(d) == 0) out.push_back(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RebuildIndexes(Database& db) {
  for (const auto& [extent, attr] : db.IndexSpecs()) {
    if (!db.HasIndex(extent, attr)) db.BuildIndex(extent, attr);
  }
}

}  // namespace ldb
