// Executor for nested relational algebra plans (the operators of Figure 5),
// with physical operator selection per PhysicalOptions (hash vs nested-loop
// joins).
//
// Streams are materialized vectors of environments. Each operator consumes
// its children's streams and produces its own; the root Reduce folds the
// final stream into a Value.

#ifndef LAMBDADB_RUNTIME_EVAL_ALGEBRA_H_
#define LAMBDADB_RUNTIME_EVAL_ALGEBRA_H_

#include "src/core/algebra.h"
#include "src/runtime/database.h"
#include "src/runtime/physical.h"

namespace ldb {

/// Executes a Reduce-rooted plan and returns the query result.
Value ExecutePlan(const AlgPtr& plan, const Database& db,
                  const PhysicalOptions& options = {});

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_EVAL_ALGEBRA_H_
