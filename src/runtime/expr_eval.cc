#include "src/runtime/expr_eval.h"

#include <cmath>
#include <functional>

#include "src/core/pretty.h"
#include "src/runtime/cancel.h"
#include "src/runtime/error.h"

namespace ldb {

Value ExprEvaluator::LookupVar(const std::string& name, const Env& env) {
  if (const Value* v = env.Lookup(name)) return *v;
  auto it = extent_cache_.find(name);
  if (it != extent_cache_.end()) return it->second;
  if (db_.schema().IsExtent(name)) {
    Value v = Value::Set(db_.Extent(name));
    extent_cache_.emplace(name, v);
    return v;
  }
  throw EvalError("unbound variable '" + name + "'");
}

bool ExprEvaluator::EvalPred(const ExprPtr& pred, const Env& env) {
  Value v = Eval(pred, env);
  if (v.is_null()) return false;
  return v.AsBool();
}

Value ApplyCompareOp(BinOpKind op, const Value& l, const Value& r) {
  // Comparisons involving NULL are false (paper: the only operation on
  // NULL is the null test).
  if (l.is_null() || r.is_null()) return Value::Bool(false);
  int c = Value::Compare(l, r);
  switch (op) {
    case BinOpKind::kEq: return Value::Bool(c == 0);
    case BinOpKind::kNe: return Value::Bool(c != 0);
    case BinOpKind::kLt: return Value::Bool(c < 0);
    case BinOpKind::kLe: return Value::Bool(c <= 0);
    case BinOpKind::kGt: return Value::Bool(c > 0);
    case BinOpKind::kGe: return Value::Bool(c >= 0);
    default:
      throw InternalError("not a comparison operator");
  }
}

Value ApplyArithOp(BinOpKind op, const Value& l, const Value& r) {
  // Arithmetic: NULL propagates.
  if (l.is_null() || r.is_null()) return Value::Null();
  bool both_int =
      l.kind() == Value::Kind::kInt && r.kind() == Value::Kind::kInt;
  double x = l.AsNumeric(), y = r.AsNumeric();
  switch (op) {
    case BinOpKind::kAdd:
      return both_int ? Value::Int(l.AsInt() + r.AsInt()) : Value::Real(x + y);
    case BinOpKind::kSub:
      return both_int ? Value::Int(l.AsInt() - r.AsInt()) : Value::Real(x - y);
    case BinOpKind::kMul:
      return both_int ? Value::Int(l.AsInt() * r.AsInt()) : Value::Real(x * y);
    case BinOpKind::kDiv:
      if (y == 0) throw EvalError("division by zero");
      return both_int ? Value::Int(l.AsInt() / r.AsInt()) : Value::Real(x / y);
    case BinOpKind::kMod:
      if (!both_int) throw EvalError("mod on non-integers");
      if (r.AsInt() == 0) throw EvalError("mod by zero");
      return Value::Int(l.AsInt() % r.AsInt());
    default:
      throw InternalError("unhandled binop");
  }
}

Value ApplyUnaryOp(UnOpKind op, const Value& v) {
  switch (op) {
    case UnOpKind::kIsNull:
      return Value::Bool(v.is_null());
    case UnOpKind::kNot:
      if (v.is_null()) return Value::Bool(true);  // not(false-y NULL)
      return Value::Bool(!v.AsBool());
    case UnOpKind::kNeg:
      if (v.is_null()) return Value::Null();
      if (v.kind() == Value::Kind::kInt) return Value::Int(-v.AsInt());
      return Value::Real(-v.AsNumeric());
  }
  throw InternalError("unhandled unop");
}

Value ExprEvaluator::EvalBinOp(const ExprPtr& e, const Env& env) {
  const BinOpKind op = e->bin_op;
  // Short-circuit connectives.
  if (op == BinOpKind::kAnd) {
    if (!EvalPred(e->a, env)) return Value::Bool(false);
    return Value::Bool(EvalPred(e->b, env));
  }
  if (op == BinOpKind::kOr) {
    if (EvalPred(e->a, env)) return Value::Bool(true);
    return Value::Bool(EvalPred(e->b, env));
  }

  Value l = Eval(e->a, env);
  Value r = Eval(e->b, env);
  switch (op) {
    case BinOpKind::kEq:
    case BinOpKind::kNe:
    case BinOpKind::kLt:
    case BinOpKind::kLe:
    case BinOpKind::kGt:
    case BinOpKind::kGe:
      return ApplyCompareOp(op, l, r);
    default:
      return ApplyArithOp(op, l, r);
  }
}

Value ExprEvaluator::EvalComp(const ExprPtr& comp, const Env& env) {
  Accumulator acc(comp->monoid);
  // Recursive nested-loop over the qualifiers — rules (D3)-(D7).
  std::function<void(size_t, const Env&)> loop = [&](size_t i, const Env& cur) {
    if (acc.Saturated()) return;  // quantifier short-circuit
    if (i == comp->quals.size()) {
      acc.Add(Eval(comp->a, cur));  // (D1)/(D2): accumulate unit(head)
      return;
    }
    const Qualifier& q = comp->quals[i];
    if (!q.is_generator) {
      if (EvalPred(q.expr, cur)) loop(i + 1, cur);  // (D3)/(D4)
      return;
    }
    Value dom = Eval(q.expr, cur);
    if (dom.is_null()) return;  // generator over NULL yields nothing
    for (const Value& elem : dom.AsElems()) {  // (D5)-(D7)
      if (cancel_ != nullptr) cancel_->ThrowIfCancelled();
      loop(i + 1, cur.With(q.var, elem));
      if (acc.Saturated()) return;
    }
  };
  loop(0, env);
  return acc.Finish();
}

Value ExprEvaluator::Eval(const ExprPtr& e, const Env& env) {
  if (!e) throw EvalError("null expression");
  switch (e->kind) {
    case ExprKind::kVar:
      return LookupVar(e->name, env);
    case ExprKind::kParam: {
      if (params_ != nullptr) {
        auto it = params_->find(e->name);
        if (it != params_->end()) return it->second;
      }
      throw EvalError("unbound parameter $" + e->name);
    }
    case ExprKind::kLiteral:
      return e->literal;
    case ExprKind::kRecord: {
      Fields fields;
      fields.reserve(e->fields.size());
      for (const auto& [n, f] : e->fields) fields.emplace_back(n, Eval(f, env));
      return Value::Tuple(std::move(fields));
    }
    case ExprKind::kProj:
      return db_.Navigate(Eval(e->a, env), e->name);
    case ExprKind::kIf:
      return EvalPred(e->a, env) ? Eval(e->b, env) : Eval(e->c, env);
    case ExprKind::kBinOp:
      return EvalBinOp(e, env);
    case ExprKind::kUnOp:
      return ApplyUnaryOp(e->un_op, Eval(e->a, env));
    case ExprKind::kLambda:
      throw EvalError("cannot evaluate a bare lambda: " + PrintExpr(e));
    case ExprKind::kApply: {
      if (e->a->kind != ExprKind::kLambda) {
        throw EvalError("application of non-lambda");
      }
      Value arg = Eval(e->b, env);
      return Eval(e->a->a, env.With(e->a->name, std::move(arg)));
    }
    case ExprKind::kComp:
      return EvalComp(e, env);
    case ExprKind::kMerge: {
      Value l = Eval(e->a, env);
      Value r = Eval(e->b, env);
      return MonoidMerge(e->monoid, l, r);
    }
    case ExprKind::kZero:
      return MonoidZero(e->monoid);
  }
  throw InternalError("unhandled expr kind");
}

}  // namespace ldb
