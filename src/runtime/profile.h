// Per-operator runtime profiling (the EXPLAIN ANALYZE substrate).
//
// A QueryProfiler collects one OperatorStats per physical operator, keyed by
// the operator's stable pre-order id — the numbering CompileSlotPlan assigns
// (root Reduce = 0, then left subtree, then right), which the legacy Env
// engine and the EXPLAIN ANALYZE printer reproduce by walking the PhysOp
// tree in the same order. Profiling is opt-in through
// ExecOptions::profiler: when the pointer is null the executor builds the
// exact uninstrumented iterator tree, so disabled profiling costs one
// branch per operator at pipeline construction and nothing per row.
//
// Under morsel-driven parallelism every worker owns a private QueryProfiler
// (no shared counters, no atomics on the hot path); the workers' profilers,
// the shared-table prebuild pass, and the serial tail above a spine
// HashNest all merge into the caller's profiler when the pipeline ends.
// Row counts therefore sum to exactly the serial totals (the parallel
// executor produces identical results, see docs/EXECUTOR.md); only
// next_calls and wall times differ, since each worker pays its own
// end-of-stream call and times accumulate across threads.
//
// ProfileToJson/ProfileFromJson round-trip the whole profile so benchmarks
// and CI can store and diff profiles (docs/OBSERVABILITY.md has the schema).

#ifndef LAMBDADB_RUNTIME_PROFILE_H_
#define LAMBDADB_RUNTIME_PROFILE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/physical_plan.h"

namespace ldb {

struct CompileTrace;  // fwd (src/core/optimizer.h)

/// Counters for one physical operator. Times are cumulative nanoseconds and
/// include the operator's children (Volcano iterators nest); "self" time is
/// derived at rendering time by subtracting child totals.
struct OperatorStats {
  int op_id = -1;       ///< pre-order id; matches SlotOp::id
  PhysKind kind{};
  std::string label;    ///< e.g. "TableScan(Employees)"

  uint64_t opens = 0;          ///< Open() calls (morsels re-open per range)
  uint64_t next_calls = 0;     ///< Next() calls, incl. the end-of-stream one
  uint64_t rows_out = 0;       ///< rows produced (Next() == true)
  double open_ns = 0;          ///< time in Open() — hash/buffer builds
  double next_ns = 0;          ///< cumulative time in Next(), children incl.

  uint64_t build_rows = 0;     ///< join build-side rows buffered/hashed
  uint64_t groups = 0;         ///< HashNest distinct groups
  uint64_t short_circuits = 0; ///< quantifier saturation stops (Reduce)
  uint64_t mem_bytes = 0;      ///< estimated bytes this operator buffered
                               ///< (join builds, nest state; 0 = stateless)

  /// Adds another run's (or worker's) counters for the same operator.
  void MergeFrom(const OperatorStats& o);
};

/// Per-worker utilization totals under morsel parallelism.
struct WorkerStats {
  int worker = -1;
  uint64_t morsels = 0;   ///< morsels this worker executed
  uint64_t rows = 0;      ///< spine rows this worker produced
  double busy_ns = 0;     ///< time spent executing morsels
};

/// Per-morsel accounting: extent range, spine rows produced, and the span
/// on the execution timeline (relative to the parallel run's start) so the
/// trace exporter (src/obs/trace_export.h) can draw one lane per worker.
struct MorselStats {
  uint64_t index = 0;
  uint64_t lo = 0;
  uint64_t hi = 0;
  uint64_t rows = 0;
  int worker = -1;      ///< worker that executed this morsel
  double start_ns = 0;  ///< offset from the run's first morsel grab
  double dur_ns = 0;    ///< wall time this worker spent on the morsel
};

/// Profile of one pipeline execution. Operator registration is single-
/// threaded by construction: workers each own a private profiler and merge
/// after the fact, so no member is atomic.
class QueryProfiler {
 public:
  QueryProfiler() = default;
  QueryProfiler(QueryProfiler&&) = default;
  QueryProfiler& operator=(QueryProfiler&&) = default;
  QueryProfiler(const QueryProfiler&) = delete;
  QueryProfiler& operator=(const QueryProfiler&) = delete;

  /// Returns the stats slot for `op_id`, creating it on first sight. The
  /// pointer stays valid for the profiler's lifetime.
  OperatorStats* Register(int op_id, PhysKind kind, const std::string& label);

  /// Stats for an operator, or nullptr if it never registered.
  const OperatorStats* Find(int op_id) const;

  /// Merges another profiler's operators (by id) and parallel metadata.
  void MergeFrom(const QueryProfiler& other);

  /// All operators, sorted by pre-order id.
  std::vector<const OperatorStats*> Operators() const;

  // -- execution-level metadata ---------------------------------------------
  int threads_used = 1;
  uint64_t morsel_size = 0;       ///< 0 until a parallel run sets it
  std::string parallel_mode;      ///< "serial" | "spine-reduce" | "spine-nest"
  double wall_ns = 0;             ///< end-to-end execution wall time
  std::vector<WorkerStats> workers;
  std::vector<MorselStats> morsels;

  // -- plan-cache metadata (filled by the query service; docs/SERVICE.md) ----
  uint64_t plan_cached = 0;       ///< 1 when this execution reused a cached plan
  uint64_t cache_hits = 0;        ///< cache-wide hit total at execute time
  uint64_t cache_misses = 0;      ///< cache-wide miss (compile) total
  uint64_t cache_evictions = 0;   ///< cache-wide LRU eviction total

 private:
  std::deque<OperatorStats> ops_;  // deque: stable addresses across growth
  std::unordered_map<int, OperatorStats*> by_id_;
};

/// Serializes a profile as a self-contained JSON object.
std::string ProfileToJson(const QueryProfiler& prof);

/// Parses a profile previously produced by ProfileToJson. Throws ParseError
/// on malformed input. ProfileToJson(ProfileFromJson(s)) == s for any s the
/// serializer produced.
QueryProfiler ProfileFromJson(const std::string& json);

/// Serializes an optimizer trace (stage wall times + rule firings) as JSON.
std::string CompileTraceToJson(const CompileTrace& trace);

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_PROFILE_H_
