// Physical operator selection for algebra plans.
//
// Unnesting by itself "does not result in performance improvement; it makes
// possible other optimizations" (paper, Section 1). The optimization it
// enables here is the classic one: once a correlated subquery has become a
// (outer-)join with an equality predicate, the join can run as a HASH join
// instead of a nested loop. This module analyses join predicates and
// extracts hash keys; the executor (eval_algebra) consults it.
//
// PhysicalOptions.use_hash_joins is the ablation knob for experiment P-PHYS:
// with it off, the unnested plan runs every join as a nested loop and the
// benchmark shows unnesting alone is roughly cost-neutral.

#ifndef LAMBDADB_RUNTIME_PHYSICAL_H_
#define LAMBDADB_RUNTIME_PHYSICAL_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/algebra.h"

namespace ldb {

class CancelToken;  // fwd (src/runtime/cancel.h)

namespace obs {
class QueryResourceContext;  // fwd (src/obs/resource.h)
}  // namespace obs

/// Execution options for the algebra executor.
struct PhysicalOptions {
  /// Use hash (outer-)joins when the predicate has equality conjuncts whose
  /// two sides split across the join inputs; otherwise nested loops.
  bool use_hash_joins = true;
  /// Use a hash index (Database::BuildIndex) instead of a full extent scan
  /// when a scan predicate pins an indexed attribute to a constant.
  bool use_indexes = true;
};

class QueryProfiler;  // fwd (src/runtime/profile.h)

/// Always-on execution totals, filled by both engines regardless of whether
/// a profiler is attached. The counters are kept by each run with plain
/// locals (one increment per root row; no atomics, no per-operator state)
/// and written out once at pipeline end, so they are cheap enough for the
/// service to collect on every query. The runtime layer knows nothing about
/// metrics; the QueryService flushes these into its MetricsRegistry
/// (src/obs/metrics.h).
struct ExecTotals {
  uint64_t root_rows = 0;   ///< rows folded by the root Reduce
  uint64_t morsels = 0;     ///< morsels dispatched (0 for serial runs)
  int workers = 0;          ///< worker threads that ran (0 for serial)
  double busy_ns = 0;       ///< summed worker busy time (0 for serial)
  const char* mode = "serial";  ///< "serial" | "spine-reduce" | "spine-nest"
};

/// Options for the pipelined executor (ExecutePipelined).
struct ExecOptions {
  /// Worker threads for morsel-driven parallelism. 1 = serial. Parallelism
  /// only engages when the plan's streaming spine is driven by a table scan
  /// large enough to split into more than one morsel; results are always
  /// identical to the serial path (see docs/EXECUTOR.md).
  int n_threads = 1;
  /// Rows per morsel handed to a worker at a time.
  size_t morsel_size = 2048;
  /// Execute through slot-compiled frames (plan-time variable resolution,
  /// flat row representation). Off = legacy string-keyed Env iterators.
  bool use_slot_frames = true;
  /// Per-operator runtime profiling sink (docs/OBSERVABILITY.md). Null (the
  /// default) disables profiling entirely: the executor builds exactly the
  /// uninstrumented iterator tree, so the off cost is one pointer test per
  /// operator at plan setup, not per row. Non-null: row counts, Next() call
  /// counts, open/build and cumulative execution times, hash-build sizes,
  /// and quantifier short-circuits accumulate into *profiler; under morsel
  /// parallelism each worker keeps private counters merged at pipeline end.
  QueryProfiler* profiler = nullptr;
  /// Cooperative cancellation token (src/runtime/cancel.h). Null (the
  /// default) disables the checks entirely. Non-null: both engines poll it
  /// at morsel boundaries and inside hash-build/nest/buffer loops and abort
  /// by throwing QueryCancelled with every worker thread joined.
  const CancelToken* cancel = nullptr;
  /// Bindings for $1/$name query parameters. Null when the plan has none;
  /// executing a parameterized plan without its bindings is an EvalError.
  /// The slot engine writes these into reserved frame slots before rows
  /// flow; the Env engine resolves them through the interpreter.
  const std::map<std::string, Value>* params = nullptr;
  /// Always-on execution totals sink. Null (the default) skips the writes;
  /// non-null: filled at pipeline end, including on a QueryCancelled unwind
  /// (partial totals), so service metrics count cancelled work too.
  ExecTotals* totals = nullptr;
  /// Per-query resource context (src/obs/resource.h). Null (the default)
  /// disarms the memory trackers entirely. Non-null: the engines charge
  /// buffered operator state (join builds, nest groups, collection folds)
  /// and publish rows-so-far against it, and abort with QueryMemoryExceeded
  /// when a charge pushes the query past the context's budget. The context
  /// must outlive the execution.
  obs::QueryResourceContext* resource = nullptr;
};

/// The result of analysing a join predicate: `left_keys[i] == right_keys[i]`
/// are the hashable equalities (left_keys evaluate over the left input's
/// variables, right_keys over the right's); `residual` is the conjunction of
/// everything else (evaluated after the key match).
struct JoinKeys {
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
  ExprPtr residual;  // never null; True() if nothing remains

  bool hashable() const { return !left_keys.empty(); }
};

/// Splits `pred` into hash keys and a residual with respect to the variable
/// sets produced by the two join inputs.
JoinKeys ExtractEquiKeys(const ExprPtr& pred,
                         const std::vector<std::string>& left_vars,
                         const std::vector<std::string>& right_vars);

/// The result of matching a scan predicate against an index: `attr` is the
/// indexed attribute, `key` the constant expression it is pinned to, and
/// `residual` the rest of the predicate (checked per fetched object).
struct IndexMatch {
  std::string attr;
  ExprPtr key;
  ExprPtr residual;
};

class Database;  // fwd

/// If `scan`'s predicate contains a conjunct `var.attr = k` (or `k =
/// var.attr`) with `k` variable-free and db has an index on (extent, attr),
/// fills *out and returns true.
bool MatchIndexScan(const AlgOp& scan, const Database& db, IndexMatch* out);

/// Renders the plan annotated with the physical algorithm each join would
/// use under `options` (HashJoin / NLJoin / HashOuterJoin / ...). With a
/// database, scans over indexed attributes show as IndexScan.
std::string ExplainPhysical(const AlgPtr& plan, const PhysicalOptions& options,
                            const Database* db = nullptr);

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_PHYSICAL_H_
