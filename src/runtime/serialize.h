// Database serialization: dump a schema + all objects to a stream and load
// them back. This gives the in-memory store the persistence role the paper
// planned to delegate to SHORE (Section 6) — enough to snapshot generated
// workloads, ship regression databases with tests, and reload them byte-
// identically.
//
// The format is a line-oriented text format with length-prefixed strings
// (so arbitrary content round-trips):
//
//   lambdadb-dump 1
//   class <name> <extent-or-"-"> <n-attrs>
//   attr <len>:<name> <type>
//   ...
//   objects <class> <count>
//   <value>          (one per line)
//   index <extent> <attr>
//
// Types serialize as: b | i | r | s | C<len>:<name> | S(<t>) | G(<t>) |
// L(<t>) | T<n>(<len>:<name><t>...). Values as: N | B0/B1 | I<int>; |
// R<%.17g>; | s<len>:<bytes> | t<n>(<len>:<name><v>...) | e/g/l<n>(<v>...) |
// f<len>:<class>#<oid>; (numeric atoms are ';'-terminated so they cannot
// run into a following length prefix).

#ifndef LAMBDADB_RUNTIME_SERIALIZE_H_
#define LAMBDADB_RUNTIME_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "src/runtime/database.h"

namespace ldb {

/// Writes the database (schema + every object, in oid order) to `os`.
void DumpDatabase(const Database& db, std::ostream& os);

/// Reads a database previously written by DumpDatabase. Index contents are
/// not part of the dump: their (extent, attr) declarations load as pending
/// specs (Database::DeclareIndex) and RebuildIndexes materializes them.
/// Throws ParseError on malformed input.
Database LoadDatabase(std::istream& is);

/// Convenience: round-trip through a string.
std::string DumpDatabaseToString(const Database& db);
Database LoadDatabaseFromString(const std::string& dump);

/// Serializes one value in the dump's value syntax (see the format comment
/// above). The encoding is self-delimiting, so values can be concatenated
/// and read back one at a time — the wire protocol (src/net/) uses it to
/// ship result rows and parameter bindings.
std::string ValueToText(const Value& v);

/// Parses one value in the dump syntax; the whole string must be consumed.
/// Throws ParseError on malformed input.
Value ValueFromText(const std::string& text);

}  // namespace ldb

#endif  // LAMBDADB_RUNTIME_SERIALIZE_H_
