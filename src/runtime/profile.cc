#include "src/runtime/profile.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/core/optimizer.h"
#include "src/runtime/error.h"

namespace ldb {

void OperatorStats::MergeFrom(const OperatorStats& o) {
  opens += o.opens;
  next_calls += o.next_calls;
  rows_out += o.rows_out;
  open_ns += o.open_ns;
  next_ns += o.next_ns;
  build_rows += o.build_rows;
  groups += o.groups;
  short_circuits += o.short_circuits;
  mem_bytes += o.mem_bytes;
}

OperatorStats* QueryProfiler::Register(int op_id, PhysKind kind,
                                       const std::string& label) {
  auto it = by_id_.find(op_id);
  if (it != by_id_.end()) return it->second;
  ops_.emplace_back();
  OperatorStats* s = &ops_.back();
  s->op_id = op_id;
  s->kind = kind;
  s->label = label;
  by_id_[op_id] = s;
  return s;
}

const OperatorStats* QueryProfiler::Find(int op_id) const {
  auto it = by_id_.find(op_id);
  return it == by_id_.end() ? nullptr : it->second;
}

void QueryProfiler::MergeFrom(const QueryProfiler& other) {
  for (const OperatorStats* s : other.Operators()) {
    Register(s->op_id, s->kind, s->label)->MergeFrom(*s);
  }
  workers.insert(workers.end(), other.workers.begin(), other.workers.end());
  morsels.insert(morsels.end(), other.morsels.begin(), other.morsels.end());
}

std::vector<const OperatorStats*> QueryProfiler::Operators() const {
  std::vector<const OperatorStats*> out;
  out.reserve(ops_.size());
  for (const OperatorStats& s : ops_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const OperatorStats* a, const OperatorStats* b) {
              return a->op_id < b->op_id;
            });
  return out;
}

// ---------------------------------------------------------------------------
// JSON emission. Hand-rolled (no external deps); doubles print with %.17g so
// ProfileFromJson(ProfileToJson(p)) reproduces every value bit-exactly.
// ---------------------------------------------------------------------------

namespace {

void JsonEscape(const std::string& s, std::ostringstream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void JsonDouble(double d, std::ostringstream& os) {
  if (!std::isfinite(d)) {
    os << 0;  // JSON has no Inf/NaN; profiles never produce them anyway
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os << buf;
}

// Minimal recursive-descent JSON reader — just enough for the profile and
// trace schemas this file emits (objects, arrays, strings, numbers).
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  void ExpectObjectStart() { Skip(); Expect('{'); }
  bool NextKey(std::string* key) {
    Skip();
    if (Peek() == '}') { ++pos_; return false; }
    if (Peek() == ',') ++pos_;
    Skip();
    *key = ParseString();
    Skip();
    Expect(':');
    return true;
  }
  void ExpectArrayStart() { Skip(); Expect('['); }
  bool NextElement() {
    Skip();
    if (Peek() == ']') { ++pos_; return false; }
    if (Peek() == ',') { ++pos_; Skip(); }
    return true;
  }

  std::string ParseString() {
    Skip();
    Expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) throw ParseError("bad \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else throw ParseError("bad \\u escape");
            }
            out += static_cast<char>(v);  // profiles only escape control chars
            break;
          }
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    Expect('"');
    return out;
  }

  double ParseNumber() {
    Skip();
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::strchr("+-.eE", s_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) throw ParseError("expected number in profile JSON");
    return std::strtod(s_.c_str() + start, nullptr);
  }

  uint64_t ParseUint() { return static_cast<uint64_t>(ParseNumber()); }

  void SkipValue() {
    Skip();
    char c = Peek();
    if (c == '"') { ParseString(); return; }
    if (c == '{') {
      ExpectObjectStart();
      std::string k;
      while (NextKey(&k)) SkipValue();
      return;
    }
    if (c == '[') {
      ExpectArrayStart();
      while (NextElement()) SkipValue();
      return;
    }
    ParseNumber();
  }

 private:
  char Peek() const {
    if (pos_ >= s_.size()) throw ParseError("truncated profile JSON");
    return s_[pos_];
  }
  void Skip() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  void Expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      throw ParseError(std::string("profile JSON: expected '") + c + "'");
    }
    ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

PhysKind KindFromName(const std::string& name) {
  static const std::pair<const char*, PhysKind> kTable[] = {
      {"UnitRow", PhysKind::kUnitRow},
      {"TableScan", PhysKind::kTableScan},
      {"IndexScan", PhysKind::kIndexScan},
      {"Filter", PhysKind::kFilter},
      {"NLJoin", PhysKind::kNLJoin},
      {"HashJoin", PhysKind::kHashJoin},
      {"NLOuterJoin", PhysKind::kNLOuterJoin},
      {"HashOuterJoin", PhysKind::kHashOuterJoin},
      {"Unnest", PhysKind::kUnnest},
      {"OuterUnnest", PhysKind::kOuterUnnest},
      {"HashNest", PhysKind::kHashNest},
      {"Reduce", PhysKind::kReduce},
  };
  for (const auto& [n, k] : kTable) {
    if (name == n) return k;
  }
  throw ParseError("profile JSON: unknown operator kind '" + name + "'");
}

}  // namespace

std::string ProfileToJson(const QueryProfiler& prof) {
  std::ostringstream os;
  os << "{\"threads\": " << prof.threads_used
     << ", \"morsel_size\": " << prof.morsel_size << ", \"mode\": ";
  JsonEscape(prof.parallel_mode.empty() ? "serial" : prof.parallel_mode, os);
  os << ", \"wall_ns\": ";
  JsonDouble(prof.wall_ns, os);
  os << ", \"plan_cached\": " << prof.plan_cached
     << ", \"cache_hits\": " << prof.cache_hits
     << ", \"cache_misses\": " << prof.cache_misses
     << ", \"cache_evictions\": " << prof.cache_evictions;
  os << ", \"operators\": [";
  bool first = true;
  for (const OperatorStats* s : prof.Operators()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"id\": " << s->op_id << ", \"kind\": ";
    JsonEscape(PhysKindName(s->kind), os);
    os << ", \"label\": ";
    JsonEscape(s->label, os);
    os << ", \"opens\": " << s->opens << ", \"next_calls\": " << s->next_calls
       << ", \"rows_out\": " << s->rows_out << ", \"open_ns\": ";
    JsonDouble(s->open_ns, os);
    os << ", \"next_ns\": ";
    JsonDouble(s->next_ns, os);
    os << ", \"build_rows\": " << s->build_rows << ", \"groups\": " << s->groups
       << ", \"short_circuits\": " << s->short_circuits
       << ", \"mem_bytes\": " << s->mem_bytes << "}";
  }
  os << "], \"workers\": [";
  first = true;
  for (const WorkerStats& w : prof.workers) {
    if (!first) os << ", ";
    first = false;
    os << "{\"worker\": " << w.worker << ", \"morsels\": " << w.morsels
       << ", \"rows\": " << w.rows << ", \"busy_ns\": ";
    JsonDouble(w.busy_ns, os);
    os << "}";
  }
  os << "], \"morsels\": [";
  first = true;
  for (const MorselStats& m : prof.morsels) {
    if (!first) os << ", ";
    first = false;
    os << "{\"index\": " << m.index << ", \"lo\": " << m.lo
       << ", \"hi\": " << m.hi << ", \"rows\": " << m.rows
       << ", \"worker\": " << m.worker << ", \"start_ns\": ";
    JsonDouble(m.start_ns, os);
    os << ", \"dur_ns\": ";
    JsonDouble(m.dur_ns, os);
    os << "}";
  }
  os << "]}";
  return os.str();
}

QueryProfiler ProfileFromJson(const std::string& json) {
  QueryProfiler prof;
  JsonReader r(json);
  r.ExpectObjectStart();
  std::string key;
  while (r.NextKey(&key)) {
    if (key == "threads") {
      prof.threads_used = static_cast<int>(r.ParseNumber());
    } else if (key == "morsel_size") {
      prof.morsel_size = r.ParseUint();
    } else if (key == "mode") {
      prof.parallel_mode = r.ParseString();
    } else if (key == "wall_ns") {
      prof.wall_ns = r.ParseNumber();
    } else if (key == "plan_cached") {
      prof.plan_cached = r.ParseUint();
    } else if (key == "cache_hits") {
      prof.cache_hits = r.ParseUint();
    } else if (key == "cache_misses") {
      prof.cache_misses = r.ParseUint();
    } else if (key == "cache_evictions") {
      prof.cache_evictions = r.ParseUint();
    } else if (key == "operators") {
      r.ExpectArrayStart();
      while (r.NextElement()) {
        r.ExpectObjectStart();
        int id = -1;
        PhysKind kind = PhysKind::kUnitRow;
        std::string label;
        OperatorStats tmp;
        std::string f;
        while (r.NextKey(&f)) {
          if (f == "id") id = static_cast<int>(r.ParseNumber());
          else if (f == "kind") kind = KindFromName(r.ParseString());
          else if (f == "label") label = r.ParseString();
          else if (f == "opens") tmp.opens = r.ParseUint();
          else if (f == "next_calls") tmp.next_calls = r.ParseUint();
          else if (f == "rows_out") tmp.rows_out = r.ParseUint();
          else if (f == "open_ns") tmp.open_ns = r.ParseNumber();
          else if (f == "next_ns") tmp.next_ns = r.ParseNumber();
          else if (f == "build_rows") tmp.build_rows = r.ParseUint();
          else if (f == "groups") tmp.groups = r.ParseUint();
          else if (f == "short_circuits") tmp.short_circuits = r.ParseUint();
          else if (f == "mem_bytes") tmp.mem_bytes = r.ParseUint();
          else r.SkipValue();
        }
        OperatorStats* s = prof.Register(id, kind, label);
        s->MergeFrom(tmp);
      }
    } else if (key == "workers") {
      r.ExpectArrayStart();
      while (r.NextElement()) {
        r.ExpectObjectStart();
        WorkerStats w;
        std::string f;
        while (r.NextKey(&f)) {
          if (f == "worker") w.worker = static_cast<int>(r.ParseNumber());
          else if (f == "morsels") w.morsels = r.ParseUint();
          else if (f == "rows") w.rows = r.ParseUint();
          else if (f == "busy_ns") w.busy_ns = r.ParseNumber();
          else r.SkipValue();
        }
        prof.workers.push_back(w);
      }
    } else if (key == "morsels") {
      r.ExpectArrayStart();
      while (r.NextElement()) {
        r.ExpectObjectStart();
        MorselStats m;
        std::string f;
        while (r.NextKey(&f)) {
          if (f == "index") m.index = r.ParseUint();
          else if (f == "lo") m.lo = r.ParseUint();
          else if (f == "hi") m.hi = r.ParseUint();
          else if (f == "rows") m.rows = r.ParseUint();
          else if (f == "worker") m.worker = static_cast<int>(r.ParseNumber());
          else if (f == "start_ns") m.start_ns = r.ParseNumber();
          else if (f == "dur_ns") m.dur_ns = r.ParseNumber();
          else r.SkipValue();
        }
        prof.morsels.push_back(m);
      }
    } else {
      r.SkipValue();
    }
  }
  return prof;
}

std::string CompileTraceToJson(const CompileTrace& trace) {
  std::ostringstream os;
  os << "{\"stages\": [";
  bool first = true;
  for (const StageTiming& st : trace.stages) {
    if (!first) os << ", ";
    first = false;
    os << "{\"stage\": ";
    JsonEscape(st.stage, os);
    os << ", \"ms\": ";
    JsonDouble(st.ms, os);
    os << "}";
  }
  os << "], \"normalize_rules\": [";
  first = true;
  for (const RuleFiring& rf : trace.normalize_rules) {
    if (!first) os << ", ";
    first = false;
    os << "{\"rule\": ";
    JsonEscape(rf.rule, os);
    os << ", \"count\": " << rf.count << "}";
  }
  os << "], \"unnest_steps\": [";
  first = true;
  for (const UnnestStep& step : trace.unnest_steps) {
    if (!first) os << ", ";
    first = false;
    os << "{\"rule\": ";
    JsonEscape(step.rule, os);
    os << ", \"description\": ";
    JsonEscape(step.description, os);
    os << "}";
  }
  os << "], \"verify_stages\": [";
  first = true;
  for (const VerifyStageSummary& v : trace.verify_stages) {
    if (!first) os << ", ";
    first = false;
    os << "{\"stage\": ";
    JsonEscape(v.stage, os);
    os << ", \"checks\": " << v.checks << ", \"findings\": " << v.findings
       << ", \"ms\": ";
    JsonDouble(v.ms, os);
    os << "}";
  }
  os << "], \"simplify_rewrites\": " << trace.simplify_rewrites
     << ", \"total_ms\": ";
  JsonDouble(trace.total_ms, os);
  os << "}";
  return os.str();
}

}  // namespace ldb
