// Compile-time concurrency proofs: Clang thread-safety (capability)
// annotations plus annotated mutex wrappers (DESIGN.md, "Locking
// discipline").
//
// Every lock-protected member in the concurrent subsystems (src/service,
// src/obs, src/net, the morsel scheduler in src/runtime/exec_pipeline.cc)
// carries LDB_GUARDED_BY(<mutex>), every function with a locking contract
// carries LDB_REQUIRES / LDB_EXCLUDES, and CI builds the tree with
// `clang++ -Werror=thread-safety`, so an unlocked read of a guarded field
// or a call that re-enters a non-recursive lock is a compile error, not a
// TSan lottery ticket. Under GCC (which has no such analysis) the macros
// expand to nothing and ldb::Mutex is a zero-overhead veneer over
// std::mutex.
//
// Conventions:
//  * Use ldb::Mutex + ldb::MutexLock, never bare std::mutex, for any lock
//    whose protected state outlives a single function (members). The
//    analysis cannot see through std::lock_guard/std::unique_lock.
//  * Prefer whole-method MutexLock scopes. When a method must run both
//    locked and unlocked paths, split the locked core into a private
//    `...Locked()` method annotated LDB_REQUIRES(mu_).
//  * Reads that are safe without the lock for a structural reason the
//    analysis cannot express (single-threaded phase, all writers joined)
//    get a narrowly-scoped accessor annotated LDB_NO_THREAD_SAFETY_ANALYSIS
//    with a comment stating the reason — never a blanket opt-out on the
//    hot function.
//  * The analysis does not check constructors/destructors (objects are
//    assumed unshared there), so init-before-threads writes need no
//    annotation escape.

#ifndef LAMBDADB_CORE_THREAD_ANNOTATIONS_H_
#define LAMBDADB_CORE_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define LDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LDB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (lockable) with the given name.
#define LDB_CAPABILITY(x) LDB_THREAD_ANNOTATION(capability(x))
/// Declares an RAII class whose lifetime acquires/releases a capability.
#define LDB_SCOPED_CAPABILITY LDB_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding the given capability.
#define LDB_GUARDED_BY(x) LDB_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field whose *pointee* is protected by the given capability.
#define LDB_PT_GUARDED_BY(x) LDB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it held).
#define LDB_REQUIRES(...) \
  LDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability (it must not be held on entry).
#define LDB_ACQUIRE(...) LDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (it must be held on entry).
#define LDB_RELEASE(...) LDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define LDB_TRY_ACQUIRE(...) \
  LDB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard for
/// non-recursive locks).
#define LDB_EXCLUDES(...) LDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Declares a documented lock-ordering edge, checked by the analysis.
#define LDB_ACQUIRED_BEFORE(...) \
  LDB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LDB_ACQUIRED_AFTER(...) \
  LDB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define LDB_ASSERT_CAPABILITY(x) LDB_THREAD_ANNOTATION(assert_capability(x))
/// Accessor returns a reference to the given capability.
#define LDB_RETURN_CAPABILITY(x) LDB_THREAD_ANNOTATION(lock_returned(x))
/// Last resort: disables the analysis for one function. Every use must
/// carry a comment stating the structural reason it is safe.
#define LDB_NO_THREAD_SAFETY_ANALYSIS \
  LDB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ldb {

/// std::mutex with a capability identity the analysis can track. Same
/// storage, same codegen; Lock/Unlock simply forward.
class LDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LDB_ACQUIRE() { mu_.lock(); }
  void Unlock() LDB_RELEASE() { mu_.unlock(); }
  bool TryLock() LDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over ldb::Mutex — the annotated analogue of std::lock_guard.
/// Constructing one acquires the capability for the enclosing scope as far
/// as the analysis is concerned.
class LDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LDB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() LDB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with ldb::Mutex. Wait/WaitForMs require the
/// mutex to be held (the analysis enforces it); internally they adopt the
/// already-held std::mutex for the duration of the wait and release the
/// adoption before returning, so the capability state seen by the caller
/// is unchanged: held on entry, held on return.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) LDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Returns true on timeout, false when notified (either way the mutex is
  /// held again on return — re-check the predicate).
  bool WaitForMs(Mutex& mu, int64_t ms) LDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_for(lk, std::chrono::milliseconds(ms));
    lk.release();
    return st == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ldb

#endif  // LAMBDADB_CORE_THREAD_ANNOTATIONS_H_
