#include "src/core/cost.h"

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "src/runtime/error.h"

namespace ldb {

Catalog Catalog::FromDatabase(const Database& db) {
  Catalog cat;
  for (const auto& [name, decl] : db.schema().classes()) {
    if (!decl.extent.empty()) {
      cat.SetExtentCardinality(decl.extent,
                               static_cast<double>(db.Extent(decl.extent).size()));
    }
  }
  return cat;
}

namespace {

double PredSelectivity(const ExprPtr& pred) {
  double s = 1.0;
  for (const ExprPtr& c : SplitConjuncts(pred)) {
    bool is_eq = c->kind == ExprKind::kBinOp && c->bin_op == BinOpKind::kEq;
    s *= is_eq ? Catalog::kEqSelectivity : Catalog::kOtherSelectivity;
  }
  return s;
}

}  // namespace

double EstimateCardinality(const AlgPtr& op, const Catalog& catalog) {
  if (!op) return 0;
  switch (op->kind) {
    case AlgKind::kUnit:
      return 1;
    case AlgKind::kScan:
      return catalog.ExtentCardinality(op->extent) * PredSelectivity(op->pred);
    case AlgKind::kSelect:
      return EstimateCardinality(op->left, catalog) * PredSelectivity(op->pred);
    case AlgKind::kJoin:
      return EstimateCardinality(op->left, catalog) *
             EstimateCardinality(op->right, catalog) * PredSelectivity(op->pred);
    case AlgKind::kOuterJoin:
      // At least one output row per left row.
      return std::max(EstimateCardinality(op->left, catalog),
                      EstimateCardinality(op->left, catalog) *
                          EstimateCardinality(op->right, catalog) *
                          PredSelectivity(op->pred));
    case AlgKind::kUnnest:
      return EstimateCardinality(op->left, catalog) * Catalog::kUnnestFanout *
             PredSelectivity(op->pred);
    case AlgKind::kOuterUnnest:
      return std::max(EstimateCardinality(op->left, catalog),
                      EstimateCardinality(op->left, catalog) *
                          Catalog::kUnnestFanout * PredSelectivity(op->pred));
    case AlgKind::kNest: {
      // One row per distinct group key; assume grouping halves per key level.
      double in = EstimateCardinality(op->left, catalog);
      double groups = in;
      for (size_t i = 0; i < op->group_by.size() && groups > 1; ++i) {
        groups /= 2;
      }
      return std::max(1.0, op->group_by.empty() ? 1.0 : groups);
    }
    case AlgKind::kReduce:
      return 1;
  }
  return 1;
}

double EstimatePhysicalCardinality(const PhysPtr& op, const Catalog& catalog) {
  if (!op) return 0;
  switch (op->kind) {
    case PhysKind::kUnitRow:
      return 1;
    case PhysKind::kTableScan:
      return catalog.ExtentCardinality(op->extent) * PredSelectivity(op->pred);
    case PhysKind::kIndexScan:
      // The index lookup is an equality the planner stripped from the
      // residual predicate; account for it explicitly.
      return catalog.ExtentCardinality(op->extent) * Catalog::kEqSelectivity *
             PredSelectivity(op->pred);
    case PhysKind::kFilter:
      return EstimatePhysicalCardinality(op->left, catalog) *
             PredSelectivity(op->pred);
    case PhysKind::kNLJoin:
    case PhysKind::kHashJoin: {
      double sel = PredSelectivity(op->pred);
      for (size_t i = 0; i < op->build_keys.size(); ++i) {
        sel *= Catalog::kEqSelectivity;  // each extracted key pair is an "="
      }
      return EstimatePhysicalCardinality(op->left, catalog) *
             EstimatePhysicalCardinality(op->right, catalog) * sel;
    }
    case PhysKind::kNLOuterJoin:
    case PhysKind::kHashOuterJoin: {
      double sel = PredSelectivity(op->pred);
      for (size_t i = 0; i < op->build_keys.size(); ++i) {
        sel *= Catalog::kEqSelectivity;
      }
      double left = EstimatePhysicalCardinality(op->left, catalog);
      // At least one output row per left row (NULL padding).
      return std::max(left,
                      left * EstimatePhysicalCardinality(op->right, catalog) *
                          sel);
    }
    case PhysKind::kUnnest:
      return EstimatePhysicalCardinality(op->left, catalog) *
             Catalog::kUnnestFanout * PredSelectivity(op->pred);
    case PhysKind::kOuterUnnest: {
      double left = EstimatePhysicalCardinality(op->left, catalog);
      return std::max(left, left * Catalog::kUnnestFanout *
                                PredSelectivity(op->pred));
    }
    case PhysKind::kHashNest: {
      // One row per distinct group key; assume grouping halves per key level
      // (mirrors the logical kNest estimate).
      double in = EstimatePhysicalCardinality(op->left, catalog);
      double groups = in;
      for (size_t i = 0; i < op->group_by.size() && groups > 1; ++i) {
        groups /= 2;
      }
      return std::max(1.0, op->group_by.empty() ? 1.0 : groups);
    }
    case PhysKind::kReduce:
      return 1;
  }
  return 1;
}

namespace {

// Collects the inputs and predicate conjuncts of a maximal inner-join chain
// rooted at `op` (op->kind == kJoin). Inputs are the non-kJoin subtrees.
void CollectChain(const AlgPtr& op, std::vector<AlgPtr>* inputs,
                  std::vector<ExprPtr>* conjuncts) {
  if (op->kind == AlgKind::kJoin) {
    CollectChain(op->left, inputs, conjuncts);
    CollectChain(op->right, inputs, conjuncts);
    for (const ExprPtr& c : SplitConjuncts(op->pred)) conjuncts->push_back(c);
    return;
  }
  inputs->push_back(op);
}

struct ChainInput {
  AlgPtr plan;
  std::set<std::string> vars;
  double card;
};

// Rebuilds the chain greedily. `all_chain_vars` is the union of variables
// bound by the chain's inputs; conjuncts whose in-chain variables are
// covered attach as early as possible.
AlgPtr RebuildChain(std::vector<ChainInput> inputs,
                    std::vector<ExprPtr> conjuncts,
                    const std::set<std::string>& all_chain_vars) {
  // Conjunct placement test: every free variable that belongs to the chain
  // must be available; out-of-chain variables (extents / outer scope) do not
  // gate placement.
  auto placeable = [&](const ExprPtr& c, const std::set<std::string>& avail) {
    for (const std::string& v : FreeVars(c)) {
      if (all_chain_vars.count(v) > 0 && avail.count(v) == 0) return false;
    }
    return true;
  };

  // Start with the smallest input.
  size_t best = 0;
  for (size_t i = 1; i < inputs.size(); ++i) {
    if (inputs[i].card < inputs[best].card) best = i;
  }
  ChainInput current = inputs[best];
  inputs.erase(inputs.begin() + static_cast<long>(best));

  while (!inputs.empty()) {
    // Pick the input minimizing the estimated intermediate size, counting
    // the selectivity of the conjuncts that would become placeable. Inputs
    // connected to the current prefix by at least one conjunct are preferred
    // over cartesian products (the Selinger heuristic); a cross product is
    // taken only when nothing connects.
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    bool best_connected = false;
    for (size_t i = 0; i < inputs.size(); ++i) {
      std::set<std::string> avail = current.vars;
      avail.insert(inputs[i].vars.begin(), inputs[i].vars.end());
      double sel = 1.0;
      bool connected = false;
      for (const ExprPtr& c : conjuncts) {
        if (!placeable(c, avail)) continue;
        connected = true;
        bool is_eq = c->kind == ExprKind::kBinOp && c->bin_op == BinOpKind::kEq;
        sel *= is_eq ? Catalog::kEqSelectivity : Catalog::kOtherSelectivity;
      }
      double cost = current.card * inputs[i].card * sel;
      if ((connected && !best_connected) ||
          (connected == best_connected && cost < best_cost)) {
        best_cost = cost;
        best_i = i;
        best_connected = connected;
      }
    }
    ChainInput next = inputs[best_i];
    inputs.erase(inputs.begin() + static_cast<long>(best_i));

    std::set<std::string> avail = current.vars;
    avail.insert(next.vars.begin(), next.vars.end());
    std::vector<ExprPtr> here;
    auto it = conjuncts.begin();
    while (it != conjuncts.end()) {
      if (placeable(*it, avail)) {
        here.push_back(*it);
        it = conjuncts.erase(it);
      } else {
        ++it;
      }
    }
    current.plan = AlgOp::Join(current.plan, next.plan, MakeConjunction(here));
    current.vars = std::move(avail);
    current.card = best_cost;
  }
  LDB_INTERNAL_CHECK(conjuncts.empty(), "join conjunct left unplaced");
  return current.plan;
}

AlgPtr Reorder(const AlgPtr& op, const Catalog& catalog) {
  if (!op) return op;
  if (op->kind == AlgKind::kJoin) {
    std::vector<AlgPtr> raw_inputs;
    std::vector<ExprPtr> conjuncts;
    CollectChain(op, &raw_inputs, &conjuncts);
    std::vector<ChainInput> inputs;
    std::set<std::string> all_vars;
    for (const AlgPtr& in : raw_inputs) {
      AlgPtr reordered = Reorder(in, catalog);  // recurse below the chain
      ChainInput ci;
      ci.plan = reordered;
      for (const std::string& v : OutputVars(reordered)) {
        ci.vars.insert(v);
        all_vars.insert(v);
      }
      ci.card = EstimateCardinality(reordered, catalog);
      inputs.push_back(std::move(ci));
    }
    if (inputs.size() < 2) return op;
    return RebuildChain(std::move(inputs), std::move(conjuncts), all_vars);
  }
  AlgPtr left = Reorder(op->left, catalog);
  AlgPtr right = Reorder(op->right, catalog);
  if (left == op->left && right == op->right) return op;
  auto out = std::make_shared<AlgOp>(*op);
  out->left = left;
  out->right = right;
  return out;
}

}  // namespace

AlgPtr ReorderJoins(const AlgPtr& plan, const Catalog& catalog) {
  return Reorder(plan, catalog);
}

}  // namespace ldb
