#include "src/core/typecheck.h"

#include "src/core/pretty.h"
#include "src/runtime/error.h"

namespace ldb {

namespace {

TypePtr LiteralType(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      return Type::Any();
    case Value::Kind::kBool:
      return Type::Bool();
    case Value::Kind::kInt:
      return Type::Int();
    case Value::Kind::kReal:
      return Type::Real();
    case Value::Kind::kStr:
      return Type::Str();
    case Value::Kind::kRef:
      return Type::Class(v.AsRef().class_name);
    case Value::Kind::kTuple: {
      std::vector<std::pair<std::string, TypePtr>> fields;
      for (const auto& [n, f] : v.AsTuple()) fields.emplace_back(n, LiteralType(f));
      return Type::Tuple(std::move(fields));
    }
    case Value::Kind::kSet:
    case Value::Kind::kBag:
    case Value::Kind::kList: {
      TypePtr elem = Type::Any();
      for (const Value& x : v.AsElems()) {
        TypePtr t = Type::Unify(elem, LiteralType(x));
        if (!t) throw TypeError("heterogeneous collection literal");
        elem = t;
      }
      Type::Kind k = v.kind() == Value::Kind::kSet   ? Type::Kind::kSet
                     : v.kind() == Value::Kind::kBag ? Type::Kind::kBag
                                                     : Type::Kind::kList;
      return Type::Collection(k, elem);
    }
  }
  return Type::Any();
}

class Checker {
 public:
  explicit Checker(const Schema& schema) : schema_(schema) {}

  TypePtr Check(const ExprPtr& e, const TypeEnv& env) {
    if (!e) throw TypeError("null expression");
    switch (e->kind) {
      case ExprKind::kVar: {  // (T1) + extent resolution
        auto it = env.find(e->name);
        if (it != env.end()) return it->second;
        if (const ClassDecl* cls = schema_.FindExtent(e->name)) {
          return Type::Set(Type::Class(cls->name));
        }
        throw TypeError("unbound variable '" + e->name + "'");
      }
      case ExprKind::kParam: {
        // Parameters are dynamically typed: the binding arrives at execute
        // time, so they check as Any (which unifies with everything).
        return Type::Any();
      }
      case ExprKind::kLiteral:
        return LiteralType(e->literal);
      case ExprKind::kRecord: {  // (T2)
        std::vector<std::pair<std::string, TypePtr>> fields;
        for (const auto& [n, f] : e->fields) fields.emplace_back(n, Check(f, env));
        return Type::Tuple(std::move(fields));
      }
      case ExprKind::kProj: {  // (T3)
        TypePtr base = Check(e->a, env);
        if (base->kind() == Type::Kind::kClass) {
          const ClassDecl* cls = schema_.FindClass(base->class_name());
          if (!cls) throw TypeError("unknown class '" + base->class_name() + "'");
          TypePtr t = cls->AttributeType(e->name);
          if (!t) {
            throw TypeError("class " + cls->name + " has no attribute '" +
                            e->name + "'");
          }
          return t;
        }
        if (base->kind() == Type::Kind::kTuple) {
          TypePtr t = base->FieldType(e->name);
          if (!t) {
            throw TypeError("record " + base->ToString() + " has no field '" +
                            e->name + "'");
          }
          return t;
        }
        if (base->kind() == Type::Kind::kAny) return Type::Any();
        throw TypeError("projection ." + e->name + " on non-record type " +
                        base->ToString());
      }
      case ExprKind::kIf: {  // (T4)
        Require(e->a, Type::Bool(), env, "if-condition");
        TypePtr t = Type::Unify(Check(e->b, env), Check(e->c, env));
        if (!t) throw TypeError("if-branches have incompatible types");
        return t;
      }
      case ExprKind::kBinOp:
        return CheckBinOp(e, env);
      case ExprKind::kUnOp: {
        TypePtr t = Check(e->a, env);
        switch (e->un_op) {
          case UnOpKind::kNot:
            if (!Type::Equal(t, Type::Bool())) {
              throw TypeError("'not' on non-bool");
            }
            return Type::Bool();
          case UnOpKind::kNeg:
            if (!t->is_numeric() && t->kind() != Type::Kind::kAny) {
              throw TypeError("negation on non-numeric");
            }
            return t;
          case UnOpKind::kIsNull:
            return Type::Bool();
        }
        return Type::Any();
      }
      case ExprKind::kLambda: {  // (T6) — parameter type is not annotated in
        // this AST; lambdas only appear transiently during rewriting, so the
        // checker types the body with the parameter at Any.
        TypeEnv inner = env;
        inner[e->name] = Type::Any();
        return Type::Func(Type::Any(), Check(e->a, inner));
      }
      case ExprKind::kApply: {  // (T7)
        TypePtr f = Check(e->a, env);
        Check(e->b, env);
        if (f->kind() == Type::Kind::kFunc) return f->result();
        if (f->kind() == Type::Kind::kAny) return Type::Any();
        throw TypeError("application of non-function");
      }
      case ExprKind::kComp:  // (T8)/(T9) generalized to all monoids
        return CheckComp(e, env);
      case ExprKind::kMerge: {
        TypePtr l = Check(e->a, env);
        TypePtr r = Check(e->b, env);
        TypePtr t = Type::Unify(l, r);
        if (!t) throw TypeError("merge of incompatible types");
        CheckMonoidValue(e->monoid, t, "merge");
        return t;
      }
      case ExprKind::kZero:
        switch (e->monoid) {
          case MonoidKind::kSet:  return Type::Set(Type::Any());
          case MonoidKind::kBag:  return Type::Bag(Type::Any());
          case MonoidKind::kList: return Type::List(Type::Any());
          case MonoidKind::kSome:
          case MonoidKind::kAll:  return Type::Bool();
          default:                return Type::Real();
        }
    }
    throw TypeError("unhandled expression kind");
  }

 private:
  const Schema& schema_;

  void Require(const ExprPtr& e, const TypePtr& expected, const TypeEnv& env,
               const std::string& what) {
    TypePtr t = Check(e, env);
    if (!Type::Equal(t, expected)) {
      throw TypeError(what + " has type " + t->ToString() + ", expected " +
                      expected->ToString() + " in " + PrintExpr(e));
    }
  }

  // Checks that a value of type t is acceptable for monoid m.
  void CheckMonoidValue(MonoidKind m, const TypePtr& t, const std::string& what) {
    switch (m) {
      case MonoidKind::kSet:
        if (t->kind() != Type::Kind::kSet && t->kind() != Type::Kind::kAny) {
          throw TypeError(what + ": expected set, got " + t->ToString());
        }
        return;
      case MonoidKind::kBag:
        if (t->kind() != Type::Kind::kBag && t->kind() != Type::Kind::kAny) {
          throw TypeError(what + ": expected bag, got " + t->ToString());
        }
        return;
      case MonoidKind::kList:
        if (t->kind() != Type::Kind::kList && t->kind() != Type::Kind::kAny) {
          throw TypeError(what + ": expected list, got " + t->ToString());
        }
        return;
      case MonoidKind::kSome:
      case MonoidKind::kAll:
        if (!Type::Equal(t, Type::Bool())) {
          throw TypeError(what + ": expected bool, got " + t->ToString());
        }
        return;
      default:
        if (!t->is_numeric() && t->kind() != Type::Kind::kAny) {
          throw TypeError(what + ": expected numeric, got " + t->ToString());
        }
        return;
    }
  }

  TypePtr CheckBinOp(const ExprPtr& e, const TypeEnv& env) {
    TypePtr l = Check(e->a, env);
    TypePtr r = Check(e->b, env);
    switch (e->bin_op) {
      case BinOpKind::kAnd:
      case BinOpKind::kOr:
        if (!Type::Equal(l, Type::Bool()) || !Type::Equal(r, Type::Bool())) {
          throw TypeError("boolean connective on non-bool operands in " +
                          PrintExpr(e));
        }
        return Type::Bool();
      case BinOpKind::kEq:
      case BinOpKind::kNe:
        if (!Type::Unify(l, r)) {
          throw TypeError("comparison of incompatible types " + l->ToString() +
                          " and " + r->ToString() + " in " + PrintExpr(e));
        }
        return Type::Bool();
      case BinOpKind::kLt:
      case BinOpKind::kLe:
      case BinOpKind::kGt:
      case BinOpKind::kGe: {
        TypePtr t = Type::Unify(l, r);
        if (!t || (!t->is_numeric() && t->kind() != Type::Kind::kStr &&
                   t->kind() != Type::Kind::kAny)) {
          throw TypeError("ordering comparison on non-ordered types in " +
                          PrintExpr(e));
        }
        return Type::Bool();
      }
      default: {  // arithmetic
        TypePtr t = Type::Unify(l, r);
        if (!t || (!t->is_numeric() && t->kind() != Type::Kind::kAny)) {
          throw TypeError("arithmetic on non-numeric operands in " +
                          PrintExpr(e));
        }
        return t;
      }
    }
  }

  TypePtr CheckComp(const ExprPtr& e, const TypeEnv& env) {
    TypeEnv inner = env;
    for (const Qualifier& q : e->quals) {
      if (q.is_generator) {
        TypePtr dom = Check(q.expr, inner);
        if (dom->kind() == Type::Kind::kAny) {
          inner[q.var] = Type::Any();
        } else if (dom->is_collection()) {
          inner[q.var] = dom->elem();
        } else {
          throw TypeError("generator domain of '" + q.var +
                          "' is not a collection: " + dom->ToString());
        }
      } else {
        TypePtr p = Check(q.expr, inner);
        if (!Type::Equal(p, Type::Bool())) {
          throw TypeError("filter is not boolean: " + PrintExpr(q.expr));
        }
      }
    }
    TypePtr head = Check(e->a, inner);
    if (TypePtr constraint = MonoidHeadConstraint(e->monoid)) {
      if (!Type::Unify(head, constraint)) {
        throw TypeError(std::string("head of ") + MonoidName(e->monoid) +
                        "-comprehension has type " + head->ToString());
      }
    }
    return MonoidResultType(e->monoid, head);
  }
};

}  // namespace

TypePtr TypeCheck(const ExprPtr& e, const Schema& schema, const TypeEnv& env) {
  Checker c(schema);
  return c.Check(e, env);
}

namespace {

void RequireBool(const ExprPtr& pred, const Schema& schema, const TypeEnv& env,
                 const char* where) {
  TypePtr t = TypeCheck(pred, schema, env);
  if (!Type::Equal(t, Type::Bool())) {
    throw TypeError(std::string(where) + " predicate is not boolean: " +
                    PrintExpr(pred));
  }
}

// Computes the output environment of a plan node per Figure 6 and validates
// predicates/paths along the way.
TypeEnv PlanEnv(const AlgPtr& op, const Schema& schema) {
  LDB_INTERNAL_CHECK(op != nullptr, "null plan node");
  switch (op->kind) {
    case AlgKind::kUnit:
      return {};
    case AlgKind::kScan: {
      const ClassDecl* cls = schema.FindExtent(op->extent);
      if (!cls) throw TypeError("scan of unknown extent '" + op->extent + "'");
      TypeEnv env{{op->var, Type::Class(cls->name)}};
      RequireBool(op->pred, schema, env, "scan");
      return env;
    }
    case AlgKind::kSelect: {
      TypeEnv env = PlanEnv(op->left, schema);
      RequireBool(op->pred, schema, env, "select");
      return env;
    }
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin: {
      TypeEnv env = PlanEnv(op->left, schema);
      TypeEnv right = PlanEnv(op->right, schema);
      for (const auto& [v, t] : right) {
        if (!env.emplace(v, t).second) {
          throw TypeError("join binds variable '" + v + "' on both sides");
        }
      }
      RequireBool(op->pred, schema, env, "join");
      return env;
    }
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest: {
      TypeEnv env = PlanEnv(op->left, schema);
      TypePtr path = TypeCheck(op->path, schema, env);
      TypePtr elem;
      if (path->is_collection()) {
        elem = path->elem();
      } else if (path->kind() == Type::Kind::kAny) {
        elem = Type::Any();
      } else {
        throw TypeError("unnest path is not a collection: " +
                        PrintExpr(op->path));
      }
      if (!env.emplace(op->var, elem).second) {
        throw TypeError("unnest rebinds variable '" + op->var + "'");
      }
      RequireBool(op->pred, schema, env, "unnest");
      return env;
    }
    case AlgKind::kNest: {
      TypeEnv env = PlanEnv(op->left, schema);
      for (const std::string& v : op->null_vars) {
        if (env.find(v) == env.end()) {
          throw TypeError("nest null-variable '" + v + "' is not in scope");
        }
      }
      RequireBool(op->pred, schema, env, "nest");
      TypePtr head = TypeCheck(op->head, schema, env);
      if (TypePtr constraint = MonoidHeadConstraint(op->monoid)) {
        if (!Type::Unify(head, constraint)) {
          throw TypeError(std::string("nest head incompatible with ") +
                          MonoidName(op->monoid));
        }
      }
      TypeEnv out;
      for (const auto& [name, key] : op->group_by) {
        out[name] = TypeCheck(key, schema, env);
      }
      if (!out.emplace(op->var, MonoidResultType(op->monoid, head)).second) {
        throw TypeError("nest output variable collides with a group-by name");
      }
      return out;
    }
    case AlgKind::kReduce:
      throw TypeError("reduce may only appear at the plan root");
  }
  throw TypeError("unhandled plan node");
}

}  // namespace

TypeEnv PlanOutputEnv(const AlgPtr& op, const Schema& schema) {
  return PlanEnv(op, schema);
}

TypePtr TypeCheckPlan(const AlgPtr& plan, const Schema& schema) {
  if (!plan || plan->kind != AlgKind::kReduce) {
    throw TypeError("plan root must be a reduce");
  }
  TypeEnv env = PlanEnv(plan->left, schema);
  RequireBool(plan->pred, schema, env, "reduce");
  TypePtr head = TypeCheck(plan->head, schema, env);
  if (TypePtr constraint = MonoidHeadConstraint(plan->monoid)) {
    if (!Type::Unify(head, constraint)) {
      throw TypeError(std::string("reduce head incompatible with ") +
                      MonoidName(plan->monoid));
    }
  }
  return MonoidResultType(plan->monoid, head);
}

}  // namespace ldb
