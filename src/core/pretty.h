// Pretty printers for calculus terms and algebra plans.
//
// Calculus terms print in the paper's comprehension syntax (ASCII), e.g.
//   set{ <E=e.name, C=c.name> | e <- Employees, c <- e.children }
// Algebra plans print as indented trees mirroring Figures 1/2/8:
//   Reduce[set/<E=e.name,C=c.name>]
//     Unnest[c := e.children]
//       Scan[e <- Employees]

#ifndef LAMBDADB_CORE_PRETTY_H_
#define LAMBDADB_CORE_PRETTY_H_

#include <string>

#include "src/core/algebra.h"
#include "src/core/expr.h"
#include "src/runtime/physical_plan.h"

namespace ldb {

class Catalog;
class QueryProfiler;
struct CompileTrace;

/// One-line rendering of a calculus term.
std::string PrintExpr(const ExprPtr& e);

/// Multi-line indented rendering of an algebra plan.
std::string PrintPlan(const AlgPtr& op);

/// One-line compact rendering of a plan's operator structure, e.g.
/// "Reduce(Nest(OuterJoin(Scan(Departments),Scan(Employees))))" — convenient
/// for asserting plan *shapes* in tests.
std::string PlanShape(const AlgPtr& op);

/// EXPLAIN ANALYZE rendering: the physical plan tree annotated per operator
/// with the measured counters from `profiler` (rows out, build/group sizes,
/// cumulative time) in one aligned column. Operators are matched to stats by
/// the pre-order id numbering shared with CompileSlotPlan, so the same
/// profiler works for both engines. When `catalog` is non-null, the Section 6
/// cost model's estimated cardinality prints next to the measured rows
/// (est= vs rows=). A header line reports the execution mode, thread count,
/// and wall time; under parallel execution per-worker utilization lines
/// follow the tree.
std::string ExplainAnalyze(const PhysPtr& plan, const QueryProfiler& profiler,
                           const Catalog* catalog = nullptr);

/// Human-readable rendering of a CompileTrace: per-stage wall times, the
/// normalize rule firing counts, the unnest (C1-C9) step log, and the
/// Section 5 rewrite count.
std::string PrintCompileTrace(const CompileTrace& trace);

}  // namespace ldb

#endif  // LAMBDADB_CORE_PRETTY_H_
