// Pretty printers for calculus terms and algebra plans.
//
// Calculus terms print in the paper's comprehension syntax (ASCII), e.g.
//   set{ <E=e.name, C=c.name> | e <- Employees, c <- e.children }
// Algebra plans print as indented trees mirroring Figures 1/2/8:
//   Reduce[set/<E=e.name,C=c.name>]
//     Unnest[c := e.children]
//       Scan[e <- Employees]

#ifndef LAMBDADB_CORE_PRETTY_H_
#define LAMBDADB_CORE_PRETTY_H_

#include <string>

#include "src/core/algebra.h"
#include "src/core/expr.h"

namespace ldb {

/// One-line rendering of a calculus term.
std::string PrintExpr(const ExprPtr& e);

/// Multi-line indented rendering of an algebra plan.
std::string PrintPlan(const AlgPtr& op);

/// One-line compact rendering of a plan's operator structure, e.g.
/// "Reduce(Nest(OuterJoin(Scan(Departments),Scan(Employees))))" — convenient
/// for asserting plan *shapes* in tests.
std::string PlanShape(const AlgPtr& op);

}  // namespace ldb

#endif  // LAMBDADB_CORE_PRETTY_H_
