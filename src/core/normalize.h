// The normalization algorithm for monoid comprehensions (Fegaras, SIGMOD'98,
// Section 2, Figure 4, rules (N1)-(N9)), plus predicate normalization
// (DeMorgan's laws, double-negation, quantifier duals), which the paper's
// prototype runs alongside it (Section 6).
//
// Normalization puts comprehensions into canonical form
//     ⊕{ e | v1 <- path1, ..., vn <- pathn, pred }
// unnesting along the way every Kim type-N and type-J nesting: generator
// domains that are themselves comprehensions (N7) and existential
// quantifications in filters (N8). The remaining nesting forms — nested
// queries in the head or in a non-existential predicate position — are the
// ones requiring outer-joins/grouping and are handled by the unnesting
// algorithm proper (src/core/unnest.h).
//
// Soundness caveats implemented faithfully:
//  * (N6)/(D7) — splitting a generator over a set union e1 ∪ e2 under a
//    non-idempotent accumulator inserts the membership guard
//    all{ w != v | w <- e1 } on the second branch, avoiding the 1 = 2
//    inconsistency of Section 2.
//  * (N7) — flattening a *set* comprehension domain into a non-idempotent
//    outer comprehension would over-count duplicates, so it fires only when
//    the inner monoid is a bag/list or the outer monoid is idempotent.
//  * (N8) — fires only for idempotent outer monoids, as in the paper.

#ifndef LAMBDADB_CORE_NORMALIZE_H_
#define LAMBDADB_CORE_NORMALIZE_H_

#include <string>
#include <vector>

#include "src/core/expr.h"

namespace ldb {

/// How many times one rewrite rule fired during a pass.
struct RuleFiring {
  std::string rule;  ///< "N1" ... "N9" plus the helper rules ("D2", "and-
                     ///< split", "not-push", "const-fold", ...)
  int count = 0;
};

/// Exhaustively applies the normalization rules (bottom-up, to fixpoint).
ExprPtr Normalize(const ExprPtr& e);

/// Like Normalize, additionally counting every rule application into *fired
/// (one entry per rule name, ordered by first firing). Produces the same
/// term as Normalize.
ExprPtr NormalizeTraced(const ExprPtr& e, std::vector<RuleFiring>* fired);

/// Applies only predicate normalization: pushes `not` inward through
/// and/or/comparisons and through quantifier comprehensions
/// (not some{p|q} = all{not p|q} and dually), and folds constants.
ExprPtr NormalizePredicate(const ExprPtr& e);

/// True if `e` is a comprehension in canonical form: every generator domain
/// is a path (Var or chain of projections rooted at a Var/extent).
bool IsCanonicalComp(const ExprPtr& e);

}  // namespace ldb

#endif  // LAMBDADB_CORE_NORMALIZE_H_
