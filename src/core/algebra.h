// The nested relational algebra of Fegaras, SIGMOD'98, Section 3 (operator
// semantics in Figure 5, typing in Figure 6), extended with aggregation,
// quantification, outer-joins and outer-unnests.
//
// Plans are trees whose leaves scan class extents and whose root is a
// `reduce` (Δ) producing the query result. Where the paper threads nested
// pairs (v, w) between operators, we thread *environments*: each operator
// produces a stream of variable bindings; the variables an operator adds are
// recorded in the node, which makes the unnesting rules' "group by w\u"
// directly computable (see DESIGN.md).
//
// Operators (paper notation):
//   Scan        σp(X)            — extent scan with selection         (O2)
//   Select      σp               — filter on a stream                 (O2)
//   Join        ⋈p               — (O1)
//   OuterJoin   =⋈p              — left outer-join; pads right NULL   (O5)
//   Unnest      μ^path_p         — adds v ranging over path(w)        (O3)
//   OuterUnnest =μ^path_p        — NULL-padding unnest                (O6)
//   Nest        Γ^{⊕/e/f}_{p/g}  — group by f, accumulate e with ⊕,
//                                  convert NULL g-vars to zeros       (O7)
//   Reduce      Δ^{⊕/e}_p        — fold the whole stream with ⊕       (O4)
//   Unit                         — one empty environment (seed for
//                                  generator-less comprehensions)

#ifndef LAMBDADB_CORE_ALGEBRA_H_
#define LAMBDADB_CORE_ALGEBRA_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/expr.h"

namespace ldb {

struct AlgOp;
using AlgPtr = std::shared_ptr<const AlgOp>;

enum class AlgKind {
  kUnit,
  kScan,
  kSelect,
  kJoin,
  kOuterJoin,
  kUnnest,
  kOuterUnnest,
  kNest,
  kReduce,
};

/// One algebraic operator. Construct via factories; every operator carries a
/// predicate (the paper allows a predicate on every operator; default true).
struct AlgOp {
  AlgKind kind;
  AlgPtr left, right;  // right only for joins
  ExprPtr pred;        // restricts input (evaluated over the full environment)

  std::string extent;  // kScan: extent name
  std::string var;     // kScan/kUnnest/kOuterUnnest: new range variable;
                       // kNest: variable bound to each group's reduction

  ExprPtr path;        // kUnnest/kOuterUnnest: collection-valued expression
                       // over the input environment (a path in canonical
                       // plans)

  MonoidKind monoid{};  // kNest/kReduce: the accumulator ⊕
  ExprPtr head;         // kNest/kReduce: the head expression e

  /// kNest: the group-by bindings (output name -> key expression). In plans
  /// produced by the unnesting algorithm these are identity bindings
  /// (name == Var(name)) for the variables w\u; the Section 5 simplification
  /// introduces non-trivial keys (e.g. k -> e.dno).
  std::vector<std::pair<std::string, ExprPtr>> group_by;

  /// kNest: the variables whose NULL (introduced by outer-join/outer-unnest
  /// padding) must be converted to the monoid's zero — the paper's g
  /// function in O7 / the u parameter of rules (C5)-(C7).
  std::vector<std::string> null_vars;

  // -- factories ------------------------------------------------------------
  static AlgPtr Unit();
  static AlgPtr Scan(std::string extent, std::string var, ExprPtr pred);
  static AlgPtr Select(AlgPtr child, ExprPtr pred);
  static AlgPtr Join(AlgPtr l, AlgPtr r, ExprPtr pred);
  static AlgPtr OuterJoin(AlgPtr l, AlgPtr r, ExprPtr pred);
  static AlgPtr Unnest(AlgPtr child, ExprPtr path, std::string var, ExprPtr pred);
  static AlgPtr OuterUnnest(AlgPtr child, ExprPtr path, std::string var,
                            ExprPtr pred);
  static AlgPtr Nest(AlgPtr child, MonoidKind monoid, ExprPtr head,
                     std::string out_var,
                     std::vector<std::pair<std::string, ExprPtr>> group_by,
                     std::vector<std::string> null_vars, ExprPtr pred);
  static AlgPtr Reduce(AlgPtr child, MonoidKind monoid, ExprPtr head, ExprPtr pred);
};

/// The variables bound in the environment stream this operator emits.
std::vector<std::string> OutputVars(const AlgPtr& op);

/// True if no expression anywhere in the plan contains a comprehension —
/// the completeness property of the unnesting algorithm (Theorem 1).
bool IsFullyUnnested(const AlgPtr& op);

/// Counts operators in the plan (for tests and reporting).
size_t PlanSize(const AlgPtr& op);

/// Structural equality of plans (for tests).
bool AlgEqual(const AlgPtr& a, const AlgPtr& b);

}  // namespace ldb

#endif  // LAMBDADB_CORE_ALGEBRA_H_
