// Catalog statistics for cost-based decisions (paper Section 6: the
// prototype's "various algebraic optimizations (including permutation of
// joins)" and "choosing access paths" need cardinalities to choose between
// orders and operators).
//
// The model is deliberately simple — extent cardinalities plus fixed
// selectivity constants — matching the granularity a 1998 optimizer
// prototype would have had.

#ifndef LAMBDADB_CORE_CATALOG_H_
#define LAMBDADB_CORE_CATALOG_H_

#include <map>
#include <string>

#include "src/runtime/database.h"

namespace ldb {

/// Extent-level statistics.
class Catalog {
 public:
  Catalog() = default;

  /// Snapshot the extent cardinalities of a populated database.
  static Catalog FromDatabase(const Database& db);

  void SetExtentCardinality(const std::string& extent, double card) {
    cards_[extent] = card;
  }

  /// Cardinality of an extent; kDefaultCardinality if unknown.
  double ExtentCardinality(const std::string& extent) const {
    auto it = cards_.find(extent);
    return it == cards_.end() ? kDefaultCardinality : it->second;
  }

  /// All recorded cardinalities (the plan cache folds them into its key:
  /// stale statistics must not serve a plan chosen under different ones).
  const std::map<std::string, double>& cards() const { return cards_; }

  /// Selectivity model: each equality conjunct keeps kEqSelectivity of the
  /// input, every other conjunct kOtherSelectivity.
  static constexpr double kDefaultCardinality = 1000.0;
  static constexpr double kEqSelectivity = 0.1;
  static constexpr double kOtherSelectivity = 0.5;
  /// Assumed average fan-out of an unnested collection attribute.
  static constexpr double kUnnestFanout = 3.0;

 private:
  std::map<std::string, double> cards_;
};

}  // namespace ldb

#endif  // LAMBDADB_CORE_CATALOG_H_
