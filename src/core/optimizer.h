// The end-to-end optimizer pipeline (paper, Sections 1.2 and 6):
//
//   calculus --normalize--> canonical comprehension --unnest (C1-C9)-->
//   algebra plan --simplify (Section 5)--> plan --physical selection-->
//   executable plan
//
// Every stage can be toggled off for the ablation experiments (P-NORM,
// P-SIMP, P-PHYS in DESIGN.md). The baseline path evaluates the calculus
// term directly with nested loops (EvalCalculus).
//
// Queries whose top level is not a comprehension (e.g. a record of several
// aggregates, or `A union B`) are executed by compiling each maximal —
// necessarily closed — comprehension subterm to a plan and folding the
// results back into the enclosing expression.

#ifndef LAMBDADB_CORE_OPTIMIZER_H_
#define LAMBDADB_CORE_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/algebra.h"
#include "src/core/catalog.h"
#include "src/core/expr.h"
#include "src/core/normalize.h"
#include "src/core/unnest.h"
#include "src/runtime/database.h"
#include "src/runtime/physical.h"

namespace ldb {

/// Wall time of one optimizer stage.
struct StageTiming {
  std::string stage;  ///< "normalize" | "unnest" | "simplify" | "typecheck"
                      ///< | "physical"
  double ms = 0;
};

/// Summary of one verifier pass (src/verify/): which IR was checked, how
/// many individual invariants, how many findings, and the wall time.
struct VerifyStageSummary {
  std::string stage;  ///< "calculus-input" | ... | "slot-plan"
  int checks = 0;
  int findings = 0;
  double ms = 0;
};

/// End-to-end record of one compilation: how long each stage took and which
/// rewrite rules fired where. The static counterpart of QueryProfiler
/// (docs/OBSERVABILITY.md); render with PrintCompileTrace (pretty.h) or
/// CompileTraceToJson (runtime/profile.h).
struct CompileTrace {
  std::vector<StageTiming> stages;        ///< in pipeline order
  std::vector<RuleFiring> normalize_rules;  ///< Figure 4 N1-N9 (+ helpers)
  std::vector<UnnestStep> unnest_steps;   ///< Figure 7 C1-C9, firing order
  int simplify_rewrites = 0;              ///< Section 5 rule applications
  std::vector<VerifyStageSummary> verify_stages;  ///< when verify_plans is on
  double total_ms = 0;                    ///< sum over stages
};

struct OptimizerOptions {
  bool normalize = true;        ///< run the Figure 4 rules first
  bool simplify = true;         ///< run the Section 5 rule on the plan
  bool materialize_paths = false;  ///< rewrite ref navigation into joins
                                   ///< (paper Section 6, citing [1])
  bool reorder_joins = false;      ///< permute inner-join chains by cost
  Catalog catalog;                 ///< statistics for reorder_joins
  bool typecheck = true;        ///< check the calculus and the final plan
  PhysicalOptions physical;     ///< hash vs nested-loop operators
  bool pipelined_execution = true;  ///< Volcano iterators (exec_pipeline)
                                    ///< vs the materializing executor
  ExecOptions exec;             ///< slot frames / parallelism knobs for the
                                ///< pipelined executor

  /// Verify that unnesting a bag comprehension cannot merge duplicate
  /// groups (every generator domain must be an extent or set-typed path);
  /// reject otherwise. See DESIGN.md, "Bags and lists".
  bool check_duplicate_safety = true;

  /// Record a CompileTrace (stage wall times + rule firings) into
  /// CompiledQuery::trace. Off by default: tracing routes normalization
  /// through the counting rewriter, which is measurably slower on tiny
  /// queries.
  bool trace = false;

  /// Run the static verifier (src/verify/) over every IR the pipeline
  /// produces — the calculus before and after normalization, the algebra
  /// after unnesting and after simplification, and the slot plan before
  /// execution — throwing VerifyError on any invariant violation. On by
  /// default in Debug builds (docs/VERIFIER.md); cheap enough to enable
  /// explicitly wherever a miscompiled plan would be expensive.
#ifndef NDEBUG
  bool verify_plans = true;
#else
  bool verify_plans = false;
#endif
};

/// A compiled query, exposing every intermediate the paper shows so that
/// examples and tests can print the Figure 1/2/8 artifacts.
struct CompiledQuery {
  ExprPtr calculus;    ///< input term
  ExprPtr normalized;  ///< after Figure 4
  AlgPtr plan;         ///< after unnesting (C1-C9)
  AlgPtr simplified;   ///< after Section 5 (== plan if simplify is off)
  TypePtr result_type; ///< nullptr when typecheck is off

  /// Stage timings + rule firings; null unless OptimizerOptions::trace.
  /// Shared (not owned) so Execute can append the "physical" stage timing
  /// to an already-compiled query.
  std::shared_ptr<CompileTrace> trace;
};

class Optimizer {
 public:
  explicit Optimizer(const Schema& schema, OptimizerOptions options = {})
      : schema_(schema), options_(options) {}

  /// Compiles a comprehension-rooted calculus term through every stage.
  /// Throws TypeError / UnsupportedError.
  CompiledQuery Compile(const ExprPtr& calculus) const;

  /// Executes a compiled query.
  Value Execute(const CompiledQuery& q, const Database& db) const;

  /// Compile + execute. Handles non-comprehension top-level terms.
  Value Run(const ExprPtr& calculus, const Database& db) const;

  const Schema& schema() const { return schema_; }
  const OptimizerOptions& options() const { return options_; }

 private:
  const Schema& schema_;
  OptimizerOptions options_;
};

}  // namespace ldb

#endif  // LAMBDADB_CORE_OPTIMIZER_H_
