// Cardinality estimation and join-order permutation (paper Section 6).
//
// EstimateCardinality walks a plan bottom-up with the Catalog's selectivity
// model. ReorderJoins rewrites every maximal chain of consecutive INNER
// joins using a greedy smallest-intermediate-first heuristic: collect the
// chain's input subtrees and predicate conjuncts, start from the
// cheapest-cardinality input, and repeatedly attach the input that minimizes
// the estimated size of the next intermediate (predicates attach to the
// first join where all their variables are available, so selections stay as
// early as possible).
//
// Outer-joins, outer-unnests, and nests are left untouched: the unnesting
// algorithm's correctness depends on their positions (they pad and group for
// specific inner comprehensions), and outer-joins do not commute with inner
// joins in general. The paper makes the same restriction implicitly — its
// join permutation predates unnesting's outer operators in the pipeline.

#ifndef LAMBDADB_CORE_COST_H_
#define LAMBDADB_CORE_COST_H_

#include "src/core/algebra.h"
#include "src/core/catalog.h"
#include "src/runtime/physical_plan.h"

namespace ldb {

/// Estimated output cardinality of a (stream-producing) plan node.
double EstimateCardinality(const AlgPtr& op, const Catalog& catalog);

/// Same model applied to a physical operator — the "est=" column of
/// ExplainAnalyze. Physical choices refine the logical estimates where they
/// carry information: an index scan implies an equality lookup, and a hash
/// join's extracted key pairs are each an equality conjunct.
double EstimatePhysicalCardinality(const PhysPtr& op, const Catalog& catalog);

/// Greedily reorders maximal inner-join chains; returns the rewritten plan.
/// Never changes results (tested); only changes join shapes/orders.
AlgPtr ReorderJoins(const AlgPtr& plan, const Catalog& catalog);

}  // namespace ldb

#endif  // LAMBDADB_CORE_COST_H_
