#include "src/core/simplify.h"

#include <algorithm>

#include "src/runtime/error.h"

namespace ldb {

ExprPtr ReplaceSubterm(const ExprPtr& e, const ExprPtr& target,
                       const ExprPtr& replacement) {
  if (!e) return e;
  if (ExprEqual(e, target)) return replacement;
  switch (e->kind) {
    case ExprKind::kVar:
    case ExprKind::kLiteral:
    case ExprKind::kZero:
    case ExprKind::kParam:
      return e;
    case ExprKind::kRecord: {
      std::vector<std::pair<std::string, ExprPtr>> fields;
      fields.reserve(e->fields.size());
      for (const auto& [n, f] : e->fields) {
        fields.emplace_back(n, ReplaceSubterm(f, target, replacement));
      }
      return Expr::Record(std::move(fields));
    }
    case ExprKind::kComp: {
      std::vector<Qualifier> quals = e->quals;
      for (Qualifier& q : quals) q.expr = ReplaceSubterm(q.expr, target, replacement);
      return Expr::Comp(e->monoid, ReplaceSubterm(e->a, target, replacement),
                        std::move(quals));
    }
    default: {
      auto out = std::make_shared<Expr>(*e);
      out->a = e->a ? ReplaceSubterm(e->a, target, replacement) : nullptr;
      out->b = e->b ? ReplaceSubterm(e->b, target, replacement) : nullptr;
      out->c = e->c ? ReplaceSubterm(e->c, target, replacement) : nullptr;
      return out;
    }
  }
}

namespace {

bool InVars(const std::string& v, const std::vector<std::string>& vars) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

// True if every free variable of e (ignoring extents) is in `vars`.
bool FreeVarsWithin(const ExprPtr& e, const std::vector<std::string>& vars,
                    const Schema& schema) {
  for (const std::string& v : FreeVars(e)) {
    if (!InVars(v, vars) && !schema.IsExtent(v)) return false;
  }
  return true;
}

// If `e` is a path rooted at `root` with at least one attribute, returns the
// attribute chain.
bool PathFrom(const ExprPtr& e, const std::string& root,
              std::vector<std::string>* attrs) {
  std::string r;
  if (!IsPath(e, &r, attrs)) return false;
  return r == root && !attrs->empty();
}

// Tries the Section 5 rule at a Reduce node. Returns nullptr if no match.
AlgPtr TrySection5(const AlgPtr& reduce, const Schema& schema) {
  if (reduce->kind != AlgKind::kReduce) return nullptr;
  if (!IsIdempotentMonoid(reduce->monoid)) return nullptr;
  const AlgPtr& nest = reduce->left;
  if (!nest || nest->kind != AlgKind::kNest) return nullptr;
  const AlgPtr& ojoin = nest->left;
  if (!ojoin || ojoin->kind != AlgKind::kOuterJoin) return nullptr;
  const AlgPtr& outer = ojoin->left;
  const AlgPtr& inner = ojoin->right;
  if (!outer || outer->kind != AlgKind::kScan) return nullptr;
  if (!inner || inner->kind != AlgKind::kScan) return nullptr;
  if (outer->extent != inner->extent) return nullptr;

  const std::string& a = outer->var;  // the outer (grouping) variable
  const std::string& u = inner->var;  // the inner (aggregated) variable

  // Same selection on both scans (modulo renaming u -> a).
  if (!ExprEqual(outer->pred, Subst(inner->pred, u, Expr::Var(a)))) {
    return nullptr;
  }

  // The nest must group exactly by {a} and null-convert exactly {u}.
  if (nest->group_by.size() != 1 || nest->group_by[0].first != a) return nullptr;
  const ExprPtr& gk = nest->group_by[0].second;
  if (gk->kind != ExprKind::kVar || gk->name != a) return nullptr;
  if (nest->null_vars != std::vector<std::string>{u}) return nullptr;

  // The join predicate must be a conjunction of key equalities a.M = u.M
  // over identical attribute chains.
  std::vector<ExprPtr> key_paths;  // rooted at a
  for (const ExprPtr& c : SplitConjuncts(ojoin->pred)) {
    if (c->kind != ExprKind::kBinOp || c->bin_op != BinOpKind::kEq) return nullptr;
    std::vector<std::string> la, lu;
    ExprPtr a_side, u_side;
    if (PathFrom(c->a, a, &la) && PathFrom(c->b, u, &lu)) {
      a_side = c->a;
    } else if (PathFrom(c->a, u, &lu) && PathFrom(c->b, a, &la)) {
      a_side = c->b;
    } else {
      return nullptr;
    }
    if (la != lu) return nullptr;
    key_paths.push_back(Expr::Path(Expr::Var(a), la));
  }
  if (key_paths.empty()) return nullptr;

  // The nest head must use only the inner variable (it is rewritten u -> a);
  // the nest predicate only the outer one.
  if (!FreeVarsWithin(nest->head, {a, u}, schema)) return nullptr;
  if (!FreeVarsWithin(nest->pred, {a}, schema)) return nullptr;

  // Rewrite the reduce's head/pred: each key path a.M becomes a fresh
  // group-by variable; afterwards the reduce must not mention a or u.
  std::vector<std::pair<std::string, ExprPtr>> group_by;
  ExprPtr reduce_head = reduce->head;
  ExprPtr reduce_pred = reduce->pred;
  for (const ExprPtr& kp : key_paths) {
    std::string k = Gensym::Fresh("k");
    reduce_head = ReplaceSubterm(reduce_head, kp, Expr::Var(k));
    reduce_pred = ReplaceSubterm(reduce_pred, kp, Expr::Var(k));
    group_by.emplace_back(k, kp);
  }
  std::vector<std::string> visible{nest->var};
  for (const auto& [k, kp] : group_by) visible.push_back(k);
  if (!FreeVarsWithin(reduce_head, visible, schema)) return nullptr;
  if (!FreeVarsWithin(reduce_pred, visible, schema)) return nullptr;

  // NULL-key rows never self-match through the outer-join, so they must
  // contribute zero (not their own head value) in the rewritten nest.
  std::vector<ExprPtr> nest_conjuncts = SplitConjuncts(nest->pred);
  for (const ExprPtr& kp : key_paths) {
    nest_conjuncts.push_back(Expr::Not(Expr::Un(UnOpKind::kIsNull, kp)));
  }

  AlgPtr new_nest = AlgOp::Nest(
      outer, nest->monoid, Subst(nest->head, u, Expr::Var(a)), nest->var,
      std::move(group_by), /*null_vars=*/{}, MakeConjunction(nest_conjuncts));
  return AlgOp::Reduce(new_nest, reduce->monoid, reduce_head, reduce_pred);
}

AlgPtr SimplifyOnce(const AlgPtr& op, const Schema& schema, int* fired) {
  if (!op) return op;
  if (AlgPtr r = TrySection5(op, schema)) {
    ++*fired;
    return r;
  }
  AlgPtr left = SimplifyOnce(op->left, schema, fired);
  AlgPtr right = SimplifyOnce(op->right, schema, fired);
  if (left == op->left && right == op->right) return op;
  auto out = std::make_shared<AlgOp>(*op);
  out->left = left;
  out->right = right;
  return out;
}

}  // namespace

AlgPtr Simplify(const AlgPtr& plan, const Schema& schema) {
  int ignored = 0;
  return SimplifyTraced(plan, schema, &ignored);
}

AlgPtr SimplifyTraced(const AlgPtr& plan, const Schema& schema,
                      int* rewrites) {
  AlgPtr cur = plan;
  for (int round = 0; round < 100; ++round) {
    int fired = 0;
    cur = SimplifyOnce(cur, schema, &fired);
    *rewrites += fired;
    if (fired == 0) return cur;
  }
  throw InternalError("simplification did not converge");
}

}  // namespace ldb
