#include "src/core/unnest.h"

#include <algorithm>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/runtime/error.h"

namespace ldb {

namespace {

class Unnester {
 public:
  explicit Unnester(const Schema& schema, std::vector<UnnestStep>* steps)
      : schema_(schema), steps_(steps) {}

  AlgPtr TranslateOuter(const ExprPtr& comp) {
    std::string ignored;
    return Compile(comp, /*input=*/nullptr, /*w=*/{}, /*inner=*/false, &ignored);
  }

 private:
  const Schema& schema_;
  std::vector<UnnestStep>* steps_;  // may be null
  bool in_head_ = false;  // distinguishes C9 (head) from C8 (predicate)

  void Trace(const char* rule, std::string description) {
    if (steps_ != nullptr) {
      steps_->push_back(UnnestStep{rule, std::move(description)});
    }
  }

  // True if all free variables of `e` are bound in `w` (extent names are
  // always available).
  bool Available(const ExprPtr& e, const std::vector<std::string>& w) const {
    for (const std::string& v : FreeVars(e)) {
      if (std::find(w.begin(), w.end(), v) != w.end()) continue;
      if (schema_.IsExtent(v)) continue;
      return false;
    }
    return true;
  }

  static bool InList(const std::string& v, const std::vector<std::string>& w) {
    return std::find(w.begin(), w.end(), v) != w.end();
  }

  // Rules (C8)/(C9): walks `e` and splices every maximal comprehension
  // subterm whose free variables are available, replacing it with the
  // variable its nest binds. Comprehensions that are not yet available are
  // left untouched (they will be spliced after more generators compile).
  ExprPtr SpliceComps(const ExprPtr& e, AlgPtr* plan,
                      std::vector<std::string>* w,
                      std::vector<std::string>* u_group, bool parent_inner,
                      bool* changed) {
    if (!e) return e;
    if (e->kind == ExprKind::kComp) {
      if (!Available(e, *w)) return e;  // not yet; do not descend
      const bool was_head = in_head_;  // Compile below resets the flag
      std::string out_var;
      *plan = Compile(e, *plan, *w, /*inner=*/true, &out_var);
      Trace(was_head ? "C9" : "C8",
            std::string("spliced nested ") + MonoidName(e->monoid) +
                "-comprehension " + PrintExpr(e) + " -> " + out_var);
      w->push_back(out_var);
      if (parent_inner) u_group->push_back(out_var);
      *changed = true;
      return Expr::Var(out_var);
    }
    switch (e->kind) {
      case ExprKind::kVar:
      case ExprKind::kLiteral:
      case ExprKind::kZero:
      case ExprKind::kParam:
        return e;
      case ExprKind::kRecord: {
        bool any = false;
        std::vector<std::pair<std::string, ExprPtr>> fields;
        fields.reserve(e->fields.size());
        for (const auto& [n, f] : e->fields) {
          fields.emplace_back(n, SpliceComps(f, plan, w, u_group, parent_inner, &any));
        }
        if (!any) return e;
        *changed = true;
        return Expr::Record(std::move(fields));
      }
      default: {
        bool any = false;
        ExprPtr a = e->a ? SpliceComps(e->a, plan, w, u_group, parent_inner, &any)
                         : nullptr;
        ExprPtr b = e->b ? SpliceComps(e->b, plan, w, u_group, parent_inner, &any)
                         : nullptr;
        ExprPtr c = e->c ? SpliceComps(e->c, plan, w, u_group, parent_inner, &any)
                         : nullptr;
        if (!any) return e;
        *changed = true;
        auto out = std::make_shared<Expr>(*e);
        out->a = a;
        out->b = b;
        out->c = c;
        return out;
      }
    }
  }

  // Collects every pending conjunct that is comprehension-free and whose
  // free variables are bound by `vars`, removes them from `pending`, and
  // returns their conjunction (True if none).
  ExprPtr TakeApplicable(std::vector<ExprPtr>* pending,
                         const std::vector<std::string>& vars) {
    std::vector<ExprPtr> taken;
    auto it = pending->begin();
    while (it != pending->end()) {
      if (!ContainsComp(*it) && Available(*it, vars)) {
        taken.push_back(*it);
        it = pending->erase(it);
      } else {
        ++it;
      }
    }
    return MakeConjunction(taken);
  }

  // The translation [[ ⊕{e | q1..qn, pred} ]]^u_w (input). For the outermost
  // comprehension (inner == false, input == nullptr) this implements
  // (C1)-(C4) + (C8)/(C9) and returns a Reduce-rooted plan. For an inner
  // comprehension it implements (C5)-(C7) + (C8)/(C9), splices onto `input`,
  // binds the comprehension's per-tuple value to a fresh variable returned
  // through *out_var, and returns the extended plan.
  AlgPtr Compile(const ExprPtr& comp, AlgPtr input, std::vector<std::string> w,
                 bool inner, std::string* out_var) {
    LDB_INTERNAL_CHECK(comp->kind == ExprKind::kComp, "not a comprehension");
    if (comp->monoid == MonoidKind::kList) {
      throw UnsupportedError(
          "unnesting of list comprehensions (the paper's future work)");
    }
    // Predicate splices of THIS comprehension are C8 even when the
    // comprehension itself was entered from an enclosing head (C9).
    const bool outer_in_head = in_head_;
    in_head_ = false;

    const std::vector<std::string> w_entry = w;  // the group-by vars (w\u)
    std::vector<std::string> u_group;  // vars introduced inside this box
    std::vector<std::string> u_null;   // generator vars introduced inside

    AlgPtr plan = input;
    ExprPtr head = comp->a;

    // Separate generators from filter conjuncts.
    std::vector<Qualifier> gens;
    std::vector<ExprPtr> pending;
    for (const Qualifier& q : comp->quals) {
      if (q.is_generator) {
        gens.push_back(q);
      } else {
        for (const ExprPtr& c : SplitConjuncts(q.expr)) pending.push_back(c);
      }
    }

    // Splices every available nested comprehension in the pending conjuncts
    // (rule C8, applied as early as possible).
    auto splice_pending = [&]() {
      bool changed = true;
      while (changed) {
        changed = false;
        for (ExprPtr& c : pending) {
          if (!ContainsComp(c)) continue;
          c = SpliceComps(c, &plan, &w, &u_group, inner, &changed);
        }
      }
    };

    for (size_t gi = 0; gi < gens.size(); ++gi) {
      splice_pending();  // (C8)

      const Qualifier& g = gens[gi];
      std::string root;
      std::vector<std::string> attrs;
      if (!IsPath(g.expr, &root, &attrs)) {
        throw UnsupportedError(
            "non-canonical generator domain (normalize the query first): " +
            g.var);
      }

      const bool root_is_extent = !InList(root, w) && schema_.IsExtent(root);
      if (root_is_extent && attrs.empty()) {
        // Generator over a class extent.
        ExprPtr self_pred = TakeApplicable(&pending, {g.var});
        AlgPtr scan = AlgOp::Scan(root, g.var, self_pred);
        if (plan == nullptr) {
          plan = scan;  // (C1): the seed is a selection over the extent
          Trace("C1", "seed: selection over extent " + root + " binding " +
                          g.var);
        } else {
          std::vector<std::string> joined = w;
          joined.push_back(g.var);
          ExprPtr join_pred = TakeApplicable(&pending, joined);
          plan = inner ? AlgOp::OuterJoin(plan, scan, join_pred)   // (C6)
                       : AlgOp::Join(plan, scan, join_pred);       // (C3)
          Trace(inner ? "C6" : "C3",
                std::string(inner ? "outer-join" : "join") + " with " + root +
                    " binding " + g.var + " on " + PrintExpr(plan->pred));
        }
      } else if (InList(root, w)) {
        // Generator over a path rooted at a bound variable.
        LDB_INTERNAL_CHECK(plan != nullptr, "path generator with no input");
        std::vector<std::string> extended = w;
        extended.push_back(g.var);
        ExprPtr pred = TakeApplicable(&pending, extended);
        plan = inner ? AlgOp::OuterUnnest(plan, g.expr, g.var, pred)  // (C7)
                     : AlgOp::Unnest(plan, g.expr, g.var, pred);      // (C4)
        Trace(inner ? "C7" : "C4",
              std::string(inner ? "outer-unnest" : "unnest") + " of " +
                  PrintExpr(g.expr) + " binding " + g.var);
      } else {
        throw TypeError("unknown extent or unbound variable '" + root +
                        "' in generator domain");
      }
      w.push_back(g.var);
      if (inner) {
        u_group.push_back(g.var);
        u_null.push_back(g.var);
      }
    }

    // All generators consumed: splice what remains in predicates (C8 "worst
    // case") and in the head (C9).
    splice_pending();
    {
      in_head_ = true;
      bool changed = true;
      while (changed) {
        changed = false;
        head = SpliceComps(head, &plan, &w, &u_group, inner, &changed);
      }
      in_head_ = outer_in_head;
    }

    for (const ExprPtr& c : pending) {
      if (ContainsComp(c)) {
        throw TypeError("nested query references unbound variables: cannot "
                        "splice conjunct");
      }
    }
    ExprPtr final_pred = TakeApplicable(&pending, w);
    if (!pending.empty()) {
      throw TypeError("predicate references unbound variables");
    }

    if (!inner) {
      // (C2): the outermost comprehension reduces the stream to a value. A
      // comprehension with no generators reduces the unit stream.
      if (plan == nullptr) plan = AlgOp::Unit();
      Trace("C2", std::string("reduce with ") + MonoidName(comp->monoid) +
                      " over head " + PrintExpr(head));
      return AlgOp::Reduce(plan, comp->monoid, head, final_pred);
    }

    // (C5): an inner comprehension becomes a nest that groups by the
    // variables that existed at entry (w\u) and converts NULLs of its own
    // generator variables (u) into the monoid zero.
    LDB_INTERNAL_CHECK(plan != nullptr, "inner comprehension with no input");
    *out_var = Gensym::Fresh("v");
    std::vector<std::pair<std::string, ExprPtr>> group_by;
    group_by.reserve(w_entry.size());
    for (const std::string& v : w_entry) {
      group_by.emplace_back(v, Expr::Var(v));
    }
    {
      std::string groups;
      for (const std::string& v : w_entry) {
        if (!groups.empty()) groups += ", ";
        groups += v;
      }
      std::string nulls;
      for (const std::string& v : u_null) {
        if (!nulls.empty()) nulls += ", ";
        nulls += v;
      }
      Trace("C5", std::string("nest with ") + MonoidName(comp->monoid) +
                      " -> " + *out_var + ", group by (" + groups +
                      "), null-convert (" + nulls + ")");
    }
    return AlgOp::Nest(plan, comp->monoid, head, *out_var, std::move(group_by),
                       u_null, final_pred);
  }
};

}  // namespace

AlgPtr UnnestComp(const ExprPtr& comp, const Schema& schema) {
  return UnnestCompTraced(comp, schema, nullptr);
}

AlgPtr UnnestCompTraced(const ExprPtr& comp, const Schema& schema,
                        std::vector<UnnestStep>* steps) {
  if (!comp || comp->kind != ExprKind::kComp) {
    throw UnsupportedError("UnnestComp expects a comprehension");
  }
  Unnester u(schema, steps);
  return u.TranslateOuter(comp);
}

}  // namespace ldb
