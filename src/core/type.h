// The type system of the monoid comprehension calculus (Fegaras, SIGMOD'98,
// Section 2 and Figure 3).
//
// Types are immutable shared trees. Every type domain is implicitly extended
// with the NULL value (paper, Section 2), so there is no separate nullable
// wrapper; NULL inhabits every type.

#ifndef LAMBDADB_CORE_TYPE_H_
#define LAMBDADB_CORE_TYPE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ldb {

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// A type in the calculus: primitives, records, collections, class
/// references, and functions (used internally for lambdas and the algebra
/// typing rules of Figure 6).
class Type {
 public:
  enum class Kind {
    kBool,
    kInt,
    kReal,
    kStr,
    kTuple,  ///< record (A1: t1, ..., An: tn)
    kSet,
    kBag,
    kList,
    kClass,  ///< named object class; values are references into its extent
    kFunc,   ///< t1 -> t2
    kAny,    ///< bottom placeholder: the element type of an empty collection,
             ///< and the type of NULL; unifies with everything
  };

  static TypePtr Bool();
  static TypePtr Int();
  static TypePtr Real();
  static TypePtr Str();
  static TypePtr Any();
  static TypePtr Tuple(std::vector<std::pair<std::string, TypePtr>> fields);
  static TypePtr Set(TypePtr elem);
  static TypePtr Bag(TypePtr elem);
  static TypePtr List(TypePtr elem);
  static TypePtr Class(std::string name);
  static TypePtr Func(TypePtr arg, TypePtr result);
  /// Builds the collection type of the given kind (kSet/kBag/kList).
  static TypePtr Collection(Kind kind, TypePtr elem);

  Kind kind() const { return kind_; }
  bool is_collection() const {
    return kind_ == Kind::kSet || kind_ == Kind::kBag || kind_ == Kind::kList;
  }
  bool is_numeric() const { return kind_ == Kind::kInt || kind_ == Kind::kReal; }

  /// Element type of a collection; arg/result of a function.
  const TypePtr& elem() const { return elem_; }
  const TypePtr& result() const { return result_; }
  /// Fields of a record type.
  const std::vector<std::pair<std::string, TypePtr>>& fields() const {
    return fields_;
  }
  /// Class name of a kClass type.
  const std::string& class_name() const { return name_; }

  /// Looks up a record field type; returns nullptr if absent.
  TypePtr FieldType(const std::string& name) const;

  /// Structural equality; kAny equals anything.
  static bool Equal(const TypePtr& a, const TypePtr& b);

  /// The least upper bound of two types if they unify (treating kAny as
  /// bottom), or nullptr if they are incompatible. Int and Real unify to Real.
  static TypePtr Unify(const TypePtr& a, const TypePtr& b);

  std::string ToString() const;

 protected:
  explicit Type(Kind kind) : kind_(kind) {}

 private:

  Kind kind_;
  TypePtr elem_;    // collection element / function argument
  TypePtr result_;  // function result
  std::vector<std::pair<std::string, TypePtr>> fields_;
  std::string name_;
};

}  // namespace ldb

#endif  // LAMBDADB_CORE_TYPE_H_
