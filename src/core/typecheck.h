// Type checking for the monoid calculus (Figure 3 of the paper) and for
// algebra plans (Figure 6).
//
// The checker resolves free variables against a Schema: a name that is a
// declared extent types as set(ClassType); class-typed values project
// through their declared attributes (implicit dereference of object refs).

#ifndef LAMBDADB_CORE_TYPECHECK_H_
#define LAMBDADB_CORE_TYPECHECK_H_

#include <map>
#include <string>

#include "src/core/algebra.h"
#include "src/core/expr.h"
#include "src/runtime/schema.h"

namespace ldb {

/// A typing environment: variable name -> type.
using TypeEnv = std::map<std::string, TypePtr>;

/// Infers the type of a calculus term under `env`, resolving extents through
/// `schema`. Throws TypeError on ill-typed terms.
TypePtr TypeCheck(const ExprPtr& e, const Schema& schema,
                  const TypeEnv& env = {});

/// Computes the typed output environment of a (non-Reduce) plan node,
/// validating the subtree along the way. Useful for analyses that need the
/// type of an operator's inputs (e.g. the duplicate-safety check for bag
/// unnesting in the optimizer).
TypeEnv PlanOutputEnv(const AlgPtr& op, const Schema& schema);

/// Validates an algebra plan bottom-up per the typing rules of Figure 6:
/// every predicate must be bool, every unnest path a collection, every
/// nest/reduce head compatible with its monoid. Returns the type of the
/// value the root reduce produces. Throws TypeError on violations.
TypePtr TypeCheckPlan(const AlgPtr& plan, const Schema& schema);

}  // namespace ldb

#endif  // LAMBDADB_CORE_TYPECHECK_H_
