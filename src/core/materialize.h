// Materialization of path expressions into joins (paper Section 6, citing
// Blakeley/McKenna/Graefe [1]): rewrites pointer-chasing navigation like
//
//     ... e.manager.name ... e.manager.children ...
//
// into a join with the extent of the referenced class:
//
//     OuterJoin[m = e.manager](plan, Scan(Managers, m)) ... m.name, m.children
//
// The outer-join keeps rows whose reference is NULL (the padded m is NULL and
// every use of the path sees NULL, exactly like navigation from NULL). The
// join adds no duplicates: each object matches at most the one target its
// reference names. The benefit, as in the paper, is that a materialized
// reference participates in the other algebraic optimizations — most
// importantly it can turn a navigation-correlated predicate into a hashable
// equi-join (see bench_ablation's P-MAT experiment).
//
// Only *strict prefixes* of longer paths are materialized (a bare `e.manager`
// used as a value stays a pointer); scan-level predicates are left alone
// (scans have no input stream to join against).

#ifndef LAMBDADB_CORE_MATERIALIZE_H_
#define LAMBDADB_CORE_MATERIALIZE_H_

#include "src/core/algebra.h"
#include "src/runtime/schema.h"

namespace ldb {

/// Rewrites every materializable path prefix in the plan into an outer-join
/// with the referenced class's extent. Returns the rewritten plan (the input
/// is shared, not mutated). Plans in and out type-check identically.
AlgPtr MaterializePaths(const AlgPtr& plan, const Schema& schema);

}  // namespace ldb

#endif  // LAMBDADB_CORE_MATERIALIZE_H_
