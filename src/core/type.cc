#include "src/core/type.h"

#include <sstream>

#include "src/runtime/error.h"

namespace ldb {

// Factory helper: Type's constructor is private, so build via a local
// subclass that re-exposes it.
static TypePtr NewType(Type::Kind kind) {
  struct Accessor : Type {
    explicit Accessor(Kind k) : Type(k) {}
  };
  return std::make_shared<const Accessor>(kind);
}

TypePtr Type::Bool() {
  static TypePtr t = NewType(Kind::kBool);
  return t;
}
TypePtr Type::Int() {
  static TypePtr t = NewType(Kind::kInt);
  return t;
}
TypePtr Type::Real() {
  static TypePtr t = NewType(Kind::kReal);
  return t;
}
TypePtr Type::Str() {
  static TypePtr t = NewType(Kind::kStr);
  return t;
}
TypePtr Type::Any() {
  static TypePtr t = NewType(Kind::kAny);
  return t;
}

TypePtr Type::Tuple(std::vector<std::pair<std::string, TypePtr>> fields) {
  auto t = std::const_pointer_cast<Type>(NewType(Kind::kTuple));
  t->fields_ = std::move(fields);
  return t;
}

TypePtr Type::Set(TypePtr elem) { return Collection(Kind::kSet, std::move(elem)); }
TypePtr Type::Bag(TypePtr elem) { return Collection(Kind::kBag, std::move(elem)); }
TypePtr Type::List(TypePtr elem) { return Collection(Kind::kList, std::move(elem)); }

TypePtr Type::Collection(Kind kind, TypePtr elem) {
  LDB_INTERNAL_CHECK(kind == Kind::kSet || kind == Kind::kBag || kind == Kind::kList,
                     "not a collection kind");
  auto t = std::const_pointer_cast<Type>(NewType(kind));
  t->elem_ = std::move(elem);
  return t;
}

TypePtr Type::Class(std::string name) {
  auto t = std::const_pointer_cast<Type>(NewType(Kind::kClass));
  t->name_ = std::move(name);
  return t;
}

TypePtr Type::Func(TypePtr arg, TypePtr result) {
  auto t = std::const_pointer_cast<Type>(NewType(Kind::kFunc));
  t->elem_ = std::move(arg);
  t->result_ = std::move(result);
  return t;
}

TypePtr Type::FieldType(const std::string& name) const {
  for (const auto& [n, t] : fields_) {
    if (n == name) return t;
  }
  return nullptr;
}

bool Type::Equal(const TypePtr& a, const TypePtr& b) {
  return Unify(a, b) != nullptr;
}

TypePtr Type::Unify(const TypePtr& a, const TypePtr& b) {
  if (!a || !b) return nullptr;
  if (a->kind_ == Kind::kAny) return b;
  if (b->kind_ == Kind::kAny) return a;
  if (a->is_numeric() && b->is_numeric()) {
    return (a->kind_ == Kind::kReal || b->kind_ == Kind::kReal) ? Real() : Int();
  }
  if (a->kind_ != b->kind_) return nullptr;
  switch (a->kind_) {
    case Kind::kBool:
    case Kind::kStr:
      return a;
    case Kind::kClass:
      return a->name_ == b->name_ ? a : nullptr;
    case Kind::kSet:
    case Kind::kBag:
    case Kind::kList: {
      TypePtr e = Unify(a->elem_, b->elem_);
      return e ? Collection(a->kind_, e) : nullptr;
    }
    case Kind::kFunc: {
      TypePtr arg = Unify(a->elem_, b->elem_);
      TypePtr res = Unify(a->result_, b->result_);
      return (arg && res) ? Func(arg, res) : nullptr;
    }
    case Kind::kTuple: {
      if (a->fields_.size() != b->fields_.size()) return nullptr;
      std::vector<std::pair<std::string, TypePtr>> fields;
      for (size_t i = 0; i < a->fields_.size(); ++i) {
        if (a->fields_[i].first != b->fields_[i].first) return nullptr;
        TypePtr f = Unify(a->fields_[i].second, b->fields_[i].second);
        if (!f) return nullptr;
        fields.emplace_back(a->fields_[i].first, f);
      }
      return Tuple(std::move(fields));
    }
    default:
      return nullptr;
  }
}

std::string Type::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kBool:
      return "bool";
    case Kind::kInt:
      return "int";
    case Kind::kReal:
      return "real";
    case Kind::kStr:
      return "string";
    case Kind::kAny:
      return "any";
    case Kind::kClass:
      return name_;
    case Kind::kSet:
      return "set(" + elem_->ToString() + ")";
    case Kind::kBag:
      return "bag(" + elem_->ToString() + ")";
    case Kind::kList:
      return "list(" + elem_->ToString() + ")";
    case Kind::kFunc:
      return elem_->ToString() + " -> " + result_->ToString();
    case Kind::kTuple: {
      os << '(';
      bool first = true;
      for (const auto& [n, t] : fields_) {
        if (!first) os << ", ";
        first = false;
        os << n << ": " << t->ToString();
      }
      os << ')';
      return os.str();
    }
  }
  return "?";
}

}  // namespace ldb
