// The query unnesting algorithm (Fegaras, SIGMOD'98, Section 4, Figure 7,
// rules (C1)-(C9)): translates canonical monoid comprehensions into nested
// relational algebra plans with NO nested subqueries left anywhere
// (Theorem 1, completeness), preserving meaning (Theorem 2, soundness).
//
// Outermost comprehensions compile with rules (C1)-(C4): the first generator
// becomes a selection over its extent (C1), later generators become joins
// (C3) or unnests (C4), and the comprehension itself becomes the final
// reduce (C2). Inner (nested) comprehensions compile with (C5)-(C7), which
// are the same rules except that reduce becomes nest, join becomes left
// outer-join, and unnest becomes outer-unnest, so the spliced box can never
// block the embedding stream. The actual unnesting is (C8) — a nested
// comprehension in a *predicate* is spliced onto the stream as soon as its
// free variables are all available — and (C9) — a nested comprehension in
// the *head* is spliced after all generators are consumed. The spliced box's
// nest groups by the variables that existed when the box was entered (w\u)
// and converts to the monoid zero the NULLs of the generator variables the
// box itself introduced (u) — the "which nulls to convert when" subtlety of
// Section 1.2.
//
// Predicates are routed greedily ("performing selections as early as
// possible", Section 1): each conjunct attaches to the first operator whose
// output binds all of its free variables — the p[v]/p[w,v] split of (C1)/(C3).
//
// Scope (per the paper): set comprehensions and all primitive monoids (sum,
// prod, max, min, some, all, avg). Bag comprehensions are additionally
// unnested under the object-identity restriction checked by the optimizer
// (see DESIGN.md); list comprehensions are rejected (the paper's Section 8
// leaves ordered collections as future work).

#ifndef LAMBDADB_CORE_UNNEST_H_
#define LAMBDADB_CORE_UNNEST_H_

#include <string>
#include <vector>

#include "src/core/algebra.h"
#include "src/core/expr.h"
#include "src/runtime/schema.h"

namespace ldb {

/// One step of the unnesting derivation: which rule of Figure 7 fired and
/// what it did — the machine-checkable version of the paper's Section 4
/// worked example for QUERY D.
struct UnnestStep {
  std::string rule;         ///< "C1" ... "C9"
  std::string description;  ///< human-readable account of the step
};

/// Translates a canonical comprehension into an algebra plan rooted at a
/// Reduce. The input must be normalized (all generator domains paths); call
/// Normalize() first. Throws UnsupportedError on list comprehensions or
/// non-canonical domains, TypeError on unknown extents.
AlgPtr UnnestComp(const ExprPtr& comp, const Schema& schema);

/// Like UnnestComp, additionally recording every rule application into
/// *steps (appended in firing order).
AlgPtr UnnestCompTraced(const ExprPtr& comp, const Schema& schema,
                        std::vector<UnnestStep>* steps);

}  // namespace ldb

#endif  // LAMBDADB_CORE_UNNEST_H_
