// The monoid comprehension calculus AST (Fegaras, SIGMOD'98, Section 2).
//
// A query in the calculus is a term built from variables, literals, records,
// projections, conditionals, operators, lambdas, and monoid comprehensions
// ⊕{ e | q1, ..., qn } where each qualifier is a generator `v <- e` or a
// filter predicate.
//
// Terms are immutable and shared (shared_ptr<const Expr>): rewrite passes
// build new spines and share unchanged subtrees, which also realizes the
// "graph reduction" sharing the paper appeals to for normalization (Sec. 2).

#ifndef LAMBDADB_CORE_EXPR_H_
#define LAMBDADB_CORE_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/monoid.h"
#include "src/runtime/value.h"

namespace ldb {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kVar,      ///< range variable or extent name
  kLiteral,  ///< constant Value (includes NULL)
  kRecord,   ///< (A1 = e1, ..., An = en)
  kProj,     ///< e.A
  kIf,       ///< if e1 then e2 else e3
  kBinOp,
  kUnOp,
  kLambda,   ///< λv. e
  kApply,    ///< e1(e2)
  kComp,     ///< ⊕{ e | q1, ..., qn }; no qualifiers = unit(e), e.g. {e}
  kMerge,    ///< e1 ⊕ e2
  kZero,     ///< Z⊕ (the zero element of a monoid, e.g. the empty set)
  kParam,    ///< $name / $1 — a query parameter bound at execute time
};

enum class BinOpKind {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv, kMod,
};

enum class UnOpKind {
  kNot,
  kNeg,
  kIsNull,  ///< the only null test the calculus provides (Section 2)
};

/// A comprehension qualifier: either a generator `var <- expr` (expr must
/// produce a collection) or a filter (expr must produce bool).
struct Qualifier {
  bool is_generator = false;
  std::string var;  // empty for filters
  ExprPtr expr;

  static Qualifier Generator(std::string v, ExprPtr domain) {
    return Qualifier{true, std::move(v), std::move(domain)};
  }
  static Qualifier Filter(ExprPtr pred) {
    return Qualifier{false, "", std::move(pred)};
  }
};

/// A calculus term. Construct via the factory functions below; fields not
/// applicable to a node's kind are default-initialized.
struct Expr {
  ExprKind kind;
  std::string name;            // kVar; attribute for kProj; lambda parameter
  Value literal;               // kLiteral
  MonoidKind monoid{};         // kComp, kMerge, kZero
  BinOpKind bin_op{};          // kBinOp
  UnOpKind un_op{};            // kUnOp
  std::vector<std::pair<std::string, ExprPtr>> fields;  // kRecord
  ExprPtr a, b, c;             // children (see factories)
  std::vector<Qualifier> quals;  // kComp

  // -- factories ------------------------------------------------------------
  static ExprPtr Var(std::string name);
  /// A query parameter placeholder ($1 / $name in OQL). Parameters are
  /// closed terms (not free variables): they survive every rewrite pass
  /// untouched and are resolved from the bindings at execute time.
  static ExprPtr Param(std::string name);
  static ExprPtr Lit(Value v);
  static ExprPtr Int(int64_t i) { return Lit(Value::Int(i)); }
  static ExprPtr Real(double d) { return Lit(Value::Real(d)); }
  static ExprPtr Bool(bool b) { return Lit(Value::Bool(b)); }
  static ExprPtr Str(std::string s) { return Lit(Value::Str(std::move(s))); }
  static ExprPtr Null() { return Lit(Value::Null()); }
  static ExprPtr True() { return Bool(true); }
  static ExprPtr False() { return Bool(false); }
  static ExprPtr Record(std::vector<std::pair<std::string, ExprPtr>> fields);
  static ExprPtr Proj(ExprPtr base, std::string attr);
  static ExprPtr If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);
  static ExprPtr Bin(BinOpKind op, ExprPtr l, ExprPtr r);
  static ExprPtr Un(UnOpKind op, ExprPtr e);
  static ExprPtr Lambda(std::string var, ExprPtr body);
  static ExprPtr Apply(ExprPtr fn, ExprPtr arg);
  static ExprPtr Comp(MonoidKind m, ExprPtr head, std::vector<Qualifier> quals);
  static ExprPtr Merge(MonoidKind m, ExprPtr l, ExprPtr r);
  static ExprPtr Zero(MonoidKind m);
  /// unit(e) for a collection monoid: the singleton {e}, encoded as a
  /// comprehension with no qualifiers (reduction rule D1).
  static ExprPtr Singleton(MonoidKind m, ExprPtr e) {
    return Comp(m, std::move(e), {});
  }

  // -- conveniences ----------------------------------------------------------
  static ExprPtr And(ExprPtr l, ExprPtr r) {
    return Bin(BinOpKind::kAnd, std::move(l), std::move(r));
  }
  static ExprPtr Eq(ExprPtr l, ExprPtr r) {
    return Bin(BinOpKind::kEq, std::move(l), std::move(r));
  }
  static ExprPtr Not(ExprPtr e) { return Un(UnOpKind::kNot, std::move(e)); }
  /// Builds base.a1.a2...an.
  static ExprPtr Path(ExprPtr base, const std::vector<std::string>& attrs);

  bool IsTrueLiteral() const;
  bool IsFalseLiteral() const;
};

/// Printable operator symbols.
const char* BinOpName(BinOpKind op);
const char* UnOpName(UnOpKind op);

/// Fresh-name source for rewriting passes. Generated names contain '$' which
/// the OQL lexer rejects, so they can never collide with user variables.
class Gensym {
 public:
  /// Returns e.g. "v$17".
  static std::string Fresh(const std::string& stem);
  /// Resets the counter (tests only; makes generated plans deterministic).
  static void Reset();
};

/// The free variables of a term. Generators bind their variable in the
/// remaining qualifiers and the head; lambdas bind their parameter. Extent
/// names appear free (the caller distinguishes them with a Schema).
std::set<std::string> FreeVars(const ExprPtr& e);

/// Capture-avoiding substitution e[replacement / var]: renames bound
/// variables (via Gensym) when they would capture free variables of
/// `replacement`.
ExprPtr Subst(const ExprPtr& e, const std::string& var, const ExprPtr& replacement);

/// Structural equality of terms (alpha-sensitive: variable names matter).
bool ExprEqual(const ExprPtr& a, const ExprPtr& b);

/// True if `e` contains a comprehension node (possibly `e` itself).
bool ContainsComp(const ExprPtr& e);

/// If `e` is a path x.A1...An (n >= 0), returns true and fills root/attrs.
bool IsPath(const ExprPtr& e, std::string* root, std::vector<std::string>* attrs);

/// Splits a predicate into its top-level conjuncts (flattening kAnd).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred);

/// Conjoins predicates; returns True() for an empty list and drops literal
/// `true` conjuncts.
ExprPtr MakeConjunction(const std::vector<ExprPtr>& conjuncts);

}  // namespace ldb

#endif  // LAMBDADB_CORE_EXPR_H_
