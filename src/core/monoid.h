// Monoids of the monoid comprehension calculus (Fegaras, SIGMOD'98, Sec. 2).
//
// A monoid is a pair (merge, zero) with merge associative and zero its
// identity. Collection monoids (set, bag, list) additionally have a unit
// function lifting an element into a singleton collection. Primitive monoids
// (+, *, max, min, or, and) produce primitive values.
//
// Properties used by the algorithms:
//  * commutative  — all monoids here except list;
//  * idempotent   — set, max, min, or, and. Rules (D7)/(N6)/(N8) have
//    idempotence side conditions; treating + as idempotent yields the 1 = 2
//    inconsistency the paper shows in Section 2.
//
// Deviation from the paper (documented in DESIGN.md): the paper uses 0 as the
// zero of max, which is only correct for non-negative numbers. We use NULL as
// the zero of max/min/avg; merge(NULL, x) = x makes NULL a genuine identity,
// and an empty max/min/avg evaluates to NULL (the SQL convention).

#ifndef LAMBDADB_CORE_MONOID_H_
#define LAMBDADB_CORE_MONOID_H_

#include <string>

#include "src/core/type.h"
#include "src/runtime/value.h"

namespace ldb {

/// The monoids the calculus supports. kAvg is a pseudo-monoid implemented by
/// the (sum, count) pair; it is provided because OQL has avg() and the
/// paper's Section 5 example groups with avg.
enum class MonoidKind {
  kSet,   ///< (∪, {})          collection, commutative, idempotent
  kBag,   ///< (⊎, {||})        collection, commutative
  kList,  ///< (++, [])         collection
  kSum,   ///< (+, 0)
  kProd,  ///< (*, 1)
  kMax,   ///< (max, NULL)      idempotent
  kMin,   ///< (min, NULL)      idempotent
  kSome,  ///< (∨, false)       idempotent — existential quantification
  kAll,   ///< (∧, true)        idempotent — universal quantification
  kAvg,   ///< pseudo-monoid over (sum, count)
};

/// True for set/bag/list.
bool IsCollectionMonoid(MonoidKind k);
/// True if merge(x, x) = x.
bool IsIdempotentMonoid(MonoidKind k);
/// True if merge(x, y) = merge(y, x).
bool IsCommutativeMonoid(MonoidKind k);
/// True for monoids producing primitive values (everything but set/bag/list).
inline bool IsPrimitiveMonoid(MonoidKind k) { return !IsCollectionMonoid(k); }

/// Short printable name ("set", "sum", "all", ...).
const char* MonoidName(MonoidKind k);

/// The zero element. For max/min/avg this is NULL (see header comment).
Value MonoidZero(MonoidKind k);

/// unit(v): lifts an element into the monoid ({v} for set, v itself for
/// primitive monoids, (v, 1) handling for avg is internal to Accumulator).
Value MonoidUnit(MonoidKind k, const Value& v);

/// merge(a, b). NULL is an identity for every monoid (merge(NULL, x) = x),
/// which is what lets nest convert outer-join padding into zeros uniformly.
/// Not defined for kAvg (averages do not merge; use Accumulator).
Value MonoidMerge(MonoidKind k, const Value& a, const Value& b);

/// The element type a comprehension over this monoid expects its *head* to
/// produce, given nothing; used by the type checker: sum/prod/max/min/avg
/// require numeric heads, some/all require bool heads, collections accept
/// any head type. Returns nullptr for collection monoids (no constraint).
TypePtr MonoidHeadConstraint(MonoidKind k);

/// The result type of a comprehension over this monoid whose head has type
/// `head`. set(head) for kSet, bool for kAll, real for kAvg, etc.
TypePtr MonoidResultType(MonoidKind k, const TypePtr& head);

/// Exact, order-independent accumulation of doubles. The running sum is held
/// as a wide fixed-point integer (a superaccumulator spanning the full double
/// exponent range), so adding a value is exact and the single rounding step
/// happens in Round(). Consequently the result is independent of the order
/// (and grouping) in which values were added — which is what lets the
/// parallel executor merge per-morsel partial sums and still produce results
/// bit-identical to the serial fold.
class ExactSum {
 public:
  /// Adds a double exactly. Non-finite inputs degrade to IEEE semantics.
  void Add(double v);
  /// Adds an int64 exactly (no 2^53 mantissa truncation).
  void AddInt(int64_t v);
  /// Folds another partial sum in; exact, so order does not matter.
  void Absorb(const ExactSum& other);
  /// The correctly-rounded double value of the exact sum.
  double Round() const;

 private:
  void Normalize();

  // 32-bit digits in signed 64-bit limbs. Limb i carries weight 2^(32*i+kBias)
  // with kBias placing the smallest subnormal bit in limb 0. Signed limbs
  // absorb ~2^31 additions before a carry pass is needed.
  static constexpr int kLimbs = 67;
  static constexpr int kBias = -1080;  // limb 0 covers bits 2^-1080..2^-1049
  int64_t limbs_[kLimbs] = {};
  int32_t pending_ = 0;   // adds since the last carry normalization
  double nonfinite_ = 0;  // inf/nan inputs fold here with IEEE rules
  bool has_nonfinite_ = false;
};

/// Incremental accumulation of head values into a monoid, used by both
/// evaluators (baseline D-rules interpreter and the algebra executor).
///
/// Accumulates e1 ⊕ e2 ⊕ ... ⊕ en; Finish() returns the zero element if
/// nothing was added. Handles kAvg via a (sum, count) pair. Real-valued
/// sums and averages accumulate through ExactSum, so the result does not
/// depend on accumulation order (see ExactSum); this makes Absorb an exact
/// commutative merge for every monoid except kList (order-sensitive by
/// definition — callers must absorb partials in stream order) and kProd
/// (floating-point products are merged left-to-right, so partials must also
/// arrive in stream order for bit-reproducibility).
class Accumulator {
 public:
  explicit Accumulator(MonoidKind kind);

  /// Accumulates unit(v). NULL values are identities: they are skipped (this
  /// is the "nest converts nulls into zeros" behaviour from Section 3).
  void Add(const Value& v);

  /// Merges an already-reduced value of this monoid (e.g. a subgroup result).
  void Merge(const Value& v);

  /// Folds another accumulator's partial state into this one, including
  /// kAvg (which has no mergeable Value form). Used by the parallel executor
  /// to combine per-morsel partials; bit-identical to having Add-ed the
  /// other's inputs here directly (for kList/kProd: when absorbed in stream
  /// order).
  void Absorb(const Accumulator& other);

  /// True if the result can no longer change (false seen under kAll, true
  /// under kSome); lets evaluators short-circuit quantifiers.
  bool Saturated() const;

  /// The reduced value. May be called once.
  Value Finish();

  MonoidKind kind() const { return kind_; }

 private:
  MonoidKind kind_;
  Elems elems_;         // collection monoids
  bool has_value_ = false;
  Value current_;       // kProd/kMax/kMin/kSome/kAll
  ExactSum sum_;        // kSum (real part) and kAvg
  int64_t int_sum_ = 0;  // kSum over ints stays exact 64-bit integer
  bool sum_has_real_ = false;
  int64_t avg_count_ = 0;  // kAvg
};

}  // namespace ldb

#endif  // LAMBDADB_CORE_MONOID_H_
