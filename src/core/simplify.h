// Plan simplification (Fegaras, SIGMOD'98, Section 5).
//
// The unnesting algorithm compiles group-by-style queries (an aggregate
// correlated with the *same* extent as the outer loop) into a self
// outer-join followed by a nest — Figure 8.A. The simplification rule
//
//   Γ(b)( g(a) =⋈(a.M = b.M) σq(b) )  →  Γ'( g(a) )
//
// collapses that into a single nest over one scan, grouping by the key path
// itself — Figure 8.B. This pass implements the rule (generalized to
// multiple equality keys) plus trivial clean-ups.
//
// Soundness conditions checked before firing (see simplify.cc):
//  * both join inputs scan the same extent with the same selection,
//  * the join predicate is a conjunction of key equalities a.M = b.M over
//    identical attribute paths,
//  * the nest groups exactly by the outer scan variable and null-converts
//    exactly the inner one,
//  * the enclosing reduce is over an idempotent monoid (one output row per
//    distinct key replaces one per outer object),
//  * after rewriting key paths to the new group-by variables, the reduce no
//    longer mentions the outer scan variable.
//
// Rows whose key attributes are NULL never self-match through the
// outer-join, so the rewritten nest keeps them as groups with a zero value
// (a NULL-key guard in the nest predicate) — preserving the original plan's
// output exactly.

#ifndef LAMBDADB_CORE_SIMPLIFY_H_
#define LAMBDADB_CORE_SIMPLIFY_H_

#include "src/core/algebra.h"
#include "src/runtime/schema.h"

namespace ldb {

/// Applies the Section 5 simplification wherever it matches, to fixpoint.
AlgPtr Simplify(const AlgPtr& plan, const Schema& schema);

/// Like Simplify, additionally counting successful rewrites into *rewrites
/// (incremented once per rule application, not per fixpoint round).
AlgPtr SimplifyTraced(const AlgPtr& plan, const Schema& schema, int* rewrites);

/// Replaces every subterm of `e` structurally equal to `target` with
/// `replacement` (helper shared with tests).
ExprPtr ReplaceSubterm(const ExprPtr& e, const ExprPtr& target,
                       const ExprPtr& replacement);

}  // namespace ldb

#endif  // LAMBDADB_CORE_SIMPLIFY_H_
