#include "src/core/materialize.h"

#include <string>
#include <vector>

#include "src/core/simplify.h"
#include "src/core/typecheck.h"
#include "src/runtime/error.h"

namespace ldb {

namespace {

// Finds a materializable prefix inside `e`: a Proj(Var(v), attr) node that
// appears directly under another Proj, where `v` has a class type in `env`
// and the attribute is a reference to a class with a named extent. Returns
// nullptr if none.
ExprPtr FindPrefix(const ExprPtr& e, const Schema& schema, const TypeEnv& env,
                   bool under_proj) {
  if (!e) return nullptr;
  if (e->kind == ExprKind::kProj && under_proj &&
      e->a->kind == ExprKind::kVar) {
    auto it = env.find(e->a->name);
    if (it != env.end() && it->second->kind() == Type::Kind::kClass) {
      const ClassDecl* cls = schema.FindClass(it->second->class_name());
      if (cls != nullptr) {
        TypePtr attr = cls->AttributeType(e->name);
        if (attr && attr->kind() == Type::Kind::kClass) {
          const ClassDecl* target = schema.FindClass(attr->class_name());
          if (target != nullptr && !target->extent.empty()) return e;
        }
      }
    }
  }
  switch (e->kind) {
    case ExprKind::kVar:
    case ExprKind::kLiteral:
    case ExprKind::kZero:
    case ExprKind::kParam:
      return nullptr;
    case ExprKind::kProj:
      return FindPrefix(e->a, schema, env, /*under_proj=*/true);
    case ExprKind::kRecord:
      for (const auto& [n, f] : e->fields) {
        if (ExprPtr p = FindPrefix(f, schema, env, false)) return p;
      }
      return nullptr;
    default: {
      if (ExprPtr p = FindPrefix(e->a, schema, env, false)) return p;
      if (ExprPtr p = FindPrefix(e->b, schema, env, false)) return p;
      return FindPrefix(e->c, schema, env, false);
    }
  }
}

// Finds a materializable prefix in any expression of `op` (pred, head, path,
// group-by keys).
ExprPtr FindPrefixInOp(const AlgOp& op, const Schema& schema,
                       const TypeEnv& env) {
  if (ExprPtr p = FindPrefix(op.pred, schema, env, false)) return p;
  if (ExprPtr p = FindPrefix(op.head, schema, env, false)) return p;
  if (ExprPtr p = FindPrefix(op.path, schema, env, false)) return p;
  for (const auto& [n, key] : op.group_by) {
    if (ExprPtr p = FindPrefix(key, schema, env, false)) return p;
  }
  return nullptr;
}

bool BindsVar(const AlgPtr& op, const std::string& v) {
  for (const std::string& out : OutputVars(op)) {
    if (out == v) return true;
  }
  return false;
}

std::shared_ptr<AlgOp> CloneOp(const AlgPtr& op) {
  return std::make_shared<AlgOp>(*op);
}

void ReplaceInOp(AlgOp* op, const ExprPtr& target, const ExprPtr& repl) {
  op->pred = op->pred ? ReplaceSubterm(op->pred, target, repl) : op->pred;
  op->head = op->head ? ReplaceSubterm(op->head, target, repl) : op->head;
  op->path = op->path ? ReplaceSubterm(op->path, target, repl) : op->path;
  for (auto& [n, key] : op->group_by) {
    key = ReplaceSubterm(key, target, repl);
  }
}

// Inserts, above the child of `op` that binds the prefix's root variable, an
// outer-join with the referenced extent, and replaces the prefix by the new
// variable throughout `op`'s expressions. Returns the rewritten operator.
AlgPtr MaterializeAt(const AlgPtr& op, const ExprPtr& prefix,
                     const Schema& schema, const TypeEnv& env) {
  const std::string& root = prefix->a->name;
  const ClassDecl* owner = schema.FindClass(env.at(root)->class_name());
  LDB_INTERNAL_CHECK(owner != nullptr, "owner class vanished");
  TypePtr attr = owner->AttributeType(prefix->name);
  const ClassDecl* target = schema.FindClass(attr->class_name());
  LDB_INTERNAL_CHECK(target != nullptr && !target->extent.empty(),
                     "target extent vanished");

  std::string m = Gensym::Fresh("m");
  auto splice = [&](const AlgPtr& child) {
    return AlgOp::OuterJoin(child, AlgOp::Scan(target->extent, m, nullptr),
                            Expr::Eq(Expr::Var(m), prefix));
  };

  auto out = CloneOp(op);
  if (op->right && BindsVar(op->right, root)) {
    out->right = splice(op->right);
  } else {
    LDB_INTERNAL_CHECK(op->left != nullptr, "prefix root not bound below");
    out->left = splice(op->left);
  }
  ReplaceInOp(out.get(), prefix, Expr::Var(m));
  return out;
}

AlgPtr Rewrite(const AlgPtr& op, const Schema& schema) {
  if (!op) return op;
  AlgPtr left = Rewrite(op->left, schema);
  AlgPtr right = Rewrite(op->right, schema);
  AlgPtr cur = op;
  if (left != op->left || right != op->right) {
    auto clone = CloneOp(op);
    clone->left = left;
    clone->right = right;
    cur = clone;
  }
  // Scans have no input stream to join against; leave their predicates.
  if (cur->kind == AlgKind::kScan || cur->kind == AlgKind::kUnit) return cur;

  for (int guard = 0; guard < 100; ++guard) {
    TypeEnv env;
    if (cur->kind == AlgKind::kReduce || cur->left) {
      env = PlanOutputEnv(cur->left, schema);
    }
    if (cur->right) {
      TypeEnv right_env = PlanOutputEnv(cur->right, schema);
      env.insert(right_env.begin(), right_env.end());
    }
    ExprPtr prefix = FindPrefixInOp(*cur, schema, env);
    if (!prefix) return cur;
    cur = MaterializeAt(cur, prefix, schema, env);
  }
  throw InternalError("path materialization did not converge");
}

}  // namespace

AlgPtr MaterializePaths(const AlgPtr& plan, const Schema& schema) {
  return Rewrite(plan, schema);
}

}  // namespace ldb
