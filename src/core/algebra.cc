#include "src/core/algebra.h"

#include "src/runtime/error.h"

namespace ldb {

namespace {
std::shared_ptr<AlgOp> New(AlgKind k) {
  auto op = std::make_shared<AlgOp>();
  op->kind = k;
  op->pred = Expr::True();
  return op;
}
}  // namespace

AlgPtr AlgOp::Unit() { return New(AlgKind::kUnit); }

AlgPtr AlgOp::Scan(std::string extent, std::string var, ExprPtr pred) {
  auto op = New(AlgKind::kScan);
  op->extent = std::move(extent);
  op->var = std::move(var);
  if (pred) op->pred = std::move(pred);
  return op;
}

AlgPtr AlgOp::Select(AlgPtr child, ExprPtr pred) {
  auto op = New(AlgKind::kSelect);
  op->left = std::move(child);
  if (pred) op->pred = std::move(pred);
  return op;
}

AlgPtr AlgOp::Join(AlgPtr l, AlgPtr r, ExprPtr pred) {
  auto op = New(AlgKind::kJoin);
  op->left = std::move(l);
  op->right = std::move(r);
  if (pred) op->pred = std::move(pred);
  return op;
}

AlgPtr AlgOp::OuterJoin(AlgPtr l, AlgPtr r, ExprPtr pred) {
  auto op = New(AlgKind::kOuterJoin);
  op->left = std::move(l);
  op->right = std::move(r);
  if (pred) op->pred = std::move(pred);
  return op;
}

AlgPtr AlgOp::Unnest(AlgPtr child, ExprPtr path, std::string var, ExprPtr pred) {
  auto op = New(AlgKind::kUnnest);
  op->left = std::move(child);
  op->path = std::move(path);
  op->var = std::move(var);
  if (pred) op->pred = std::move(pred);
  return op;
}

AlgPtr AlgOp::OuterUnnest(AlgPtr child, ExprPtr path, std::string var,
                          ExprPtr pred) {
  auto op = New(AlgKind::kOuterUnnest);
  op->left = std::move(child);
  op->path = std::move(path);
  op->var = std::move(var);
  if (pred) op->pred = std::move(pred);
  return op;
}

AlgPtr AlgOp::Nest(AlgPtr child, MonoidKind monoid, ExprPtr head,
                   std::string out_var,
                   std::vector<std::pair<std::string, ExprPtr>> group_by,
                   std::vector<std::string> null_vars, ExprPtr pred) {
  auto op = New(AlgKind::kNest);
  op->left = std::move(child);
  op->monoid = monoid;
  op->head = std::move(head);
  op->var = std::move(out_var);
  op->group_by = std::move(group_by);
  op->null_vars = std::move(null_vars);
  if (pred) op->pred = std::move(pred);
  return op;
}

AlgPtr AlgOp::Reduce(AlgPtr child, MonoidKind monoid, ExprPtr head, ExprPtr pred) {
  auto op = New(AlgKind::kReduce);
  op->left = std::move(child);
  op->monoid = monoid;
  op->head = std::move(head);
  if (pred) op->pred = std::move(pred);
  return op;
}

std::vector<std::string> OutputVars(const AlgPtr& op) {
  LDB_INTERNAL_CHECK(op != nullptr, "null plan");
  switch (op->kind) {
    case AlgKind::kUnit:
      return {};
    case AlgKind::kScan:
      return {op->var};
    case AlgKind::kSelect:
      return OutputVars(op->left);
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin: {
      auto l = OutputVars(op->left);
      auto r = OutputVars(op->right);
      l.insert(l.end(), r.begin(), r.end());
      return l;
    }
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest: {
      auto l = OutputVars(op->left);
      l.push_back(op->var);
      return l;
    }
    case AlgKind::kNest: {
      std::vector<std::string> out;
      for (const auto& [n, e] : op->group_by) out.push_back(n);
      out.push_back(op->var);
      return out;
    }
    case AlgKind::kReduce:
      return {};  // a reduce produces a value, not a stream
  }
  return {};
}

namespace {
bool ExprsUnnested(const AlgOp& op) {
  if (ContainsComp(op.pred) || ContainsComp(op.head) || ContainsComp(op.path)) {
    return false;
  }
  for (const auto& [n, e] : op.group_by) {
    if (ContainsComp(e)) return false;
  }
  return true;
}
}  // namespace

bool IsFullyUnnested(const AlgPtr& op) {
  if (!op) return true;
  if (!ExprsUnnested(*op)) return false;
  return IsFullyUnnested(op->left) && IsFullyUnnested(op->right);
}

size_t PlanSize(const AlgPtr& op) {
  if (!op) return 0;
  return 1 + PlanSize(op->left) + PlanSize(op->right);
}

bool AlgEqual(const AlgPtr& a, const AlgPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind || a->extent != b->extent || a->var != b->var ||
      a->monoid != b->monoid || a->null_vars != b->null_vars) {
    return false;
  }
  if (!ExprEqual(a->pred, b->pred) || !ExprEqual(a->head, b->head) ||
      !ExprEqual(a->path, b->path)) {
    return false;
  }
  if (a->group_by.size() != b->group_by.size()) return false;
  for (size_t i = 0; i < a->group_by.size(); ++i) {
    if (a->group_by[i].first != b->group_by[i].first) return false;
    if (!ExprEqual(a->group_by[i].second, b->group_by[i].second)) return false;
  }
  return AlgEqual(a->left, b->left) && AlgEqual(a->right, b->right);
}

}  // namespace ldb
