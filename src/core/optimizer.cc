#include "src/core/optimizer.h"

#include <chrono>
#include <set>

#include "src/core/cost.h"
#include "src/core/materialize.h"
#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/core/simplify.h"
#include "src/core/typecheck.h"
#include "src/core/unnest.h"
#include "src/runtime/error.h"
#include "src/runtime/eval_algebra.h"
#include "src/runtime/exec_pipeline.h"
#include "src/runtime/eval_calculus.h"
#include "src/verify/verify.h"

namespace ldb {

namespace {

// The duplicate-safety check: a nest merges stream tuples with equal
// group-by keys, assuming equal keys = the same logical iteration of the
// embedding query. An unnest over a bag/list-typed path can emit several
// stream tuples that are indistinguishable by their variables (e.g. the
// word "a" occurring twice in one document), and if such a variable reaches
// a nest's group keys, distinct logical iterations collapse into one group
// — double-counting contributions below and dropping rows above. Extent
// scans always bind distinct object refs and set-typed paths bind distinct
// elements per parent, so only bag/list unnests can introduce ambiguity.
//
// Returns the set of "duplicate-capable" variables flowing out of `op`, and
// throws UnsupportedError if any nest groups by one of them. (A bag/list
// unnest used as a nest's *own* accumulated variable is fine — bag
// multiplicity is exactly what e.g. sum should see.)
std::set<std::string> DupVars(const AlgPtr& op, const Schema& schema) {
  if (!op) return {};
  switch (op->kind) {
    case AlgKind::kUnit:
    case AlgKind::kScan:
      return {};
    case AlgKind::kSelect:
      return DupVars(op->left, schema);
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin: {
      std::set<std::string> out = DupVars(op->left, schema);
      std::set<std::string> right = DupVars(op->right, schema);
      out.insert(right.begin(), right.end());
      return out;
    }
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest: {
      std::set<std::string> out = DupVars(op->left, schema);
      TypeEnv env = PlanOutputEnv(op->left, schema);
      TypePtr t = TypeCheck(op->path, schema, env);
      if (t->kind() == Type::Kind::kBag || t->kind() == Type::Kind::kList) {
        out.insert(op->var);
      }
      return out;
    }
    case AlgKind::kNest: {
      std::set<std::string> below = DupVars(op->left, schema);
      for (const auto& [name, key] : op->group_by) {
        for (const std::string& v : FreeVars(key)) {
          if (below.count(v) > 0) {
            throw UnsupportedError(
                "unnesting would group by '" + v +
                "', which ranges over a bag/list path: duplicate iterations "
                "would merge (the paper's future work). Use set-valued "
                "collections or evaluate with the baseline.");
          }
        }
      }
      return {};  // only the (clean) keys and the reduction survive the nest
    }
    case AlgKind::kReduce:
      // A reduce folds every row, duplicates included — faithful to the
      // baseline's iteration, so nothing to check.
      return DupVars(op->left, schema);
  }
  return {};
}

// Wall time of `fn()` in ms, appended to the trace when one is being kept.
template <typename Fn>
auto TimeStage(CompileTrace* trace, const char* stage, Fn&& fn)
    -> decltype(fn()) {
  if (!trace) return fn();
  auto t0 = std::chrono::steady_clock::now();
  auto result = fn();
  auto t1 = std::chrono::steady_clock::now();
  double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  trace->stages.push_back({stage, ms});
  trace->total_ms += ms;
  return result;
}

}  // namespace

CompiledQuery Optimizer::Compile(const ExprPtr& calculus) const {
  CompiledQuery out;
  out.calculus = calculus;
  CompileTrace* trace = nullptr;
  if (options_.trace) {
    out.trace = std::make_shared<CompileTrace>();
    trace = out.trace.get();
  }
  // Verifier passes (docs/VERIFIER.md): each one re-checks the paper's
  // statically checkable guarantees on the IR a stage just produced, records
  // a summary in the trace, and aborts compilation on any finding.
  auto verify = [&](VerifyReport report) {
    RecordVerifyStage(trace, report);
    report.ThrowIfFailed();
  };
  if (options_.typecheck) {
    TimeStage(trace, "typecheck-calculus",
              [&] { return TypeCheck(calculus, schema_); });
  }
  if (options_.verify_plans) {
    verify(VerifyCalculus(calculus, schema_, CalculusStage::kInput));
  }
  out.normalized =
      options_.normalize
          ? TimeStage(trace, "normalize",
                      [&] {
                        return trace ? NormalizeTraced(calculus,
                                                       &trace->normalize_rules)
                                     : Normalize(calculus);
                      })
          : calculus;
  if (out.normalized->kind != ExprKind::kComp) {
    throw UnsupportedError(
        "Compile expects a comprehension-rooted query; use Run for general "
        "terms");
  }
  if (options_.verify_plans && options_.normalize) {
    verify(VerifyCalculus(out.normalized, schema_, CalculusStage::kNormalized,
                          "calculus-normalized"));
  }
  out.plan = TimeStage(trace, "unnest", [&] {
    return trace ? UnnestCompTraced(out.normalized, schema_,
                                    &trace->unnest_steps)
                 : UnnestComp(out.normalized, schema_);
  });
  LDB_INTERNAL_CHECK(IsFullyUnnested(out.plan),
                     "unnesting left a nested comprehension (Theorem 1)");
  if (options_.verify_plans) {
    verify(VerifyAlgebra(out.plan, schema_, "algebra-unnested"));
  }
  if (options_.check_duplicate_safety) {
    DupVars(out.plan, schema_);  // throws on unsafe group keys
  }
  out.simplified =
      options_.simplify
          ? TimeStage(trace, "simplify",
                      [&] {
                        return trace ? SimplifyTraced(out.plan, schema_,
                                                      &trace->simplify_rewrites)
                                     : Simplify(out.plan, schema_);
                      })
          : out.plan;
  if (options_.materialize_paths) {
    out.simplified = TimeStage(trace, "materialize-paths", [&] {
      return MaterializePaths(out.simplified, schema_);
    });
  }
  if (options_.reorder_joins) {
    out.simplified = TimeStage(trace, "reorder-joins", [&] {
      return ReorderJoins(out.simplified, options_.catalog);
    });
  }
  if (options_.verify_plans && out.simplified != out.plan) {
    verify(VerifyAlgebra(out.simplified, schema_, "algebra-simplified"));
  }
  if (options_.typecheck) {
    out.result_type = TimeStage(trace, "typecheck-plan", [&] {
      return TypeCheckPlan(out.simplified, schema_);
    });
  }
  return out;
}

Value Optimizer::Execute(const CompiledQuery& q, const Database& db) const {
  if (options_.pipelined_execution) {
    PhysPtr physical = TimeStage(q.trace.get(), "physical", [&] {
      return PlanPhysical(q.simplified, db, options_.physical);
    });
    if (options_.verify_plans && options_.exec.use_slot_frames) {
      // Compile the slot plan here so it can be verified before running;
      // ExecuteSlotPlan then reuses it (no second compilation).
      SlotPlan slots = CompileSlotPlan(physical, db);
      VerifyReport report = VerifySlotPlan(slots);
      RecordVerifyStage(q.trace.get(), report);
      report.ThrowIfFailed();
      return ExecuteSlotPlan(slots, db, options_.exec);
    }
    return ExecutePipelined(physical, db, options_.exec);
  }
  return ExecutePlan(q.simplified, db, options_.physical);
}

namespace {

// Replaces every maximal comprehension subterm (closed at the top level)
// with its computed value.
ExprPtr FoldComps(const ExprPtr& e, const Optimizer& opt, const Database& db) {
  if (!e) return e;
  if (e->kind == ExprKind::kComp) {
    CompiledQuery q = opt.Compile(e);
    return Expr::Lit(opt.Execute(q, db));
  }
  switch (e->kind) {
    case ExprKind::kVar:
    case ExprKind::kLiteral:
    case ExprKind::kZero:
    case ExprKind::kParam:
      return e;
    case ExprKind::kRecord: {
      std::vector<std::pair<std::string, ExprPtr>> fields;
      for (const auto& [n, f] : e->fields) {
        fields.emplace_back(n, FoldComps(f, opt, db));
      }
      return Expr::Record(std::move(fields));
    }
    default: {
      auto out = std::make_shared<Expr>(*e);
      out->a = FoldComps(e->a, opt, db);
      out->b = FoldComps(e->b, opt, db);
      out->c = FoldComps(e->c, opt, db);
      return out;
    }
  }
}

}  // namespace

Value Optimizer::Run(const ExprPtr& calculus, const Database& db) const {
  ExprPtr normalized = options_.normalize ? Normalize(calculus) : calculus;
  if (normalized->kind == ExprKind::kComp) {
    CompiledQuery q = Compile(calculus);
    return Execute(q, db);
  }
  // Mixed top level: compile and run each closed comprehension, then
  // evaluate the residue directly.
  ExprPtr folded = FoldComps(normalized, *this, db);
  return EvalCalculus(folded, db);
}

}  // namespace ldb
