#include "src/core/normalize.h"

#include "src/runtime/error.h"

namespace ldb {

namespace {

constexpr int kMaxNormalizeRounds = 10000;

// Rule-firing recorder for NormalizeTraced. thread_local (not a parameter
// threaded through every rewrite helper) because concurrent Normalize calls
// from different threads must not share it; null when tracing is off.
thread_local std::vector<RuleFiring>* t_fired = nullptr;

void Fire(const char* rule) {
  if (!t_fired) return;
  for (RuleFiring& rf : *t_fired) {
    if (rf.rule == rule) {
      ++rf.count;
      return;
    }
  }
  t_fired->push_back({rule, 1});
}

// Alpha-renames every generator variable of a comprehension to a fresh name.
// Used before splicing a comprehension's qualifiers into another qualifier
// list (N7, N8) so inner binders can never shadow or capture outer variables.
ExprPtr AlphaRenameGenerators(const ExprPtr& comp) {
  LDB_INTERNAL_CHECK(comp->kind == ExprKind::kComp, "expected comprehension");
  std::vector<Qualifier> quals = comp->quals;
  ExprPtr head = comp->a;
  for (size_t i = 0; i < quals.size(); ++i) {
    if (!quals[i].is_generator) continue;
    std::string fresh = Gensym::Fresh(quals[i].var);
    ExprPtr fresh_var = Expr::Var(fresh);
    for (size_t j = i + 1; j < quals.size(); ++j) {
      quals[j].expr = Subst(quals[j].expr, quals[i].var, fresh_var);
    }
    head = Subst(head, quals[i].var, fresh_var);
    quals[i].var = fresh;
  }
  return Expr::Comp(comp->monoid, head, std::move(quals));
}

// Substitutes repl for var in qualifiers at index >= start and in the head.
void SubstTail(std::vector<Qualifier>* quals, size_t start, ExprPtr* head,
               const std::string& var, const ExprPtr& repl) {
  for (size_t j = start; j < quals->size(); ++j) {
    (*quals)[j].expr = Subst((*quals)[j].expr, var, repl);
    if ((*quals)[j].is_generator && (*quals)[j].var == var) return;  // shadowed
  }
  *head = Subst(*head, var, repl);
}

bool IsEmptyCollectionLiteral(const ExprPtr& e) {
  return e->kind == ExprKind::kLiteral && e->literal.is_collection() &&
         e->literal.AsElems().empty();
}

// Membership guard of rule (D7): all{ not (w = v) | w <- domain }.
ExprPtr NotMemberGuard(const std::string& v, const ExprPtr& domain) {
  std::string w = Gensym::Fresh("w");
  return Expr::Comp(
      MonoidKind::kAll,
      Expr::Not(Expr::Eq(Expr::Var(w), Expr::Var(v))),
      {Qualifier::Generator(w, domain)});
}

// Tries one rewrite at a comprehension node. Returns nullptr if none applies.
ExprPtr RewriteComp(const ExprPtr& e) {
  const MonoidKind m = e->monoid;
  const std::vector<Qualifier>& quals = e->quals;

  // D2: a primitive-monoid comprehension with no qualifiers is its head
  // (unit is the identity for primitive monoids).
  if (quals.empty() && IsPrimitiveMonoid(m) && m != MonoidKind::kAvg) {
    Fire("D2");
    return e->a;
  }

  for (size_t i = 0; i < quals.size(); ++i) {
    const Qualifier& q = quals[i];
    if (!q.is_generator) {
      // D3/D4: constant filters.
      if (q.expr->IsTrueLiteral()) {
        Fire("D3");
        std::vector<Qualifier> rest = quals;
        rest.erase(rest.begin() + static_cast<long>(i));
        return Expr::Comp(m, e->a, std::move(rest));
      }
      if (q.expr->IsFalseLiteral()) {
        Fire("D4");
        return Expr::Zero(m);
      }
      // Split conjunctive filters so each conjunct can be handled (e.g. by
      // N8) and pushed independently.
      if (q.expr->kind == ExprKind::kBinOp && q.expr->bin_op == BinOpKind::kAnd) {
        Fire("and-split");
        std::vector<Qualifier> out = quals;
        out[i] = Qualifier::Filter(q.expr->a);
        out.insert(out.begin() + static_cast<long>(i) + 1,
                   Qualifier::Filter(q.expr->b));
        return Expr::Comp(m, e->a, std::move(out));
      }
      // N8: existential quantifier in filter position (idempotent ⊕ only).
      if (q.expr->kind == ExprKind::kComp &&
          q.expr->monoid == MonoidKind::kSome && IsIdempotentMonoid(m)) {
        Fire("N8");
        ExprPtr inner = AlphaRenameGenerators(q.expr);
        std::vector<Qualifier> out(quals.begin(),
                                   quals.begin() + static_cast<long>(i));
        out.insert(out.end(), inner->quals.begin(), inner->quals.end());
        out.push_back(Qualifier::Filter(inner->a));  // the quantified predicate
        out.insert(out.end(), quals.begin() + static_cast<long>(i) + 1,
                   quals.end());
        return Expr::Comp(m, e->a, std::move(out));
      }
      continue;
    }

    const ExprPtr& dom = q.expr;

    // N4: generator over a zero / empty collection literal.
    if (dom->kind == ExprKind::kZero || IsEmptyCollectionLiteral(dom)) {
      Fire("N4");
      return Expr::Zero(m);
    }

    // N3: generator over a conditional.
    if (dom->kind == ExprKind::kIf) {
      Fire("N3");
      std::vector<Qualifier> then_quals = quals;
      then_quals[i].expr = dom->b;
      then_quals.insert(then_quals.begin() + static_cast<long>(i),
                        Qualifier::Filter(dom->a));
      std::vector<Qualifier> else_quals = quals;
      else_quals[i].expr = dom->c;
      else_quals.insert(else_quals.begin() + static_cast<long>(i),
                        Qualifier::Filter(Expr::Not(dom->a)));
      return Expr::Merge(m, Expr::Comp(m, e->a, std::move(then_quals)),
                         Expr::Comp(m, e->a, std::move(else_quals)));
    }

    // N6/D7: generator over a merge e1 ⊕' e2.
    if (dom->kind == ExprKind::kMerge) {
      Fire("N6");
      std::vector<Qualifier> left_quals = quals;
      left_quals[i].expr = dom->a;
      std::vector<Qualifier> right_quals = quals;
      right_quals[i].expr = dom->b;
      // The D7 side condition: under a non-idempotent accumulator, iterating
      // a *set* union must not see elements of e1 ∩ e2 twice.
      if (!IsIdempotentMonoid(m) && dom->monoid == MonoidKind::kSet) {
        Fire("D7");
        right_quals.insert(right_quals.begin() + static_cast<long>(i) + 1,
                           Qualifier::Filter(NotMemberGuard(q.var, dom->a)));
      }
      return Expr::Merge(m, Expr::Comp(m, e->a, std::move(left_quals)),
                         Expr::Comp(m, e->a, std::move(right_quals)));
    }

    if (dom->kind == ExprKind::kComp) {
      // N5: generator over a singleton {e'}.
      if (dom->quals.empty()) {
        Fire("N5");
        std::vector<Qualifier> out = quals;
        ExprPtr head = e->a;
        out.erase(out.begin() + static_cast<long>(i));
        SubstTail(&out, i, &head, q.var, dom->a);
        return Expr::Comp(m, head, std::move(out));
      }
      // N7: generator over a comprehension — flatten, guarding against
      // duplicate elimination by an idempotent inner under a non-idempotent
      // outer accumulator.
      bool inner_set_like = IsIdempotentMonoid(dom->monoid);
      if (!inner_set_like || IsIdempotentMonoid(m)) {
        Fire("N7");
        ExprPtr inner = AlphaRenameGenerators(dom);
        std::vector<Qualifier> out(quals.begin(),
                                   quals.begin() + static_cast<long>(i));
        out.insert(out.end(), inner->quals.begin(), inner->quals.end());
        std::vector<Qualifier> tail(quals.begin() + static_cast<long>(i) + 1,
                                    quals.end());
        ExprPtr head = e->a;
        SubstTail(&tail, 0, &head, q.var, inner->a);
        out.insert(out.end(), tail.begin(), tail.end());
        return Expr::Comp(m, head, std::move(out));
      }
    }
  }

  // some{ p | q } = some{ true | q, p }: moving the quantified predicate
  // into a filter lets the unnester place it on a join/unnest operator (the
  // Figure 2 plans carry these as join predicates). Sound because a head
  // accumulated with ∨ contributes exactly when it is true, like a filter.
  // (Not valid for `all`, whose false heads are significant.)
  if (m == MonoidKind::kSome && !e->a->IsTrueLiteral()) {
    Fire("some-head");
    std::vector<Qualifier> out = quals;
    out.push_back(Qualifier::Filter(e->a));
    return Expr::Comp(m, Expr::True(), std::move(out));
  }

  // N9: ⊕{ ⊕{e | r} | s } → ⊕{ e | s, r } for a primitive monoid ⊕.
  if (IsPrimitiveMonoid(m) && m != MonoidKind::kAvg &&
      e->a->kind == ExprKind::kComp && e->a->monoid == m) {
    Fire("N9");
    ExprPtr inner = AlphaRenameGenerators(e->a);
    std::vector<Qualifier> out = quals;
    out.insert(out.end(), inner->quals.begin(), inner->quals.end());
    return Expr::Comp(m, inner->a, std::move(out));
  }

  return nullptr;
}

// Tries one predicate-normalization rewrite at a kUnOp(not) node.
ExprPtr RewriteNot(const ExprPtr& e) {
  const ExprPtr& x = e->a;
  if (x->IsTrueLiteral()) return Expr::False();
  if (x->IsFalseLiteral()) return Expr::True();
  if (x->kind == ExprKind::kUnOp && x->un_op == UnOpKind::kNot) return x->a;
  if (x->kind == ExprKind::kBinOp) {
    switch (x->bin_op) {
      case BinOpKind::kAnd:
        return Expr::Bin(BinOpKind::kOr, Expr::Not(x->a), Expr::Not(x->b));
      case BinOpKind::kOr:
        return Expr::And(Expr::Not(x->a), Expr::Not(x->b));
      // NOTE: comparison flips (not(a < b) -> a >= b) are deliberately NOT
      // performed: comparisons involving NULL evaluate to false (Section 2's
      // null discipline), so the flip is unsound when an operand can be NULL
      // — not(NULL >= 0) is true but NULL < 0 is false.
      default:
        break;
    }
  }
  // Quantifier duals: not some{p | q} = all{not p | q}, and dually.
  if (x->kind == ExprKind::kComp && x->monoid == MonoidKind::kSome) {
    return Expr::Comp(MonoidKind::kAll, Expr::Not(x->a), x->quals);
  }
  if (x->kind == ExprKind::kComp && x->monoid == MonoidKind::kAll) {
    return Expr::Comp(MonoidKind::kSome, Expr::Not(x->a), x->quals);
  }
  return nullptr;
}

// Constant folding for boolean connectives, and if-with-constant-condition.
ExprPtr RewriteConstants(const ExprPtr& e) {
  if (e->kind == ExprKind::kBinOp) {
    const ExprPtr& l = e->a;
    const ExprPtr& r = e->b;
    if (e->bin_op == BinOpKind::kAnd) {
      if (l->IsTrueLiteral()) return r;
      if (r->IsTrueLiteral()) return l;
      if (l->IsFalseLiteral() || r->IsFalseLiteral()) return Expr::False();
    }
    if (e->bin_op == BinOpKind::kOr) {
      if (l->IsFalseLiteral()) return r;
      if (r->IsFalseLiteral()) return l;
      if (l->IsTrueLiteral() || r->IsTrueLiteral()) return Expr::True();
    }
  }
  if (e->kind == ExprKind::kIf) {
    if (e->a->IsTrueLiteral()) return e->b;
    if (e->a->IsFalseLiteral()) return e->c;
  }
  return nullptr;
}

// One bottom-up pass. Sets *changed if any rewrite fired.
ExprPtr Pass(const ExprPtr& e, bool* changed, bool predicates_only);

ExprPtr PassChildren(const ExprPtr& e, bool* changed, bool pred_only) {
  switch (e->kind) {
    case ExprKind::kVar:
    case ExprKind::kLiteral:
    case ExprKind::kZero:
    case ExprKind::kParam:
      return e;
    case ExprKind::kRecord: {
      bool any = false;
      std::vector<std::pair<std::string, ExprPtr>> fields;
      fields.reserve(e->fields.size());
      for (const auto& [n, f] : e->fields) {
        ExprPtr nf = Pass(f, &any, pred_only);
        fields.emplace_back(n, nf);
      }
      if (!any) return e;
      *changed = true;
      return Expr::Record(std::move(fields));
    }
    case ExprKind::kComp: {
      bool any = false;
      std::vector<Qualifier> quals = e->quals;
      for (Qualifier& q : quals) q.expr = Pass(q.expr, &any, pred_only);
      ExprPtr head = Pass(e->a, &any, pred_only);
      if (!any) return e;
      *changed = true;
      return Expr::Comp(e->monoid, head, std::move(quals));
    }
    default: {
      bool any = false;
      ExprPtr a = e->a ? Pass(e->a, &any, pred_only) : nullptr;
      ExprPtr b = e->b ? Pass(e->b, &any, pred_only) : nullptr;
      ExprPtr c = e->c ? Pass(e->c, &any, pred_only) : nullptr;
      if (!any) return e;
      *changed = true;
      auto out = std::make_shared<Expr>(*e);
      out->a = a;
      out->b = b;
      out->c = c;
      return out;
    }
  }
}

ExprPtr Pass(const ExprPtr& e, bool* changed, bool pred_only) {
  ExprPtr cur = PassChildren(e, changed, pred_only);

  // N1: beta reduction.
  if (!pred_only && cur->kind == ExprKind::kApply &&
      cur->a->kind == ExprKind::kLambda) {
    *changed = true;
    Fire("N1");
    return Subst(cur->a->a, cur->a->name, cur->b);
  }
  // N2: projection on a record constructor.
  if (!pred_only && cur->kind == ExprKind::kProj &&
      cur->a->kind == ExprKind::kRecord) {
    for (const auto& [n, f] : cur->a->fields) {
      if (n == cur->name) {
        *changed = true;
        Fire("N2");
        return f;
      }
    }
  }
  if (cur->kind == ExprKind::kUnOp && cur->un_op == UnOpKind::kNot) {
    if (ExprPtr r = RewriteNot(cur)) {
      *changed = true;
      Fire("not-push");
      return r;
    }
  }
  if (ExprPtr r = RewriteConstants(cur)) {
    *changed = true;
    Fire("const-fold");
    return r;
  }
  if (!pred_only && cur->kind == ExprKind::kComp) {
    if (ExprPtr r = RewriteComp(cur)) {
      *changed = true;
      return r;
    }
  }
  // Merge with zero operand.
  if (!pred_only && cur->kind == ExprKind::kMerge) {
    if (cur->a->kind == ExprKind::kZero) {
      *changed = true;
      Fire("merge-zero");
      return cur->b;
    }
    if (cur->b->kind == ExprKind::kZero) {
      *changed = true;
      Fire("merge-zero");
      return cur->a;
    }
  }
  return cur;
}

ExprPtr RunToFixpoint(const ExprPtr& e, bool pred_only) {
  ExprPtr cur = e;
  for (int round = 0; round < kMaxNormalizeRounds; ++round) {
    bool changed = false;
    cur = Pass(cur, &changed, pred_only);
    if (!changed) return cur;
  }
  throw InternalError("normalization did not reach a fixpoint");
}

}  // namespace

ExprPtr Normalize(const ExprPtr& e) { return RunToFixpoint(e, /*pred_only=*/false); }

ExprPtr NormalizeTraced(const ExprPtr& e, std::vector<RuleFiring>* fired) {
  std::vector<RuleFiring>* saved = t_fired;
  t_fired = fired;
  try {
    ExprPtr out = RunToFixpoint(e, /*pred_only=*/false);
    t_fired = saved;
    return out;
  } catch (...) {
    t_fired = saved;
    throw;
  }
}

ExprPtr NormalizePredicate(const ExprPtr& e) {
  return RunToFixpoint(e, /*pred_only=*/true);
}

bool IsCanonicalComp(const ExprPtr& e) {
  if (!e || e->kind != ExprKind::kComp) return false;
  std::string root;
  std::vector<std::string> attrs;
  for (const Qualifier& q : e->quals) {
    if (q.is_generator && !IsPath(q.expr, &root, &attrs)) return false;
  }
  return true;
}

}  // namespace ldb
