#include "src/core/expr.h"

#include <atomic>

#include "src/runtime/error.h"

namespace ldb {

namespace {
std::shared_ptr<Expr> New(ExprKind k) {
  auto e = std::make_shared<Expr>();
  e->kind = k;
  return e;
}
}  // namespace

ExprPtr Expr::Var(std::string name) {
  auto e = New(ExprKind::kVar);
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::Param(std::string name) {
  auto e = New(ExprKind::kParam);
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::Lit(Value v) {
  auto e = New(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Record(std::vector<std::pair<std::string, ExprPtr>> fields) {
  auto e = New(ExprKind::kRecord);
  e->fields = std::move(fields);
  return e;
}

ExprPtr Expr::Proj(ExprPtr base, std::string attr) {
  auto e = New(ExprKind::kProj);
  e->a = std::move(base);
  e->name = std::move(attr);
  return e;
}

ExprPtr Expr::If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  auto e = New(ExprKind::kIf);
  e->a = std::move(cond);
  e->b = std::move(then_e);
  e->c = std::move(else_e);
  return e;
}

ExprPtr Expr::Bin(BinOpKind op, ExprPtr l, ExprPtr r) {
  auto e = New(ExprKind::kBinOp);
  e->bin_op = op;
  e->a = std::move(l);
  e->b = std::move(r);
  return e;
}

ExprPtr Expr::Un(UnOpKind op, ExprPtr x) {
  auto e = New(ExprKind::kUnOp);
  e->un_op = op;
  e->a = std::move(x);
  return e;
}

ExprPtr Expr::Lambda(std::string var, ExprPtr body) {
  auto e = New(ExprKind::kLambda);
  e->name = std::move(var);
  e->a = std::move(body);
  return e;
}

ExprPtr Expr::Apply(ExprPtr fn, ExprPtr arg) {
  auto e = New(ExprKind::kApply);
  e->a = std::move(fn);
  e->b = std::move(arg);
  return e;
}

ExprPtr Expr::Comp(MonoidKind m, ExprPtr head, std::vector<Qualifier> quals) {
  auto e = New(ExprKind::kComp);
  e->monoid = m;
  e->a = std::move(head);
  e->quals = std::move(quals);
  return e;
}

ExprPtr Expr::Merge(MonoidKind m, ExprPtr l, ExprPtr r) {
  auto e = New(ExprKind::kMerge);
  e->monoid = m;
  e->a = std::move(l);
  e->b = std::move(r);
  return e;
}

ExprPtr Expr::Zero(MonoidKind m) {
  auto e = New(ExprKind::kZero);
  e->monoid = m;
  return e;
}

ExprPtr Expr::Path(ExprPtr base, const std::vector<std::string>& attrs) {
  ExprPtr e = std::move(base);
  for (const std::string& a : attrs) e = Proj(e, a);
  return e;
}

bool Expr::IsTrueLiteral() const {
  return kind == ExprKind::kLiteral && literal.kind() == Value::Kind::kBool &&
         literal.AsBool();
}

bool Expr::IsFalseLiteral() const {
  return kind == ExprKind::kLiteral && literal.kind() == Value::Kind::kBool &&
         !literal.AsBool();
}

const char* BinOpName(BinOpKind op) {
  switch (op) {
    case BinOpKind::kEq:  return "=";
    case BinOpKind::kNe:  return "!=";
    case BinOpKind::kLt:  return "<";
    case BinOpKind::kLe:  return "<=";
    case BinOpKind::kGt:  return ">";
    case BinOpKind::kGe:  return ">=";
    case BinOpKind::kAnd: return "and";
    case BinOpKind::kOr:  return "or";
    case BinOpKind::kAdd: return "+";
    case BinOpKind::kSub: return "-";
    case BinOpKind::kMul: return "*";
    case BinOpKind::kDiv: return "/";
    case BinOpKind::kMod: return "mod";
  }
  return "?";
}

const char* UnOpName(UnOpKind op) {
  switch (op) {
    case UnOpKind::kNot:    return "not";
    case UnOpKind::kNeg:    return "-";
    case UnOpKind::kIsNull: return "is_null";
  }
  return "?";
}

namespace {
std::atomic<uint64_t> g_gensym_counter{0};
}  // namespace

std::string Gensym::Fresh(const std::string& stem) {
  return stem + "$" + std::to_string(g_gensym_counter.fetch_add(1));
}

void Gensym::Reset() { g_gensym_counter.store(0); }

namespace {

void CollectFreeVars(const ExprPtr& e, std::set<std::string>* bound,
                     std::set<std::string>* out) {
  if (!e) return;
  switch (e->kind) {
    case ExprKind::kVar:
      if (bound->count(e->name) == 0) out->insert(e->name);
      return;
    case ExprKind::kLiteral:
    case ExprKind::kZero:
    case ExprKind::kParam:
      return;
    case ExprKind::kRecord:
      for (const auto& [n, f] : e->fields) CollectFreeVars(f, bound, out);
      return;
    case ExprKind::kLambda: {
      bool inserted = bound->insert(e->name).second;
      CollectFreeVars(e->a, bound, out);
      if (inserted) bound->erase(e->name);
      return;
    }
    case ExprKind::kComp: {
      // Generators bind their variable in subsequent qualifiers and the head.
      std::vector<std::string> newly_bound;
      for (const Qualifier& q : e->quals) {
        CollectFreeVars(q.expr, bound, out);
        if (q.is_generator && bound->insert(q.var).second) {
          newly_bound.push_back(q.var);
        }
      }
      CollectFreeVars(e->a, bound, out);
      for (const std::string& v : newly_bound) bound->erase(v);
      return;
    }
    default:
      CollectFreeVars(e->a, bound, out);
      CollectFreeVars(e->b, bound, out);
      CollectFreeVars(e->c, bound, out);
      return;
  }
}

}  // namespace

std::set<std::string> FreeVars(const ExprPtr& e) {
  std::set<std::string> bound, out;
  CollectFreeVars(e, &bound, &out);
  return out;
}

ExprPtr Subst(const ExprPtr& e, const std::string& var, const ExprPtr& repl) {
  if (!e) return e;
  switch (e->kind) {
    case ExprKind::kVar:
      return e->name == var ? repl : e;
    case ExprKind::kLiteral:
    case ExprKind::kZero:
    case ExprKind::kParam:
      return e;
    case ExprKind::kRecord: {
      std::vector<std::pair<std::string, ExprPtr>> fields;
      fields.reserve(e->fields.size());
      for (const auto& [n, f] : e->fields) fields.emplace_back(n, Subst(f, var, repl));
      return Expr::Record(std::move(fields));
    }
    case ExprKind::kProj:
      return Expr::Proj(Subst(e->a, var, repl), e->name);
    case ExprKind::kIf:
      return Expr::If(Subst(e->a, var, repl), Subst(e->b, var, repl),
                      Subst(e->c, var, repl));
    case ExprKind::kBinOp:
      return Expr::Bin(e->bin_op, Subst(e->a, var, repl), Subst(e->b, var, repl));
    case ExprKind::kUnOp:
      return Expr::Un(e->un_op, Subst(e->a, var, repl));
    case ExprKind::kApply:
      return Expr::Apply(Subst(e->a, var, repl), Subst(e->b, var, repl));
    case ExprKind::kMerge:
      return Expr::Merge(e->monoid, Subst(e->a, var, repl), Subst(e->b, var, repl));
    case ExprKind::kLambda: {
      if (e->name == var) return e;  // shadowed
      if (FreeVars(repl).count(e->name) > 0) {
        // Capture: rename the lambda binder first.
        std::string fresh = Gensym::Fresh(e->name);
        ExprPtr body = Subst(e->a, e->name, Expr::Var(fresh));
        return Expr::Lambda(fresh, Subst(body, var, repl));
      }
      return Expr::Lambda(e->name, Subst(e->a, var, repl));
    }
    case ExprKind::kComp: {
      std::set<std::string> repl_free = FreeVars(repl);
      std::vector<Qualifier> quals = e->quals;
      ExprPtr head = e->a;
      for (size_t i = 0; i < quals.size(); ++i) {
        Qualifier& q = quals[i];
        q.expr = Subst(q.expr, var, repl);
        if (!q.is_generator) continue;
        if (q.var == var) {
          // var is shadowed from here on; done.
          return Expr::Comp(e->monoid, head, std::move(quals));
        }
        if (repl_free.count(q.var) > 0) {
          // Rename this generator's variable in the tail to avoid capture.
          std::string fresh = Gensym::Fresh(q.var);
          ExprPtr fresh_var = Expr::Var(fresh);
          for (size_t j = i + 1; j < quals.size(); ++j) {
            quals[j].expr = Subst(quals[j].expr, q.var, fresh_var);
          }
          head = Subst(head, q.var, fresh_var);
          q.var = fresh;
        }
      }
      head = Subst(head, var, repl);
      return Expr::Comp(e->monoid, head, std::move(quals));
    }
  }
  throw InternalError("bad expr kind in Subst");
}

bool ExprEqual(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::kVar:
    case ExprKind::kParam:
      return a->name == b->name;
    case ExprKind::kLiteral:
      return a->literal == b->literal;
    case ExprKind::kZero:
      return a->monoid == b->monoid;
    case ExprKind::kRecord: {
      if (a->fields.size() != b->fields.size()) return false;
      for (size_t i = 0; i < a->fields.size(); ++i) {
        if (a->fields[i].first != b->fields[i].first) return false;
        if (!ExprEqual(a->fields[i].second, b->fields[i].second)) return false;
      }
      return true;
    }
    case ExprKind::kProj:
      return a->name == b->name && ExprEqual(a->a, b->a);
    case ExprKind::kIf:
      return ExprEqual(a->a, b->a) && ExprEqual(a->b, b->b) && ExprEqual(a->c, b->c);
    case ExprKind::kBinOp:
      return a->bin_op == b->bin_op && ExprEqual(a->a, b->a) && ExprEqual(a->b, b->b);
    case ExprKind::kUnOp:
      return a->un_op == b->un_op && ExprEqual(a->a, b->a);
    case ExprKind::kLambda:
      return a->name == b->name && ExprEqual(a->a, b->a);
    case ExprKind::kApply:
      return ExprEqual(a->a, b->a) && ExprEqual(a->b, b->b);
    case ExprKind::kMerge:
      return a->monoid == b->monoid && ExprEqual(a->a, b->a) && ExprEqual(a->b, b->b);
    case ExprKind::kComp: {
      if (a->monoid != b->monoid) return false;
      if (a->quals.size() != b->quals.size()) return false;
      for (size_t i = 0; i < a->quals.size(); ++i) {
        const Qualifier& qa = a->quals[i];
        const Qualifier& qb = b->quals[i];
        if (qa.is_generator != qb.is_generator || qa.var != qb.var) return false;
        if (!ExprEqual(qa.expr, qb.expr)) return false;
      }
      return ExprEqual(a->a, b->a);
    }
  }
  return false;
}

bool ContainsComp(const ExprPtr& e) {
  if (!e) return false;
  if (e->kind == ExprKind::kComp) return true;
  for (const auto& [n, f] : e->fields) {
    if (ContainsComp(f)) return true;
  }
  for (const Qualifier& q : e->quals) {
    if (ContainsComp(q.expr)) return true;
  }
  return ContainsComp(e->a) || ContainsComp(e->b) || ContainsComp(e->c);
}

bool IsPath(const ExprPtr& e, std::string* root, std::vector<std::string>* attrs) {
  if (!e) return false;
  if (e->kind == ExprKind::kVar) {
    *root = e->name;
    attrs->clear();
    return true;
  }
  if (e->kind == ExprKind::kProj) {
    if (!IsPath(e->a, root, attrs)) return false;
    attrs->push_back(e->name);
    return true;
  }
  return false;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> out;
  if (!pred) return out;
  if (pred->kind == ExprKind::kBinOp && pred->bin_op == BinOpKind::kAnd) {
    auto l = SplitConjuncts(pred->a);
    auto r = SplitConjuncts(pred->b);
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  if (pred->IsTrueLiteral()) return out;
  out.push_back(pred);
  return out;
}

ExprPtr MakeConjunction(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const ExprPtr& c : conjuncts) {
    if (!c || c->IsTrueLiteral()) continue;
    out = out ? Expr::And(out, c) : c;
  }
  return out ? out : Expr::True();
}

}  // namespace ldb
