#include "src/core/pretty.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/core/cost.h"
#include "src/core/optimizer.h"
#include "src/runtime/error.h"
#include "src/runtime/profile.h"

namespace ldb {

namespace {

void Print(const ExprPtr& e, std::ostringstream& os);

void PrintQuals(const std::vector<Qualifier>& quals, std::ostringstream& os) {
  bool first = true;
  for (const Qualifier& q : quals) {
    if (!first) os << ", ";
    first = false;
    if (q.is_generator) {
      os << q.var << " <- ";
      Print(q.expr, os);
    } else {
      Print(q.expr, os);
    }
  }
}

void Print(const ExprPtr& e, std::ostringstream& os) {
  if (!e) {
    os << "<null-expr>";
    return;
  }
  switch (e->kind) {
    case ExprKind::kVar:
      os << e->name;
      return;
    case ExprKind::kParam:
      os << '$' << e->name;
      return;
    case ExprKind::kLiteral:
      os << e->literal.ToString();
      return;
    case ExprKind::kRecord: {
      os << '<';
      bool first = true;
      for (const auto& [n, f] : e->fields) {
        if (!first) os << ", ";
        first = false;
        os << n << '=';
        Print(f, os);
      }
      os << '>';
      return;
    }
    case ExprKind::kProj:
      Print(e->a, os);
      os << '.' << e->name;
      return;
    case ExprKind::kIf:
      os << "if ";
      Print(e->a, os);
      os << " then ";
      Print(e->b, os);
      os << " else ";
      Print(e->c, os);
      return;
    case ExprKind::kBinOp:
      os << '(';
      Print(e->a, os);
      os << ' ' << BinOpName(e->bin_op) << ' ';
      Print(e->b, os);
      os << ')';
      return;
    case ExprKind::kUnOp:
      os << UnOpName(e->un_op) << '(';
      Print(e->a, os);
      os << ')';
      return;
    case ExprKind::kLambda:
      os << "\\" << e->name << ". ";
      Print(e->a, os);
      return;
    case ExprKind::kApply:
      Print(e->a, os);
      os << '(';
      Print(e->b, os);
      os << ')';
      return;
    case ExprKind::kComp: {
      os << MonoidName(e->monoid) << "{ ";
      Print(e->a, os);
      if (!e->quals.empty()) {
        os << " | ";
        PrintQuals(e->quals, os);
      }
      os << " }";
      return;
    }
    case ExprKind::kMerge:
      os << '(';
      Print(e->a, os);
      os << " (+)" << MonoidName(e->monoid) << ' ';
      Print(e->b, os);
      os << ')';
      return;
    case ExprKind::kZero:
      os << "zero[" << MonoidName(e->monoid) << ']';
      return;
  }
}

void PrintOp(const AlgPtr& op, int indent, std::ostringstream& os) {
  os << std::string(static_cast<size_t>(indent) * 2, ' ');
  if (!op) {
    os << "<null-plan>\n";
    return;
  }
  auto pred_suffix = [&]() -> std::string {
    if (op->pred && !op->pred->IsTrueLiteral()) {
      return " if " + PrintExpr(op->pred);
    }
    return "";
  };
  switch (op->kind) {
    case AlgKind::kUnit:
      os << "Unit\n";
      return;
    case AlgKind::kScan:
      os << "Scan[" << op->var << " <- " << op->extent << pred_suffix() << "]\n";
      return;
    case AlgKind::kSelect:
      os << "Select[" << PrintExpr(op->pred) << "]\n";
      PrintOp(op->left, indent + 1, os);
      return;
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin:
      os << (op->kind == AlgKind::kJoin ? "Join[" : "OuterJoin[")
         << PrintExpr(op->pred) << "]\n";
      PrintOp(op->left, indent + 1, os);
      PrintOp(op->right, indent + 1, os);
      return;
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest:
      os << (op->kind == AlgKind::kUnnest ? "Unnest[" : "OuterUnnest[")
         << op->var << " := " << PrintExpr(op->path) << pred_suffix() << "]\n";
      PrintOp(op->left, indent + 1, os);
      return;
    case AlgKind::kNest: {
      os << "Nest[" << MonoidName(op->monoid) << '/' << PrintExpr(op->head)
         << " -> " << op->var << " group_by(";
      bool first = true;
      for (const auto& [n, k] : op->group_by) {
        if (!first) os << ", ";
        first = false;
        if (k->kind == ExprKind::kVar && k->name == n) {
          os << n;
        } else {
          os << n << '=' << PrintExpr(k);
        }
      }
      os << ") nulls(";
      first = true;
      for (const std::string& v : op->null_vars) {
        if (!first) os << ", ";
        first = false;
        os << v;
      }
      os << ')' << pred_suffix() << "]\n";
      PrintOp(op->left, indent + 1, os);
      return;
    }
    case AlgKind::kReduce:
      os << "Reduce[" << MonoidName(op->monoid) << '/' << PrintExpr(op->head)
         << pred_suffix() << "]\n";
      PrintOp(op->left, indent + 1, os);
      return;
  }
}

void Shape(const AlgPtr& op, std::ostringstream& os) {
  if (!op) return;
  switch (op->kind) {
    case AlgKind::kUnit:
      os << "Unit";
      return;
    case AlgKind::kScan:
      os << "Scan(" << op->extent << ')';
      return;
    case AlgKind::kSelect:
      os << "Select(";
      Shape(op->left, os);
      os << ')';
      return;
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin:
      os << (op->kind == AlgKind::kJoin ? "Join(" : "OuterJoin(");
      Shape(op->left, os);
      os << ',';
      Shape(op->right, os);
      os << ')';
      return;
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest:
      os << (op->kind == AlgKind::kUnnest ? "Unnest(" : "OuterUnnest(");
      Shape(op->left, os);
      os << ')';
      return;
    case AlgKind::kNest:
      os << "Nest(";
      Shape(op->left, os);
      os << ')';
      return;
    case AlgKind::kReduce:
      os << "Reduce(";
      Shape(op->left, os);
      os << ')';
      return;
  }
}

}  // namespace

std::string PrintExpr(const ExprPtr& e) {
  std::ostringstream os;
  Print(e, os);
  return os.str();
}

std::string PrintPlan(const AlgPtr& op) {
  std::ostringstream os;
  PrintOp(op, 0, os);
  return os.str();
}

std::string PlanShape(const AlgPtr& op) {
  std::ostringstream os;
  Shape(op, os);
  return os.str();
}

namespace {

std::string FormatMs(double ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << (ns / 1e6) << "ms";
  return os.str();
}

std::string FormatEst(double card) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(0) << card;
  return os.str();
}

struct ExplainRow {
  std::string node;   // indented DescribePhysOp text
  std::string annot;  // est/rows/time column
};

// Walks the plan in the pre-order used by CompileSlotPlan (id at node entry,
// left child before right) so `*next_id` reproduces each operator's stats id.
void ExplainWalk(const PhysPtr& op, int indent, int* next_id,
                 const QueryProfiler& profiler, const Catalog* catalog,
                 std::vector<ExplainRow>* rows) {
  if (!op) return;
  const int id = (*next_id)++;
  ExplainRow row;
  row.node = std::string(static_cast<size_t>(indent) * 2, ' ') +
             DescribePhysOp(*op);
  std::ostringstream a;
  if (catalog) {
    a << "est=" << FormatEst(EstimatePhysicalCardinality(op, *catalog))
      << "  ";
  }
  if (const OperatorStats* s = profiler.Find(id)) {
    a << "rows=" << s->rows_out;
    if (s->build_rows > 0) a << "  build=" << s->build_rows;
    if (s->groups > 0) a << "  groups=" << s->groups;
    if (s->short_circuits > 0) a << "  short_circuit=" << s->short_circuits;
    if (s->mem_bytes > 0) a << "  mem=" << s->mem_bytes << "B";
    a << "  time=" << FormatMs(static_cast<double>(s->open_ns + s->next_ns));
  } else {
    a << "(no stats)";
  }
  row.annot = a.str();
  rows->push_back(std::move(row));
  ExplainWalk(op->left, indent + 1, next_id, profiler, catalog, rows);
  ExplainWalk(op->right, indent + 1, next_id, profiler, catalog, rows);
}

}  // namespace

std::string ExplainAnalyze(const PhysPtr& plan, const QueryProfiler& profiler,
                           const Catalog* catalog) {
  std::ostringstream os;
  os << "EXPLAIN ANALYZE (mode="
     << (profiler.parallel_mode.empty() ? "?" : profiler.parallel_mode)
     << " threads=" << profiler.threads_used;
  if (profiler.morsel_size > 0) os << " morsel=" << profiler.morsel_size;
  os << " wall=" << FormatMs(static_cast<double>(profiler.wall_ns));
  if (profiler.cache_hits + profiler.cache_misses > 0) {
    os << " plan=" << (profiler.plan_cached ? "cached" : "compiled")
       << " cache=" << profiler.cache_hits << "h/" << profiler.cache_misses
       << "m/" << profiler.cache_evictions << "e";
  }
  os << ")\n";

  std::vector<ExplainRow> rows;
  int next_id = 0;
  ExplainWalk(plan, 0, &next_id, profiler, catalog, &rows);
  size_t width = 0;
  for (const ExplainRow& r : rows) width = std::max(width, r.node.size());
  for (const ExplainRow& r : rows) {
    os << r.node << std::string(width - r.node.size() + 2, ' ') << r.annot
       << "\n";
  }

  if (!profiler.workers.empty()) {
    os << "workers:\n";
    for (const WorkerStats& w : profiler.workers) {
      os << "  w" << w.worker << ": morsels=" << w.morsels
         << " rows=" << w.rows
         << " busy=" << FormatMs(static_cast<double>(w.busy_ns)) << "\n";
    }
  }
  return os.str();
}

std::string PrintCompileTrace(const CompileTrace& trace) {
  std::ostringstream os;
  os << "compile trace (total " << std::fixed << std::setprecision(3)
     << trace.total_ms << " ms)\n";
  for (const StageTiming& st : trace.stages) {
    os << "  " << st.stage;
    if (st.stage.size() < 20) os << std::string(20 - st.stage.size(), ' ');
    os << std::fixed << std::setprecision(3) << st.ms << " ms\n";
  }
  if (!trace.normalize_rules.empty()) {
    os << "normalize rules:";
    bool first = true;
    for (const RuleFiring& r : trace.normalize_rules) {
      os << (first ? " " : ", ") << r.rule << " x" << r.count;
      first = false;
    }
    os << "\n";
  }
  if (!trace.unnest_steps.empty()) {
    os << "unnest steps:\n";
    for (const UnnestStep& s : trace.unnest_steps) {
      os << "  " << s.rule << ": " << s.description << "\n";
    }
  }
  os << "simplify rewrites: " << trace.simplify_rewrites << "\n";
  if (!trace.verify_stages.empty()) {
    os << "verify stages:\n";
    for (const VerifyStageSummary& v : trace.verify_stages) {
      os << "  " << v.stage;
      if (v.stage.size() < 20) os << std::string(20 - v.stage.size(), ' ');
      os << v.checks << " checks, " << v.findings << " findings, "
         << std::fixed << std::setprecision(3) << v.ms << " ms\n";
    }
  }
  return os.str();
}

}  // namespace ldb
